package core
