package core

import (
	"fmt"

	"repro/internal/graph"
)

// BuilderForMode maps a builder-mode name — the vocabulary shared by the
// ftbfsd API ("mode" in build requests) and snapshot metadata (Meta.Mode)
// — to the builder that implements it: dual (Theorem 1.1), single
// (ESA'13 baseline), multi (per-source dual structures unioned into an
// FT-MBFS structure). One table, hosted at the construction layer, so
// the serving registry and the snapshot tools cannot drift apart.
func BuilderForMode(mode string, sources []int) (func(*graph.Graph, *Options) (*Structure, error), error) {
	switch mode {
	case "dual":
		if len(sources) != 1 {
			return nil, fmt.Errorf("mode dual needs exactly one source")
		}
		return func(g *graph.Graph, opts *Options) (*Structure, error) {
			return BuildDual(g, sources[0], opts)
		}, nil
	case "single":
		if len(sources) != 1 {
			return nil, fmt.Errorf("mode single needs exactly one source")
		}
		return func(g *graph.Graph, opts *Options) (*Structure, error) {
			return BuildSingle(g, sources[0], opts)
		}, nil
	case "multi":
		if len(sources) == 0 {
			return nil, fmt.Errorf("mode multi needs at least one source")
		}
		return func(g *graph.Graph, opts *Options) (*Structure, error) {
			return BuildMultiSource(g, sources, opts, BuildDual)
		}, nil
	default:
		return nil, fmt.Errorf("unknown mode %q (dual, single, multi)", mode)
	}
}
