package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// builders enumerates every builder in this package behind one signature,
// so cancellation and equivalence properties are tested uniformly.
func builders() map[string]func(*graph.Graph, *Options) (*Structure, error) {
	return map[string]func(*graph.Graph, *Options) (*Structure, error){
		"dual":   func(g *graph.Graph, o *Options) (*Structure, error) { return BuildDual(g, 0, o) },
		"single": func(g *graph.Graph, o *Options) (*Structure, error) { return BuildSingle(g, 0, o) },
		"fullpaths": func(g *graph.Graph, o *Options) (*Structure, error) {
			return BuildFullPaths(g, 0, o)
		},
		"exhaustive-f2": func(g *graph.Graph, o *Options) (*Structure, error) {
			return BuildExhaustive(g, 0, 2, o)
		},
		"vertex-f2": func(g *graph.Graph, o *Options) (*Structure, error) {
			return BuildVertexExhaustive(g, 0, 2, o)
		},
		"multi": func(g *graph.Graph, o *Options) (*Structure, error) {
			return BuildMultiSource(g, []int{0, 1, 2}, o, BuildDual)
		},
	}
}

// TestBuildPreCancelled: a context cancelled before the build starts makes
// every builder return ctx.Err() — bare, so errors.Is works — and a nil
// structure, sequentially and in parallel.
func TestBuildPreCancelled(t *testing.T) {
	g := gen.SparseGNP(40, 4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, build := range builders() {
		for _, par := range []int{0, 4} {
			st, err := build(g, &Options{Seed: 1, Ctx: ctx, Parallelism: par})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s (parallelism %d): err = %v, want context.Canceled", name, par, err)
			}
			if st != nil {
				t.Errorf("%s (parallelism %d): got a partial structure despite cancellation", name, par)
			}
		}
	}
}

// TestBuildCancelMidway cancels a running exhaustive build and checks it
// returns promptly with ctx.Err() and without publishing anything.
func TestBuildCancelMidway(t *testing.T) {
	g := gen.SparseGNP(120, 5, 3) // big enough that f=2 exhaustive runs a while
	prog := &Progress{}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Wait until the build demonstrably made progress, then cancel.
		for prog.Snapshot().Dijkstras < 50 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	start := time.Now()
	st, err := BuildExhaustive(g, 0, 2, &Options{Seed: 1, Ctx: ctx, Progress: prog, Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st != nil {
		t.Fatalf("cancelled build published a structure")
	}
	// Not a strict latency assertion (CI noise), but a cancelled build
	// must not run to completion: the full build is ~C(m,2) Dijkstras.
	if done := prog.Snapshot(); done.UnitsTotal > 0 && done.UnitsDone >= done.UnitsTotal {
		t.Fatalf("build ran to completion (%d/%d units) despite cancellation", done.UnitsDone, done.UnitsTotal)
	}
	t.Logf("cancelled after %v, %d/%d units", time.Since(start),
		prog.Snapshot().UnitsDone, prog.Snapshot().UnitsTotal)
}

// TestBuildWithContextIdentical: threading a (live) context and a progress
// sink changes nothing about the output.
func TestBuildWithContextIdentical(t *testing.T) {
	g := gen.SparseGNP(40, 4, 3)
	for name, build := range builders() {
		plain, err := build(g, &Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog := &Progress{}
		ctxed, err := build(g, &Options{Seed: 7, Ctx: context.Background(), Progress: prog})
		if err != nil {
			t.Fatalf("%s with ctx: %v", name, err)
		}
		if plain.NumEdges() != ctxed.NumEdges() {
			t.Fatalf("%s: edge count changed with ctx: %d vs %d", name, plain.NumEdges(), ctxed.NumEdges())
		}
		for _, id := range plain.Edges.IDs() {
			if !ctxed.Edges.Has(id) {
				t.Fatalf("%s: edge %d missing from ctx build", name, id)
			}
		}
	}
}

// TestProgressCounters checks the published counters are complete and
// consistent at build completion for the per-target and exhaustive paths.
func TestProgressCounters(t *testing.T) {
	g := gen.SparseGNP(40, 4, 3)
	t.Run("dual", func(t *testing.T) {
		prog := &Progress{}
		st, err := BuildDual(g, 0, &Options{Seed: 1, Progress: prog})
		if err != nil {
			t.Fatal(err)
		}
		ps := prog.Snapshot()
		if ps.UnitsDone != ps.UnitsTotal || ps.UnitsTotal != int64(g.N()) {
			t.Fatalf("units %d/%d, want %d/%d", ps.UnitsDone, ps.UnitsTotal, g.N(), g.N())
		}
		if ps.Dijkstras != int64(st.Stats.Dijkstras) {
			t.Fatalf("progress Dijkstras %d != stats %d", ps.Dijkstras, st.Stats.Dijkstras)
		}
		// Sequential builds count kept edges exactly.
		if ps.EdgesKept != int64(st.NumEdges()) {
			t.Fatalf("progress edges %d != structure %d", ps.EdgesKept, st.NumEdges())
		}
		if f := ps.Fraction(); f != 1 {
			t.Fatalf("fraction %f at completion", f)
		}
	})
	t.Run("fullpaths", func(t *testing.T) {
		// The path-closure pass publishes its own units and edge deltas:
		// done == total only at the true end, EdgesKept == |E_H| exactly.
		prog := &Progress{}
		st, err := BuildFullPaths(g, 0, &Options{Seed: 1, Progress: prog})
		if err != nil {
			t.Fatal(err)
		}
		ps := prog.Snapshot()
		if want := int64(2 * g.N()); ps.UnitsDone != want || ps.UnitsTotal != want {
			t.Fatalf("units %d/%d, want %d (dual pass + closure pass)", ps.UnitsDone, ps.UnitsTotal, want)
		}
		if ps.EdgesKept != int64(st.NumEdges()) {
			t.Fatalf("progress edges %d != structure %d", ps.EdgesKept, st.NumEdges())
		}
	})
	t.Run("exhaustive-parallel", func(t *testing.T) {
		prog := &Progress{}
		st, err := BuildExhaustive(g, 0, 2, &Options{Seed: 1, Progress: prog, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		ps := prog.Snapshot()
		want := numFaultSets(g.M(), 2)
		if ps.UnitsDone != want || ps.UnitsTotal != want {
			t.Fatalf("units %d/%d, want %d", ps.UnitsDone, ps.UnitsTotal, want)
		}
		if ps.Dijkstras != int64(st.Stats.Dijkstras) {
			t.Fatalf("progress Dijkstras %d != stats %d", ps.Dijkstras, st.Stats.Dijkstras)
		}
		// Parallel workers may double-count overlapping edges: upper bound.
		if ps.EdgesKept < int64(st.NumEdges()) {
			t.Fatalf("progress edges %d below final union %d", ps.EdgesKept, st.NumEdges())
		}
	})
}

// TestMultiSourceFractionMonotone: BuildMultiSource announces the whole
// composite's work-unit total through the first per-source build, so the
// live fraction never regresses at a source boundary (and duplicate
// sources don't inflate the total).
func TestMultiSourceFractionMonotone(t *testing.T) {
	g := gen.SparseGNP(60, 4, 3)
	cases := map[string]struct {
		build       func(*graph.Graph, int, *Options) (*Structure, error)
		unitsPerSrc int64
	}{
		"dual":      {BuildDual, int64(g.N())},
		"fullpaths": {BuildFullPaths, 2 * int64(g.N())}, // dual pass + closure pass
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			prog := &Progress{}
			done := make(chan struct{})
			var lastFrac float64
			go func() {
				defer close(done)
				for {
					ps := prog.Snapshot()
					if f := ps.Fraction(); f < lastFrac {
						t.Errorf("fraction regressed: %f after %f (%+v)", f, lastFrac, ps)
						return
					} else {
						lastFrac = f
					}
					if ps.UnitsTotal > 0 && ps.UnitsDone == ps.UnitsTotal {
						return
					}
					time.Sleep(20 * time.Microsecond)
				}
			}()
			_, err := BuildMultiSource(g, []int{0, 5, 5, 11}, &Options{Seed: 1, Progress: prog}, tc.build)
			if err != nil {
				t.Fatal(err)
			}
			<-done
			ps := prog.Snapshot()
			if want := 3 * tc.unitsPerSrc; ps.UnitsTotal != want || ps.UnitsDone != want {
				t.Fatalf("units %d/%d, want %d (3 unique sources)", ps.UnitsDone, ps.UnitsTotal, want)
			}
		})
	}
}

// TestProgressMonotonic snapshots concurrently with a running build (the
// race detector guards the memory model; this guards monotonicity).
func TestProgressMonotonic(t *testing.T) {
	g := gen.SparseGNP(80, 5, 3)
	prog := &Progress{}
	done := make(chan struct{})
	var last ProgressSnapshot
	go func() {
		defer close(done)
		for {
			ps := prog.Snapshot()
			if ps.UnitsDone < last.UnitsDone || ps.UnitsTotal < last.UnitsTotal ||
				ps.Dijkstras < last.Dijkstras || ps.EdgesKept < last.EdgesKept {
				t.Errorf("progress went backwards: %+v after %+v", ps, last)
				return
			}
			last = ps
			if ps.UnitsTotal > 0 && ps.UnitsDone == ps.UnitsTotal {
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	if _, err := BuildDual(g, 0, &Options{Seed: 1, Progress: prog, Parallelism: 3}); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestNilProgressAndContext: the nil-safety contract (no options at all).
func TestNilProgressAndContext(t *testing.T) {
	var p *Progress
	p.AddUnits(1)
	p.AddTotal(1)
	p.AddDijkstras(1)
	p.AddEdges(1)
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Fatalf("nil Progress snapshot = %+v", s)
	}
	if (ProgressSnapshot{}).Fraction() != 0 {
		t.Fatal("zero snapshot fraction != 0")
	}
	var o *Options
	if o.Context() == nil {
		t.Fatal("nil options context")
	}
	if o.ProgressSink() != nil {
		t.Fatal("nil options progress sink")
	}
}
