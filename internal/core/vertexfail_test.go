package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestVertexExhaustiveVerifies(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"gnp":    gen.GNP(16, 0.3, 7),
		"grid":   gen.Grid(4, 4),
		"cycle":  gen.Cycle(10),
		"chords": gen.TreePlusChords(18, 5, 3),
	} {
		for f := 0; f <= 2; f++ {
			st, err := BuildVertexExhaustive(g, 0, f, nil)
			if err != nil {
				t.Fatalf("%s f=%d: %v", name, f, err)
			}
			if !st.VertexFaults {
				t.Fatalf("%s: VertexFaults flag unset", name)
			}
			rep := verify.VertexFTBFS(g, st.DisabledEdges(), []int{0}, f, nil)
			if !rep.OK {
				t.Fatalf("%s f=%d: %v", name, f, rep.Violations)
			}
		}
	}
}

func TestVertexExhaustiveErrors(t *testing.T) {
	g := gen.PathGraph(4)
	if _, err := BuildVertexExhaustive(g, -1, 1, nil); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := BuildVertexExhaustive(g, 0, 3, nil); err == nil {
		t.Fatal("f=3 accepted")
	}
}

func TestVertexVsEdgeStructureDiffer(t *testing.T) {
	// On a cycle: any single vertex failure splits it into a path — the
	// vertex structure must keep the whole cycle (as must the edge one).
	g := gen.Cycle(8)
	v1, err := BuildVertexExhaustive(g, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1.NumEdges() != g.M() {
		t.Fatalf("cycle vertex structure dropped edges: %d", v1.NumEdges())
	}
}

func TestVertexVerifierCatchesBreakage(t *testing.T) {
	g := gen.Cycle(6)
	// Remove one edge from H: a vertex failure on the far side makes some
	// vertex unreachable in H\{x} but not in G\{x}.
	rep := verify.VertexFTBFS(g, []int{0}, []int{0}, 1, nil)
	if rep.OK {
		t.Fatal("broken vertex structure passed")
	}
	if rep2 := verify.VertexFTBFS(g, nil, []int{0}, 3, nil); rep2.OK {
		t.Fatal("f=3 should be rejected")
	}
}
