package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/wsp"
)

// BuildVertexExhaustive constructs a structure resilient to up to f VERTEX
// failures (the fault model of the paper's reference [10], which it
// discusses alongside edge faults): for every vertex set V' with |V'| ≤ f
// not containing the source, dist(s, v, H \ V') = dist(s, v, G \ V') for
// all surviving v. Built as the union of canonical shortest-path trees of
// G \ V' over all fault sets; supported for f ≤ 2 at Θ(n^f) tree cost.
//
// The returned structure has VertexFaults set; verify it with
// verify.VertexFTBFS rather than the edge-fault verifier.
func BuildVertexExhaustive(g *graph.Graph, s int, f int, opts *Options) (*Structure, error) {
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	if f < 0 || f > 2 {
		return nil, fmt.Errorf("core: vertex-fault builder supports 0 ≤ f ≤ 2, got %d", f)
	}
	w := wsp.NewAssignment(g.M(), opts.seed())
	st := &Structure{
		G:            g,
		Sources:      []int{s},
		Faults:       f,
		VertexFaults: true,
		Edges:        graph.NewEdgeSet(g.M()),
	}
	n := g.N()
	units := n // first-vertex work units; f = 0 has only the empty set
	if f == 0 {
		units = 1
	}
	// Work units: fault sets over the n-1 non-source vertices.
	opts.AnnounceTotal(numFaultSets(n-1, f))
	err := unionTrees(st, w, s, opts, units, true, func(wi int, claim func() (int, int, bool), addTree func(faults []int) bool) {
		if wi == 0 && !addTree(nil) {
			return
		}
		if f < 1 {
			return
		}
		// Workers claim contiguous ranges of smallest-vertex IDs from
		// the shared dispenser; the union is partition-independent.
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for a := lo; a < hi; a++ {
				if a == s {
					continue
				}
				if !addTree([]int{a}) {
					return
				}
				if f >= 2 {
					for b := a + 1; b < n; b++ {
						if b == s {
							continue
						}
						if !addTree([]int{a, b}) {
							return
						}
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}
