package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/wsp"
)

// BuildVertexExhaustive constructs a structure resilient to up to f VERTEX
// failures (the fault model of the paper's reference [10], which it
// discusses alongside edge faults): for every vertex set V' with |V'| ≤ f
// not containing the source, dist(s, v, H \ V') = dist(s, v, G \ V') for
// all surviving v. Built as the union of canonical shortest-path trees of
// G \ V' over all fault sets; supported for f ≤ 2 at Θ(n^f) tree cost.
//
// The returned structure has VertexFaults set; verify it with
// verify.VertexFTBFS rather than the edge-fault verifier.
func BuildVertexExhaustive(g *graph.Graph, s int, f int, opts *Options) (*Structure, error) {
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	if f < 0 || f > 2 {
		return nil, fmt.Errorf("core: vertex-fault builder supports 0 ≤ f ≤ 2, got %d", f)
	}
	w := wsp.NewAssignment(g.M(), opts.seed())
	search := wsp.NewSearch(g, w)
	st := &Structure{
		G:            g,
		Sources:      []int{s},
		Faults:       f,
		VertexFaults: true,
		Edges:        graph.NewEdgeSet(g.M()),
	}
	addTree := func(faults []int) {
		search.Run(s, wsp.Options{Target: -1, DisabledVertices: faults})
		st.Stats.Dijkstras++
		for v := 0; v < g.N(); v++ {
			if id := search.ParentEdgeOf(v); id >= 0 {
				st.Edges.Add(id)
			}
		}
	}
	addTree(nil)
	n := g.N()
	if f >= 1 {
		for a := 0; a < n; a++ {
			if a == s {
				continue
			}
			addTree([]int{a})
			if f >= 2 {
				for b := a + 1; b < n; b++ {
					if b == s {
						continue
					}
					addTree([]int{a, b})
				}
			}
		}
	}
	st.Stats.TieWarnings = search.TieWarnings
	return st, nil
}
