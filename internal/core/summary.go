package core

import (
	"fmt"
	"math"
	"strings"
)

// Summary renders a human-readable report of the structure: sizes against
// the paper's envelopes, construction effort and anomaly counters.
func (s *Structure) Summary() string {
	var b strings.Builder
	n := float64(s.G.N())
	model := "edge"
	if s.VertexFaults {
		model = "vertex"
	}
	fmt.Fprintf(&b, "FT-BFS structure: sources=%v f=%d (%s faults)\n", s.Sources, s.Faults, model)
	fmt.Fprintf(&b, "  graph: n=%d m=%d\n", s.G.N(), s.G.M())
	fmt.Fprintf(&b, "  edges kept: %d (%.1f%% of G; spanning tree would be %d)\n",
		s.NumEdges(), 100*float64(s.NumEdges())/float64(s.G.M()), s.G.N()-1)
	switch s.Faults {
	case 1:
		fmt.Fprintf(&b, "  envelope: |H|/n^{3/2} = %.3f (paper bound O(n^{3/2}))\n",
			float64(s.NumEdges())/math.Pow(n, 1.5))
	case 2:
		fmt.Fprintf(&b, "  envelope: |H|/n^{5/3} = %.3f (Theorem 1.1 bound O(n^{5/3}))\n",
			float64(s.NumEdges())/math.Pow(n, 5.0/3.0))
	}
	if s.Stats.MaxNewEdges > 0 {
		fmt.Fprintf(&b, "  max new edges per vertex: %d (bound O(n^{2/3}) = %.1f)\n",
			s.Stats.MaxNewEdges, math.Pow(n, 2.0/3.0))
	}
	if s.Stats.MaxE1 > 0 || s.Stats.MaxE2 > 0 {
		fmt.Fprintf(&b, "  max |E1(pi)|=%d, max |E2(pi)|=%d (bounds O(sqrt n) = %.1f)\n",
			s.Stats.MaxE1, s.Stats.MaxE2, math.Sqrt(n))
	}
	fmt.Fprintf(&b, "  effort: %d shortest-path searches", s.Stats.Dijkstras)
	if s.Stats.Fallbacks > 0 || s.Stats.TieWarnings > 0 {
		fmt.Fprintf(&b, "; fallbacks=%d tieWarnings=%d", s.Stats.Fallbacks, s.Stats.TieWarnings)
	}
	b.WriteByte('\n')
	return b.String()
}
