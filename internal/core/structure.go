// Package core implements the paper's fault-tolerant BFS structures: the
// dual-failure construction Cons2FTBFS (Theorem 1.1), the single-failure
// construction of Parter–Peleg [10] as a baseline, an exhaustive
// union-of-canonical-trees builder for any f (the generic last-edge closure,
// cf. Obs. 1.6), a full-path-union ablation, and multi-source composition.
package core

//ftbfs:builders

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/replace"
	"repro/internal/sched"
	"repro/internal/wsp"
)

// Structure is a fault-tolerant BFS structure: a subgraph of G given as an
// edge-ID set, together with its provenance.
type Structure struct {
	G       *graph.Graph
	Sources []int
	// Faults is the number of failures the structure is built to
	// tolerate.
	Faults int
	// VertexFaults marks structures built for the vertex-failure model
	// (BuildVertexExhaustive) rather than edge failures.
	VertexFaults bool
	// Edges marks the IDs of G's edges kept in the structure.
	Edges *graph.EdgeSet
	// Stats describes the construction effort and per-vertex size
	// distribution (see BuildStats).
	Stats BuildStats
	// Targets optionally retains the per-target computation artifacts
	// (Options.CollectPaths); indexed by vertex, nil entries for the
	// source and unreachable vertices.
	Targets []*replace.TargetResult

	disabledOnce sync.Once
	disabled     []int // memoized DisabledEdges result
}

// NumEdges returns the number of edges in the structure.
func (s *Structure) NumEdges() int { return s.Edges.Len() }

// Subgraph materializes the structure as a standalone graph (edge IDs are
// renumbered).
func (s *Structure) Subgraph() *graph.Graph { return s.G.Subgraph(s.Edges) }

// DisabledEdges returns the IDs of G's edges NOT in the structure, which is
// how verifiers and routers restrict searches to H. The slice is computed
// once and shared by every subsequent call (it is O(M) and sits on the
// verifier and router hot paths): callers must not mutate it, and must not
// call it before the structure's edge set is final. The cached slice has no
// spare capacity, so appending to it copies rather than clobbers.
func (s *Structure) DisabledEdges() []int {
	s.disabledOnce.Do(func() {
		out := make([]int, 0, s.G.M()-s.Edges.Len())
		for id := 0; id < s.G.M(); id++ {
			if !s.Edges.Has(id) {
				out = append(out, id)
			}
		}
		s.disabled = out
	})
	return s.disabled
}

// BuildStats aggregates construction counters.
type BuildStats struct {
	Dijkstras   int
	Fallbacks   int
	TieWarnings int
	// MaxNewEdges is max over v of |New(v)| (the paper bounds it by
	// O(n^{2/3}) for f = 2).
	MaxNewEdges int
	// MaxE1, MaxE2 are max over v of |E1(π)|, |E2(π)| new-edge counts
	// (the paper bounds both by O(√n)).
	MaxE1, MaxE2 int
	// NewEndingPiD is the total number of Step-3 new-ending paths.
	NewEndingPiD int
}

// Options configures the builders. The zero value is ready to use.
type Options struct {
	// Seed selects the tie-breaking weight assignment W; builders with
	// equal seeds are deterministic.
	Seed int64
	// CollectPaths retains every replacement path in Structure.Targets
	// (memory-heavy; analysis and tests only).
	CollectPaths bool
	// Parallelism > 1 splits the builder's independent work units across
	// that many goroutines — per-target replacement-path computations for
	// BuildDual/BuildSingle and multifail.Build, per-fault-set canonical
	// trees for BuildExhaustive/BuildVertexExhaustive — each goroutine
	// with its own search engine over the SAME weight assignment, so the
	// result is identical to the sequential build.
	Parallelism int
	// Ctx cancels the build: every builder polls it cooperatively at an
	// amortized cadence inside its enumeration loops (internal/cancel) and,
	// once cancelled, returns ctx.Err() and publishes NO partial
	// structure. nil means the build can never be cancelled. The context
	// does not alter the output: a completed build is bit-identical with
	// or without one.
	Ctx context.Context
	// Progress, when non-nil, receives live monotonic counters (work
	// units, Dijkstras, kept edges) the caller may Snapshot while the
	// build runs. It too never alters the output.
	Progress *Progress
	// NoRepair disables the incremental fault-repair kernel: every fault
	// event runs a from-scratch search. The output — edge set, stats,
	// fingerprints — is bit-identical either way (the repair kernel's
	// contract, pinned by the equivalence tests); the knob exists for A/B
	// measurement and as an escape hatch.
	NoRepair bool
	// totalScale / totalAnnounced coordinate the work-unit total across
	// composite builds (see AnnounceTotal): BuildMultiSource scales the
	// first per-source announcement to the whole composite and
	// suppresses the rest, so the live fraction never regresses at a
	// source boundary.
	totalScale     int
	totalAnnounced bool
}

// AnnounceTotal publishes a builder's work-unit total into the progress
// sink. Builders call this exactly once, instead of Progress.AddTotal,
// so multi-source composition can pre-announce the full composite total
// (per-source totals are source-independent for every per-source
// builder) and keep UnitsDone/UnitsTotal monotone.
func (o *Options) AnnounceTotal(n int64) {
	if o == nil {
		return
	}
	if o.totalAnnounced {
		return
	}
	if o.totalScale > 1 {
		n *= int64(o.totalScale)
	}
	o.Progress.AddTotal(n)
}

// Context resolves Options.Ctx (context.Background for nil options or an
// unset field).
func (o *Options) Context() context.Context {
	if o != nil && o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// ProgressSink resolves Options.Progress; a nil result is safe to publish
// into (all Progress methods accept nil receivers).
func (o *Options) ProgressSink() *Progress {
	if o == nil {
		return nil
	}
	return o.Progress
}

// Workers resolves Options.Parallelism to a goroutine count (1 for nil
// options or Parallelism ≤ 1). Builders outside this package fan out with
// the same rule.
func (o *Options) Workers() int {
	if o != nil && o.Parallelism > 1 {
		return o.Parallelism
	}
	return 1
}

func (o *Options) seed() int64 {
	if o == nil {
		return 1
	}
	return o.Seed + 1 // keep seed 0 distinct from "no options"
}

func (o *Options) collect() bool { return o != nil && o.CollectPaths }

func (o *Options) noRepair() bool { return o != nil && o.NoRepair }

// BuildDual constructs the dual-failure FT-BFS structure of Theorem 1.1 for
// source s: H = T0 ∪ ⋃_v H(v) where H(v) holds the last edges of the
// replacement paths selected by Algorithm Cons2FTBFS.
func BuildDual(g *graph.Graph, s int, opts *Options) (*Structure, error) {
	return buildWithEngine(g, s, opts, 2, func(eng *replace.Engine, v int, collect bool) *replace.TargetResult {
		return eng.BuildTarget(v, collect)
	})
}

// BuildSingle constructs the single-failure FT-BFS structure of [10]:
// T0 plus the last edge of every single-failure replacement path. Its size
// is O(n^{3/2}).
func BuildSingle(g *graph.Graph, s int, opts *Options) (*Structure, error) {
	return buildWithEngine(g, s, opts, 1, func(eng *replace.Engine, v int, collect bool) *replace.TargetResult {
		return eng.BuildTargetSingle(v, collect)
	})
}

func buildWithEngine(g *graph.Graph, s int, opts *Options, faults int,
	build func(*replace.Engine, int, bool) *replace.TargetResult) (*Structure, error) {
	ctx := opts.Context()
	prog := opts.ProgressSink()
	w := wsp.NewAssignment(g.M(), opts.seed())
	t0 := time.Now()
	eng, err := replace.NewEngine(g, w, s)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.noRepair() {
		eng.DisableRepair()
	}
	prog.AddPhaseNS(PhaseBase, time.Since(t0).Nanoseconds())
	// Credit the engine's base search immediately: a build cancelled
	// before its first target still reports the work it actually did.
	prog.AddDijkstras(1)
	st := &Structure{
		G:       g,
		Sources: []int{s},
		Faults:  faults,
		Edges:   graph.NewEdgeSet(g.M()),
	}
	for _, id := range eng.TreeEdges() {
		st.Edges.Add(id)
	}
	opts.AnnounceTotal(int64(g.N()))
	prog.AddEdges(int64(st.Edges.Len()))
	collect := opts.collect()
	if collect {
		st.Targets = make([]*replace.TargetResult, g.N())
	}
	workers := opts.Workers()
	if workers == 1 {
		poll := cancel.New(ctx, 1) // each target pays several searches; check per target
		prevD := 1                 // the base search, credited above
		tEv := time.Now()
		for v := 0; v < g.N(); v++ {
			if err := poll.Poll(); err != nil {
				return nil, err
			}
			n0 := st.Edges.Len()
			st.fold(build(eng, v, collect), collect)
			prog.AddUnits(1)
			prog.AddEdges(int64(st.Edges.Len() - n0))
			if prog != nil {
				d := eng.Stats().Dijkstras
				prog.AddDijkstras(int64(d - prevD))
				prevD = d
			}
		}
		prog.AddPhaseNS(PhaseEvents, time.Since(tEv).Nanoseconds())
		es := eng.Stats()
		st.Stats.Dijkstras = es.Dijkstras
		st.Stats.Fallbacks = es.Fallbacks
		st.Stats.TieWarnings = es.TieWarnings
		return st, nil
	}
	if err := st.buildParallel(ctx, prog, g, w, s, workers, collect, opts.noRepair(), build); err != nil {
		return nil, err
	}
	return st, nil
}

// fold merges one target's contribution into the structure.
func (s *Structure) fold(tr *replace.TargetResult, collect bool) {
	if tr == nil {
		return
	}
	for _, id := range tr.HEdges {
		s.Edges.Add(id)
	}
	if len(tr.NewEdges) > s.Stats.MaxNewEdges {
		s.Stats.MaxNewEdges = len(tr.NewEdges)
	}
	if tr.E1Count > s.Stats.MaxE1 {
		s.Stats.MaxE1 = tr.E1Count
	}
	if tr.E2Count > s.Stats.MaxE2 {
		s.Stats.MaxE2 = tr.E2Count
	}
	s.Stats.NewEndingPiD += tr.NewEndingPiD
	if collect {
		s.Targets[tr.V] = tr
	}
}

// buildParallel fans the per-target computation out over `workers`
// goroutines, each with a private engine over the shared weight assignment,
// and folds the results deterministically (target order is irrelevant: each
// target's edge set is independent). Targets are claimed in contiguous
// ranges from a shared work-stealing dispenser rather than a static
// stripe: with the repair kernel a target's cost tracks its π length and
// detached-subtree volumes, which vary enough to leave static stripes
// imbalanced. Cancellation is cooperative: every worker polls ctx between
// targets and the whole build returns ctx.Err() — no partial fold is
// published.
func (s *Structure) buildParallel(ctx context.Context, prog *Progress, g *graph.Graph,
	w *wsp.Assignment, src, workers int,
	collect, noRepair bool, build func(*replace.Engine, int, bool) *replace.TargetResult) error {
	type chunk struct {
		results []*replace.TargetResult
		stats   replace.Stats
		err     error
	}
	n := g.N()
	disp := sched.NewDispenser(n, workers)
	out := make([]chunk, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			t0 := time.Now()
			eng, err := replace.NewEngine(g, w, src)
			if err != nil {
				out[wi].err = err
				return
			}
			if noRepair {
				eng.DisableRepair()
			}
			prog.AddPhaseNS(PhaseBase, time.Since(t0).Nanoseconds())
			prog.AddDijkstras(1) // the worker's base search
			poll := cancel.New(ctx, 1)
			prevD := 1
			tEv := time.Now()
			for {
				lo, hi, ok := disp.Next()
				if !ok {
					break
				}
				for v := lo; v < hi; v++ {
					if err := poll.Poll(); err != nil {
						out[wi].err = err
						return
					}
					if tr := build(eng, v, collect); tr != nil {
						out[wi].results = append(out[wi].results, tr)
						prog.AddEdges(int64(len(tr.HEdges)))
					}
					prog.AddUnits(1)
					if prog != nil {
						d := eng.Stats().Dijkstras
						prog.AddDijkstras(int64(d - prevD))
						prevD = d
					}
				}
			}
			prog.AddPhaseNS(PhaseEvents, time.Since(tEv).Nanoseconds())
			out[wi].stats = eng.Stats()
		}(wi)
	}
	wg.Wait()
	// A cancelled worker means a cancelled build, whatever the others
	// managed to finish.
	if err := ctx.Err(); err != nil {
		return err
	}
	for wi := range out {
		if out[wi].err != nil {
			return fmt.Errorf("core: worker %d: %w", wi, out[wi].err)
		}
	}
	tU := time.Now()
	for wi := range out {
		for _, tr := range out[wi].results {
			s.fold(tr, collect)
		}
		s.Stats.Dijkstras += out[wi].stats.Dijkstras
		s.Stats.Fallbacks += out[wi].stats.Fallbacks
		s.Stats.TieWarnings += out[wi].stats.TieWarnings
	}
	prog.AddPhaseNS(PhaseUnion, time.Since(tU).Nanoseconds())
	return nil
}

// BuildFullPaths is the no-sparsification ablation: it runs the same
// replacement-path selection as BuildDual but keeps EVERY edge of every
// selected path instead of only last edges. Always a superset of the
// BuildDual structure with the same seed.
func BuildFullPaths(g *graph.Graph, s int, opts *Options) (*Structure, error) {
	forced := Options{}
	if opts != nil {
		forced = *opts // incl. ctx/progress and composition flags
	}
	forced.CollectPaths = true
	// This builder is two passes over the targets — the dual build, then
	// the path-closure walk — so announce 2n units up front (through
	// opts, honoring multi-source scale/suppression) and suppress the
	// inner BuildDual announcement: the live fraction stays monotone and
	// only reaches 1 when the closure pass finishes.
	opts.AnnounceTotal(2 * int64(g.N()))
	forced.totalAnnounced = true
	st, err := BuildDual(g, s, &forced)
	if err != nil {
		return nil, err
	}
	prog := opts.ProgressSink()
	poll := cancel.New(opts.Context(), cancel.PollEvery)
	for _, tr := range st.Targets {
		if tr == nil {
			prog.AddUnits(1)
			continue
		}
		if err := poll.Poll(); err != nil {
			return nil, err
		}
		n0 := st.Edges.Len()
		for _, rec := range tr.Records {
			for _, ge := range rec.Path.Edges() {
				if id, ok := g.EdgeID(ge.U, ge.V); ok {
					st.Edges.Add(id)
				}
			}
		}
		prog.AddUnits(1)
		prog.AddEdges(int64(st.Edges.Len() - n0))
	}
	if opts == nil || !opts.CollectPaths {
		st.Targets = nil
	}
	return st, nil
}

// BuildExhaustive constructs an f-failure FT-BFS structure for ANY f ≥ 0 as
// the union of the canonical shortest-path trees of G \ F over every fault
// set |F| ≤ f. This is the generic last-edge closure: each tree is exactly
// {LastE(SP(s,v,G\F,W)) : v ∈ V}, so the union is a valid f-FT-BFS
// structure, with size O(D_f(G)^f · n) on small-FT-diameter graphs
// (Obs. 1.6). Cost: C(m,f) Dijkstras — use only on small instances for
// f ≥ 2.
func BuildExhaustive(g *graph.Graph, s int, f int, opts *Options) (*Structure, error) {
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	if f < 0 || f > 3 {
		return nil, fmt.Errorf("core: exhaustive builder supports 0 ≤ f ≤ 3, got %d", f)
	}
	w := wsp.NewAssignment(g.M(), opts.seed())
	st := &Structure{
		G:       g,
		Sources: []int{s},
		Faults:  f,
		Edges:   graph.NewEdgeSet(g.M()),
	}
	m := g.M()
	units := m // first-index work units; f = 0 has only the empty set
	if f == 0 {
		units = 1
	}
	opts.AnnounceTotal(numFaultSets(m, f))
	err := unionTrees(st, w, s, opts, units, false, func(wi int, claim func() (int, int, bool), addTree func(faults []int) bool) {
		if wi == 0 && !addTree(nil) {
			return
		}
		if f < 1 {
			return
		}
		// Workers claim contiguous ranges of smallest-edge-IDs from the
		// shared dispenser; the claimed ranges partition [0, m), and the
		// union does not depend on the partition.
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for a := lo; a < hi; a++ {
				if !addTree([]int{a}) {
					return
				}
				if f < 2 {
					continue
				}
				for b := a + 1; b < m; b++ {
					if !addTree([]int{a, b}) {
						return
					}
					if f < 3 {
						continue
					}
					for c := b + 1; c < m; c++ {
						if !addTree([]int{a, b, c}) {
							return
						}
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// numFaultSets counts the fault sets |F| ≤ f over m items (the exhaustive
// builders' work-unit total; int64 because C(m,3) overflows int32 fast).
func numFaultSets(m, f int) int64 {
	n, m64 := int64(1), int64(m)
	if f >= 1 {
		n += m64
	}
	if f >= 2 {
		n += m64 * (m64 - 1) / 2
	}
	if f >= 3 {
		n += m64 * (m64 - 1) * (m64 - 2) / 6
	}
	return n
}

// unionTrees fans canonical-tree enumeration out over `workers`
// goroutines, each with a PRIVATE repair search over the shared weight
// assignment and a private edge accumulator, then unions edges and sums
// counters into st. workers is clamped to `units` (the caller's
// first-index work-unit count — an idle worker would still allocate a
// search engine). Instead of a static (wi, workers) stripe, enumerate
// receives a claim function backed by one shared work-stealing dispenser
// over [0, units): repair makes per-fault-set cost wildly uneven (a
// detached subtree's volume, not n), so idle workers steal ranges rather
// than wait out a slow stripe. Any claim partition yields the same union:
// every tree is deterministic under W.
//
// Each worker's search is an incremental repairer pinned bit-identical to
// a from-scratch run (wsp.RepairSearch); when a run reports an
// incremental changed set, only those vertices' tree edges can differ
// from the base tree, so extraction walks the changed set instead of all
// of V. The base tree itself enters through worker 0's faults == nil
// call, which (like any fallback run) extracts over all vertices.
//
// TieWarnings bookkeeping: each worker's base run observes the SAME ties
// a sequential from-scratch enumeration would observe once, so per-worker
// counts are baselined after construction — the sum matches the
// sequential build exactly.
//
// Cancellation: addTree polls opts.Ctx every cancel.PollEvery trees and returns
// false once cancelled; enumerate must then stop its fan-out. A cancelled
// enumeration makes unionTrees return ctx.Err() WITHOUT touching st's
// edge set — callers discard st, so no partial structure escapes.
func unionTrees(st *Structure, w *wsp.Assignment, s int, opts *Options, units int, vertexFaults bool,
	enumerate func(wi int, claim func() (int, int, bool), addTree func(faults []int) bool)) error {
	ctx := opts.Context()
	prog := opts.ProgressSink()
	workers := opts.Workers()
	if workers > units {
		workers = max(1, units)
	}
	g := st.G
	disp := sched.NewDispenser(units, workers)
	type chunk struct {
		edges     *graph.EdgeSet
		dijkstras int
		ties      int
		err       error
	}
	out := make([]chunk, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			t0 := time.Now()
			search := wsp.NewRepairSearch(g, w, s)
			if opts.noRepair() {
				search.DisableRepair()
			}
			baseTies := search.TieWarnings()
			edges := graph.NewEdgeSet(g.M())
			prog.AddPhaseNS(PhaseBase, time.Since(t0).Nanoseconds())
			poll := cancel.New(ctx, cancel.PollEvery)
			addTree := func(faults []int) bool {
				if err := poll.Poll(); err != nil {
					out[wi].err = err
					return false
				}
				o := wsp.Options{Target: -1}
				if vertexFaults {
					o.DisabledVertices = faults
				} else {
					o.DisabledEdges = faults
				}
				search.Run(s, o)
				out[wi].dijkstras++
				n0 := edges.Len()
				if changed, incremental := search.Changed(); incremental && faults != nil {
					// Only the repaired region's tree edges can differ
					// from the base tree (already in via worker 0's
					// faults == nil call below).
					//lint:ignore ctxpoll ParentEdgeOf is an O(1) accessor over the finished search, and addTree already polls once per tree above
					for _, v := range changed {
						if id := search.ParentEdgeOf(int(v)); id >= 0 {
							edges.Add(id)
						}
					}
				} else {
					//lint:ignore ctxpoll ParentEdgeOf is an O(1) accessor over the finished search, and addTree already polls once per tree above
					for v := 0; v < g.N(); v++ {
						if id := search.ParentEdgeOf(v); id >= 0 {
							edges.Add(id)
						}
					}
				}
				prog.AddUnits(1)
				prog.AddDijkstras(1)
				prog.AddEdges(int64(edges.Len() - n0))
				return true
			}
			tEv := time.Now()
			enumerate(wi, disp.Next, addTree)
			prog.AddPhaseNS(PhaseEvents, time.Since(tEv).Nanoseconds())
			out[wi].edges = edges
			out[wi].ties = search.TieWarnings() - baseTies
		}(wi)
	}
	wg.Wait()
	for wi := range out {
		if out[wi].err != nil {
			return out[wi].err
		}
	}
	tU := time.Now()
	for wi := range out {
		st.Edges.Union(out[wi].edges)
		st.Stats.Dijkstras += out[wi].dijkstras
		st.Stats.TieWarnings += out[wi].ties
	}
	prog.AddPhaseNS(PhaseUnion, time.Since(tU).Nanoseconds())
	return nil
}

// BuildMultiSource composes per-source structures into an FT-MBFS structure
// for the given source set by unioning their edge sets. build is invoked
// once per source (e.g. BuildDual).
func BuildMultiSource(g *graph.Graph, sources []int, opts *Options,
	build func(*graph.Graph, int, *Options) (*Structure, error)) (*Structure, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: empty source set")
	}
	uniq := append([]int(nil), sources...)
	sort.Ints(uniq)
	k := 1
	for i := 1; i < len(uniq); i++ {
		if uniq[i] != uniq[i-1] {
			k++
		}
	}
	ctx := opts.Context()
	out := &Structure{G: g, Edges: graph.NewEdgeSet(g.M())}
	first := true
	for i, s := range uniq {
		if i > 0 && s == uniq[i-1] {
			continue
		}
		// The per-source build polls ctx inside its own loops; this check
		// only keeps a cancelled multi-source build from starting the next
		// source. Return the bare ctx.Err() so callers can errors.Is it.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Per-source totals are source-independent, so the first source's
		// AnnounceTotal publishes k× its own total and the rest announce
		// nothing — the composite's fraction stays monotone.
		var so Options
		if opts != nil {
			so = *opts
		}
		if first {
			so.totalScale = k
			first = false
		} else {
			so.totalAnnounced = true
		}
		st, err := build(g, s, &so)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("core: source %d: %w", s, err)
		}
		out.Edges.Union(st.Edges)
		out.Sources = append(out.Sources, s)
		out.Faults = st.Faults
		out.Stats.merge(&st.Stats)
	}
	return out, nil
}

// merge folds another build's counters into s: totals are summed,
// per-vertex maxima are maxed. Used by multi-source composition so the
// aggregate reports every BuildStats field, not a subset.
func (s *BuildStats) merge(o *BuildStats) {
	s.Dijkstras += o.Dijkstras
	s.Fallbacks += o.Fallbacks
	s.TieWarnings += o.TieWarnings
	s.NewEndingPiD += o.NewEndingPiD
	s.MaxNewEdges = max(s.MaxNewEdges, o.MaxNewEdges)
	s.MaxE1 = max(s.MaxE1, o.MaxE1)
	s.MaxE2 = max(s.MaxE2, o.MaxE2)
}
