// Package core implements the paper's fault-tolerant BFS structures: the
// dual-failure construction Cons2FTBFS (Theorem 1.1), the single-failure
// construction of Parter–Peleg [10] as a baseline, an exhaustive
// union-of-canonical-trees builder for any f (the generic last-edge closure,
// cf. Obs. 1.6), a full-path-union ablation, and multi-source composition.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/replace"
	"repro/internal/wsp"
)

// Structure is a fault-tolerant BFS structure: a subgraph of G given as an
// edge-ID set, together with its provenance.
type Structure struct {
	G       *graph.Graph
	Sources []int
	// Faults is the number of failures the structure is built to
	// tolerate.
	Faults int
	// VertexFaults marks structures built for the vertex-failure model
	// (BuildVertexExhaustive) rather than edge failures.
	VertexFaults bool
	// Edges marks the IDs of G's edges kept in the structure.
	Edges *graph.EdgeSet
	// Stats describes the construction effort and per-vertex size
	// distribution (see BuildStats).
	Stats BuildStats
	// Targets optionally retains the per-target computation artifacts
	// (Options.CollectPaths); indexed by vertex, nil entries for the
	// source and unreachable vertices.
	Targets []*replace.TargetResult

	disabledOnce sync.Once
	disabled     []int // memoized DisabledEdges result
}

// NumEdges returns the number of edges in the structure.
func (s *Structure) NumEdges() int { return s.Edges.Len() }

// Subgraph materializes the structure as a standalone graph (edge IDs are
// renumbered).
func (s *Structure) Subgraph() *graph.Graph { return s.G.Subgraph(s.Edges) }

// DisabledEdges returns the IDs of G's edges NOT in the structure, which is
// how verifiers and routers restrict searches to H. The slice is computed
// once and shared by every subsequent call (it is O(M) and sits on the
// verifier and router hot paths): callers must not mutate it, and must not
// call it before the structure's edge set is final. The cached slice has no
// spare capacity, so appending to it copies rather than clobbers.
func (s *Structure) DisabledEdges() []int {
	s.disabledOnce.Do(func() {
		out := make([]int, 0, s.G.M()-s.Edges.Len())
		for id := 0; id < s.G.M(); id++ {
			if !s.Edges.Has(id) {
				out = append(out, id)
			}
		}
		s.disabled = out
	})
	return s.disabled
}

// BuildStats aggregates construction counters.
type BuildStats struct {
	Dijkstras   int
	Fallbacks   int
	TieWarnings int
	// MaxNewEdges is max over v of |New(v)| (the paper bounds it by
	// O(n^{2/3}) for f = 2).
	MaxNewEdges int
	// MaxE1, MaxE2 are max over v of |E1(π)|, |E2(π)| new-edge counts
	// (the paper bounds both by O(√n)).
	MaxE1, MaxE2 int
	// NewEndingPiD is the total number of Step-3 new-ending paths.
	NewEndingPiD int
}

// Options configures the builders. The zero value is ready to use.
type Options struct {
	// Seed selects the tie-breaking weight assignment W; builders with
	// equal seeds are deterministic.
	Seed int64
	// CollectPaths retains every replacement path in Structure.Targets
	// (memory-heavy; analysis and tests only).
	CollectPaths bool
	// Parallelism > 1 splits the builder's independent work units across
	// that many goroutines — per-target replacement-path computations for
	// BuildDual/BuildSingle and multifail.Build, per-fault-set canonical
	// trees for BuildExhaustive/BuildVertexExhaustive — each goroutine
	// with its own search engine over the SAME weight assignment, so the
	// result is identical to the sequential build.
	Parallelism int
}

// Workers resolves Options.Parallelism to a goroutine count (1 for nil
// options or Parallelism ≤ 1). Builders outside this package fan out with
// the same rule.
func (o *Options) Workers() int {
	if o != nil && o.Parallelism > 1 {
		return o.Parallelism
	}
	return 1
}

func (o *Options) seed() int64 {
	if o == nil {
		return 1
	}
	return o.Seed + 1 // keep seed 0 distinct from "no options"
}

func (o *Options) collect() bool { return o != nil && o.CollectPaths }

// BuildDual constructs the dual-failure FT-BFS structure of Theorem 1.1 for
// source s: H = T0 ∪ ⋃_v H(v) where H(v) holds the last edges of the
// replacement paths selected by Algorithm Cons2FTBFS.
func BuildDual(g *graph.Graph, s int, opts *Options) (*Structure, error) {
	return buildWithEngine(g, s, opts, 2, func(eng *replace.Engine, v int, collect bool) *replace.TargetResult {
		return eng.BuildTarget(v, collect)
	})
}

// BuildSingle constructs the single-failure FT-BFS structure of [10]:
// T0 plus the last edge of every single-failure replacement path. Its size
// is O(n^{3/2}).
func BuildSingle(g *graph.Graph, s int, opts *Options) (*Structure, error) {
	return buildWithEngine(g, s, opts, 1, func(eng *replace.Engine, v int, collect bool) *replace.TargetResult {
		return eng.BuildTargetSingle(v, collect)
	})
}

func buildWithEngine(g *graph.Graph, s int, opts *Options, faults int,
	build func(*replace.Engine, int, bool) *replace.TargetResult) (*Structure, error) {
	w := wsp.NewAssignment(g.M(), opts.seed())
	eng, err := replace.NewEngine(g, w, s)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	st := &Structure{
		G:       g,
		Sources: []int{s},
		Faults:  faults,
		Edges:   graph.NewEdgeSet(g.M()),
	}
	for _, id := range eng.TreeEdges() {
		st.Edges.Add(id)
	}
	collect := opts.collect()
	if collect {
		st.Targets = make([]*replace.TargetResult, g.N())
	}
	workers := opts.Workers()
	if workers == 1 {
		for v := 0; v < g.N(); v++ {
			st.fold(build(eng, v, collect), collect)
		}
		es := eng.Stats()
		st.Stats.Dijkstras = es.Dijkstras
		st.Stats.Fallbacks = es.Fallbacks
		st.Stats.TieWarnings = es.TieWarnings
		return st, nil
	}
	return st, st.buildParallel(g, w, s, workers, collect, build)
}

// fold merges one target's contribution into the structure.
func (s *Structure) fold(tr *replace.TargetResult, collect bool) {
	if tr == nil {
		return
	}
	for _, id := range tr.HEdges {
		s.Edges.Add(id)
	}
	if len(tr.NewEdges) > s.Stats.MaxNewEdges {
		s.Stats.MaxNewEdges = len(tr.NewEdges)
	}
	if tr.E1Count > s.Stats.MaxE1 {
		s.Stats.MaxE1 = tr.E1Count
	}
	if tr.E2Count > s.Stats.MaxE2 {
		s.Stats.MaxE2 = tr.E2Count
	}
	s.Stats.NewEndingPiD += tr.NewEndingPiD
	if collect {
		s.Targets[tr.V] = tr
	}
}

// buildParallel fans the per-target computation out over `workers`
// goroutines, each with a private engine over the shared weight assignment,
// and folds the results deterministically (target order is irrelevant: each
// target's edge set is independent).
func (s *Structure) buildParallel(g *graph.Graph, w *wsp.Assignment, src, workers int,
	collect bool, build func(*replace.Engine, int, bool) *replace.TargetResult) error {
	type chunk struct {
		results []*replace.TargetResult
		stats   replace.Stats
		err     error
	}
	n := g.N()
	out := make([]chunk, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			eng, err := replace.NewEngine(g, w, src)
			if err != nil {
				out[wi].err = err
				return
			}
			for v := wi; v < n; v += workers {
				if tr := build(eng, v, collect); tr != nil {
					out[wi].results = append(out[wi].results, tr)
				}
			}
			out[wi].stats = eng.Stats()
		}(wi)
	}
	wg.Wait()
	for wi := range out {
		if out[wi].err != nil {
			return fmt.Errorf("core: worker %d: %w", wi, out[wi].err)
		}
		for _, tr := range out[wi].results {
			s.fold(tr, collect)
		}
		s.Stats.Dijkstras += out[wi].stats.Dijkstras
		s.Stats.Fallbacks += out[wi].stats.Fallbacks
		s.Stats.TieWarnings += out[wi].stats.TieWarnings
	}
	return nil
}

// BuildFullPaths is the no-sparsification ablation: it runs the same
// replacement-path selection as BuildDual but keeps EVERY edge of every
// selected path instead of only last edges. Always a superset of the
// BuildDual structure with the same seed.
func BuildFullPaths(g *graph.Graph, s int, opts *Options) (*Structure, error) {
	forced := Options{CollectPaths: true}
	if opts != nil {
		forced.Seed = opts.Seed
	}
	st, err := BuildDual(g, s, &forced)
	if err != nil {
		return nil, err
	}
	for _, tr := range st.Targets {
		if tr == nil {
			continue
		}
		for _, rec := range tr.Records {
			for _, ge := range rec.Path.Edges() {
				if id, ok := g.EdgeID(ge.U, ge.V); ok {
					st.Edges.Add(id)
				}
			}
		}
	}
	if opts == nil || !opts.CollectPaths {
		st.Targets = nil
	}
	return st, nil
}

// BuildExhaustive constructs an f-failure FT-BFS structure for ANY f ≥ 0 as
// the union of the canonical shortest-path trees of G \ F over every fault
// set |F| ≤ f. This is the generic last-edge closure: each tree is exactly
// {LastE(SP(s,v,G\F,W)) : v ∈ V}, so the union is a valid f-FT-BFS
// structure, with size O(D_f(G)^f · n) on small-FT-diameter graphs
// (Obs. 1.6). Cost: C(m,f) Dijkstras — use only on small instances for
// f ≥ 2.
func BuildExhaustive(g *graph.Graph, s int, f int, opts *Options) (*Structure, error) {
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	if f < 0 || f > 3 {
		return nil, fmt.Errorf("core: exhaustive builder supports 0 ≤ f ≤ 3, got %d", f)
	}
	w := wsp.NewAssignment(g.M(), opts.seed())
	st := &Structure{
		G:       g,
		Sources: []int{s},
		Faults:  f,
		Edges:   graph.NewEdgeSet(g.M()),
	}
	m := g.M()
	units := m // first-index work units; f = 0 has only the empty set
	if f == 0 {
		units = 1
	}
	unionTrees(st, w, s, opts.Workers(), units, false, func(wi, workers int, addTree func(faults []int)) {
		if wi == 0 {
			addTree(nil)
		}
		if f < 1 {
			return
		}
		// Worker wi owns every fault set whose smallest edge ID is
		// ≡ wi (mod workers); the sets partition, the union does not
		// depend on the partition.
		for a := wi; a < m; a += workers {
			addTree([]int{a})
			if f < 2 {
				continue
			}
			for b := a + 1; b < m; b++ {
				addTree([]int{a, b})
				if f < 3 {
					continue
				}
				for c := b + 1; c < m; c++ {
					addTree([]int{a, b, c})
				}
			}
		}
	})
	return st, nil
}

// unionTrees fans canonical-tree enumeration out over `workers`
// goroutines, each with a PRIVATE search engine over the shared weight
// assignment and a private edge accumulator, then unions edges and sums
// counters into st. workers is clamped to `units` (the caller's
// first-index work-unit count — an idle worker would still allocate a
// search engine) and the CLAMPED count is passed to enumerate, whose
// (wi, workers) partition must visit every fault set exactly once; since
// every tree is deterministic under W, the merged structure is identical
// to the sequential build for any partition.
func unionTrees(st *Structure, w *wsp.Assignment, s, workers, units int, vertexFaults bool,
	enumerate func(wi, workers int, addTree func(faults []int))) {
	if workers > units {
		workers = max(1, units)
	}
	g := st.G
	type chunk struct {
		edges     *graph.EdgeSet
		dijkstras int
		ties      int
	}
	out := make([]chunk, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			search := wsp.NewSearch(g, w)
			edges := graph.NewEdgeSet(g.M())
			addTree := func(faults []int) {
				o := wsp.Options{Target: -1}
				if vertexFaults {
					o.DisabledVertices = faults
				} else {
					o.DisabledEdges = faults
				}
				search.Run(s, o)
				out[wi].dijkstras++
				for v := 0; v < g.N(); v++ {
					if id := search.ParentEdgeOf(v); id >= 0 {
						edges.Add(id)
					}
				}
			}
			enumerate(wi, workers, addTree)
			out[wi].edges = edges
			out[wi].ties = search.TieWarnings
		}(wi)
	}
	wg.Wait()
	for wi := range out {
		st.Edges.Union(out[wi].edges)
		st.Stats.Dijkstras += out[wi].dijkstras
		st.Stats.TieWarnings += out[wi].ties
	}
}

// BuildMultiSource composes per-source structures into an FT-MBFS structure
// for the given source set by unioning their edge sets. build is invoked
// once per source (e.g. BuildDual).
func BuildMultiSource(g *graph.Graph, sources []int, opts *Options,
	build func(*graph.Graph, int, *Options) (*Structure, error)) (*Structure, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: empty source set")
	}
	uniq := append([]int(nil), sources...)
	sort.Ints(uniq)
	out := &Structure{G: g, Edges: graph.NewEdgeSet(g.M())}
	for i, s := range uniq {
		if i > 0 && s == uniq[i-1] {
			continue
		}
		st, err := build(g, s, opts)
		if err != nil {
			return nil, fmt.Errorf("core: source %d: %w", s, err)
		}
		out.Edges.Union(st.Edges)
		out.Sources = append(out.Sources, s)
		out.Faults = st.Faults
		out.Stats.merge(&st.Stats)
	}
	return out, nil
}

// merge folds another build's counters into s: totals are summed,
// per-vertex maxima are maxed. Used by multi-source composition so the
// aggregate reports every BuildStats field, not a subset.
func (s *BuildStats) merge(o *BuildStats) {
	s.Dijkstras += o.Dijkstras
	s.Fallbacks += o.Fallbacks
	s.TieWarnings += o.TieWarnings
	s.NewEndingPiD += o.NewEndingPiD
	s.MaxNewEdges = max(s.MaxNewEdges, o.MaxNewEdges)
	s.MaxE1 = max(s.MaxE1, o.MaxE1)
	s.MaxE2 = max(s.MaxE2, o.MaxE2)
}
