package core

import "sync/atomic"

// Progress publishes a running build's effort as monotonic atomic
// counters. A builder given a Progress (via Options.Progress) only ever
// adds to the counters, so any number of concurrent readers may Snapshot
// it while the build runs and observe values that never decrease. The
// zero value is ready to use; all methods are nil-receiver safe so
// builders can publish unconditionally.
//
// Counter semantics, shared by every builder in this module:
//
//   - UnitsTotal is the builder's work-unit total, announced once up
//     front (Options.AnnounceTotal; multi-source composition announces
//     the whole composite through its first per-source build), so
//     UnitsDone/UnitsTotal is a live, never-regressing completion
//     fraction.
//   - UnitsDone counts completed work units (targets, fault sets, BFS
//     passes — whatever the builder enumerates).
//   - Dijkstras counts shortest-path computations, matching
//     BuildStats.Dijkstras at completion.
//   - EdgesKept counts kept-edge discoveries. It is exact for sequential
//     builds; parallel workers count into their private accumulators, so
//     while they run the value is an upper bound on the final |E_H|
//     (duplicates collapse in the final union).
//   - PhaseNS breaks the build's wall time into the three build phases
//     (base trees, fault-event loop, final union); parallel workers each
//     add their own phase time, so the counters are goroutine-seconds,
//     not wall seconds. Phase times live only here — never in BuildStats,
//     which is snapshot-encoded and golden-pinned.
type Progress struct {
	unitsDone  atomic.Int64
	unitsTotal atomic.Int64
	dijkstras  atomic.Int64
	edgesKept  atomic.Int64
	phaseNS    [numPhases]atomic.Int64
}

// Phase labels one of the three build phases timed into Progress.
type Phase int

// Build phases: base-tree construction (per-worker base searches and
// engine setup), the fault-event loop (repair/replacement-path work), and
// the final merge of per-worker accumulators.
const (
	PhaseBase Phase = iota
	PhaseEvents
	PhaseUnion
	numPhases
)

// String implements fmt.Stringer.
func (ph Phase) String() string {
	switch ph {
	case PhaseBase:
		return "base"
	case PhaseEvents:
		return "events"
	case PhaseUnion:
		return "union"
	default:
		return "phase?"
	}
}

// AddPhaseNS records ns nanoseconds spent in the given phase.
func (p *Progress) AddPhaseNS(ph Phase, ns int64) {
	if p != nil && ph >= 0 && ph < numPhases {
		p.phaseNS[ph].Add(ns)
	}
}

// AddUnits records n completed work units.
func (p *Progress) AddUnits(n int64) {
	if p != nil {
		p.unitsDone.Add(n)
	}
}

// AddTotal grows the expected work-unit total by n.
func (p *Progress) AddTotal(n int64) {
	if p != nil {
		p.unitsTotal.Add(n)
	}
}

// AddDijkstras records n shortest-path computations.
func (p *Progress) AddDijkstras(n int64) {
	if p != nil {
		p.dijkstras.Add(n)
	}
}

// AddEdges records n kept-edge discoveries.
func (p *Progress) AddEdges(n int64) {
	if p != nil {
		p.edgesKept.Add(n)
	}
}

// Snapshot returns a consistent-enough point-in-time copy: each counter
// is read atomically (the set is not read under one lock, which is fine
// because every counter is monotone). A nil receiver snapshots to zero.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		UnitsDone:  p.unitsDone.Load(),
		UnitsTotal: p.unitsTotal.Load(),
		Dijkstras:  p.dijkstras.Load(),
		EdgesKept:  p.edgesKept.Load(),
		BaseNS:     p.phaseNS[PhaseBase].Load(),
		EventsNS:   p.phaseNS[PhaseEvents].Load(),
		UnionNS:    p.phaseNS[PhaseUnion].Load(),
	}
}

// ProgressSnapshot is one observation of a build's Progress counters.
type ProgressSnapshot struct {
	UnitsDone  int64
	UnitsTotal int64
	Dijkstras  int64
	EdgesKept  int64
	// Per-phase goroutine-time in nanoseconds (see Progress doc).
	BaseNS, EventsNS, UnionNS int64
}

// Fraction returns the completion fraction in [0,1]; 0 when the total is
// still unknown.
func (s ProgressSnapshot) Fraction() float64 {
	if s.UnitsTotal <= 0 {
		return 0
	}
	f := float64(s.UnitsDone) / float64(s.UnitsTotal)
	if f > 1 {
		return 1
	}
	return f
}
