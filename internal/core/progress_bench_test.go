package core

import (
	"context"
	"testing"

	"repro/internal/gen"
)

// These benchmarks pin the cost of the cancellation/progress plumbing:
// an amortized ctx poll plus four atomic adds per work unit must stay
// under 2% of build time (EXPERIMENTS.md records the measured pairs).

func benchBuild(b *testing.B, opts *Options, n int,
	build func(*Options) (*Structure, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := build(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func ctxOpts() *Options {
	// A cancellable (non-Background) context so the poller takes its
	// real path, plus a live progress sink.
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel // released with the benchmark process
	return &Options{Seed: 1, Ctx: ctx, Progress: &Progress{}}
}

func BenchmarkBuildDualPlain(b *testing.B) {
	g := gen.SparseGNP(400, 5, 7)
	benchBuild(b, &Options{Seed: 1}, 400, func(o *Options) (*Structure, error) { return BuildDual(g, 0, o) })
}

func BenchmarkBuildDualCtx(b *testing.B) {
	g := gen.SparseGNP(400, 5, 7)
	benchBuild(b, ctxOpts(), 400, func(o *Options) (*Structure, error) { return BuildDual(g, 0, o) })
}

func BenchmarkBuildExhaustivePlain(b *testing.B) {
	g := gen.SparseGNP(90, 4, 7)
	benchBuild(b, &Options{Seed: 1}, 90, func(o *Options) (*Structure, error) { return BuildExhaustive(g, 0, 2, o) })
}

func BenchmarkBuildExhaustiveCtx(b *testing.B) {
	g := gen.SparseGNP(90, 4, 7)
	benchBuild(b, ctxOpts(), 90, func(o *Options) (*Structure, error) { return BuildExhaustive(g, 0, 2, o) })
}
