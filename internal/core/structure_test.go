package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// buildAndVerify builds with the given builder and exhaustively verifies the
// result for the structure's fault budget.
func buildAndVerify(t *testing.T, name string, g *graph.Graph, s int,
	build func(*graph.Graph, int, *Options) (*Structure, error)) *Structure {
	t.Helper()
	st, err := build(g, s, &Options{Seed: 7})
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	rep := verify.Structure(g, st, []int{s}, st.Faults, nil)
	if !rep.OK {
		t.Fatalf("%s: verification failed (%d checked): first violations %v",
			name, rep.FaultSetsChecked, rep.Violations)
	}
	return st
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{
		"path10":    gen.PathGraph(10),
		"cycle9":    gen.Cycle(9),
		"grid4x4":   gen.Grid(4, 4),
		"gnp20":     gen.GNP(20, 0.2, 3),
		"gnp25d":    gen.GNP(25, 0.35, 11),
		"sparse30":  gen.SparseGNP(30, 3.5, 5),
		"layered":   gen.Layered(4, 5, 0.4, 2),
		"chords":    gen.TreePlusChords(24, 6, 9),
		"complete8": gen.Complete(8),
		"hcube4":    gen.Hypercube(4),
	}
	for name, g := range gs {
		if err := gen.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return gs
}

func TestBuildDualVerifiesEverywhere(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			st := buildAndVerify(t, name, g, 0, BuildDual)
			if st.NumEdges() > g.M() {
				t.Fatalf("structure larger than graph")
			}
			if st.Stats.TieWarnings != 0 {
				t.Errorf("tie warnings: %d", st.Stats.TieWarnings)
			}
		})
	}
}

func TestBuildDualFromOtherSources(t *testing.T) {
	g := gen.GNP(18, 0.25, 4)
	for _, s := range []int{3, 9, 17} {
		buildAndVerify(t, "gnp18", g, s, BuildDual)
	}
}

func TestBuildSingleVerifies(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			buildAndVerify(t, name, g, 0, BuildSingle)
		})
	}
}

func TestBuildSingleSmallerThanDual(t *testing.T) {
	g := gen.GNP(30, 0.3, 8)
	one, err := BuildSingle(g, 0, &Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	two, err := BuildDual(g, 0, &Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if one.NumEdges() > two.NumEdges() {
		t.Fatalf("single (%d edges) larger than dual (%d edges)", one.NumEdges(), two.NumEdges())
	}
}

func TestBuildExhaustiveMatchesDefinition(t *testing.T) {
	g := gen.GNP(14, 0.25, 6)
	for f := 0; f <= 2; f++ {
		st, err := BuildExhaustive(g, 0, f, &Options{Seed: 3})
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		rep := verify.Structure(g, st, []int{0}, f, nil)
		if !rep.OK {
			t.Fatalf("f=%d: %v", f, rep.Violations)
		}
	}
}

func TestBuildExhaustiveF3SmallGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("f=3 exhaustive build is cubic in m")
	}
	g := gen.Cycle(8)
	st, err := BuildExhaustive(g, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A cycle minus 3 edges: any f=3 FT-BFS of a cycle must keep all edges.
	if st.NumEdges() != g.M() {
		t.Fatalf("cycle f=3 structure has %d edges, want %d", st.NumEdges(), g.M())
	}
	rep := verify.Sampled(g, st.DisabledEdges(), []int{0}, 3, 200, 1, nil)
	if !rep.OK {
		t.Fatalf("sampled verify: %v", rep.Violations)
	}
}

func TestBuildExhaustiveRejectsBadArgs(t *testing.T) {
	g := gen.PathGraph(4)
	if _, err := BuildExhaustive(g, -1, 1, nil); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := BuildExhaustive(g, 0, 4, nil); err == nil {
		t.Fatal("f=4 accepted")
	}
}

func TestBuildFullPathsSupersetOfDual(t *testing.T) {
	g := gen.GNP(20, 0.25, 12)
	dual, err := BuildDual(g, 0, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildFullPaths(g, 0, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dual.Edges.ForEach(func(id int) {
		if !full.Edges.Has(id) {
			t.Fatalf("edge %d in dual but not in full-paths structure", id)
		}
	})
	rep := verify.Structure(g, full, []int{0}, 2, nil)
	if !rep.OK {
		t.Fatalf("full-paths structure invalid: %v", rep.Violations)
	}
}

func TestBuildMultiSource(t *testing.T) {
	g := gen.GNP(16, 0.3, 2)
	st, err := BuildMultiSource(g, []int{0, 5, 5, 11}, &Options{Seed: 1}, BuildDual)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sources) != 3 {
		t.Fatalf("sources deduped to %v", st.Sources)
	}
	rep := verify.Structure(g, st, []int{0, 5, 11}, 2, nil)
	if !rep.OK {
		t.Fatalf("multi-source verify: %v", rep.Violations)
	}
}

func TestBuildMultiSourceEmpty(t *testing.T) {
	g := gen.PathGraph(3)
	if _, err := BuildMultiSource(g, nil, nil, BuildDual); err == nil {
		t.Fatal("empty source set accepted")
	}
}

func TestStructureAccessors(t *testing.T) {
	g := gen.PathGraph(5)
	st, err := BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A path graph admits no alternative routes: H must be the whole path.
	if st.NumEdges() != 4 {
		t.Fatalf("path structure edges = %d", st.NumEdges())
	}
	if len(st.DisabledEdges()) != 0 {
		t.Fatalf("path structure should keep every edge")
	}
	sub := st.Subgraph()
	if sub.M() != 4 || sub.N() != 5 {
		t.Fatalf("subgraph wrong: n=%d m=%d", sub.N(), sub.M())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := gen.GNP(22, 0.25, 19)
	a, err := BuildDual(g, 0, &Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDual(g, 0, &Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ida, idb := a.Edges.IDs(), b.Edges.IDs()
	for i := range ida {
		if ida[i] != idb[i] {
			t.Fatalf("same seed, different edge sets")
		}
	}
}

func TestDualOnDisconnectedGraph(t *testing.T) {
	gb := graph.NewBuilder(6)
	gb.MustAddEdge(0, 1)
	gb.MustAddEdge(1, 2)
	gb.MustAddEdge(3, 4) // separate component
	gb.MustAddEdge(4, 5)
	g := gb.Freeze()
	st, err := BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Structure(g, st, []int{0}, 2, nil)
	if !rep.OK {
		t.Fatalf("disconnected verify: %v", rep.Violations)
	}
}

func TestSummaryContainsEnvelopes(t *testing.T) {
	g := gen.GNP(20, 0.3, 3)
	st, err := BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := st.Summary()
	for _, want := range []string{"sources=[0] f=2", "edges kept", "Theorem 1.1", "searches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	one, err := BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(one.Summary(), "n^{3/2}") {
		t.Fatalf("single summary missing envelope:\n%s", one.Summary())
	}
	vx, err := BuildVertexExhaustive(g, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vx.Summary(), "vertex faults") {
		t.Fatalf("vertex summary missing model:\n%s", vx.Summary())
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	g := gen.SparseGNP(60, 5, 21)
	seq, err := BuildDual(g, 0, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := BuildDual(g, 0, &Options{Seed: 9, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.NumEdges() != seq.NumEdges() {
			t.Fatalf("workers=%d: %d edges vs sequential %d", workers, par.NumEdges(), seq.NumEdges())
		}
		a, b := seq.Edges.IDs(), par.Edges.IDs()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: edge sets differ", workers)
			}
		}
		if par.Stats.MaxNewEdges != seq.Stats.MaxNewEdges {
			t.Fatalf("stats diverged: %d vs %d", par.Stats.MaxNewEdges, seq.Stats.MaxNewEdges)
		}
	}
}

func TestParallelBuildSingleAndCollect(t *testing.T) {
	g := gen.GNP(24, 0.25, 13)
	par, err := BuildSingle(g, 0, &Options{Seed: 2, Parallelism: 3, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Structure(g, par, []int{0}, 1, nil)
	if !rep.OK {
		t.Fatalf("parallel single verify: %v", rep.Violations)
	}
	filled := 0
	for _, tr := range par.Targets {
		if tr != nil {
			filled++
		}
	}
	if filled != g.N()-1 {
		t.Fatalf("collected %d targets, want %d", filled, g.N()-1)
	}
}

// sameEdgeSets reports whether two structures keep exactly the same edges.
func sameEdgeSets(a, b *Structure) bool {
	ida, idb := a.Edges.IDs(), b.Edges.IDs()
	if len(ida) != len(idb) {
		return false
	}
	for i := range ida {
		if ida[i] != idb[i] {
			return false
		}
	}
	return true
}

// TestBuildExhaustiveParallelMatches checks Options.Parallelism on the
// exhaustive builder: identical edge set and counters for any worker
// count, including workers exceeding the work.
func TestBuildExhaustiveParallelMatches(t *testing.T) {
	g := gen.GNP(14, 0.3, 6)
	for _, f := range []int{0, 1, 2} {
		seq, err := BuildExhaustive(g, 0, f, &Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			par, err := BuildExhaustive(g, 0, f, &Options{Seed: 5, Parallelism: workers})
			if err != nil {
				t.Fatalf("f=%d workers=%d: %v", f, workers, err)
			}
			if !sameEdgeSets(seq, par) {
				t.Fatalf("f=%d workers=%d: edge sets differ (%d vs %d edges)",
					f, workers, seq.NumEdges(), par.NumEdges())
			}
			if par.Stats.Dijkstras != seq.Stats.Dijkstras {
				t.Fatalf("f=%d workers=%d: Dijkstras %d vs %d",
					f, workers, par.Stats.Dijkstras, seq.Stats.Dijkstras)
			}
			if par.Stats.TieWarnings != seq.Stats.TieWarnings {
				t.Fatalf("f=%d workers=%d: TieWarnings %d vs %d",
					f, workers, par.Stats.TieWarnings, seq.Stats.TieWarnings)
			}
		}
	}
}

// TestBuildVertexExhaustiveParallelMatches is the same equivalence check
// for the vertex-failure builder.
func TestBuildVertexExhaustiveParallelMatches(t *testing.T) {
	g := gen.GNP(14, 0.3, 6)
	for _, f := range []int{1, 2} {
		seq, err := BuildVertexExhaustive(g, 0, f, &Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 16} {
			par, err := BuildVertexExhaustive(g, 0, f, &Options{Seed: 5, Parallelism: workers})
			if err != nil {
				t.Fatalf("f=%d workers=%d: %v", f, workers, err)
			}
			if !sameEdgeSets(seq, par) {
				t.Fatalf("f=%d workers=%d: edge sets differ", f, workers)
			}
			if par.Stats.Dijkstras != seq.Stats.Dijkstras || par.Stats.TieWarnings != seq.Stats.TieWarnings {
				t.Fatalf("f=%d workers=%d: stats differ: %+v vs %+v", f, workers, par.Stats, seq.Stats)
			}
		}
	}
}

// TestMultiSourceStatsAggregation checks BuildMultiSource reports every
// BuildStats field: sums for totals (Dijkstras, Fallbacks, TieWarnings,
// NewEndingPiD), maxima for the per-vertex envelopes (MaxNewEdges, MaxE1,
// MaxE2). MaxE1/MaxE2/NewEndingPiD were silently dropped before.
func TestMultiSourceStatsAggregation(t *testing.T) {
	g := gen.SparseGNP(80, 4, 2) // exercises E1, E2 and new-ending paths
	sources := []int{0, 17, 41}
	opts := &Options{Seed: 9}
	var want BuildStats
	for _, s := range sources {
		st, err := BuildDual(g, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		want.merge(&st.Stats)
	}
	if want.MaxE1 == 0 || want.MaxE2 == 0 || want.NewEndingPiD == 0 {
		t.Fatalf("test graph exercises no E1/E2/new-ending paths: %+v", want)
	}
	ms, err := BuildMultiSource(g, sources, opts, BuildDual)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Stats != want {
		t.Fatalf("multi-source stats = %+v, want %+v", ms.Stats, want)
	}
}

func TestDisabledEdgesMemoized(t *testing.T) {
	g := gen.GNP(30, 0.3, 5)
	st, err := BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := st.DisabledEdges()
	second := st.DisabledEdges()
	if len(first) == 0 {
		t.Fatalf("expected a non-trivial structure (some disabled edges)")
	}
	if &first[0] != &second[0] || len(first) != len(second) {
		t.Fatalf("DisabledEdges not memoized: distinct backing arrays")
	}
	// The view must be correct and exactly the complement of Edges.
	want := g.M() - st.Edges.Len()
	if len(first) != want {
		t.Fatalf("DisabledEdges len = %d, want %d", len(first), want)
	}
	for _, id := range first {
		if st.Edges.Has(id) {
			t.Fatalf("DisabledEdges contains kept edge %d", id)
		}
	}
	// Appending to the view must not clobber the shared cache: the cached
	// slice is built with no spare capacity, so append reallocates.
	if cap(first) != len(first) {
		t.Fatalf("cached slice has spare capacity %d > len %d", cap(first), len(first))
	}
	grown := append(first, -1)
	third := st.DisabledEdges()
	if len(third) != want || third[len(third)-1] == -1 {
		t.Fatalf("append to the view corrupted the cache")
	}
	_ = grown
}

func TestDisabledEdgesConcurrent(t *testing.T) {
	g := gen.GNP(40, 0.25, 9)
	st, err := BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	out := make([][]int, 8)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = st.DisabledEdges()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(out); i++ {
		if len(out[i]) != len(out[0]) {
			t.Fatalf("goroutine %d saw %d disabled edges, goroutine 0 saw %d", i, len(out[i]), len(out[0]))
		}
		if len(out[0]) > 0 && &out[i][0] != &out[0][0] {
			t.Fatalf("goroutine %d got a different backing array", i)
		}
	}
}
