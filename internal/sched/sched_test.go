package sched

import (
	"sync"
	"testing"
)

// TestDispenserCoversExactly checks that concurrent workers claim every
// index exactly once, for index spaces around the grain boundaries.
func TestDispenserCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 50000} {
		for _, workers := range []int{1, 3, 8} {
			d := NewDispenser(n, workers)
			var mu sync.Mutex
			seen := make([]int, n)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						lo, hi, ok := d.Next()
						if !ok {
							return
						}
						mu.Lock()
						for i := lo; i < hi; i++ {
							seen[i]++
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d claimed %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestDispenserGrainShrinks checks the adaptive grain: early claims are
// coarse, the final claims are single indices (tail straggle bound).
func TestDispenserGrainShrinks(t *testing.T) {
	d := NewDispenser(10000, 2)
	lo, hi, ok := d.Next()
	if !ok || hi-lo < 100 {
		t.Fatalf("first claim [%d,%d) too fine for 10000/2 workers", lo, hi)
	}
	var last int
	for {
		lo, hi, ok = d.Next()
		if !ok {
			break
		}
		last = hi - lo
	}
	if last != 1 {
		t.Fatalf("final claim spans %d indices, want 1", last)
	}
}
