// Package sched provides the work-stealing index dispenser used by the
// parallel build fan-outs. Static striping (worker wi takes indices
// wi, wi+W, wi+2W, …) balances well when every index costs the same; the
// incremental repair kernel breaks that assumption — a fault event's cost
// is proportional to the subtree it detaches, which varies by orders of
// magnitude — so a slow stripe would leave the other workers idle at the
// tail. The dispenser hands out contiguous ranges from one atomic cursor
// instead: any idle worker steals the next range, and the grain adapts
// from coarse (amortizing the atomic) to fine (bounding the tail straggle
// to one small range) as the cursor approaches the end.
package sched

import "sync/atomic"

// maxGrain caps a single claim so one early claim cannot swallow a
// constant fraction of a small index space.
const maxGrain = 4096

// Dispenser hands out disjoint contiguous ranges covering [0, n).
// Safe for concurrent use by any number of workers.
type Dispenser struct {
	next    atomic.Int64
	n       int64
	workers int64
}

// NewDispenser returns a dispenser over [0, n) tuned for the given worker
// count (grain ≈ remaining/(4·workers), clamped to [1, maxGrain]).
func NewDispenser(n, workers int) *Dispenser {
	if workers < 1 {
		workers = 1
	}
	return &Dispenser{n: int64(n), workers: int64(workers)}
}

// Next claims the next range [lo, hi). ok is false when the index space
// is exhausted; a worker loops on Next until then.
func (d *Dispenser) Next() (lo, hi int, ok bool) {
	for {
		cur := d.next.Load()
		if cur >= d.n {
			return 0, 0, false
		}
		grain := (d.n - cur) / (4 * d.workers)
		if grain < 1 {
			grain = 1
		}
		if grain > maxGrain {
			grain = maxGrain
		}
		if d.next.CompareAndSwap(cur, cur+grain) {
			return int(cur), int(cur + grain), true
		}
	}
}
