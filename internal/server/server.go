// Package server implements ftbfsd, a long-lived HTTP JSON service that
// serves fault-tolerant distance and routing queries at scale — the
// paper's motivating scenario (answering queries under failures) exposed
// as a network service instead of one-shot CLIs.
//
// The API is versioned under /v1:
//
//	POST   /v1/graphs                       register a graph (gen spec or edge list)
//	GET    /v1/graphs                       list graphs
//	GET    /v1/graphs/{graph}               graph info + build IDs
//	DELETE /v1/graphs/{graph}               unregister
//	POST   /v1/graphs/{graph}/builds        start an async structure build
//	GET    /v1/graphs/{graph}/builds/{build}        build status, stats, live progress, cache counters
//	DELETE /v1/graphs/{graph}/builds/{build}        cancel a queued/running build; remove a terminal one
//	POST   /v1/graphs/{graph}/builds/{build}/query  JSON batch of {source,target?,faults} (NDJSON streaming opt-in)
//	GET    /v1/graphs/{graph}/builds/{build}/dist   ?source&target&faults=3,9
//	GET    /v1/graphs/{graph}/builds/{build}/dists  ?source&faults
//	GET    /v1/graphs/{graph}/builds/{build}/route  ?source&target&faults
//	GET    /v1/stats                        build-plane gauges: slots, queue, cache aggregate
//	GET    /healthz
//
// Builds run asynchronously (they queue behind a bounded semaphore; poll
// the build resource through "queued" and "building" until "ready" —
// running builds report live progress counters, and DELETE cancels them
// cooperatively, normally within a few milliseconds); the query path is
// served by a pool of per-goroutine oracles over one shared immutable
// OracleSet whose failure-event memo is sharded by key hash, so
// concurrent clients asking about one failure event share a single BFS
// over the sparse structure without contending on a global lock.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/server/batchcodec"
	"repro/internal/snap"
)

// DefaultCacheBytes is the per-build memo budget applied when
// Config.CacheBytes is zero.
const DefaultCacheBytes = 256 << 20

// Config tunes the service. The zero value is ready to use.
type Config struct {
	// MaxConcurrentBuilds bounds simultaneously running structure builds
	// (default: GOMAXPROCS; builds beyond it queue).
	MaxConcurrentBuilds int
	// CacheEntries caps each build's shared failure-event memo by entry
	// count. 0 means no entry cap — the byte budget alone governs, which
	// is the default and lets delta-compressed events pack the budget;
	// < 0 disables memoization entirely.
	CacheEntries int
	// CacheBytes bounds each build's memo by memory (default
	// DefaultCacheBytes = 256 MiB; < 0 removes the byte bound, falling
	// back to an oracle.DefaultCacheEntries entry cap when CacheEntries
	// is 0 — a memo with no bound at all is never offered). Entries
	// are byte-accounted — delta-compressed events are charged only for
	// what the fault actually changed — and least-recently-used events
	// are evicted to stay within the budget. Untrusted clients can force
	// one entry per distinct fault set, so the bound must not scale
	// with n; pinned fault-free base tables (4 bytes × n per source) sit
	// outside it and are reported separately as pinnedBytes.
	CacheBytes int64
	// CacheShards overrides the memo shard count per build (0 = auto:
	// ~GOMAXPROCS shards, rounded to a power of two). 1 restores the
	// single global LRU.
	CacheShards int
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// MaxBatchQueries bounds the items of one batch query request
	// (default 65536).
	MaxBatchQueries int
	// OrderVertices renumbers every registered graph's vertices into BFS
	// order at freeze time (see graph.ReorderBFS), improving query-plane
	// locality. Clients are unaffected: vertex IDs on the wire keep the
	// registered numbering and are translated at the API boundary. A
	// per-graph "ordered" field on POST /v1/graphs overrides the default.
	OrderVertices bool
	// Store persists completed builds as binary snapshots (internal/snap
	// format) and serves warm starts and snapshot replication. nil
	// disables persistence: artifacts live and die with the process,
	// exactly the pre-snapshot behavior.
	Store Store
	// MaxSnapshotBytes bounds uploaded snapshot bodies on the PUT
	// snapshot endpoint (default 1 GiB).
	MaxSnapshotBytes int64
	// PrewarmRestored makes WarmStart pin each restored build's
	// fault-free (empty fault set) distance tables — the memo's tier-0
	// bases — so the most common query after a restart, no faults, hits
	// immediately and the first faulted queries delta-encode against a
	// ready base. The count of warmed tables is reported by
	// GET /v1/stats.
	PrewarmRestored bool
	// BuildLog, when set, receives one event per build reaching a
	// terminal state — ready, failed or cancelled — so operators can
	// audit the build plane without polling build resources. It is called
	// outside the registry lock, possibly from several goroutines at
	// once, and must not block for long.
	BuildLog func(BuildEvent)
}

// BuildEvent describes one terminal build outcome for Config.BuildLog.
type BuildEvent struct {
	Graph   string
	Build   string
	Mode    string
	Sources []int
	// Status is the terminal state: ready, failed or cancelled.
	Status    string
	QueuedMS  float64
	ElapsedMS float64
	// Dijkstras counts the searches actually run: the final build stats
	// for ready builds, the live progress counter (work done before the
	// stop) for cancelled and failed ones.
	Dijkstras int64
	// Edges is |E_H| and GraphEdges |E(G)|, populated for ready builds.
	Edges      int
	GraphEdges int
	Error      string
}

// Server is the ftbfsd registry and HTTP handler factory. It is safe for
// concurrent use.
type Server struct {
	cfg      Config
	mu       sync.RWMutex
	graphs   map[string]*graphEntry // guarded by mu
	buildSeq int                    // guarded by mu
	buildSem chan struct{}
	// baseCtx parents every build's context; stop cancels it (graceful
	// shutdown). builds tracks the build goroutines plus their background
	// snapshot writes so Shutdown can wait for all of them. closed
	// (guarded by mu, set before Shutdown waits) rejects new builds, so a
	// create racing Shutdown can neither leak past the WaitGroup nor Add
	// from zero concurrently with Wait.
	baseCtx context.Context
	stop    context.CancelFunc
	builds  sync.WaitGroup
	closed  bool // guarded by mu
	// warmed counts oracle-memo entries seeded by warm-start prewarming
	// (Config.PrewarmRestored), surfaced in GET /v1/stats.
	warmed atomic.Int64
}

// New returns a Server with the given config (nil for defaults).
func New(cfg *Config) *Server {
	s := &Server{graphs: make(map[string]*graphEntry)}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg != nil {
		s.cfg = *cfg
	}
	if s.cfg.MaxConcurrentBuilds <= 0 {
		s.cfg.MaxConcurrentBuilds = runtime.GOMAXPROCS(0)
	}
	if s.cfg.CacheBytes == 0 {
		s.cfg.CacheBytes = DefaultCacheBytes
	}
	if s.cfg.MaxBodyBytes <= 0 {
		s.cfg.MaxBodyBytes = 32 << 20
	}
	if s.cfg.MaxBatchQueries <= 0 {
		s.cfg.MaxBatchQueries = 65536
	}
	if s.cfg.MaxSnapshotBytes <= 0 {
		s.cfg.MaxSnapshotBytes = 1 << 30
	}
	s.buildSem = make(chan struct{}, s.cfg.MaxConcurrentBuilds)
	return s
}

// RegisterGraph registers a generated graph programmatically (the
// daemon's -demo flag and tests use it; HTTP clients use POST /v1/graphs).
func (s *Server) RegisterGraph(name string, spec *GenSpec) error {
	if !nameRe.MatchString(name) {
		return fmt.Errorf("server: bad graph name %q", name)
	}
	g, err := spec.generate()
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if s.cfg.OrderVertices {
		g = graph.ReorderBFS(g)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.graphs[name]; exists {
		return fmt.Errorf("server: graph %q already exists", name)
	}
	s.graphs[name] = &graphEntry{name: name, g: g, created: time.Now(), builds: make(map[string]*buildEntry)}
	return nil
}

// RegisterDemo registers the quickstart graph "demo": gnp n=200 p=0.05
// seed=7, matching the curl walkthrough in DESIGN.md.
func (s *Server) RegisterDemo() error {
	return s.RegisterGraph("demo", &GenSpec{Family: "gnp", N: 200, P: 0.05, Seed: 7})
}

// Handler returns the route table as an http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/graphs", s.handleCreateGraph)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("GET /v1/graphs/{graph}", s.handleGetGraph)
	mux.HandleFunc("DELETE /v1/graphs/{graph}", s.handleDeleteGraph)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/graphs/{graph}/builds", s.handleCreateBuild)
	mux.HandleFunc("GET /v1/graphs/{graph}/builds/{build}", s.handleGetBuild)
	mux.HandleFunc("DELETE /v1/graphs/{graph}/builds/{build}", s.handleDeleteBuild)
	mux.HandleFunc("GET /v1/graphs/{graph}/builds/{build}/snapshot", s.handleGetSnapshot)
	mux.HandleFunc("PUT /v1/graphs/{graph}/builds/{build}/snapshot", s.handlePutSnapshot)
	mux.HandleFunc("POST /v1/graphs/{graph}/builds/{build}/query", s.handleBatchQuery)
	mux.HandleFunc("GET /v1/graphs/{graph}/builds/{build}/dist", s.handleDist)
	mux.HandleFunc("GET /v1/graphs/{graph}/builds/{build}/dists", s.handleDists)
	mux.HandleFunc("GET /v1/graphs/{graph}/builds/{build}/route", s.handleRoute)
	return mux
}

// ---- JSON plumbing ----

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// ---- graph registry ----

type createGraphRequest struct {
	Name     string   `json:"name"`
	Gen      *GenSpec `json:"gen,omitempty"`
	EdgeList string   `json:"edgeList,omitempty"`
	// Ordered overrides Config.OrderVertices for this graph: BFS vertex
	// renumbering at freeze time, invisible on the wire.
	Ordered *bool `json:"ordered,omitempty"`
}

type graphInfo struct {
	Name    string   `json:"name"`
	N       int      `json:"n"`
	M       int      `json:"m"`
	Ordered bool     `json:"ordered,omitempty"`
	Builds  []string `json:"builds"`
}

// graphInfoLocked renders one graph's wire info. Callers must hold s.mu
// (read suffices).
//
//ftbfs:holds Server.mu
func graphInfoLocked(g *graphEntry) graphInfo {
	return graphInfo{Name: g.name, N: g.g.N(), M: g.g.M(), Ordered: g.g.Ordered(), Builds: append([]string{}, g.order...)}
}

func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	var req createGraphRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeErr(w, bodyErrStatus(err), "bad request body: %v", err)
		return
	}
	if !nameRe.MatchString(req.Name) {
		writeErr(w, http.StatusBadRequest, "bad graph name %q (want %s)", req.Name, nameRe)
		return
	}
	if (req.Gen == nil) == (req.EdgeList == "") {
		writeErr(w, http.StatusBadRequest, "provide exactly one of \"gen\" or \"edgeList\"")
		return
	}
	// Reject duplicate names before paying for generation/parsing (the
	// insert below re-checks under the same lock, so a racing create is
	// still caught).
	s.mu.RLock()
	_, exists := s.graphs[req.Name]
	s.mu.RUnlock()
	if exists {
		writeErr(w, http.StatusConflict, "graph %q already exists", req.Name)
		return
	}
	var gg *graph.Graph
	if req.Gen != nil {
		var err error
		if gg, err = req.Gen.generate(); err != nil {
			writeErr(w, http.StatusBadRequest, "gen: %v", err)
			return
		}
	} else {
		var err error
		if gg, err = parseEdgeList(req.EdgeList); err != nil {
			writeErr(w, http.StatusBadRequest, "edge list: %v", err)
			return
		}
	}
	ordered := s.cfg.OrderVertices
	if req.Ordered != nil {
		ordered = *req.Ordered
	}
	if ordered {
		gg = graph.ReorderBFS(gg)
	}
	g := &graphEntry{name: req.Name, g: gg}
	g.created = time.Now()
	g.builds = make(map[string]*buildEntry)
	s.mu.Lock()
	if _, exists := s.graphs[req.Name]; exists {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "graph %q already exists", req.Name)
		return
	}
	s.graphs[req.Name] = g
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, graphInfo{Name: g.name, N: g.g.N(), M: g.g.M(), Ordered: g.g.Ordered(), Builds: []string{}})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]graphInfo, 0, len(s.graphs))
	for _, g := range s.graphs {
		out = append(out, graphInfoLocked(g))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	g, ok := s.graphs[r.PathValue("graph")]
	var info graphInfo
	if ok {
		info = graphInfoLocked(g)
	}
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no graph %q", r.PathValue("graph"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDeleteGraph unregisters a graph and cancels every in-flight or
// queued build of it: each build's context is cancelled after the entry
// leaves the registry, so a running builder returns at its next poll
// point and frees its semaphore slot, and a queued one never starts.
// The cancelled goroutines publish their terminal status into the
// now-unreachable entry and are garbage-collected with it.
//
// Snapshot cleanup ordering matters twice over. The registry entry is
// removed FIRST: persistBuild's post-Put liveness check then guarantees
// that a background snapshot racing this delete is cleaned up by one side
// or the other, whichever runs last. And the store delete is attempted
// even when the graph is already unregistered, so if it fails (500) the
// operator can retry the DELETE and still reach the orphaned files.
func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("graph")
	s.mu.Lock()
	g, ok := s.graphs[name]
	delete(s.graphs, name)
	var cancels []context.CancelFunc
	if ok {
		for _, be := range g.builds {
			if be.cancel != nil && (be.status == StatusQueued || be.status == StatusBuilding) {
				cancels = append(cancels, be.cancel)
			}
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	if s.cfg.Store != nil && nameRe.MatchString(name) {
		if err := s.cfg.Store.DeleteGraph(name); err != nil {
			writeErr(w, http.StatusInternalServerError,
				"graph unregistered but snapshots not deleted (retry DELETE to clean them): %v", err)
			return
		}
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- builds ----

type createBuildRequest struct {
	Mode        string `json:"mode"`
	Sources     []int  `json:"sources"`
	Seed        int64  `json:"seed,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
}

type buildStats struct {
	Dijkstras    int `json:"dijkstras"`
	Fallbacks    int `json:"fallbacks"`
	TieWarnings  int `json:"tieWarnings"`
	MaxNewEdges  int `json:"maxNewEdges"`
	MaxE1        int `json:"maxE1"`
	MaxE2        int `json:"maxE2"`
	NewEndingPiD int `json:"newEndingPiD"`
}

type cacheInfo struct {
	Len       int   `json:"len"`
	Capacity  int   `json:"capacity"`
	Shards    int   `json:"shards"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Byte accounting of the two-tier memo: BytesUsed/BytesCapacity cover
	// the evictable tier-1 entries (DeltaEntries of them delta-compressed,
	// FullEntries stored as full tables); PinnedBytes counts the per-source
	// fault-free base tables pinned outside the budget.
	BytesUsed     int64 `json:"bytesUsed"`
	BytesCapacity int64 `json:"bytesCapacity"`
	DeltaEntries  int   `json:"deltaEntries"`
	FullEntries   int   `json:"fullEntries"`
	PinnedBytes   int64 `json:"pinnedBytes"`
}

// cacheInfoFrom converts oracle cache counters to their wire form.
func cacheInfoFrom(cs oracle.CacheStats) cacheInfo {
	return cacheInfo{
		Len: cs.Len, Capacity: cs.Capacity, Shards: cs.Shards,
		Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
		BytesUsed: cs.BytesUsed, BytesCapacity: cs.BytesCapacity,
		DeltaEntries: cs.DeltaEntries, FullEntries: cs.FullEntries,
		PinnedBytes: cs.PinnedBytes,
	}
}

type buildInfo struct {
	ID      string `json:"id"`
	Graph   string `json:"graph"`
	Mode    string `json:"mode"`
	Sources []int  `json:"sources"`
	Seed    int64  `json:"seed"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	// QueuedMS is the time the build waited for a build slot; ElapsedMS
	// is pure build time from slot acquisition (0 while queued, live
	// while building, final once terminal — including "cancelled", where
	// it measures slot acquisition to cancellation).
	QueuedMS  float64     `json:"queuedMs,omitempty"`
	ElapsedMS float64     `json:"elapsedMs,omitempty"`
	Faults    int         `json:"faults,omitempty"`
	Edges     int         `json:"edges,omitempty"`
	GraphM    int         `json:"graphEdges,omitempty"`
	Stats     *buildStats `json:"stats,omitempty"`
	Cache     *cacheInfo  `json:"cache,omitempty"`
	// Progress reports the builder's live counters while the build runs
	// (and, for cancelled builds, where the work stopped).
	Progress *progressInfo `json:"progress,omitempty"`
	// Restored marks builds rehydrated from a snapshot (warm start or
	// upload) — ElapsedMS then reports the original build time.
	Restored bool `json:"restored,omitempty"`
	// Snapshot tracks background persistence when a Store is configured:
	// pending → saved | failed (SnapshotError holds the failure).
	Snapshot      string `json:"snapshot,omitempty"`
	SnapshotError string `json:"snapshotError,omitempty"`
}

func (s *Server) handleCreateBuild(w http.ResponseWriter, r *http.Request) {
	var req createBuildRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeErr(w, bodyErrStatus(err), "bad request body: %v", err)
		return
	}
	name := r.PathValue("graph")
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	g, ok := s.graphs[name]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	for _, src := range req.Sources {
		if src < 0 || src >= g.g.N() {
			s.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "source %d out of range [0,%d)", src, g.g.N())
			return
		}
	}
	// The builder works in the graph's internal numbering; be.sources (and
	// everything rendered from it) keeps the wire IDs the client sent.
	build, err := core.BuilderForMode(req.Mode, internalSources(g.g, req.Sources))
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.buildSeq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	be := &buildEntry{
		id:       fmt.Sprintf("b%d", s.buildSeq),
		mode:     req.Mode,
		sources:  append([]int(nil), req.Sources...),
		seed:     req.Seed,
		status:   StatusQueued,
		created:  time.Now(),
		cancel:   cancel,
		done:     make(chan struct{}),
		progress: &core.Progress{},
	}
	g.builds[be.id] = be
	g.order = append(g.order, be.id)
	gg := g.g
	s.builds.Add(1)
	s.mu.Unlock()

	go s.runBuild(ctx, name, gg, be, build, req.Parallelism)
	writeJSON(w, http.StatusAccepted, buildInfo{
		ID: be.id, Graph: name, Mode: be.mode, Sources: be.sources,
		Seed: be.seed, Status: StatusQueued,
	})
}

// runBuild executes one structure build under the concurrency semaphore
// and publishes the result (or failure) under the server lock. The build
// timer starts only once the semaphore slot is acquired; time spent queued
// behind other builds is reported separately. When a Store is configured,
// a ready build is snapshotted into it in the background — queries are
// served the moment the build is published, not when the disk write lands.
//
// The context is the build's cancellation plane: it is cancelled by
// DELETE on the build, by deleting the graph, or by Server.Shutdown. A
// build cancelled while queued never acquires the semaphore and never
// starts; one cancelled mid-build returns from the builder at its next
// cooperative poll point (ctx.Err(), no partial structure) and frees its
// slot. Either way the entry lands in the terminal "cancelled" status and
// be.done is closed once the goroutine has fully wound down.
func (s *Server) runBuild(ctx context.Context, graphName string, g2 *graph.Graph, be *buildEntry,
	build func(*graph.Graph, *core.Options) (*core.Structure, error), parallelism int) {
	defer s.builds.Done()
	defer close(be.done)
	defer be.cancel() // release the context once the build is over
	select {
	case s.buildSem <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		be.status = StatusCancelled
		be.queued = time.Since(be.created)
		s.mu.Unlock()
		s.logBuild(graphName, be)
		return
	}
	defer func() { <-s.buildSem }()
	s.mu.Lock()
	be.status = StatusBuilding
	be.started = time.Now()
	be.queued = be.started.Sub(be.created)
	s.mu.Unlock()
	opts := &core.Options{Seed: be.seed, Parallelism: parallelism, Ctx: ctx, Progress: be.progress}
	st, err := build(g2, opts)
	var set *oracle.OracleSet
	if err == nil && ctx.Err() == nil {
		set, err = s.newOracleSet(st)
	}
	s.mu.Lock()
	be.elapsed = time.Since(be.started)
	switch {
	case ctx.Err() != nil:
		// Cancelled before the result was published; work that finished
		// under the wire is discarded, queries never see it.
		be.status = StatusCancelled
	case err != nil:
		be.status = StatusFailed
		be.errMsg = err.Error()
	default:
		be.st = st
		be.set = set
		be.status = StatusReady
		if s.cfg.Store != nil {
			be.snapState = SnapPending
			s.builds.Add(1) // safe: runBuild still holds its own slot
			go func() {
				defer s.builds.Done()
				s.persistBuild(graphName, be)
			}()
		}
	}
	s.mu.Unlock()
	s.logBuild(graphName, be)
}

// logBuild reports a terminal build outcome to Config.BuildLog.
func (s *Server) logBuild(graphName string, be *buildEntry) {
	if s.cfg.BuildLog == nil {
		return
	}
	s.mu.RLock()
	ev := BuildEvent{
		Graph: graphName, Build: be.id, Mode: be.mode,
		Sources: append([]int(nil), be.sources...),
		Status:  be.status, Error: be.errMsg,
		QueuedMS: durationMS(be.queued), ElapsedMS: durationMS(be.elapsed),
		Dijkstras: be.progress.Snapshot().Dijkstras,
	}
	if be.status == StatusReady {
		ev.Dijkstras = int64(be.st.Stats.Dijkstras)
		ev.Edges = be.st.NumEdges()
		ev.GraphEdges = be.st.G.M()
	}
	s.mu.RUnlock()
	s.cfg.BuildLog(ev)
}

// Shutdown cancels every in-flight and queued build and waits — bounded
// by ctx — for their goroutines (including background snapshot writes) to
// exit. After a nil return, no build goroutine is left running, so the
// process can exit without silently abandoning work. From the moment
// Shutdown is entered the server rejects new builds with 503 — even a
// create racing the wait cannot slip a goroutine past it — so draining
// the HTTP layer first is good manners, not a correctness requirement.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	done := make(chan struct{})
	go func() {
		s.builds.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: builds still running: %w", ctx.Err())
	}
}

// snapshotOf assembles the snapshot of a ready build. Callers must hold
// s.mu (read suffices); the returned snapshot only references immutable
// state, so encoding may proceed outside the lock. It is a pure function
// of the entry, so the background-persisted bytes and a live-encoded
// GET response are identical; for restored entries the original
// snapshot's timing fields are carried over rather than re-derived, so
// re-encoding preserves provenance.
//
//ftbfs:holds Server.mu
func snapshotOf(graphName string, be *buildEntry) *snap.Snapshot {
	meta := snap.Meta{
		Graph:         graphName,
		Build:         be.id,
		Mode:          be.mode,
		Seed:          be.seed,
		ElapsedMS:     float64(be.elapsed.Microseconds()) / 1000,
		CreatedUnixMS: be.created.UnixMilli(),
	}
	if be.restored {
		meta.ElapsedMS = be.origMeta.ElapsedMS
		meta.CreatedUnixMS = be.origMeta.CreatedUnixMS
	}
	return &snap.Snapshot{Structure: be.st, Meta: meta}
}

// persistBuild encodes one ready build into the store and records the
// outcome. If the graph — or just this build — was deleted while the
// encode was in flight, the freshly written snapshot is removed again so
// a later warm start cannot resurrect deleted state.
func (s *Server) persistBuild(graphName string, be *buildEntry) {
	s.mu.RLock()
	sn := snapshotOf(graphName, be)
	s.mu.RUnlock()
	err := s.cfg.Store.Put(graphName, be.id, func(w io.Writer) error {
		return snap.Encode(w, sn)
	})
	s.mu.Lock()
	if err != nil {
		be.snapState = SnapFailed
		be.snapErr = err.Error()
	} else {
		be.snapState = SnapSaved
	}
	g, alive := s.graphs[graphName]
	buildAlive := false
	if alive {
		_, buildAlive = g.builds[be.id]
	}
	s.mu.Unlock()
	switch {
	case err != nil:
	case !alive:
		_ = s.cfg.Store.DeleteGraph(graphName)
	case !buildAlive:
		_ = s.cfg.Store.Delete(graphName, be.id)
	}
}

// newOracleSet builds a build's shared query state with the configured
// memo bounds and shard count. The bounds pass straight through to the
// oracle's byte-accounted cache: the old "clamp the entry cap by 4n bytes
// per table" approximation is gone — the cache charges each entry what it
// actually costs (deltas are a fraction of a full table), so the budget is
// enforced exactly and holds far more events.
func (s *Server) newOracleSet(st *core.Structure) (*oracle.OracleSet, error) {
	entries, bytes := s.cfg.CacheEntries, s.cfg.CacheBytes
	if bytes < 0 {
		// Explicit "no byte bound". A memo with no bound at all is never
		// offered (untrusted clients could grow it without limit), so when
		// there is no entry cap either, fall back to the classic one.
		bytes = 0
		if entries == 0 {
			entries = oracle.DefaultCacheEntries
		}
	}
	return oracle.NewSetBudget(st, entries, bytes, s.cfg.CacheShards)
}

// progressInfo is the wire form of a build's live progress counters.
type progressInfo struct {
	// Fraction is UnitsDone/UnitsTotal clamped to [0,1] (0 while the
	// builder has not yet announced its work-unit total).
	Fraction   float64 `json:"fraction"`
	UnitsDone  int64   `json:"unitsDone"`
	UnitsTotal int64   `json:"unitsTotal"`
	Dijkstras  int64   `json:"dijkstras"`
	EdgesKept  int64   `json:"edgesKept"`
}

// durationMS renders a duration as fractional milliseconds (the API's
// timing unit).
func durationMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// buildInfoLocked renders one build's wire info. Callers must hold s.mu
// (read suffices).
//
//ftbfs:holds Server.mu
func (s *Server) buildInfoLocked(graphName string, be *buildEntry) buildInfo {
	info := buildInfo{
		ID: be.id, Graph: graphName, Mode: be.mode, Sources: be.sources,
		Seed: be.seed, Status: be.status, Error: be.errMsg,
		QueuedMS:  durationMS(be.queued),
		ElapsedMS: durationMS(be.elapsed),
	}
	if be.status == StatusQueued {
		// Still waiting for a slot: report the wait so far.
		info.QueuedMS = durationMS(time.Since(be.created))
	}
	if be.status == StatusBuilding {
		// Live build time plus the builder's progress counters, readable
		// without disturbing the build (atomic snapshots of monotone
		// counters).
		info.ElapsedMS = durationMS(time.Since(be.started))
	}
	if (be.status == StatusBuilding || be.status == StatusCancelled) && be.progress != nil {
		ps := be.progress.Snapshot()
		info.Progress = &progressInfo{
			Fraction:   ps.Fraction(),
			UnitsDone:  ps.UnitsDone,
			UnitsTotal: ps.UnitsTotal,
			Dijkstras:  ps.Dijkstras,
			EdgesKept:  ps.EdgesKept,
		}
	}
	if be.status == StatusReady {
		info.Faults = be.st.Faults
		info.Edges = be.st.NumEdges()
		info.GraphM = be.st.G.M()
		info.Stats = &buildStats{
			Dijkstras:    be.st.Stats.Dijkstras,
			Fallbacks:    be.st.Stats.Fallbacks,
			TieWarnings:  be.st.Stats.TieWarnings,
			MaxNewEdges:  be.st.Stats.MaxNewEdges,
			MaxE1:        be.st.Stats.MaxE1,
			MaxE2:        be.st.Stats.MaxE2,
			NewEndingPiD: be.st.Stats.NewEndingPiD,
		}
		ci := cacheInfoFrom(be.set.CacheStats())
		info.Cache = &ci
		info.Restored = be.restored
		info.Snapshot = be.snapState
		info.SnapshotError = be.snapErr
	}
	return info
}

func (s *Server) handleGetBuild(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	g, be, err := s.resolveLocked(r)
	var info buildInfo
	if err == nil {
		info = s.buildInfoLocked(g.name, be)
	}
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// cancelWaitMax bounds how long DELETE on a running build waits for the
// build goroutine to observe the cancel before answering with whatever
// state the build is in. Cooperative cancellation lands within a few poll
// intervals (~ms); the bound only guards against a wedged builder.
const cancelWaitMax = 10 * time.Second

// handleDeleteBuild cancels or removes a build. An in-flight or queued
// build is cancelled: its context is cancelled, the handler waits
// (bounded) for the build goroutine to wind down — freeing its semaphore
// slot — and answers 200 with the terminal entry (normally status
// "cancelled"; "ready" if publication won the race). A build already in a
// terminal state is removed from the registry and the snapshot store, and
// the handler answers 204 — so cancelling and then re-DELETEing fully
// disposes of a build.
//
// Store cleanup mirrors graph deletion: the registry entry goes first,
// and the store delete is attempted even when the build is already gone
// from the registry, so a failed store delete (500) can be retried and
// still reach the orphaned snapshot — otherwise a warm start would
// resurrect the deleted build. persistBuild's post-Put liveness check
// covers a background snapshot write racing this delete.
func (s *Server) handleDeleteBuild(w http.ResponseWriter, r *http.Request) {
	graphName, buildID := r.PathValue("graph"), r.PathValue("build")
	s.mu.Lock()
	g, be, err := s.resolveLocked(r)
	if err == nil && (be.status == StatusQueued || be.status == StatusBuilding) {
		cancel, done := be.cancel, be.done
		s.mu.Unlock()
		cancel()
		select {
		case <-done:
		case <-time.After(cancelWaitMax):
		}
		s.mu.RLock()
		info := s.buildInfoLocked(g.name, be)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, info)
		return
	}
	if err == nil {
		delete(g.builds, be.id)
		for i, id := range g.order {
			if id == be.id {
				g.order = append(g.order[:i], g.order[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if s.cfg.Store != nil && nameRe.MatchString(graphName) && nameRe.MatchString(buildID) {
		if serr := s.cfg.Store.Delete(graphName, buildID); serr != nil {
			writeErr(w, http.StatusInternalServerError,
				"build unregistered but snapshot not deleted (retry DELETE to clean it): %v", serr)
			return
		}
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// resolveLocked looks up the graph and build named in the request path.
// Callers must hold s.mu (read suffices).
//
//ftbfs:holds Server.mu
func (s *Server) resolveLocked(r *http.Request) (*graphEntry, *buildEntry, error) {
	g, ok := s.graphs[r.PathValue("graph")]
	if !ok {
		return nil, nil, fmt.Errorf("no graph %q", r.PathValue("graph"))
	}
	be, ok := g.builds[r.PathValue("build")]
	if !ok {
		return nil, nil, fmt.Errorf("no build %q of graph %q", r.PathValue("build"), g.name)
	}
	return g, be, nil
}

// readySet resolves the request's build and returns its oracle set plus
// the build graph's vertex translation, or writes the error response and
// returns a nil set.
func (s *Server) readySet(w http.ResponseWriter, r *http.Request) (*oracle.OracleSet, xlat) {
	s.mu.RLock()
	_, be, err := s.resolveLocked(r)
	var (
		set    *oracle.OracleSet
		status string
	)
	if err == nil {
		status = be.status
		set = be.set
	}
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return nil, xlat{}
	}
	if status != StatusReady {
		writeErr(w, http.StatusConflict, "build is %s, not ready", status)
		return nil, xlat{}
	}
	// The structure's graph is immutable once the build is published, so
	// the maps may be read outside the lock.
	return set, xlatFor(set.Structure().G)
}

// ---- vertex-order translation ----

// xlat translates vertex IDs between the wire numbering (the IDs clients
// registered the graph with) and the internal numbering of a BFS-ordered
// graph. The zero value is the identity, which is also what xlatFor
// returns for plain graphs — so every query path can translate
// unconditionally and unordered graphs pay two nil checks per item.
// Edge (fault) IDs are never renumbered and need no translation.
type xlat struct {
	toNew []int32 // wire → internal; nil on plain graphs
	toOld []int32 // internal → wire
}

// xlatFor captures g's order maps (identity for plain graphs).
func xlatFor(g *graph.Graph) xlat {
	toNew, toOld := g.OrderMaps()
	return xlat{toNew: toNew, toOld: toOld}
}

// identity reports whether translation is a no-op.
func (x xlat) identity() bool { return x.toNew == nil }

// in maps a wire vertex ID to the internal numbering. Out-of-range IDs
// pass through untranslated: both numberings cover the same range [0,n),
// so the oracle's own validation rejects them either way.
//
//ftbfs:hotpath
func (x xlat) in(v int) int {
	if x.toNew == nil || v < 0 || v >= len(x.toNew) {
		return v
	}
	return int(x.toNew[v])
}

// out maps an internal vertex ID back to the wire numbering.
//
//ftbfs:hotpath
func (x xlat) out(v int) int {
	if x.toOld == nil {
		return v
	}
	return int(x.toOld[v])
}

// internalSources maps wire source IDs into g's internal numbering
// (identity — the same slice — on plain graphs). Callers have
// bounds-checked the IDs.
func internalSources(g *graph.Graph, wire []int) []int {
	toNew, _ := g.OrderMaps()
	if toNew == nil {
		return wire
	}
	out := make([]int, len(wire))
	for i, v := range wire {
		out[i] = int(toNew[v])
	}
	return out
}

// wireSources renders internal source IDs in the wire numbering for
// display fields (identity copy on plain graphs).
func wireSources(g *graph.Graph, internal []int) []int {
	out := append([]int(nil), internal...)
	if _, toOld := g.OrderMaps(); toOld != nil {
		for i, v := range out {
			out[i] = int(toOld[v])
		}
	}
	return out
}

// reindexDists renders an internal-order distance table in wire order.
// Kept out of the query hotpath: whole-table answers over ordered graphs
// pay one n-sized copy, which response encoding dwarfs. The cache-owned
// input table is left untouched.
func reindexDists(d []int32, toNew []int32) []int32 {
	out := make([]int32, len(d))
	for w, nw := range toNew {
		out[w] = d[nw]
	}
	return out
}

// reindexDistsView is reindexDists reading through a distance view:
// delta-encoded tables are resolved per position (a short binary search
// each) instead of being materialized and then permuted.
func reindexDistsView(v oracle.DistView, toNew []int32) []int32 {
	if v.Full != nil {
		return reindexDists(v.Full, toNew)
	}
	out := make([]int32, len(toNew))
	for w, nw := range toNew {
		out[w] = v.At(int(nw))
	}
	return out
}

// ---- queries ----

func parseFaults(q string) ([]int, error) {
	if q == "" {
		return nil, nil
	}
	parts := strings.Split(q, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad fault edge ID %q", p)
		}
		out = append(out, id)
	}
	return out, nil
}

func queryInt(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %q: %q", key, raw)
	}
	return v, nil
}

// withOracle parses common query parameters, checks out a pooled handle
// and invokes fn with it.
func (s *Server) withOracle(w http.ResponseWriter, r *http.Request,
	needTarget bool, fn func(o *oracle.Oracle, x xlat, src, target int, faults []int) error) {
	set, x := s.readySet(w, r)
	if set == nil {
		return
	}
	src, err := queryInt(r, "source")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	target := -1
	if needTarget {
		if target, err = queryInt(r, "target"); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	faults, err := parseFaults(r.URL.Query().Get("faults"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	o := set.Acquire()
	defer set.Release(o)
	if err := fn(o, x, src, target, faults); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

// answerOne serves one GET-style query through the shared batch logic so
// the single-query and batch APIs cannot diverge (res.Error maps to 400).
func answerOne(w http.ResponseWriter, o *oracle.Oracle, q *batchQuery, x xlat) error {
	res := answerQuery(o, q, x)
	if res.Error != "" {
		return errors.New(res.Error)
	}
	writeJSON(w, http.StatusOK, res)
	return nil
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	s.withOracle(w, r, true, func(o *oracle.Oracle, x xlat, src, target int, faults []int) error {
		return answerOne(w, o, &batchQuery{Source: src, Target: &target, Faults: faults}, x)
	})
}

func (s *Server) handleDists(w http.ResponseWriter, r *http.Request) {
	s.withOracle(w, r, false, func(o *oracle.Oracle, x xlat, src, _ int, faults []int) error {
		return answerOne(w, o, &batchQuery{Source: src, Faults: faults}, x)
	})
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	s.withOracle(w, r, true, func(o *oracle.Oracle, x xlat, src, target int, faults []int) error {
		return answerOne(w, o, &batchQuery{Source: src, Target: &target, Faults: faults, Route: true}, x)
	})
}

// ---- batch queries ----

// batchQuery is one item of a batch request. Target absent asks for the
// whole distance table of the failure event; Route additionally returns a
// realizing path (and requires a target). Faults are edge IDs of G.
type batchQuery struct {
	Source int   `json:"source"`
	Target *int  `json:"target,omitempty"`
	Faults []int `json:"faults,omitempty"`
	Route  bool  `json:"route,omitempty"`
}

type batchRequest struct {
	Queries []batchQuery `json:"queries"`
	// Stream switches the response to NDJSON: one result object per
	// line, in request order, flushed incrementally — large batches
	// start arriving before the last item is answered.
	Stream bool `json:"stream,omitempty"`
}

// batchResult is one item's answer. Exactly one of (Dist+Reachable),
// Dists, (Reachable+Dist+Path) or Error is populated; item errors are
// reported inline so one bad item cannot fail a half-streamed batch.
type batchResult struct {
	Dist      *int32  `json:"dist,omitempty"`
	Reachable *bool   `json:"reachable,omitempty"`
	Dists     []int32 `json:"dists,omitempty"`
	Path      []int   `json:"path,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// streamFlushEvery bounds how many NDJSON lines are buffered before an
// explicit flush (and how often the request context is polled for a gone
// client).
const streamFlushEvery = 64

// streamWriteWindow is the rolling per-window write deadline of a
// streaming response. The server's global WriteTimeout covers a response
// from its first byte, which a large legal batch can outlive; the
// streaming handler instead re-arms this deadline at every flush, so a
// healthy client can stream indefinitely while a stalled one is still
// cut off.
const streamWriteWindow = 30 * time.Second

// batchStreamTrailer is the final NDJSON line of a streamed batch. Its
// presence lets clients distinguish a complete stream from one truncated
// by a deadline or disconnect (result lines never carry "done").
type batchStreamTrailer struct {
	Done    bool `json:"done"`
	Results int  `json:"results"`
}

// maxBatchResultValues bounds the numbers materialized by ONE
// non-streaming batch response (~32 MiB of JSON at worst). Whole-table
// items cost n values each, so a batch within MaxBatchQueries could
// otherwise force an arbitrarily large in-memory response on big graphs;
// past the bound the client is told to use streaming, which buffers at
// most streamFlushEvery lines. A var only so tests can lower it.
var maxBatchResultValues = 4 << 20

// answerQuery resolves one batch item with the request's pooled handle,
// translating vertex IDs through x at the boundary (wire in, wire out).
// It is the per-item dispatch of every query endpoint, so it must not
// allocate beyond the result it returns.
//
//ftbfs:hotpath
func answerQuery(o *oracle.Oracle, q *batchQuery, x xlat) batchResult {
	switch {
	case q.Route:
		if q.Target == nil {
			return batchResult{Error: "route query needs a target"}
		}
		p, err := o.Route(x.in(q.Source), x.in(*q.Target), q.Faults)
		if err != nil {
			return batchResult{Error: err.Error()}
		}
		reachable := p != nil
		res := batchResult{Reachable: &reachable}
		if p != nil {
			d := int32(p.Len())
			res.Dist = &d
			// Route returns a freshly allocated path, safe to relabel in
			// place.
			path := []int(p)
			if !x.identity() {
				for i, v := range path {
					path[i] = x.out(v)
				}
			}
			res.Path = path
		}
		return res
	case q.Target != nil:
		d, err := o.Dist(x.in(q.Source), x.in(*q.Target), q.Faults)
		if err != nil {
			return batchResult{Error: err.Error()}
		}
		reachable := d != bfs.Unreachable
		return batchResult{Dist: &d, Reachable: &reachable}
	default:
		// DistsView, not Dists: the view references immutable memory, so
		// the result survives until the whole batch is encoded even when
		// later items reuse this handle (the non-streaming handler collects
		// every result before writing). Delta-encoded events materialize a
		// fresh exact-size table; full tables are shared with the cache.
		v, err := o.DistsView(x.in(q.Source), q.Faults)
		if err != nil {
			return batchResult{Error: err.Error()}
		}
		if !x.identity() {
			return batchResult{Dists: reindexDistsView(v, x.toNew)}
		}
		if v.Full != nil {
			return batchResult{Dists: v.Full}
		}
		return batchResult{Dists: v.AppendTo(nil)}
	}
}

// handleBatchQuery answers a JSON batch of (source, target?, faults)
// items with ONE pooled oracle per request, amortizing handle checkout
// and fault parsing across the whole batch — the multi-source workload
// shape (many queries per network round-trip). With "stream": true the
// results are NDJSON-streamed in request order. A request with the
// binary batch Content-Type is dispatched to the binary protocol handler
// instead (same route, negotiated per request).
func (s *Server) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), batchcodec.ContentType) {
		s.handleBatchQueryBinary(w, r)
		return
	}
	set, x := s.readySet(w, r)
	if set == nil {
		return
	}
	var req batchRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeErr(w, bodyErrStatus(err), "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatchQueries)
		return
	}
	o := set.Acquire()
	defer set.Release(o)
	ctx := r.Context()
	if req.Stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		rc := http.NewResponseController(w)
		// The rolling deadline outlives the server's global WriteTimeout
		// on purpose; clear it on exit so it cannot leak into the next
		// request of a keep-alive connection when WriteTimeout is 0.
		armed := time.Now()
		_ = rc.SetWriteDeadline(armed.Add(streamWriteWindow))
		defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		// ResponseController.Flush reaches flushers behind Unwrap-ing
		// middleware; ErrNotSupported (plain recorders) just means more
		// buffering, and write failures surface on the next Encode.
		flush := func() { _ = rc.Flush() }
		for i := range req.Queries {
			if err := enc.Encode(answerQuery(o, &req.Queries[i], x)); err != nil {
				return // client went away; nothing sensible to write
			}
			// Re-arm on elapsed time, not item count: slow uncached
			// queries must not let the window expire mid-batch while the
			// handler is making progress.
			if time.Since(armed) > streamWriteWindow/2 {
				armed = time.Now()
				_ = rc.SetWriteDeadline(armed.Add(streamWriteWindow))
			}
			if (i+1)%streamFlushEvery == 0 {
				flush()
				if ctx.Err() != nil {
					return // client gone: stop burning BFS time
				}
			}
		}
		// Terminal line: lets clients tell completion from truncation.
		_ = enc.Encode(batchStreamTrailer{Done: true, Results: len(req.Queries)})
		flush()
		return
	}
	results := make([]batchResult, len(req.Queries))
	values := 0
	for i := range req.Queries {
		results[i] = answerQuery(o, &req.Queries[i], x)
		values += 2 + len(results[i].Dists) + len(results[i].Path)
		if values > maxBatchResultValues {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"batch response exceeds %d values at item %d; use \"stream\": true", maxBatchResultValues, i)
			return
		}
		if (i+1)%streamFlushEvery == 0 && ctx.Err() != nil {
			return // client gone before any byte was written; drop the work
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// bodyErrStatus distinguishes an oversized body (413) from a malformed
// one (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}
