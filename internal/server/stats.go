package server

import "net/http"

// This file implements GET /v1/stats, the build plane's one-look
// observability endpoint: semaphore occupancy, queued work, per-status
// build counts, and the oracle cache counters aggregated across every
// ready build — the companion to per-build progress reporting.

// statsResponse is the wire form of GET /v1/stats.
type statsResponse struct {
	// Graphs counts registered graphs.
	Graphs int `json:"graphs"`
	// Builds counts builds by status (absent statuses are omitted).
	Builds map[string]int `json:"builds"`
	// BuildSlots describes the build semaphore: InUse slots are occupied
	// by running builds, Capacity is MaxConcurrentBuilds, and Queued
	// counts builds waiting for a slot.
	BuildSlots buildSlotsInfo `json:"buildSlots"`
	// Cache aggregates CacheStats over every ready build's oracle set
	// (sums; Shards too, so it reads as "total shards serving queries").
	// Omitted when no build is ready.
	Cache *cacheInfo `json:"cache,omitempty"`
	// WarmedEntries counts oracle-memo entries seeded by warm-start
	// prewarming (Config.PrewarmRestored); omitted when zero.
	WarmedEntries int64 `json:"warmedEntries,omitempty"`
}

type buildSlotsInfo struct {
	InUse    int `json:"inUse"`
	Capacity int `json:"capacity"`
	Queued   int `json:"queued"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Builds: make(map[string]int)}
	var agg cacheInfo
	ready := 0
	s.mu.RLock()
	resp.Graphs = len(s.graphs)
	for _, g := range s.graphs {
		for _, be := range g.builds {
			resp.Builds[be.status]++
			if be.status != StatusReady {
				continue
			}
			ready++
			cs := be.set.CacheStats()
			agg.Len += cs.Len
			agg.Capacity += cs.Capacity
			agg.Shards += cs.Shards
			agg.Hits += cs.Hits
			agg.Misses += cs.Misses
			agg.Evictions += cs.Evictions
			agg.BytesUsed += cs.BytesUsed
			agg.BytesCapacity += cs.BytesCapacity
			agg.DeltaEntries += cs.DeltaEntries
			agg.FullEntries += cs.FullEntries
			agg.PinnedBytes += cs.PinnedBytes
		}
	}
	s.mu.RUnlock()
	// Channel length is safe to read without the registry lock; it is the
	// authoritative occupancy (builds holding a slot right now).
	resp.BuildSlots = buildSlotsInfo{
		InUse:    len(s.buildSem),
		Capacity: cap(s.buildSem),
		Queued:   resp.Builds[StatusQueued],
	}
	if ready > 0 {
		resp.Cache = &agg
	}
	resp.WarmedEntries = s.warmed.Load()
	writeJSON(w, http.StatusOK, resp)
}
