package server

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/snap"
)

// A Store persists encoded build snapshots keyed by (graph, build). The
// server snapshots completed builds into it in the background and warm-
// starts from it on boot; the GET/PUT snapshot endpoints stream through
// it. Implementations must be safe for concurrent use. Keys must satisfy
// the registry name grammar (see nameRe); stores reject anything else, so
// a hostile build ID can never become a path traversal.
type Store interface {
	// Put atomically replaces the snapshot under the key with whatever
	// write produces: a reader must never observe a partial write.
	Put(graph, build string, write func(io.Writer) error) error
	// Open returns the stored snapshot bytes; os.ErrNotExist when absent.
	Open(graph, build string) (io.ReadCloser, error)
	// List enumerates every stored key in deterministic order.
	List() ([]StoreKey, error)
	// Delete removes the snapshot under one (graph, build) key (a no-op
	// when absent). DELETE on a terminal build uses it.
	Delete(graph, build string) error
	// DeleteGraph removes every snapshot of the named graph (a no-op when
	// none are stored).
	DeleteGraph(graph string) error
}

// StoreKey identifies one stored snapshot.
type StoreKey struct {
	Graph string
	Build string
}

func checkStoreKey(graph, build string) error {
	if !nameRe.MatchString(graph) {
		return fmt.Errorf("server: bad graph name %q", graph)
	}
	if !nameRe.MatchString(build) {
		return fmt.Errorf("server: bad build name %q", build)
	}
	return nil
}

// ---- in-memory store ----

// MemStore is a Store keeping encoded snapshots in process memory. It is
// the registry's historical behavior (artifacts die with the process) made
// explicit, and the natural store for tests and for replication relays
// that only ever stream snapshots through.
type MemStore struct {
	mu    sync.RWMutex
	snaps map[StoreKey][]byte // guarded by mu
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{snaps: make(map[StoreKey][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(graph, build string, write func(io.Writer) error) error {
	if err := checkStoreKey(graph, build); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	s.snaps[StoreKey{Graph: graph, Build: build}] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// Open implements Store. The stored slice is never mutated, so readers
// share it without copying.
func (s *MemStore) Open(graph, build string) (io.ReadCloser, error) {
	if err := checkStoreKey(graph, build); err != nil {
		return nil, err
	}
	s.mu.RLock()
	b, ok := s.snaps[StoreKey{Graph: graph, Build: build}]
	s.mu.RUnlock()
	if !ok {
		return nil, os.ErrNotExist
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// List implements Store.
func (s *MemStore) List() ([]StoreKey, error) {
	s.mu.RLock()
	out := make([]StoreKey, 0, len(s.snaps))
	for k := range s.snaps {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Build < out[j].Build
	})
	return out, nil
}

// Delete implements Store.
func (s *MemStore) Delete(graph, build string) error {
	if err := checkStoreKey(graph, build); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.snaps, StoreKey{Graph: graph, Build: build})
	s.mu.Unlock()
	return nil
}

// DeleteGraph implements Store.
func (s *MemStore) DeleteGraph(graph string) error {
	s.mu.Lock()
	for k := range s.snaps {
		if k.Graph == graph {
			delete(s.snaps, k)
		}
	}
	s.mu.Unlock()
	return nil
}

// ---- disk store ----

// snapExt is the on-disk snapshot file suffix.
const snapExt = ".ftbfs"

// DiskStore is a Store laying snapshots out as
// <dir>/<graph>/<build>.ftbfs. Writes go to a temporary file in the
// destination directory followed by fsync + atomic rename, so a crash
// mid-snapshot can never leave a corrupt file under a live name, and a
// concurrent reader sees either the old snapshot or the new one, whole.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) a snapshot directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(graph, build string) string {
	return filepath.Join(s.dir, graph, build+snapExt)
}

// Put implements Store via snap.AtomicWriteFile, the shared
// temp-fsync-rename protocol.
func (s *DiskStore) Put(graph, build string, write func(io.Writer) error) error {
	if err := checkStoreKey(graph, build); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(s.dir, graph), 0o755); err != nil {
		return fmt.Errorf("server: snapshot dir: %w", err)
	}
	return snap.AtomicWriteFile(s.path(graph, build), write)
}

// Open implements Store.
func (s *DiskStore) Open(graph, build string) (io.ReadCloser, error) {
	if err := checkStoreKey(graph, build); err != nil {
		return nil, err
	}
	return os.Open(s.path(graph, build))
}

// List implements Store. Stray files (wrong suffix, bad names, leftover
// temporaries) are skipped, not errors: the store owns only what it wrote.
func (s *DiskStore) List() ([]StoreKey, error) {
	graphs, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	var out []StoreKey
	for _, gd := range graphs {
		if !gd.IsDir() || !nameRe.MatchString(gd.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, gd.Name()))
		if err != nil {
			return nil, fmt.Errorf("server: snapshot dir %s: %w", gd.Name(), err)
		}
		for _, fd := range files {
			name, ok := strings.CutSuffix(fd.Name(), snapExt)
			if fd.IsDir() || !ok || !nameRe.MatchString(name) {
				continue
			}
			out = append(out, StoreKey{Graph: gd.Name(), Build: name})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Build < out[j].Build
	})
	return out, nil
}

// Delete implements Store. Removing the last snapshot of a graph leaves
// its (empty) directory behind; List skips directories without snapshot
// files, and DeleteGraph removes the directory itself.
func (s *DiskStore) Delete(graph, build string) error {
	if err := checkStoreKey(graph, build); err != nil {
		return err
	}
	if err := os.Remove(s.path(graph, build)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: snapshot delete: %w", err)
	}
	return nil
}

// DeleteGraph implements Store.
func (s *DiskStore) DeleteGraph(graph string) error {
	if !nameRe.MatchString(graph) {
		return fmt.Errorf("server: bad graph name %q", graph)
	}
	if err := os.RemoveAll(filepath.Join(s.dir, graph)); err != nil {
		return fmt.Errorf("server: snapshot delete: %w", err)
	}
	return nil
}
