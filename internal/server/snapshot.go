package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/snap"
)

// This file is the snapshot side of the registry: warm starts from a
// Store, and the GET/PUT snapshot endpoints that stream build artifacts
// between instances (GET on one ftbfsd piped into PUT on another is the
// whole replication story).

// WarmStart scans the configured store and rehydrates every stored
// snapshot into a ready build — graph registered (or matched against an
// already registered one), structure decoded, oracle set rebuilt — with
// no builder invocation. It returns the number of builds restored.
// Snapshots that fail to decode or conflict with live state are skipped,
// and the skip reasons are joined into the returned error; a partial warm
// start is better than refusing to boot over one bad file.
func (s *Server) WarmStart() (int, error) {
	if s.cfg.Store == nil {
		return 0, fmt.Errorf("server: warm start needs a configured Store")
	}
	keys, err := s.cfg.Store.List()
	if err != nil {
		return 0, err
	}
	restored := 0
	var skips []error
	for _, k := range keys {
		be, err := s.restoreOne(k)
		if err != nil {
			skips = append(skips, fmt.Errorf("%s/%s: %w", k.Graph, k.Build, err))
			continue
		}
		restored++
		if s.cfg.PrewarmRestored {
			// Seed the build's memo with its fault-free tables so the
			// first post-restart queries hit the cache. Purely an
			// optimization: a cold memo answers identically. The set
			// pointer is read under the registry lock; the prewarm BFS
			// itself runs unlocked (OracleSet is internally synchronized).
			s.mu.Lock()
			set := be.set
			s.mu.Unlock()
			s.warmed.Add(int64(set.Prewarm()))
		}
	}
	return restored, errors.Join(skips...)
}

func (s *Server) restoreOne(k StoreKey) (*buildEntry, error) {
	rc, err := s.cfg.Store.Open(k.Graph, k.Build)
	if err != nil {
		return nil, err
	}
	sn, err := snap.Decode(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	// The store key (not the snapshot metadata) names the entry: the
	// directory layout is authoritative for what this instance serves.
	return s.installSnapshot(k.Graph, k.Build, sn, SnapSaved)
}

// installSnapshot registers a decoded snapshot as a ready build under
// (graphName, buildID): the graph is created if absent or checked for
// equality if present, the oracle set is rehydrated from the decoded
// structure, and the build-ID sequence is advanced past the installed ID
// so future builds cannot collide. Shared by warm start and PUT.
func (s *Server) installSnapshot(graphName, buildID string, sn *snap.Snapshot, snapState string) (*buildEntry, error) {
	if !nameRe.MatchString(graphName) {
		return nil, fmt.Errorf("bad graph name %q", graphName)
	}
	if !nameRe.MatchString(buildID) {
		return nil, fmt.Errorf("bad build ID %q", buildID)
	}
	st := sn.Structure
	// The query plane implements the edge-failure model only: serving a
	// vertex-fault structure would silently interpret fault IDs as edge
	// IDs. ftbfsverify/ftbfsbench handle such snapshots; the server must
	// refuse them.
	if st.VertexFaults {
		return nil, fmt.Errorf("vertex-failure structures cannot be served (queries use edge-fault semantics)")
	}
	// Fail conflicting installs before paying for rehydration (the final
	// insert below re-checks under the same lock, so a racing install is
	// still caught). When the graph is already registered and equal, the
	// decoded copy is dropped in favor of the registered CSR — k restored
	// builds of one graph share one graph in memory, exactly like k
	// locally built ones.
	s.mu.RLock()
	g0, graphLive := s.graphs[graphName]
	var conflictErr error
	if graphLive {
		if _, exists := g0.builds[buildID]; exists {
			conflictErr = fmt.Errorf("build %q of graph %q already exists", buildID, graphName)
		} else if !graphsEqual(g0.g, st.G) {
			conflictErr = fmt.Errorf("snapshot graph differs from registered graph %q", graphName)
		} else {
			st.G = g0.g
		}
	}
	s.mu.RUnlock()
	if conflictErr != nil {
		return nil, conflictErr
	}
	// Rehydrate the shared query state before taking the write lock: it
	// materializes H and is the expensive part of a restore.
	set, err := s.newOracleSet(st)
	if err != nil {
		return nil, err
	}
	be := &buildEntry{
		id:        buildID,
		mode:      sn.Meta.Mode,
		sources:   wireSources(st.G, st.Sources),
		seed:      sn.Meta.Seed,
		status:    StatusReady,
		created:   time.Now(),
		elapsed:   time.Duration(sn.Meta.ElapsedMS * float64(time.Millisecond)),
		st:        st,
		set:       set,
		restored:  true,
		origMeta:  sn.Meta,
		snapState: snapState,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.graphs[graphName]
	if !ok {
		g = &graphEntry{name: graphName, g: st.G, created: time.Now(), builds: make(map[string]*buildEntry)}
		s.graphs[graphName] = g
	} else if !graphsEqual(g.g, st.G) {
		return nil, fmt.Errorf("snapshot graph differs from registered graph %q", graphName)
	}
	if _, exists := g.builds[buildID]; exists {
		return nil, fmt.Errorf("build %q of graph %q already exists", buildID, graphName)
	}
	g.builds[buildID] = be
	g.order = append(g.order, buildID)
	// Keep server-assigned IDs ("b<seq>") ahead of every installed ID.
	if n, err := strconv.Atoi(strings.TrimPrefix(buildID, "b")); err == nil && n > s.buildSeq {
		s.buildSeq = n
	}
	return be, nil
}

// graphsEqual reports observational equality of two frozen graphs: same
// vertex count, identical edge tables (IDs and endpoints), and the same
// vertex-order maps. Since the CSR arrays are a pure function of
// (n, edge table), equal edge tables imply equal graphs — but an ordered
// graph's edge table holds internal endpoints, so two graphs may agree
// edge-for-edge yet present different wire numberings; the maps are part
// of the observable identity.
func graphsEqual(a, b *graph.Graph) bool {
	if a == b {
		return true
	}
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for id := 0; id < a.M(); id++ {
		if a.EdgeAt(id) != b.EdgeAt(id) {
			return false
		}
	}
	aNew, _ := a.OrderMaps()
	bNew, _ := b.OrderMaps()
	if len(aNew) != len(bNew) {
		return false
	}
	for v := range aNew {
		if aNew[v] != bNew[v] {
			return false
		}
	}
	return true
}

// handleGetSnapshot streams a ready build as one snapshot file. When the
// store already holds the encoded bytes they are copied straight through;
// otherwise (no store, or persistence still pending) the snapshot is
// encoded from live state on the fly — the response is identical either
// way, because the encoding is deterministic.
func (s *Server) handleGetSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	g, be, err := s.resolveLocked(r)
	var (
		sn     *snap.Snapshot
		status string
		saved  bool
	)
	if err == nil {
		status = be.status
		if status == StatusReady {
			sn = snapshotOf(g.name, be)
			saved = be.snapState == SnapSaved
		}
	}
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if status != StatusReady {
		writeErr(w, http.StatusConflict, "build is %s, not ready", status)
		return
	}
	if saved {
		if rc, err := s.cfg.Store.Open(sn.Meta.Graph, sn.Meta.Build); err == nil {
			defer rc.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = io.Copy(w, rc)
			return
		}
		// Store read failed after a recorded save (file pruned by an
		// operator?): fall through to live encoding, which needs no store.
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = snap.Encode(w, sn)
}

// handlePutSnapshot installs an uploaded snapshot as a ready build of the
// graph and build named in the path — the receiving half of replication.
// The graph is registered from the snapshot when absent; when present, the
// snapshot must be over the identical graph. The registry is the source of
// truth: the build is installed first, then (with a store configured) the
// snapshot is persisted before the response, and the returned "snapshot"
// field reports whether the artifact landed on disk. The body is decoded
// as a stream — never buffered whole — and the store copy is re-encoded
// from the decoded snapshot, which reproduces the uploaded bytes exactly
// because the encoding is deterministic.
func (s *Server) handlePutSnapshot(w http.ResponseWriter, r *http.Request) {
	graphName, buildID := r.PathValue("graph"), r.PathValue("build")
	sn, err := snap.Decode(http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes))
	if err != nil {
		// An oversized body surfaces as a read error inside the decoder;
		// unwrap it back to 413 rather than a generic 400.
		writeErr(w, bodyErrStatus(err), "decode snapshot: %v", err)
		return
	}
	snapState := ""
	if s.cfg.Store != nil {
		snapState = SnapPending
	}
	be, err := s.installSnapshot(graphName, buildID, sn, snapState)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already exists") || strings.Contains(err.Error(), "differs") {
			status = http.StatusConflict
		}
		writeErr(w, status, "%v", err)
		return
	}
	if s.cfg.Store != nil {
		// Same path as a locally built artifact, run synchronously so a
		// 201 reflects the final snapshot state. Persisting via
		// snapshotOf (not the uploaded bytes) re-stamps META with THIS
		// registry's graph/build names, so the stored copy always equals
		// what a live-encoded GET would produce — including for uploads
		// installed under different names than they were built with.
		s.persistBuild(graphName, be)
	}
	s.mu.RLock()
	info := s.buildInfoLocked(graphName, be)
	s.mu.RUnlock()
	writeJSON(w, http.StatusCreated, info)
}
