package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/snap"
)

// newStoreClient is newTestClient over a caller-built Server (so tests can
// share a Store across instances and call WarmStart).
func newStoreClient(t *testing.T, s *Server) *testClient {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &testClient{t: t, srv: ts}
}

// waitSnapshot polls until the build's background snapshot leaves
// "pending".
func (c *testClient) waitSnapshot(graph, build string) buildInfo {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info buildInfo
		c.decode("GET", "/v1/graphs/"+graph+"/builds/"+build, nil, http.StatusOK, &info)
		if info.Snapshot != SnapPending {
			return info
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("snapshot of %s/%s still pending", graph, build)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// buildReady registers a graph, starts a dual build and waits for it (and,
// with a store, its background snapshot) to complete.
func buildReady(t *testing.T, c *testClient, graphName string, withStore bool) buildInfo {
	t.Helper()
	c.decode("POST", "/v1/graphs", map[string]any{
		"name": graphName,
		"gen":  map[string]any{"family": "gnp", "n": 90, "p": 0.08, "seed": 7},
	}, http.StatusCreated, nil)
	var info buildInfo
	c.decode("POST", "/v1/graphs/"+graphName+"/builds",
		map[string]any{"mode": "dual", "sources": []int{0}, "seed": 3}, http.StatusAccepted, &info)
	got := c.waitReady(graphName, info.ID)
	if got.Status != StatusReady {
		t.Fatalf("build did not become ready: %+v", got)
	}
	if withStore {
		got = c.waitSnapshot(graphName, info.ID)
		if got.Snapshot != SnapSaved {
			t.Fatalf("snapshot not saved: %+v", got)
		}
	}
	return got
}

// queryBatch returns the raw JSON of a fixed deterministic batch — used to
// compare answers across server instances byte for byte.
func queryBatch(t *testing.T, c *testClient, graph, build string) []byte {
	t.Helper()
	queries := []map[string]any{
		{"source": 0, "target": 17, "faults": []int{3, 9}},
		{"source": 0, "target": 41, "faults": []int{}},
		{"source": 0, "faults": []int{12}},
		{"source": 0, "target": 33, "faults": []int{5, 6}, "route": true},
		{"source": 0, "target": 2, "faults": []int{1}, "route": true},
	}
	code, body := c.do("POST", "/v1/graphs/"+graph+"/builds/"+build+"/query",
		map[string]any{"queries": queries})
	if code != http.StatusOK {
		t.Fatalf("batch query: %d: %s", code, body)
	}
	return body
}

// TestEndToEndRestart is the acceptance scenario: build under a snapshot
// directory, stop the server, start a FRESH instance over the same
// directory, and require (a) the build is ready with no builder
// invocation — it is marked restored, with the original build stats — and
// (b) dist/route/batch answers are bit-identical to pre-restart.
func TestEndToEndRestart(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(&Config{Store: store1})
	c1 := newStoreClient(t, srv1)
	info := buildReady(t, c1, "net", true)
	preBatch := queryBatch(t, c1, "net", info.ID)
	_, preDist := c1.do("GET", "/v1/graphs/net/builds/"+info.ID+"/dist?source=0&target=17&faults=3,9", nil)
	_, preRoute := c1.do("GET", "/v1/graphs/net/builds/"+info.ID+"/route?source=0&target=17&faults=3,9", nil)
	c1.srv.Close() // stop instance 1

	store2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(&Config{Store: store2})
	restored, err := srv2.WarmStart()
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d builds, want 1", restored)
	}
	c2 := newStoreClient(t, srv2)

	var got buildInfo
	c2.decode("GET", "/v1/graphs/net/builds/"+info.ID, nil, http.StatusOK, &got)
	if got.Status != StatusReady {
		t.Fatalf("restored build is %q, want ready with no rebuild", got.Status)
	}
	if !got.Restored {
		t.Fatalf("restored build not marked restored: %+v", got)
	}
	if got.Mode != "dual" || got.Seed != 3 || len(got.Sources) != 1 || got.Sources[0] != 0 {
		t.Fatalf("restored build lost provenance: %+v", got)
	}
	if got.Stats == nil || *got.Stats != *info.Stats {
		t.Fatalf("restored stats = %+v, want %+v", got.Stats, info.Stats)
	}
	if got.Edges != info.Edges || got.GraphM != info.GraphM || got.Faults != info.Faults {
		t.Fatalf("restored sizes differ: %+v vs %+v", got, info)
	}

	if postBatch := queryBatch(t, c2, "net", info.ID); !bytes.Equal(preBatch, postBatch) {
		t.Fatalf("batch answers differ after restart:\npre:  %s\npost: %s", preBatch, postBatch)
	}
	_, postDist := c2.do("GET", "/v1/graphs/net/builds/"+info.ID+"/dist?source=0&target=17&faults=3,9", nil)
	if !bytes.Equal(preDist, postDist) {
		t.Fatalf("dist answer differs after restart: %s vs %s", preDist, postDist)
	}
	_, postRoute := c2.do("GET", "/v1/graphs/net/builds/"+info.ID+"/route?source=0&target=17&faults=3,9", nil)
	if !bytes.Equal(preRoute, postRoute) {
		t.Fatalf("route answer differs after restart: %s vs %s", preRoute, postRoute)
	}

	// New builds on the restored registry must not collide with the
	// restored build ID.
	var next buildInfo
	c2.decode("POST", "/v1/graphs/net/builds",
		map[string]any{"mode": "dual", "sources": []int{1}}, http.StatusAccepted, &next)
	if next.ID == info.ID {
		t.Fatalf("new build reused restored ID %q", next.ID)
	}
}

// TestSnapshotReplication streams a snapshot out of one instance and PUTs
// it into another with no shared storage — the replication path.
func TestSnapshotReplication(t *testing.T) {
	srcStore := NewMemStore()
	src := New(&Config{Store: srcStore})
	c1 := newStoreClient(t, src)
	info := buildReady(t, c1, "net", true)
	code, snapBytes := c1.do("GET", "/v1/graphs/net/builds/"+info.ID+"/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("GET snapshot: %d", code)
	}
	if _, err := snap.Decode(bytes.NewReader(snapBytes)); err != nil {
		t.Fatalf("streamed snapshot does not decode: %v", err)
	}

	dst := New(nil) // no store: replication needs none
	c2 := newStoreClient(t, dst)
	req, err := http.NewRequest("PUT", c2.srv.URL+"/v1/graphs/net/builds/"+info.ID+"/snapshot",
		bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c2.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT snapshot: %d", resp.StatusCode)
	}
	if a, b := queryBatch(t, c1, "net", info.ID), queryBatch(t, c2, "net", info.ID); !bytes.Equal(a, b) {
		t.Fatalf("replica answers differ:\nsrc: %s\ndst: %s", a, b)
	}

	// Replaying the same PUT conflicts; so does a snapshot of a DIFFERENT
	// graph under the existing name.
	resp, err = c2.srv.Client().Do(mustRequest(t, "PUT",
		c2.srv.URL+"/v1/graphs/net/builds/"+info.ID+"/snapshot", snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate PUT: %d, want 409", resp.StatusCode)
	}
}

func mustRequest(t *testing.T, method, url string, body []byte) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestPutSnapshotRejectsMismatchedGraph uploads a valid snapshot under a
// graph name that already holds a different graph.
func TestPutSnapshotRejectsMismatchedGraph(t *testing.T) {
	src := New(&Config{Store: NewMemStore()})
	c1 := newStoreClient(t, src)
	info := buildReady(t, c1, "net", true)
	_, snapBytes := c1.do("GET", "/v1/graphs/net/builds/"+info.ID+"/snapshot", nil)

	dst := New(nil)
	c2 := newStoreClient(t, dst)
	c2.decode("POST", "/v1/graphs", map[string]any{
		"name": "net",
		"gen":  map[string]any{"family": "grid", "rows": 4, "cols": 4},
	}, http.StatusCreated, nil)
	resp, err := c2.srv.Client().Do(mustRequest(t, "PUT",
		c2.srv.URL+"/v1/graphs/net/builds/b9/snapshot", snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched graph PUT: %d, want 409", resp.StatusCode)
	}
}

// TestPutSnapshotRejectsGarbage uploads junk bytes.
func TestPutSnapshotRejectsGarbage(t *testing.T) {
	c := newTestClient(t, nil)
	resp, err := c.srv.Client().Do(mustRequest(t, "PUT",
		c.srv.URL+"/v1/graphs/g/builds/b1/snapshot", []byte("not a snapshot")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT: %d, want 400", resp.StatusCode)
	}
}

// TestGetSnapshotNotReady asks for a snapshot of a build that is still
// queued or missing.
func TestGetSnapshotNotReady(t *testing.T) {
	c := newTestClient(t, nil)
	code, _ := c.do("GET", "/v1/graphs/none/builds/b1/snapshot", nil)
	if code != http.StatusNotFound {
		t.Fatalf("missing build snapshot: %d, want 404", code)
	}
}

// TestWarmStartSkipsCorruptSnapshot seeds a snapshot dir with one good
// snapshot and one garbage file: warm start must restore the good build
// and report (not die on) the bad one.
func TestWarmStartSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(&Config{Store: store})
	c := newStoreClient(t, srv)
	info := buildReady(t, c, "good", true)
	if err := os.MkdirAll(filepath.Join(dir, "bad"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad", "b1"+".ftbfs"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(&Config{Store: mustDiskStore(t, dir)})
	restored, err := srv2.WarmStart()
	if restored != 1 {
		t.Fatalf("restored %d, want 1", restored)
	}
	if err == nil || !strings.Contains(err.Error(), "bad/b1") {
		t.Fatalf("warm start error %v does not report the corrupt snapshot", err)
	}
	c2 := newStoreClient(t, srv2)
	var got buildInfo
	c2.decode("GET", "/v1/graphs/good/builds/"+info.ID, nil, http.StatusOK, &got)
	if got.Status != StatusReady || !got.Restored {
		t.Fatalf("good build not restored: %+v", got)
	}
}

func mustDiskStore(t *testing.T, dir string) *DiskStore {
	t.Helper()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDeleteGraphRemovesSnapshots deletes a graph and expects the next
// warm start over the same directory to restore nothing.
func TestDeleteGraphRemovesSnapshots(t *testing.T) {
	dir := t.TempDir()
	srv := New(&Config{Store: mustDiskStore(t, dir)})
	c := newStoreClient(t, srv)
	buildReady(t, c, "gone", true)
	c.decode("DELETE", "/v1/graphs/gone", nil, http.StatusNoContent, nil)

	srv2 := New(&Config{Store: mustDiskStore(t, dir)})
	restored, err := srv2.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("restored %d builds of a deleted graph, want 0", restored)
	}
}

// TestWarmStartMultipleBuildsOneGraph persists two builds of one graph
// and warm-starts both into the same registered graph.
func TestWarmStartMultipleBuildsOneGraph(t *testing.T) {
	dir := t.TempDir()
	srv := New(&Config{Store: mustDiskStore(t, dir)})
	c := newStoreClient(t, srv)
	buildReady(t, c, "multi", true)
	var second buildInfo
	c.decode("POST", "/v1/graphs/multi/builds",
		map[string]any{"mode": "single", "sources": []int{2}}, http.StatusAccepted, &second)
	if got := c.waitReady("multi", second.ID); got.Status != StatusReady {
		t.Fatalf("second build: %+v", got)
	}
	c.waitSnapshot("multi", second.ID)

	srv2 := New(&Config{Store: mustDiskStore(t, dir)})
	restored, err := srv2.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d builds, want 2", restored)
	}
	c2 := newStoreClient(t, srv2)
	var got buildInfo
	c2.decode("GET", "/v1/graphs/multi/builds/"+second.ID, nil, http.StatusOK, &got)
	if got.Mode != "single" || !got.Restored {
		t.Fatalf("second restored build: %+v", got)
	}
}

// ---- store unit tests ----

func TestDiskStoreAtomicityAndListing(t *testing.T) {
	dir := t.TempDir()
	s := mustDiskStore(t, dir)
	// A failing write must leave nothing behind under the final name.
	err := s.Put("g", "b1", func(w io.Writer) error { return fmt.Errorf("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Put error = %v", err)
	}
	if _, err := s.Open("g", "b1"); !os.IsNotExist(err) {
		t.Fatalf("failed Put left a snapshot behind: %v", err)
	}
	keys, err := s.List()
	if err != nil || len(keys) != 0 {
		t.Fatalf("List after failed put = %v, %v", keys, err)
	}
	// Strays are ignored.
	if err := os.WriteFile(filepath.Join(dir, "g", "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("g", "b1", func(w io.Writer) error { _, err := w.Write([]byte("data")); return err }); err != nil {
		t.Fatal(err)
	}
	keys, err = s.List()
	if err != nil || len(keys) != 1 || keys[0] != (StoreKey{Graph: "g", Build: "b1"}) {
		t.Fatalf("List = %v, %v", keys, err)
	}
	rc, err := s.Open("g", "b1")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "data" {
		t.Fatalf("Open read %q", got)
	}
	// Path traversal attempts are rejected outright.
	if err := s.Put("../evil", "b1", func(io.Writer) error { return nil }); err == nil {
		t.Fatal("traversal graph name accepted")
	}
	if _, err := s.Open("g", "../../b1"); err == nil {
		t.Fatal("traversal build name accepted")
	}
	if err := s.DeleteGraph("g"); err != nil {
		t.Fatal(err)
	}
	if keys, _ := s.List(); len(keys) != 0 {
		t.Fatalf("List after delete = %v", keys)
	}
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("g", "b1", func(w io.Writer) error { _, err := w.Write([]byte("abc")); return err }); err != nil {
		t.Fatal(err)
	}
	rc, err := s.Open("g", "b1")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "abc" {
		t.Fatalf("Open read %q", got)
	}
	if _, err := s.Open("g", "b2"); !os.IsNotExist(err) {
		t.Fatalf("missing key error = %v", err)
	}
	if err := s.DeleteGraph("g"); err != nil {
		t.Fatal(err)
	}
	if keys, _ := s.List(); len(keys) != 0 {
		t.Fatalf("List after delete = %v", keys)
	}
}

// TestGetSnapshotDeterministic: with no store, every GET live-encodes —
// and must produce identical bytes each time (what lets the store-served
// and live-encoded paths claim byte equality).
func TestGetSnapshotDeterministic(t *testing.T) {
	c := newStoreClient(t, New(nil))
	info := buildReady(t, c, "det", false)
	_, a := c.do("GET", "/v1/graphs/det/builds/"+info.ID+"/snapshot", nil)
	_, b := c.do("GET", "/v1/graphs/det/builds/"+info.ID+"/snapshot", nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("two GETs of the same snapshot differ (%d vs %d bytes)", len(a), len(b))
	}
	if _, err := snap.Decode(bytes.NewReader(a)); err != nil {
		t.Fatal(err)
	}
}

// TestPutSnapshotRejectsVertexModel: the query plane speaks edge faults
// only, so a vertex-fault snapshot must be refused rather than silently
// served with wrong fault semantics.
func TestPutSnapshotRejectsVertexModel(t *testing.T) {
	st, err := core.BuildVertexExhaustive(gen.GNP(14, 0.3, 3), 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf, &snap.Snapshot{Structure: st}); err != nil {
		t.Fatal(err)
	}
	c := newTestClient(t, nil)
	resp, err := c.srv.Client().Do(mustRequest(t, "PUT",
		c.srv.URL+"/v1/graphs/vx/builds/b1/snapshot", buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "vertex") {
		t.Fatalf("vertex snapshot PUT: %d %s, want 400 mentioning the fault model", resp.StatusCode, body)
	}
}

// TestPutSnapshotOversizedBody: a body over MaxSnapshotBytes must come
// back as 413, not a generic decode failure.
func TestPutSnapshotOversizedBody(t *testing.T) {
	srv := New(&Config{MaxSnapshotBytes: 64})
	c := newStoreClient(t, srv)
	st, err := core.BuildDual(gen.GNP(20, 0.3, 1), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf, &snap.Snapshot{Structure: st}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(mustRequest(t, "PUT",
		c.srv.URL+"/v1/graphs/big/builds/b1/snapshot", buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT: %d, want 413", resp.StatusCode)
	}
}

// TestPutSnapshotUnderNewNames uploads a snapshot under DIFFERENT
// graph/build names: the stored copy must be re-stamped with the new
// names and must match what GET streams, every time.
func TestPutSnapshotUnderNewNames(t *testing.T) {
	src := New(&Config{Store: NewMemStore()})
	c1 := newStoreClient(t, src)
	info := buildReady(t, c1, "net", true)
	_, upload := c1.do("GET", "/v1/graphs/net/builds/"+info.ID+"/snapshot", nil)

	dstStore := NewMemStore()
	dst := New(&Config{Store: dstStore})
	c2 := newStoreClient(t, dst)
	resp, err := c2.srv.Client().Do(mustRequest(t, "PUT",
		c2.srv.URL+"/v1/graphs/other/builds/b7/snapshot", upload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT under new names: %d", resp.StatusCode)
	}
	_, got1 := c2.do("GET", "/v1/graphs/other/builds/b7/snapshot", nil)
	_, got2 := c2.do("GET", "/v1/graphs/other/builds/b7/snapshot", nil)
	if !bytes.Equal(got1, got2) {
		t.Fatal("GETs of a renamed upload differ")
	}
	rc, err := dstStore.Open("other", "b7")
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(stored, got1) {
		t.Fatal("stored bytes differ from GET bytes for a renamed upload")
	}
	sn, err := snap.Decode(bytes.NewReader(got1))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Meta.Graph != "other" || sn.Meta.Build != "b7" {
		t.Fatalf("renamed upload META = %+v, want other/b7", sn.Meta)
	}
	// The answers served under the new name are still the original's.
	if a, b := queryBatch(t, c1, "net", info.ID), queryBatch(t, c2, "other", "b7"); !bytes.Equal(a, b) {
		t.Fatalf("renamed replica answers differ")
	}
}

// TestDecodeHostileSectionLength: a tiny input declaring a huge section
// must fail fast without allocating the declared size (guarded indirectly:
// the error must be a truncation FormatError, and the test completes
// instantly under -race without OOM).
func TestDecodeHostileSectionLength(t *testing.T) {
	st, err := core.BuildDual(gen.PathGraph(4), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf, &snap.Snapshot{Structure: st}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Declare GRPH (section table entry 1, length at offset 16+12+4+4) as
	// ~1 GiB while providing almost no bytes.
	mut := append([]byte(nil), data[:60]...)
	mut[16+12+8] = 0xff // bump a high byte of GRPH's length field
	mut[16+12+9] = 0x3f
	if _, err := snap.Decode(bytes.NewReader(mut)); err == nil {
		t.Fatal("hostile section length accepted")
	}
}

// TestWarmStartPrewarm: with Config.PrewarmRestored, a warm start seeds
// each restored build's memo with its fault-free table — /v1/stats reports
// the warmed-entry count and a fault-free query hits the cache instead of
// paying a BFS.
func TestWarmStartPrewarm(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(&Config{Store: store1})
	c1 := newStoreClient(t, srv1)
	info := buildReady(t, c1, "pw", true)
	c1.srv.Close()

	store2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(&Config{Store: store2, PrewarmRestored: true})
	if restored, err := srv2.WarmStart(); err != nil || restored != 1 {
		t.Fatalf("warm start: restored=%d err=%v", restored, err)
	}
	c2 := newStoreClient(t, srv2)

	var stats statsResponse
	c2.decode("GET", "/v1/stats", nil, http.StatusOK, &stats)
	if stats.WarmedEntries != 1 {
		t.Fatalf("warmedEntries = %d, want 1 (stats: %+v)", stats.WarmedEntries, stats)
	}
	if stats.Cache == nil || stats.Cache.PinnedBytes == 0 {
		t.Fatalf("no pinned base after prewarm: %+v", stats.Cache)
	}
	preHits, preMisses := stats.Cache.Hits, stats.Cache.Misses

	// The canonical post-restart query — no faults — must be a pure hit.
	c2.decode("GET", "/v1/graphs/pw/builds/"+info.ID+"/dist?source=0&target=5", nil, http.StatusOK, nil)
	stats = statsResponse{}
	c2.decode("GET", "/v1/stats", nil, http.StatusOK, &stats)
	if stats.Cache.Hits != preHits+1 || stats.Cache.Misses != preMisses {
		t.Fatalf("fault-free query not served from the prewarmed memo: hits %d→%d misses %d→%d",
			preHits, stats.Cache.Hits, preMisses, stats.Cache.Misses)
	}
}
