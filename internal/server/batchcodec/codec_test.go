package batchcodec

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func buildRequest(t *testing.T) ([]byte, []Item) {
	t.Helper()
	var b RequestBuilder
	items := []Item{
		{Source: 0, Target: 7, Flags: 0},
		{Source: 0, Target: 3, Fault0: 12, Flags: 1},
		{Source: 2, Target: 9, Fault0: 4, Fault1: 31, Flags: 2},
		{Source: 0, Target: 5, Fault0: 1, Flags: 1 | FlagRoute},
		{Source: 1, Target: -1, Flags: FlagAllDists},
	}
	for _, it := range items {
		b.Add(it)
	}
	return b.Frame(), items
}

func TestRequestRoundTrip(t *testing.T) {
	frame, items := buildRequest(t)
	req, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if req.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", req.Len(), len(items))
	}
	for i, want := range items {
		if got := req.Item(i); got != want {
			t.Fatalf("item %d = %+v, want %+v", i, got, want)
		}
	}
	// AddQuery convenience produces the same bytes as manual items.
	var b2 RequestBuilder
	if err := b2.AddQuery(0, 7, nil, false); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddQuery(0, 3, []int{12}, false); err != nil {
		t.Fatal(err)
	}
	req2, err := DecodeRequest(b2.Frame())
	if err != nil {
		t.Fatal(err)
	}
	if req2.Item(0) != items[0] || req2.Item(1) != items[1] {
		t.Fatalf("AddQuery items differ: %+v %+v", req2.Item(0), req2.Item(1))
	}
	if err := b2.AddQuery(0, 1, []int{1, 2, 3}, false); err == nil {
		t.Fatal("3 faults per item accepted")
	}
}

func TestItemValid(t *testing.T) {
	cases := []struct {
		flags uint32
		want  bool
	}{
		{0, true},
		{2, true},
		{3, false}, // 3 faults
		{FlagRoute | 1, true},
		{FlagAllDists, true},
		{FlagRoute | FlagAllDists, false}, // exclusive
		{1 << 10, false},                  // unknown bit
	}
	for _, c := range cases {
		if got := (Item{Flags: c.flags}).Valid(); got != c.want {
			t.Fatalf("Valid(flags=%#x) = %v, want %v", c.flags, got, c.want)
		}
	}
}

func buildResponse(t *testing.T) []byte {
	t.Helper()
	var w ResponseWriter
	w.Dist(4, true)
	w.Dist(-1, false)
	w.Error(ErrBadFault)
	w.Path([]int{0, 3, 9})
	w.Dists([]int32{0, 1, -1, 2})
	return w.Frame()
}

func TestResponseRoundTrip(t *testing.T) {
	frame := buildResponse(t)
	resp, err := DecodeResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Len() != 5 {
		t.Fatalf("Len = %d, want 5", resp.Len())
	}
	it := resp.Iter()

	if !it.Next() {
		t.Fatal("iterator ended early")
	}
	if rec := it.Record(); rec.Dist != 4 || !rec.Reachable() || rec.Err() != ErrNone {
		t.Fatalf("record 0 = %+v", rec)
	}
	it.Next()
	if rec := it.Record(); rec.Dist != -1 || rec.Reachable() {
		t.Fatalf("record 1 = %+v", rec)
	}
	it.Next()
	if rec := it.Record(); rec.Err() != ErrBadFault {
		t.Fatalf("record 2 = %+v, want ErrBadFault", rec)
	}
	it.Next()
	rec := it.Record()
	if rec.Dist != 2 || !rec.Reachable() || it.ValueLen() != 3 {
		t.Fatalf("record 3 = %+v valueLen=%d", rec, it.ValueLen())
	}
	for j, want := range []uint32{0, 3, 9} {
		if it.Value(j) != want {
			t.Fatalf("path[%d] = %d, want %d", j, it.Value(j), want)
		}
	}
	it.Next()
	if it.ValueLen() != 4 {
		t.Fatalf("table len = %d, want 4", it.ValueLen())
	}
	for j, want := range []int32{0, 1, -1, 2} {
		if int32(it.Value(j)) != want {
			t.Fatalf("table[%d] = %d, want %d", j, int32(it.Value(j)), want)
		}
	}
	if it.Next() {
		t.Fatal("iterator overran")
	}

	// Reset reuses the writer cleanly.
	var w ResponseWriter
	w.Dist(1, true)
	w.Reset()
	w.Dist(4, true)
	w.Dist(-1, false)
	w.Error(ErrBadFault)
	w.Path([]int{0, 3, 9})
	w.Dists([]int32{0, 1, -1, 2})
	if string(w.Frame()) != string(frame) {
		t.Fatal("reset writer produced different bytes")
	}
}

// assertFrameError asserts decoding buf fails with a *FrameError whose
// offset lies within the frame.
func assertFrameError(t *testing.T, err error, n int, what string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s decoded successfully", what)
	}
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("%s: error %v is not a *FrameError", what, err)
	}
	if fe.Offset < 0 || fe.Offset > int64(n) {
		t.Fatalf("%s: offset %d outside frame of %d bytes", what, fe.Offset, n)
	}
}

func TestRequestHostileInputs(t *testing.T) {
	frame, _ := buildRequest(t)
	for cut := 0; cut < len(frame); cut++ {
		_, err := DecodeRequest(frame[:cut])
		assertFrameError(t, err, len(frame), "truncation")
	}
	for pos := 0; pos < len(frame); pos++ {
		mut := append([]byte(nil), frame...)
		mut[pos] ^= 0x10
		_, err := DecodeRequest(mut)
		assertFrameError(t, err, len(frame), "byte flip")
	}
	// Length bomb: a count claiming ~80 GiB of items on a tiny buffer.
	bomb := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(bomb[8:], 0xffffffff)
	_, err := DecodeRequest(bomb)
	assertFrameError(t, err, len(frame), "length bomb")
}

func TestResponseHostileInputs(t *testing.T) {
	frame := buildResponse(t)
	for cut := 0; cut < len(frame); cut++ {
		_, err := DecodeResponse(frame[:cut])
		assertFrameError(t, err, len(frame), "truncation")
	}
	for pos := 0; pos < len(frame); pos++ {
		mut := append([]byte(nil), frame...)
		mut[pos] ^= 0x10
		_, err := DecodeResponse(mut)
		assertFrameError(t, err, len(frame), "byte flip")
	}
	bomb := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(bomb[12:], 0x7fffffff)
	_, err := DecodeResponse(bomb)
	assertFrameError(t, err, len(frame), "value-area length bomb")
}

// reframe recomputes the CRC after a test tampers with payload bytes, so
// semantic validation (not the checksum) must catch the damage.
func reframe(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	crc := crc32.Checksum(out[headerBytes:len(out)-crcBytes], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(out[len(out)-crcBytes:], crc)
	return out
}

func TestResponseSemanticValidation(t *testing.T) {
	frame := buildResponse(t)

	// Unknown record flag bit.
	mut := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(mut[headerBytes+4:], 1<<7)
	_, err := DecodeResponse(reframe(mut))
	assertFrameError(t, err, len(frame), "unknown record flag")

	// Error mixed with result flags.
	mut = append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(mut[headerBytes+4:], RecError|RecReachable)
	_, err = DecodeResponse(reframe(mut))
	assertFrameError(t, err, len(frame), "error+result flags")

	// Path record overrunning the value area.
	mut = append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(mut[headerBytes+3*respRecBytes+8:], 1000)
	_, err = DecodeResponse(reframe(mut))
	assertFrameError(t, err, len(frame), "value overrun")

	// Records consuming less than the declared value area.
	mut = append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(mut[headerBytes+3*respRecBytes+8:], 2)
	_, err = DecodeResponse(reframe(mut))
	assertFrameError(t, err, len(frame), "value underrun")
}
