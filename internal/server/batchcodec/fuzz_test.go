package batchcodec

import (
	"errors"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes to the request decoder: it must
// never panic or over-allocate, reject malformed input with a *FrameError,
// and on accept the decoded items must re-encode to the identical frame
// (the encoding is canonical).
func FuzzDecodeRequest(f *testing.F) {
	var b RequestBuilder
	b.Add(Item{Source: 0, Target: 3})
	b.Add(Item{Source: 1, Target: 7, Fault0: 2, Fault1: 9, Flags: 2})
	b.Add(Item{Source: 0, Target: 4, Fault0: 1, Flags: 1 | FlagRoute})
	b.Add(Item{Source: 2, Flags: FlagAllDists})
	f.Add(append([]byte(nil), b.Frame()...))
	b.Reset()
	b.Add(Item{Source: 5, Target: 6, Flags: 0})
	f.Add(append([]byte(nil), b.Frame()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v is not a *FrameError", err)
			}
			return
		}
		var rb RequestBuilder
		for i := 0; i < req.Len(); i++ {
			rb.Add(req.Item(i))
		}
		if string(rb.Frame()) != string(data) {
			t.Fatalf("accepted frame is not canonical (%d bytes)", len(data))
		}
	})
}

// FuzzDecodeResponse is the response-side twin: never panic, *FrameError
// on reject, and on accept the iterator must walk every record and value
// without stepping out of bounds.
func FuzzDecodeResponse(f *testing.F) {
	var w ResponseWriter
	w.Dist(3, true)
	w.Error(ErrBadSource)
	w.Path([]int{0, 2, 5, 6})
	w.Dists([]int32{0, -1, 4})
	f.Add(append([]byte(nil), w.Frame()...))
	w.Reset()
	w.Dist(-1, false)
	f.Add(append([]byte(nil), w.Frame()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v is not a *FrameError", err)
			}
			return
		}
		seen := 0
		values := 0
		for it := resp.Iter(); it.Next(); {
			rec := it.Record()
			for j := 0; j < it.ValueLen(); j++ {
				_ = it.Value(j)
			}
			values += it.ValueLen()
			_ = rec.Err()
			seen++
		}
		if seen != resp.Len() {
			t.Fatalf("iterator saw %d of %d records", seen, resp.Len())
		}
		if values != len(resp.values)/4 {
			t.Fatalf("iterator consumed %d of %d value words", values, len(resp.values)/4)
		}
	})
}
