// Package batchcodec implements the binary batch query protocol of the
// serving plane: a length-prefixed, CRC-guarded framing with fixed-width
// request items and response records, negotiated on the batch query
// endpoint by Content-Type (see DESIGN.md "Query plane"). The JSON batch
// endpoint spends most of its time marshalling; this framing decodes and
// encodes with zero allocations per item, which is what pushes the batch
// path past 1M queries/s.
//
// Request frame (all integers little-endian):
//
//	offset 0   magic    "FTBQ" (4 bytes)
//	offset 4   version  uint32 (currently 1)
//	offset 8   count    uint32
//	offset 12  reserved uint32 (must be 0)
//	offset 16  count × 20-byte items:
//	           source int32, target int32, fault0 uint32, fault1 uint32,
//	           flags uint32 (low 8 bits: fault count 0..2; FlagRoute,
//	           FlagAllDists; all other bits must be 0)
//	last 4     crc32 uint32 (Castagnoli, over the item bytes)
//
// Response frame:
//
//	offset 0   magic      "FTBR" (4 bytes)
//	offset 4   version    uint32 (currently 1)
//	offset 8   count      uint32
//	offset 12  valueWords uint32 (uint32 count of the value area)
//	offset 16  count × 12-byte records:
//	           dist int32, flags uint32 (RecReachable, RecError,
//	           RecHasPath, RecHasDists), aux uint32 (error code, path
//	           length, or table length)
//	then       value area: valueWords × uint32 (path vertex IDs and
//	           distance tables, consumed in record order)
//	last 4     crc32 uint32 (Castagnoli, over records + value area)
//
// Both decoders demand the exact frame length implied by the header and
// allocate nothing proportional to the declared counts (they return views
// into the input buffer), so truncation, length bombs, and flipped bits
// all fail with a position-carrying *FrameError — the same contract as
// internal/snap, from which the CRC-32C/section idiom is borrowed.
package batchcodec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ContentType negotiates the binary protocol on the batch query endpoint.
const ContentType = "application/x-ftbfs-batch"

// ProtoVersion is the wire version of both frame types.
const ProtoVersion = 1

// Frame magics.
const (
	reqMagic  = "FTBQ"
	respMagic = "FTBR"
)

// Fixed widths.
const (
	headerBytes  = 16
	reqItemBytes = 20
	respRecBytes = 12
	crcBytes     = 4
)

// Request item flags. The low 8 bits of Item.Flags hold the fault count.
const (
	FlagRoute    = 1 << 8 // return a realizing path (needs a target)
	FlagAllDists = 1 << 9 // return the whole distance table (target ignored)

	flagFaultMask  = 0xff
	reqKnownFlags  = FlagRoute | FlagAllDists | flagFaultMask
	maxItemFaults  = 2
	respKnownFlags = RecReachable | RecError | RecHasPath | RecHasDists
)

// Response record flags.
const (
	RecReachable = 1 << 0 // target reachable (dist is valid)
	RecError     = 1 << 1 // item failed; aux is an ErrCode
	RecHasPath   = 1 << 2 // aux path vertices follow in the value area
	RecHasDists  = 1 << 3 // aux table entries follow in the value area
)

// ErrCode is the aux value of an error record. Binary responses carry
// codes, not strings; the JSON protocol remains the debugging surface.
type ErrCode uint32

const (
	ErrNone        ErrCode = iota
	ErrBadItem             // malformed item (unknown flags, bad fault count)
	ErrBadSource           // source is not one of the structure's sources
	ErrBadTarget           // target out of vertex range
	ErrBadFault            // fault edge ID out of edge range
	ErrFaultBudget         // more distinct faults than the structure supports
	ErrInternal            // oracle failed after validation
)

func (c ErrCode) String() string {
	switch c {
	case ErrNone:
		return "ok"
	case ErrBadItem:
		return "malformed item"
	case ErrBadSource:
		return "unknown source"
	case ErrBadTarget:
		return "target out of range"
	case ErrBadFault:
		return "fault edge out of range"
	case ErrFaultBudget:
		return "fault budget exceeded"
	case ErrInternal:
		return "internal error"
	default:
		return fmt.Sprintf("error code %d", uint32(c))
	}
}

// FrameError describes a malformed or corrupted frame. Offset is the byte
// position in the frame at which decoding failed.
type FrameError struct {
	Offset int64
	Msg    string
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("batchcodec: offset %d: %s", e.Offset, e.Msg)
}

func frameErrf(offset int64, format string, args ...any) error {
	return &FrameError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// castagnoli matches internal/snap's section checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Item is one decoded request item. Target is ignored when FlagAllDists is
// set; Fault1 is ignored when the fault count is below 2.
type Item struct {
	Source int32
	Target int32
	Fault0 uint32
	Fault1 uint32
	Flags  uint32
}

// NumFaults returns the item's fault count (0..2 in a valid item).
func (it Item) NumFaults() int { return int(it.Flags & flagFaultMask) }

// Route reports whether the item asks for a realizing path.
func (it Item) Route() bool { return it.Flags&FlagRoute != 0 }

// AllDists reports whether the item asks for the whole distance table.
func (it Item) AllDists() bool { return it.Flags&FlagAllDists != 0 }

// Valid reports whether the item's flag word is well-formed. Decoding does
// not reject invalid items — the server answers them with ErrBadItem so one
// bad item cannot fail a whole batch.
func (it Item) Valid() bool {
	return it.Flags&^uint32(reqKnownFlags) == 0 &&
		it.NumFaults() <= maxItemFaults &&
		!(it.Route() && it.AllDists())
}

// Request is a zero-copy view of a decoded request frame: items alias the
// input buffer, which must stay alive and unmodified while in use.
type Request struct {
	items []byte
}

// Len returns the item count.
func (r Request) Len() int { return len(r.items) / reqItemBytes }

// Item decodes item i. It is the per-item read of the server's binary
// batch loop.
//
//ftbfs:hotpath
func (r Request) Item(i int) Item {
	b := r.items[i*reqItemBytes : i*reqItemBytes+reqItemBytes]
	return Item{
		Source: int32(binary.LittleEndian.Uint32(b[0:])),
		Target: int32(binary.LittleEndian.Uint32(b[4:])),
		Fault0: binary.LittleEndian.Uint32(b[8:]),
		Fault1: binary.LittleEndian.Uint32(b[12:]),
		Flags:  binary.LittleEndian.Uint32(b[16:]),
	}
}

// checkFrame validates the frame's exact length and trailing CRC and
// returns the payload between header and CRC. elemBytes is the fixed
// per-element width; extraBytes any additional payload the header declares
// (the response value area).
func checkFrame(buf []byte, elemBytes int, count, extraBytes int64) ([]byte, error) {
	want := headerBytes + count*int64(elemBytes) + extraBytes + crcBytes
	if int64(len(buf)) != want {
		return nil, frameErrf(int64(len(buf)), "frame is %d bytes, header implies %d", len(buf), want)
	}
	payload := buf[headerBytes : len(buf)-crcBytes]
	stored := binary.LittleEndian.Uint32(buf[len(buf)-crcBytes:])
	if got := crc32.Checksum(payload, castagnoli); got != stored {
		return nil, frameErrf(int64(len(buf)-crcBytes), "checksum mismatch: computed %08x, stored %08x", got, stored)
	}
	return payload, nil
}

// decodeHeader validates the 16-byte header and returns count and the
// fourth header word.
func decodeHeader(buf []byte, magic string) (count uint32, word3 uint32, err error) {
	if len(buf) < headerBytes+crcBytes {
		return 0, 0, frameErrf(int64(len(buf)), "frame truncated at %d bytes", len(buf))
	}
	if string(buf[:4]) != magic {
		return 0, 0, frameErrf(0, "bad magic %q, want %q", buf[:4], magic)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != ProtoVersion {
		return 0, 0, frameErrf(4, "unsupported protocol version %d (supported: %d)", v, ProtoVersion)
	}
	return binary.LittleEndian.Uint32(buf[8:]), binary.LittleEndian.Uint32(buf[12:]), nil
}

// DecodeRequest validates a request frame and returns a zero-copy view of
// its items. Nothing is allocated regardless of the declared count, so a
// length bomb costs only the length comparison that rejects it.
func DecodeRequest(buf []byte) (Request, error) {
	count, reserved, err := decodeHeader(buf, reqMagic)
	if err != nil {
		return Request{}, err
	}
	if reserved != 0 {
		return Request{}, frameErrf(12, "reserved header word is %d, want 0", reserved)
	}
	if count == 0 {
		return Request{}, frameErrf(8, "empty batch")
	}
	items, err := checkFrame(buf, reqItemBytes, int64(count), 0)
	if err != nil {
		return Request{}, err
	}
	return Request{items: items}, nil
}

// RequestBuilder assembles a request frame. The zero value is ready; Reset
// reuses the buffer across frames.
type RequestBuilder struct {
	items []byte
	count uint32
}

// Reset clears the builder, keeping capacity.
func (b *RequestBuilder) Reset() {
	b.items = b.items[:0]
	b.count = 0
}

// Len returns the number of items added.
func (b *RequestBuilder) Len() int { return int(b.count) }

// Add appends one item. It is the per-item write of the bench client.
//
//ftbfs:hotpath
func (b *RequestBuilder) Add(it Item) {
	b.items = binary.LittleEndian.AppendUint32(b.items, uint32(it.Source))
	b.items = binary.LittleEndian.AppendUint32(b.items, uint32(it.Target))
	b.items = binary.LittleEndian.AppendUint32(b.items, it.Fault0)
	b.items = binary.LittleEndian.AppendUint32(b.items, it.Fault1)
	b.items = binary.LittleEndian.AppendUint32(b.items, it.Flags)
	b.count++
}

// AddQuery appends a point-to-point distance query (route=false) or route
// query (route=true) with up to two fault edge IDs.
func (b *RequestBuilder) AddQuery(source, target int, faults []int, route bool) error {
	if len(faults) > maxItemFaults {
		return fmt.Errorf("batchcodec: %d faults per item exceeds %d", len(faults), maxItemFaults)
	}
	it := Item{Source: int32(source), Target: int32(target), Flags: uint32(len(faults))}
	if route {
		it.Flags |= FlagRoute
	}
	if len(faults) > 0 {
		it.Fault0 = uint32(faults[0])
	}
	if len(faults) > 1 {
		it.Fault1 = uint32(faults[1])
	}
	b.Add(it)
	return nil
}

// Frame returns the encoded request. The slice is owned by the builder and
// valid until the next Reset/Add.
func (b *RequestBuilder) Frame() []byte {
	return assembleFrame(reqMagic, b.count, 0, b.items, nil)
}

// assembleFrame stitches header + payload(s) + CRC into one buffer.
func assembleFrame(magic string, count, word3 uint32, payload, extra []byte) []byte {
	out := make([]byte, 0, headerBytes+len(payload)+len(extra)+crcBytes)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, ProtoVersion)
	out = binary.LittleEndian.AppendUint32(out, count)
	out = binary.LittleEndian.AppendUint32(out, word3)
	out = append(out, payload...)
	out = append(out, extra...)
	crc := crc32.Checksum(out[headerBytes:], castagnoli)
	return binary.LittleEndian.AppendUint32(out, crc)
}

// Record is one decoded response record.
type Record struct {
	Dist  int32
	Flags uint32
	Aux   uint32
}

// Reachable reports whether the record's target was reachable.
func (rec Record) Reachable() bool { return rec.Flags&RecReachable != 0 }

// Err returns the record's error code (ErrNone when the item succeeded).
func (rec Record) Err() ErrCode {
	if rec.Flags&RecError == 0 {
		return ErrNone
	}
	return ErrCode(rec.Aux)
}

// Response is a zero-copy view of a decoded response frame.
type Response struct {
	records []byte
	values  []byte // valueWords × uint32, consumed in record order
}

// Len returns the record count.
func (r Response) Len() int { return len(r.records) / respRecBytes }

// Record decodes record i. Value payloads (paths, tables) are reached
// through Iter, which tracks the value cursor.
//
//ftbfs:hotpath
func (r Response) Record(i int) Record {
	b := r.records[i*respRecBytes : i*respRecBytes+respRecBytes]
	return Record{
		Dist:  int32(binary.LittleEndian.Uint32(b[0:])),
		Flags: binary.LittleEndian.Uint32(b[4:]),
		Aux:   binary.LittleEndian.Uint32(b[8:]),
	}
}

// DecodeResponse validates a response frame and returns a zero-copy view.
// Validation walks every record once, checking flag well-formedness and
// that the value area is consumed exactly; like DecodeRequest it allocates
// nothing proportional to the declared sizes.
func DecodeResponse(buf []byte) (Response, error) {
	count, valueWords, err := decodeHeader(buf, respMagic)
	if err != nil {
		return Response{}, err
	}
	payload, err := checkFrame(buf, respRecBytes, int64(count), 4*int64(valueWords))
	if err != nil {
		return Response{}, err
	}
	r := Response{
		records: payload[:int(count)*respRecBytes],
		values:  payload[int(count)*respRecBytes:],
	}
	used := int64(0)
	for i := 0; i < int(count); i++ {
		rec := r.Record(i)
		recOff := int64(headerBytes + i*respRecBytes)
		if rec.Flags&^uint32(respKnownFlags) != 0 {
			return Response{}, frameErrf(recOff+4, "record %d has unknown flags %#x", i, rec.Flags)
		}
		if rec.Flags&RecError != 0 && rec.Flags != RecError {
			return Response{}, frameErrf(recOff+4, "record %d mixes error with result flags %#x", i, rec.Flags)
		}
		if rec.Flags&RecHasPath != 0 && rec.Flags&RecHasDists != 0 {
			return Response{}, frameErrf(recOff+4, "record %d carries both path and table", i)
		}
		if rec.Flags&(RecHasPath|RecHasDists) != 0 {
			used += int64(rec.Aux)
			if used > int64(valueWords) {
				return Response{}, frameErrf(recOff+8, "record %d overruns value area (%d of %d words)", i, used, valueWords)
			}
		}
	}
	if used != int64(valueWords) {
		return Response{}, frameErrf(12, "value area has %d words, records consume %d", valueWords, used)
	}
	return r, nil
}

// Iter walks a response's records in order, tracking the value cursor so
// path and table payloads can be read without an index allocation.
type Iter struct {
	r   Response
	i   int
	off int // byte offset of the CURRENT record's value block
	n   int // byte length of the current record's value block
}

// Iter returns an iterator positioned before the first record.
func (r Response) Iter() Iter { return Iter{r: r, i: -1} }

// Next advances to the next record, returning false past the end.
//
//ftbfs:hotpath
func (it *Iter) Next() bool {
	if it.i >= 0 {
		it.off += it.n
	}
	it.i++
	if it.i >= it.r.Len() {
		return false
	}
	rec := it.r.Record(it.i)
	it.n = 0
	if rec.Flags&(RecHasPath|RecHasDists) != 0 {
		it.n = 4 * int(rec.Aux)
	}
	return true
}

// Record returns the current record.
func (it *Iter) Record() Record { return it.r.Record(it.i) }

// ValueLen returns the uint32 count of the current record's value block.
func (it *Iter) ValueLen() int { return it.n / 4 }

// Value returns the j-th uint32 of the current record's value block (a
// path vertex ID or a distance-table entry; table entries are int32 cast
// to uint32).
//
//ftbfs:hotpath
func (it *Iter) Value(j int) uint32 {
	return binary.LittleEndian.Uint32(it.r.values[it.off+4*j:])
}

// ResponseWriter assembles a response frame: fixed records and the value
// area grow in separate buffers and Frame stitches them. The zero value is
// ready; Reset reuses both buffers across responses.
type ResponseWriter struct {
	records []byte
	values  []byte
	count   uint32
	vwords  uint32
}

// Reset clears the writer, keeping capacity.
func (w *ResponseWriter) Reset() {
	w.records = w.records[:0]
	w.values = w.values[:0]
	w.count = 0
	w.vwords = 0
}

// Len returns the number of records written.
func (w *ResponseWriter) Len() int { return int(w.count) }

// record appends one fixed-width record.
//
//ftbfs:hotpath
func (w *ResponseWriter) record(dist int32, flags, aux uint32) {
	w.records = binary.LittleEndian.AppendUint32(w.records, uint32(dist))
	w.records = binary.LittleEndian.AppendUint32(w.records, flags)
	w.records = binary.LittleEndian.AppendUint32(w.records, aux)
	w.count++
}

// Dist appends a point-to-point distance record.
//
//ftbfs:hotpath
func (w *ResponseWriter) Dist(d int32, reachable bool) {
	var flags uint32
	if reachable {
		flags = RecReachable
	}
	w.record(d, flags, 0)
}

// Error appends an error record.
func (w *ResponseWriter) Error(code ErrCode) {
	w.record(-1, RecError, uint32(code))
}

// Path appends a route record: hop distance, then the path vertices into
// the value area. An empty path (nil) must instead be reported with
// Dist(-1, false); Path is for realized routes only.
//
//ftbfs:hotpath
func (w *ResponseWriter) Path(vertices []int) {
	w.record(int32(len(vertices)-1), RecReachable|RecHasPath, uint32(len(vertices)))
	for _, v := range vertices {
		w.values = binary.LittleEndian.AppendUint32(w.values, uint32(v))
	}
	w.vwords += uint32(len(vertices))
}

// Dists appends a whole-table record into the value area. Unreachable
// entries keep their -1 encoding.
//
//ftbfs:hotpath
func (w *ResponseWriter) Dists(table []int32) {
	w.record(-1, RecHasDists, uint32(len(table)))
	for _, d := range table {
		w.values = binary.LittleEndian.AppendUint32(w.values, uint32(d))
	}
	w.vwords += uint32(len(table))
}

// DistsPatched appends a whole-table record assembled from a
// delta-encoded table — the fault-free base with vals patched in at the
// (sorted) keys' positions — without materializing the table first: the
// base streams into the value area and the patch rewrites the touched
// positions in place. Byte-identical to Dists of the materialized table.
//
//ftbfs:hotpath
func (w *ResponseWriter) DistsPatched(base, keys, vals []int32) {
	w.record(-1, RecHasDists, uint32(len(base)))
	off := len(w.values)
	for _, d := range base {
		w.values = binary.LittleEndian.AppendUint32(w.values, uint32(d))
	}
	for i, k := range keys {
		binary.LittleEndian.PutUint32(w.values[off+4*int(k):], uint32(vals[i]))
	}
	w.vwords += uint32(len(base))
}

// DistsReindexed appends a whole-table record, permuting entries on the
// way into the value area: output position w holds table[toNew[w]]. Used
// by servers whose internal vertex numbering differs from the wire's —
// the table is read through the permutation instead of being copied
// first.
//
//ftbfs:hotpath
func (w *ResponseWriter) DistsReindexed(table []int32, toNew []int32) {
	w.record(-1, RecHasDists, uint32(len(toNew)))
	for _, nw := range toNew {
		w.values = binary.LittleEndian.AppendUint32(w.values, uint32(table[nw]))
	}
	w.vwords += uint32(len(toNew))
}

// Frame returns the encoded response. The slice is freshly allocated per
// call (one allocation per batch, not per item).
func (w *ResponseWriter) Frame() []byte {
	return assembleFrame(respMagic, w.count, w.vwords, w.records, w.values)
}
