package server

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/bfs"
	"repro/internal/oracle"
	"repro/internal/server/batchcodec"
)

// This file is the binary half of the batch query endpoint: the same
// route as the JSON batch (POST .../query), selected per request by the
// batchcodec Content-Type. The wire format is fixed-width and
// CRC-guarded (see internal/server/batchcodec); the handler allocates
// per batch, never per item — body buffers and response writers are
// pooled, item decoding is a zero-copy view, and every answer appends
// straight into the pooled writer's buffers.

// binBodyPool recycles request-body buffers across binary batch
// requests; binRespPool recycles response writers (record + value
// buffers). Both grow to the largest batch they have served and stay
// warm, so a steady query load settles into zero steady-state
// allocation outside Frame's single per-response slice.
var (
	binBodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	binRespPool = sync.Pool{New: func() any { return new(batchcodec.ResponseWriter) }}
)

// binLimits captures the per-request validation bounds once, so the
// per-item hotpath does no pointer chasing into the structure. Sources
// are in the internal numbering (items are translated before the
// membership scan); the scan is linear because structures have a
// handful of sources.
type binLimits struct {
	n       int
	m       uint32
	budget  int
	sources []int
}

// handleBatchQueryBinary answers one binary batch frame. Item errors
// are in-band records (a malformed item cannot fail the batch); frame
// errors — bad magic, truncation, CRC mismatch, length bombs — reject
// the whole request with 400 and the byte offset of the failure.
func (s *Server) handleBatchQueryBinary(w http.ResponseWriter, r *http.Request) {
	set, x := s.readySet(w, r)
	if set == nil {
		return
	}
	buf := binBodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer binBodyPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)); err != nil {
		writeErr(w, bodyErrStatus(err), "read body: %v", err)
		return
	}
	req, err := batchcodec.DecodeRequest(buf.Bytes())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad batch frame: %v", err)
		return
	}
	if req.Len() > s.cfg.MaxBatchQueries {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"batch of %d queries exceeds limit %d", req.Len(), s.cfg.MaxBatchQueries)
		return
	}
	st := set.Structure()
	lim := binLimits{n: st.G.N(), m: uint32(st.G.M()), budget: st.Faults, sources: st.Sources}
	o := set.Acquire()
	defer set.Release(o)
	rw := binRespPool.Get().(*batchcodec.ResponseWriter)
	rw.Reset()
	defer binRespPool.Put(rw)
	ctx := r.Context()
	values := 0
	var scratch [2]int
	for i := 0; i < req.Len(); i++ {
		values += answerBinaryItem(o, req.Item(i), x, rw, lim, &scratch)
		// Same response-size bound as the JSON path: whole-table items on
		// big graphs must not force an arbitrarily large response into
		// memory. (The binary protocol has no streaming mode; oversized
		// workloads split the batch instead.)
		if values > maxBatchResultValues {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"batch response exceeds %d values at item %d; split the batch", maxBatchResultValues, i)
			return
		}
		if (i+1)%streamFlushEvery == 0 && ctx.Err() != nil {
			return // client gone before any byte was written; drop the work
		}
	}
	frame := rw.Frame()
	w.Header().Set("Content-Type", batchcodec.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	_, _ = w.Write(frame)
}

// answerBinaryItem validates and answers one binary batch item,
// appending exactly one record to rw, and returns the response values
// the item contributed (2 fixed words + value words — the same
// accounting as the JSON path). Validation happens here, in wire
// space, because the oracle's error strings cannot cross the binary
// protocol: each rejection maps to a typed in-band code, checked in
// the oracle's own order (item shape, faults, source, target). The
// faults scratch array lives in the caller so this function does not
// allocate at all.
//
//ftbfs:hotpath
func answerBinaryItem(o *oracle.Oracle, it batchcodec.Item, x xlat,
	rw *batchcodec.ResponseWriter, lim binLimits, scratch *[2]int) int {
	if !it.Valid() {
		rw.Error(batchcodec.ErrBadItem)
		return 2
	}
	nf := it.NumFaults()
	distinct := 0
	if nf >= 1 {
		if it.Fault0 >= lim.m {
			rw.Error(batchcodec.ErrBadFault)
			return 2
		}
		scratch[0] = int(it.Fault0)
		distinct = 1
	}
	if nf == 2 {
		if it.Fault1 >= lim.m {
			rw.Error(batchcodec.ErrBadFault)
			return 2
		}
		if it.Fault1 != it.Fault0 {
			scratch[distinct] = int(it.Fault1)
			distinct++
		}
	}
	if distinct > lim.budget {
		rw.Error(batchcodec.ErrFaultBudget)
		return 2
	}
	src := int(it.Source)
	if src < 0 || src >= lim.n {
		rw.Error(batchcodec.ErrBadSource)
		return 2
	}
	src = x.in(src)
	isSource := false
	for _, v := range lim.sources {
		if v == src {
			isSource = true
			break
		}
	}
	if !isSource {
		rw.Error(batchcodec.ErrBadSource)
		return 2
	}
	faults := scratch[:distinct]
	if it.AllDists() {
		if x.identity() {
			// Serve the table in its stored representation: a full table
			// streams straight into the value area, a delta-encoded one is
			// written as base-plus-patch — no intermediate materialization
			// either way.
			v, err := o.DistsView(src, faults)
			if err != nil {
				rw.Error(batchcodec.ErrInternal)
				return 2
			}
			if v.Full != nil {
				rw.Dists(v.Full)
			} else {
				rw.DistsPatched(v.Base, v.Keys, v.Vals)
			}
			return 2 + v.Len()
		}
		// Reindexing permutes the whole table anyway; materialize into the
		// handle's scratch (DistsReindexed copies out of it immediately).
		d, err := o.Dists(src, faults)
		if err != nil {
			rw.Error(batchcodec.ErrInternal)
			return 2
		}
		rw.DistsReindexed(d, x.toNew)
		return 2 + len(d)
	}
	target := int(it.Target)
	if target < 0 || target >= lim.n {
		rw.Error(batchcodec.ErrBadTarget)
		return 2
	}
	target = x.in(target)
	if it.Route() {
		p, err := o.Route(src, target, faults)
		if err != nil {
			rw.Error(batchcodec.ErrInternal)
			return 2
		}
		if p == nil {
			rw.Dist(-1, false)
			return 2
		}
		// Route returns a freshly allocated path, safe to relabel in place.
		path := []int(p)
		if !x.identity() {
			for i, v := range path {
				path[i] = x.out(v)
			}
		}
		rw.Path(path)
		return 2 + len(path)
	}
	d, err := o.Dist(src, target, faults)
	if err != nil {
		rw.Error(batchcodec.ErrInternal)
		return 2
	}
	rw.Dist(d, d != bfs.Unreachable)
	return 2
}
