package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server/batchcodec"
)

// benchServer stands up a server with one ready dual build over gnp
// n=400 and returns the handler plus the build's query path prefix.
func benchServer(b *testing.B) (http.Handler, string) {
	b.Helper()
	s := New(nil)
	if err := s.RegisterGraph("bench", &GenSpec{Family: "sparse", N: 400, AvgDeg: 8, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	body := `{"mode":"dual","sources":[0],"parallelism":4}`
	req := httptest.NewRequest("POST", "/v1/graphs/bench/builds", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		b.Fatalf("build start: %d %s", rec.Code, rec.Body)
	}
	var info buildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		b.Fatal(err)
	}
	prefix := "/v1/graphs/bench/builds/" + info.ID
	deadline := time.Now().Add(time.Minute)
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", prefix, nil))
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			b.Fatal(err)
		}
		if info.Status == StatusReady {
			return h, prefix
		}
		if info.Status == StatusFailed || time.Now().After(deadline) {
			b.Fatalf("bench build: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkServerDist measures end-to-end handler throughput on the hot
// query path (cached failure events, rotating targets): the server-side
// queries/sec number reported in CHANGES.md.
func BenchmarkServerDist(b *testing.B) {
	h, prefix := benchServer(b)
	faults := []string{"3", "9", "21", "30"}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("%s/dist?source=0&target=%d&faults=%s", prefix, i%400, faults[i%len(faults)])
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d: %s", rec.Code, rec.Body)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/s")
}

// BenchmarkServerDistParallel is BenchmarkServerDist across GOMAXPROCS
// client goroutines — the concurrent serving shape ftbfsd targets.
func BenchmarkServerDistParallel(b *testing.B) {
	h, prefix := benchServer(b)
	faults := []string{"3", "9", "21", "30"}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1))
			url := fmt.Sprintf("%s/dist?source=0&target=%d&faults=%s", prefix, i%400, faults[i%len(faults)])
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
			if rec.Code != http.StatusOK {
				b.Errorf("code %d: %s", rec.Code, rec.Body) // Fatal must not be called off the main goroutine
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/s")
}

// BenchmarkServerRoute measures the uncached routing path (every route
// re-runs a BFS over the sparse structure).
func BenchmarkServerRoute(b *testing.B) {
	h, prefix := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("%s/route?source=0&target=%d&faults=%d", prefix, i%400, i%50)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d: %s", rec.Code, rec.Body)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/s")
}

// batchBody builds a reusable JSON body of `items` dist queries rotating
// over targets and cached failure events.
func batchBody(items int) string {
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	faults := []string{"[3]", "[9]", "[21]", "[30]"}
	for i := 0; i < items; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"source":0,"target":%d,"faults":%s}`, i%400, faults[i%len(faults)])
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// BenchmarkServerBatch1000 measures the batch path: 1000 dist queries per
// HTTP request through one pooled oracle — the per-query cost this
// endpoint exists to amortize (compare with BenchmarkServerDist).
func BenchmarkServerBatch1000(b *testing.B) {
	h, prefix := benchServer(b)
	body := batchBody(1000)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", prefix+"/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d: %s", rec.Code, rec.Body)
		}
	}
	b.ReportMetric(float64(b.N)*1000/time.Since(start).Seconds(), "queries/s")
}

// BenchmarkServerBatch1000Parallel runs concurrent 1000-item batches —
// the multi-core serving shape (sharded cache + one handle per request).
func BenchmarkServerBatch1000Parallel(b *testing.B) {
	h, prefix := benchServer(b)
	body := batchBody(1000)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", prefix+"/query", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Errorf("code %d: %s", rec.Code, rec.Body) // Fatal must not be called off the main goroutine
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)*1000/time.Since(start).Seconds(), "queries/s")
}

// BenchmarkServerBatchStream measures the NDJSON streaming variant.
func BenchmarkServerBatchStream(b *testing.B) {
	h, prefix := benchServer(b)
	body := strings.Replace(batchBody(1000), `{"queries":`, `{"stream":true,"queries":`, 1)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", prefix+"/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d: %s", rec.Code, rec.Body)
		}
	}
	b.ReportMetric(float64(b.N)*1000/time.Since(start).Seconds(), "queries/s")
}

// binBatchFrame builds a reusable binary frame of `items` dist queries
// mirroring batchBody exactly (same targets, same rotating fault sets).
func binBatchFrame(b *testing.B, items int) []byte {
	b.Helper()
	var rb batchcodec.RequestBuilder
	faults := []uint32{3, 9, 21, 30}
	for i := 0; i < items; i++ {
		rb.Add(batchcodec.Item{Source: 0, Target: int32(i % 400), Fault0: faults[i%len(faults)], Flags: 1})
	}
	return append([]byte(nil), rb.Frame()...)
}

// BenchmarkServerBatch1000Binary is BenchmarkServerBatch1000 over the
// binary batch protocol: the same 1000 dist queries per request, minus
// JSON. The delta between the two is pure codec cost — the ">1M q/s on
// one core" target of the binary protocol.
func BenchmarkServerBatch1000Binary(b *testing.B) {
	h, prefix := benchServer(b)
	frame := binBatchFrame(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", prefix+"/query", bytes.NewReader(frame))
		req.Header.Set("Content-Type", batchcodec.ContentType)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d: %s", rec.Code, rec.Body)
		}
	}
	b.ReportMetric(float64(b.N)*1000/time.Since(start).Seconds(), "queries/s")
}

// BenchmarkServerBatch1000BinaryParallel is the concurrent variant —
// pooled body buffers and response writers are shared across goroutines.
func BenchmarkServerBatch1000BinaryParallel(b *testing.B) {
	h, prefix := benchServer(b)
	frame := binBatchFrame(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", prefix+"/query", bytes.NewReader(frame))
			req.Header.Set("Content-Type", batchcodec.ContentType)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Errorf("code %d: %s", rec.Code, rec.Body) // Fatal must not be called off the main goroutine
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)*1000/time.Since(start).Seconds(), "queries/s")
}
