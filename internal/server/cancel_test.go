package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// These tests exercise the interruptible build plane: DELETE-cancellation
// of queued and running builds, graph-deletion fan-out, graceful
// shutdown, live progress, the stats endpoint, and — under -race — a
// start/cancel/delete storm asserting no goroutine leaks and that no
// cancelled build ever serves a query.

// doJSON drives the handler directly (no network, no keep-alive
// goroutines — the storm test counts goroutines).
func doJSON(t *testing.T, h http.Handler, method, path, body string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader(body)))
	return rec.Code, rec.Body.Bytes()
}

func getBuild(t *testing.T, h http.Handler, path string) buildInfo {
	t.Helper()
	code, body := doJSON(t, h, "GET", path, "")
	if code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, code, body)
	}
	var info buildInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
	}
	return info
}

// waitFor polls the build resource until cond holds (or fails the test).
func waitFor(t *testing.T, h http.Handler, path string, timeout time.Duration,
	cond func(buildInfo) bool) buildInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info := getBuild(t, h, path)
		if cond(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached for %s; last: %+v", path, info)
		}
		time.Sleep(time.Millisecond)
	}
}

// slowGraph is big enough that a dual build runs long enough to catch
// mid-flight on any machine, but cancels in milliseconds.
const slowGraph = `{"name":"slow","gen":{"family":"sparse","n":1500,"avgDeg":5,"seed":7}}`

func TestBuildCancelE2E(t *testing.T) {
	s := New(&Config{MaxConcurrentBuilds: 2})
	h := s.Handler()
	if code, body := doJSON(t, h, "POST", "/v1/graphs", slowGraph); code != http.StatusCreated {
		t.Fatalf("create graph: %d %s", code, body)
	}
	code, body := doJSON(t, h, "POST", "/v1/graphs/slow/builds", `{"mode":"dual","sources":[0]}`)
	if code != http.StatusAccepted {
		t.Fatalf("create build: %d %s", code, body)
	}
	var created buildInfo
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	path := "/v1/graphs/slow/builds/" + created.ID

	// Catch it running, with live progress and live elapsed time.
	running := waitFor(t, h, path, 30*time.Second, func(i buildInfo) bool {
		return i.Status == StatusBuilding && i.Progress != nil && i.Progress.Dijkstras > 0
	})
	if running.Progress.UnitsTotal == 0 || running.Progress.Fraction >= 1 {
		t.Fatalf("nonsensical live progress: %+v", running.Progress)
	}
	if running.ElapsedMS <= 0 {
		t.Fatalf("running build reports no elapsed time: %+v", running)
	}

	// DELETE cancels and waits for the build goroutine to wind down; the
	// cooperative poll cadence makes this a few ms (measured in
	// EXPERIMENTS.md; the bound here is generous for loaded CI).
	start := time.Now()
	code, body = doJSON(t, h, "DELETE", path, "")
	latency := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", code, body)
	}
	var cancelled buildInfo
	if err := json.Unmarshal(body, &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.Status != StatusCancelled {
		t.Fatalf("status after DELETE = %q, want %q", cancelled.Status, StatusCancelled)
	}
	if cancelled.ElapsedMS <= 0 {
		t.Fatalf("cancelled build lost its elapsed time: %+v", cancelled)
	}
	if cancelled.Progress == nil || cancelled.Progress.UnitsDone >= cancelled.Progress.UnitsTotal {
		t.Fatalf("cancelled build progress says it finished: %+v", cancelled.Progress)
	}
	if latency > 5*time.Second {
		t.Fatalf("cancellation took %v", latency)
	}
	t.Logf("cancel latency %v at %d/%d units", latency,
		cancelled.Progress.UnitsDone, cancelled.Progress.UnitsTotal)

	// The slot is free again: a build on a small graph runs immediately.
	if n := len(s.buildSem); n != 0 {
		t.Fatalf("%d semaphore slots still held after cancel", n)
	}
	// A cancelled build never serves queries.
	for _, q := range []string{path + "/dist?source=0&target=1", path + "/dists?source=0"} {
		if code, body := doJSON(t, h, "GET", q, ""); code != http.StatusConflict ||
			!strings.Contains(string(body), StatusCancelled) {
			t.Fatalf("query on cancelled build: %d %s", code, body)
		}
	}
	if code, body := doJSON(t, h, "POST", path+"/query",
		`{"queries":[{"source":0,"target":1}]}`); code != http.StatusConflict {
		t.Fatalf("batch query on cancelled build: %d %s", code, body)
	}
	// GET keeps reporting the terminal state.
	if again := getBuild(t, h, path); again.Status != StatusCancelled {
		t.Fatalf("status flapped to %q", again.Status)
	}
	// Second DELETE disposes of the terminal entry entirely.
	if code, body := doJSON(t, h, "DELETE", path, ""); code != http.StatusNoContent {
		t.Fatalf("second DELETE: %d %s", code, body)
	}
	if code, _ := doJSON(t, h, "GET", path, ""); code != http.StatusNotFound {
		t.Fatalf("removed build still resolves: %d", code)
	}
}

func TestQueuedBuildCancelledNeverStarts(t *testing.T) {
	s := New(&Config{MaxConcurrentBuilds: 1})
	if err := s.RegisterGraph("q", &GenSpec{Family: "path", N: 6}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	s.buildSem <- struct{}{} // occupy the only slot

	code, body := doJSON(t, h, "POST", "/v1/graphs/q/builds", `{"mode":"dual","sources":[0]}`)
	if code != http.StatusAccepted {
		t.Fatalf("create: %d %s", code, body)
	}
	var info buildInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	path := "/v1/graphs/q/builds/" + info.ID

	code, body = doJSON(t, h, "DELETE", path, "")
	if code != http.StatusOK {
		t.Fatalf("DELETE queued: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusCancelled {
		t.Fatalf("queued build after DELETE: %q", info.Status)
	}
	if info.ElapsedMS != 0 {
		t.Fatalf("never-started build reports build time %.3fms", info.ElapsedMS)
	}

	<-s.buildSem // free the slot: the cancelled build must NOT start
	time.Sleep(50 * time.Millisecond)
	info = getBuild(t, h, path)
	if info.Status != StatusCancelled {
		t.Fatalf("cancelled-while-queued build came back as %q", info.Status)
	}
	if info.Progress != nil && info.Progress.Dijkstras != 0 {
		t.Fatalf("cancelled-while-queued build did work: %+v", info.Progress)
	}
	if n := len(s.buildSem); n != 0 {
		t.Fatalf("%d slots held by a build that never started", n)
	}
}

func TestDeleteGraphCancelsBuilds(t *testing.T) {
	s := New(&Config{MaxConcurrentBuilds: 2})
	h := s.Handler()
	if code, body := doJSON(t, h, "POST", "/v1/graphs", slowGraph); code != http.StatusCreated {
		t.Fatalf("create graph: %d %s", code, body)
	}
	// One running build, one queued behind... two slots, so start three.
	for i := 0; i < 3; i++ {
		if code, body := doJSON(t, h, "POST", "/v1/graphs/slow/builds",
			`{"mode":"dual","sources":[0]}`); code != http.StatusAccepted {
			t.Fatalf("create build %d: %d %s", i, code, body)
		}
	}
	waitFor(t, h, "/v1/graphs/slow/builds/b1", 30*time.Second, func(i buildInfo) bool {
		return i.Status == StatusBuilding
	})
	if code, body := doJSON(t, h, "DELETE", "/v1/graphs/slow", ""); code != http.StatusNoContent {
		t.Fatalf("DELETE graph: %d %s", code, body)
	}
	// All build goroutines must wind down promptly (they are cancelled,
	// not abandoned): Shutdown waits for exactly those goroutines.
	ctx, cancelFn := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancelFn()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("builds of the deleted graph did not wind down: %v", err)
	}
	if n := len(s.buildSem); n != 0 {
		t.Fatalf("%d slots still held", n)
	}
}

func TestShutdownCancelsBuilds(t *testing.T) {
	s := New(&Config{MaxConcurrentBuilds: 1})
	h := s.Handler()
	if code, body := doJSON(t, h, "POST", "/v1/graphs", slowGraph); code != http.StatusCreated {
		t.Fatalf("create graph: %d %s", code, body)
	}
	if code, body := doJSON(t, h, "POST", "/v1/graphs/slow/builds",
		`{"mode":"dual","sources":[0]}`); code != http.StatusAccepted {
		t.Fatalf("create build: %d %s", code, body)
	}
	waitFor(t, h, "/v1/graphs/slow/builds/b1", 30*time.Second, func(i buildInfo) bool {
		return i.Status == StatusBuilding
	})
	ctx, cancelFn := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancelFn()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	t.Logf("shutdown drained in-flight build in %v", time.Since(start))
	if info := getBuild(t, h, "/v1/graphs/slow/builds/b1"); info.Status != StatusCancelled {
		t.Fatalf("build after shutdown: %q", info.Status)
	}
	// New builds are refused outright once shutdown has begun — nothing
	// can slip a goroutine past Shutdown's wait.
	code, body := doJSON(t, h, "POST", "/v1/graphs/slow/builds", `{"mode":"dual","sources":[0]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown create: %d %s, want 503", code, body)
	}
}

// TestCancelStorm is the -race storm: builds started, cancelled, deleted
// and queried concurrently; afterwards every goroutine is accounted for
// and no cancelled build answers queries.
func TestCancelStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(&Config{MaxConcurrentBuilds: 2, Store: NewMemStore()})
	h := s.Handler()
	for gi := 0; gi < 2; gi++ {
		spec := fmt.Sprintf(`{"name":"g%d","gen":{"family":"sparse","n":600,"avgDeg":4,"seed":%d}}`, gi, gi+1)
		if code, body := doJSON(t, h, "POST", "/v1/graphs", spec); code != http.StatusCreated {
			t.Fatalf("graph g%d: %d %s", gi, code, body)
		}
	}
	var (
		mu    sync.Mutex
		paths []string
	)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			graph := fmt.Sprintf("g%d", w%2)
			for i := 0; i < 4; i++ {
				code, body := doJSON(t, h, "POST", "/v1/graphs/"+graph+"/builds",
					`{"mode":"dual","sources":[0]}`)
				if code != http.StatusAccepted {
					continue // graph may have been deleted by worker 5
				}
				var info buildInfo
				if err := json.Unmarshal(body, &info); err != nil {
					t.Error(err)
					return
				}
				path := "/v1/graphs/" + graph + "/builds/" + info.ID
				mu.Lock()
				paths = append(paths, path)
				mu.Unlock()
				switch i % 3 {
				case 0:
					doJSON(t, h, "DELETE", path, "") // cancel immediately
				case 1:
					time.Sleep(time.Duration(w+1) * 3 * time.Millisecond)
					doJSON(t, h, "GET", path, "") // progress read
					doJSON(t, h, "DELETE", path, "")
				default:
					doJSON(t, h, "GET", "/v1/stats", "")
				}
			}
			if w == 5 {
				doJSON(t, h, "DELETE", "/v1/graphs/g1", "") // rips builds out mid-flight
			}
		}(w)
	}
	wg.Wait()
	ctx, cancelFn := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelFn()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after storm: %v", err)
	}

	// No cancelled build ever serves queries (g1's builds are gone with
	// the graph — 404 is fine; what must never happen is 200 from a
	// cancelled build).
	for _, path := range paths {
		code, body := doJSON(t, h, "GET", path, "")
		if code == http.StatusNotFound {
			continue
		}
		var info buildInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		qcode, qbody := doJSON(t, h, "GET", path+"/dist?source=0&target=1", "")
		switch info.Status {
		case StatusReady:
			if qcode != http.StatusOK {
				t.Fatalf("ready build refused query: %d %s", qcode, qbody)
			}
		case StatusCancelled, StatusQueued, StatusBuilding, StatusFailed:
			if qcode == http.StatusOK {
				t.Fatalf("%s build served a query: %s", info.Status, qbody)
			}
		default:
			t.Fatalf("unknown status %q", info.Status)
		}
	}

	// Every build goroutine (and snapshot writer) must have exited; give
	// the runtime a moment to collect finished goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := New(&Config{MaxConcurrentBuilds: 1})
	if err := s.RegisterGraph("st", &GenSpec{Family: "sparse", N: 80, AvgDeg: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var stats statsResponse
	code, body := doJSON(t, h, "GET", "/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Graphs != 1 || stats.BuildSlots.Capacity != 1 || stats.BuildSlots.InUse != 0 || stats.Cache != nil {
		t.Fatalf("idle stats: %+v", stats)
	}

	s.buildSem <- struct{}{} // hold the slot so the build stays queued
	code, body = doJSON(t, h, "POST", "/v1/graphs/st/builds", `{"mode":"dual","sources":[0]}`)
	if code != http.StatusAccepted {
		t.Fatalf("create build: %d %s", code, body)
	}
	var info buildInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	code, body = doJSON(t, h, "GET", "/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	stats = statsResponse{}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.BuildSlots.InUse != 1 || stats.BuildSlots.Queued != 1 || stats.Builds[StatusQueued] != 1 {
		t.Fatalf("queued stats: %+v", stats)
	}
	<-s.buildSem
	waitFor(t, h, "/v1/graphs/st/builds/"+info.ID, 30*time.Second, func(i buildInfo) bool {
		return i.Status == StatusReady
	})
	// Touch the cache so the aggregate counters move.
	if code, body := doJSON(t, h, "GET",
		"/v1/graphs/st/builds/"+info.ID+"/dist?source=0&target=3&faults=1", ""); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	stats = statsResponse{}
	_, body = doJSON(t, h, "GET", "/v1/stats", "")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Builds[StatusReady] != 1 || stats.BuildSlots.InUse != 0 {
		t.Fatalf("ready stats: %+v", stats)
	}
	if stats.Cache == nil || stats.Cache.Misses == 0 || stats.Cache.Shards < 1 {
		t.Fatalf("cache aggregate missing: %+v", stats.Cache)
	}
}

func TestBuildLogEvents(t *testing.T) {
	var (
		mu     sync.Mutex
		events []BuildEvent
	)
	s := New(&Config{MaxConcurrentBuilds: 2, BuildLog: func(e BuildEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}})
	h := s.Handler()
	if err := s.RegisterGraph("lg", &GenSpec{Family: "sparse", N: 80, AvgDeg: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	code, body := doJSON(t, h, "POST", "/v1/graphs/lg/builds", `{"mode":"dual","sources":[0]}`)
	if code != http.StatusAccepted {
		t.Fatalf("create: %d %s", code, body)
	}
	var info buildInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	ready := waitFor(t, h, "/v1/graphs/lg/builds/"+info.ID, 30*time.Second, func(i buildInfo) bool {
		return i.Status == StatusReady
	})

	if code, body := doJSON(t, h, "POST", "/v1/graphs", slowGraph); code != http.StatusCreated {
		t.Fatalf("slow graph: %d %s", code, body)
	}
	code, body = doJSON(t, h, "POST", "/v1/graphs/slow/builds", `{"mode":"dual","sources":[0]}`)
	if code != http.StatusAccepted {
		t.Fatalf("slow build: %d %s", code, body)
	}
	var slow buildInfo
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	slowPath := "/v1/graphs/slow/builds/" + slow.ID
	waitFor(t, h, slowPath, 30*time.Second, func(i buildInfo) bool { return i.Status == StatusBuilding })
	if code, _ := doJSON(t, h, "DELETE", slowPath, ""); code != http.StatusOK {
		t.Fatalf("cancel: %d", code)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(events), events)
	}
	byStatus := map[string]BuildEvent{}
	for _, e := range events {
		byStatus[e.Status] = e
	}
	r, ok := byStatus[StatusReady]
	if !ok || r.Graph != "lg" || r.Mode != "dual" || r.Edges != ready.Edges ||
		r.Dijkstras != int64(ready.Stats.Dijkstras) || r.ElapsedMS <= 0 {
		t.Fatalf("ready event wrong: %+v (build %+v)", r, ready)
	}
	c, ok := byStatus[StatusCancelled]
	if !ok || c.Graph != "slow" || c.Build != slow.ID || c.Dijkstras == 0 || c.ElapsedMS <= 0 {
		t.Fatalf("cancelled event wrong: %+v", c)
	}
}

func TestDeleteReadyBuildRemovesSnapshot(t *testing.T) {
	store := NewMemStore()
	s := New(&Config{Store: store})
	h := s.Handler()
	if err := s.RegisterGraph("d", &GenSpec{Family: "sparse", N: 60, AvgDeg: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	code, body := doJSON(t, h, "POST", "/v1/graphs/d/builds", `{"mode":"dual","sources":[0]}`)
	if code != http.StatusAccepted {
		t.Fatalf("create: %d %s", code, body)
	}
	var info buildInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	path := "/v1/graphs/d/builds/" + info.ID
	waitFor(t, h, path, 30*time.Second, func(i buildInfo) bool {
		return i.Status == StatusReady && i.Snapshot == SnapSaved
	})
	if keys, _ := store.List(); len(keys) != 1 {
		t.Fatalf("stored snapshots: %v", keys)
	}
	if code, body := doJSON(t, h, "DELETE", path, ""); code != http.StatusNoContent {
		t.Fatalf("DELETE ready build: %d %s", code, body)
	}
	if keys, _ := store.List(); len(keys) != 0 {
		t.Fatalf("snapshot survived build deletion: %v", keys)
	}
	if code, _ := doJSON(t, h, "GET", path, ""); code != http.StatusNotFound {
		t.Fatalf("deleted build still resolves: %d", code)
	}
}
