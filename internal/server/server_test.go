package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/gen"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg *Config) *testClient {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return &testClient{t: t, srv: ts}
}

func (c *testClient) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (c *testClient) decode(method, path string, body any, wantCode int, into any) {
	c.t.Helper()
	code, out := c.do(method, path, body)
	if code != wantCode {
		c.t.Fatalf("%s %s: code %d (want %d): %s", method, path, code, wantCode, out)
	}
	if into != nil {
		if err := json.Unmarshal(out, into); err != nil {
			c.t.Fatalf("%s %s: bad JSON %q: %v", method, path, out, err)
		}
	}
}

// waitReady polls the build resource until it leaves "building".
func (c *testClient) waitReady(graph, build string) buildInfo {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info buildInfo
		c.decode("GET", "/v1/graphs/"+graph+"/builds/"+build, nil, http.StatusOK, &info)
		if info.Status != StatusBuilding {
			return info
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("build %s/%s still building after 30s", graph, build)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *testClient) createGraph(name string, spec GenSpec) graphInfo {
	c.t.Helper()
	var info graphInfo
	c.decode("POST", "/v1/graphs", createGraphRequest{Name: name, Gen: &spec}, http.StatusCreated, &info)
	return info
}

func (c *testClient) startBuild(graph string, req createBuildRequest) string {
	c.t.Helper()
	var info buildInfo
	c.decode("POST", "/v1/graphs/"+graph+"/builds", req, http.StatusAccepted, &info)
	return info.ID
}

func faultsParam(faults []int) string {
	parts := make([]string, len(faults))
	for i, f := range faults {
		parts[i] = fmt.Sprint(f)
	}
	return strings.Join(parts, ",")
}

// TestServerLifecycle walks the whole API: register, build, inspect,
// query, delete.
func TestServerLifecycle(t *testing.T) {
	c := newTestClient(t, nil)
	gi := c.createGraph("g1", GenSpec{Family: "gnp", N: 24, P: 0.2, Seed: 11})
	if gi.N != 24 || gi.M <= 0 {
		t.Fatalf("bad graph info: %+v", gi)
	}
	id := c.startBuild("g1", createBuildRequest{Mode: "dual", Sources: []int{0}})
	info := c.waitReady("g1", id)
	if info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	if info.Faults != 2 || info.Edges <= 0 || info.Edges > info.GraphM || info.Stats == nil {
		t.Fatalf("bad build info: %+v", info)
	}

	var dr distResponse
	c.decode("GET", "/v1/graphs/g1/builds/"+id+"/dist?source=0&target=5&faults=1,2", nil, http.StatusOK, &dr)
	if !dr.Reachable {
		t.Fatalf("expected reachable answer: %+v", dr)
	}

	// Listing includes the graph and its build.
	var list struct {
		Graphs []graphInfo `json:"graphs"`
	}
	c.decode("GET", "/v1/graphs", nil, http.StatusOK, &list)
	if len(list.Graphs) != 1 || len(list.Graphs[0].Builds) != 1 {
		t.Fatalf("bad listing: %+v", list)
	}

	if code, _ := c.do("DELETE", "/v1/graphs/g1", nil); code != http.StatusNoContent {
		t.Fatalf("delete code %d", code)
	}
	if code, _ := c.do("GET", "/v1/graphs/g1", nil); code != http.StatusNotFound {
		t.Fatalf("deleted graph still resolves: %d", code)
	}
}

// TestServerMatchesGroundTruth replays every single-fault event (and a
// spread of dual-fault events) through the HTTP API and compares each
// answer with BFS over G \ F.
func TestServerMatchesGroundTruth(t *testing.T) {
	seed := int64(8)
	g := gen.GNP(16, 0.25, seed) // must match the server-side spec below
	c := newTestClient(t, nil)
	c.createGraph("gt", GenSpec{Family: "gnp", N: 16, P: 0.25, Seed: seed})
	id := c.startBuild("gt", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("gt", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	truth := bfs.NewRunner(g)
	check := func(faults []int) {
		t.Helper()
		truth.Run(0, faults, nil)
		var resp struct {
			Dists []int32 `json:"dists"`
		}
		c.decode("GET", "/v1/graphs/gt/builds/"+id+"/dists?source=0&faults="+faultsParam(faults),
			nil, http.StatusOK, &resp)
		if len(resp.Dists) != g.N() {
			t.Fatalf("faults %v: %d dists for %d vertices", faults, len(resp.Dists), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if resp.Dists[v] != truth.Dist(v) {
				t.Fatalf("faults %v target %d: server %d, truth %d", faults, v, resp.Dists[v], truth.Dist(v))
			}
		}
	}
	check(nil)
	for a := 0; a < g.M(); a++ {
		check([]int{a})
		for b := a + 1; b < g.M(); b += 9 {
			check([]int{a, b})
		}
	}
}

// TestServerRouteValid checks routes returned under failures: right
// length, valid edges, fault avoidance.
func TestServerRouteValid(t *testing.T) {
	g := gen.Grid(4, 4)
	c := newTestClient(t, nil)
	c.createGraph("grid", GenSpec{Family: "grid", Rows: 4, Cols: 4})
	id := c.startBuild("grid", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("grid", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	truth := bfs.NewRunner(g)
	for a := 0; a < g.M(); a += 3 {
		truth.Run(0, []int{a}, nil)
		for v := 1; v < g.N(); v += 5 {
			var resp struct {
				Reachable bool  `json:"reachable"`
				Dist      int   `json:"dist"`
				Path      []int `json:"path"`
			}
			c.decode("GET", fmt.Sprintf("/v1/graphs/grid/builds/%s/route?source=0&target=%d&faults=%d", id, v, a),
				nil, http.StatusOK, &resp)
			want := truth.Dist(v)
			if (want == bfs.Unreachable) == resp.Reachable {
				t.Fatalf("fault %d target %d: reachable=%v want dist %d", a, v, resp.Reachable, want)
			}
			if !resp.Reachable {
				continue
			}
			if int32(resp.Dist) != want || len(resp.Path) != resp.Dist+1 {
				t.Fatalf("fault %d target %d: dist %d path %v (want %d)", a, v, resp.Dist, resp.Path, want)
			}
			for i := 0; i+1 < len(resp.Path); i++ {
				id2, ok := g.EdgeID(resp.Path[i], resp.Path[i+1])
				if !ok {
					t.Fatalf("path uses non-edge %d-%d", resp.Path[i], resp.Path[i+1])
				}
				if id2 == a {
					t.Fatalf("path uses failed edge %d", a)
				}
			}
		}
	}
}

// TestServerEdgeListUpload registers a graph from an uploaded edge list.
func TestServerEdgeListUpload(t *testing.T) {
	c := newTestClient(t, nil)
	var info graphInfo
	c.decode("POST", "/v1/graphs",
		createGraphRequest{Name: "up", EdgeList: "n 4\n0 1\n1 2\n2 3\n0 3\n"},
		http.StatusCreated, &info)
	if info.N != 4 || info.M != 4 {
		t.Fatalf("bad uploaded graph: %+v", info)
	}
	id := c.startBuild("up", createBuildRequest{Mode: "single", Sources: []int{0}})
	if info := c.waitReady("up", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	var dr distResponse
	c.decode("GET", "/v1/graphs/up/builds/"+id+"/dist?source=0&target=2&faults=0", nil, http.StatusOK, &dr)
	// 4-cycle with edge 0-1 failed: 0→2 via 3 still takes 2 hops.
	if !dr.Reachable || dr.Dist != 2 {
		t.Fatalf("want dist 2, got %+v", dr)
	}
}

// TestServerMultiSource builds an FT-MBFS structure and queries both
// sources.
func TestServerMultiSource(t *testing.T) {
	g := gen.GNP(14, 0.3, 5)
	c := newTestClient(t, nil)
	c.createGraph("ms", GenSpec{Family: "gnp", N: 14, P: 0.3, Seed: 5})
	id := c.startBuild("ms", createBuildRequest{Mode: "multi", Sources: []int{0, 7}})
	if info := c.waitReady("ms", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	truth := bfs.NewRunner(g)
	for _, s := range []int{0, 7} {
		truth.Run(s, []int{2}, nil)
		var dr distResponse
		c.decode("GET", fmt.Sprintf("/v1/graphs/ms/builds/%s/dist?source=%d&target=5&faults=2", id, s),
			nil, http.StatusOK, &dr)
		if dr.Dist != truth.Dist(5) {
			t.Fatalf("source %d: server %d, truth %d", s, dr.Dist, truth.Dist(5))
		}
	}
}

// TestServerErrors exercises the failure paths.
func TestServerErrors(t *testing.T) {
	c := newTestClient(t, nil)
	c.createGraph("e", GenSpec{Family: "path", N: 5})
	id := c.startBuild("e", createBuildRequest{Mode: "dual", Sources: []int{0}})
	c.waitReady("e", id)

	cases := []struct {
		method, path string
		body         any
		wantCode     int
	}{
		{"POST", "/v1/graphs", createGraphRequest{Name: "bad name!", Gen: &GenSpec{Family: "path", N: 3}}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "e", Gen: &GenSpec{Family: "path", N: 3}}, http.StatusConflict},
		{"POST", "/v1/graphs", createGraphRequest{Name: "both", Gen: &GenSpec{Family: "path", N: 3}, EdgeList: "0 1"}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "neither"}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "badfam", Gen: &GenSpec{Family: "nope", N: 3}}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "badlist", EdgeList: "0 x"}, http.StatusBadRequest},
		{"POST", "/v1/graphs/missing/builds", createBuildRequest{Mode: "dual", Sources: []int{0}}, http.StatusNotFound},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "nope", Sources: []int{0}}, http.StatusBadRequest},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "dual", Sources: []int{0, 1}}, http.StatusBadRequest},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "dual", Sources: []int{99}}, http.StatusBadRequest},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "multi"}, http.StatusBadRequest},
		{"GET", "/v1/graphs/missing", nil, http.StatusNotFound},
		{"DELETE", "/v1/graphs/missing", nil, http.StatusNotFound},
		{"GET", "/v1/graphs/e/builds/zzz", nil, http.StatusNotFound},
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=1&faults=0,1,2", nil, http.StatusBadRequest}, // budget
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=3&target=1", nil, http.StatusBadRequest},              // non-source
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=99", nil, http.StatusBadRequest},
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0", nil, http.StatusBadRequest}, // no target
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=1&faults=x", nil, http.StatusBadRequest},
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=1&faults=999", nil, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, out := c.do(tc.method, tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s %s: code %d (want %d): %s", tc.method, tc.path, code, tc.wantCode, out)
		}
	}
}

// TestCacheEntriesClamp checks the per-build memo cap is clamped by the
// memory budget so large graphs cannot pin CacheEntries × n × 4 bytes.
func TestCacheEntriesClamp(t *testing.T) {
	s := New(&Config{CacheEntries: 4096, CacheBytes: 1 << 20}) // 1 MiB budget
	cases := []struct{ n, want int }{
		{0, 4096},    // degenerate: no clamp basis
		{10, 4096},   // tiny graph: entry cap wins
		{1 << 20, 1}, // 4 MiB per table: floor at 1 entry
		{1024, 256},  // 4 KiB per table: 1 MiB / 4 KiB
	}
	for _, tc := range cases {
		if got := s.cacheEntriesFor(tc.n); got != tc.want {
			t.Errorf("cacheEntriesFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	disabled := New(&Config{CacheEntries: -1})
	if got := disabled.cacheEntriesFor(1000); got != -1 {
		t.Errorf("disabled cache clamped to %d", got)
	}
}

// TestServerBodyTooLarge checks oversized uploads get 413, not 400.
func TestServerBodyTooLarge(t *testing.T) {
	c := newTestClient(t, &Config{MaxBodyBytes: 256})
	big := strings.Repeat("0 1\n", 200)
	code, out := c.do("POST", "/v1/graphs", createGraphRequest{Name: "big", EdgeList: big})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: code %d (want 413): %s", code, out)
	}
}

// TestServerHealthz smoke-checks the liveness endpoint.
func TestServerHealthz(t *testing.T) {
	c := newTestClient(t, nil)
	code, out := c.do("GET", "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(out), "ok") {
		t.Fatalf("healthz: %d %s", code, out)
	}
}

// TestServerConcurrentClients hammers one ready build with ≥ 8 concurrent
// clients mixing dist, dists and route queries; under -race this
// exercises the shared registry, oracle pool and LRU. Answers are checked
// against precomputed ground truth.
func TestServerConcurrentClients(t *testing.T) {
	seed := int64(21)
	g := gen.GNP(24, 0.2, seed)
	c := newTestClient(t, &Config{CacheEntries: 16}) // small memo: force eviction under load
	c.createGraph("cc", GenSpec{Family: "gnp", N: 24, P: 0.2, Seed: seed})
	id := c.startBuild("cc", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("cc", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	events := make([][]int, 0, 40)
	truth := make([][]int32, 0, 40)
	for a := 0; a < g.M() && len(events) < 40; a += 2 {
		f := []int{a, (a + 11) % g.M()}
		if f[0] == f[1] {
			f = f[:1]
		}
		events = append(events, f)
		truth = append(truth, bfs.Distances(g, 0, f))
	}

	const clients = 10
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				for i := range events {
					idx := (i + cl*7) % len(events)
					target := (cl*5 + i) % g.N()
					url := fmt.Sprintf("%s/v1/graphs/cc/builds/%s/dist?source=0&target=%d&faults=%s",
						c.srv.URL, id, target, faultsParam(events[idx]))
					resp, err := c.srv.Client().Get(url)
					if err != nil {
						t.Errorf("client %d: %v", cl, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("client %d: code %d: %s", cl, resp.StatusCode, body)
						return
					}
					var dr distResponse
					if err := json.Unmarshal(body, &dr); err != nil {
						t.Errorf("client %d: %v", cl, err)
						return
					}
					if dr.Dist != truth[idx][target] {
						t.Errorf("client %d faults %v target %d: got %d want %d",
							cl, events[idx], target, dr.Dist, truth[idx][target])
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()

	// While queries ran, concurrent builds on the same graph must also be
	// safe; verify the build is still inspectable and the cache saw traffic.
	info := c.waitReady("cc", id)
	if info.Cache == nil || info.Cache.Hits == 0 {
		t.Fatalf("cache saw no traffic: %+v", info)
	}
}

// TestServerBuildNotReady checks querying a build mid-flight returns 409.
func TestServerBuildNotReady(t *testing.T) {
	c := newTestClient(t, &Config{MaxConcurrentBuilds: 1})
	c.createGraph("slow", GenSpec{Family: "gnp", N: 120, P: 0.3, Seed: 3})
	// Queue two builds; query the second immediately — it is either still
	// building (409) or, if this machine is fast, already ready (200).
	c.startBuild("slow", createBuildRequest{Mode: "dual", Sources: []int{0}})
	id2 := c.startBuild("slow", createBuildRequest{Mode: "dual", Sources: []int{1}})
	code, out := c.do("GET", "/v1/graphs/slow/builds/"+id2+"/dist?source=1&target=2", nil)
	if code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("mid-build query: code %d: %s", code, out)
	}
	if info := c.waitReady("slow", id2); info.Status != StatusReady {
		t.Fatalf("queued build failed: %+v", info)
	}
}
