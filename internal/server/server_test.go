package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/oracle"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg *Config) *testClient {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return &testClient{t: t, srv: ts}
}

func (c *testClient) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (c *testClient) decode(method, path string, body any, wantCode int, into any) {
	c.t.Helper()
	code, out := c.do(method, path, body)
	if code != wantCode {
		c.t.Fatalf("%s %s: code %d (want %d): %s", method, path, code, wantCode, out)
	}
	if into != nil {
		if err := json.Unmarshal(out, into); err != nil {
			c.t.Fatalf("%s %s: bad JSON %q: %v", method, path, out, err)
		}
	}
}

// waitReady polls the build resource until it leaves "queued"/"building".
func (c *testClient) waitReady(graph, build string) buildInfo {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info buildInfo
		c.decode("GET", "/v1/graphs/"+graph+"/builds/"+build, nil, http.StatusOK, &info)
		if info.Status != StatusQueued && info.Status != StatusBuilding {
			return info
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("build %s/%s still building after 30s", graph, build)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *testClient) createGraph(name string, spec GenSpec) graphInfo {
	c.t.Helper()
	var info graphInfo
	c.decode("POST", "/v1/graphs", createGraphRequest{Name: name, Gen: &spec}, http.StatusCreated, &info)
	return info
}

func (c *testClient) startBuild(graph string, req createBuildRequest) string {
	c.t.Helper()
	var info buildInfo
	c.decode("POST", "/v1/graphs/"+graph+"/builds", req, http.StatusAccepted, &info)
	return info.ID
}

// distResponse mirrors the wire shape of a single dist answer.
type distResponse struct {
	Dist      int32 `json:"dist"`
	Reachable bool  `json:"reachable"`
}

func faultsParam(faults []int) string {
	parts := make([]string, len(faults))
	for i, f := range faults {
		parts[i] = fmt.Sprint(f)
	}
	return strings.Join(parts, ",")
}

// TestServerLifecycle walks the whole API: register, build, inspect,
// query, delete.
func TestServerLifecycle(t *testing.T) {
	c := newTestClient(t, nil)
	gi := c.createGraph("g1", GenSpec{Family: "gnp", N: 24, P: 0.2, Seed: 11})
	if gi.N != 24 || gi.M <= 0 {
		t.Fatalf("bad graph info: %+v", gi)
	}
	id := c.startBuild("g1", createBuildRequest{Mode: "dual", Sources: []int{0}})
	info := c.waitReady("g1", id)
	if info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	if info.Faults != 2 || info.Edges <= 0 || info.Edges > info.GraphM || info.Stats == nil {
		t.Fatalf("bad build info: %+v", info)
	}

	var dr distResponse
	c.decode("GET", "/v1/graphs/g1/builds/"+id+"/dist?source=0&target=5&faults=1,2", nil, http.StatusOK, &dr)
	if !dr.Reachable {
		t.Fatalf("expected reachable answer: %+v", dr)
	}

	// Listing includes the graph and its build.
	var list struct {
		Graphs []graphInfo `json:"graphs"`
	}
	c.decode("GET", "/v1/graphs", nil, http.StatusOK, &list)
	if len(list.Graphs) != 1 || len(list.Graphs[0].Builds) != 1 {
		t.Fatalf("bad listing: %+v", list)
	}

	if code, _ := c.do("DELETE", "/v1/graphs/g1", nil); code != http.StatusNoContent {
		t.Fatalf("delete code %d", code)
	}
	if code, _ := c.do("GET", "/v1/graphs/g1", nil); code != http.StatusNotFound {
		t.Fatalf("deleted graph still resolves: %d", code)
	}
}

// TestServerMatchesGroundTruth replays every single-fault event (and a
// spread of dual-fault events) through the HTTP API and compares each
// answer with BFS over G \ F.
func TestServerMatchesGroundTruth(t *testing.T) {
	seed := int64(8)
	g := gen.GNP(16, 0.25, seed) // must match the server-side spec below
	c := newTestClient(t, nil)
	c.createGraph("gt", GenSpec{Family: "gnp", N: 16, P: 0.25, Seed: seed})
	id := c.startBuild("gt", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("gt", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	truth := bfs.NewRunner(g)
	check := func(faults []int) {
		t.Helper()
		truth.Run(0, faults, nil)
		var resp struct {
			Dists []int32 `json:"dists"`
		}
		c.decode("GET", "/v1/graphs/gt/builds/"+id+"/dists?source=0&faults="+faultsParam(faults),
			nil, http.StatusOK, &resp)
		if len(resp.Dists) != g.N() {
			t.Fatalf("faults %v: %d dists for %d vertices", faults, len(resp.Dists), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if resp.Dists[v] != truth.Dist(v) {
				t.Fatalf("faults %v target %d: server %d, truth %d", faults, v, resp.Dists[v], truth.Dist(v))
			}
		}
	}
	check(nil)
	for a := 0; a < g.M(); a++ {
		check([]int{a})
		for b := a + 1; b < g.M(); b += 9 {
			check([]int{a, b})
		}
	}
}

// TestServerRouteValid checks routes returned under failures: right
// length, valid edges, fault avoidance.
func TestServerRouteValid(t *testing.T) {
	g := gen.Grid(4, 4)
	c := newTestClient(t, nil)
	c.createGraph("grid", GenSpec{Family: "grid", Rows: 4, Cols: 4})
	id := c.startBuild("grid", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("grid", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	truth := bfs.NewRunner(g)
	for a := 0; a < g.M(); a += 3 {
		truth.Run(0, []int{a}, nil)
		for v := 1; v < g.N(); v += 5 {
			var resp struct {
				Reachable bool  `json:"reachable"`
				Dist      int   `json:"dist"`
				Path      []int `json:"path"`
			}
			c.decode("GET", fmt.Sprintf("/v1/graphs/grid/builds/%s/route?source=0&target=%d&faults=%d", id, v, a),
				nil, http.StatusOK, &resp)
			want := truth.Dist(v)
			if (want == bfs.Unreachable) == resp.Reachable {
				t.Fatalf("fault %d target %d: reachable=%v want dist %d", a, v, resp.Reachable, want)
			}
			if !resp.Reachable {
				continue
			}
			if int32(resp.Dist) != want || len(resp.Path) != resp.Dist+1 {
				t.Fatalf("fault %d target %d: dist %d path %v (want %d)", a, v, resp.Dist, resp.Path, want)
			}
			for i := 0; i+1 < len(resp.Path); i++ {
				id2, ok := g.EdgeID(resp.Path[i], resp.Path[i+1])
				if !ok {
					t.Fatalf("path uses non-edge %d-%d", resp.Path[i], resp.Path[i+1])
				}
				if id2 == a {
					t.Fatalf("path uses failed edge %d", a)
				}
			}
		}
	}
}

// TestServerEdgeListUpload registers a graph from an uploaded edge list.
func TestServerEdgeListUpload(t *testing.T) {
	c := newTestClient(t, nil)
	var info graphInfo
	c.decode("POST", "/v1/graphs",
		createGraphRequest{Name: "up", EdgeList: "n 4\n0 1\n1 2\n2 3\n0 3\n"},
		http.StatusCreated, &info)
	if info.N != 4 || info.M != 4 {
		t.Fatalf("bad uploaded graph: %+v", info)
	}
	id := c.startBuild("up", createBuildRequest{Mode: "single", Sources: []int{0}})
	if info := c.waitReady("up", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	var dr distResponse
	c.decode("GET", "/v1/graphs/up/builds/"+id+"/dist?source=0&target=2&faults=0", nil, http.StatusOK, &dr)
	// 4-cycle with edge 0-1 failed: 0→2 via 3 still takes 2 hops.
	if !dr.Reachable || dr.Dist != 2 {
		t.Fatalf("want dist 2, got %+v", dr)
	}
}

// TestServerMultiSource builds an FT-MBFS structure and queries both
// sources.
func TestServerMultiSource(t *testing.T) {
	g := gen.GNP(14, 0.3, 5)
	c := newTestClient(t, nil)
	c.createGraph("ms", GenSpec{Family: "gnp", N: 14, P: 0.3, Seed: 5})
	id := c.startBuild("ms", createBuildRequest{Mode: "multi", Sources: []int{0, 7}})
	if info := c.waitReady("ms", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	truth := bfs.NewRunner(g)
	for _, s := range []int{0, 7} {
		truth.Run(s, []int{2}, nil)
		var dr distResponse
		c.decode("GET", fmt.Sprintf("/v1/graphs/ms/builds/%s/dist?source=%d&target=5&faults=2", id, s),
			nil, http.StatusOK, &dr)
		if dr.Dist != truth.Dist(5) {
			t.Fatalf("source %d: server %d, truth %d", s, dr.Dist, truth.Dist(5))
		}
	}
}

// TestServerErrors exercises the failure paths.
func TestServerErrors(t *testing.T) {
	c := newTestClient(t, nil)
	c.createGraph("e", GenSpec{Family: "path", N: 5})
	id := c.startBuild("e", createBuildRequest{Mode: "dual", Sources: []int{0}})
	c.waitReady("e", id)

	cases := []struct {
		method, path string
		body         any
		wantCode     int
	}{
		{"POST", "/v1/graphs", createGraphRequest{Name: "bad name!", Gen: &GenSpec{Family: "path", N: 3}}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "e", Gen: &GenSpec{Family: "path", N: 3}}, http.StatusConflict},
		{"POST", "/v1/graphs", createGraphRequest{Name: "both", Gen: &GenSpec{Family: "path", N: 3}, EdgeList: "0 1"}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "neither"}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "badfam", Gen: &GenSpec{Family: "nope", N: 3}}, http.StatusBadRequest},
		{"POST", "/v1/graphs", createGraphRequest{Name: "badlist", EdgeList: "0 x"}, http.StatusBadRequest},
		{"POST", "/v1/graphs/missing/builds", createBuildRequest{Mode: "dual", Sources: []int{0}}, http.StatusNotFound},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "nope", Sources: []int{0}}, http.StatusBadRequest},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "dual", Sources: []int{0, 1}}, http.StatusBadRequest},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "dual", Sources: []int{99}}, http.StatusBadRequest},
		{"POST", "/v1/graphs/e/builds", createBuildRequest{Mode: "multi"}, http.StatusBadRequest},
		{"GET", "/v1/graphs/missing", nil, http.StatusNotFound},
		{"DELETE", "/v1/graphs/missing", nil, http.StatusNotFound},
		{"GET", "/v1/graphs/e/builds/zzz", nil, http.StatusNotFound},
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=1&faults=0,1,2", nil, http.StatusBadRequest}, // budget
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=3&target=1", nil, http.StatusBadRequest},              // non-source
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=99", nil, http.StatusBadRequest},
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0", nil, http.StatusBadRequest}, // no target
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=1&faults=x", nil, http.StatusBadRequest},
		{"GET", "/v1/graphs/e/builds/" + id + "/dist?source=0&target=1&faults=999", nil, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, out := c.do(tc.method, tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s %s: code %d (want %d): %s", tc.method, tc.path, code, tc.wantCode, out)
		}
	}
}

// TestCacheBudgetWiring checks that Config's cache bounds reach each
// build's oracle set exactly as configured: the default byte budget, both
// explicit caps, the no-byte-bound fallback and the disable switch.
func TestCacheBudgetWiring(t *testing.T) {
	g := gen.GNP(12, 0.3, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		cfg         Config
		wantEntries int
		wantBytes   int64
	}{
		{"default", Config{}, 0, DefaultCacheBytes},
		{"both bounds", Config{CacheEntries: 64, CacheBytes: 1 << 20}, 64, 1 << 20},
		{"byte budget only", Config{CacheBytes: 1 << 20}, 0, 1 << 20},
		{"no byte bound", Config{CacheBytes: -1}, oracle.DefaultCacheEntries, 0},
		{"disabled", Config{CacheEntries: -1}, 0, 0},
	}
	for _, tc := range cases {
		set, err := New(&tc.cfg).newOracleSet(st)
		if err != nil {
			t.Fatal(err)
		}
		entries, bytes := set.CacheBudget()
		if entries != tc.wantEntries || bytes != tc.wantBytes {
			t.Errorf("%s: budget (%d entries, %d bytes), want (%d, %d)",
				tc.name, entries, bytes, tc.wantEntries, tc.wantBytes)
		}
	}
}

// TestServerBodyTooLarge checks oversized uploads get 413, not 400.
func TestServerBodyTooLarge(t *testing.T) {
	c := newTestClient(t, &Config{MaxBodyBytes: 256})
	big := strings.Repeat("0 1\n", 200)
	code, out := c.do("POST", "/v1/graphs", createGraphRequest{Name: "big", EdgeList: big})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: code %d (want 413): %s", code, out)
	}
}

// TestServerHealthz smoke-checks the liveness endpoint.
func TestServerHealthz(t *testing.T) {
	c := newTestClient(t, nil)
	code, out := c.do("GET", "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(out), "ok") {
		t.Fatalf("healthz: %d %s", code, out)
	}
}

// TestServerConcurrentClients hammers one ready build with ≥ 8 concurrent
// clients mixing dist, dists and route queries; under -race this
// exercises the shared registry, oracle pool and LRU. Answers are checked
// against precomputed ground truth.
func TestServerConcurrentClients(t *testing.T) {
	seed := int64(21)
	g := gen.GNP(24, 0.2, seed)
	c := newTestClient(t, &Config{CacheEntries: 16}) // small memo: force eviction under load
	c.createGraph("cc", GenSpec{Family: "gnp", N: 24, P: 0.2, Seed: seed})
	id := c.startBuild("cc", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("cc", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	events := make([][]int, 0, 40)
	truth := make([][]int32, 0, 40)
	for a := 0; a < g.M() && len(events) < 40; a += 2 {
		f := []int{a, (a + 11) % g.M()}
		if f[0] == f[1] {
			f = f[:1]
		}
		events = append(events, f)
		truth = append(truth, bfs.Distances(g, 0, f))
	}

	const clients = 10
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				for i := range events {
					idx := (i + cl*7) % len(events)
					target := (cl*5 + i) % g.N()
					url := fmt.Sprintf("%s/v1/graphs/cc/builds/%s/dist?source=0&target=%d&faults=%s",
						c.srv.URL, id, target, faultsParam(events[idx]))
					resp, err := c.srv.Client().Get(url)
					if err != nil {
						t.Errorf("client %d: %v", cl, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("client %d: code %d: %s", cl, resp.StatusCode, body)
						return
					}
					var dr distResponse
					if err := json.Unmarshal(body, &dr); err != nil {
						t.Errorf("client %d: %v", cl, err)
						return
					}
					if dr.Dist != truth[idx][target] {
						t.Errorf("client %d faults %v target %d: got %d want %d",
							cl, events[idx], target, dr.Dist, truth[idx][target])
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()

	// While queries ran, concurrent builds on the same graph must also be
	// safe; verify the build is still inspectable and the cache saw traffic.
	info := c.waitReady("cc", id)
	if info.Cache == nil || info.Cache.Hits == 0 {
		t.Fatalf("cache saw no traffic: %+v", info)
	}
}

// TestServerBuildNotReady checks querying a build mid-flight returns 409.
func TestServerBuildNotReady(t *testing.T) {
	c := newTestClient(t, &Config{MaxConcurrentBuilds: 1})
	c.createGraph("slow", GenSpec{Family: "gnp", N: 120, P: 0.3, Seed: 3})
	// Queue two builds; query the second immediately — it is either still
	// building (409) or, if this machine is fast, already ready (200).
	c.startBuild("slow", createBuildRequest{Mode: "dual", Sources: []int{0}})
	id2 := c.startBuild("slow", createBuildRequest{Mode: "dual", Sources: []int{1}})
	code, out := c.do("GET", "/v1/graphs/slow/builds/"+id2+"/dist?source=1&target=2", nil)
	if code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("mid-build query: code %d: %s", code, out)
	}
	if info := c.waitReady("slow", id2); info.Status != StatusReady {
		t.Fatalf("queued build failed: %+v", info)
	}
}

// TestServerBatchQuery answers a 1000-item batch in ONE request, mixing
// dist, whole-table and route items across several failure events, and
// checks every answer against BFS ground truth on G \ F (the acceptance
// workload; run under -race in CI).
func TestServerBatchQuery(t *testing.T) {
	seed := int64(17)
	g := gen.GNP(30, 0.2, seed)
	c := newTestClient(t, nil)
	c.createGraph("batch", GenSpec{Family: "gnp", N: 30, P: 0.2, Seed: seed})
	id := c.startBuild("batch", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("batch", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	events := make([][]int, 12)
	truth := make([][]int32, len(events))
	for i := range events {
		a := (i * 5) % g.M()
		b := (a + 9) % g.M()
		events[i] = []int{a, b}
		if a == b {
			events[i] = []int{a}
		}
		truth[i] = bfs.Distances(g, 0, events[i])
	}
	const items = 1000
	req := batchRequest{Queries: make([]batchQuery, items)}
	for i := 0; i < items; i++ {
		q := batchQuery{Source: 0, Faults: events[i%len(events)]}
		switch i % 10 {
		case 8: // whole-table item
		case 9: // route item
			tgt := i % g.N()
			q.Target = &tgt
			q.Route = true
		default:
			tgt := i % g.N()
			q.Target = &tgt
		}
		req.Queries[i] = q
	}
	var resp struct {
		Results []batchResult `json:"results"`
	}
	c.decode("POST", "/v1/graphs/batch/builds/"+id+"/query", req, http.StatusOK, &resp)
	if len(resp.Results) != items {
		t.Fatalf("%d results for %d queries", len(resp.Results), items)
	}
	for i, res := range resp.Results {
		q := req.Queries[i]
		want := truth[i%len(events)]
		if res.Error != "" {
			t.Fatalf("item %d: unexpected error %q", i, res.Error)
		}
		switch {
		case q.Route:
			wd := want[*q.Target]
			if (wd == bfs.Unreachable) == *res.Reachable {
				t.Fatalf("item %d: reachable=%v want dist %d", i, *res.Reachable, wd)
			}
			if wd == bfs.Unreachable {
				continue
			}
			if *res.Dist != wd || len(res.Path) != int(wd)+1 {
				t.Fatalf("item %d: dist %d path %v, want %d", i, *res.Dist, res.Path, wd)
			}
			for j := 0; j+1 < len(res.Path); j++ {
				eid, ok := g.EdgeID(res.Path[j], res.Path[j+1])
				if !ok {
					t.Fatalf("item %d: path uses non-edge %d-%d", i, res.Path[j], res.Path[j+1])
				}
				for _, f := range q.Faults {
					if eid == f {
						t.Fatalf("item %d: path uses failed edge %d", i, eid)
					}
				}
			}
		case q.Target != nil:
			if *res.Dist != want[*q.Target] || *res.Reachable != (want[*q.Target] != bfs.Unreachable) {
				t.Fatalf("item %d: got %d want %d", i, *res.Dist, want[*q.Target])
			}
		default:
			if len(res.Dists) != g.N() {
				t.Fatalf("item %d: %d dists", i, len(res.Dists))
			}
			for v, d := range res.Dists {
				if d != want[v] {
					t.Fatalf("item %d target %d: got %d want %d", i, v, d, want[v])
				}
			}
		}
	}
}

// TestServerBatchStream checks the NDJSON streaming mode returns exactly
// the non-streaming results, one JSON object per line, in request order.
func TestServerBatchStream(t *testing.T) {
	c := newTestClient(t, nil)
	c.createGraph("st", GenSpec{Family: "grid", Rows: 5, Cols: 5})
	id := c.startBuild("st", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("st", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	const items = 200
	req := batchRequest{Queries: make([]batchQuery, items)}
	for i := 0; i < items; i++ {
		tgt := i % 25
		req.Queries[i] = batchQuery{Source: 0, Target: &tgt, Faults: []int{i % 40}}
	}
	var plain struct {
		Results []batchResult `json:"results"`
	}
	c.decode("POST", "/v1/graphs/st/builds/"+id+"/query", req, http.StatusOK, &plain)

	req.Stream = true
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.srv.URL+"/v1/graphs/st/builds/"+id+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var raw []json.RawMessage
	for dec.More() {
		var m json.RawMessage
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		raw = append(raw, m)
	}
	// The last line is the completion trailer; everything before it is a
	// result in request order.
	if len(raw) != items+1 {
		t.Fatalf("streamed %d lines, want %d results + trailer", len(raw), items)
	}
	var trailer batchStreamTrailer
	if err := json.Unmarshal(raw[len(raw)-1], &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.Results != items {
		t.Fatalf("bad stream trailer: %+v", trailer)
	}
	for i := 0; i < items; i++ {
		var a batchResult
		if err := json.Unmarshal(raw[i], &a); err != nil {
			t.Fatal(err)
		}
		b := plain.Results[i]
		if (a.Dist == nil) != (b.Dist == nil) || (a.Dist != nil && *a.Dist != *b.Dist) || a.Error != b.Error {
			t.Fatalf("item %d: stream %+v vs plain %+v", i, a, b)
		}
	}
}

// TestServerBatchErrors exercises the batch request failure paths and
// inline per-item errors.
func TestServerBatchErrors(t *testing.T) {
	c := newTestClient(t, &Config{MaxBatchQueries: 4})
	c.createGraph("be", GenSpec{Family: "path", N: 6})
	id := c.startBuild("be", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("be", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	path := "/v1/graphs/be/builds/" + id + "/query"

	// Request-level failures.
	if code, out := c.do("POST", path, batchRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d %s", code, out)
	}
	over := batchRequest{Queries: make([]batchQuery, 5)}
	if code, out := c.do("POST", path, over); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d %s", code, out)
	}
	if code, _ := c.do("POST", "/v1/graphs/be/builds/zzz/query", batchRequest{Queries: make([]batchQuery, 1)}); code != http.StatusNotFound {
		t.Fatalf("missing build accepted: %d", code)
	}

	// Item-level failures arrive inline, not as HTTP errors.
	one, bad := 1, 99
	req := batchRequest{Queries: []batchQuery{
		{Source: 3, Target: &one},                         // non-source
		{Source: 0, Target: &bad},                         // target out of range
		{Source: 0, Route: true},                          // route without target
		{Source: 0, Target: &one, Faults: []int{0, 1, 2}}, // budget
		{Source: 0, Target: &one},                         // fine
	}}
	// MaxBatchQueries is 4; trim to fit.
	req.Queries = req.Queries[:4]
	var resp struct {
		Results []batchResult `json:"results"`
	}
	c.decode("POST", path, req, http.StatusOK, &resp)
	for i := 0; i < 4; i++ {
		if resp.Results[i].Error == "" {
			t.Fatalf("item %d: expected inline error, got %+v", i, resp.Results[i])
		}
	}
}

// TestServerDuplicateFaults replays the canonicalization bugfix through
// the HTTP handler: faults=3,3 is ONE failure event — it must fit an
// f = 1 budget and share a single cache entry with faults=3.
func TestServerDuplicateFaults(t *testing.T) {
	seed := int64(3)
	g := gen.GNP(16, 0.3, seed)
	c := newTestClient(t, nil)
	c.createGraph("dup", GenSpec{Family: "gnp", N: 16, P: 0.3, Seed: seed})
	id := c.startBuild("dup", createBuildRequest{Mode: "single", Sources: []int{0}})
	info := c.waitReady("dup", id)
	if info.Status != StatusReady || info.Faults != 1 {
		t.Fatalf("want ready f=1 build: %+v", info)
	}
	var dup, canon distResponse
	c.decode("GET", "/v1/graphs/dup/builds/"+id+"/dist?source=0&target=5&faults=3,3",
		nil, http.StatusOK, &dup)
	c.decode("GET", "/v1/graphs/dup/builds/"+id+"/dist?source=0&target=5&faults=3",
		nil, http.StatusOK, &canon)
	if dup != canon {
		t.Fatalf("duplicate form answered %+v, canonical %+v", dup, canon)
	}
	truth := bfs.NewRunner(g)
	truth.Run(0, []int{3}, nil)
	if dup.Dist != truth.Dist(5) {
		t.Fatalf("got %d, truth %d", dup.Dist, truth.Dist(5))
	}
	info = c.waitReady("dup", id)
	if info.Cache == nil || info.Cache.Len != 1 || info.Cache.Misses != 1 || info.Cache.Hits != 1 {
		t.Fatalf("faults {3,3} and {3} did not share one cache entry: %+v", info.Cache)
	}
	// Two DISTINCT faults still exceed the f = 1 budget.
	if code, _ := c.do("GET", "/v1/graphs/dup/builds/"+id+"/dist?source=0&target=5&faults=3,4", nil); code != http.StatusBadRequest {
		t.Fatalf("distinct pair accepted against f=1: %d", code)
	}
}

// TestServerQueuedBuild saturates the build semaphore and checks the
// queued lifecycle deterministically: status "queued" with live queue
// time and no build time, 409 on queries, then — once a slot frees — a
// ready build whose ElapsedMS excludes the queue wait.
func TestServerQueuedBuild(t *testing.T) {
	s := New(&Config{MaxConcurrentBuilds: 1})
	if err := s.RegisterGraph("q", &GenSpec{Family: "path", N: 6}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	s.buildSem <- struct{}{} // occupy the only build slot

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/graphs/q/builds",
		strings.NewReader(`{"mode":"dual","sources":[0]}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	var info buildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusQueued {
		t.Fatalf("fresh build status %q, want %q", info.Status, StatusQueued)
	}
	path := "/v1/graphs/q/builds/" + info.ID

	time.Sleep(150 * time.Millisecond) // accumulate observable queue time
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusQueued {
		t.Fatalf("queued build reports %q", info.Status)
	}
	if info.QueuedMS <= 0 || info.ElapsedMS != 0 {
		t.Fatalf("queued timing wrong: queued %.3fms elapsed %.3fms", info.QueuedMS, info.ElapsedMS)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path+"/dist?source=0&target=1", nil))
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), StatusQueued) {
		t.Fatalf("query against queued build: %d %s", rec.Code, rec.Body)
	}

	<-s.buildSem // free the slot; the queued build may now run
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if info.Status != StatusQueued && info.Status != StatusBuilding {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("build stuck: %+v", info)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	// The queue wait (≥ 150ms by construction) must not leak into the
	// build time: the trivial 6-vertex build takes well under 100ms even
	// on a stalled runner, while the pre-fix behavior (timer started at
	// creation) would report ≥ 150ms.
	if info.QueuedMS < 120 {
		t.Fatalf("queue wait under-reported: %.3fms", info.QueuedMS)
	}
	if info.ElapsedMS >= 100 {
		t.Fatalf("build time %.3fms includes queue wait %.3fms", info.ElapsedMS, info.QueuedMS)
	}
}

// TestServerBatchResultBound checks a non-streaming batch heavy in
// whole-table items is refused once the materialized response would
// exceed the value bound — and that streaming mode still answers it.
func TestServerBatchResultBound(t *testing.T) {
	old := maxBatchResultValues
	maxBatchResultValues = 64
	t.Cleanup(func() { maxBatchResultValues = old })

	c := newTestClient(t, nil)
	c.createGraph("big", GenSpec{Family: "grid", Rows: 5, Cols: 5}) // n=25: 3 tables > 64 values
	id := c.startBuild("big", createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady("big", id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	req := batchRequest{Queries: make([]batchQuery, 4)}
	for i := range req.Queries {
		req.Queries[i] = batchQuery{Source: 0, Faults: []int{i}} // whole-table items
	}
	code, out := c.do("POST", "/v1/graphs/big/builds/"+id+"/query", req)
	if code != http.StatusRequestEntityTooLarge || !strings.Contains(string(out), "stream") {
		t.Fatalf("oversized response not refused: %d %s", code, out)
	}
	req.Stream = true
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.srv.URL+"/v1/graphs/big/builds/"+id+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed batch refused: %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var lines []json.RawMessage
	for dec.More() {
		var m json.RawMessage
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 5 { // 4 results + trailer
		t.Fatalf("streamed %d lines, want 5", len(lines))
	}
	for i := 0; i < 4; i++ {
		var r batchResult
		if err := json.Unmarshal(lines[i], &r); err != nil {
			t.Fatal(err)
		}
		if r.Error != "" || len(r.Dists) != 25 {
			t.Fatalf("streamed item %d: %+v", i, r)
		}
	}
	var trailer batchStreamTrailer
	if err := json.Unmarshal(lines[4], &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.Results != 4 {
		t.Fatalf("bad stream trailer: %+v", trailer)
	}
}
