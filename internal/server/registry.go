package server

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/edgelist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/snap"
)

// GenSpec describes a synthetic graph to generate from the gen families.
type GenSpec struct {
	Family  string  `json:"family"`
	N       int     `json:"n,omitempty"`
	P       float64 `json:"p,omitempty"`
	AvgDeg  float64 `json:"avgDeg,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Cols    int     `json:"cols,omitempty"`
	Dim     int     `json:"dim,omitempty"`
	Width   int     `json:"width,omitempty"`
	Layers  int     `json:"layers,omitempty"`
	Density float64 `json:"density,omitempty"`
	Chords  int     `json:"chords,omitempty"`
	Degree  int     `json:"degree,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// generate materializes the spec. Families mirror the ftbfs facade
// generators.
func (sp *GenSpec) generate() (*graph.Graph, error) {
	switch strings.ToLower(sp.Family) {
	case "gnp":
		if sp.N < 2 {
			return nil, fmt.Errorf("gnp needs n ≥ 2")
		}
		return gen.GNP(sp.N, sp.P, sp.Seed), nil
	case "sparse":
		if sp.N < 2 {
			return nil, fmt.Errorf("sparse needs n ≥ 2")
		}
		return gen.SparseGNP(sp.N, sp.AvgDeg, sp.Seed), nil
	case "grid":
		if sp.Rows < 1 || sp.Cols < 1 {
			return nil, fmt.Errorf("grid needs rows,cols ≥ 1")
		}
		return gen.Grid(sp.Rows, sp.Cols), nil
	case "path":
		if sp.N < 1 {
			return nil, fmt.Errorf("path needs n ≥ 1")
		}
		return gen.PathGraph(sp.N), nil
	case "cycle":
		if sp.N < 3 {
			return nil, fmt.Errorf("cycle needs n ≥ 3")
		}
		return gen.Cycle(sp.N), nil
	case "complete":
		if sp.N < 1 {
			return nil, fmt.Errorf("complete needs n ≥ 1")
		}
		return gen.Complete(sp.N), nil
	case "hypercube":
		if sp.Dim < 1 || sp.Dim > 20 {
			return nil, fmt.Errorf("hypercube needs 1 ≤ dim ≤ 20")
		}
		return gen.Hypercube(sp.Dim), nil
	case "layered":
		if sp.Width < 1 || sp.Layers < 1 {
			return nil, fmt.Errorf("layered needs width,layers ≥ 1")
		}
		return gen.Layered(sp.Width, sp.Layers, sp.Density, sp.Seed), nil
	case "tree":
		if sp.N < 1 {
			return nil, fmt.Errorf("tree needs n ≥ 1")
		}
		return gen.TreePlusChords(sp.N, sp.Chords, sp.Seed), nil
	case "regular":
		if sp.N < 2 || sp.Degree < 1 {
			return nil, fmt.Errorf("regular needs n ≥ 2 and degree ≥ 1")
		}
		return gen.RandomRegular(sp.N, sp.Degree, sp.Seed), nil
	default:
		return nil, fmt.Errorf("unknown family %q (gnp, sparse, grid, path, cycle, complete, hypercube, layered, tree, regular)", sp.Family)
	}
}

// Build lifecycle states: queued (waiting for a build slot) → building →
// ready | failed | cancelled. Cancellation (DELETE on the build, graph
// deletion, or server shutdown) can land in either non-terminal state: a
// queued build cancels without ever taking a slot, a building one returns
// at its next cooperative poll point.
const (
	StatusQueued    = "queued"
	StatusBuilding  = "building"
	StatusReady     = "ready"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Snapshot persistence states of a ready build (empty when the server has
// no Store): pending (background encode in flight) → saved | failed.
const (
	SnapPending = "pending"
	SnapSaved   = "saved"
	SnapFailed  = "failed"
)

// buildEntry is one (possibly in-flight) structure build over a registered
// graph. Fields not marked `guarded by Server.mu` are immutable after
// creation; the guarded ones are written by the build goroutine under the
// server lock (once at semaphore acquisition, once at completion).
type buildEntry struct {
	id      string
	mode    string
	sources []int
	seed    int64
	status  string            // guarded by Server.mu
	errMsg  string            // guarded by Server.mu
	created time.Time         // when the build was accepted (queue entry)
	started time.Time         // guarded by Server.mu; when it acquired a build slot (zero while queued)
	queued  time.Duration     // guarded by Server.mu; time spent waiting for the slot
	elapsed time.Duration     // guarded by Server.mu; pure build time, excluding the queue wait
	st      *core.Structure   // guarded by Server.mu
	set     *oracle.OracleSet // guarded by Server.mu
	// cancel cancels the build's context; done is closed when the build
	// goroutine has fully exited (slot released, status terminal);
	// progress carries the builder's live counters. All three are nil for
	// restored (snapshot-rehydrated) entries, which never ran here.
	cancel   context.CancelFunc
	done     chan struct{}
	progress *core.Progress
	// restored marks entries rehydrated from a snapshot (warm start or
	// PUT upload) rather than built; elapsed then reports the ORIGINAL
	// build time carried in the snapshot metadata, and origMeta retains
	// the decoded metadata so re-encoding the build preserves its
	// provenance timing exactly.
	restored bool
	origMeta snap.Meta
	// snapState/snapErr track background snapshot persistence (see the
	// Snap* constants).
	snapState string // guarded by Server.mu
	snapErr   string // guarded by Server.mu
}

// graphEntry is one registered graph plus its builds.
type graphEntry struct {
	name    string
	g       *graph.Graph
	created time.Time
	builds  map[string]*buildEntry // guarded by Server.mu
	order   []string               // guarded by Server.mu; build IDs in creation order
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// parseEdgeList wraps edgelist.Read for uploaded graph bodies.
func parseEdgeList(text string) (*graph.Graph, error) {
	return edgelist.Read(strings.NewReader(text))
}
