package server

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/server/batchcodec"
)

// postBinary sends one binary batch frame to a build's query endpoint.
func (c *testClient) postBinary(graph, build string, frame []byte) (int, []byte) {
	c.t.Helper()
	req, err := http.NewRequest("POST", c.srv.URL+"/v1/graphs/"+graph+"/builds/"+build+"/query",
		bytes.NewReader(frame))
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set("Content-Type", batchcodec.ContentType)
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if ct := resp.Header.Get("Content-Type"); ct != batchcodec.ContentType {
			c.t.Fatalf("binary response Content-Type = %q", ct)
		}
	}
	return resp.StatusCode, buf.Bytes()
}

// binReady registers a graph (optionally BFS-ordered) and builds a dual
// structure on source 0, returning the build ID.
func binReady(t *testing.T, c *testClient, name string, ordered bool) string {
	t.Helper()
	spec := GenSpec{Family: "gnp", N: 60, P: 0.1, Seed: 42}
	var gi graphInfo
	c.decode("POST", "/v1/graphs", createGraphRequest{Name: name, Gen: &spec, Ordered: &ordered},
		http.StatusCreated, &gi)
	if gi.Ordered != ordered {
		t.Fatalf("graph %q ordered = %v, want %v", name, gi.Ordered, ordered)
	}
	id := c.startBuild(name, createBuildRequest{Mode: "dual", Sources: []int{0}})
	if info := c.waitReady(name, id); info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	return id
}

// binItems is a fixed mixed batch: point queries, whole tables, routes,
// duplicate faults, and one of every item-level error.
func binItems(t *testing.T) []batchcodec.Item {
	t.Helper()
	return []batchcodec.Item{
		{Source: 0, Target: 17},
		{Source: 0, Target: 41, Fault0: 3, Flags: 1},
		{Source: 0, Target: 33, Fault0: 5, Fault1: 9, Flags: 2},
		{Source: 0, Target: 33, Fault0: 5, Fault1: 5, Flags: 2}, // duplicate faults collapse
		{Source: 0, Flags: batchcodec.FlagAllDists},
		{Source: 0, Fault0: 12, Flags: 1 | batchcodec.FlagAllDists},
		{Source: 0, Target: 25, Fault0: 1, Flags: 1 | batchcodec.FlagRoute},
		{Source: 0, Target: 2, Flags: batchcodec.FlagRoute},
		{Source: 7, Target: 3},                                                        // not a structure source
		{Source: -4, Target: 3},                                                       // source out of range
		{Source: 0, Target: 600},                                                      // target out of range
		{Source: 0, Target: 3, Fault0: 1 << 30, Flags: 1},                             // fault out of range
		{Source: 0, Target: 3, Flags: batchcodec.FlagRoute | batchcodec.FlagAllDists}, // malformed
	}
}

// jsonTwin renders the expressible prefix of binItems as JSON batch
// queries (the malformed item has no JSON spelling and is skipped).
func jsonTwin(items []batchcodec.Item) []batchQuery {
	var out []batchQuery
	for _, it := range items {
		if !it.Valid() {
			continue
		}
		q := batchQuery{Source: int(it.Source), Route: it.Route()}
		if !it.AllDists() {
			tgt := int(it.Target)
			q.Target = &tgt
		}
		for i, f := range []uint32{it.Fault0, it.Fault1} {
			if i < it.NumFaults() {
				q.Faults = append(q.Faults, int(f))
			}
		}
		out = append(out, q)
	}
	return out
}

// TestBinaryBatchMatchesJSON runs the same mixed batch through the JSON
// and binary protocols — on a plain and on a BFS-ordered graph — and
// requires record-for-record agreement: same error partition, same
// distances, same tables, same paths, all in the wire numbering.
func TestBinaryBatchMatchesJSON(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		name := map[bool]string{false: "plain", true: "ordered"}[ordered]
		t.Run(name, func(t *testing.T) {
			c := newTestClient(t, nil)
			build := binReady(t, c, name, ordered)
			items := binItems(t)

			var rb batchcodec.RequestBuilder
			for _, it := range items {
				rb.Add(it)
			}
			code, body := c.postBinary(name, build, rb.Frame())
			if code != http.StatusOK {
				t.Fatalf("binary batch: %d: %s", code, body)
			}
			resp, err := batchcodec.DecodeResponse(body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Len() != len(items) {
				t.Fatalf("binary batch answered %d of %d items", resp.Len(), len(items))
			}

			var jsonResp struct {
				Results []batchResult `json:"results"`
			}
			c.decode("POST", "/v1/graphs/"+name+"/builds/"+build+"/query",
				batchRequest{Queries: jsonTwin(items)}, http.StatusOK, &jsonResp)

			it := resp.Iter()
			j := 0 // index into the JSON twin (skips the malformed item)
			for i, item := range items {
				if !it.Next() {
					t.Fatalf("binary iterator ended at item %d", i)
				}
				rec := it.Record()
				if !item.Valid() {
					if rec.Err() != batchcodec.ErrBadItem {
						t.Fatalf("item %d: err = %v, want ErrBadItem", i, rec.Err())
					}
					continue
				}
				res := jsonResp.Results[j]
				j++
				if (rec.Err() != batchcodec.ErrNone) != (res.Error != "") {
					t.Fatalf("item %d: binary err %v vs JSON error %q", i, rec.Err(), res.Error)
				}
				if rec.Err() != batchcodec.ErrNone {
					continue
				}
				switch {
				case item.AllDists():
					if it.ValueLen() != len(res.Dists) {
						t.Fatalf("item %d: table %d vs %d entries", i, it.ValueLen(), len(res.Dists))
					}
					for k, want := range res.Dists {
						if int32(it.Value(k)) != want {
							t.Fatalf("item %d: table[%d] = %d, want %d", i, k, int32(it.Value(k)), want)
						}
					}
				case item.Route():
					if rec.Reachable() != *res.Reachable {
						t.Fatalf("item %d: reachable %v vs %v", i, rec.Reachable(), *res.Reachable)
					}
					if !rec.Reachable() {
						break
					}
					if rec.Dist != *res.Dist || it.ValueLen() != len(res.Path) {
						t.Fatalf("item %d: route %d/%d vs %d/%d", i, rec.Dist, it.ValueLen(), *res.Dist, len(res.Path))
					}
					for k, want := range res.Path {
						if int(it.Value(k)) != want {
							t.Fatalf("item %d: path[%d] = %d, want %d", i, k, it.Value(k), want)
						}
					}
				default:
					if rec.Dist != *res.Dist || rec.Reachable() != *res.Reachable {
						t.Fatalf("item %d: dist %d/%v vs %d/%v", i, rec.Dist, rec.Reachable(), *res.Dist, *res.Reachable)
					}
				}
			}

			// Pin the typed codes of the error tail (items 8..12).
			wantErrs := []batchcodec.ErrCode{
				batchcodec.ErrBadSource, batchcodec.ErrBadSource, batchcodec.ErrBadTarget,
				batchcodec.ErrBadFault, batchcodec.ErrBadItem,
			}
			for k, want := range wantErrs {
				if got := resp.Record(len(items) - len(wantErrs) + k).Err(); got != want {
					t.Fatalf("error item %d: code %v, want %v", k, got, want)
				}
			}
		})
	}
}

// TestBinaryBatchOrderedTransparent is the relabeling-invisibility pin:
// the same graph registered plain and BFS-ordered must answer the same
// binary batch with byte-identical response frames.
func TestBinaryBatchOrderedTransparent(t *testing.T) {
	c := newTestClient(t, nil)
	plainBuild := binReady(t, c, "plain", false)
	ordBuild := binReady(t, c, "ordered", true)

	var rb batchcodec.RequestBuilder
	for _, it := range binItems(t) {
		rb.Add(it)
	}
	frame := rb.Frame()
	code1, resp1 := c.postBinary("plain", plainBuild, frame)
	code2, resp2 := c.postBinary("ordered", ordBuild, frame)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("binary batches: %d / %d", code1, code2)
	}
	if !bytes.Equal(resp1, resp2) {
		t.Fatalf("ordered graph answered differently (%d vs %d bytes)", len(resp1), len(resp2))
	}
}

// TestBinaryBatchFrameErrors pins the HTTP mapping of frame-level
// failures: malformed frames are 400 with a byte offset, oversized
// batches are 413, and the JSON protocol on the same route is unharmed.
func TestBinaryBatchFrameErrors(t *testing.T) {
	c := newTestClient(t, &Config{MaxBatchQueries: 3})
	build := binReady(t, c, "g", false)

	var rb batchcodec.RequestBuilder
	rb.Add(batchcodec.Item{Source: 0, Target: 1})
	frame := rb.Frame()

	code, body := c.postBinary("g", build, []byte("not a frame"))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage frame: %d: %s", code, body)
	}
	code, body = c.postBinary("g", build, frame[:len(frame)-2])
	if code != http.StatusBadRequest || !bytes.Contains(body, []byte("offset")) {
		t.Fatalf("truncated frame: %d: %s", code, body)
	}

	rb.Reset()
	for i := 0; i < 4; i++ {
		rb.Add(batchcodec.Item{Source: 0, Target: int32(i)})
	}
	code, body = c.postBinary("g", build, rb.Frame())
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d: %s", code, body)
	}

	// Content negotiation: the JSON protocol still serves the same route.
	var jsonResp struct {
		Results []batchResult `json:"results"`
	}
	tgt := 1
	c.decode("POST", "/v1/graphs/g/builds/"+build+"/query",
		batchRequest{Queries: []batchQuery{{Source: 0, Target: &tgt}}}, http.StatusOK, &jsonResp)
	if len(jsonResp.Results) != 1 || jsonResp.Results[0].Error != "" {
		t.Fatalf("JSON twin on shared route: %+v", jsonResp.Results)
	}
}

// TestBinaryBatchResponseBound lowers the response-size bound and checks
// whole-table items trip it with 413 rather than materializing the lot.
func TestBinaryBatchResponseBound(t *testing.T) {
	old := maxBatchResultValues
	maxBatchResultValues = 100
	defer func() { maxBatchResultValues = old }()
	c := newTestClient(t, nil)
	build := binReady(t, c, "g", false)
	var rb batchcodec.RequestBuilder
	for i := 0; i < 3; i++ {
		rb.Add(batchcodec.Item{Source: 0, Flags: batchcodec.FlagAllDists}) // 62 values each on n=60
	}
	code, body := c.postBinary("g", build, rb.Frame())
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("bounded response: %d: %s", code, body)
	}
}

// TestOrderedBuildSourceNumbering pins the wire contract of renumbered
// graphs across the build plane: sources are sent, stored, and reported
// in the registered numbering, and multi-source structures answer for
// exactly the wire sources the client named.
func TestOrderedBuildSourceNumbering(t *testing.T) {
	c := newTestClient(t, nil)
	spec := GenSpec{Family: "gnp", N: 40, P: 0.15, Seed: 9}
	ordered := true
	c.decode("POST", "/v1/graphs", createGraphRequest{Name: "g", Gen: &spec, Ordered: &ordered},
		http.StatusCreated, nil)
	id := c.startBuild("g", createBuildRequest{Mode: "multi", Sources: []int{3, 7}})
	info := c.waitReady("g", id)
	if info.Status != StatusReady {
		t.Fatalf("build failed: %+v", info)
	}
	if len(info.Sources) != 2 || info.Sources[0] != 3 || info.Sources[1] != 7 {
		t.Fatalf("build sources = %v, want wire [3 7]", info.Sources)
	}
	// Wire sources answer; a non-source wire ID is refused — even if its
	// internal relabeling happens to collide with a source.
	var res distResponse
	c.decode("GET", "/v1/graphs/g/builds/"+id+"/dist?source=3&target=7", nil, http.StatusOK, &res)
	if !res.Reachable || res.Dist < 1 {
		t.Fatalf("dist(3,7) = %+v", res)
	}
	if code, body := c.do("GET", "/v1/graphs/g/builds/"+id+"/dist?source=2&target=7", nil); code != http.StatusBadRequest {
		t.Fatalf("non-source query: %d: %s", code, body)
	}
}

// TestOrderedSnapshotRestart builds over a BFS-ordered graph with a
// store, warm-starts a fresh instance from the same store, and requires
// the restored build to keep the ordered flag, wire-numbered sources,
// and byte-identical binary batch answers — the renumbering must survive
// the snapshot round trip (version-2 VPRM section).
func TestOrderedSnapshotRestart(t *testing.T) {
	store := NewMemStore()
	srv1 := New(&Config{Store: store, OrderVertices: true})
	c1 := newStoreClient(t, srv1)
	build := binReady(t, c1, "g", true)
	if info := c1.waitSnapshot("g", build); info.Snapshot != SnapSaved {
		t.Fatalf("snapshot not saved: %+v", info)
	}
	var rb batchcodec.RequestBuilder
	for _, it := range binItems(t) {
		rb.Add(it)
	}
	frame := rb.Frame()
	code, want := c1.postBinary("g", build, frame)
	if code != http.StatusOK {
		t.Fatalf("pre-restart batch: %d: %s", code, want)
	}

	srv2 := New(&Config{Store: store})
	if restored, err := srv2.WarmStart(); err != nil || restored != 1 {
		t.Fatalf("warm start restored %d builds, err %v", restored, err)
	}
	c2 := newStoreClient(t, srv2)
	var gi graphInfo
	c2.decode("GET", "/v1/graphs/g", nil, http.StatusOK, &gi)
	if !gi.Ordered {
		t.Fatal("restored graph lost its ordered flag")
	}
	var bi buildInfo
	c2.decode("GET", "/v1/graphs/g/builds/"+build, nil, http.StatusOK, &bi)
	if !bi.Restored || len(bi.Sources) != 1 || bi.Sources[0] != 0 {
		t.Fatalf("restored build: %+v", bi)
	}
	code, got := c2.postBinary("g", build, frame)
	if code != http.StatusOK {
		t.Fatalf("post-restart batch: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("restart changed binary answers (%d vs %d bytes)", len(want), len(got))
	}
}
