package cancel

import (
	"context"
	"errors"
	"testing"
)

func TestPollerBackgroundFree(t *testing.T) {
	p := New(context.Background(), 4)
	for i := 0; i < 100; i++ {
		if err := p.Poll(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if err := p.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestPollerFirstCallChecks(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	for _, every := range []int{1, 2, 32, 0, -5} {
		p := New(ctx, every)
		if err := p.Poll(); !errors.Is(err, context.Canceled) {
			t.Fatalf("every=%d: first Poll = %v, want Canceled", every, err)
		}
	}
}

func TestPollerCadence(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	p := New(ctx, 8)
	if err := p.Poll(); err != nil { // call 1: live ctx
		t.Fatal(err)
	}
	cancelFn()
	// Calls 2..8 are between inspection points; call 9 must report.
	for i := 2; i <= 8; i++ {
		if err := p.Poll(); err != nil {
			t.Fatalf("call %d inspected early: %v", i, err)
		}
	}
	if err := p.Poll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("call 9 = %v, want Canceled", err)
	}
	if err := p.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check = %v, want Canceled", err)
	}
}
