// Package cancel provides the amortized cooperative-cancellation poller
// shared by every long-running enumeration in this module (structure
// builders, the verifier, lower-bound instance generation). It is a leaf
// package so both internal/core and the packages core's tests depend on
// can use one implementation without import cycles.
package cancel

import "context"

// PollEvery is the default amortized cancellation-poll cadence of the
// hot enumeration loops: the context is actually inspected once per this
// many work units, so the check costs an integer increment in the common
// case (measured < 2% of build time; see EXPERIMENTS.md) while keeping
// cancellation latency to a handful of searches.
const PollEvery = 32

// Poller amortizes cooperative cancellation checks inside hot loops.
// Poll returns the context's error once cancelled, but actually inspects
// the context only once every `every` calls; for a context that can
// never be cancelled (Done() == nil, e.g. context.Background()) it
// degenerates to a single nil check per call. Not safe for concurrent
// use — give each worker goroutine its own Poller.
type Poller struct {
	ctx   context.Context
	done  <-chan struct{}
	every uint32
	n     uint32
}

// New returns a Poller over ctx checking once per `every` calls (values
// < 1 check on every call).
func New(ctx context.Context, every int) *Poller {
	if every < 1 {
		every = 1
	}
	return &Poller{ctx: ctx, done: ctx.Done(), every: uint32(every)}
}

// Poll reports ctx.Err() at the amortized cadence (nil while the context
// is live or between inspection points). The first call always inspects
// the context, so a pre-cancelled build stops before any work even when
// the whole enumeration is shorter than the cadence.
func (c *Poller) Poll() error {
	if c.done == nil {
		return nil
	}
	c.n++
	if c.every != 1 && c.n%c.every != 1 {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// Check reports ctx.Err() immediately, bypassing the cadence (for loop
// boundaries where a unit of work is expensive enough to always check).
func (c *Poller) Check() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}
