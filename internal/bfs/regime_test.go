package bfs

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestBitsetRegimeEquivalence pins the bitset scan loops against the
// compact dist-probe loops: on identical graphs, identical fault sets, both
// regimes must produce identical distance tables AND identical parent
// choices (claim order is first-wins in arc order in both, so even
// tie-breaks must agree). This is what lets the regime threshold be a pure
// performance knob.
func TestBitsetRegimeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := gen.SparseGNP(300, 6, seed)
		compact := NewRunner(g)
		bitset := NewRunner(g)
		bitset.ForceBitset()
		rng := rand.New(rand.NewSource(seed * 13))
		for trial := 0; trial < 30; trial++ {
			var faults []int
			for k := rng.Intn(4); k > 0; k-- {
				faults = append(faults, rng.Intn(g.M()))
			}
			var offV []int
			if rng.Intn(4) == 0 {
				offV = []int{rng.Intn(g.N())}
			}
			src := rng.Intn(g.N())
			compact.Run(src, faults, offV)
			bitset.Run(src, faults, offV)
			cd, bd := compact.Dists(), bitset.Dists()
			for v := range cd {
				if cd[v] != bd[v] {
					t.Fatalf("seed %d trial %d: dist[%d] = %d compact vs %d bitset (src %d faults %v off %v)",
						seed, trial, v, cd[v], bd[v], src, faults, offV)
				}
			}
			for v := range cd {
				cp, bp := compact.PathTo(v), bitset.PathTo(v)
				if len(cp) != len(bp) {
					t.Fatalf("seed %d trial %d: path to %d has %d vs %d vertices", seed, trial, v, len(cp), len(bp))
				}
				for i := range cp {
					if cp[i] != bp[i] {
						t.Fatalf("seed %d trial %d: path to %d differs at %d: %v vs %v", seed, trial, v, i, cp, bp)
					}
				}
			}
		}
	}
}

// TestBitsetRegimeDisconnected checks the backfill on graphs where whole
// bitset words stay untouched: a disconnected graph must report Unreachable
// for every vertex outside the source component, including when the source
// itself is disabled.
func TestBitsetRegimeDisconnected(t *testing.T) {
	// A path on vertices 0..9; vertices 10..199 isolated.
	b := graph.NewBuilder(200)
	for v := 0; v < 9; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Freeze()
	r := NewRunner(g)
	r.ForceBitset()
	r.Run(0, nil, nil)
	for v := 0; v < 10; v++ {
		if r.Dist(v) != int32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, r.Dist(v), v)
		}
	}
	for v := 10; v < 200; v++ {
		if r.Dist(v) != Unreachable {
			t.Fatalf("dist[%d] = %d, want Unreachable", v, r.Dist(v))
		}
	}
	// Disabled source: everything unreachable.
	r.Run(0, nil, []int{0})
	for v := 0; v < 200; v++ {
		if r.Dist(v) != Unreachable {
			t.Fatalf("disabled source: dist[%d] = %d, want Unreachable", v, r.Dist(v))
		}
	}
}

// refBFS is an independent, naive BFS used as ground truth for the large
// graph test — no shared code with the runner's scan loops.
func refBFS(g *graph.Graph, src int, disabledEdges []int) []int32 {
	off := make(map[int]bool, len(disabledEdges))
	for _, e := range disabledEdges {
		off[e] = true
	}
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.Arcs(v) {
			if off[int(a.ID)] || dist[a.To] != Unreachable {
				continue
			}
			dist[a.To] = dist[v] + 1
			queue = append(queue, int(a.To))
		}
	}
	return dist
}

// TestBitsetRegimeThreshold checks that the real constructor picks the
// bitset regime above compactLimit, and that both the unmasked and masked
// scans over such a graph match an independent reference BFS.
func TestBitsetRegimeThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph generation in -short mode")
	}
	n := CompactLimit + 1024
	g := gen.TreePlusChords(n, 500, 7)
	r := NewRunner(g)
	if r.visited == nil {
		t.Fatalf("runner over n=%d picked the compact regime", n)
	}
	r.Run(0, nil, nil)
	want := refBFS(g, 0, nil)
	for v := 0; v < n; v++ {
		if r.Dist(v) != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, r.Dist(v), want[v])
		}
	}
	// A masked run through the same (reused) runner must also agree.
	faults := []int{3, 17, 4000}
	r.Run(0, faults, nil)
	want = refBFS(g, 0, faults)
	for v := 0; v < n; v++ {
		if r.Dist(v) != want[v] {
			t.Fatalf("masked dist[%d] = %d, want %d", v, r.Dist(v), want[v])
		}
	}
}
