// Package bfs provides plain unweighted breadth-first search with reusable
// scratch buffers. The verifier and the approximation algorithm run millions
// of BFS passes over fault-restricted subgraphs, so the runner is
// allocation-free after construction and supports per-run edge masks.
package bfs

import (
	"repro/internal/graph"
	"repro/internal/path"
)

// Unreachable is the distance reported for vertices not reached.
const Unreachable = int32(-1)

// Runner is a reusable BFS scratch over a fixed graph. It is not safe for
// concurrent use; create one per goroutine.
type Runner struct {
	g      *graph.Graph
	dist   []int32
	parent []int32
	queue  []int32
	eOff   []uint32
	vOff   []uint32
	epoch  uint32
}

// NewRunner returns a runner bound to g.
func NewRunner(g *graph.Graph) *Runner {
	return &Runner{
		g:      g,
		dist:   make([]int32, g.N()),
		parent: make([]int32, g.N()),
		queue:  make([]int32, 0, g.N()),
		eOff:   make([]uint32, g.M()),
		vOff:   make([]uint32, g.N()),
	}
}

// Run executes BFS from src with the given edges and vertices disabled.
// Results are valid until the next Run.
//
//ftbfs:hotpath
func (r *Runner) Run(src int, disabledEdges []int, disabledVertices []int) {
	r.epoch++
	if r.epoch == 0 {
		for i := range r.eOff {
			r.eOff[i] = 0
		}
		for i := range r.vOff {
			r.vOff[i] = 0
		}
		r.epoch = 1
	}
	ep := r.epoch
	for _, e := range disabledEdges {
		r.eOff[e] = ep
	}
	for _, v := range disabledVertices {
		r.vOff[v] = ep
	}
	dist, parent := r.dist, r.parent
	for i := range dist {
		dist[i] = Unreachable
	}
	r.queue = r.queue[:0]
	if r.vOff[src] == ep {
		return
	}
	dist[src] = 0
	parent[src] = -1
	r.queue = append(r.queue, int32(src))
	if len(disabledEdges) == 0 && len(disabledVertices) == 0 {
		r.scanFast()
		return
	}
	r.scanMasked(ep)
}

// scanFast is the scan loop for runs with nothing masked: the epoch arrays
// need not be consulted, so each arc costs one contiguous read plus one dist
// probe.
//
//ftbfs:hotpath
func (r *Runner) scanFast() {
	dist, parent, queue := r.dist, r.parent, r.queue
	off, arcs := r.g.ArcData()
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		du := dist[v] + 1
		for i, end := off[v], off[v+1]; i < end; i++ {
			a := arcs[i]
			if dist[a.To] == Unreachable {
				dist[a.To] = du
				parent[a.To] = v
				queue = append(queue, a.To)
			}
		}
	}
	r.queue = queue
}

// scanMasked is the scan loop honoring the per-run edge/vertex masks.
//
//ftbfs:hotpath
func (r *Runner) scanMasked(ep uint32) {
	off, arcs := r.g.ArcData()
	for head := 0; head < len(r.queue); head++ {
		v := r.queue[head]
		du := r.dist[v] + 1
		for i, end := off[v], off[v+1]; i < end; i++ {
			a := arcs[i]
			if r.eOff[a.ID] == ep || r.vOff[a.To] == ep || r.dist[a.To] != Unreachable {
				continue
			}
			r.dist[a.To] = du
			r.parent[a.To] = v
			r.queue = append(r.queue, a.To)
		}
	}
}

// Dist returns the hop distance to v from the last run's source, or
// Unreachable.
//
//ftbfs:hotpath
func (r *Runner) Dist(v int) int32 { return r.dist[v] }

// Dists returns the internal distance slice for the last run. The slice is
// owned by the runner and overwritten by the next Run; callers must copy it
// if they need to retain it.
func (r *Runner) Dists() []int32 { return r.dist }

// PathTo reconstructs one shortest path to v from the last run, or nil.
func (r *Runner) PathTo(v int) path.Path {
	if r.dist[v] == Unreachable {
		return nil
	}
	p := make(path.Path, r.dist[v]+1)
	i := len(p) - 1
	for u := v; i >= 0; u = int(r.parent[u]) {
		p[i] = u
		i--
	}
	return p
}

// Distances runs a one-shot BFS and returns a fresh distance slice.
// Convenience for callers that do not need a reusable runner.
func Distances(g *graph.Graph, src int, disabledEdges []int) []int32 {
	r := NewRunner(g)
	r.Run(src, disabledEdges, nil)
	out := make([]int32, g.N())
	copy(out, r.dist)
	return out
}

// Eccentricity returns the maximum finite distance from src, and whether all
// vertices are reachable.
func Eccentricity(g *graph.Graph, src int) (int32, bool) {
	d := Distances(g, src, nil)
	var ecc int32
	all := true
	for _, dv := range d {
		if dv == Unreachable {
			all = false
			continue
		}
		if dv > ecc {
			ecc = dv
		}
	}
	return ecc, all
}
