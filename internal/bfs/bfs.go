// Package bfs provides plain unweighted breadth-first search with reusable
// scratch buffers. The verifier and the approximation algorithm run millions
// of BFS passes over fault-restricted subgraphs, so the runner is
// allocation-free after construction and supports per-run edge masks.
package bfs

import (
	"math/bits"

	"repro/internal/graph"
	"repro/internal/path"
)

// Unreachable is the distance reported for vertices not reached.
const Unreachable = int32(-1)

// compactLimit is the vertex count above which the scan loops switch from
// the dist-array probe to the uint64 visited bitset. The bitset shrinks the
// random-access working set 32x, which pays once the dist array outgrows
// the cache hierarchy; below that point the dist probe is strictly cheaper
// (one 4-byte load on a line the claim writes anyway, no read-modify-write
// on words shared by 64 vertices). Measured crossover on the reference box
// is around 64k vertices (see EXPERIMENTS.md "Query plane").
const compactLimit = 1 << 16

// Runner is a reusable BFS scratch over a fixed graph. It is not safe for
// concurrent use; create one per goroutine.
//
// The scan kernel is adaptive. Large graphs (N > compactLimit) probe a
// uint64 visited bitset — one cache line answers "seen?" for 512 vertices —
// and run level-synchronously: Run clears only the n/64 visited words, each
// level's distances land in one pass over the fresh queue span, and
// whatever the bitset still reports unvisited at the end is backfilled with
// Unreachable (on a connected graph that degenerates to an n/64-word scan).
// Small graphs keep the dist-array probe, where the bitset's extra
// test-and-set traffic costs more than the working-set shrink saves. Both
// regimes share the dense 4-byte neighbor stream (graph.ArcHeads) on the
// unmasked path and an explicit-tail queue instead of append bookkeeping.
//
// The epoch-stamped edge/vertex masks are allocated on the first masked
// Run, so runners used only for unmasked sweeps (Distances, Eccentricity)
// never pay the M-sized eOff allocation.
type Runner struct {
	g       *graph.Graph
	dist    []int32
	parent  []int32
	queue   []int32
	visited []uint64 // nil when N <= compactLimit (dist-probe regime)
	eOff    []uint32
	vOff    []uint32
	epoch   uint32
}

// NewRunner returns a runner bound to g.
func NewRunner(g *graph.Graph) *Runner {
	r := &Runner{
		g:      g,
		dist:   make([]int32, g.N()),
		parent: make([]int32, g.N()),
		queue:  make([]int32, g.N()),
	}
	if g.N() > compactLimit {
		r.visited = make([]uint64, (g.N()+63)/64)
	}
	return r
}

// ensureMasks allocates the epoch-stamped disable masks on first use. Kept
// out of the hotpath functions so hotalloc does not see the make calls; a
// runner that never masks never allocates them.
func (r *Runner) ensureMasks() {
	if r.eOff == nil {
		r.eOff = make([]uint32, r.g.M())
		r.vOff = make([]uint32, r.g.N())
	}
}

// Run executes BFS from src with the given edges and vertices disabled.
// Results are valid until the next Run.
//
//ftbfs:hotpath
func (r *Runner) Run(src int, disabledEdges []int, disabledVertices []int) {
	masked := len(disabledEdges) > 0 || len(disabledVertices) > 0
	var ep uint32
	if masked {
		r.ensureMasks()
		r.epoch++
		if r.epoch == 0 {
			for i := range r.eOff {
				r.eOff[i] = 0
			}
			for i := range r.vOff {
				r.vOff[i] = 0
			}
			r.epoch = 1
		}
		ep = r.epoch
		for _, e := range disabledEdges {
			r.eOff[e] = ep
		}
		for _, v := range disabledVertices {
			r.vOff[v] = ep
		}
	}
	if r.visited == nil {
		dist := r.dist
		for i := range dist {
			dist[i] = Unreachable
		}
		if masked && r.vOff[src] == ep {
			return
		}
		dist[src] = 0
		r.parent[src] = -1
		r.queue[0] = int32(src)
		if !masked {
			r.scanFastCompact()
		} else {
			r.scanMaskedCompact(ep)
		}
		return
	}
	visited := r.visited
	for i := range visited {
		visited[i] = 0
	}
	if masked && r.vOff[src] == ep {
		// Source itself disabled: nothing is reachable. The backfill sees an
		// all-zero bitset and writes the full Unreachable table.
		r.backfill()
		return
	}
	r.dist[src] = 0
	r.parent[src] = -1
	visited[uint(src)>>6] |= 1 << (uint(src) & 63)
	r.queue[0] = int32(src)
	if !masked {
		r.scanFast()
	} else {
		r.scanMasked(ep)
	}
	r.backfill()
}

// scanFast is the unmasked scan loop of the bitset regime: each arc costs
// one dense 4-byte neighbor read plus one visited-bit test-and-set. The
// loop is level-synchronous — the level counter is the distance, so claims
// touch only the bitset, the parent array, and the queue; each level's
// distances land in one pass over the newly appended queue span.
//
//ftbfs:hotpath
func (r *Runner) scanFast() {
	dist, parent, queue, visited := r.dist, r.parent, r.queue, r.visited
	off, tos := r.g.ArcHeads()
	tail := 1
	du := int32(0)
	for head, levelEnd := 0, 1; head < tail; levelEnd = tail {
		du++
		for ; head < levelEnd; head++ {
			v := queue[head]
			for i, end := off[v], off[v+1]; i < end; i++ {
				to := uint(tos[i])
				w, bit := to>>6, uint64(1)<<(to&63)
				if visited[w]&bit == 0 {
					visited[w] |= bit
					parent[to] = v
					queue[tail] = int32(to)
					tail++
				}
			}
		}
		for i := levelEnd; i < tail; i++ {
			dist[queue[i]] = du
		}
	}
}

// scanMasked is the masked scan loop of the bitset regime: the same
// level-synchronous shape as scanFast, with the visited bit probed first so
// the mask lookups only run for frontier candidates. It reads the full
// []Arc stream because the edge mask is keyed by arc ID.
//
//ftbfs:hotpath
func (r *Runner) scanMasked(ep uint32) {
	dist, parent, queue, visited := r.dist, r.parent, r.queue, r.visited
	eOff, vOff := r.eOff, r.vOff
	off, arcs := r.g.ArcData()
	tail := 1
	du := int32(0)
	for head, levelEnd := 0, 1; head < tail; levelEnd = tail {
		du++
		for ; head < levelEnd; head++ {
			v := queue[head]
			for i, end := off[v], off[v+1]; i < end; i++ {
				a := arcs[i]
				to := uint(a.To)
				w, bit := to>>6, uint64(1)<<(to&63)
				if visited[w]&bit != 0 || eOff[a.ID] == ep || vOff[to] == ep {
					continue
				}
				visited[w] |= bit
				parent[to] = v
				queue[tail] = int32(to)
				tail++
			}
		}
		for i := levelEnd; i < tail; i++ {
			dist[queue[i]] = du
		}
	}
}

// backfill writes Unreachable into the dist entries of every vertex whose
// visited bit is still clear — the per-run reset the bitset scan loops
// skipped. On full words (the common case once a component is swept) it
// costs one compare per 64 vertices.
//
//ftbfs:hotpath
func (r *Runner) backfill() {
	dist, visited := r.dist, r.visited
	n := len(dist)
	for w, word := range visited {
		base := w << 6
		for z := ^word; z != 0; z &= z - 1 {
			i := base + bits.TrailingZeros64(z)
			if i >= n {
				break
			}
			dist[i] = Unreachable
		}
	}
}

// scanFastCompact is the unmasked scan loop of the dist-probe regime: the
// probe reads the same line the claim writes, which beats the bitset while
// the dist array is cache-resident.
//
//ftbfs:hotpath
func (r *Runner) scanFastCompact() {
	dist, parent, queue := r.dist, r.parent, r.queue
	off, tos := r.g.ArcHeads()
	tail := 1
	for head := 0; head < tail; head++ {
		v := queue[head]
		du := dist[v] + 1
		for i, end := off[v], off[v+1]; i < end; i++ {
			to := tos[i]
			if dist[to] == Unreachable {
				dist[to] = du
				parent[to] = v
				queue[tail] = to
				tail++
			}
		}
	}
}

// scanMaskedCompact is the masked scan loop of the dist-probe regime.
//
//ftbfs:hotpath
func (r *Runner) scanMaskedCompact(ep uint32) {
	dist, parent, queue := r.dist, r.parent, r.queue
	eOff, vOff := r.eOff, r.vOff
	off, arcs := r.g.ArcData()
	tail := 1
	for head := 0; head < tail; head++ {
		v := queue[head]
		du := dist[v] + 1
		for i, end := off[v], off[v+1]; i < end; i++ {
			a := arcs[i]
			if dist[a.To] != Unreachable || eOff[a.ID] == ep || vOff[a.To] == ep {
				continue
			}
			dist[a.To] = du
			parent[a.To] = v
			queue[tail] = a.To
			tail++
		}
	}
}

// Dist returns the hop distance to v from the last run's source, or
// Unreachable.
//
//ftbfs:hotpath
func (r *Runner) Dist(v int) int32 { return r.dist[v] }

// Dists returns the internal distance slice for the last run. The slice is
// owned by the runner and overwritten by the next Run; callers must copy it
// if they need to retain it.
func (r *Runner) Dists() []int32 { return r.dist }

// PathTo reconstructs one shortest path to v from the last run, or nil.
func (r *Runner) PathTo(v int) path.Path {
	if r.dist[v] == Unreachable {
		return nil
	}
	p := make(path.Path, r.dist[v]+1)
	i := len(p) - 1
	for u := v; i >= 0; u = int(r.parent[u]) {
		p[i] = u
		i--
	}
	return p
}

// Distances runs a one-shot BFS and returns a fresh distance slice.
// Convenience for callers that do not need a reusable runner. When
// disabledEdges is empty the runner never allocates the M-sized edge mask.
func Distances(g *graph.Graph, src int, disabledEdges []int) []int32 {
	r := NewRunner(g)
	r.Run(src, disabledEdges, nil)
	out := make([]int32, g.N())
	copy(out, r.dist)
	return out
}

// Eccentricity returns the maximum finite distance from src, and whether all
// vertices are reachable.
func Eccentricity(g *graph.Graph, src int) (int32, bool) {
	d := Distances(g, src, nil)
	var ecc int32
	all := true
	for _, dv := range d {
		if dv == Unreachable {
			all = false
			continue
		}
		if dv > ecc {
			ecc = dv
		}
	}
	return ecc, all
}
