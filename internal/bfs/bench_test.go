package bfs

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

func BenchmarkRunner(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := gen.SparseGNP(n, 8, 1)
			r := NewRunner(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Run(0, nil, nil)
			}
		})
	}
}

func BenchmarkRunnerWithFaults(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	r := NewRunner(g)
	faults := []int{3, 17}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(0, faults, nil)
	}
}

// BenchmarkRunnerLarge exercises the bitset scan regime (N > compactLimit):
// the working-set-bound shape where the uint64 visited bitset beats the
// dist-array probe. Kept to one size so the fixed-count CI bench job stays
// fast; graph generation happens outside the timer.
func BenchmarkRunnerLarge(b *testing.B) {
	g := gen.RandomRegular(100000, 8, 1)
	r := NewRunner(g)
	if r.visited == nil {
		b.Fatal("expected the bitset regime")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(0, nil, nil)
	}
}

// BenchmarkRunnerMaskedTiny is the verifier's shape: a small graph queried
// millions of times with a small fault mask (forces the masked scan path).
func BenchmarkRunnerMaskedTiny(b *testing.B) {
	g := gen.SparseGNP(60, 6, 2015)
	r := NewRunner(g)
	faults := []int{3, 17}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(0, faults, nil)
	}
}
