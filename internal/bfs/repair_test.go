package bfs

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// compareDists demands bit-identical distance tables between the repairer
// and a from-scratch runner after identical runs.
func compareDists(t *testing.T, rep *Repairer, ref *Runner, tag string) {
	t.Helper()
	rd, sd := rep.Dists(), ref.Dists()
	for v := range sd {
		if rd[v] != sd[v] {
			t.Fatalf("%s: dist[%d] = %d repair vs %d scratch", tag, v, rd[v], sd[v])
		}
		if rep.Dist(v) != sd[v] {
			t.Fatalf("%s: Dist(%d) = %d repair vs %d scratch", tag, v, rep.Dist(v), sd[v])
		}
	}
}

// TestRepairRegimeEquivalence drives the repairer through random fault
// sequences in both scan regimes (the fallback and base runs inherit the
// runner's compact/bitset split) and pins every distance table against a
// from-scratch BFS. Sources move mid-sequence to exercise rebasing.
func TestRepairRegimeEquivalence(t *testing.T) {
	for _, bitset := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			g := gen.SparseGNP(300, 6, seed)
			rep := NewRepairer(g)
			ref := NewRunner(g)
			if bitset {
				rep.r.ForceBitset()
				ref.ForceBitset()
			}
			rng := rand.New(rand.NewSource(seed * 29))
			src := rng.Intn(g.N())
			for trial := 0; trial < 60; trial++ {
				var faults []int
				for k := rng.Intn(4); k > 0; k-- {
					faults = append(faults, rng.Intn(g.M()))
				}
				if rng.Intn(10) == 0 {
					src = rng.Intn(g.N())
				}
				rep.Run(src, faults)
				ref.Run(src, faults, nil)
				compareDists(t, rep, ref, "trial")
				if ch, ok := rep.Changed(); ok {
					// The changed list must cover every vertex whose
					// distance actually moved.
					moved := map[int32]bool{}
					for _, v := range ch {
						moved[v] = true
					}
					for v := 0; v < g.N(); v++ {
						if rep.Dist(v) != rep.bDist[v] && !moved[int32(v)] {
							t.Fatalf("trial %d: dist[%d] changed but not in Changed()", trial, v)
						}
					}
				}
			}
		}
	}
}

// TestRepairFaultClasses pins each classification boundary in isolation:
// pure non-tree faults (exact no-op with an empty changed set), a leaf
// subtree, a subtree at the root's own tree edge, and a disconnecting
// fault (path graph: the subtree below the cut is unreachable).
func TestRepairFaultClasses(t *testing.T) {
	g := gen.TreePlusChords(150, 40, 5)
	rep := NewRepairer(g)
	ref := NewRunner(g)
	rep.Run(0, nil)
	var treeEdges, nonTree []int
	for id := 0; id < g.M(); id++ {
		e := g.EdgeAt(id)
		if (rep.bDist[e.V] == rep.bDist[e.U]+1 && int(rep.bParent[e.V]) == e.U) ||
			(rep.bDist[e.U] == rep.bDist[e.V]+1 && int(rep.bParent[e.U]) == e.V) {
			treeEdges = append(treeEdges, id)
		} else {
			nonTree = append(nonTree, id)
		}
	}
	if len(treeEdges) == 0 || len(nonTree) == 0 {
		t.Fatalf("degenerate instance: %d tree, %d non-tree", len(treeEdges), len(nonTree))
	}
	// Pure non-tree faults: exact no-op.
	rep.Run(0, nonTree[:min(3, len(nonTree))])
	ref.Run(0, nonTree[:min(3, len(nonTree))], nil)
	compareDists(t, rep, ref, "non-tree")
	if ch, ok := rep.Changed(); !ok || len(ch) != 0 {
		t.Fatalf("non-tree faults: Changed() = (%v, %v), want empty incremental", ch, ok)
	}
	// Leaf-ish and root subtrees.
	for _, id := range []int{treeEdges[len(treeEdges)-1], treeEdges[0]} {
		rep.Run(0, []int{id})
		ref.Run(0, []int{id}, nil)
		compareDists(t, rep, ref, "subtree")
		if _, ok := rep.Changed(); !ok {
			t.Fatalf("tree fault %d unexpectedly fell back to full recompute", id)
		}
	}
	// Disconnecting fault: cutting a path strands the far side.
	pg := gen.PathGraph(40)
	prep, pref := NewRepairer(pg), NewRunner(pg)
	prep.Run(0, []int{20})
	pref.Run(0, []int{20}, nil)
	compareDists(t, prep, pref, "disconnect")
	for v := 21; v < 40; v++ {
		if prep.Dist(v) != Unreachable {
			t.Fatalf("disconnect: dist[%d] = %d, want Unreachable", v, prep.Dist(v))
		}
	}
}

// TestRepairVolumeFallback forces the volume cap and checks the fallback
// answers are identical and recovery works.
func TestRepairVolumeFallback(t *testing.T) {
	g := gen.SparseGNP(200, 5, 7)
	rep := NewRepairer(g)
	ref := NewRunner(g)
	rep.Run(0, nil)
	rep.volLimit = 1
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		faults := []int{rng.Intn(g.M()), rng.Intn(g.M())}
		rep.Run(0, faults)
		ref.Run(0, faults, nil)
		compareDists(t, rep, ref, "capped")
	}
	rep.volLimit = g.M()
	faults := []int{1, 2, 3}
	rep.Run(0, faults)
	ref.Run(0, faults, nil)
	compareDists(t, rep, ref, "recovered")
}

// FuzzRepairEquivalence fuzzes (graph seed, source, fault selection) and
// demands the repaired table equal the from-scratch table bit for bit, in
// both scan regimes.
func FuzzRepairEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(0), uint64(0x1234), uint8(2))
	f.Add(int64(2), uint16(7), uint64(0xffff_ffff), uint8(4))
	f.Add(int64(3), uint16(299), uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, srcRaw uint16, faultBits uint64, nFaults uint8) {
		g := gen.SparseGNP(120, 5, 1+(seed&7))
		src := int(srcRaw) % g.N()
		k := int(nFaults) % 5
		var faults []int
		for i := 0; i < k; i++ {
			faults = append(faults, int((faultBits>>(i*13))&0x1fff)%g.M())
		}
		for _, bitset := range []bool{false, true} {
			rep := NewRepairer(g)
			ref := NewRunner(g)
			if bitset {
				rep.r.ForceBitset()
				ref.ForceBitset()
			}
			rep.Run(src, faults)
			ref.Run(src, faults, nil)
			compareDists(t, rep, ref, "fuzz")
			// Second run over the same base exercises the undo path.
			rep.Run(src, faults[:k/2])
			ref.Run(src, faults[:k/2], nil)
			compareDists(t, rep, ref, "fuzz-undo")
		}
	})
}

// TestScratchPool pins the arena ownership contract: arenas recycle, the
// repairer is built lazily, and a recycled arena still answers correctly.
func TestScratchPool(t *testing.T) {
	g := gen.SparseGNP(100, 5, 1)
	pool := NewScratchPool(g)
	s := pool.Acquire()
	if s.rep != nil {
		t.Fatal("repairer built eagerly")
	}
	s.Runner().Run(0, nil, nil)
	want := append([]int32(nil), s.Runner().Dists()...)
	s.Repairer().Run(0, []int{1})
	pool.Release(s)
	s2 := pool.Acquire()
	defer pool.Release(s2)
	s2.Runner().Run(0, nil, nil)
	for v, d := range s2.Runner().Dists() {
		if d != want[v] {
			t.Fatalf("recycled arena: dist[%d] = %d, want %d", v, d, want[v])
		}
	}
	s2.Repairer().Run(0, nil)
	for v, d := range s2.Repairer().Dists() {
		if d != want[v] {
			t.Fatalf("recycled repairer: dist[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func BenchmarkRepairVsScratch(b *testing.B) {
	g := gen.SparseGNP(1600, 6, 2015)
	faultSets := make([][]int, 64)
	rng := rand.New(rand.NewSource(9))
	for i := range faultSets {
		faultSets[i] = []int{rng.Intn(g.M()), rng.Intn(g.M())}
	}
	b.Run("scratch", func(b *testing.B) {
		r := NewRunner(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Run(0, faultSets[i%len(faultSets)], nil)
		}
	})
	b.Run("repair", func(b *testing.B) {
		r := NewRepairer(g)
		r.Run(0, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Run(0, faultSets[i%len(faultSets)])
		}
	})
}
