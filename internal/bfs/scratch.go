package bfs

import (
	"sync"

	"repro/internal/graph"
)

// Scratch is a per-worker arena bundling every BFS buffer a fault-event
// loop needs: a from-scratch Runner (dist/parent/queue/bitset/masks) and a
// lazily built Repairer sharing the same graph. Ownership rule: a Scratch
// belongs to exactly one goroutine between Acquire and Release (or for the
// lifetime of a locally constructed one); results read from its Runner or
// Repairer are invalid after Release. Holding a Scratch across fault
// events is the point — the Repairer's base table amortizes across every
// event sharing a source.
type Scratch struct {
	g      *graph.Graph
	runner *Runner
	rep    *Repairer
}

// NewScratch returns an arena bound to g with the Runner materialized.
func NewScratch(g *graph.Graph) *Scratch {
	return &Scratch{g: g, runner: NewRunner(g)}
}

// Runner returns the arena's from-scratch BFS runner.
func (s *Scratch) Runner() *Runner { return s.runner }

// Repairer returns the arena's incremental repairer, building it on first
// use so runner-only workers never pay for the base-tree buffers.
func (s *Scratch) Repairer() *Repairer {
	if s.rep == nil {
		s.rep = NewRepairer(s.g)
	}
	return s.rep
}

// ScratchPool hands out Scratch arenas for one graph. It wraps sync.Pool,
// so arenas (and their warm base tables) are recycled across goroutines
// instead of reallocated per fan-out.
type ScratchPool struct {
	pool sync.Pool
}

// NewScratchPool returns a pool of arenas bound to g.
func NewScratchPool(g *graph.Graph) *ScratchPool {
	p := &ScratchPool{}
	p.pool.New = func() any { return NewScratch(g) }
	return p
}

// Acquire returns an arena for exclusive use by the calling goroutine.
func (p *ScratchPool) Acquire() *Scratch { return p.pool.Get().(*Scratch) }

// Release returns the arena to the pool. The caller must not touch the
// arena, or any result obtained through it, afterwards.
func (p *ScratchPool) Release(s *Scratch) { p.pool.Put(s) }
