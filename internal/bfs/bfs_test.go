package bfs

import (
	"testing"

	"repro/internal/gen"
)

func TestDistancesPathGraph(t *testing.T) {
	g := gen.PathGraph(5)
	d := Distances(g, 0, nil)
	for v := 0; v < 5; v++ {
		if d[v] != int32(v) {
			t.Fatalf("dist(%d) = %d", v, d[v])
		}
	}
}

func TestRunnerFaults(t *testing.T) {
	g := gen.Cycle(8)
	e01, _ := g.EdgeID(0, 1)
	r := NewRunner(g)
	r.Run(0, []int{e01}, nil)
	if r.Dist(1) != 7 {
		t.Fatalf("dist(1) with cut = %d, want 7", r.Dist(1))
	}
	r.Run(0, nil, nil)
	if r.Dist(1) != 1 {
		t.Fatalf("mask leaked: dist(1) = %d", r.Dist(1))
	}
}

func TestRunnerDisabledVertexAndSource(t *testing.T) {
	g := gen.PathGraph(5)
	r := NewRunner(g)
	r.Run(0, nil, []int{2})
	if r.Dist(3) != Unreachable || r.Dist(1) != 1 {
		t.Fatalf("vertex mask wrong: d3=%d d1=%d", r.Dist(3), r.Dist(1))
	}
	r.Run(0, nil, []int{0})
	for v := 0; v < 5; v++ {
		if r.Dist(v) != Unreachable {
			t.Fatalf("disabled source still reaches %d", v)
		}
	}
}

func TestRunnerPathTo(t *testing.T) {
	g := gen.Grid(3, 3)
	r := NewRunner(g)
	r.Run(0, nil, nil)
	p := r.PathTo(8)
	if p == nil || p.Len() != int(r.Dist(8)) || !p.ValidIn(g) {
		t.Fatalf("PathTo(8) = %v (dist %d)", p, r.Dist(8))
	}
	if p.First() != 0 || p.Last() != 8 {
		t.Fatalf("endpoints wrong: %v", p)
	}
	r.Run(0, nil, []int{8})
	if r.PathTo(8) != nil {
		t.Fatalf("unreachable PathTo should be nil")
	}
}

func TestEccentricity(t *testing.T) {
	g := gen.PathGraph(6)
	ecc, all := Eccentricity(g, 0)
	if ecc != 5 || !all {
		t.Fatalf("ecc = %d all=%v", ecc, all)
	}
	ecc, all = Eccentricity(g, 2)
	if ecc != 3 || !all {
		t.Fatalf("ecc from middle = %d", ecc)
	}
}

func TestEpochWraparound(t *testing.T) {
	g := gen.PathGraph(3)
	r := NewRunner(g)
	r.epoch = ^uint32(0)
	e01, _ := g.EdgeID(0, 1)
	r.Run(0, []int{e01}, nil) // wraps
	if r.Dist(1) != Unreachable {
		t.Fatalf("mask ignored after wrap: %d", r.Dist(1))
	}
	r.Run(0, nil, nil)
	if r.Dist(2) != 2 {
		t.Fatalf("post-wrap run wrong: %d", r.Dist(2))
	}
}

func TestDistsSliceReused(t *testing.T) {
	g := gen.PathGraph(3)
	r := NewRunner(g)
	r.Run(0, nil, nil)
	d := r.Dists()
	if d[2] != 2 {
		t.Fatalf("Dists()[2] = %d", d[2])
	}
	r.Run(2, nil, nil)
	if d[0] != 2 { // same backing array, now from source 2
		t.Fatalf("Dists should be runner-owned storage; got %d", d[0])
	}
}
