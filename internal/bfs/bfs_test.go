package bfs

import (
	"testing"

	"repro/internal/gen"
)

func TestDistancesPathGraph(t *testing.T) {
	g := gen.PathGraph(5)
	d := Distances(g, 0, nil)
	for v := 0; v < 5; v++ {
		if d[v] != int32(v) {
			t.Fatalf("dist(%d) = %d", v, d[v])
		}
	}
}

func TestRunnerFaults(t *testing.T) {
	g := gen.Cycle(8)
	e01, _ := g.EdgeID(0, 1)
	r := NewRunner(g)
	r.Run(0, []int{e01}, nil)
	if r.Dist(1) != 7 {
		t.Fatalf("dist(1) with cut = %d, want 7", r.Dist(1))
	}
	r.Run(0, nil, nil)
	if r.Dist(1) != 1 {
		t.Fatalf("mask leaked: dist(1) = %d", r.Dist(1))
	}
}

func TestRunnerDisabledVertexAndSource(t *testing.T) {
	g := gen.PathGraph(5)
	r := NewRunner(g)
	r.Run(0, nil, []int{2})
	if r.Dist(3) != Unreachable || r.Dist(1) != 1 {
		t.Fatalf("vertex mask wrong: d3=%d d1=%d", r.Dist(3), r.Dist(1))
	}
	r.Run(0, nil, []int{0})
	for v := 0; v < 5; v++ {
		if r.Dist(v) != Unreachable {
			t.Fatalf("disabled source still reaches %d", v)
		}
	}
}

func TestRunnerPathTo(t *testing.T) {
	g := gen.Grid(3, 3)
	r := NewRunner(g)
	r.Run(0, nil, nil)
	p := r.PathTo(8)
	if p == nil || p.Len() != int(r.Dist(8)) || !p.ValidIn(g) {
		t.Fatalf("PathTo(8) = %v (dist %d)", p, r.Dist(8))
	}
	if p.First() != 0 || p.Last() != 8 {
		t.Fatalf("endpoints wrong: %v", p)
	}
	r.Run(0, nil, []int{8})
	if r.PathTo(8) != nil {
		t.Fatalf("unreachable PathTo should be nil")
	}
}

func TestEccentricity(t *testing.T) {
	g := gen.PathGraph(6)
	ecc, all := Eccentricity(g, 0)
	if ecc != 5 || !all {
		t.Fatalf("ecc = %d all=%v", ecc, all)
	}
	ecc, all = Eccentricity(g, 2)
	if ecc != 3 || !all {
		t.Fatalf("ecc from middle = %d", ecc)
	}
}

func TestEpochWraparound(t *testing.T) {
	g := gen.PathGraph(4)
	r := NewRunner(g)
	e01, _ := g.EdgeID(0, 1)
	e12, _ := g.EdgeID(1, 2)

	// Leave stale non-zero stamps in BOTH mask arrays, then force the next
	// Run to wrap. The wrap path must clear the stale stamps: if it kept
	// them, epoch 1 would spuriously re-disable edge e12 and vertex 3.
	r.Run(0, []int{e12}, []int{3})
	r.epoch = ^uint32(0)
	r.Run(0, []int{e01}, nil) // wraps; only e01 may be masked
	if r.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", r.epoch)
	}
	if r.Dist(1) != Unreachable {
		t.Fatalf("mask ignored after wrap: dist(1) = %d", r.Dist(1))
	}

	// A wrap with NO masks must take the fast path with clean state too.
	r.epoch = ^uint32(0)
	r.Run(0, nil, nil)
	for v, want := range []int32{0, 1, 2, 3} {
		if r.Dist(v) != want {
			t.Fatalf("post-wrap unmasked dist(%d) = %d, want %d", v, r.Dist(v), want)
		}
	}

	// Vertex masks still apply on the run that wraps.
	r.epoch = ^uint32(0)
	r.Run(0, nil, []int{2})
	if r.Dist(1) != 1 || r.Dist(3) != Unreachable {
		t.Fatalf("vertex mask after wrap: d1=%d d3=%d", r.Dist(1), r.Dist(3))
	}
}

func TestMasksAllocatedLazily(t *testing.T) {
	g := gen.SparseGNP(50, 4, 7)
	r := NewRunner(g)
	r.Run(0, nil, nil)
	if r.eOff != nil || r.vOff != nil {
		t.Fatalf("unmasked run allocated disable masks")
	}
	e01, ok := g.EdgeID(0, int(g.Arcs(0)[0].To))
	if !ok {
		t.Fatalf("no incident edge at 0")
	}
	r.Run(0, []int{e01}, nil)
	if len(r.eOff) != g.M() || len(r.vOff) != g.N() {
		t.Fatalf("masked run did not allocate masks: %d/%d", len(r.eOff), len(r.vOff))
	}
	// The one-shot helpers never mask, so they must not pay the M-sized
	// edge mask either.
	r2 := NewRunner(g)
	r2.Run(0, nil, nil)
	if r2.eOff != nil {
		t.Fatalf("one-shot style run allocated eOff")
	}
}

func TestDistsSliceReused(t *testing.T) {
	g := gen.PathGraph(3)
	r := NewRunner(g)
	r.Run(0, nil, nil)
	d := r.Dists()
	if d[2] != 2 {
		t.Fatalf("Dists()[2] = %d", d[2])
	}
	r.Run(2, nil, nil)
	if d[0] != 2 { // same backing array, now from source 2
		t.Fatalf("Dists should be runner-owned storage; got %d", d[0])
	}
}
