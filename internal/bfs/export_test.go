package bfs

// ForceBitset switches the runner into the bitset scan regime regardless of
// graph size, so tests can pin the two regimes against each other on graphs
// small enough to verify exhaustively.
func (r *Runner) ForceBitset() {
	if r.visited == nil {
		r.visited = make([]uint64, (r.g.N()+63)/64)
	}
}

// CompactLimit exposes the regime threshold to tests.
const CompactLimit = compactLimit
