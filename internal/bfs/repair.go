package bfs

import (
	"slices"

	"repro/internal/graph"
)

// Repairer computes fault-restricted BFS distance tables by incrementally
// repairing a fault-free base table instead of re-running BFS from scratch.
// The invariant (arXiv:1505.00692 §2): a faulted non-tree edge changes no
// distance at all (the BFS tree path to every vertex survives), and a
// faulted tree edge can only change vertices in the subtree hanging below
// it. Run therefore classifies each fault, detaches the union R of the
// affected subtrees, seeds every vertex of R from its surviving boundary
// arcs (whose far endpoints keep their exact base distance), and repairs R
// level-synchronously. When R's arc volume exceeds the graph's — repairing
// would cost more than starting over — it falls back to the full Runner,
// which keeps PR 8's compact/bitset regime split; the base and fallback
// runs inherit that split too, so large graphs still scan via the bitset.
//
// Distances are the only output: BFS parent choice is discovery-order
// dependent and the repair schedule legitimately differs from scratch, so
// consumers that need paths (oracle routing) keep the Runner. Distance
// tables are bit-identical to a from-scratch run by construction.
//
// A Repairer is not safe for concurrent use; create one per goroutine and
// keep it — it amortizes its base table across every fault set sharing a
// source, and rebases automatically (one full BFS) when the source moves.
type Repairer struct {
	g *graph.Graph
	r *Runner // base runs + full-recompute fallback

	src     int // base source; -1 until the first Run
	bDist   []int32
	bParent []int32
	// Children of the base BFS tree in CSR form.
	kidOff []int32
	kids   []int32

	// out is the live table: base distances with the current repair
	// patched in. Every patched vertex is in region; undo restores them.
	out    []int32
	region []int32

	ep    uint32
	inR   []uint32
	done  []uint32
	eMask []uint32

	seeds     []int64 // packed (level<<32 | vertex), sorted by level
	cur, next []int32

	full     bool
	volLimit int
}

// NewRepairer returns a repairer bound to g. The base table is built
// lazily on the first Run (it needs a source).
func NewRepairer(g *graph.Graph) *Repairer {
	n := g.N()
	r := &Repairer{
		g:        g,
		r:        NewRunner(g),
		src:      -1,
		bDist:    make([]int32, n),
		bParent:  make([]int32, n),
		kidOff:   make([]int32, n+1),
		out:      make([]int32, n),
		region:   nil,
		inR:      make([]uint32, n),
		done:     make([]uint32, n),
		eMask:    make([]uint32, g.M()),
		cur:      make([]int32, 0, n),
		next:     make([]int32, 0, n),
		volLimit: g.M(),
	}
	if r.volLimit < 256 {
		r.volLimit = 256
	}
	return r
}

// rebase runs the fault-free BFS from src and freezes it as the base
// table, rebuilding the child CSR.
func (r *Repairer) rebase(src int) {
	r.r.Run(src, nil, nil)
	n := r.g.N()
	copy(r.bDist, r.r.dist)
	for v := 0; v < n; v++ {
		if r.bDist[v] > 0 {
			r.bParent[v] = r.r.parent[v]
		} else {
			r.bParent[v] = -1
		}
	}
	for i := range r.kidOff {
		r.kidOff[i] = 0
	}
	for v := 0; v < n; v++ {
		if p := r.bParent[v]; p >= 0 {
			r.kidOff[p+1]++
		}
	}
	for i := 0; i < n; i++ {
		r.kidOff[i+1] += r.kidOff[i]
	}
	if cap(r.kids) < int(r.kidOff[n]) {
		r.kids = make([]int32, r.kidOff[n])
	} else {
		r.kids = r.kids[:r.kidOff[n]]
	}
	if r.seeds == nil {
		r.seeds = make([]int64, 0, 64)
	}
	fill := r.cur[:0]
	fill = append(fill, r.kidOff[:n]...)
	for v := 0; v < n; v++ {
		if p := r.bParent[v]; p >= 0 {
			r.kids[fill[p]] = int32(v)
			fill[p]++
		}
	}
	copy(r.out, r.bDist)
	r.src = src
	r.region = r.region[:0]
}

// undo restores the live table to the base for every vertex the previous
// repair detached.
func (r *Repairer) undo() {
	for _, v := range r.region {
		r.out[v] = r.bDist[v]
	}
	r.region = r.region[:0]
}

// Run computes the distance table from src with the given edges disabled
// (the edge-failure model; vertex faults go through the Runner). Results
// are valid until the next Run.
func (r *Repairer) Run(src int, disabledEdges []int) {
	if src != r.src {
		r.rebase(src)
	} else {
		r.undo()
	}
	r.full = false
	if len(disabledEdges) == 0 {
		return
	}
	r.ep++
	if r.ep == 0 { // wrapped; reset stamps
		for i := range r.inR {
			r.inR[i], r.done[i] = 0, 0
		}
		for i := range r.eMask {
			r.eMask[i] = 0
		}
		r.ep = 1
	}
	ep := r.ep
	for _, id := range disabledEdges {
		r.eMask[id] = ep
	}
	// Classify: a fault is a tree edge iff its deeper endpoint claims it
	// as the parent link; only those detach a subtree.
	for _, id := range disabledEdges {
		e := r.g.EdgeAt(id)
		c := -1
		if r.bDist[e.V] > 0 && int(r.bParent[e.V]) == e.U && r.bDist[e.V] == r.bDist[e.U]+1 {
			c = e.V
		} else if r.bDist[e.U] > 0 && int(r.bParent[e.U]) == e.V && r.bDist[e.U] == r.bDist[e.V]+1 {
			c = e.U
		}
		if c >= 0 && r.inR[c] != ep {
			r.inR[c] = ep
			r.region = append(r.region, int32(c))
		}
	}
	if len(r.region) == 0 {
		return // every fault is a non-tree edge: exact no-op
	}
	if !r.detach() {
		r.full = true
		r.region = r.region[:0]
		r.r.Run(src, disabledEdges, nil)
		return
	}
	r.repair()
}

// detach expands region to the full descendant set of its roots under the
// base tree, or reports false when the arc volume passes volLimit.
//
//ftbfs:hotpath
func (r *Repairer) detach() bool {
	ep := r.ep
	vol := 0
	for i := 0; i < len(r.region); i++ {
		v := r.region[i]
		vol += r.g.Degree(int(v))
		if vol > r.volLimit {
			return false
		}
		for _, c := range r.kids[r.kidOff[v]:r.kidOff[v+1]] {
			if r.inR[c] != ep {
				r.inR[c] = ep
				r.region = append(r.region, c)
			}
		}
	}
	return true
}

// repair re-settles the detached region level-synchronously. Each x in R
// is seeded with min over surviving boundary arcs (u,x), u outside R, of
// bDist(u)+1 — exact because outside distances are unchanged — and the
// two-queue sweep admits seeds in level order, so every vertex settles at
// its true fault-restricted distance (last-crossing argument). Region
// vertices never reached stay Unreachable.
//
//ftbfs:hotpath
func (r *Repairer) repair() {
	ep := r.ep
	inR, done, eMask := r.inR, r.done, r.eMask
	bDist, out := r.bDist, r.out
	r.seeds = r.seeds[:0]
	for _, x := range r.region {
		out[x] = Unreachable
		best := int32(-1)
		for _, a := range r.g.Arcs(int(x)) {
			if inR[a.To] == ep || eMask[a.ID] == ep || bDist[a.To] < 0 {
				continue
			}
			if d := bDist[a.To] + 1; best < 0 || d < best {
				best = d
			}
		}
		if best >= 0 {
			r.seeds = append(r.seeds, int64(best)<<32|int64(x))
		}
	}
	if len(r.seeds) == 0 {
		return // region fully disconnected from the survivors
	}
	slices.Sort(r.seeds)
	cur, next := r.cur[:0], r.next[:0]
	si := 0
	d := int32(r.seeds[0] >> 32)
	for si < len(r.seeds) || len(cur) > 0 {
		if len(cur) == 0 && si < len(r.seeds) {
			if lv := int32(r.seeds[si] >> 32); lv > d {
				d = lv // jump over empty levels
			}
		}
		for si < len(r.seeds) && int32(r.seeds[si]>>32) == d {
			x := int32(r.seeds[si] & 0xffffffff)
			si++
			if done[x] != ep {
				cur = append(cur, x)
			}
		}
		next = next[:0]
		for _, x := range cur {
			if done[x] == ep {
				continue
			}
			done[x] = ep
			out[x] = d
			for _, a := range r.g.Arcs(int(x)) {
				if inR[a.To] != ep || done[a.To] == ep || eMask[a.ID] == ep {
					continue
				}
				next = append(next, a.To)
			}
		}
		cur, next = next, cur
		d++
	}
	r.cur, r.next = cur[:0], next[:0]
}

// Dist returns the hop distance to v under the last Run, or Unreachable.
func (r *Repairer) Dist(v int) int32 {
	if r.full {
		return r.r.dist[v]
	}
	return r.out[v]
}

// Dists returns the distance table of the last Run. The slice is owned by
// the repairer and overwritten by the next Run.
func (r *Repairer) Dists() []int32 {
	if r.full {
		return r.r.dist
	}
	return r.out
}

// Changed returns the vertices whose distance may differ from the
// fault-free base table after the last Run, and ok=true when the run was
// served incrementally (possibly as a no-op: an empty slice means no
// distance changed). ok=false means a full recompute ran and every vertex
// may differ. The slice is valid until the next Run.
func (r *Repairer) Changed() ([]int32, bool) {
	if r.full {
		return nil, false
	}
	return r.region, true
}

// Base returns the fault-free distance table for the current source — the
// table deltas from Changed decode against. Faulted Runs never touch it
// (they patch out, or run the fallback Runner's own table), so it stays
// valid until the source moves and the repairer rebases; callers must not
// mutate it. Nil before the first Run.
func (r *Repairer) Base() []int32 {
	if r.src < 0 {
		return nil
	}
	return r.bDist
}
