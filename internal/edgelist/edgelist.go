// Package edgelist reads and writes the plain-text graph format used by the
// command-line tools:
//
//	# comment
//	n <vertexCount>
//	<u> <v>
//	<u> <v>
//	...
//
// Vertices are 0-based integers; one edge per line; '#' starts a comment.
// The "n" header is optional — without it the vertex count is one more than
// the largest endpoint mentioned.
package edgelist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// LenientStats counts the lines ReadLenient skipped instead of rejecting.
type LenientStats struct {
	// SelfLoops is the number of "u u" lines dropped.
	SelfLoops int
	// Duplicates is the number of lines repeating an already-seen edge
	// (in either orientation) that were dropped.
	Duplicates int
}

// Skipped returns the total number of dropped edge lines.
func (s LenientStats) Skipped() int { return s.SelfLoops + s.Duplicates }

// Read parses a graph from r. Malformed lines, out-of-range endpoints,
// self-loops and duplicate edges are errors reported with the offending
// line number.
func Read(r io.Reader) (*graph.Graph, error) {
	g, _, err := parse(r, false)
	return g, err
}

// ReadLenient parses a graph from r, skipping self-loop and duplicate-edge
// lines instead of failing — real-world edge lists frequently contain both.
// The returned stats count what was dropped. Malformed lines and
// out-of-range endpoints remain errors.
func ReadLenient(r io.Reader) (*graph.Graph, LenientStats, error) {
	return parse(r, true)
}

func parse(r io.Reader, lenient bool) (*graph.Graph, LenientStats, error) {
	var stats LenientStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var n = -1
	type pair struct{ u, v, line int }
	var edges []pair
	maxV := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, stats, fmt.Errorf("edgelist: line %d: want \"n <count>\"", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, stats, fmt.Errorf("edgelist: line %d: bad vertex count %q", lineNo, fields[1])
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, stats, fmt.Errorf("edgelist: line %d: want \"<u> <v>\", got %q", lineNo, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, stats, fmt.Errorf("edgelist: line %d: bad endpoints %q", lineNo, line)
		}
		edges = append(edges, pair{u, v, lineNo})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, stats, fmt.Errorf("edgelist: %w", err)
	}
	if n < 0 {
		n = maxV + 1
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n {
			return nil, stats, fmt.Errorf("edgelist: line %d: edge (%d,%d) out of range [0,%d)", e.line, e.u, e.v, n)
		}
		if e.u == e.v {
			if lenient {
				stats.SelfLoops++
				continue
			}
			return nil, stats, fmt.Errorf("edgelist: line %d: self-loop at %d", e.line, e.u)
		}
		if b.HasEdge(e.u, e.v) {
			if lenient {
				stats.Duplicates++
				continue
			}
			return nil, stats, fmt.Errorf("edgelist: line %d: duplicate edge (%d,%d)", e.line, e.u, e.v)
		}
		// Range, self-loop and duplicate rejections all happened above (so
		// they could carry line numbers / be skipped leniently).
		b.MustAddEdge(e.u, e.v)
	}
	return b.Freeze(), stats, nil
}

// Write emits g in the package format (with the "n" header so isolated
// vertices round-trip).
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.SortedEdges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSubset emits only the edges of g whose ID is in keep, preserving the
// full vertex count (the structure-file format of the CLI tools).
func WriteSubset(w io.Writer, g *graph.Graph, keep *graph.EdgeSet) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	var ferr error
	keep.ForEach(func(id int) {
		if ferr != nil {
			return
		}
		e := g.EdgeAt(id)
		_, ferr = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
	})
	if ferr != nil {
		return ferr
	}
	return bw.Flush()
}
