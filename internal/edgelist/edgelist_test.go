package edgelist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestReadBasic(t *testing.T) {
	in := `
# a comment
n 5
0 1
1 2  # trailing comment
3 4
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(3, 4) {
		t.Fatal("edges missing")
	}
}

func TestReadInfersN(t *testing.T) {
	g, err := Read(strings.NewReader("0 1\n1 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("inferred n = %d", g.N())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad n":        "n x\n",
		"negative n":   "n -3\n",
		"three fields": "0 1 2\n",
		"non-numeric":  "a b\n",
		"self-loop":    "1 1\n",
		"duplicate":    "0 1\n1 0\n",
		"out of range": "n 2\n0 5\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(in)); err == nil {
				t.Fatalf("input %q accepted", in)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	g := gen.GNP(20, 0.2, 5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestWriteSubset(t *testing.T) {
	g := graph.New(4)
	a := g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	c := g.MustAddEdge(2, 3)
	keep := graph.NewEdgeSet(g.M())
	keep.Add(a)
	keep.Add(c)
	var buf bytes.Buffer
	if err := WriteSubset(&buf, g, keep); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 2 || back.HasEdge(1, 2) {
		t.Fatalf("subset wrong: n=%d m=%d", back.N(), back.M())
	}
}
