package edgelist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestReadBasic(t *testing.T) {
	in := `
# a comment
n 5
0 1
1 2  # trailing comment
3 4
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(3, 4) {
		t.Fatal("edges missing")
	}
}

func TestReadInfersN(t *testing.T) {
	g, err := Read(strings.NewReader("0 1\n1 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("inferred n = %d", g.N())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad n":        "n x\n",
		"negative n":   "n -3\n",
		"three fields": "0 1 2\n",
		"non-numeric":  "a b\n",
		"self-loop":    "1 1\n",
		"duplicate":    "0 1\n1 0\n",
		"out of range": "n 2\n0 5\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(in)); err == nil {
				t.Fatalf("input %q accepted", in)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	g := gen.GNP(20, 0.2, 5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestWriteSubset(t *testing.T) {
	gb := graph.NewBuilder(4)
	a := gb.MustAddEdge(0, 1)
	gb.MustAddEdge(1, 2)
	c := gb.MustAddEdge(2, 3)
	g := gb.Freeze()
	keep := graph.NewEdgeSet(g.M())
	keep.Add(a)
	keep.Add(c)
	var buf bytes.Buffer
	if err := WriteSubset(&buf, g, keep); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 2 || back.HasEdge(1, 2) {
		t.Fatalf("subset wrong: n=%d m=%d", back.N(), back.M())
	}
}

func TestReadErrorLineNumbers(t *testing.T) {
	cases := map[string]struct {
		in   string
		line string
	}{
		"self-loop":    {"0 1\n\n2 2\n", "line 3"},
		"duplicate":    {"# header\n0 1\n1 0\n", "line 3"},
		"out of range": {"n 2\n0 1\n0 5\n", "line 3"},
		"malformed":    {"0 1\n0 1 2\n", "line 2"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("input %q accepted", c.in)
			}
			if !strings.Contains(err.Error(), c.line) {
				t.Fatalf("error %q does not name %s", err, c.line)
			}
		})
	}
}

func TestReadLenientSkipsAndCounts(t *testing.T) {
	in := `n 4
0 1
1 1   # self-loop: skipped
1 2
2 1   # duplicate (reversed): skipped
0 1   # duplicate: skipped
2 3
3 3   # self-loop: skipped
`
	g, stats, err := ReadLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4/3", g.N(), g.M())
	}
	if stats.SelfLoops != 2 || stats.Duplicates != 2 || stats.Skipped() != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v missing", e)
		}
	}
}

func TestReadLenientStillRejectsOutOfRange(t *testing.T) {
	_, _, err := ReadLenient(strings.NewReader("n 2\n0 1\n0 9\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("out-of-range not rejected with position: %v", err)
	}
}
