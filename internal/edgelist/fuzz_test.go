package edgelist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the parser against arbitrary input: it must never
// panic, and any successfully parsed graph must round-trip through Write.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"n 5\n0 1\n1 2\n",
		"# only a comment\n",
		"0 1\n1 7\n",
		"n 0\n",
		"n 3\n0 1 # c\n",
		"n -1\n",
		"0\n",
		"x y\n",
		"n 2\n0 1\n0 1\n",
		strings.Repeat("0 1\n", 3),
		"n 9999999\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			// The lenient reader must never panic either.
			_, _, _ = ReadLenient(bytes.NewReader(data))
			return
		}
		// Whatever the strict reader accepts, the lenient reader must
		// accept identically, with nothing skipped.
		lg, stats, lerr := ReadLenient(bytes.NewReader(data))
		if lerr != nil || stats.Skipped() != 0 || lg.N() != g.N() || lg.M() != g.M() {
			t.Fatalf("lenient diverged on strict-valid input: %v %+v", lerr, stats)
		}
		if g.N() > 1<<22 {
			return // writing giant headers is pointless
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip re-read: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.N(), back.M(), g.N(), g.M())
		}
	})
}
