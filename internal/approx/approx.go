// Package approx implements Section 5 of the paper: the O(log n)
// approximation for the Minimum FT-MBFS problem. For every vertex v_i the
// edges kept around v_i are chosen by a greedy set cover over the universe
// U = {⟨s, F⟩ : s ∈ S, F ⊆ E, |F| ≤ f}: the set of a neighbor u_j covers
// the pairs for which some shortest s–v_i path in G \ F enters v_i through
// u_j (Eq. 16: dist(s, u_j, G\F) = dist(s, v_i, G\F) − 1).
package approx

//ftbfs:builders

import (
	"fmt"

	"repro/internal/bfs"
	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/setcover"
)

// MaxUniverse caps |S| · (number of fault sets); beyond it Build refuses to
// run rather than consume unbounded memory (the algorithm is Θ(|U|·m)).
const MaxUniverse = 3_000_000

// Build runs the Section-5 approximation and returns an f-failure FT-MBFS
// structure for the given sources whose size is within O(log n) of the
// minimum. Supported f: 0, 1, 2 (the universe grows as m^f).
//
// Options.Ctx cancels the pass cooperatively between BFS table rows and
// cover vertices (Build then returns ctx.Err() and no structure);
// Options.Progress counts one work unit per distance-table row and one
// per covered vertex.
func Build(g *graph.Graph, sources []int, f int, opts *core.Options) (*core.Structure, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("approx: empty source set")
	}
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("approx: source %d out of range [0,%d)", s, g.N())
		}
	}
	if f < 0 || f > 2 {
		return nil, fmt.Errorf("approx: supported fault budgets are 0..2, got %d", f)
	}
	faultSets := enumerateFaultSets(g.M(), f)
	if len(faultSets)*len(sources) > MaxUniverse {
		return nil, fmt.Errorf("approx: universe %d×%d exceeds cap %d",
			len(faultSets), len(sources), MaxUniverse)
	}
	ctx := opts.Context()
	prog := opts.ProgressSink()
	// Every work unit here is a whole BFS (table row) or a greedy cover
	// pass, so poll per unit: the check is negligible against the unit
	// and cancellation lands within one search instead of 32.
	poll := cancel.New(ctx, 1)
	opts.AnnounceTotal(int64(len(sources)*len(faultSets)) + int64(g.N()))

	// Distance tables: dist[s][F] is the BFS distance array of G \ F from
	// source index s.
	dist := make([][][]int32, len(sources))
	r := bfs.NewRunner(g)
	for si, s := range sources {
		dist[si] = make([][]int32, len(faultSets))
		for fi, fs := range faultSets {
			if err := poll.Poll(); err != nil {
				return nil, err
			}
			r.Run(s, fs, nil)
			row := make([]int32, g.N())
			copy(row, r.Dists())
			dist[si][fi] = row
			prog.AddUnits(1)
			prog.AddDijkstras(1)
		}
	}

	st := &core.Structure{
		G:       g,
		Sources: append([]int(nil), sources...),
		Faults:  f,
		Edges:   graph.NewEdgeSet(g.M()),
	}
	st.Stats.Dijkstras = len(sources) * len(faultSets)

	// Per-vertex greedy cover.
	for v := 0; v < g.N(); v++ {
		if err := poll.Poll(); err != nil {
			return nil, err
		}
		n0 := st.Edges.Len()
		if err := coverVertex(g, v, sources, faultSets, dist, st.Edges); err != nil {
			return nil, err
		}
		prog.AddUnits(1)
		prog.AddEdges(int64(st.Edges.Len() - n0))
	}
	return st, nil
}

// coverVertex selects edges incident to v via set cover and adds them to
// acc.
func coverVertex(g *graph.Graph, v int, sources []int, faultSets [][]int, dist [][][]int32, acc *graph.EdgeSet) error {
	type nb struct {
		u, id int
	}
	arcs := g.Arcs(v)
	nbs := make([]nb, 0, len(arcs))
	for _, a := range arcs {
		nbs = append(nbs, nb{u: int(a.To), id: int(a.ID)})
	}
	if len(nbs) == 0 {
		return nil
	}
	// Universe: pairs ⟨source, fault set⟩ under which v is reachable and
	// v is not the source itself. Element index = running counter.
	type pair struct{ si, fi int }
	var universe []pair
	for si, s := range sources {
		if s == v {
			continue
		}
		for fi := range dist[si] {
			if dist[si][fi][v] != bfs.Unreachable {
				universe = append(universe, pair{si: si, fi: fi})
			}
		}
	}
	if len(universe) == 0 {
		return nil
	}
	sets := make([][]int, len(nbs))
	for j, b := range nbs {
		var s []int
		for ei, p := range universe {
			// A shortest path can enter v through u_j only when the
			// connecting edge itself survives F (Eq. 16 implicitly
			// assumes this: "goes through the neighbor u_j").
			if containsID(faultSets[p.fi], b.id) {
				continue
			}
			dv := dist[p.si][p.fi][v]
			du := dist[p.si][p.fi][b.u]
			if du != bfs.Unreachable && du == dv-1 {
				s = append(s, ei)
			}
		}
		sets[j] = s
	}
	chosen, ok := setcover.Greedy(len(universe), sets)
	if !ok {
		return fmt.Errorf("approx: vertex %d: universe not coverable (internal invariant broken)", v)
	}
	for _, j := range chosen {
		acc.Add(nbs[j].id)
	}
	return nil
}

// containsID reports whether the (tiny) fault set holds id.
func containsID(fs []int, id int) bool {
	for _, e := range fs {
		if e == id {
			return true
		}
	}
	return false
}

// enumerateFaultSets lists all F ⊆ {0..m-1} with |F| ≤ f, starting with ∅.
func enumerateFaultSets(m, f int) [][]int {
	out := [][]int{nil}
	if f >= 1 {
		for a := 0; a < m; a++ {
			out = append(out, []int{a})
		}
	}
	if f >= 2 {
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				out = append(out, []int{a, b})
			}
		}
	}
	return out
}

// NumFaultSets returns the number of fault sets |F| ≤ f over m edges.
func NumFaultSets(m, f int) int {
	n := 1
	if f >= 1 {
		n += m
	}
	if f >= 2 {
		n += m * (m - 1) / 2
	}
	return n
}
