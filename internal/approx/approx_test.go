package approx

import (
	"context"
	"errors"

	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestBuildErrors(t *testing.T) {
	g := gen.PathGraph(4)
	if _, err := Build(g, nil, 1, nil); err == nil {
		t.Fatal("empty sources accepted")
	}
	if _, err := Build(g, []int{9}, 1, nil); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Build(g, []int{0}, 3, nil); err == nil {
		t.Fatal("f=3 accepted")
	}
}

func TestNumFaultSets(t *testing.T) {
	if NumFaultSets(10, 0) != 1 || NumFaultSets(10, 1) != 11 || NumFaultSets(10, 2) != 56 {
		t.Fatalf("NumFaultSets wrong: %d %d %d",
			NumFaultSets(10, 0), NumFaultSets(10, 1), NumFaultSets(10, 2))
	}
	if got := len(enumerateFaultSets(10, 2)); got != 56 {
		t.Fatalf("enumerateFaultSets = %d", got)
	}
}

func TestApproxVerifiesAcrossFamilies(t *testing.T) {
	cases := []struct {
		name    string
		f       int
		sources []int
	}{
		{"f0", 0, []int{0}},
		{"f1", 1, []int{0}},
		{"f2", 2, []int{0}},
		{"f1-multi", 1, []int{0, 7}},
		{"f2-multi", 2, []int{0, 5, 11}},
	}
	g := gen.GNP(16, 0.25, 7)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st, err := Build(g, c.sources, c.f, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep := verify.Structure(g, st, c.sources, c.f, nil)
			if !rep.OK {
				t.Fatalf("verify failed: %v", rep.Violations)
			}
		})
	}
}

func TestApproxOnMoreFamilies(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":   gen.Grid(4, 4),
		"cycle":  gen.Cycle(12),
		"chords": gen.TreePlusChords(18, 4, 5),
	}
	for name, gr := range graphs {
		for _, f := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/f%d", name, f), func(t *testing.T) {
				st, err := Build(gr, []int{0}, f, nil)
				if err != nil {
					t.Fatal(err)
				}
				rep := verify.Structure(gr, st, []int{0}, f, nil)
				if !rep.OK {
					t.Fatalf("verify: %v", rep.Violations)
				}
				// A cycle's only f≥1 FT-BFS is the whole cycle.
				if name == "cycle" && st.NumEdges() != gr.M() {
					t.Fatalf("cycle structure dropped edges: %d < %d", st.NumEdges(), gr.M())
				}
			})
		}
	}
}

// TestApproxNearOptimalOnTree: on a tree the unique FT-BFS is the tree
// itself (distances are preserved trivially; unreachable stays unreachable),
// so the approximation must return exactly n-1 edges.
func TestApproxNearOptimalOnTree(t *testing.T) {
	g := gen.TreePlusChords(20, 0, 3)
	st, err := Build(g, []int{0}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != g.N()-1 {
		t.Fatalf("tree approx kept %d edges, want %d", st.NumEdges(), g.N()-1)
	}
}

// TestApproxWithinLogFactorOfExact compares the approximation against the
// Theorem-1.1 construction (an upper bound on any optimum's achievable
// size): approx ≤ (ln|U|+1) · OPT must hold, and in practice approx should
// be within a log factor of the exact structure.
func TestApproxWithinLogFactorOfExact(t *testing.T) {
	g := gen.GNP(18, 0.25, 13)
	ap, err := Build(g, []int{0}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The exact structure is feasible, so OPT ≤ |ex|; greedy is within
	// ln(U)+1 of OPT per vertex, hence globally within that of 2·OPT
	// (each edge counted from both endpoints).
	u := float64(NumFaultSets(g.M(), 2))
	bound := (math.Log(u) + 1) * 2 * float64(ex.NumEdges())
	if float64(ap.NumEdges()) > bound {
		t.Fatalf("approx %d exceeds theoretical bound %.1f", ap.NumEdges(), bound)
	}
}

func TestApproxUniverseCap(t *testing.T) {
	g := gen.Complete(60) // m = 1770 → ~1.57M pairs for f=2, ×3 sources > cap
	if _, err := Build(g, []int{0, 1, 2}, 2, nil); err == nil {
		t.Fatal("universe cap not enforced")
	}
}

// TestBuildCancelled: the approximation pass honors Options.Ctx between
// distance-table rows and cover vertices.
func TestBuildCancelled(t *testing.T) {
	g := gen.SparseGNP(30, 4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Build(g, []int{0}, 1, &core.Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st != nil {
		t.Fatal("partial structure escaped")
	}
	// With a live context the counters complete and the result is
	// unaffected by the progress plumbing.
	prog := &core.Progress{}
	st, err = Build(g, []int{0}, 1, &core.Options{Progress: prog})
	if err != nil {
		t.Fatal(err)
	}
	ps := prog.Snapshot()
	if ps.UnitsDone != ps.UnitsTotal || ps.UnitsTotal == 0 {
		t.Fatalf("units %d/%d at completion", ps.UnitsDone, ps.UnitsTotal)
	}
	if ps.Dijkstras != int64(st.Stats.Dijkstras) {
		t.Fatalf("progress Dijkstras %d != stats %d", ps.Dijkstras, st.Stats.Dijkstras)
	}
	if ps.EdgesKept != int64(st.NumEdges()) {
		t.Fatalf("progress edges %d != structure %d", ps.EdgesKept, st.NumEdges())
	}
}
