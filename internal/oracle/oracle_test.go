package oracle

import (
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
)

func TestNewRequiresSources(t *testing.T) {
	g := gen.PathGraph(3)
	st := &core.Structure{G: g}
	if _, err := New(st); err == nil {
		t.Fatal("sourceless structure accepted")
	}
}

// TestOracleMatchesGroundTruth compares every oracle answer against BFS on
// G \ F for all |F| ≤ 2.
func TestOracleMatchesGroundTruth(t *testing.T) {
	g := gen.GNP(16, 0.25, 8)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	truth := bfs.NewRunner(g)
	check := func(faults []int) {
		t.Helper()
		truth.Run(0, faults, nil)
		d, err := o.Dists(0, faults)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if d[v] != truth.Dist(v) {
				t.Fatalf("faults %v target %d: oracle %d, truth %d", faults, v, d[v], truth.Dist(v))
			}
		}
	}
	check(nil)
	for a := 0; a < g.M(); a++ {
		check([]int{a})
		for b := a + 1; b < g.M(); b += 7 { // stride keeps the test fast
			check([]int{a, b})
		}
	}
}

func TestOracleRouteValid(t *testing.T) {
	g := gen.Grid(4, 4)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	truth := bfs.NewRunner(g)
	for a := 0; a < g.M(); a++ {
		faults := []int{a}
		truth.Run(0, faults, nil)
		for v := 1; v < g.N(); v++ {
			p, err := o.Route(0, v, faults)
			if err != nil {
				t.Fatal(err)
			}
			want := truth.Dist(v)
			if want == bfs.Unreachable {
				if p != nil {
					t.Fatalf("route to unreachable %d", v)
				}
				continue
			}
			if p == nil || int32(p.Len()) != want || !p.ValidIn(g) {
				t.Fatalf("route faults %v → %d wrong: %v (want len %d)", faults, v, p, want)
			}
			// The route must avoid the faults and stay inside H.
			for _, e := range p.Edges() {
				id, ok := g.EdgeID(e.U, e.V)
				if !ok || !st.Edges.Has(id) {
					t.Fatalf("route uses edge outside structure: %v", e)
				}
				if id == a {
					t.Fatalf("route uses failed edge")
				}
			}
		}
	}
}

func TestOracleValidation(t *testing.T) {
	g := gen.PathGraph(5)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(3, 1, nil); err == nil {
		t.Fatal("non-source accepted")
	}
	if _, err := o.Dist(0, 1, []int{0, 1, 2}); err == nil {
		t.Fatal("fault budget ignored")
	}
	if _, err := o.Dist(0, 99, nil); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := o.Dist(0, 1, []int{99}); err == nil {
		t.Fatal("bad fault edge accepted")
	}
	if _, err := o.Route(0, 99, nil); err == nil {
		t.Fatal("route bad target accepted")
	}
	if o.Faults() != 2 || len(o.Sources()) != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestOracleCacheReuse(t *testing.T) {
	g := gen.Cycle(8)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := o.Dists(0, []int{1, 0}) // unsorted on purpose
	if err != nil {
		t.Fatal(err)
	}
	d2, err := o.Dists(0, []int{0, 1}) // same set, canonical order
	if err != nil {
		t.Fatal(err)
	}
	if &d1[0] != &d2[0] {
		t.Fatal("cache missed an order-insensitive hit")
	}
}

func TestOracleMultiSource(t *testing.T) {
	g := gen.GNP(14, 0.3, 5)
	st, err := core.BuildMultiSource(g, []int{0, 7}, nil, core.BuildDual)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	truth := bfs.NewRunner(g)
	for _, s := range []int{0, 7} {
		truth.Run(s, []int{2}, nil)
		d, err := o.Dist(s, 5, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		if d != truth.Dist(5) {
			t.Fatalf("source %d: oracle %d, truth %d", s, d, truth.Dist(5))
		}
	}
}
