package oracle

import (
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
)

func TestNewRequiresSources(t *testing.T) {
	g := gen.PathGraph(3)
	st := &core.Structure{G: g}
	if _, err := New(st); err == nil {
		t.Fatal("sourceless structure accepted")
	}
}

// TestOracleMatchesGroundTruth compares every oracle answer against BFS on
// G \ F for all |F| ≤ 2.
func TestOracleMatchesGroundTruth(t *testing.T) {
	g := gen.GNP(16, 0.25, 8)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	truth := bfs.NewRunner(g)
	check := func(faults []int) {
		t.Helper()
		truth.Run(0, faults, nil)
		d, err := o.Dists(0, faults)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if d[v] != truth.Dist(v) {
				t.Fatalf("faults %v target %d: oracle %d, truth %d", faults, v, d[v], truth.Dist(v))
			}
		}
	}
	check(nil)
	for a := 0; a < g.M(); a++ {
		check([]int{a})
		for b := a + 1; b < g.M(); b += 7 { // stride keeps the test fast
			check([]int{a, b})
		}
	}
}

func TestOracleRouteValid(t *testing.T) {
	g := gen.Grid(4, 4)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	truth := bfs.NewRunner(g)
	for a := 0; a < g.M(); a++ {
		faults := []int{a}
		truth.Run(0, faults, nil)
		for v := 1; v < g.N(); v++ {
			p, err := o.Route(0, v, faults)
			if err != nil {
				t.Fatal(err)
			}
			want := truth.Dist(v)
			if want == bfs.Unreachable {
				if p != nil {
					t.Fatalf("route to unreachable %d", v)
				}
				continue
			}
			if p == nil || int32(p.Len()) != want || !p.ValidIn(g) {
				t.Fatalf("route faults %v → %d wrong: %v (want len %d)", faults, v, p, want)
			}
			// The route must avoid the faults and stay inside H.
			for _, e := range p.Edges() {
				id, ok := g.EdgeID(e.U, e.V)
				if !ok || !st.Edges.Has(id) {
					t.Fatalf("route uses edge outside structure: %v", e)
				}
				if id == a {
					t.Fatalf("route uses failed edge")
				}
			}
		}
	}
}

func TestOracleValidation(t *testing.T) {
	g := gen.PathGraph(5)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(3, 1, nil); err == nil {
		t.Fatal("non-source accepted")
	}
	if _, err := o.Dist(0, 1, []int{0, 1, 2}); err == nil {
		t.Fatal("fault budget ignored")
	}
	if _, err := o.Dist(0, 99, nil); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := o.Dist(0, 1, []int{99}); err == nil {
		t.Fatal("bad fault edge accepted")
	}
	if _, err := o.Route(0, 99, nil); err == nil {
		t.Fatal("route bad target accepted")
	}
	if o.Faults() != 2 || len(o.Sources()) != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestOracleCacheReuse(t *testing.T) {
	g := gen.Cycle(8)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := o.Dists(0, []int{1, 0}) // unsorted on purpose
	if err != nil {
		t.Fatal(err)
	}
	d2, err := o.Dists(0, []int{0, 1}) // same set, canonical order
	if err != nil {
		t.Fatal(err)
	}
	if &d1[0] != &d2[0] {
		t.Fatal("cache missed an order-insensitive hit")
	}
}

// TestDuplicateFaultsDeduped checks that repeated fault IDs describe one
// failure event: they must not consume extra budget slots and must share
// one cache entry with the deduplicated set.
func TestDuplicateFaultsDeduped(t *testing.T) {
	g := gen.GNP(16, 0.3, 3)
	st, err := core.BuildSingle(g, 0, nil) // f = 1: duplicates must still fit
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(st)
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	d1, err := o.Dists(0, []int{3, 3})
	if err != nil {
		t.Fatalf("duplicate single fault rejected against f=1 budget: %v", err)
	}
	d2, err := o.Dists(0, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if &d1[0] != &d2[0] {
		t.Fatal("faults {3,3} and {3} did not share one cache entry")
	}
	cs := set.CacheStats()
	if cs.Len != 1 || cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("want one entry, one miss, one hit; got %+v", cs)
	}
	truth := bfs.NewRunner(g)
	truth.Run(0, []int{3}, nil)
	for v := 0; v < g.N(); v++ {
		if d1[v] != truth.Dist(v) {
			t.Fatalf("target %d: oracle %d, truth %d", v, d1[v], truth.Dist(v))
		}
	}
	// Distinct duplicated pairs on an f=1 structure still exceed the budget.
	if _, err := o.Dists(0, []int{3, 3, 5}); err == nil {
		t.Fatal("two distinct faults accepted against f=1 budget")
	}
}

// TestShardedCacheCorrectness drives many failure events through an
// explicitly multi-shard memo and checks answers, aggregated counters and
// the per-shard capacity split.
func TestShardedCacheCorrectness(t *testing.T) {
	g := gen.GNP(20, 0.25, 9)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 20
	set, err := NewSetSharded(st, capacity, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cs := set.CacheStats(); cs.Shards != 4 || cs.Capacity != capacity {
		t.Fatalf("want 4 shards of total capacity %d, got %+v", capacity, cs)
	}
	o := set.Handle()
	truth := bfs.NewRunner(g)
	for round := 0; round < 2; round++ {
		for a := 0; a < g.M(); a++ {
			d, err := o.Dists(0, []int{a})
			if err != nil {
				t.Fatal(err)
			}
			truth.Run(0, []int{a}, nil)
			for v := 0; v < g.N(); v++ {
				if d[v] != truth.Dist(v) {
					t.Fatalf("fault %d target %d: oracle %d, truth %d", a, v, d[v], truth.Dist(v))
				}
			}
		}
	}
	cs := set.CacheStats()
	if cs.Len > capacity {
		t.Fatalf("cache holds %d entries over capacity %d", cs.Len, capacity)
	}
	if cs.Misses == 0 || cs.Evictions == 0 {
		t.Fatalf("expected misses and evictions from scanning over capacity: %+v", cs)
	}
	if cs.Hits+cs.Misses != int64(2*g.M()) {
		t.Fatalf("lookup accounting off: %+v for %d lookups", cs, 2*g.M())
	}
	// A back-to-back repeat is a guaranteed hit in its shard.
	if _, err := o.Dists(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	before := set.CacheStats().Hits
	if _, err := o.Dists(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	if got := set.CacheStats().Hits; got != before+1 {
		t.Fatalf("repeat lookup did not hit: %d -> %d", before, got)
	}
}

// TestShardCountClamps pins the shard-count policy: powers of two,
// clamped so no shard ends up empty, one shard for tiny or disabled
// caches.
func TestShardCountClamps(t *testing.T) {
	cases := []struct{ capacity, shards, want int }{
		{1024, 1, 1},
		{1024, 4, 4},
		{1024, 7, 4},  // rounded down to a power of two
		{4, 16, 4},    // clamped to capacity
		{3, 16, 2},    // clamped to the largest power of two ≤ capacity
		{0, 16, 1},    // disabled cache: one inert shard
		{-5, 8, 1},    // disabled cache
		{1024, 0, 1},  // degenerate shard request
		{1024, -3, 1}, // degenerate shard request
	}
	for _, tc := range cases {
		c := newShardedCache(tc.capacity, 0, tc.shards)
		if len(c.shards) != tc.want {
			t.Errorf("newShardedCache(%d, 0, %d): %d shards, want %d",
				tc.capacity, tc.shards, len(c.shards), tc.want)
		}
		total := 0
		for _, sh := range c.shards {
			if tc.capacity > 0 && len(c.shards) > 1 && sh.maxEntries == 0 {
				t.Errorf("newShardedCache(%d, 0, %d): empty shard", tc.capacity, tc.shards)
			}
			total += sh.maxEntries
		}
		if tc.capacity > 0 && total != tc.capacity {
			t.Errorf("newShardedCache(%d, 0, %d): shard capacities sum to %d",
				tc.capacity, tc.shards, total)
		}
	}
}

func TestOracleMultiSource(t *testing.T) {
	g := gen.GNP(14, 0.3, 5)
	st, err := core.BuildMultiSource(g, []int{0, 7}, nil, core.BuildDual)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	truth := bfs.NewRunner(g)
	for _, s := range []int{0, 7} {
		truth.Run(s, []int{2}, nil)
		d, err := o.Dist(s, 5, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		if d != truth.Dist(5) {
			t.Fatalf("source %d: oracle %d, truth %d", s, d, truth.Dist(5))
		}
	}
}
