package oracle

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkOracleQueryCached measures the memoized path: all targets under
// one failure event cost one BFS over the sparse structure.
func BenchmarkOracleQueryCached(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		b.Fatal(err)
	}
	faults := []int{3}
	if _, err := o.Dist(0, 1, faults); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Dist(0, i%g.N(), faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleSetParallel measures the concurrent hot path: many
// goroutines answering cached failure events through pooled handles over
// one shared set (the ftbfsd serving shape). Allocations should be zero
// after warmup.
func BenchmarkOracleSetParallel(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	set, err := NewSet(st)
	if err != nil {
		b.Fatal(err)
	}
	warm := set.Handle()
	events := [][]int{{3}, {9}, {21}, {30}}
	for _, f := range events {
		if _, err := warm.Dist(0, 1, f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		o := set.Acquire()
		defer set.Release(o)
		i := 0
		for pb.Next() {
			if _, err := o.Dist(0, i%g.N(), events[i%len(events)]); err != nil {
				b.Error(err) // Fatal must not be called off the main goroutine
				return
			}
			i++
		}
	})
}

// BenchmarkCacheShardScaling contrasts the PR 1 single-mutex memo
// (shards=1) with the sharded memo on the concurrent cached-dist path.
// Run with -cpu 8 to measure the contention at 8 goroutines; the sharded
// variant must scale ≥ 2× over the single mutex there (EXPERIMENTS.md).
func BenchmarkCacheShardScaling(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	events := [][]int{{3}, {9}, {21}, {30}, {44}, {61}, {75}, {90}}
	for _, shards := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			set, err := NewSetSharded(st, DefaultCacheEntries, shards)
			if err != nil {
				b.Fatal(err)
			}
			warm := set.Handle()
			for _, f := range events {
				if _, err := warm.Dist(0, 1, f); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				o := set.Acquire()
				defer set.Release(o)
				i := 0
				for pb.Next() {
					if _, err := o.Dist(0, i%g.N(), events[i%len(events)]); err != nil {
						b.Error(err) // Fatal must not be called off the main goroutine
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkDeltaLookup contrasts the two cached point-lookup paths: a
// delta-encoded entry (binary search over the changed set, base fallback)
// against a full-table entry (direct index). The acceptance bar: delta
// within 2× of full.
func BenchmarkDeltaLookup(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	set, err := NewSetBytes(st, 4<<20) // ample: nothing evicts mid-run
	if err != nil {
		b.Fatal(err)
	}
	o := set.Handle()
	// Find one fault of each encoding by watching the entry-kind counters:
	// which side of the n/8 threshold an event lands on depends on where
	// its edge sits in the BFS tree.
	deltaFault, fullFault := -1, -1
	for a := 0; a < g.M() && (deltaFault < 0 || fullFault < 0); a++ {
		before := set.CacheStats()
		if _, err := o.Dist(0, 1, []int{a}); err != nil {
			b.Fatal(err)
		}
		after := set.CacheStats()
		if deltaFault < 0 && after.DeltaEntries > before.DeltaEntries {
			deltaFault = a
		}
		if fullFault < 0 && after.FullEntries > before.FullEntries {
			fullFault = a
		}
	}
	run := func(b *testing.B, fault int) {
		if fault < 0 {
			b.Skip("no event of this encoding on the bench graph")
		}
		faults := []int{fault}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Dist(0, i%g.N(), faults); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("delta", func(b *testing.B) { run(b, deltaFault) })
	b.Run("full", func(b *testing.B) { run(b, fullFault) })
}

// BenchmarkZipfServing measures end-to-end point-lookup throughput on a
// Zipf-skewed failure-event stream at one fixed byte budget — the memo
// design that holds more events wins on hit rate, not lookup latency.
// "full" emulates the pre-delta memo (budget/(4n) whole-table entries);
// "delta" hands the same budget to the byte-accounted cache. The
// full-scale sweep lives in ftbfsbench -zipf.
func BenchmarkZipfServing(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 32 << 10
	rng := rand.New(rand.NewSource(7))
	z := rand.NewZipf(rng, 1.2, 1, uint64(g.M()-1))
	const streamLen = 1 << 14
	faults := make([]int, streamLen)
	targets := make([]int, streamLen)
	for i := range faults {
		faults[i] = int(z.Uint64())
		targets[i] = rng.Intn(g.N())
	}
	mk := map[string]func() (*OracleSet, error){
		"full":  func() (*OracleSet, error) { return NewSetCapacity(st, budget/(4*g.N())) },
		"delta": func() (*OracleSet, error) { return NewSetBytes(st, budget) },
	}
	fault := make([]int, 1)
	for _, name := range []string{"full", "delta"} {
		b.Run(name, func(b *testing.B) {
			set, err := mk[name]()
			if err != nil {
				b.Fatal(err)
			}
			o := set.Handle()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % streamLen
				fault[0] = faults[j]
				if _, err := o.Dist(0, targets[j], fault); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOracleVsFullGraphBFS contrasts answering a fresh failure event
// inside the structure with BFS over the full graph.
func BenchmarkOracleVsFullGraphBFS(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("structure", func(b *testing.B) {
		o, err := New(st)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Dists(0, []int{i % g.M()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-graph", func(b *testing.B) {
		r := bfs.NewRunner(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Run(0, []int{i % g.M()}, nil)
		}
	})
}

// BenchmarkOracleQueryUncached measures the unmemoized path — every query
// pays canonicalization, fault translation and one BFS over the structure's
// CSR subgraph (cache disabled). This is the floor the LRU saves against,
// and the path batch queries hit on every distinct failure event.
func BenchmarkOracleQueryUncached(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	set, err := NewSetCapacity(st, 0) // no memo
	if err != nil {
		b.Fatal(err)
	}
	o := set.Handle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Dists(0, []int{i % g.M()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleSetBuild measures NewSet itself: materializing H as its
// own graph plus the G→H edge map.
func BenchmarkOracleSetBuild(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSet(st); err != nil {
			b.Fatal(err)
		}
	}
}
