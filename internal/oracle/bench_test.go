package oracle

import (
	"fmt"
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkOracleQueryCached measures the memoized path: all targets under
// one failure event cost one BFS over the sparse structure.
func BenchmarkOracleQueryCached(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	o, err := New(st)
	if err != nil {
		b.Fatal(err)
	}
	faults := []int{3}
	if _, err := o.Dist(0, 1, faults); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Dist(0, i%g.N(), faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleSetParallel measures the concurrent hot path: many
// goroutines answering cached failure events through pooled handles over
// one shared set (the ftbfsd serving shape). Allocations should be zero
// after warmup.
func BenchmarkOracleSetParallel(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	set, err := NewSet(st)
	if err != nil {
		b.Fatal(err)
	}
	warm := set.Handle()
	events := [][]int{{3}, {9}, {21}, {30}}
	for _, f := range events {
		if _, err := warm.Dist(0, 1, f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		o := set.Acquire()
		defer set.Release(o)
		i := 0
		for pb.Next() {
			if _, err := o.Dist(0, i%g.N(), events[i%len(events)]); err != nil {
				b.Error(err) // Fatal must not be called off the main goroutine
				return
			}
			i++
		}
	})
}

// BenchmarkCacheShardScaling contrasts the PR 1 single-mutex memo
// (shards=1) with the sharded memo on the concurrent cached-dist path.
// Run with -cpu 8 to measure the contention at 8 goroutines; the sharded
// variant must scale ≥ 2× over the single mutex there (EXPERIMENTS.md).
func BenchmarkCacheShardScaling(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	events := [][]int{{3}, {9}, {21}, {30}, {44}, {61}, {75}, {90}}
	for _, shards := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			set, err := NewSetSharded(st, DefaultCacheEntries, shards)
			if err != nil {
				b.Fatal(err)
			}
			warm := set.Handle()
			for _, f := range events {
				if _, err := warm.Dist(0, 1, f); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				o := set.Acquire()
				defer set.Release(o)
				i := 0
				for pb.Next() {
					if _, err := o.Dist(0, i%g.N(), events[i%len(events)]); err != nil {
						b.Error(err) // Fatal must not be called off the main goroutine
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkOracleVsFullGraphBFS contrasts answering a fresh failure event
// inside the structure with BFS over the full graph.
func BenchmarkOracleVsFullGraphBFS(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("structure", func(b *testing.B) {
		o, err := New(st)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Dists(0, []int{i % g.M()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-graph", func(b *testing.B) {
		r := bfs.NewRunner(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Run(0, []int{i % g.M()}, nil)
		}
	})
}

// BenchmarkOracleQueryUncached measures the unmemoized path — every query
// pays canonicalization, fault translation and one BFS over the structure's
// CSR subgraph (cache disabled). This is the floor the LRU saves against,
// and the path batch queries hit on every distinct failure event.
func BenchmarkOracleQueryUncached(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	set, err := NewSetCapacity(st, 0) // no memo
	if err != nil {
		b.Fatal(err)
	}
	o := set.Handle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Dists(0, []int{i % g.M()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleSetBuild measures NewSet itself: materializing H as its
// own graph plus the G→H edge map.
func BenchmarkOracleSetBuild(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSet(st); err != nil {
			b.Fatal(err)
		}
	}
}
