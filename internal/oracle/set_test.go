package oracle

import (
	"sync"
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
)

// TestCacheEviction drives more distinct failure events than the cache
// holds and checks LRU bookkeeping plus answer correctness throughout.
func TestCacheEviction(t *testing.T) {
	g := gen.GNP(16, 0.3, 3)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 8
	set, err := NewSetCapacity(st, capacity)
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	truth := bfs.NewRunner(g)
	events := g.M()
	if events <= capacity {
		t.Fatalf("test graph too small: %d events, capacity %d", events, capacity)
	}
	for a := 0; a < events; a++ {
		d, err := o.Dists(0, []int{a})
		if err != nil {
			t.Fatal(err)
		}
		truth.Run(0, []int{a}, nil)
		for v := 0; v < g.N(); v++ {
			if d[v] != truth.Dist(v) {
				t.Fatalf("fault %d target %d: oracle %d, truth %d", a, v, d[v], truth.Dist(v))
			}
		}
	}
	cs := set.CacheStats()
	if cs.Len > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", cs.Len, capacity)
	}
	if cs.Evictions != int64(events-capacity) {
		t.Fatalf("evictions = %d, want %d", cs.Evictions, events-capacity)
	}
	if cs.Misses != int64(events) {
		t.Fatalf("misses = %d, want %d", cs.Misses, events)
	}

	// The most recent event must still be cached (a hit); the oldest must
	// have been evicted (a miss that recomputes correctly).
	before := set.CacheStats()
	if _, err := o.Dists(0, []int{events - 1}); err != nil {
		t.Fatal(err)
	}
	if got := set.CacheStats(); got.Hits != before.Hits+1 {
		t.Fatalf("recent event was not a cache hit: %+v -> %+v", before, got)
	}
	d, err := o.Dists(0, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.CacheStats(); got.Misses != before.Misses+1 {
		t.Fatalf("oldest event was not evicted: %+v -> %+v", before, got)
	}
	truth.Run(0, []int{0}, nil)
	for v := 0; v < g.N(); v++ {
		if d[v] != truth.Dist(v) {
			t.Fatalf("recomputed event wrong at %d: %d vs %d", v, d[v], truth.Dist(v))
		}
	}
}

// TestCacheDisabled checks that a zero-capacity set stays correct with the
// memo off.
func TestCacheDisabled(t *testing.T) {
	g := gen.Grid(3, 3)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSetCapacity(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	truth := bfs.NewRunner(g)
	for a := 0; a < g.M(); a++ {
		truth.Run(0, []int{a}, nil)
		d, err := o.Dist(0, g.N()-1, []int{a})
		if err != nil {
			t.Fatal(err)
		}
		if d != truth.Dist(g.N()-1) {
			t.Fatalf("fault %d: oracle %d, truth %d", a, d, truth.Dist(g.N()-1))
		}
	}
	if cs := set.CacheStats(); cs.Len != 0 || cs.Hits != 0 {
		t.Fatalf("disabled cache recorded state: %+v", cs)
	}
}

// TestSharedCacheAcrossHandles checks that a table computed through one
// handle is served to another by pointer identity.
func TestSharedCacheAcrossHandles(t *testing.T) {
	g := gen.Cycle(10)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(st)
	if err != nil {
		t.Fatal(err)
	}
	a, b := set.Handle(), set.Handle()
	d1, err := a.Dists(0, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.Dists(0, []int{5, 2}) // same event, different order
	if err != nil {
		t.Fatal(err)
	}
	if &d1[0] != &d2[0] {
		t.Fatal("handles did not share one cached table")
	}
}

// TestConcurrentPool exercises ≥ 8 concurrent clients querying one shared
// structure through Acquire/Release; run under -race it checks the shared
// set and LRU for data races, and every answer against ground truth.
func TestConcurrentPool(t *testing.T) {
	g := gen.GNP(24, 0.2, 11)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSetCapacity(st, 32) // small: force concurrent evictions
	if err != nil {
		t.Fatal(err)
	}
	// Precompute ground truth for every single- and a spread of dual-fault
	// events.
	type event struct{ faults []int }
	var events []event
	for a := 0; a < g.M(); a++ {
		events = append(events, event{[]int{a}})
		if b := (a * 7) % g.M(); b != a {
			events = append(events, event{[]int{a, b}})
		}
	}
	truth := make([][]int32, len(events))
	for i, ev := range events {
		truth[i] = bfs.Distances(g, 0, ev.faults)
	}

	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := set.Acquire()
			defer set.Release(o)
			for round := 0; round < 3; round++ {
				for i := range events {
					idx := (i + c*13) % len(events)
					d, err := o.Dists(0, events[idx].faults)
					if err != nil {
						errs <- err
						return
					}
					for v := 0; v < g.N(); v++ {
						if d[v] != truth[idx][v] {
							t.Errorf("client %d event %v target %d: got %d want %d",
								c, events[idx].faults, v, d[v], truth[idx][v])
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cs := set.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("expected concurrent evictions with %d events over capacity 32, got %+v", len(events), cs)
	}
	// Hits under churn are scheduling-dependent; check the hit path
	// deterministically now that the clients are done.
	o := set.Acquire()
	defer set.Release(o)
	if _, err := o.Dists(0, events[0].faults); err != nil {
		t.Fatal(err)
	}
	before := set.CacheStats().Hits
	if _, err := o.Dists(0, events[0].faults); err != nil {
		t.Fatal(err)
	}
	if got := set.CacheStats().Hits; got != before+1 {
		t.Fatalf("repeat query did not hit: %d -> %d", before, got)
	}
}

// TestReleaseForeignHandle checks the Release guard.
func TestReleaseForeignHandle(t *testing.T) {
	g := gen.PathGraph(4)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewSet(st)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSet(st)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release of a foreign handle did not panic")
		}
	}()
	s2.Release(s1.Handle())
}

// TestQueryPathAllocationFree proves the hot query path allocates nothing
// once the failure event is cached.
func TestQueryPathAllocationFree(t *testing.T) {
	g := gen.SparseGNP(200, 6, 2)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(st)
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	faults := []int{9}
	if _, err := o.Dist(0, 1, faults); err != nil { // warm the cache + scratch
		t.Fatal(err)
	}
	v := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := o.Dist(0, v%g.N(), faults); err != nil {
			t.Fatal(err)
		}
		v++
	})
	if allocs != 0 {
		t.Fatalf("cached Dist allocates %.1f objects per query, want 0", allocs)
	}
}
