package oracle

import (
	"runtime"
	"sync"
)

// The shared memo: a two-tier store of per-failure-event distance tables.
//
// Tier 1 — this file — is an LRU of per-event entries, sharded by key hash
// into independently-locked sub-caches so concurrent clients on different
// failure events never contend on one mutex. Keys are (source,
// canonicalized fault set), hashed to a uint64 with the full key retained
// per entry, so lookups compare against the stored key and a 64-bit hash
// collision degrades to a miss, never to a wrong answer. Entries come in
// two encodings: a FULL table (4 bytes × n) or a DELTA against the
// source's pinned fault-free base table — sorted changed-vertex IDs plus
// their new distances (8 bytes × changed vertices), chosen when the
// incremental repairer proves the event touched at most n/deltaDenom
// vertices. A typical fault detaches a tiny subtree, so most entries cost
// a few hundred bytes instead of 4n, and a fixed byte budget holds orders
// of magnitude more events.
//
// Tier 0 — the pinned bases — lives on the OracleSet (see oracle.go),
// outside the LRU: a delta entry is meaningless without its base, so
// bases are never evicted and are accounted separately (PinnedBytes).
//
// Eviction is byte-accounted: each entry is charged its payload plus a
// fixed overhead, and inserts evict least-recently-used entries until both
// the entry cap and the byte budget hold. The hot lookup path performs no
// allocation: the caller hashes into scratch buffers, the cache returns a
// by-value DistView, and keys are only copied on insert.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey mixes the source and the sorted fault IDs (FNV-1a over their
// little-endian bytes). mixWord used to be a closure here; ftbfslint's
// hotalloc analyzer flagged it ("closure in a //ftbfs:hotpath function:
// func literals allocate their captured environment") — it captured h, so
// every hash of every lookup allocated. A top-level helper threads the
// state explicitly and costs nothing.
//
//ftbfs:hotpath
func hashKey(src int, canon []int32) uint64 {
	h := uint64(fnvOffset64)
	h = mixWord(h, uint32(src))
	for _, id := range canon {
		h = mixWord(h, uint32(id))
	}
	return h
}

// mixWord folds one little-endian word into an FNV-1a state.
//
//ftbfs:hotpath
func mixWord(h uint64, v uint32) uint64 {
	h = (h ^ uint64(v&0xff)) * fnvPrime64
	h = (h ^ uint64(v>>8&0xff)) * fnvPrime64
	h = (h ^ uint64(v>>16&0xff)) * fnvPrime64
	h = (h ^ uint64(v>>24&0xff)) * fnvPrime64
	return h
}

// deltaDenom sets the delta/full threshold: an event is stored as a delta
// only when the repairer's changed set holds at most n/deltaDenom
// vertices. The byte breakeven is n/2 (8 bytes per changed vertex vs 4
// bytes per vertex of a full table); n/8 stays well under it so a delta
// entry is at least 4× smaller than a full table AND its binary-searched
// point lookup stays short. Events past the threshold (or served by the
// repairer's full-recompute fallback) are stored as full tables, which are
// also the faster representation once most of the table changed.
const deltaDenom = 8

// entryOverheadBytes is the fixed per-entry cost charged on top of the
// payload: the cacheEntry struct, its map slot, the intrusive-list links
// and the key copy's allocator rounding. Charging it uniformly keeps the
// byte budget honest for no-op deltas (every fault a non-tree edge: zero
// changed vertices), which would otherwise be free and unbounded in
// number.
const entryOverheadBytes = 128

// CacheStats is a snapshot of the shared memo's counters, aggregated
// across every shard plus the set's pinned tier-0 bases.
type CacheStats struct {
	Len       int   // tier-1 entries currently cached
	Capacity  int   // configured entry cap (0 = no entry bound)
	Shards    int   // independently-locked sub-caches
	Hits      int64 // lookups answered from the memo (either tier)
	Misses    int64 // lookups that ran a BFS or repair
	Evictions int64 // tier-1 entries dropped to stay within the bounds

	BytesUsed     int64 // tier-1 bytes currently accounted against the budget
	BytesCapacity int64 // configured byte budget (0 = no byte bound)
	DeltaEntries  int   // tier-1 entries stored as deltas vs a pinned base
	FullEntries   int   // tier-1 entries stored as full tables
	PinnedBytes   int64 // tier-0 pinned base tables, outside the LRU budget
}

// DistView is a read-only view of one failure event's distance table.
// Exactly one representation is populated: Full is the complete table
// (full-table entries, pinned bases and uncached computations), or
// Base+Keys+Vals describe a delta — Keys holds the sorted vertex IDs whose
// distance may differ from the fault-free Base, Vals their distances, and
// every other vertex keeps Base's value. All slices are shared immutable
// state; callers must not mutate them.
type DistView struct {
	Full []int32
	Base []int32
	Keys []int32
	Vals []int32
}

// At returns the distance to v: a full-table index, or a binary search of
// the delta falling back to the base.
//
//ftbfs:hotpath
func (t DistView) At(v int) int32 {
	if t.Full != nil {
		return t.Full[v]
	}
	w := int32(v)
	lo, hi := 0, len(t.Keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.Keys[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.Keys) && t.Keys[lo] == w {
		return t.Vals[lo]
	}
	return t.Base[v]
}

// Len returns the table's vertex count.
func (t DistView) Len() int {
	if t.Full != nil {
		return len(t.Full)
	}
	return len(t.Base)
}

// AppendTo materializes the full table into dst (pass dst[:0] to reuse a
// scratch buffer) and returns it: one copy of the base with the delta
// patched in, or one copy of the full table.
func (t DistView) AppendTo(dst []int32) []int32 {
	if t.Full != nil {
		return append(dst, t.Full...)
	}
	off := len(dst)
	dst = append(dst, t.Base...)
	for i, k := range t.Keys {
		dst[off+int(k)] = t.Vals[i]
	}
	return dst
}

type cacheEntry struct {
	hash   uint64
	src    int32
	faults []int32 // canonical (sorted) fault IDs; the true key

	// Exactly one encoding, immutable once inserted: full, or the delta
	// triple (base is the source's pinned tier-0 table the delta decodes
	// against — pinned, so the reference can never dangle).
	full             []int32
	base, keys, vals []int32

	bytes      int64 // accounted cost: payload + entryOverheadBytes
	prev, next *cacheEntry
}

// view returns the entry's by-value lookup view (no allocation).
//
//ftbfs:hotpath
func (e *cacheEntry) view() DistView {
	if e.full != nil {
		return DistView{Full: e.full}
	}
	return DistView{Base: e.base, Keys: e.keys, Vals: e.vals}
}

// cost is the bytes the entry is charged against the budget.
func (e *cacheEntry) cost() int64 {
	b := int64(entryOverheadBytes) + 4*int64(len(e.faults))
	if e.full != nil {
		return b + 4*int64(len(e.full))
	}
	return b + 8*int64(len(e.keys))
}

// lruCache is an intrusively-linked LRU protected by a single mutex,
// bounded by an entry cap and/or a byte budget. A disabled cache is valid
// and caches nothing.
type lruCache struct {
	mu         sync.Mutex
	enabled    bool  // immutable after newLRUCache
	maxEntries int   // immutable; 0 = no entry bound
	maxBytes   int64 // immutable; 0 = no byte bound

	entries map[uint64]*cacheEntry // guarded by mu
	head    cacheEntry             // guarded by mu; sentinel, head.next is most recent

	bytes     int64 // guarded by mu; sum of entry costs
	deltaN    int   // guarded by mu; delta-encoded entries
	fullN     int   // guarded by mu; full-table entries
	hits      int64 // guarded by mu
	misses    int64 // guarded by mu
	evictions int64 // guarded by mu
}

func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	c := &lruCache{
		enabled:    maxEntries > 0 || maxBytes > 0,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
	if c.enabled {
		c.entries = make(map[uint64]*cacheEntry, maxEntries)
	}
	c.head.prev = &c.head
	c.head.next = &c.head
	return c
}

//ftbfs:hotpath
func keyEqual(e *cacheEntry, src int32, canon []int32) bool {
	if e.src != src || len(e.faults) != len(canon) {
		return false
	}
	for i, id := range canon {
		if e.faults[i] != id {
			return false
		}
	}
	return true
}

// moveToFront relinks e as most recent.
//
//ftbfs:holds mu
//ftbfs:hotpath
func (c *lruCache) moveToFront(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	c.pushFront(e)
}

// get returns the cached view for the key, moving its entry to the front.
// It never allocates.
//
//ftbfs:hotpath
func (c *lruCache) get(hash uint64, src int32, canon []int32) (DistView, bool) {
	if !c.enabled {
		return DistView{}, false
	}
	c.mu.Lock()
	e, ok := c.entries[hash]
	if !ok || !keyEqual(e, src, canon) {
		c.misses++
		c.mu.Unlock()
		return DistView{}, false
	}
	c.moveToFront(e)
	c.hits++
	v := e.view()
	c.mu.Unlock()
	return v, true
}

// add inserts a fully-built entry (the caller allocates and copies outside
// the lock), evicting least-recently-used entries until both bounds hold,
// and returns the view now cached for the key (e's, or the incumbent of a
// concurrent insert race so all clients share one table).
func (c *lruCache) add(e *cacheEntry) DistView {
	if !c.enabled {
		return e.view()
	}
	e.bytes = e.cost()
	c.mu.Lock()
	defer c.mu.Unlock()
	if in, ok := c.entries[e.hash]; ok {
		if keyEqual(in, e.src, e.faults) {
			// Another handle inserted the same event concurrently; keep
			// the incumbent so every client shares one table.
			c.moveToFront(in)
			return in.view()
		}
		// True 64-bit hash collision: replace the incumbent (the map can
		// hold one entry per hash; correctness is preserved either way).
		c.unlink(in)
	}
	if c.maxBytes > 0 && e.bytes > c.maxBytes {
		// Bigger than the whole budget: it can never fit, so serve it
		// uncached instead of evicting everything for nothing.
		return e.view()
	}
	for (c.maxEntries > 0 && len(c.entries) >= c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes+e.bytes > c.maxBytes) {
		lru := c.head.prev
		if lru == &c.head {
			break
		}
		c.unlink(lru)
		c.evictions++
	}
	c.entries[e.hash] = e
	c.pushFront(e)
	c.bytes += e.bytes
	if e.full != nil {
		c.fullN++
	} else {
		c.deltaN++
	}
	return e.view()
}

// pushFront links e in as most recent.
//
//ftbfs:holds mu
//ftbfs:hotpath
func (c *lruCache) pushFront(e *cacheEntry) {
	e.next = c.head.next
	e.prev = &c.head
	e.next.prev = e
	c.head.next = e
}

// unlink removes e from the list, the index and the byte account.
//
//ftbfs:holds mu
func (c *lruCache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	delete(c.entries, e.hash)
	c.bytes -= e.bytes
	if e.full != nil {
		c.fullN--
	} else {
		c.deltaN--
	}
}

func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Len:           len(c.entries),
		Capacity:      c.maxEntries,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		BytesUsed:     c.bytes,
		BytesCapacity: c.maxBytes,
		DeltaEntries:  c.deltaN,
		FullEntries:   c.fullN,
	}
}

// ---- sharding ----

// minShardEntries keeps each shard's LRU large enough to be useful; the
// default shard count is halved until this floor holds (small caches
// degenerate to one shard, preserving strict global LRU order).
const minShardEntries = 8

// minShardBytes is the same floor for byte-budgeted caches without an
// entry cap: a shard's budget must hold at least a few full tables (or
// hundreds of deltas) before sharding pays.
const minShardBytes = 64 << 10

// shardedCache splits the memo into power-of-two many lruCache shards
// selected by the low bits of the key hash. Shards are independently
// locked, so lookups of distinct failure events proceed without
// contention; within one shard the LRU semantics are unchanged. The
// configured bounds are immutable, so budget reads never take a lock.
type shardedCache struct {
	shards  []*lruCache
	mask    uint64
	enabled bool  // immutable: memoization on at all
	entries int   // immutable: configured total entry cap (0 = none)
	bytes   int64 // immutable: configured total byte budget (0 = none)
}

// defaultShardCount rounds GOMAXPROCS up to a power of two, then halves
// until every shard holds at least minShardEntries — or, for a pure byte
// budget, minShardBytes (one shard for small or disabled caches).
func defaultShardCount(entries int, bytes int64) int {
	if entries < 0 || (entries == 0 && bytes <= 0) {
		return 1
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n *= 2
	}
	for n > 1 {
		if entries > 0 && entries/n < minShardEntries {
			n /= 2
			continue
		}
		if entries == 0 && bytes/int64(n) < minShardBytes {
			n /= 2
			continue
		}
		break
	}
	return n
}

// floorPow2 rounds n down to a power of two (1 for n ≤ 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// newShardedCache builds a memo bounded by an entry cap (entries > 0)
// and/or a byte budget (bytes > 0), split over `shards` sub-caches
// (rounded down to a power of two, clamped so no shard has zero
// capacity). entries < 0, or no bound at all, disables caching.
func newShardedCache(entries int, bytes int64, shards int) *shardedCache {
	enabled := entries > 0 || (entries == 0 && bytes > 0)
	if !enabled {
		entries, bytes, shards = 0, 0, 1
	} else if entries > 0 {
		shards = floorPow2(min(shards, entries))
	} else {
		shards = floorPow2(shards)
	}
	c := &shardedCache{
		shards:  make([]*lruCache, shards),
		mask:    uint64(shards - 1),
		enabled: enabled,
		entries: max(entries, 0),
		bytes:   max(bytes, 0),
	}
	eBase, eRem := 0, 0
	if entries > 0 {
		eBase, eRem = entries/shards, entries%shards
	}
	var bBase, bRem int64
	if bytes > 0 {
		bBase, bRem = bytes/int64(shards), bytes%int64(shards)
	}
	for i := range c.shards {
		se, sb := eBase, bBase
		if i < eRem {
			se++
		}
		if int64(i) < bRem {
			sb++
		}
		if !enabled {
			se, sb = 0, 0
		}
		c.shards[i] = newLRUCache(se, sb)
	}
	return c
}

//ftbfs:hotpath
func (c *shardedCache) shard(hash uint64) *lruCache {
	return c.shards[hash&c.mask]
}

//ftbfs:hotpath
func (c *shardedCache) get(hash uint64, src int32, canon []int32) (DistView, bool) {
	return c.shard(hash).get(hash, src, canon)
}

func (c *shardedCache) add(e *cacheEntry) DistView {
	return c.shard(e.hash).add(e)
}

func (c *shardedCache) stats() CacheStats {
	out := CacheStats{Shards: len(c.shards)}
	for _, sh := range c.shards {
		s := sh.stats()
		out.Len += s.Len
		out.Capacity += s.Capacity
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.BytesUsed += s.BytesUsed
		out.BytesCapacity += s.BytesCapacity
		out.DeltaEntries += s.DeltaEntries
		out.FullEntries += s.FullEntries
	}
	return out
}
