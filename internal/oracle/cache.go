package oracle

import (
	"runtime"
	"sync"
)

// The shared memo: an LRU of per-failure-event distance tables, sharded by
// key hash into independently-locked sub-caches so concurrent clients on
// different failure events never contend on one mutex. Keys are (source,
// canonicalized fault set), hashed to a uint64 with the full key retained
// per entry, so lookups compare against the stored key and a 64-bit hash
// collision degrades to a miss, never to a wrong answer. The hot lookup
// path performs no allocation: the caller hashes into scratch buffers and
// the cache only copies the key on insert.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey mixes the source and the sorted fault IDs (FNV-1a over their
// little-endian bytes). mixWord used to be a closure here; ftbfslint's
// hotalloc analyzer flagged it ("closure in a //ftbfs:hotpath function:
// func literals allocate their captured environment") — it captured h, so
// every hash of every lookup allocated. A top-level helper threads the
// state explicitly and costs nothing.
//
//ftbfs:hotpath
func hashKey(src int, canon []int32) uint64 {
	h := uint64(fnvOffset64)
	h = mixWord(h, uint32(src))
	for _, id := range canon {
		h = mixWord(h, uint32(id))
	}
	return h
}

// mixWord folds one little-endian word into an FNV-1a state.
//
//ftbfs:hotpath
func mixWord(h uint64, v uint32) uint64 {
	h = (h ^ uint64(v&0xff)) * fnvPrime64
	h = (h ^ uint64(v>>8&0xff)) * fnvPrime64
	h = (h ^ uint64(v>>16&0xff)) * fnvPrime64
	h = (h ^ uint64(v>>24&0xff)) * fnvPrime64
	return h
}

// CacheStats is a snapshot of the shared memo's counters, aggregated
// across every shard.
type CacheStats struct {
	Len       int   // entries currently cached
	Capacity  int   // configured bound (0 = caching disabled)
	Shards    int   // independently-locked sub-caches
	Hits      int64 // lookups answered from the cache
	Misses    int64 // lookups that ran a BFS
	Evictions int64 // entries dropped to stay within Capacity
}

type cacheEntry struct {
	hash       uint64
	src        int32
	faults     []int32 // canonical (sorted) fault IDs; the true key
	dist       []int32 // immutable once inserted
	prev, next *cacheEntry
}

// lruCache is an intrusively-linked LRU protected by a single mutex. A nil
// or zero-capacity cache is valid and caches nothing.
type lruCache struct {
	mu        sync.Mutex
	capacity  int                    // immutable after newLRUCache
	entries   map[uint64]*cacheEntry // guarded by mu
	head      cacheEntry             // guarded by mu; sentinel, head.next is most recent
	hits      int64                  // guarded by mu
	misses    int64                  // guarded by mu
	evictions int64                  // guarded by mu
}

func newLRUCache(capacity int) *lruCache {
	c := &lruCache{capacity: capacity}
	if capacity > 0 {
		c.entries = make(map[uint64]*cacheEntry, capacity)
	}
	c.head.prev = &c.head
	c.head.next = &c.head
	return c
}

//ftbfs:hotpath
func keyEqual(e *cacheEntry, src int32, canon []int32) bool {
	if e.src != src || len(e.faults) != len(canon) {
		return false
	}
	for i, id := range canon {
		if e.faults[i] != id {
			return false
		}
	}
	return true
}

// moveToFront relinks e as most recent.
//
//ftbfs:holds mu
//ftbfs:hotpath
func (c *lruCache) moveToFront(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	c.pushFront(e)
}

// get returns the cached distance table for the key, moving it to the
// front. It never allocates.
//
//ftbfs:hotpath
func (c *lruCache) get(hash uint64, src int32, canon []int32) ([]int32, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[hash]
	if !ok || !keyEqual(e, src, canon) {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.moveToFront(e)
	c.hits++
	d := e.dist
	c.mu.Unlock()
	return d, true
}

// add inserts dist under the key, evicting the least-recently-used entry
// when full, and returns the table now cached for the key (dist itself, or
// the winner of a concurrent insert race so all clients share one table).
func (c *lruCache) add(hash uint64, src int32, canon []int32, dist []int32) []int32 {
	if c.capacity <= 0 {
		return dist
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		if keyEqual(e, src, canon) {
			// Another handle inserted the same event concurrently; keep
			// the incumbent so every client shares one table.
			c.moveToFront(e)
			return e.dist
		}
		// True 64-bit hash collision: replace the incumbent (the map can
		// hold one entry per hash; correctness is preserved either way).
		c.unlink(e)
	}
	for len(c.entries) >= c.capacity {
		lru := c.head.prev
		c.unlink(lru)
		c.evictions++
	}
	e := &cacheEntry{
		hash:   hash,
		src:    src,
		faults: append([]int32(nil), canon...),
		dist:   dist,
	}
	c.entries[hash] = e
	c.pushFront(e)
	return dist
}

// pushFront links e in as most recent.
//
//ftbfs:holds mu
//ftbfs:hotpath
func (c *lruCache) pushFront(e *cacheEntry) {
	e.next = c.head.next
	e.prev = &c.head
	e.next.prev = e
	c.head.next = e
}

// unlink removes e from the list and the index.
//
//ftbfs:holds mu
func (c *lruCache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	delete(c.entries, e.hash)
}

func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Len:       len(c.entries),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// ---- sharding ----

// minShardEntries keeps each shard's LRU large enough to be useful; the
// default shard count is halved until this floor holds (small caches
// degenerate to one shard, preserving strict global LRU order).
const minShardEntries = 8

// shardedCache splits the memo into power-of-two many lruCache shards
// selected by the low bits of the key hash. Shards are independently
// locked, so lookups of distinct failure events proceed without
// contention; within one shard the LRU semantics are unchanged.
type shardedCache struct {
	shards []*lruCache
	mask   uint64
}

// defaultShardCount rounds GOMAXPROCS up to a power of two, then halves
// until every shard holds at least minShardEntries (one shard for small or
// disabled caches).
func defaultShardCount(capacity int) int {
	if capacity <= 0 {
		return 1
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n *= 2
	}
	for n > 1 && capacity/n < minShardEntries {
		n /= 2
	}
	return n
}

// floorPow2 rounds n down to a power of two (1 for n ≤ 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// newShardedCache builds a memo of the given total capacity split over
// `shards` sub-caches (rounded down to a power of two, clamped so no shard
// has zero capacity). capacity ≤ 0 disables caching.
func newShardedCache(capacity, shards int) *shardedCache {
	if capacity <= 0 {
		shards = 1
	} else {
		shards = floorPow2(min(shards, capacity))
	}
	c := &shardedCache{shards: make([]*lruCache, shards), mask: uint64(shards - 1)}
	base, rem := 0, 0
	if capacity > 0 {
		base, rem = capacity/shards, capacity%shards
	}
	for i := range c.shards {
		cap := base
		if i < rem {
			cap++
		}
		c.shards[i] = newLRUCache(cap)
	}
	return c
}

//ftbfs:hotpath
func (c *shardedCache) shard(hash uint64) *lruCache {
	return c.shards[hash&c.mask]
}

//ftbfs:hotpath
func (c *shardedCache) get(hash uint64, src int32, canon []int32) ([]int32, bool) {
	return c.shard(hash).get(hash, src, canon)
}

func (c *shardedCache) add(hash uint64, src int32, canon []int32, dist []int32) []int32 {
	return c.shard(hash).add(hash, src, canon, dist)
}

func (c *shardedCache) stats() CacheStats {
	out := CacheStats{Shards: len(c.shards)}
	for _, sh := range c.shards {
		s := sh.stats()
		out.Len += s.Len
		out.Capacity += s.Capacity
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
	}
	return out
}
