package oracle

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
)

// This file covers the two-tier memo: delta-vs-full equivalence, the byte
// budget, the pinned-base tier and their interaction under concurrency.

// TestDeltaFullEquivalence drives every single-fault event (and a spread
// of duals) on a graph where some events delta-encode and some store full
// tables, checking every answer — point lookups AND materialized tables —
// against from-scratch BFS, then asserts the memo actually exercised both
// encodings.
func TestDeltaFullEquivalence(t *testing.T) {
	// A sparse graph keeps most detached subtrees tiny (deltas) while a
	// fault near the root still dooms a large subtree (full tables).
	g := gen.SparseGNP(96, 3, 5)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSetBytes(st, 1<<20) // ample: no evictions distort Len
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	truth := bfs.NewRunner(g)
	check := func(faults []int) {
		t.Helper()
		truth.Run(0, faults, nil)
		d, err := o.Dists(0, faults)
		if err != nil {
			t.Fatal(err)
		}
		v0 := g.N() / 2
		pt, err := o.Dist(0, v0, faults)
		if err != nil {
			t.Fatal(err)
		}
		if pt != truth.Dist(v0) {
			t.Fatalf("faults %v: point lookup %d, truth %d", faults, pt, truth.Dist(v0))
		}
		for v := 0; v < g.N(); v++ {
			if d[v] != truth.Dist(v) {
				t.Fatalf("faults %v target %d: oracle %d, truth %d", faults, v, d[v], truth.Dist(v))
			}
		}
	}
	check(nil)
	for a := 0; a < g.M(); a++ {
		check([]int{a})
		if b := (a*11 + 3) % g.M(); b != a {
			check([]int{a, b})
		}
	}
	cs := set.CacheStats()
	if cs.DeltaEntries == 0 || cs.FullEntries == 0 {
		t.Fatalf("workload did not cross the delta/full threshold: %+v", cs)
	}
	if cs.PinnedBytes == 0 {
		t.Fatalf("delta entries without a pinned base: %+v", cs)
	}
	// Re-query everything still cached: hits must reproduce the truth too
	// (exercises DistView.At against both encodings).
	for a := 0; a < g.M(); a += 3 {
		check([]int{a})
	}
}

// TestDistViewAt pins the delta binary search against materialization on
// hand-built views, including the boundary keys.
func TestDistViewAt(t *testing.T) {
	base := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	v := DistView{Base: base, Keys: []int32{0, 3, 7}, Vals: []int32{9, -1, 12}}
	want := v.AppendTo(nil)
	if len(want) != len(base) {
		t.Fatalf("AppendTo length %d, want %d", len(want), len(base))
	}
	for i := range base {
		if got := v.At(i); got != want[i] {
			t.Fatalf("At(%d) = %d, materialized %d", i, got, want[i])
		}
	}
	full := DistView{Full: []int32{4, 5, 6}}
	if full.At(1) != 5 || full.Len() != 3 {
		t.Fatal("full view lookup wrong")
	}
	if v.Len() != len(base) {
		t.Fatalf("delta view Len %d, want %d", v.Len(), len(base))
	}
}

// TestCacheByteBudget checks the byte bound is enforced: BytesUsed never
// exceeds the budget, eviction makes room entry by entry, and an entry
// larger than the whole budget is served uncached instead of flushing
// everything.
func TestCacheByteBudget(t *testing.T) {
	g := gen.SparseGNP(128, 4, 9)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 4096
	set, err := NewSetBudget(st, 0, budget, 1) // one shard: exact global accounting
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	for a := 0; a < g.M(); a++ {
		if _, err := o.Dist(0, a%g.N(), []int{a}); err != nil {
			t.Fatal(err)
		}
		if cs := set.CacheStats(); cs.BytesUsed > budget {
			t.Fatalf("after event %d: BytesUsed %d exceeds budget %d", a, cs.BytesUsed, budget)
		}
	}
	cs := set.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("byte budget never evicted: %+v", cs)
	}
	if cs.BytesCapacity != budget {
		t.Fatalf("BytesCapacity = %d, want %d", cs.BytesCapacity, budget)
	}
	if cs.Len != cs.DeltaEntries+cs.FullEntries {
		t.Fatalf("entry-kind accounting off: %+v", cs)
	}

	// A budget smaller than one full table: full-table events are served
	// uncached (correctly), delta events still cache.
	tiny, err := NewSetBytes(st, entryOverheadBytes+64)
	if err != nil {
		t.Fatal(err)
	}
	ot := tiny.Handle()
	truth := bfs.NewRunner(g)
	for a := 0; a < g.M(); a += 5 {
		d, err := ot.Dists(0, []int{a})
		if err != nil {
			t.Fatal(err)
		}
		truth.Run(0, []int{a}, nil)
		for v := 0; v < g.N(); v++ {
			if d[v] != truth.Dist(v) {
				t.Fatalf("tiny budget fault %d target %d: %d vs %d", a, v, d[v], truth.Dist(v))
			}
		}
		if cs := tiny.CacheStats(); cs.BytesUsed > entryOverheadBytes+64 {
			t.Fatalf("tiny budget overrun: %+v", cs)
		}
	}
}

// TestDeltaCapacityGain is the tentpole's acceptance criterion: at a fixed
// byte budget, the delta tier must hold at least 10× more failure events
// than budget/(4n) full tables would.
func TestDeltaCapacityGain(t *testing.T) {
	g := gen.SparseGNP(512, 4, 3)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 64 << 10
	set, err := NewSetBytes(st, budget)
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	for a := 0; a < g.M(); a++ {
		if _, err := o.Dist(0, 1, []int{a}); err != nil {
			t.Fatal(err)
		}
	}
	cs := set.CacheStats()
	fullTables := budget / (4 * g.N()) // what the pre-delta design held
	if cs.Len < 10*fullTables {
		t.Fatalf("delta tier holds %d events at %d bytes; full tables would hold %d — gain %.1fx < 10x (stats %+v)",
			cs.Len, budget, fullTables, float64(cs.Len)/float64(fullTables), cs)
	}
}

// TestCacheBudgetAccessor pins the lock-free budget accessor across the
// constructor lattice.
func TestCacheBudgetAccessor(t *testing.T) {
	g := gen.PathGraph(6)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		mk          func() (*OracleSet, error)
		wantEntries int
		wantBytes   int64
	}{
		{"default", func() (*OracleSet, error) { return NewSet(st) }, DefaultCacheEntries, 0},
		{"capacity", func() (*OracleSet, error) { return NewSetCapacity(st, 32) }, 32, 0},
		{"bytes", func() (*OracleSet, error) { return NewSetBytes(st, 1<<16) }, 0, 1 << 16},
		{"budget", func() (*OracleSet, error) { return NewSetBudget(st, 8, 1<<12, 2) }, 8, 1 << 12},
		{"disabled", func() (*OracleSet, error) { return NewSetCapacity(st, -1) }, 0, 0},
		{"disabled bytes", func() (*OracleSet, error) { return NewSetBytes(st, 0) }, 0, 0},
	}
	for _, tc := range cases {
		set, err := tc.mk()
		if err != nil {
			t.Fatal(err)
		}
		entries, bytes := set.CacheBudget()
		if entries != tc.wantEntries || bytes != tc.wantBytes {
			t.Errorf("%s: CacheBudget() = (%d, %d), want (%d, %d)",
				tc.name, entries, bytes, tc.wantEntries, tc.wantBytes)
		}
	}
}

// TestPrewarmPinsBases checks Prewarm's tier-0 contract: it pins every
// source's base exactly once, counts only fresh pins, touches no tier-1
// state or hit/miss counters, and stays off when memoization is disabled.
func TestPrewarmPinsBases(t *testing.T) {
	g := gen.GNP(20, 0.3, 4)
	st, err := core.BuildMultiSource(g, []int{0, 9, 17}, nil, core.BuildSingle)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSetBytes(st, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if n := set.Prewarm(); n != 3 {
		t.Fatalf("Prewarm pinned %d bases, want 3", n)
	}
	cs := set.CacheStats()
	if cs.Len != 0 || cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("Prewarm leaked into tier-1 state: %+v", cs)
	}
	if want := int64(3 * 4 * g.N()); cs.PinnedBytes != want {
		t.Fatalf("PinnedBytes = %d, want %d", cs.PinnedBytes, want)
	}
	if n := set.Prewarm(); n != 0 {
		t.Fatalf("second Prewarm re-pinned %d bases", n)
	}
	// A fault-free query after Prewarm is a pure tier-0 hit.
	o := set.Handle()
	if _, err := o.Dists(9, nil); err != nil {
		t.Fatal(err)
	}
	if cs := set.CacheStats(); cs.Hits != 1 || cs.Misses != 0 {
		t.Fatalf("fault-free query after Prewarm not a hit: %+v", cs)
	}

	disabled, err := NewSetCapacity(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := disabled.Prewarm(); n != 0 {
		t.Fatalf("disabled set prewarmed %d", n)
	}
}

// TestConcurrentTierMix runs concurrent clients mixing tier-0 (fault-free),
// tier-1 (cached events), and uncached queries — with concurrent
// CacheStats readers — under a small byte budget that keeps eviction hot.
// Run with -race this exercises the pinned-base double-check, the shard
// locks and the set-level atomics together; every answer is checked
// against precomputed ground truth.
func TestConcurrentTierMix(t *testing.T) {
	g := gen.SparseGNP(80, 4, 13)
	st, err := core.BuildMultiSource(g, []int{0, 40}, nil, core.BuildSingle)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSetBytes(st, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []int{0, 40}
	truth := make(map[int]map[int][]int32) // src -> fault -> dists (fault -1 = none)
	for _, s := range srcs {
		truth[s] = map[int][]int32{-1: bfs.Distances(g, s, nil)}
		for a := 0; a < g.M(); a++ {
			truth[s][a] = bfs.Distances(g, s, []int{a})
		}
	}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := set.Acquire()
			defer set.Release(o)
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 400; i++ {
				s := srcs[rng.Intn(len(srcs))]
				fault := -1
				var faults []int
				if rng.Intn(4) != 0 { // 1 in 4 queries is fault-free (tier 0)
					fault = rng.Intn(g.M())
					faults = []int{fault}
				}
				v := rng.Intn(g.N())
				d, err := o.Dist(s, v, faults)
				if err != nil {
					t.Error(err)
					return
				}
				if want := truth[s][fault][v]; d != want {
					t.Errorf("src %d fault %d target %d: got %d want %d", s, fault, v, d, want)
					return
				}
			}
		}(c)
	}
	// Concurrent stats readers cross the shard locks and atomics while the
	// clients churn.
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for i := 0; i < 200; i++ {
			cs := set.CacheStats()
			if cs.BytesUsed > cs.BytesCapacity {
				t.Errorf("budget overrun under concurrency: %+v", cs)
				return
			}
		}
	}()
	wg.Wait()
	<-statsDone
	if cs := set.CacheStats(); cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("tier mix degenerated: %+v", cs)
	}
}

// FuzzDeltaThreshold fuzzes fault selection so events land on both sides
// of the delta/full threshold (faults near the BFS root detach huge
// subtrees; leaf faults detach nothing) and demands the memoized answers
// — first computation AND cached re-read — match from-scratch BFS.
func FuzzDeltaThreshold(f *testing.F) {
	f.Add(int64(1), uint64(0x1234), uint8(2))
	f.Add(int64(2), uint64(0xffff_ffff), uint8(1))
	f.Add(int64(3), uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, faultBits uint64, nFaults uint8) {
		g := gen.SparseGNP(64, 3, 1+(seed&7))
		st, err := core.BuildDual(g, 0, nil)
		if err != nil {
			t.Skip() // disconnected seeds are the builder's business
		}
		set, err := NewSetBytes(st, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		o := set.Handle()
		k := int(nFaults) % 3
		var faults []int
		for i := 0; i < k; i++ {
			faults = append(faults, int((faultBits>>(i*17))&0xffff)%g.M())
		}
		want := bfs.Distances(g, 0, faults)
		for pass := 0; pass < 2; pass++ { // miss, then hit
			d, err := o.Dists(0, faults)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if d[v] != want[v] {
					t.Fatalf("pass %d faults %v target %d: oracle %d, truth %d",
						pass, faults, v, d[v], want[v])
				}
			}
			for _, v := range []int{0, g.N() / 3, g.N() - 1} {
				pt, err := o.Dist(0, v, faults)
				if err != nil {
					t.Fatal(err)
				}
				if pt != want[v] {
					t.Fatalf("pass %d faults %v At(%d): %d, truth %d", pass, faults, v, pt, want[v])
				}
			}
		}
	})
}
