// Package oracle answers fault-tolerant distance and routing queries on a
// built FT-BFS structure: given a target v and a fault set F (|F| ≤ f),
// it returns dist(s, v, G \ F) and a realizing path, computed entirely
// inside the structure H — which is the point of the structure: H \ F
// provably contains such a path (the paper's motivating routing scenario).
//
// The package is organized for concurrent serving. An OracleSet holds the
// shared immutable state — the materialized subgraph H, the G→H edge-ID
// mapping, and a two-tier byte-budgeted memo of per-failure-event distance
// tables — built once per structure. Per-goroutine Oracle handles carry
// only BFS scratch and are cheap to create (or recycle through
// Acquire/Release), so one failure event's BFS is computed once and shared
// across every concurrent client.
//
// The memo's two tiers (see cache.go): tier 0 pins each source's
// fault-free base table outside the LRU, and tier 1 stores failure events
// as deltas against that base whenever the incremental repairer proves the
// event only touched a small region — so a byte budget holds orders of
// magnitude more events than full 4n-byte tables would.
package oracle

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/path"
)

// DefaultCacheEntries bounds the shared memo table when NewSet is used;
// least-recently-used failure events are evicted first (queries stay
// correct, just uncached).
const DefaultCacheEntries = 4096

// OracleSet is the shared, immutable query state over one structure: the
// materialized subgraph H, the G→H edge-ID translation, the pinned
// per-source base tables, and a concurrency-safe bounded memo of
// per-failure-event distance tables keyed by canonicalized fault sets. It
// is safe for concurrent use; obtain per-goroutine handles with Handle or
// Acquire.
//
// The set materializes the structure as its own compact graph once, so
// every query traverses only H's edges — on sparse structures this is the
// whole point of buying H instead of G.
type OracleSet struct {
	st     *core.Structure
	sub    *graph.Graph
	gToSub []int32 // G edge ID -> sub edge ID, -1 when absent from H
	cache  *shardedCache
	pool   sync.Pool

	// Tier 0: one pinned fault-free table per structure source (indexed
	// like st.Sources), computed once on first need and never evicted —
	// every delta entry in the memo decodes against its source's base, so
	// the base must outlive all of them.
	bases       []pinnedBase
	pinnedBytes atomic.Int64
	baseHits    atomic.Int64 // empty-fault-set queries served from a pinned base
	baseMisses  atomic.Int64 // empty-fault-set queries that computed the base
}

// pinnedBase holds one source's fault-free distance table. dist is nil
// until the first query needs it; the mutex only serializes the one-time
// computation (reads are a lock-free atomic load).
type pinnedBase struct {
	mu   sync.Mutex
	dist atomic.Pointer[[]int32]
}

// NewSet builds the shared query state for st with the default cache bound.
func NewSet(st *core.Structure) (*OracleSet, error) {
	return NewSetCapacity(st, DefaultCacheEntries)
}

// NewSetCapacity is NewSet with an explicit bound on cached failure events
// (cacheEntries ≤ 0 disables memoization) and no byte budget. The memo is
// sharded by key hash across ~GOMAXPROCS independently-locked shards; use
// NewSetSharded for an explicit shard count, NewSetBytes / NewSetBudget
// for byte-accounted bounds.
func NewSetCapacity(st *core.Structure, cacheEntries int) (*OracleSet, error) {
	return NewSetBudget(st, cacheEntries, 0, 0)
}

// NewSetBytes is NewSet with a byte budget instead of an entry cap: the
// memo holds as many failure events as fit in cacheBytes (delta-encoded
// events are charged only for what the fault actually changed, so a budget
// typically holds 10–100× more events than full tables would). Pinned
// fault-free base tables are accounted separately (CacheStats.PinnedBytes)
// and never evicted. cacheBytes ≤ 0 disables memoization.
func NewSetBytes(st *core.Structure, cacheBytes int64) (*OracleSet, error) {
	return NewSetBudget(st, 0, cacheBytes, 0)
}

// NewSetBudget is the general constructor: the memo is bounded by an entry
// cap (cacheEntries > 0), a byte budget (cacheBytes > 0), or both —
// whichever bound trips first evicts. cacheEntries == 0 with a positive
// byte budget means "as many entries as the bytes allow"; cacheEntries < 0,
// or no bound at all, disables memoization. shards ≤ 0 picks
// ~GOMAXPROCS shards (rounded to a power of two, clamped so every shard's
// slice of the budget stays useful).
func NewSetBudget(st *core.Structure, cacheEntries int, cacheBytes int64, shards int) (*OracleSet, error) {
	if shards <= 0 {
		shards = defaultShardCount(cacheEntries, cacheBytes)
	}
	return newSet(st, cacheEntries, cacheBytes, shards)
}

// NewSetSharded is NewSetCapacity with an explicit memo shard count
// (rounded down to a power of two; 1 gives a single global LRU with strict
// global recency order, larger counts trade that for lower lock
// contention).
func NewSetSharded(st *core.Structure, cacheEntries, shards int) (*OracleSet, error) {
	return newSet(st, cacheEntries, 0, shards)
}

func newSet(st *core.Structure, cacheEntries int, cacheBytes int64, shards int) (*OracleSet, error) {
	if len(st.Sources) == 0 {
		return nil, fmt.Errorf("oracle: structure has no sources")
	}
	s := &OracleSet{
		st:    st,
		cache: newShardedCache(cacheEntries, cacheBytes, shards),
		bases: make([]pinnedBase, len(st.Sources)),
	}
	// Materialize H directly in CSR form; sub edge IDs are assigned in
	// increasing G-edge-ID order, no per-edge hashing involved.
	s.sub, s.gToSub = st.G.SubgraphMapped(st.Edges)
	s.pool.New = func() any { return s.Handle() }
	return s, nil
}

// Structure returns the underlying structure.
func (s *OracleSet) Structure() *core.Structure { return s.st }

// Faults returns the structure's fault budget.
func (s *OracleSet) Faults() int { return s.st.Faults }

// Sources returns a copy of the sources the set can answer for.
func (s *OracleSet) Sources() []int { return append([]int(nil), s.st.Sources...) }

// CacheStats returns a snapshot of the shared memo's counters: the tier-1
// shard sums plus the tier-0 pinned-base hits, misses and bytes.
func (s *OracleSet) CacheStats() CacheStats {
	cs := s.cache.stats()
	cs.Hits += s.baseHits.Load()
	cs.Misses += s.baseMisses.Load()
	cs.PinnedBytes = s.pinnedBytes.Load()
	return cs
}

// CacheBudget returns the memo's configured bounds — the tier-1 entry cap
// and byte budget, 0 meaning unbounded on that axis, both 0 meaning
// memoization is disabled. The bounds are immutable, so unlike CacheStats
// this takes no shard lock.
func (s *OracleSet) CacheBudget() (entries int, bytes int64) {
	return s.cache.entries, s.cache.bytes
}

// Prewarm pins the fault-free (tier-0) base table for every source, so the
// first real queries after a snapshot restore decode against a ready base
// instead of paying a BFS. Returns the number of tables computed — 0 when
// memoization is disabled or every base is already pinned. The check is a
// lock-free read of the immutable budget: Prewarm runs on the restore
// path, concurrent with live traffic, and must not sweep the shard locks
// just to discover the memo is off.
func (s *OracleSet) Prewarm() int {
	if !s.cache.enabled {
		return 0
	}
	o := s.Acquire()
	defer s.Release(o)
	n := 0
	for i := range s.st.Sources {
		if _, fresh := s.pinBase(i, o); fresh {
			n++
		}
	}
	return n
}

// pinBase returns source index idx's pinned fault-free table, computing
// and pinning it on first need using o's repairer. fresh reports whether
// this call did the computation.
func (s *OracleSet) pinBase(idx int, o *Oracle) (dist []int32, fresh bool) {
	b := &s.bases[idx]
	if p := b.dist.Load(); p != nil {
		return *p, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if p := b.dist.Load(); p != nil {
		return *p, false
	}
	o.ensureRep()
	o.rep.Run(s.st.Sources[idx], nil)
	d := make([]int32, s.sub.N())
	copy(d, o.rep.Dists())
	b.dist.Store(&d)
	s.pinnedBytes.Add(4 * int64(len(d)))
	return d, true
}

// pinBaseFrom pins source index idx's base from a repairer that just ran a
// faulted query for that source — rep.Base() already holds the fault-free
// table (faulted runs never touch it), so pinning is a copy, not a BFS.
func (s *OracleSet) pinBaseFrom(idx int, rep *bfs.Repairer) []int32 {
	b := &s.bases[idx]
	if p := b.dist.Load(); p != nil {
		return *p
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if p := b.dist.Load(); p != nil {
		return *p
	}
	d := append([]int32(nil), rep.Base()...)
	b.dist.Store(&d)
	s.pinnedBytes.Add(4 * int64(len(d)))
	return d
}

// Handle returns a fresh per-goroutine query handle over the shared state.
// Handles are not safe for concurrent use; the set they share is.
func (s *OracleSet) Handle() *Oracle {
	return &Oracle{set: s, runner: bfs.NewRunner(s.sub)}
}

// Acquire returns a pooled handle; pair with Release on the hot serving
// path to avoid re-allocating BFS scratch per request.
func (s *OracleSet) Acquire() *Oracle { return s.pool.Get().(*Oracle) }

// Release returns a handle obtained from Acquire to the pool. The handle
// must not be used afterwards.
func (s *OracleSet) Release(o *Oracle) {
	if o.set != s {
		panic("oracle: Release of a handle from a different set")
	}
	s.pool.Put(o)
}

// Oracle is a per-goroutine query handle over a shared OracleSet: BFS
// scratch plus key-canonicalization buffers. It is not safe for concurrent
// use; create one per goroutine with OracleSet.Handle (they share the
// set's materialized subgraph and memo).
type Oracle struct {
	set    *OracleSet
	runner *bfs.Runner
	rep    *bfs.Repairer // lazy: built on the first uncached distance query
	faults []int         // scratch: fault IDs translated into sub-graph IDs
	canon  []int32       // scratch: sorted G fault IDs forming the cache key
	dists  []int32       // scratch: Dists materialization of delta-encoded views
}

// New returns a single-handle oracle over st — NewSet + Handle for callers
// that do not need to share the set across goroutines.
func New(st *core.Structure) (*Oracle, error) {
	s, err := NewSet(st)
	if err != nil {
		return nil, err
	}
	return s.Handle(), nil
}

// Set returns the shared state this handle queries.
func (o *Oracle) Set() *OracleSet { return o.set }

// Faults returns the structure's fault budget.
func (o *Oracle) Faults() int { return o.set.st.Faults }

// Sources returns a copy of the sources the oracle can answer for.
func (o *Oracle) Sources() []int { return o.set.Sources() }

func (o *Oracle) ensureRep() {
	if o.rep == nil {
		o.rep = bfs.NewRepairer(o.set.sub)
	}
}

// prepare canonicalizes the fault set and validates the query against the
// structure: the fault BUDGET is checked against the number of DISTINCT
// faults (listing an edge twice describes the same failure event as
// listing it once), while the range check covers the raw IDs before their
// int32 conversion. Returns the canonical key and the index of s in the
// structure's source list (the pinned-base slot).
func (o *Oracle) prepare(s int, faults []int) ([]int32, int, error) {
	st := o.set.st
	srcIdx := -1
	for i, src := range st.Sources {
		if src == s {
			srcIdx = i
			break
		}
	}
	if srcIdx < 0 {
		return nil, -1, fmt.Errorf("oracle: %d is not a structure source %v", s, st.Sources)
	}
	m := st.G.M()
	for _, id := range faults {
		if id < 0 || id >= m {
			return nil, -1, fmt.Errorf("oracle: fault edge %d out of range [0,%d)", id, m)
		}
	}
	canon := o.canonicalize(faults)
	if len(canon) > st.Faults {
		return nil, -1, fmt.Errorf("oracle: %d distinct faults exceed budget %d", len(canon), st.Faults)
	}
	return canon, srcIdx, nil
}

// canonicalize fills o.canon with the sorted, deduplicated fault IDs — the
// canonical per-failure-event key — without allocating once the scratch
// has grown. Deduplication matters: faults {3,3} and {3} are the same
// failure event and must share one cache entry and one budget slot.
//
//ftbfs:hotpath
func (o *Oracle) canonicalize(faults []int) []int32 {
	o.canon = o.canon[:0]
	for _, id := range faults {
		o.canon = append(o.canon, int32(id))
	}
	slices.Sort(o.canon)
	o.canon = slices.Compact(o.canon)
	return o.canon
}

// translate maps canonical G fault IDs into sub-graph IDs, dropping faults
// on edges H never kept (removing an absent edge is a no-op).
//
//ftbfs:hotpath
func (o *Oracle) translate(canon []int32) []int {
	o.faults = o.faults[:0]
	for _, id := range canon {
		if sid := o.set.gToSub[id]; sid >= 0 {
			o.faults = append(o.faults, int(sid))
		}
	}
	return o.faults
}

// run executes (or recalls) the BFS for the canonical key and returns a
// view of the distance table over H \ F.
//
// The tiers: an empty fault set is the source's fault-free table, served
// from (or pinned into) tier 0. A faulted event is looked up in the tier-1
// memo; on a miss the incremental repairer runs, and the result is stored
// as a delta against the pinned base when the repairer proved the changed
// region is at most n/deltaDenom vertices (the repairer tracked the region
// anyway, so encoding is one sort + gather), as a full table otherwise.
//
// Every view returned references immutable memory — pinned bases, cached
// entries (still immutable after eviction), or a fresh allocation on the
// uncacheable paths — so callers may retain views across queries; they
// must never mutate them.
func (o *Oracle) run(s, srcIdx int, canon []int32) DistView {
	set := o.set
	if !set.cache.enabled {
		o.ensureRep()
		o.rep.Run(s, o.translate(canon))
		d := make([]int32, set.sub.N())
		copy(d, o.rep.Dists())
		return DistView{Full: d}
	}
	if len(canon) == 0 {
		d, fresh := set.pinBase(srcIdx, o)
		if fresh {
			set.baseMisses.Add(1)
		} else {
			set.baseHits.Add(1)
		}
		return DistView{Full: d}
	}
	h := hashKey(s, canon)
	if v, ok := set.cache.get(h, int32(s), canon); ok {
		return v
	}
	o.ensureRep()
	o.rep.Run(s, o.translate(canon))
	n := set.sub.N()
	e := &cacheEntry{hash: h, src: int32(s), faults: append([]int32(nil), canon...)}
	if changed, incremental := o.rep.Changed(); incremental && len(changed) <= n/deltaDenom {
		e.base = set.pinBaseFrom(srcIdx, o.rep)
		e.keys = append([]int32(nil), changed...)
		slices.Sort(e.keys)
		e.vals = make([]int32, len(e.keys))
		out := o.rep.Dists()
		for i, k := range e.keys {
			e.vals[i] = out[k]
		}
	} else {
		e.full = make([]int32, n)
		copy(e.full, o.rep.Dists())
	}
	return set.cache.add(e)
}

// Dist returns dist(s, v, G \ F) answered inside the structure
// (bfs.Unreachable when v is cut off in G \ F as well). On a memo hit this
// is a point lookup: a full-table index, or a short binary search of a
// delta entry falling back to the pinned base.
func (o *Oracle) Dist(s, v int, faults []int) (int32, error) {
	canon, srcIdx, err := o.prepare(s, faults)
	if err != nil {
		return bfs.Unreachable, err
	}
	if v < 0 || v >= o.set.st.G.N() {
		return bfs.Unreachable, fmt.Errorf("oracle: target %d out of range", v)
	}
	return o.run(s, srcIdx, canon).At(v), nil
}

// Dists returns the full distance table for one failure event. The slice
// is either shared immutable cache state or handle-owned scratch
// (delta-encoded events materialize into the handle's buffer, overwritten
// by this handle's next Dists call); in both cases callers must not mutate
// it, and must copy it to retain it across queries. Use DistsView to avoid
// materializing deltas at all.
func (o *Oracle) Dists(s int, faults []int) ([]int32, error) {
	canon, srcIdx, err := o.prepare(s, faults)
	if err != nil {
		return nil, err
	}
	v := o.run(s, srcIdx, canon)
	if v.Full != nil {
		return v.Full, nil
	}
	o.dists = v.AppendTo(o.dists[:0])
	return o.dists, nil
}

// DistsView returns the distance table for one failure event in its
// stored representation — a full table, or a delta against the source's
// pinned base — without materializing. The view references immutable
// memory, so callers may retain it across queries (and across eviction);
// they must not mutate its slices.
func (o *Oracle) DistsView(s int, faults []int) (DistView, error) {
	canon, srcIdx, err := o.prepare(s, faults)
	if err != nil {
		return DistView{}, err
	}
	return o.run(s, srcIdx, canon), nil
}

// Route returns an optimal s→v path inside H \ F (nil when disconnected).
// Unlike Dist it always re-runs the BFS (paths are not memoized). Vertex
// IDs on the returned path are G's (the structure preserves them).
func (o *Oracle) Route(s, v int, faults []int) (path.Path, error) {
	canon, _, err := o.prepare(s, faults)
	if err != nil {
		return nil, err
	}
	if v < 0 || v >= o.set.st.G.N() {
		return nil, fmt.Errorf("oracle: target %d out of range", v)
	}
	o.runner.Run(s, o.translate(canon), nil)
	return o.runner.PathTo(v), nil
}
