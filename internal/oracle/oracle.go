// Package oracle answers fault-tolerant distance and routing queries on a
// built FT-BFS structure: given a target v and a fault set F (|F| ≤ f),
// it returns dist(s, v, G \ F) and a realizing path, computed entirely
// inside the structure H — which is the point of the structure: H \ F
// provably contains such a path (the paper's motivating routing scenario).
//
// The package is organized for concurrent serving. An OracleSet holds the
// shared immutable state — the materialized subgraph H, the G→H edge-ID
// mapping, and a bounded LRU memo of per-failure-event distance tables —
// built once per structure. Per-goroutine Oracle handles carry only BFS
// scratch and are cheap to create (or recycle through Acquire/Release), so
// one failure event's BFS is computed once and shared across every
// concurrent client.
package oracle

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/path"
)

// DefaultCacheEntries bounds the shared memo table when NewSet is used;
// least-recently-used failure events are evicted first (queries stay
// correct, just uncached).
const DefaultCacheEntries = 4096

// OracleSet is the shared, immutable query state over one structure: the
// materialized subgraph H, the G→H edge-ID translation, and a
// concurrency-safe bounded LRU of distance tables keyed by canonicalized
// fault sets. It is safe for concurrent use; obtain per-goroutine handles
// with Handle or Acquire.
//
// The set materializes the structure as its own compact graph once, so
// every query traverses only H's edges — on sparse structures this is the
// whole point of buying H instead of G.
type OracleSet struct {
	st     *core.Structure
	sub    *graph.Graph
	gToSub []int32 // G edge ID -> sub edge ID, -1 when absent from H
	cache  *lruCache
	pool   sync.Pool
}

// NewSet builds the shared query state for st with the default cache bound.
func NewSet(st *core.Structure) (*OracleSet, error) {
	return NewSetCapacity(st, DefaultCacheEntries)
}

// NewSetCapacity is NewSet with an explicit bound on cached failure events
// (cacheEntries ≤ 0 disables memoization).
func NewSetCapacity(st *core.Structure, cacheEntries int) (*OracleSet, error) {
	if len(st.Sources) == 0 {
		return nil, fmt.Errorf("oracle: structure has no sources")
	}
	s := &OracleSet{
		st:     st,
		sub:    graph.New(st.G.N()),
		gToSub: make([]int32, st.G.M()),
		cache:  newLRUCache(cacheEntries),
	}
	for id := range s.gToSub {
		s.gToSub[id] = -1
	}
	var err error
	st.Edges.ForEach(func(id int) {
		if err != nil {
			return
		}
		e := st.G.EdgeAt(id)
		var subID int
		subID, err = s.sub.AddEdge(e.U, e.V)
		s.gToSub[id] = int32(subID)
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	s.pool.New = func() any { return s.Handle() }
	return s, nil
}

// Structure returns the underlying structure.
func (s *OracleSet) Structure() *core.Structure { return s.st }

// Faults returns the structure's fault budget.
func (s *OracleSet) Faults() int { return s.st.Faults }

// Sources returns a copy of the sources the set can answer for.
func (s *OracleSet) Sources() []int { return append([]int(nil), s.st.Sources...) }

// CacheStats returns a snapshot of the shared memo's counters.
func (s *OracleSet) CacheStats() CacheStats { return s.cache.stats() }

// Handle returns a fresh per-goroutine query handle over the shared state.
// Handles are not safe for concurrent use; the set they share is.
func (s *OracleSet) Handle() *Oracle {
	return &Oracle{set: s, runner: bfs.NewRunner(s.sub)}
}

// Acquire returns a pooled handle; pair with Release on the hot serving
// path to avoid re-allocating BFS scratch per request.
func (s *OracleSet) Acquire() *Oracle { return s.pool.Get().(*Oracle) }

// Release returns a handle obtained from Acquire to the pool. The handle
// must not be used afterwards.
func (s *OracleSet) Release(o *Oracle) {
	if o.set != s {
		panic("oracle: Release of a handle from a different set")
	}
	s.pool.Put(o)
}

// Oracle is a per-goroutine query handle over a shared OracleSet: BFS
// scratch plus key-canonicalization buffers. It is not safe for concurrent
// use; create one per goroutine with OracleSet.Handle (they share the
// set's materialized subgraph and memo).
type Oracle struct {
	set    *OracleSet
	runner *bfs.Runner
	faults []int   // scratch: fault IDs translated into sub-graph IDs
	canon  []int32 // scratch: sorted G fault IDs forming the cache key
}

// New returns a single-handle oracle over st — NewSet + Handle for callers
// that do not need to share the set across goroutines.
func New(st *core.Structure) (*Oracle, error) {
	s, err := NewSet(st)
	if err != nil {
		return nil, err
	}
	return s.Handle(), nil
}

// Set returns the shared state this handle queries.
func (o *Oracle) Set() *OracleSet { return o.set }

// Faults returns the structure's fault budget.
func (o *Oracle) Faults() int { return o.set.st.Faults }

// Sources returns a copy of the sources the oracle can answer for.
func (o *Oracle) Sources() []int { return o.set.Sources() }

func (o *Oracle) validate(s int, faults []int) error {
	st := o.set.st
	ok := false
	for _, src := range st.Sources {
		if src == s {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("oracle: %d is not a structure source %v", s, st.Sources)
	}
	if len(faults) > st.Faults {
		return fmt.Errorf("oracle: %d faults exceed budget %d", len(faults), st.Faults)
	}
	m := st.G.M()
	for _, id := range faults {
		if id < 0 || id >= m {
			return fmt.Errorf("oracle: fault edge %d out of range [0,%d)", id, m)
		}
	}
	return nil
}

// canonicalize fills o.canon with the sorted fault IDs — the canonical
// per-failure-event key — without allocating once the scratch has grown.
func (o *Oracle) canonicalize(faults []int) []int32 {
	o.canon = o.canon[:0]
	for _, id := range faults {
		o.canon = append(o.canon, int32(id))
	}
	slices.Sort(o.canon)
	return o.canon
}

// translate maps G fault IDs into sub-graph IDs, dropping faults on edges
// H never kept (removing an absent edge is a no-op).
func (o *Oracle) translate(faults []int) []int {
	o.faults = o.faults[:0]
	for _, id := range faults {
		if sid := o.set.gToSub[id]; sid >= 0 {
			o.faults = append(o.faults, int(sid))
		}
	}
	return o.faults
}

// run executes (or recalls) the BFS for (s, faults) and returns the
// distance table over H \ F. Cached tables are immutable and shared across
// every handle of the set.
func (o *Oracle) run(s int, faults []int) []int32 {
	canon := o.canonicalize(faults)
	h := hashKey(s, canon)
	if d, ok := o.set.cache.get(h, int32(s), canon); ok {
		return d
	}
	o.runner.Run(s, o.translate(faults), nil)
	d := make([]int32, o.set.sub.N())
	copy(d, o.runner.Dists())
	return o.set.cache.add(h, int32(s), canon, d)
}

// Dist returns dist(s, v, G \ F) answered inside the structure
// (bfs.Unreachable when v is cut off in G \ F as well).
func (o *Oracle) Dist(s, v int, faults []int) (int32, error) {
	if err := o.validate(s, faults); err != nil {
		return bfs.Unreachable, err
	}
	if v < 0 || v >= o.set.st.G.N() {
		return bfs.Unreachable, fmt.Errorf("oracle: target %d out of range", v)
	}
	return o.run(s, faults)[v], nil
}

// Dists returns the full distance table for one failure event (the slice
// is owned by the set's cache and shared between clients; callers must not
// mutate it).
func (o *Oracle) Dists(s int, faults []int) ([]int32, error) {
	if err := o.validate(s, faults); err != nil {
		return nil, err
	}
	return o.run(s, faults), nil
}

// Route returns an optimal s→v path inside H \ F (nil when disconnected).
// Unlike Dist it always re-runs the BFS (paths are not memoized). Vertex
// IDs on the returned path are G's (the structure preserves them).
func (o *Oracle) Route(s, v int, faults []int) (path.Path, error) {
	if err := o.validate(s, faults); err != nil {
		return nil, err
	}
	if v < 0 || v >= o.set.st.G.N() {
		return nil, fmt.Errorf("oracle: target %d out of range", v)
	}
	o.runner.Run(s, o.translate(faults), nil)
	return o.runner.PathTo(v), nil
}
