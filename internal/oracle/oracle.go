// Package oracle answers fault-tolerant distance and routing queries on a
// built FT-BFS structure: given a target v and a fault set F (|F| ≤ f),
// it returns dist(s, v, G \ F) and a realizing path, computed entirely
// inside the structure H — which is the point of the structure: H \ F
// provably contains such a path (the paper's motivating routing scenario).
//
// Queries run one BFS over H per distinct fault set and are memoized, so
// answering all targets under one failure event costs a single traversal
// of the sparse structure rather than of G.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/path"
)

// maxCacheEntries bounds the memo table; on overflow the cache resets
// (queries stay correct, just uncached).
const maxCacheEntries = 4096

// Oracle wraps a structure for querying. It is not safe for concurrent
// use; create one per goroutine (they can share the structure).
//
// The oracle materializes the structure as its own compact graph once, so
// every query traverses only H's edges — on sparse structures this is the
// whole point of buying H instead of G.
type Oracle struct {
	st     *core.Structure
	sub    *graph.Graph
	gToSub []int32 // G edge ID -> sub edge ID, -1 when absent from H
	runner *bfs.Runner
	cache  map[string][]int32
	faults []int // scratch: translated fault IDs
}

// New returns an oracle over st.
func New(st *core.Structure) (*Oracle, error) {
	if len(st.Sources) == 0 {
		return nil, fmt.Errorf("oracle: structure has no sources")
	}
	o := &Oracle{
		st:     st,
		sub:    graph.New(st.G.N()),
		gToSub: make([]int32, st.G.M()),
		cache:  make(map[string][]int32),
	}
	for id := range o.gToSub {
		o.gToSub[id] = -1
	}
	var err error
	st.Edges.ForEach(func(id int) {
		if err != nil {
			return
		}
		e := st.G.EdgeAt(id)
		var subID int
		subID, err = o.sub.AddEdge(e.U, e.V)
		o.gToSub[id] = int32(subID)
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	o.runner = bfs.NewRunner(o.sub)
	return o, nil
}

// Faults returns the structure's fault budget.
func (o *Oracle) Faults() int { return o.st.Faults }

// Sources returns the sources the oracle can answer for.
func (o *Oracle) Sources() []int { return append([]int(nil), o.st.Sources...) }

func (o *Oracle) validate(s int, faults []int) error {
	ok := false
	for _, src := range o.st.Sources {
		if src == s {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("oracle: %d is not a structure source %v", s, o.st.Sources)
	}
	if len(faults) > o.st.Faults {
		return fmt.Errorf("oracle: %d faults exceed budget %d", len(faults), o.st.Faults)
	}
	m := o.st.G.M()
	for _, id := range faults {
		if id < 0 || id >= m {
			return fmt.Errorf("oracle: fault edge %d out of range [0,%d)", id, m)
		}
	}
	return nil
}

func cacheKey(s int, faults []int) string {
	f := append([]int(nil), faults...)
	sort.Ints(f)
	buf := make([]byte, 0, 4*(len(f)+1))
	for _, id := range append(f, s) {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}

// translate maps G fault IDs into sub-graph IDs, dropping faults on edges
// H never kept (removing an absent edge is a no-op).
func (o *Oracle) translate(faults []int) []int {
	o.faults = o.faults[:0]
	for _, id := range faults {
		if sid := o.gToSub[id]; sid >= 0 {
			o.faults = append(o.faults, int(sid))
		}
	}
	return o.faults
}

// run executes (or recalls) the BFS for (s, faults) and returns the
// distance table over H \ F.
func (o *Oracle) run(s int, faults []int) []int32 {
	k := cacheKey(s, faults)
	if d, ok := o.cache[k]; ok {
		return d
	}
	o.runner.Run(s, o.translate(faults), nil)
	d := make([]int32, o.sub.N())
	copy(d, o.runner.Dists())
	if len(o.cache) >= maxCacheEntries {
		o.cache = make(map[string][]int32)
	}
	o.cache[k] = d
	return d
}

// Dist returns dist(s, v, G \ F) answered inside the structure
// (bfs.Unreachable when v is cut off in G \ F as well).
func (o *Oracle) Dist(s, v int, faults []int) (int32, error) {
	if err := o.validate(s, faults); err != nil {
		return bfs.Unreachable, err
	}
	if v < 0 || v >= o.st.G.N() {
		return bfs.Unreachable, fmt.Errorf("oracle: target %d out of range", v)
	}
	return o.run(s, faults)[v], nil
}

// Dists returns the full distance table for one failure event (the slice
// is owned by the oracle's cache; callers must not mutate it).
func (o *Oracle) Dists(s int, faults []int) ([]int32, error) {
	if err := o.validate(s, faults); err != nil {
		return nil, err
	}
	return o.run(s, faults), nil
}

// Route returns an optimal s→v path inside H \ F (nil when disconnected).
// Unlike Dist it always re-runs the BFS (paths are not memoized). Vertex
// IDs on the returned path are G's (the structure preserves them).
func (o *Oracle) Route(s, v int, faults []int) (path.Path, error) {
	if err := o.validate(s, faults); err != nil {
		return nil, err
	}
	if v < 0 || v >= o.st.G.N() {
		return nil, fmt.Errorf("oracle: target %d out of range", v)
	}
	o.runner.Run(s, o.translate(faults), nil)
	return o.runner.PathTo(v), nil
}
