// Package oracle answers fault-tolerant distance and routing queries on a
// built FT-BFS structure: given a target v and a fault set F (|F| ≤ f),
// it returns dist(s, v, G \ F) and a realizing path, computed entirely
// inside the structure H — which is the point of the structure: H \ F
// provably contains such a path (the paper's motivating routing scenario).
//
// The package is organized for concurrent serving. An OracleSet holds the
// shared immutable state — the materialized subgraph H, the G→H edge-ID
// mapping, and a bounded LRU memo of per-failure-event distance tables —
// built once per structure. Per-goroutine Oracle handles carry only BFS
// scratch and are cheap to create (or recycle through Acquire/Release), so
// one failure event's BFS is computed once and shared across every
// concurrent client.
package oracle

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/path"
)

// DefaultCacheEntries bounds the shared memo table when NewSet is used;
// least-recently-used failure events are evicted first (queries stay
// correct, just uncached).
const DefaultCacheEntries = 4096

// OracleSet is the shared, immutable query state over one structure: the
// materialized subgraph H, the G→H edge-ID translation, and a
// concurrency-safe bounded LRU of distance tables keyed by canonicalized
// fault sets. It is safe for concurrent use; obtain per-goroutine handles
// with Handle or Acquire.
//
// The set materializes the structure as its own compact graph once, so
// every query traverses only H's edges — on sparse structures this is the
// whole point of buying H instead of G.
type OracleSet struct {
	st     *core.Structure
	sub    *graph.Graph
	gToSub []int32 // G edge ID -> sub edge ID, -1 when absent from H
	cache  *shardedCache
	pool   sync.Pool
}

// NewSet builds the shared query state for st with the default cache bound.
func NewSet(st *core.Structure) (*OracleSet, error) {
	return NewSetCapacity(st, DefaultCacheEntries)
}

// NewSetCapacity is NewSet with an explicit bound on cached failure events
// (cacheEntries ≤ 0 disables memoization). The memo is sharded by key hash
// across ~GOMAXPROCS independently-locked shards; use NewSetSharded for an
// explicit shard count.
func NewSetCapacity(st *core.Structure, cacheEntries int) (*OracleSet, error) {
	return NewSetSharded(st, cacheEntries, defaultShardCount(cacheEntries))
}

// NewSetSharded is NewSetCapacity with an explicit memo shard count
// (rounded down to a power of two; 1 gives a single global LRU with strict
// global recency order, larger counts trade that for lower lock
// contention).
func NewSetSharded(st *core.Structure, cacheEntries, shards int) (*OracleSet, error) {
	if len(st.Sources) == 0 {
		return nil, fmt.Errorf("oracle: structure has no sources")
	}
	s := &OracleSet{
		st:    st,
		cache: newShardedCache(cacheEntries, shards),
	}
	// Materialize H directly in CSR form; sub edge IDs are assigned in
	// increasing G-edge-ID order, no per-edge hashing involved.
	s.sub, s.gToSub = st.G.SubgraphMapped(st.Edges)
	s.pool.New = func() any { return s.Handle() }
	return s, nil
}

// Structure returns the underlying structure.
func (s *OracleSet) Structure() *core.Structure { return s.st }

// Faults returns the structure's fault budget.
func (s *OracleSet) Faults() int { return s.st.Faults }

// Sources returns a copy of the sources the set can answer for.
func (s *OracleSet) Sources() []int { return append([]int(nil), s.st.Sources...) }

// CacheStats returns a snapshot of the shared memo's counters.
func (s *OracleSet) CacheStats() CacheStats { return s.cache.stats() }

// Prewarm seeds the shared memo with the empty-fault-set (fault-free)
// distance table for every source, so the first real queries after a
// snapshot restore hit the cache instead of paying a BFS. Returns the
// number of tables computed; 0 when memoization is disabled.
func (s *OracleSet) Prewarm() int {
	if s.cache.stats().Capacity <= 0 {
		return 0
	}
	o := s.Acquire()
	defer s.Release(o)
	n := 0
	for _, src := range s.st.Sources {
		if _, err := o.Dists(src, nil); err == nil {
			n++
		}
	}
	return n
}

// Handle returns a fresh per-goroutine query handle over the shared state.
// Handles are not safe for concurrent use; the set they share is.
func (s *OracleSet) Handle() *Oracle {
	return &Oracle{set: s, runner: bfs.NewRunner(s.sub)}
}

// Acquire returns a pooled handle; pair with Release on the hot serving
// path to avoid re-allocating BFS scratch per request.
func (s *OracleSet) Acquire() *Oracle { return s.pool.Get().(*Oracle) }

// Release returns a handle obtained from Acquire to the pool. The handle
// must not be used afterwards.
func (s *OracleSet) Release(o *Oracle) {
	if o.set != s {
		panic("oracle: Release of a handle from a different set")
	}
	s.pool.Put(o)
}

// Oracle is a per-goroutine query handle over a shared OracleSet: BFS
// scratch plus key-canonicalization buffers. It is not safe for concurrent
// use; create one per goroutine with OracleSet.Handle (they share the
// set's materialized subgraph and memo).
type Oracle struct {
	set    *OracleSet
	runner *bfs.Runner
	rep    *bfs.Repairer // lazy: built on the first uncached distance query
	faults []int         // scratch: fault IDs translated into sub-graph IDs
	canon  []int32       // scratch: sorted G fault IDs forming the cache key
}

// New returns a single-handle oracle over st — NewSet + Handle for callers
// that do not need to share the set across goroutines.
func New(st *core.Structure) (*Oracle, error) {
	s, err := NewSet(st)
	if err != nil {
		return nil, err
	}
	return s.Handle(), nil
}

// Set returns the shared state this handle queries.
func (o *Oracle) Set() *OracleSet { return o.set }

// Faults returns the structure's fault budget.
func (o *Oracle) Faults() int { return o.set.st.Faults }

// Sources returns a copy of the sources the oracle can answer for.
func (o *Oracle) Sources() []int { return o.set.Sources() }

// prepare canonicalizes the fault set and validates the query against the
// structure: the fault BUDGET is checked against the number of DISTINCT
// faults (listing an edge twice describes the same failure event as
// listing it once), while the range check covers the raw IDs before their
// int32 conversion. Returns the canonical key.
func (o *Oracle) prepare(s int, faults []int) ([]int32, error) {
	st := o.set.st
	ok := false
	for _, src := range st.Sources {
		if src == s {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("oracle: %d is not a structure source %v", s, st.Sources)
	}
	m := st.G.M()
	for _, id := range faults {
		if id < 0 || id >= m {
			return nil, fmt.Errorf("oracle: fault edge %d out of range [0,%d)", id, m)
		}
	}
	canon := o.canonicalize(faults)
	if len(canon) > st.Faults {
		return nil, fmt.Errorf("oracle: %d distinct faults exceed budget %d", len(canon), st.Faults)
	}
	return canon, nil
}

// canonicalize fills o.canon with the sorted, deduplicated fault IDs — the
// canonical per-failure-event key — without allocating once the scratch
// has grown. Deduplication matters: faults {3,3} and {3} are the same
// failure event and must share one cache entry and one budget slot.
//
//ftbfs:hotpath
func (o *Oracle) canonicalize(faults []int) []int32 {
	o.canon = o.canon[:0]
	for _, id := range faults {
		o.canon = append(o.canon, int32(id))
	}
	slices.Sort(o.canon)
	o.canon = slices.Compact(o.canon)
	return o.canon
}

// translate maps canonical G fault IDs into sub-graph IDs, dropping faults
// on edges H never kept (removing an absent edge is a no-op).
//
//ftbfs:hotpath
func (o *Oracle) translate(canon []int32) []int {
	o.faults = o.faults[:0]
	for _, id := range canon {
		if sid := o.set.gToSub[id]; sid >= 0 {
			o.faults = append(o.faults, int(sid))
		}
	}
	return o.faults
}

// run executes (or recalls) the BFS for the canonical key and returns the
// distance table over H \ F. Uncached events go through the incremental
// repairer: it keeps the fault-free tree for the source and repairs only
// the detached subtrees, producing the identical distance table (BFS
// distances are unique) at a fraction of the cost. Cached tables are
// immutable and shared across every handle of the set.
func (o *Oracle) run(s int, canon []int32) []int32 {
	h := hashKey(s, canon)
	if d, ok := o.set.cache.get(h, int32(s), canon); ok {
		return d
	}
	if o.rep == nil {
		o.rep = bfs.NewRepairer(o.set.sub)
	}
	o.rep.Run(s, o.translate(canon))
	d := make([]int32, o.set.sub.N())
	copy(d, o.rep.Dists())
	return o.set.cache.add(h, int32(s), canon, d)
}

// Dist returns dist(s, v, G \ F) answered inside the structure
// (bfs.Unreachable when v is cut off in G \ F as well).
func (o *Oracle) Dist(s, v int, faults []int) (int32, error) {
	canon, err := o.prepare(s, faults)
	if err != nil {
		return bfs.Unreachable, err
	}
	if v < 0 || v >= o.set.st.G.N() {
		return bfs.Unreachable, fmt.Errorf("oracle: target %d out of range", v)
	}
	return o.run(s, canon)[v], nil
}

// Dists returns the full distance table for one failure event (the slice
// is owned by the set's cache and shared between clients; callers must not
// mutate it).
func (o *Oracle) Dists(s int, faults []int) ([]int32, error) {
	canon, err := o.prepare(s, faults)
	if err != nil {
		return nil, err
	}
	return o.run(s, canon), nil
}

// Route returns an optimal s→v path inside H \ F (nil when disconnected).
// Unlike Dist it always re-runs the BFS (paths are not memoized). Vertex
// IDs on the returned path are G's (the structure preserves them).
func (o *Oracle) Route(s, v int, faults []int) (path.Path, error) {
	canon, err := o.prepare(s, faults)
	if err != nil {
		return nil, err
	}
	if v < 0 || v >= o.set.st.G.N() {
		return nil, fmt.Errorf("oracle: target %d out of range", v)
	}
	o.runner.Run(s, o.translate(canon), nil)
	return o.runner.PathTo(v), nil
}
