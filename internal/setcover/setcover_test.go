package setcover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyBasics(t *testing.T) {
	sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 1, 2, 3}}
	chosen, ok := Greedy(4, sets)
	if !ok {
		t.Fatal("cover exists but not found")
	}
	if len(chosen) != 1 || chosen[0] != 3 {
		t.Fatalf("greedy should pick the full set: %v", chosen)
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	chosen, ok := Greedy(0, [][]int{{1, 2}})
	if !ok || len(chosen) != 0 {
		t.Fatalf("empty universe: %v %v", chosen, ok)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	_, ok := Greedy(3, [][]int{{0}, {1}})
	if ok {
		t.Fatal("infeasible cover reported ok")
	}
}

func TestGreedyIgnoresOutOfRange(t *testing.T) {
	chosen, ok := Greedy(2, [][]int{{0, 5, -1}, {1, 99}})
	if !ok || len(chosen) != 2 {
		t.Fatalf("out-of-range handling: %v %v", chosen, ok)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	sets := [][]int{{0, 1}, {0, 1}, {2}}
	chosen, ok := Greedy(3, sets)
	if !ok || chosen[0] != 0 {
		t.Fatalf("tie should break to lower index: %v", chosen)
	}
}

// Property: greedy output is a valid cover, uses each set at most once, and
// respects the H_n bound against a known optimum on instances where the
// optimum is planted (k disjoint blocks).
func TestGreedyQuickPlantedOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)       // optimum size
		blockSz := 1 + rng.Intn(6) // elements per planted set
		universe := k * blockSz
		var sets [][]int
		// Planted optimum: k disjoint blocks.
		for b := 0; b < k; b++ {
			s := make([]int, 0, blockSz)
			for e := 0; e < blockSz; e++ {
				s = append(s, b*blockSz+e)
			}
			sets = append(sets, s)
		}
		// Noise sets: random subsets.
		for j := 0; j < 10; j++ {
			var s []int
			for e := 0; e < universe; e++ {
				if rng.Intn(3) == 0 {
					s = append(s, e)
				}
			}
			sets = append(sets, s)
		}
		chosen, ok := Greedy(universe, sets)
		if !ok {
			return false
		}
		seenSet := make(map[int]bool)
		covered := make([]bool, universe)
		for _, i := range chosen {
			if seenSet[i] {
				return false
			}
			seenSet[i] = true
			for _, el := range sets[i] {
				covered[el] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		// H_n guarantee against the planted optimum.
		bound := float64(k) * (math.Log(float64(universe)) + 1)
		return float64(len(chosen)) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
