// Package setcover implements the greedy set-cover approximation used by the
// Minimum FT-MBFS algorithm (Section 5). Greedy achieves an H_n ≤ ln n + 1
// approximation factor, which is what Theorem 1.3's O(log n) bound relies
// on.
package setcover

// Greedy covers the universe {0, ..., universe-1} using the given sets
// (each a list of element indices; out-of-range entries are ignored). It
// returns the indices of the chosen sets in selection order, and ok = false
// when the union of all sets does not cover the universe (the partial cover
// built so far is still returned).
//
// Ties between equally-covering sets break toward the lower set index, so
// the algorithm is deterministic.
func Greedy(universe int, sets [][]int) (chosen []int, ok bool) {
	covered := make([]bool, universe)
	remaining := universe
	used := make([]bool, len(sets))
	marginal := func(i int) int {
		c := 0
		for _, el := range sets[i] {
			if el >= 0 && el < universe && !covered[el] {
				c++
			}
		}
		return c
	}
	for remaining > 0 {
		best, bestGain := -1, 0
		for i := range sets {
			if used[i] {
				continue
			}
			if g := marginal(i); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best == -1 {
			return chosen, false
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, el := range sets[best] {
			if el >= 0 && el < universe && !covered[el] {
				covered[el] = true
				remaining--
			}
		}
	}
	return chosen, true
}
