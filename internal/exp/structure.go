package exp

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/core"
)

// E7Classes reproduces Figure 7: the five-class partition of new-ending
// paths, with the per-class per-vertex counts against the proven bounds.
func E7Classes(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "new-ending path classification (Fig. 7)",
		Claim: "§3.4–3.8: per vertex, |A| = O(√n), |B|,|C|,|D|,|E| = O(n^{2/3})",
		Header: []string{"family", "n", "A:(pi,pi)", "B:no-det", "C:indep", "D:pi-int", "E:D-int",
			"maxClass/v", "max/n^(2/3)"},
	}
	for _, fam := range sweepFamilies() {
		n := cfg.sizes()[len(cfg.sizes())-1]
		g := fam.Make(n, 1000)
		src := sourceFor(fam.Name, g, n)
		st, err := core.BuildDual(g, src, cfg.optsCollect(1))
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", fam.Name, err)
		}
		totals := make(map[analysis.PathClass]int)
		maxPerVertex := 0
		for _, tr := range st.Targets {
			if tr == nil {
				continue
			}
			tc := analysis.ClassifyTarget(g, tr)
			for cls, cnt := range tc.Counts {
				totals[cls] += cnt
				if cnt > maxPerVertex {
					maxPerVertex = cnt
				}
			}
		}
		nn := float64(g.N())
		t.AddRow(fam.Name, itoa(g.N()),
			itoa(totals[analysis.ClassPiPi]), itoa(totals[analysis.ClassNoDetour]),
			itoa(totals[analysis.ClassIndependent]), itoa(totals[analysis.ClassPiInterfering]),
			itoa(totals[analysis.ClassDInterfering]),
			itoa(maxPerVertex), f3(float64(maxPerVertex)/math.Pow(nn, 2.0/3.0)))
	}
	return t, nil
}

// E8Detours reproduces Definition 3.7 / Figures 3–4: the pairwise detour
// configuration histogram, asserting Claims 3.8/3.9 (nested and non-nested
// pairs are vertex-disjoint).
func E8Detours(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "detour pair configurations (Def. 3.7)",
		Claim: "Claims 3.8/3.9: non-nested and nested detour pairs are independent (vertex-disjoint)",
		Header: []string{"family", "n", "non-nested", "nested", "interleaved", "x-int", "y-int",
			"(x,y)-int", "same-span", "violations"},
	}
	for _, fam := range sweepFamilies() {
		n := cfg.sizes()[len(cfg.sizes())-1]
		g := fam.Make(n, 1000)
		src := sourceFor(fam.Name, g, n)
		st, err := core.BuildDual(g, src, cfg.optsCollect(1))
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", fam.Name, err)
		}
		hist := make(map[analysis.DetourConfig]int)
		violations := 0
		for _, tr := range st.Targets {
			if tr == nil {
				continue
			}
			bad, h := analysis.CheckDisjointnessClaims(tr)
			violations += len(bad)
			for k, v := range h {
				hist[k] += v
			}
		}
		t.AddRow(fam.Name, itoa(g.N()),
			itoa(hist[analysis.ConfigNonNested]), itoa(hist[analysis.ConfigNested]),
			itoa(hist[analysis.ConfigInterleaved]), itoa(hist[analysis.ConfigXInterleaved]),
			itoa(hist[analysis.ConfigYInterleaved]), itoa(hist[analysis.ConfigXYInterleaved]),
			itoa(hist[analysis.ConfigSameSpan]), itoa(violations))
		if violations > 0 {
			return t, fmt.Errorf("E8 %s: %d disjointness violations", fam.Name, violations)
		}
	}
	return t, nil
}

// E10Kernel reproduces Section 3.2.2: the kernel subgraph claims
// (Lemma 3.14, Claims 3.28/3.29) and Lemma 3.16 (distinct D-divergence
// points).
func E10Kernel(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "kernel subgraph and divergence-point claims",
		Claim: "Lemma 3.14 (kernel), Cl. 3.28/3.29 (regions), Lemma 3.16 (distinct c), Obs 1.4, Cl. 3.12, Lemma 3.46",
		Header: []string{"family", "n", "L3.14 checked", "L3.14", "region ratio",
			"Cl3.28", "L3.16", "Obs1.4", "Cl3.12", "L3.46"},
	}
	for _, fam := range sweepFamilies() {
		n := cfg.sizes()[len(cfg.sizes())-1]
		g := fam.Make(n, 1000)
		src := sourceFor(fam.Name, g, n)
		st, err := core.BuildDual(g, src, cfg.optsCollect(1))
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", fam.Name, err)
		}
		checked, viol314, viol328, viol316 := 0, 0, 0, 0
		violSuffix, violExcl, violMono := 0, 0, 0
		maxRatio := 0.0
		for _, tr := range st.Targets {
			if tr == nil {
				continue
			}
			rep := analysis.CheckKernel(tr)
			checked += rep.Lemma314Checked
			viol314 += len(rep.Lemma314Violations)
			viol328 += rep.FirstCommonOutsideW
			if rep.MaxRegionRatio > maxRatio {
				maxRatio = rep.MaxRegionRatio
			}
			viol316 += len(analysis.CheckDistinctDDivergence(tr))
			violSuffix += analysis.CheckSingleSuffixDisjoint(tr)
			violExcl += len(analysis.CheckExcludedSegments(tr))
			violMono += len(analysis.CheckIndependentMonotonic(g, tr))
		}
		t.AddRow(fam.Name, itoa(g.N()), itoa(checked), itoa(viol314), f3(maxRatio),
			itoa(viol328), itoa(viol316), itoa(violSuffix), itoa(violExcl), itoa(violMono))
		if viol314+viol328+viol316+violSuffix+violExcl+violMono > 0 {
			return t, fmt.Errorf("E10 %s: structural violations (%d/%d/%d/%d/%d/%d)",
				fam.Name, viol314, viol328, viol316, violSuffix, violExcl, violMono)
		}
	}
	return t, nil
}

// RunAll executes the full experiment suite in order.
func RunAll(cfg Config) ([]*Table, error) {
	runs := []struct {
		name string
		fn   func(Config) (*Table, error)
	}{
		{"E1", E1DualSize},
		{"E2", E2LowerBound},
		{"E3", E3Approx},
		{"E4", E4FTDiameter},
		{"E5", E5PerVertex},
		{"E6", E6SingleVsDual},
		{"E7", E7Classes},
		{"E8", E8Detours},
		{"E9", E9Verify},
		{"E10", E10Kernel},
		{"E11", E11Ablation},
		{"E12", E12Beyond},
		{"E13", E13Selection},
	}
	out := make([]*Table, 0, len(runs))
	for _, r := range runs {
		tbl, err := r.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", r.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}
