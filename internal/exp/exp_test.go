package exp

import (
	"math"
	"strings"
	"testing"
)

func tinyCfg() Config {
	return Config{Sizes: []int{30, 45}, Seeds: 1}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "demo",
		Claim:  "c",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddNote("note %d", 7)
	s := tbl.String()
	for _, want := range []string{"== T: demo", "paper: c", "a", "bb", "note: note 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFitExponent(t *testing.T) {
	// y = 3 x^2 → slope 2.
	xs := []float64{10, 20, 40, 80}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if got := FitExponent(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slope = %v", got)
	}
	if !math.IsNaN(FitExponent([]float64{1}, []float64{1})) {
		t.Fatal("single point should give NaN")
	}
	if !math.IsNaN(FitExponent([]float64{1, -2}, []float64{1, 2})) {
		t.Fatal("non-positive points should be dropped")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if len(c.sizes()) == 0 || c.seeds() == 0 {
		t.Fatal("zero config should self-upgrade")
	}
	full := Config{Full: true}
	if len(full.sizes()) < 4 {
		t.Fatal("full profile should sweep more sizes")
	}
}

// Each experiment must run clean at tiny scale and produce rows.
func TestExperimentsRun(t *testing.T) {
	cfg := tinyCfg()
	runs := []struct {
		name string
		fn   func(Config) (*Table, error)
	}{
		{"E1", E1DualSize},
		{"E2", E2LowerBound},
		{"E3", E3Approx},
		{"E4", E4FTDiameter},
		{"E5", E5PerVertex},
		{"E6", E6SingleVsDual},
		{"E7", E7Classes},
		{"E8", E8Detours},
		{"E9", E9Verify},
		{"E10", E10Kernel},
		{"E11", E11Ablation},
		{"E12", E12Beyond},
		{"E13", E13Selection},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			tbl, err := r.fn(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			if tbl.ID != r.name {
				t.Fatalf("table ID %q", tbl.ID)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll repeats all experiments")
	}
	tables, err := RunAll(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Fatalf("got %d tables", len(tables))
	}
}
