package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/multifail"
	"repro/internal/verify"
)

// E13Selection is the selection-rule ablation: Cons2FTBFS (earliest
// π-divergence, then earliest detour divergence — the rules the size proof
// needs) against the plain canonical relevant-tree builder at f = 2. Both
// are correct; the measured delta is what the rules buy in practice.
func E13Selection(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "selection-rule ablation (Cons2FTBFS vs canonical closure, f=2)",
		Claim: "§3 road map: prefer paths diverging closest to s (and to x_τ) — needed by the O(n^{5/3}) proof",
		Header: []string{"family", "n", "Cons2FTBFS", "canonical", "canon/cons", "cons-searches",
			"canon-searches"},
	}
	for _, fam := range sweepFamilies() {
		for _, n := range cfg.sizes() {
			g := fam.Make(n, 1000)
			if g.M() > 1600 {
				continue
			}
			src := sourceFor(fam.Name, g, n)
			cons, err := core.BuildDual(g, src, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E13 cons %s: %w", fam.Name, err)
			}
			canon, err := multifail.Build(g, src, 2, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E13 canon %s: %w", fam.Name, err)
			}
			t.AddRow(fam.Name, itoa(g.N()), itoa(cons.NumEdges()), itoa(canon.NumEdges()),
				f3(float64(canon.NumEdges())/float64(cons.NumEdges())),
				itoa(cons.Stats.Dijkstras), itoa(canon.Stats.Dijkstras))
		}
	}
	t.AddNote("both structures verify; the ratio isolates the effect of the divergence-preference rules")
	return t, nil
}

// E12Beyond reproduces the paper's "Beyond two faults" discussion as a
// measurement: f-failure structures for f = 0..3 built by relevant-fault-
// tree enumeration, all verified, with sizes against the conjectured
// O(n^{2-1/(f+1)}) envelope and the search-count savings over the m^f
// closure.
func E12Beyond(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "beyond two faults: relevant-fault-tree structures (f = 0..3)",
		Claim: "§2 'Beyond two faults': f-FT-BFS via replacement-path closure; conjectured Θ(n^{2-1/(f+1)})",
		Header: []string{"family", "n", "f", "|E(H_f)|", "|H|/n^e(f)", "searches", "exhaustive-searches",
			"verified"},
	}
	for _, fam := range sweepFamilies() {
		if fam.Name == "adversarial-G*2" {
			continue // its f=3 relevant tree is deep; covered by E2's f=3 row
		}
		n := cfg.sizes()[0]
		g := fam.Make(n, 1000)
		if g.M() > 400 {
			continue
		}
		for f := 0; f <= 3; f++ {
			st, err := multifail.Build(g, 0, f, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E12 %s f=%d: %w", fam.Name, f, err)
			}
			status := "sampled-ok"
			if f <= 2 || g.M() <= 120 {
				rep := verify.Structure(g, st, []int{0}, f, cfg.verifyOpts())
				if !rep.OK {
					return t, fmt.Errorf("E12 %s f=%d: verification failed: %v",
						fam.Name, f, rep.Violations[0])
				}
				status = "exhaustive-ok"
			} else {
				rep := verify.Sampled(g, st.DisabledEdges(), []int{0}, f, 400, 1, cfg.verifyOpts())
				if !rep.OK {
					return t, fmt.Errorf("E12 %s f=%d: sampled verification failed: %v",
						fam.Name, f, rep.Violations[0])
				}
			}
			exponent := 2.0 - 1.0/float64(f+1)
			exhaustiveCost := 1.0
			for k := 1; k <= f; k++ {
				exhaustiveCost = exhaustiveCost * float64(g.M()-k+1) / float64(k)
			}
			t.AddRow(fam.Name, itoa(g.N()), itoa(f), itoa(st.NumEdges()),
				f3(float64(st.NumEdges())/math.Pow(float64(g.N()), exponent)),
				itoa(st.Stats.Dijkstras), f2(exhaustiveCost), status)
		}
	}
	t.AddNote("e(f) = 2-1/(f+1): the conjectured tight exponent (matches the Thm-4.1 lower bound)")
	return t, nil
}
