package exp

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/verify"
)

// E2LowerBound reproduces Theorem 1.2 / Figures 10–12: the adversarial
// instances G*_f whose bipartite block is necessary in full, giving the
// Ω(σ^{1/(f+1)} · n^{2-1/(f+1)}) lower bound.
func E2LowerBound(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "lower-bound instances G*_f (necessity-certified)",
		Claim:  "Theorem 1.2: any f-FT-MBFS needs Ω(σ^{1/(f+1)}·n^{2-1/(f+1)}) edges; f=2,σ=1 → Ω(n^{5/3})",
		Header: []string{"f", "σ", "n", "d", "leaves", "|X|", "forced", "forced/pred", "necess-checked"},
	}
	fs := []int{1, 2}
	if cfg.Full {
		fs = append(fs, 3)
	}
	sizes := cfg.sizes()
	for _, f := range fs {
		var xs, ys []float64
		for _, n := range sizes {
			scale := n * (f + 1) // towers grow with f; give the budget room
			inst, err := lowerbound.NewInstanceCtx(cfg.ctx(), f, scale)
			if err != nil {
				// "n too small" rows are skipped; a cancelled sweep must
				// NOT masquerade as a completed (truncated) table.
				if cerr := cfg.ctx().Err(); cerr != nil {
					return nil, cerr
				}
				continue
			}
			nn := float64(inst.G.N())
			pred := math.Pow(nn, 2.0-1.0/float64(f+1))
			checked, err := certifyNecessity(inst, 40)
			if err != nil {
				return nil, fmt.Errorf("E2 f=%d n=%d: %w", f, scale, err)
			}
			t.AddRow(itoa(f), "1", itoa(inst.G.N()), itoa(inst.Tower.D),
				itoa(len(inst.Tower.Leaves)), itoa(len(inst.X)),
				itoa(len(inst.Bipartite)), f3(float64(len(inst.Bipartite))/pred), itoa(checked))
			xs = append(xs, nn)
			ys = append(ys, float64(len(inst.Bipartite)))
		}
		if len(xs) >= 2 {
			t.AddNote("f=%d: fitted forced-edge exponent %.2f (claim %.2f)",
				f, FitExponent(xs, ys), 2.0-1.0/float64(f+1))
		}
	}
	// Multi-source sweep at fixed f=1.
	for _, sigma := range []int{1, 2, 4} {
		n := sizes[len(sizes)-1] * 4
		mi, err := lowerbound.NewMultiInstanceCtx(cfg.ctx(), 1, sigma, n)
		if err != nil {
			if cerr := cfg.ctx().Err(); cerr != nil {
				return nil, cerr
			}
			continue
		}
		nn := float64(mi.G.N())
		pred := math.Pow(float64(sigma), 0.5) * math.Pow(nn, 1.5)
		t.AddRow("1", itoa(sigma), itoa(mi.G.N()), itoa(mi.Towers[0].D),
			itoa(len(mi.Towers[0].Leaves)*sigma), itoa(len(mi.X)),
			itoa(mi.BipartiteCount), f3(float64(mi.BipartiteCount)/pred), "-")
	}
	t.AddNote("σ-scaling uses σ^{1/(f+1)} per the abstract/construction; Thm 4.1's statement " +
		"σ^{1-1/(f+1)} appears to be a typo (see EXPERIMENTS.md)")
	return t, nil
}

// certifyNecessity verifies, for up to maxLeaves leaves (all X per leaf via
// the first X vertex), that the bipartite edge is required under the leaf's
// fault set. Returns the number of (leaf, x) pairs checked.
func certifyNecessity(inst *lowerbound.Instance, maxLeaves int) (int, error) {
	r := bfs.NewRunner(inst.G)
	checked := 0
	for l := range inst.Tower.Leaves {
		if l >= maxLeaves {
			break
		}
		faults := inst.FaultSetFor(l)
		if len(faults) > inst.F {
			return checked, fmt.Errorf("leaf %d: fault set too large", l)
		}
		lf := inst.Tower.Leaves[l]
		r.Run(inst.Source, faults, nil)
		want := int32(lf.Depth + 1)
		if got := r.Dist(inst.X[0]); got != want {
			return checked, fmt.Errorf("leaf %d: dist %d, want %d", l, got, want)
		}
		eid := inst.BipartiteEdge(l, 0)
		r.Run(inst.Source, append([]int{eid}, faults...), nil)
		if got := r.Dist(inst.X[0]); got != bfs.Unreachable && got <= want {
			return checked, fmt.Errorf("leaf %d: edge not necessary", l)
		}
		checked++
	}
	return checked, nil
}

// E3Approx reproduces Theorem 1.3: the O(log n)-approximate Minimum
// FT-MBFS against the exact constructions and the spanning-tree floor.
func E3Approx(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "O(log n)-approximation for Minimum FT-MBFS",
		Claim:  "Theorem 1.3: greedy set-cover structure ≤ Θ(log n)·OPT; near-linear when OPT is",
		Header: []string{"family", "f", "σ", "n", "m", "approx", "exact-alg", "n-1", "approx/exact", "ln|U|"},
	}
	cases := []struct {
		name string
		f    int
		nsrc int
	}{
		{"tree+chords", 1, 1},
		{"tree+chords", 2, 1},
		{"cycle", 1, 1},
		{"gnp-logn", 1, 1},
		{"gnp-logn", 2, 1},
		{"gnp-logn", 1, 2},
	}
	n := 30
	if cfg.Full {
		n = 48
	}
	for _, c := range cases {
		var g *graph.Graph
		switch c.name {
		case "tree+chords":
			g = gen.TreePlusChords(n, n/8, 3)
		case "cycle":
			g = gen.Cycle(n)
		default:
			g = gen.SparseGNP(n, 4, 3)
		}
		sources := []int{0}
		if c.nsrc == 2 {
			sources = []int{0, n / 2}
		}
		ap, err := approx.Build(g, sources, c.f, cfg.opts(0))
		if err != nil {
			return nil, fmt.Errorf("E3 %s f=%d: %w", c.name, c.f, err)
		}
		var exact *core.Structure
		build := core.BuildSingle
		if c.f == 2 {
			build = core.BuildDual
		}
		exact, err = core.BuildMultiSource(g, sources, cfg.opts(0), build)
		if err != nil {
			return nil, fmt.Errorf("E3 exact %s: %w", c.name, err)
		}
		// Both must verify.
		if rep := verify.Structure(g, ap, sources, c.f, cfg.verifyOpts()); !rep.OK {
			return nil, fmt.Errorf("E3 %s: approx failed verification: %v", c.name, rep.Violations[0])
		}
		u := float64(approx.NumFaultSets(g.M(), c.f) * len(sources))
		t.AddRow(c.name, itoa(c.f), itoa(len(sources)), itoa(g.N()), itoa(g.M()),
			itoa(ap.NumEdges()), itoa(exact.NumEdges()), itoa(g.N()-1),
			f3(float64(ap.NumEdges())/float64(exact.NumEdges())), f2(math.Log(u)))
	}
	return t, nil
}

// E4FTDiameter reproduces Observation 1.6: graphs with small FT-diameter
// D_f(G) admit structures of size O(D_f^f · n).
func E4FTDiameter(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "FT-diameter bound",
		Claim:  "Obs 1.6: an f-FT-BFS of size O(D_f(G)^f · n) exists (union of fault trees)",
		Header: []string{"graph", "n", "m", "D_2", "|H| (exhaustive)", "D_2^2*n", "ratio"},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"hypercube-4", gen.Hypercube(4)},
		{"complete-12", gen.Complete(12)},
		{"gnp-dense-24", gen.GNP(24, 0.5, 5)},
		{"grid-5x5", gen.Grid(5, 5)},
	}
	if cfg.Full {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{"hypercube-5", gen.Hypercube(5)})
	}
	for _, spec := range graphs {
		g := spec.g
		d2 := ftDiameter(g, 0)
		st, err := core.BuildExhaustive(g, 0, 2, nil)
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", spec.name, err)
		}
		bound := float64(d2) * float64(d2) * float64(g.N())
		t.AddRow(spec.name, itoa(g.N()), itoa(g.M()), itoa(int(d2)),
			itoa(st.NumEdges()), f2(bound), f3(float64(st.NumEdges())/bound))
	}
	return t, nil
}

// ftDiameter computes D_2(G) from the given source: the maximum finite
// distance from s under any single edge fault (|F| ≤ f-1 = 1).
func ftDiameter(g *graph.Graph, s int) int32 {
	r := bfs.NewRunner(g)
	var d int32
	upd := func() {
		for v := 0; v < g.N(); v++ {
			if dv := r.Dist(v); dv > d {
				d = dv
			}
		}
	}
	r.Run(s, nil, nil)
	upd()
	for e := 0; e < g.M(); e++ {
		r.Run(s, []int{e}, nil)
		upd()
	}
	return d
}

// E9Verify reproduces the correctness theorems (Lemmas 3.1, 3.2): the
// constructed structures pass exhaustive dual-failure verification across
// families and seeds.
func E9Verify(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "exhaustive correctness verification",
		Claim:  "Lemma 3.2: H is a dual-failure FT-BFS structure (all |F| ≤ 2 preserved)",
		Header: []string{"family", "n", "m", "|H|", "fault-sets", "pruned", "violations"},
	}
	for _, fam := range sweepFamilies() {
		n := cfg.sizes()[0]
		g := fam.Make(n, 1000)
		if g.M() > 900 {
			continue
		}
		src := sourceFor(fam.Name, g, n)
		st, err := core.BuildDual(g, src, cfg.opts(1))
		if err != nil {
			return nil, fmt.Errorf("E9 %s: %w", fam.Name, err)
		}
		rep := verify.Structure(g, st, []int{src}, 2, cfg.verifyOpts())
		viol := len(rep.Violations)
		t.AddRow(fam.Name, itoa(g.N()), itoa(g.M()), itoa(st.NumEdges()),
			itoa(rep.FaultSetsChecked), itoa(rep.FaultSetsPruned), itoa(viol))
		if !rep.OK {
			return t, fmt.Errorf("E9 %s: verification failed: %v", fam.Name, rep.Violations[0])
		}
	}
	return t, nil
}
