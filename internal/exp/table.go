// Package exp is the experiment harness: it regenerates every theorem,
// observation and constructive figure of the paper as a measured table
// (experiments E1–E13 in DESIGN.md §4) and renders the results as aligned
// text. Benchmarks and cmd/ftbfsbench drive it at different scales.
package exp

import (
	"fmt"
	"math"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper artifact being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-text footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// FitExponent returns the least-squares slope of log(y) against log(x):
// the empirical growth exponent of a size series. It returns NaN with
// fewer than two valid points.
func FitExponent(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// f2 formats a float with two decimals; NaN renders as "-".
func f2(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	return fmt.Sprintf("%.2f", x)
}

// f3 formats a float with three decimals; NaN renders as "-".
func f3(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	return fmt.Sprintf("%.3f", x)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
