package exp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/verify"
)

// Config scales the experiment suite. The zero value is upgraded to the
// quick profile (suitable for tests and `go test -bench`).
type Config struct {
	// Sizes is the vertex-count sweep for size experiments.
	Sizes []int
	// Seeds is the number of replicate seeds per point.
	Seeds int
	// Full enables the slow extras (f = 3 lower bounds, larger
	// approximation instances).
	Full bool
	// Ctx cancels a sweep mid-run: it is threaded into every builder,
	// verifier and lower-bound construction the experiments invoke, so
	// ftbfsbench's SIGINT/-timeout path stops inside a measurement, not
	// after it. nil never cancels.
	Ctx context.Context
}

func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// opts returns builder options carrying the sweep's context. Seed
// semantics match a plain &core.Options{Seed: seed} (and nil options for
// seed 0), so threading the context changes no measured output.
func (c Config) opts(seed int64) *core.Options {
	return &core.Options{Seed: seed, Ctx: c.Ctx}
}

// optsCollect is opts plus replacement-path retention (the analysis
// experiments E7/E8/E10).
func (c Config) optsCollect(seed int64) *core.Options {
	o := c.opts(seed)
	o.CollectPaths = true
	return o
}

// verifyOpts returns verifier options carrying the sweep's context (nil
// when there is none, preserving the verifier's zero-value defaults).
func (c Config) verifyOpts() *verify.Options {
	if c.Ctx == nil {
		return nil
	}
	return &verify.Options{Ctx: c.Ctx}
}

func (c Config) sizes() []int {
	if len(c.Sizes) > 0 {
		return c.Sizes
	}
	if c.Full {
		return []int{60, 100, 150, 220, 300}
	}
	return []int{40, 60, 90}
}

func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	return 2
}

// sweepFamilies are the graph families used by the size experiments.
func sweepFamilies() []gen.Family {
	fams := gen.StandardFamilies()
	out := fams[:0]
	for _, f := range fams {
		if f.Name == "gnp-dense" {
			continue // tiny diameter: structurally trivial for FT-BFS
		}
		out = append(out, f)
	}
	out = append(out, gen.Family{Name: "adversarial-G*2", Make: func(n int, seed int64) *graph.Graph {
		inst, err := adversarialInstance(n)
		if err != nil {
			return gen.SparseGNP(n, 6, seed)
		}
		return inst.G
	}})
	return out
}

// adversarialInstance maps a sweep size to a G*_2 instance big enough for
// its bipartite block to dominate (3× the nominal budget).
func adversarialInstance(n int) (*lowerbound.Instance, error) {
	return lowerbound.NewInstance(2, 3*n)
}

// sourceFor picks the experiment source: the adversarial family must be
// rooted at the tower root; everything else uses vertex 0.
func sourceFor(name string, g *graph.Graph, n int) int {
	if name == "adversarial-G*2" {
		inst, err := adversarialInstance(n)
		if err == nil && inst.G.N() == g.N() {
			return inst.Source
		}
	}
	return 0
}

// E1DualSize reproduces Theorem 1.1: dual FT-BFS sizes across families and
// sizes, against the n^{5/3} envelope.
func E1DualSize(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "dual-failure FT-BFS size (Cons2FTBFS)",
		Claim:  "Theorem 1.1: |E(H)| = O(n^{5/3}); per-vertex |New(v)| = O(n^{2/3})",
		Header: []string{"family", "n", "m", "|E(H)|", "|H|/n^(5/3)", "maxNew(v)", "maxNew/n^(2/3)", "fallbacks"},
	}
	for _, fam := range sweepFamilies() {
		var xs, ys []float64
		for _, n := range cfg.sizes() {
			sumH, sumNew, fallbacks := 0, 0, 0
			var g *graph.Graph
			for s := 0; s < cfg.seeds(); s++ {
				g = fam.Make(n, int64(1000+s))
				src := sourceFor(fam.Name, g, n)
				st, err := core.BuildDual(g, src, cfg.opts(int64(s+1)))
				if err != nil {
					return nil, fmt.Errorf("E1 %s n=%d: %w", fam.Name, n, err)
				}
				sumH += st.NumEdges()
				sumNew += st.Stats.MaxNewEdges
				fallbacks += st.Stats.Fallbacks
			}
			h := float64(sumH) / float64(cfg.seeds())
			mx := float64(sumNew) / float64(cfg.seeds())
			nn := float64(g.N())
			t.AddRow(fam.Name, itoa(g.N()), itoa(g.M()), f2(h),
				f3(h/math.Pow(nn, 5.0/3.0)), f2(mx), f3(mx/math.Pow(nn, 2.0/3.0)), itoa(fallbacks))
			xs = append(xs, nn)
			ys = append(ys, h)
		}
		t.AddNote("%s: fitted size exponent %.2f (claim ≤ 5/3 ≈ 1.67)", fam.Name, FitExponent(xs, ys))
	}
	return t, nil
}

// E6SingleVsDual reproduces the Θ(n^{3/2}) vs Θ(n^{5/3}) gap between the
// single-failure structure of [10] and the dual structure of Theorem 1.1.
func E6SingleVsDual(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "single- vs dual-failure structure size",
		Claim:  "[10]: single = O(n^{3/2}); Thm 1.1: dual = O(n^{5/3}); gap up to n^{1/6}",
		Header: []string{"family", "n", "|H_1|", "|H_2|", "ratio", "|H1|/n^1.5", "|H2|/n^1.67"},
	}
	for _, fam := range sweepFamilies() {
		for _, n := range cfg.sizes() {
			g := fam.Make(n, 1000)
			src := sourceFor(fam.Name, g, n)
			one, err := core.BuildSingle(g, src, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E6 single %s: %w", fam.Name, err)
			}
			two, err := core.BuildDual(g, src, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E6 dual %s: %w", fam.Name, err)
			}
			nn := float64(g.N())
			t.AddRow(fam.Name, itoa(g.N()), itoa(one.NumEdges()), itoa(two.NumEdges()),
				f3(float64(two.NumEdges())/float64(one.NumEdges())),
				f3(float64(one.NumEdges())/math.Pow(nn, 1.5)),
				f3(float64(two.NumEdges())/math.Pow(nn, 5.0/3.0)))
		}
	}
	return t, nil
}

// E5PerVertex reproduces the per-vertex bounds: Obs 3.17 and Lemma 3.18
// (|E1|, |E2| = O(√n)) and the Section-3 bound |New(v)| = O(n^{2/3}).
func E5PerVertex(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "per-vertex new-edge counts",
		Claim:  "Obs 3.17, Lemma 3.18: max|E1|,max|E2| = O(√n); §3: max|New(v)| = O(n^{2/3})",
		Header: []string{"family", "n", "maxE1", "maxE2", "maxNew", "maxE1/√n", "maxE2/√n", "maxNew/n^(2/3)"},
	}
	for _, fam := range sweepFamilies() {
		for _, n := range cfg.sizes() {
			g := fam.Make(n, 1000)
			src := sourceFor(fam.Name, g, n)
			st, err := core.BuildDual(g, src, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E5 %s: %w", fam.Name, err)
			}
			nn := float64(g.N())
			t.AddRow(fam.Name, itoa(g.N()), itoa(st.Stats.MaxE1), itoa(st.Stats.MaxE2), itoa(st.Stats.MaxNewEdges),
				f3(float64(st.Stats.MaxE1)/math.Sqrt(nn)),
				f3(float64(st.Stats.MaxE2)/math.Sqrt(nn)),
				f3(float64(st.Stats.MaxNewEdges)/math.Pow(nn, 2.0/3.0)))
		}
	}
	return t, nil
}

// E11Ablation reproduces the design-choice ablation: full replacement-path
// union vs last-edge sparsification (the paper's key trick) vs the plain
// exhaustive last-edge closure.
func E11Ablation(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "last-edge sparsification ablation",
		Claim:  "§3: keeping only LastE(P) per replacement path suffices (Lemma 3.2)",
		Header: []string{"family", "n", "m", "tree", "dual(lastE)", "full-paths", "exhaustive", "full/dual"},
	}
	sizes := cfg.sizes()
	if len(sizes) > 2 {
		sizes = sizes[:2] // exhaustive builder is O(m^2) Dijkstras
	}
	for _, fam := range sweepFamilies() {
		for _, n := range sizes {
			g := fam.Make(n, 1000)
			if g.M() > 1200 {
				continue
			}
			src := sourceFor(fam.Name, g, n)
			dual, err := core.BuildDual(g, src, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E11 dual %s: %w", fam.Name, err)
			}
			full, err := core.BuildFullPaths(g, src, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E11 full %s: %w", fam.Name, err)
			}
			exh, err := core.BuildExhaustive(g, src, 2, cfg.opts(1))
			if err != nil {
				return nil, fmt.Errorf("E11 exhaustive %s: %w", fam.Name, err)
			}
			t.AddRow(fam.Name, itoa(g.N()), itoa(g.M()), itoa(g.N()-1),
				itoa(dual.NumEdges()), itoa(full.NumEdges()), itoa(exh.NumEdges()),
				f3(float64(full.NumEdges())/float64(dual.NumEdges())))
		}
	}
	return t, nil
}
