package dot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestWritePlain(t *testing.T) {
	g := gen.PathGraph(3)
	var buf bytes.Buffer
	if err := Write(&buf, g, Options{}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`graph "G" {`, "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestWriteStructureAndFaults(t *testing.T) {
	g := gen.Cycle(5)
	st, err := core.BuildSingle(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Write(&buf, g, Options{Name: "demo", Structure: st, Faults: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `graph "demo" {`) {
		t.Fatal("name missing")
	}
	if !strings.Contains(s, "fillcolor=gold") {
		t.Fatal("source highlight missing")
	}
	if !strings.Contains(s, "color=red") {
		t.Fatal("fault styling missing")
	}
	// A cycle's single-failure structure keeps every edge, so no dotted
	// edges here; confirm on a graph with discarded edges instead.
	g2 := gen.Complete(5)
	st2, err := core.BuildSingle(g2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Write(&buf, g2, Options{Structure: st2}); err != nil {
		t.Fatal(err)
	}
	if st2.NumEdges() < g2.M() && !strings.Contains(buf.String(), "style=dotted") {
		t.Fatal("discarded-edge styling missing")
	}
}
