// Package dot renders graphs and FT-BFS structures in Graphviz DOT format:
// structure edges solid, discarded edges dotted, the source highlighted,
// and an optional fault set struck in red. Handy for inspecting what the
// builders keep on small instances.
package dot

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
)

// Options controls the rendering. Zero value renders a plain graph.
type Options struct {
	// Name is the graph name in the DOT header (default "G").
	Name string
	// Structure, when set, draws its edges solid black and all other
	// edges dotted gray, and rings the structure's sources.
	Structure *core.Structure
	// Faults draws the given edge IDs red and dashed.
	Faults []int
	// Labels adds vertex IDs as labels (always on; field reserved).
	Labels bool
}

// Write renders g to w.
func Write(w io.Writer, g *graph.Graph, opts Options) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle, fontsize=10, width=0.3];\n")
	sources := map[int]bool{}
	if opts.Structure != nil {
		for _, s := range opts.Structure.Sources {
			sources[s] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		attrs := ""
		if sources[v] {
			attrs = " [style=filled, fillcolor=gold, penwidth=2]"
		}
		fmt.Fprintf(bw, "  %d%s;\n", v, attrs)
	}
	faulted := map[int]bool{}
	for _, id := range opts.Faults {
		faulted[id] = true
	}
	for id := 0; id < g.M(); id++ {
		e := g.EdgeAt(id)
		attr := ""
		switch {
		case faulted[id]:
			attr = ` [color=red, style=dashed, penwidth=2]`
		case opts.Structure != nil && !opts.Structure.Edges.Has(id):
			attr = ` [color=gray70, style=dotted]`
		case opts.Structure != nil:
			attr = ` [penwidth=1.5]`
		}
		fmt.Fprintf(bw, "  %d -- %d%s;\n", e.U, e.V, attr)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
