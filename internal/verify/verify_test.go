package verify

import (
	"context"

	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDetectsMissingEdgeF0(t *testing.T) {
	g := gen.PathGraph(4)
	// H missing the last path edge: fault-free distances already break.
	rep := FTBFS(g, []int{2}, []int{0}, 0, nil)
	if rep.OK {
		t.Fatal("broken structure passed")
	}
	v := rep.Violations[0]
	if v.V != 3 || v.GotH != -1 || v.WantG != 3 {
		t.Fatalf("violation details wrong: %+v", v)
	}
}

func TestDetectsSingleFaultGap(t *testing.T) {
	g := gen.Cycle(6)
	// H = spanning path only (drop edge 5-0... pick the closing edge).
	closing, _ := g.EdgeID(5, 0)
	rep := FTBFS(g, []int{closing}, []int{0}, 1, nil)
	if rep.OK {
		t.Fatal("cycle minus closing edge cannot tolerate 1 fault")
	}
	// But it is a perfectly fine f=0 structure... it is NOT: dist(0,5)
	// changes from 1 to 5. Confirm f=0 also fails.
	rep0 := FTBFS(g, []int{closing}, []int{0}, 0, nil)
	if rep0.OK {
		t.Fatal("f=0 should fail too: distance to 5 doubled")
	}
}

func TestAcceptsFullGraph(t *testing.T) {
	g := gen.GNP(14, 0.3, 3)
	for f := 0; f <= 2; f++ {
		rep := FTBFS(g, nil, []int{0}, f, nil)
		if !rep.OK {
			t.Fatalf("G itself must verify at f=%d: %v", f, rep.Violations)
		}
	}
}

func TestRejectsBadF(t *testing.T) {
	g := gen.PathGraph(3)
	if rep := FTBFS(g, nil, []int{0}, 4, nil); rep.OK {
		t.Fatal("f=4 exhaustive should be rejected")
	}
	if rep := FTBFS(g, nil, []int{0}, -1, nil); rep.OK {
		t.Fatal("negative f should be rejected")
	}
}

func TestExhaustiveF3(t *testing.T) {
	// A cycle needs all edges for f ≥ 1; the full graph passes at f=3,
	// dropping one edge fails.
	g := gen.Cycle(7)
	if rep := FTBFS(g, nil, []int{0}, 3, nil); !rep.OK {
		t.Fatalf("full cycle should verify at f=3: %v", rep.Violations)
	}
	if rep := FTBFS(g, []int{0}, []int{0}, 3, nil); rep.OK {
		t.Fatal("cycle minus an edge passed f=3")
	}
	// The f=3 guard: a big dense graph must be rejected, not attempted.
	big := gen.Complete(60)
	if rep := FTBFS(big, nil, []int{0}, 3, nil); rep.OK {
		t.Fatal("oversized f=3 exhaustive should be rejected")
	}
}

func TestPrunedMatchesFullEnumeration(t *testing.T) {
	g := gen.Complete(12) // dense graph, sparse structure → real pruning
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	off := st.DisabledEdges()
	pruned := FTBFS(g, off, []int{0}, 2, nil)
	full := FTBFS(g, off, []int{0}, 2, &Options{NoPrune: true})
	if pruned.OK != full.OK {
		t.Fatalf("pruned=%v full=%v disagree", pruned.OK, full.OK)
	}
	if pruned.FaultSetsPruned == 0 {
		t.Fatal("expected some pruning on a sparse structure")
	}
	if pruned.FaultSetsChecked+pruned.FaultSetsPruned != full.FaultSetsChecked {
		t.Fatalf("checked+pruned=%d, full=%d",
			pruned.FaultSetsChecked+pruned.FaultSetsPruned, full.FaultSetsChecked)
	}
}

// TestPrunedCatchesViolationsTooWhenBroken plants a violation in an edge
// outside H and confirms the pruned pass still catches it (pruning only
// applies once fault-free distances hold).
func TestPrunedCatchesPlantedViolation(t *testing.T) {
	// Graph: triangle 0-1-2 plus pendant 2-3.
	gb := graph.NewBuilder(4)
	gb.MustAddEdge(0, 1)
	gb.MustAddEdge(1, 2)
	gb.MustAddEdge(0, 2)
	gb.MustAddEdge(2, 3)
	g := gb.Freeze()
	// H drops edge (0,2): fault-free dist(2) becomes 2 ≠ 1 → caught in
	// the base pass, pruning never hides it.
	id, _ := g.EdgeID(0, 2)
	rep := FTBFS(g, []int{id}, []int{0}, 1, nil)
	if rep.OK {
		t.Fatal("violation not caught")
	}
}

func TestMaxViolationsCap(t *testing.T) {
	g := gen.PathGraph(10)
	// Empty H: every vertex violates at F=∅ already.
	off := make([]int, g.M())
	for i := range off {
		off[i] = i
	}
	rep := FTBFS(g, off, []int{0}, 0, &Options{MaxViolations: 3})
	if rep.OK || len(rep.Violations) != 3 {
		t.Fatalf("cap not respected: %d violations", len(rep.Violations))
	}
}

func TestMultiSourceVerification(t *testing.T) {
	g := gen.GNP(14, 0.3, 21)
	st, err := core.BuildMultiSource(g, []int{0, 7}, nil, core.BuildDual)
	if err != nil {
		t.Fatal(err)
	}
	rep := Structure(g, st, []int{0, 7}, 2, nil)
	if !rep.OK {
		t.Fatalf("multi-source: %v", rep.Violations)
	}
	// The single-source structure for 0 alone should generally fail for
	// source 7 at f=2 unless the graph is tiny; just confirm the verifier
	// runs and reports coherently.
	single, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep7 := Structure(g, single, []int{7}, 0, nil)
	_ = rep7 // may or may not pass; the call must simply not panic
}

func TestSampledVerifier(t *testing.T) {
	g := gen.GNP(20, 0.25, 5)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := Sampled(g, st.DisabledEdges(), []int{0}, 2, 300, 7, nil)
	if !rep.OK {
		t.Fatalf("sampled found violations in a verified structure: %v", rep.Violations)
	}
	if rep.FaultSetsChecked != 300 {
		t.Fatalf("checked %d, want 300", rep.FaultSetsChecked)
	}
	// Sampled must also catch a gross violation quickly: empty H.
	off := make([]int, g.M())
	for i := range off {
		off[i] = i
	}
	rep = Sampled(g, off, []int{0}, 2, 50, 7, nil)
	if rep.OK {
		t.Fatal("sampled missed empty structure")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Source: 0, Faults: []int{3}, V: 5, GotH: -1, WantG: 4}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := gen.GNP(18, 0.3, 17)
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	off := st.DisabledEdges()
	seq := FTBFS(g, off, []int{0}, 2, nil)
	for _, workers := range []int{2, 4} {
		par := FTBFS(g, off, []int{0}, 2, &Options{Parallelism: workers})
		if par.OK != seq.OK {
			t.Fatalf("workers=%d: OK %v vs %v", workers, par.OK, seq.OK)
		}
		if par.FaultSetsChecked+par.FaultSetsPruned != seq.FaultSetsChecked+seq.FaultSetsPruned {
			t.Fatalf("workers=%d: coverage %d+%d vs %d+%d", workers,
				par.FaultSetsChecked, par.FaultSetsPruned,
				seq.FaultSetsChecked, seq.FaultSetsPruned)
		}
	}
}

func TestParallelFindsViolationsDeterministically(t *testing.T) {
	g := gen.Cycle(10)
	closing, _ := g.EdgeID(9, 0)
	off := []int{closing}
	a := FTBFS(g, off, []int{0}, 1, &Options{Parallelism: 4, MaxViolations: 5})
	b := FTBFS(g, off, []int{0}, 1, &Options{Parallelism: 4, MaxViolations: 5})
	if a.OK || b.OK {
		t.Fatal("broken structure passed in parallel mode")
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("nondeterministic violation counts: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i].String() != b.Violations[i].String() {
			t.Fatalf("nondeterministic violation order at %d", i)
		}
	}
}

func TestParallelF3AndVertexEdgeCases(t *testing.T) {
	// Parallel f=3 on a small cycle.
	g := gen.Cycle(7)
	rep := FTBFS(g, nil, []int{0}, 3, &Options{Parallelism: 3})
	if !rep.OK {
		t.Fatalf("parallel f=3 full cycle: %v", rep.Violations)
	}
	rep = FTBFS(g, []int{0}, []int{0}, 3, &Options{Parallelism: 3})
	if rep.OK {
		t.Fatal("parallel f=3 missed a violation")
	}
	// Parallel f=0: base pass only.
	rep = FTBFS(g, nil, []int{0}, 0, &Options{Parallelism: 2})
	if !rep.OK || rep.FaultSetsChecked != 1 {
		t.Fatalf("parallel f=0: checked=%d", rep.FaultSetsChecked)
	}
}

func TestVertexVerifierMultiSource(t *testing.T) {
	g := gen.GNP(12, 0.35, 3)
	st, err := core.BuildMultiSource(g, []int{0, 5}, nil, func(gg *graph.Graph, s int, o *core.Options) (*core.Structure, error) {
		return core.BuildVertexExhaustive(gg, s, 1, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := VertexFTBFS(g, st.DisabledEdges(), []int{0, 5}, 1, nil)
	if !rep.OK {
		t.Fatalf("multi-source vertex verify: %v", rep.Violations)
	}
	// f=2 vertex pass over the f=2 structure.
	st2, err := core.BuildVertexExhaustive(g, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep = VertexFTBFS(g, st2.DisabledEdges(), []int{0}, 2, nil)
	if !rep.OK {
		t.Fatalf("f=2 vertex verify: %v", rep.Violations)
	}
}

func TestSampledZeroFaultBudget(t *testing.T) {
	g := gen.PathGraph(5)
	rep := Sampled(g, nil, []int{0}, 0, 10, 1, nil)
	if !rep.OK || rep.FaultSetsChecked != 10 {
		t.Fatalf("sampled f=0: %+v", rep)
	}
}

// TestVerifyInterrupted: a cancelled context stops every verification
// mode early with Interrupted set (and therefore OK false) instead of
// burning through the full fault-set enumeration.
func TestVerifyInterrupted(t *testing.T) {
	g := gen.SparseGNP(30, 4, 3)
	st, err := core.BuildDual(g, 0, &core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	full := FTBFS(g, st.DisabledEdges(), []int{0}, 2, nil)
	if !full.OK {
		t.Fatal("structure should verify uninterrupted")
	}
	for name, rep := range map[string]Report{
		"sequential": FTBFS(g, st.DisabledEdges(), []int{0}, 2, &Options{Ctx: ctx}),
		"parallel":   FTBFS(g, st.DisabledEdges(), []int{0}, 2, &Options{Ctx: ctx, Parallelism: 4}),
		"sampled":    Sampled(g, st.DisabledEdges(), []int{0}, 2, 500, 1, &Options{Ctx: ctx}),
	} {
		if !rep.Interrupted {
			t.Errorf("%s: Interrupted not set", name)
		}
		if rep.OK {
			t.Errorf("%s: OK despite interruption", name)
		}
		if rep.FaultSetsChecked >= full.FaultSetsChecked && name != "sampled" {
			t.Errorf("%s: checked %d fault sets, full pass checks %d — no early stop",
				name, rep.FaultSetsChecked, full.FaultSetsChecked)
		}
	}
	vst, err := core.BuildVertexExhaustive(g, 0, 1, &core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep := VertexFTBFS(g, vst.DisabledEdges(), []int{0}, 1, &Options{Ctx: ctx}); !rep.Interrupted || rep.OK {
		t.Errorf("vertex: Interrupted=%v OK=%v", rep.Interrupted, rep.OK)
	}
}
