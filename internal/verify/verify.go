// Package verify checks fault-tolerant BFS structures against their
// definition: H ⊆ G is an f-failure FT-MBFS structure for sources S iff
// dist(s, v, H \ F) = dist(s, v, G \ F) for every s ∈ S, v ∈ V and every
// fault set F ⊆ E with |F| ≤ f.
//
// For f ≤ 3 the check is exhaustive. A pruning lemma cuts the work
// dramatically: once fault-free distances are verified, any F disjoint from
// H satisfies dist(s,v,H\F) = dist(s,v,H) = dist(s,v,G) ≤ dist(s,v,G\F) ≤
// dist(s,v,H\F), so all four quantities coincide and F need not be checked.
// Only fault sets intersecting H are enumerated. Full (unpruned)
// enumeration is available for cross-validation, as is a sampled mode for
// larger f or graphs.
package verify

import (
	"context"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/bfs"
	"repro/internal/cancel"
	"repro/internal/graph"
)

// Violation is one counterexample: a source, fault set and target whose
// distance in H \ F exceeds the distance in G \ F.
type Violation struct {
	Source int
	Faults []int // edge IDs
	V      int
	GotH   int32 // dist(s, v, H \ F); -1 = unreachable
	WantG  int32 // dist(s, v, G \ F)
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("source %d, faults %v, target %d: dist_H=%d dist_G=%d",
		v.Source, v.Faults, v.V, v.GotH, v.WantG)
}

// Report is the outcome of a verification pass.
type Report struct {
	OK bool
	// Violations holds up to MaxViolations counterexamples.
	Violations []Violation
	// FaultSetsChecked counts the fault sets actually compared (after
	// pruning, when enabled).
	FaultSetsChecked int
	// FaultSetsPruned counts fault sets skipped by the disjointness
	// lemma.
	FaultSetsPruned int
	// Interrupted reports that Options.Ctx was cancelled before the pass
	// finished: the counts cover only the fault sets reached, nothing was
	// proven about the rest, and OK is therefore false.
	Interrupted bool
}

// Options tunes a verification pass. The zero value gives an exhaustive,
// pruned check collecting at most 8 violations.
type Options struct {
	// NoPrune disables the F ∩ H = ∅ pruning (for cross-validation).
	NoPrune bool
	// MaxViolations caps collected counterexamples (0 means 8); the scan
	// stops early when reached.
	MaxViolations int
	// Parallelism > 1 splits the fault-set enumeration of FTBFS across
	// that many goroutines. Violations are reported in deterministic
	// order; the early-exit cap becomes per-worker.
	Parallelism int
	// Ctx cancels the pass cooperatively (SIGINT / -timeout in
	// ftbfsverify): the enumeration polls it at an amortized cadence and
	// returns early with Report.Interrupted set. nil never cancels.
	Ctx context.Context
}

func (o *Options) ctx() context.Context {
	if o != nil && o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o *Options) workers() int {
	if o == nil || o.Parallelism < 2 {
		return 1
	}
	return o.Parallelism
}

func (o *Options) maxViol() int {
	if o == nil || o.MaxViolations == 0 {
		return 8
	}
	return o.MaxViolations
}

func (o *Options) noPrune() bool { return o != nil && o.NoPrune }

// structureEdges is the minimal view of a structure the verifier needs.
type structureEdges interface {
	DisabledEdges() []int
}

// hView is the H side of every comparison, materialized once: instead of
// re-stamping the |E(G)| - |H| disabled edges into a mask for every single
// fault set, H is frozen into its own CSR subgraph (vertex IDs preserved,
// edge IDs renumbered) and per-check faults are translated through the
// G→H edge map, exactly as the query oracle does. Fault edges outside H
// translate to nothing — removing an absent edge is a no-op.
type hView struct {
	sub    *graph.Graph
	gToSub []int32
}

func newHView(g *graph.Graph, offH []int) *hView {
	keep := graph.NewEdgeSet(g.M())
	for id := 0; id < g.M(); id++ {
		keep.Add(id)
	}
	for _, id := range offH {
		keep.Remove(id)
	}
	sub, gToSub := g.SubgraphMapped(keep)
	return &hView{sub: sub, gToSub: gToSub}
}

// hRunner is a per-goroutine scratch over a shared hView.
type hRunner struct {
	view    *hView
	runner  *bfs.Runner
	scratch []int
}

func (h *hView) newRunner() *hRunner {
	return &hRunner{view: h, runner: bfs.NewRunner(h.sub)}
}

// run executes the H-side BFS for one fault set (G edge IDs) and returns
// the H distance table (owned by the runner, valid until the next run).
func (h *hRunner) run(s int, faults []int) []int32 {
	h.scratch = h.scratch[:0]
	for _, id := range faults {
		if sid := h.view.gToSub[id]; sid >= 0 {
			h.scratch = append(h.scratch, int(sid))
		}
	}
	h.runner.Run(s, h.scratch, nil)
	return h.runner.Dists()
}

// pairChecker compares the distance tables of G \ F and H \ F through two
// incremental BFS repairers, one per side. When both sides report an
// incremental repair AND the fault-free tables were equal (baseEq), only
// vertices in either changed set can differ — everything else still holds
// its base distance on both sides — so the comparison scans the merged
// changed sets instead of all of V. Candidates are sorted, so emitted
// mismatches arrive in the same ascending-vertex order as a full scan.
type pairChecker struct {
	g       *graph.Graph
	view    *hView
	rg, rh  *bfs.Repairer
	scratch []int   // faults translated into H edge IDs
	cand    []int32 // merged changed-vertex candidates
	// baseEq records whether the current source's fault-free tables
	// matched; it licenses the changed-set fast path. A base check
	// (faults == nil) refreshes it, or seed it from an external base
	// comparison for the same source.
	baseEq bool
}

func newPairChecker(g *graph.Graph, hv *hView) *pairChecker {
	return &pairChecker{g: g, view: hv, rg: bfs.NewRepairer(g), rh: bfs.NewRepairer(hv.sub)}
}

// check runs both sides for one fault set (G edge IDs) and calls emit for
// every vertex whose distances disagree, in ascending vertex order.
// Returns true when the tables matched.
func (p *pairChecker) check(s int, faults []int, emit func(v int, dh, dg int32)) bool {
	p.scratch = p.scratch[:0]
	for _, id := range faults {
		if sid := p.view.gToSub[id]; sid >= 0 {
			p.scratch = append(p.scratch, int(sid))
		}
	}
	p.rg.Run(s, faults)
	p.rh.Run(s, p.scratch)
	dg, dh := p.rg.Dists(), p.rh.Dists()
	ok := true
	if chG, incG := p.rg.Changed(); faults != nil && p.baseEq && incG {
		if chH, incH := p.rh.Changed(); incH {
			p.cand = append(append(p.cand[:0], chG...), chH...)
			slices.Sort(p.cand)
			p.cand = slices.Compact(p.cand)
			for _, v32 := range p.cand {
				if v := int(v32); dg[v] != dh[v] {
					ok = false
					emit(v, dh[v], dg[v])
				}
			}
			return ok
		}
	}
	for v := 0; v < p.g.N(); v++ {
		if dg[v] != dh[v] {
			ok = false
			emit(v, dh[v], dg[v])
		}
	}
	if faults == nil {
		p.baseEq = ok
	}
	return ok
}

// MaxExhaustiveFaultSets caps the work of an exhaustive f = 3 pass; larger
// instances must use Sampled.
const MaxExhaustiveFaultSets = 5_000_000

// FTBFS exhaustively verifies that the subgraph of g formed by removing
// offH (the edge IDs NOT in H) is an f-failure FT-MBFS structure for the
// given sources. f must be 0, 1, 2 or 3 (f = 3 only below
// MaxExhaustiveFaultSets fault sets).
func FTBFS(g *graph.Graph, offH []int, sources []int, f int, opts *Options) Report {
	rep := Report{OK: true}
	if f < 0 || f > 3 {
		rep.OK = false
		rep.Violations = append(rep.Violations, Violation{Source: -1, V: -1})
		return rep
	}
	if f == 3 {
		m := g.M()
		if total := m * (m - 1) * (m - 2) / 6; total > MaxExhaustiveFaultSets {
			rep.OK = false
			rep.Violations = append(rep.Violations, Violation{Source: -1, V: -1})
			return rep
		}
	}
	if opts.workers() > 1 {
		return ftbfsParallel(g, offH, sources, f, opts)
	}
	inH := make([]bool, g.M())
	for i := range inH {
		inH[i] = true
	}
	for _, id := range offH {
		inH[id] = false
	}
	pc := newPairChecker(g, newHView(g, offH))
	maxV := opts.maxViol()
	poll := cancel.New(opts.ctx(), cancel.PollEvery)
	interrupted := func() bool {
		if poll.Poll() != nil {
			rep.Interrupted = true
			rep.OK = false
			return true
		}
		return false
	}

	check := func(s int, faults []int) bool {
		// H \ F realized inside the materialized H subgraph; both sides
		// repaired incrementally off their fault-free trees.
		rep.FaultSetsChecked++
		return pc.check(s, faults, func(v int, dh, dg int32) {
			rep.OK = false
			if len(rep.Violations) < maxV {
				rep.Violations = append(rep.Violations, Violation{
					Source: s,
					Faults: append([]int(nil), faults...),
					V:      v,
					GotH:   dh,
					WantG:  dg,
				})
			}
		})
	}

	for _, s := range sources {
		// Fault-free pass first: it both verifies F = ∅ and licenses the
		// pruning lemma.
		baseOK := check(s, nil)
		prune := !opts.noPrune() && baseOK
		m := g.M()
		if f >= 1 {
			for a := 0; a < m; a++ {
				if interrupted() {
					return rep
				}
				if prune && !inH[a] {
					rep.FaultSetsPruned++
				} else {
					check(s, []int{a})
				}
				if len(rep.Violations) >= maxV {
					return rep
				}
				if f >= 2 {
					for b := a + 1; b < m; b++ {
						if interrupted() {
							return rep
						}
						if prune && !inH[a] && !inH[b] {
							rep.FaultSetsPruned++
						} else {
							check(s, []int{a, b})
							if len(rep.Violations) >= maxV {
								return rep
							}
						}
						if f >= 3 {
							for c := b + 1; c < m; c++ {
								if interrupted() {
									return rep
								}
								if prune && !inH[a] && !inH[b] && !inH[c] {
									rep.FaultSetsPruned++
									continue
								}
								check(s, []int{a, b, c})
								if len(rep.Violations) >= maxV {
									return rep
								}
							}
						}
					}
				}
			}
		}
	}
	return rep
}

// Structure verifies a structure exposing DisabledEdges (e.g.
// core.Structure) for the given sources and f.
func Structure(g *graph.Graph, st structureEdges, sources []int, f int, opts *Options) Report {
	return FTBFS(g, st.DisabledEdges(), sources, f, opts)
}

// Sampled draws `trials` random fault sets of size ≤ f and compares
// distances; it supports any f ≥ 0 and is meant for instances too large for
// the exhaustive pass.
func Sampled(g *graph.Graph, offH []int, sources []int, f int, trials int, seed int64, opts *Options) Report {
	rep := Report{OK: true}
	rng := rand.New(rand.NewSource(seed))
	rg := bfs.NewRunner(g)
	rh := newHView(g, offH).newRunner()
	maxV := opts.maxViol()
	m := g.M()
	poll := cancel.New(opts.ctx(), cancel.PollEvery)
	for t := 0; t < trials; t++ {
		if poll.Poll() != nil {
			rep.Interrupted = true
			rep.OK = false
			return rep
		}
		k := rng.Intn(f + 1)
		faults := make([]int, 0, k)
		seen := make(map[int]bool, k)
		for len(faults) < k {
			id := rng.Intn(m)
			if !seen[id] {
				seen[id] = true
				faults = append(faults, id)
			}
		}
		for _, s := range sources {
			rg.Run(s, faults, nil)
			dh := rh.run(s, faults)
			rep.FaultSetsChecked++
			dg := rg.Dists()
			for v := 0; v < g.N(); v++ {
				if dg[v] != dh[v] {
					rep.OK = false
					if len(rep.Violations) < maxV {
						rep.Violations = append(rep.Violations, Violation{
							Source: s,
							Faults: append([]int(nil), faults...),
							V:      v,
							GotH:   dh[v],
							WantG:  dg[v],
						})
					} else {
						return rep
					}
				}
			}
		}
	}
	return rep
}
