package verify

import (
	"repro/internal/bfs"
	"repro/internal/cancel"
	"repro/internal/graph"
)

// VertexFTBFS exhaustively verifies the vertex-failure model: for every
// vertex set V' with |V'| ≤ f that excludes the sources,
// dist(s, v, H \ V') = dist(s, v, G \ V') for all v ∉ V'. f must be ≤ 2.
func VertexFTBFS(g *graph.Graph, offH []int, sources []int, f int, opts *Options) Report {
	rep := Report{OK: true}
	if f < 0 || f > 2 {
		rep.OK = false
		rep.Violations = append(rep.Violations, Violation{Source: -1, V: -1})
		return rep
	}
	rg := bfs.NewRunner(g)
	// Vertex IDs are preserved by the materialization, so vertex faults
	// apply to H's subgraph unchanged — no translation needed.
	rh := bfs.NewRunner(newHView(g, offH).sub)
	maxV := opts.maxViol()
	poll := cancel.New(opts.ctx(), cancel.PollEvery)
	interrupted := func() bool {
		if poll.Poll() != nil {
			rep.Interrupted = true
			rep.OK = false
			return true
		}
		return false
	}

	check := func(s int, faults []int) {
		rg.Run(s, nil, faults)
		rh.Run(s, nil, faults)
		rep.FaultSetsChecked++
		dg, dh := rg.Dists(), rh.Dists()
		failed := make(map[int]bool, len(faults))
		for _, x := range faults {
			failed[x] = true
		}
		for v := 0; v < g.N(); v++ {
			if failed[v] {
				continue
			}
			if dg[v] != dh[v] {
				rep.OK = false
				if len(rep.Violations) < maxV {
					rep.Violations = append(rep.Violations, Violation{
						Source: s,
						Faults: append([]int(nil), faults...),
						V:      v,
						GotH:   dh[v],
						WantG:  dg[v],
					})
				}
			}
		}
	}

	isSource := make(map[int]bool, len(sources))
	for _, s := range sources {
		isSource[s] = true
	}
	n := g.N()
	for _, s := range sources {
		check(s, nil)
		if f >= 1 {
			for a := 0; a < n; a++ {
				if isSource[a] {
					continue
				}
				if interrupted() {
					return rep
				}
				check(s, []int{a})
				if len(rep.Violations) >= maxV {
					return rep
				}
				if f >= 2 {
					for b := a + 1; b < n; b++ {
						if isSource[b] {
							continue
						}
						if interrupted() {
							return rep
						}
						check(s, []int{a, b})
						if len(rep.Violations) >= maxV {
							return rep
						}
					}
				}
			}
		}
	}
	return rep
}
