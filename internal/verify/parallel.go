package verify

import (
	"sort"
	"sync"

	"repro/internal/bfs"
	"repro/internal/cancel"
	"repro/internal/graph"
)

// ftbfsParallel is the multi-goroutine exhaustive pass behind FTBFS when
// Options.Parallelism > 1. The base (fault-free) check runs first to
// license pruning; then the outer fault index is striped across workers,
// each with private BFS runners. Violations are merged and sorted so the
// report is deterministic regardless of scheduling.
func ftbfsParallel(g *graph.Graph, offH []int, sources []int, f int, opts *Options) Report {
	rep := Report{OK: true}
	inH := make([]bool, g.M())
	for i := range inH {
		inH[i] = true
	}
	for _, id := range offH {
		inH[id] = false
	}
	maxV := opts.maxViol()
	workers := opts.workers()
	hv := newHView(g, offH) // immutable; shared across workers

	type local struct {
		violations  []Violation
		checked     int
		pruned      int
		interrupted bool
	}

	runRange := func(s int, prune, baseEq bool, wi int, loc *local) {
		pc := newPairChecker(g, hv)
		// The coordinator already compared the fault-free tables for this
		// source; table equality is a property of (g, H, s), so it seeds
		// every worker's changed-set fast path.
		pc.baseEq = baseEq
		poll := cancel.New(opts.ctx(), cancel.PollEvery)
		interrupted := func() bool {
			if poll.Poll() != nil {
				loc.interrupted = true
				return true
			}
			return false
		}
		check := func(faults []int) {
			loc.checked++
			pc.check(s, faults, func(v int, dh, dg int32) {
				if len(loc.violations) < maxV {
					loc.violations = append(loc.violations, Violation{
						Source: s,
						Faults: append([]int(nil), faults...),
						V:      v,
						GotH:   dh,
						WantG:  dg,
					})
				}
			})
		}
		m := g.M()
		for a := wi; a < m; a += workers {
			if len(loc.violations) >= maxV || interrupted() {
				return
			}
			if prune && !inH[a] && f < 2 {
				loc.pruned++
				continue
			}
			if prune && !inH[a] {
				loc.pruned++ // the singleton {a} is prunable even when pairs are not
			} else {
				check([]int{a})
			}
			if f >= 2 {
				for b := a + 1; b < m; b++ {
					if interrupted() {
						return
					}
					if prune && !inH[a] && !inH[b] {
						loc.pruned++
					} else {
						check([]int{a, b})
					}
					if f >= 3 {
						for c := b + 1; c < m; c++ {
							if interrupted() {
								return
							}
							if prune && !inH[a] && !inH[b] && !inH[c] {
								loc.pruned++
								continue
							}
							check([]int{a, b, c})
							if len(loc.violations) >= maxV {
								return
							}
						}
					}
				}
			}
		}
	}

	for _, s := range sources {
		// Fault-free pass (licenses pruning for this source).
		base := &local{}
		func() {
			rg := bfs.NewRunner(g)
			rh := hv.newRunner()
			rg.Run(s, nil, nil)
			dh := rh.run(s, nil)
			base.checked++
			dg := rg.Dists()
			for v := 0; v < g.N(); v++ {
				if dg[v] != dh[v] && len(base.violations) < maxV {
					base.violations = append(base.violations, Violation{
						Source: s, V: v, GotH: dh[v], WantG: dg[v],
					})
				}
			}
		}()
		baseEq := len(base.violations) == 0
		prune := !opts.noPrune() && baseEq
		rep.FaultSetsChecked += base.checked
		rep.Violations = append(rep.Violations, base.violations...)

		if f >= 1 {
			locals := make([]local, workers)
			var wg sync.WaitGroup
			for wi := 0; wi < workers; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					runRange(s, prune, baseEq, wi, &locals[wi])
				}(wi)
			}
			wg.Wait()
			for i := range locals {
				rep.FaultSetsChecked += locals[i].checked
				rep.FaultSetsPruned += locals[i].pruned
				rep.Violations = append(rep.Violations, locals[i].violations...)
				rep.Interrupted = rep.Interrupted || locals[i].interrupted
			}
		}
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		for k := 0; k < len(a.Faults) && k < len(b.Faults); k++ {
			if a.Faults[k] != b.Faults[k] {
				return a.Faults[k] < b.Faults[k]
			}
		}
		if len(a.Faults) != len(b.Faults) {
			return len(a.Faults) < len(b.Faults)
		}
		return a.V < b.V
	})
	if len(rep.Violations) > maxV {
		rep.Violations = rep.Violations[:maxV]
	}
	rep.OK = len(rep.Violations) == 0 && !rep.Interrupted
	return rep
}
