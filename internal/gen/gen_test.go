package gen

import (
	"testing"
	"testing/quick"
)

func TestGNPConnectedAndSized(t *testing.T) {
	for _, n := range []int{2, 10, 50} {
		g := GNP(n, 0.2, 7)
		if g.N() != n {
			t.Fatalf("n=%d: got %d vertices", n, g.N())
		}
		if err := Validate(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.M() < n-1 {
			t.Fatalf("n=%d: backbone missing (m=%d)", n, g.M())
		}
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(30, 0.3, 5)
	b := GNP(30, 0.3, 5)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("same seed, different edges")
		}
	}
	c := GNP(30, 0.3, 6)
	if c.M() == a.M() {
		same := true
		for _, e := range a.Edges() {
			if !c.HasEdge(e.U, e.V) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestSparseGNPDegree(t *testing.T) {
	g := SparseGNP(200, 6, 3)
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 4 || avg > 10 {
		t.Fatalf("average degree %f far from target 6", avg)
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(40, 4, 9)
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	h := g.DegreeHistogram()
	if h[4] < 20 {
		t.Fatalf("too few degree-4 vertices: %v", h)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("3x4 grid: n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) || g.HasEdge(3, 4) {
		t.Fatal("grid adjacency wrong")
	}
}

func TestPathCycleComplete(t *testing.T) {
	if g := PathGraph(5); g.M() != 4 {
		t.Fatalf("path m=%d", g.M())
	}
	if g := Cycle(5); g.M() != 5 || !g.HasEdge(4, 0) {
		t.Fatalf("cycle wrong")
	}
	if g := Complete(6); g.M() != 15 {
		t.Fatalf("K6 m=%d", g.M())
	}
	if g := CompleteBipartite(2, 3); g.M() != 6 || g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatalf("K23 wrong")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(3)
	if g.N() != 8 || g.M() != 12 {
		t.Fatalf("Q3: n=%d m=%d", g.N(), g.M())
	}
	h := g.DegreeHistogram()
	if h[3] != 8 {
		t.Fatalf("Q3 not 3-regular: %v", h)
	}
}

func TestLayeredConnected(t *testing.T) {
	g := Layered(5, 6, 0.3, 4)
	if g.N() != 30 {
		t.Fatalf("n=%d", g.N())
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestTreePlusChords(t *testing.T) {
	tree := TreePlusChords(30, 0, 2)
	if tree.M() != 29 {
		t.Fatalf("tree m=%d", tree.M())
	}
	g := TreePlusChords(30, 5, 2)
	if g.M() != 34 {
		t.Fatalf("chords m=%d", g.M())
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestStandardFamilies(t *testing.T) {
	for _, fam := range StandardFamilies() {
		g := fam.Make(40, 1)
		if err := Validate(g); err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	if err := Validate(PathGraph(0)); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := GNP(3, 0, 1)
	// GNP always connects; build a disconnected one manually is covered in
	// graph tests. Here just confirm Validate passes a connected graph.
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

// Property: all families produce connected simple graphs at random sizes.
func TestQuickFamiliesAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%40+40)%40
		for _, fam := range StandardFamilies() {
			if Validate(fam.Make(n, seed)) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
