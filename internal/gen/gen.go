// Package gen provides seeded, deterministic workload generators: the graph
// families used by the experiment harness and the test suite. Every
// generator returns a connected graph (generators that may produce
// disconnected samples splice in a Hamiltonian backbone or retry).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GNP returns an Erdős–Rényi G(n, p) sample with a random Hamiltonian
// backbone added first so the result is always connected. Vertices are
// permuted so the backbone is not axis-aligned with vertex IDs.
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(perm[i], perm[i+1])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if b.HasEdge(u, v) {
				continue
			}
			if rng.Float64() < p {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

// SparseGNP returns G(n, c/n): constant expected average degree c, plus a
// connecting backbone.
func SparseGNP(n int, avgDeg float64, seed int64) *graph.Graph {
	return GNP(n, avgDeg/float64(n), seed)
}

// RandomRegular returns a (near-)d-regular graph via the pairing model:
// stubs are matched in shuffled rounds, with colliding stubs (self-loops,
// duplicate edges) re-shuffled and re-paired. On the rare instances where a
// few stubs remain unmatched, those vertices end with degree slightly below
// d; a connecting backbone is spliced in only if the result is
// disconnected.
func RandomRegular(n, d int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	const maxTries = 30
	var best *graph.Builder
	bestLeft := 1 << 30
	for try := 0; try < maxTries; try++ {
		g := graph.NewBuilder(n)
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		for round := 0; round < 30 && len(stubs) > 1; round++ {
			rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
			leftover := stubs[:0:0]
			for i := 0; i+1 < len(stubs); i += 2 {
				u, v := stubs[i], stubs[i+1]
				if u == v || g.HasEdge(u, v) {
					leftover = append(leftover, u, v)
					continue
				}
				g.MustAddEdge(u, v)
			}
			if len(stubs)%2 == 1 {
				leftover = append(leftover, stubs[len(stubs)-1])
			}
			stubs = leftover
		}
		if len(stubs) == 0 && g.ConnectedFrom(0) {
			return g.Freeze()
		}
		if len(stubs) < bestLeft {
			best, bestLeft = g, len(stubs)
		}
	}
	if !best.ConnectedFrom(0) {
		connect(best, rng)
	}
	return best.Freeze()
}

// connect splices a random spanning backbone into the builder, adding only
// missing edges.
func connect(g *graph.Builder, rng *rand.Rand) {
	n := g.N()
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		if !g.HasEdge(perm[i], perm[i+1]) {
			g.MustAddEdge(perm[i], perm[i+1])
		}
	}
}

// Grid returns the rows×cols grid graph. Vertex (r, c) has ID r*cols + c.
func Grid(rows, cols int) *graph.Graph {
	g := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g.Freeze()
}

// PathGraph returns the path 0-1-...-(n-1).
func PathGraph(n int) *graph.Graph {
	return pathBuilder(n).Freeze()
}

func pathBuilder(n int) *graph.Builder {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(i, i+1)
	}
	return b
}

// Cycle returns the n-cycle (n ≥ 3).
func Cycle(n int) *graph.Graph {
	b := pathBuilder(n)
	if n >= 3 {
		b.MustAddEdge(n-1, 0)
	}
	return b.Freeze()
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side,
// a..a+b-1 on the other.
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.MustAddEdge(u, a+v)
		}
	}
	return g.Freeze()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	g := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g.Freeze()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) *graph.Graph {
	n := 1 << dim
	g := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if u > v {
				g.MustAddEdge(v, u)
			}
		}
	}
	return g.Freeze()
}

// Layered returns a graph of `layers` layers of `width` vertices each, with
// every consecutive pair of layers joined by a random bipartite graph of the
// given density (at least a perfect matching is always present, so the graph
// is connected layer to layer). Vertex (l, i) has ID l*width + i. A source
// vertex is typically placed at layer 0.
func Layered(width, layers int, density float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewBuilder(width * layers)
	id := func(l, i int) int { return l*width + i }
	for l := 0; l+1 < layers; l++ {
		perm := rng.Perm(width)
		for i := 0; i < width; i++ {
			g.MustAddEdge(id(l, i), id(l+1, perm[i]))
		}
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				if perm[i] == j {
					continue
				}
				if rng.Float64() < density {
					g.MustAddEdge(id(l, i), id(l+1, j))
				}
			}
		}
	}
	// Connect layer 0 internally so a single source reaches all of it.
	for i := 0; i+1 < width; i++ {
		g.MustAddEdge(id(0, i), id(0, i+1))
	}
	return g.Freeze()
}

// TreePlusChords returns a random tree (random attachment) with `chords`
// extra random non-tree edges. Good family for the approximation experiment:
// the optimal FT-BFS is near-linear.
func TreePlusChords(n, chords int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v))
	}
	added := 0
	for tries := 0; added < chords && tries < 50*chords+100; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g.Freeze()
}

// Family is a named graph generator taking (n, seed), used by sweeps.
type Family struct {
	Name string
	Make func(n int, seed int64) *graph.Graph
}

// StandardFamilies returns the sweep families used across experiments.
func StandardFamilies() []Family {
	return []Family{
		{Name: "gnp-dense", Make: func(n int, seed int64) *graph.Graph {
			return GNP(n, 0.5, seed)
		}},
		{Name: "gnp-logn", Make: func(n int, seed int64) *graph.Graph {
			return SparseGNP(n, 8, seed)
		}},
		{Name: "grid", Make: func(n int, seed int64) *graph.Graph {
			side := isqrt(n)
			return Grid(side, side)
		}},
		{Name: "layered", Make: func(n int, seed int64) *graph.Graph {
			w := isqrt(n)
			if w < 2 {
				w = 2
			}
			return Layered(w, (n+w-1)/w, 0.3, seed)
		}},
		{Name: "tree+chords", Make: func(n int, seed int64) *graph.Graph {
			return TreePlusChords(n, n/10+2, seed)
		}},
	}
}

func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// Validate sanity-checks a generated graph: connected, simple, right size.
func Validate(g *graph.Graph) error {
	if g.N() == 0 {
		return fmt.Errorf("gen: empty graph")
	}
	if !g.ConnectedFrom(0) {
		return fmt.Errorf("gen: graph disconnected")
	}
	return nil
}
