// Package graph provides the undirected simple graph substrate used by every
// other package in this repository.
//
// The package is split into a mutable Builder (AddEdge with validation and
// duplicate detection) and an immutable Graph in compressed-sparse-row form,
// produced by Builder.Freeze. Vertices are dense integers in [0, N). Every
// edge has a stable integer ID in [0, M) assigned in insertion order; all
// higher-level machinery (fault sets, structures, weight assignments) refers
// to edges by ID. Iteration order over neighbors is insertion order and
// therefore deterministic, which the canonical shortest-path machinery
// relies on.
//
// All iteration goes through Arcs (a direct slice of a frozen flat arc
// array) or ArcData (the raw offset/arc arrays for scan loops):
//
//	for _, a := range g.Arcs(v) {
//	    ... a.To, a.ID ...
//	}
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Edge is an undirected edge given by its two endpoints. Edges are stored
// normalized with U < V; Normalize returns the normalized form.
type Edge struct {
	U, V int
}

// Normalize returns e with endpoints ordered so that U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not w. It returns -1 when w is not
// an endpoint of e.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		return -1
	}
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%d)", e.U, e.V)
}

// Arc is one direction of an edge inside the frozen adjacency array: the
// neighbor it leads to and the ID of the undirected edge it belongs to.
type Arc struct {
	To int32 // neighbor vertex
	ID int32 // edge ID
}

// Graph is an immutable undirected simple graph with stable edge IDs, laid
// out in compressed-sparse-row form: one flat arc array indexed by per-vertex
// offset spans, so traversals walk contiguous memory. Construct one with
// Builder.Freeze (or Subgraph on an existing graph).
//
// The zero value is an empty graph on zero vertices. A Graph is safe for
// concurrent use.
type Graph struct {
	n      int
	edges  []Edge  // edge ID -> endpoints (normalized)
	arcOff []int32 // len n+1; arcs of v are arcs[arcOff[v]:arcOff[v+1]]
	arcs   []Arc   // len 2M, per-vertex spans in insertion order
	arcTo  []int32 // len 2M; arcTo[i] == arcs[i].To (dense scan stream)
	sorted []Arc   // len 2M, per-vertex spans sorted by To (for EdgeID)

	// Freeze-time vertex renumbering (see order.go). Nil on unordered
	// graphs, where labels are the identity. Edge IDs are never remapped.
	toNew []int32 // original label -> internal label
	toOld []int32 // internal label -> original label
}

// freeze builds the CSR representation from a finished edge list. The edge
// list must be simple (normalized endpoints in range, no duplicates); the
// Builder and Subgraph guarantee this. The Graph takes ownership of edges.
func freeze(n int, edges []Edge) *Graph {
	g := &Graph{
		n:      n,
		edges:  edges,
		arcOff: make([]int32, n+1),
		arcs:   make([]Arc, 2*len(edges)),
	}
	for _, e := range edges {
		g.arcOff[e.U+1]++
		g.arcOff[e.V+1]++
	}
	for v := 0; v < n; v++ {
		g.arcOff[v+1] += g.arcOff[v]
	}
	// Filling in edge-ID order makes every per-vertex span insertion-ordered,
	// exactly the order repeated AddEdge appends produced.
	cur := make([]int32, n)
	copy(cur, g.arcOff[:n])
	for id, e := range edges {
		g.arcs[cur[e.U]] = Arc{To: int32(e.V), ID: int32(id)}
		cur[e.U]++
		g.arcs[cur[e.V]] = Arc{To: int32(e.U), ID: int32(id)}
		cur[e.V]++
	}
	g.sorted = make([]Arc, len(g.arcs))
	copy(g.sorted, g.arcs)
	for v := 0; v < n; v++ {
		span := g.sorted[g.arcOff[v]:g.arcOff[v+1]]
		slices.SortFunc(span, func(a, b Arc) int { return int(a.To) - int(b.To) })
	}
	g.arcTo = buildArcTo(g.arcs)
	return g
}

// buildArcTo derives the dense neighbor array from the arc array: the
// edge-ID-free stream scan loops read when they do not consult per-arc IDs,
// at half the sequential bandwidth of []Arc.
func buildArcTo(arcs []Arc) []int32 {
	to := make([]int32, len(arcs))
	for i, a := range arcs {
		to[i] = a.To
	}
	return to
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Arcs returns the arcs incident to v in insertion order, as a direct view
// of the frozen adjacency array. This is the hot-path iteration primitive;
// callers must not modify the returned slice.
func (g *Graph) Arcs(v int) []Arc {
	return g.arcs[g.arcOff[v]:g.arcOff[v+1]]
}

// ArcData returns the raw CSR arrays: off has length N+1 and the arcs of
// vertex v are arcs[off[v]:off[v+1]], in insertion order. Scan loops that
// run per dequeued vertex (BFS, Dijkstra) use this to hoist the two slice
// headers out of their hot loop; callers must not mutate either slice.
func (g *Graph) ArcData() (off []int32, arcs []Arc) {
	return g.arcOff, g.arcs
}

// ArcHeads returns the CSR offsets paired with the dense neighbor array:
// to[i] == arcs[i].To for the arcs of ArcData. Scan loops that never touch
// edge IDs (the unmasked BFS sweep) read this 4-byte stream instead of the
// 8-byte []Arc one; callers must not mutate either slice.
func (g *Graph) ArcHeads() (off []int32, to []int32) {
	return g.arcOff, g.arcTo
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int {
	return int(g.arcOff[v+1] - g.arcOff[v])
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeID(u, v)
	return ok
}

// EdgeID returns the ID of edge {u, v} and whether it exists. The lookup is
// a binary search over the sorted arc span of the lower-degree endpoint.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return -1, false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	span := g.sorted[g.arcOff[u]:g.arcOff[u+1]]
	w := int32(v)
	lo, hi := 0, len(span)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if span[mid].To < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(span) && span[lo].To == w {
		return int(span[lo].ID), true
	}
	return -1, false
}

// EdgeAt returns the endpoints of the edge with the given ID.
func (g *Graph) EdgeAt(id int) Edge { return g.edges[id] }

// Neighbors returns a fresh slice of the neighbors of v in insertion order.
func (g *Graph) Neighbors(v int) []int {
	arcs := g.Arcs(v)
	out := make([]int, len(arcs))
	for i, a := range arcs {
		out[i] = int(a.To)
	}
	return out
}

// IncidentEdges returns a fresh slice of the IDs of edges incident to v.
func (g *Graph) IncidentEdges(v int) []int {
	arcs := g.Arcs(v)
	out := make([]int, len(arcs))
	for i, a := range arcs {
		out[i] = int(a.ID)
	}
	return out
}

// Edges returns a fresh slice of all edges indexed by edge ID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Subgraph returns a new graph on the same vertex set containing exactly the
// edges of g whose ID is set in keep, built directly in CSR form. Edge IDs
// are NOT preserved in the returned graph (they are renumbered densely in
// increasing original-ID order); use SubgraphMapped when the old-to-new
// translation is needed, or EdgeSet-based views when stable IDs are
// required.
func (g *Graph) Subgraph(keep *EdgeSet) *Graph {
	sub := make([]Edge, 0, keep.Len())
	keep.ForEach(func(id int) {
		sub = append(sub, g.edges[id])
	})
	return freeze(g.n, sub)
}

// SubgraphMapped is Subgraph plus the edge-ID translation it implies:
// gToSub[id] is the new ID of g's edge id, or -1 when keep omits it.
func (g *Graph) SubgraphMapped(keep *EdgeSet) (sub *Graph, gToSub []int32) {
	gToSub = make([]int32, len(g.edges))
	for i := range gToSub {
		gToSub[i] = -1
	}
	kept := make([]Edge, 0, keep.Len())
	keep.ForEach(func(id int) {
		gToSub[id] = int32(len(kept))
		kept = append(kept, g.edges[id])
	})
	return freeze(g.n, kept), gToSub
}

// ConnectedFrom reports whether every vertex is reachable from src.
func (g *Graph) ConnectedFrom(src int) bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := make([]int32, 0, g.n)
	seen[src] = true
	stack = append(stack, int32(src))
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Arcs(int(v)) {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == g.n
}

// DegreeHistogram returns a map from degree to vertex count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}

// SortedEdges returns all edges sorted lexicographically (useful for stable
// text output).
func (g *Graph) SortedEdges() []Edge {
	out := g.Edges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
