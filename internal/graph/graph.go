// Package graph provides the undirected simple graph substrate used by every
// other package in this repository.
//
// Vertices are dense integers in [0, N). Every edge has a stable integer ID
// in [0, M) assigned in insertion order; all higher-level machinery
// (fault sets, structures, weight assignments) refers to edges by ID.
// Iteration order over neighbors is insertion order and therefore
// deterministic, which the canonical shortest-path machinery relies on.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge given by its two endpoints. Edges are stored
// normalized with U < V; Normalize returns the normalized form.
type Edge struct {
	U, V int
}

// Normalize returns e with endpoints ordered so that U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not w. It returns -1 when w is not
// an endpoint of e.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		return -1
	}
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%d)", e.U, e.V)
}

// Graph is an undirected simple graph with stable edge IDs.
//
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count.
type Graph struct {
	n     int
	edges []Edge  // edge ID -> endpoints (normalized)
	adj   [][]arc // adjacency lists, insertion order
	index map[Edge]int32
}

// arc is one direction of an edge inside an adjacency list.
type arc struct {
	to int32 // neighbor vertex
	id int32 // edge ID
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:     n,
		adj:   make([][]arc, n),
		index: make(map[Edge]int32),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v} and returns its ID.
// It returns an error if either endpoint is out of range, u == v, or the
// edge already exists.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at %d", u)
	}
	e := Edge{U: u, V: v}.Normalize()
	if _, ok := g.index[e]; ok {
		return -1, fmt.Errorf("graph: duplicate edge %v", e)
	}
	id := int32(len(g.edges))
	g.edges = append(g.edges, e)
	g.index[e] = id
	g.adj[u] = append(g.adj[u], arc{to: int32(v), id: id})
	g.adj[v] = append(g.adj[v], arc{to: int32(u), id: id})
	return int(id), nil
}

// MustAddEdge is AddEdge for construction code with statically valid input;
// it panics on error. Generators and tests use it; library code does not.
func (g *Graph) MustAddEdge(u, v int) int {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.index[Edge{U: u, V: v}.Normalize()]
	return ok
}

// EdgeID returns the ID of edge {u, v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	id, ok := g.index[Edge{U: u, V: v}.Normalize()]
	return int(id), ok
}

// EdgeAt returns the endpoints of the edge with the given ID.
func (g *Graph) EdgeAt(id int) Edge { return g.edges[id] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// ForNeighbors calls fn(neighbor, edgeID) for every edge incident to v, in
// insertion order. Iteration stops early if fn returns false.
func (g *Graph) ForNeighbors(v int, fn func(w, edgeID int) bool) {
	for _, a := range g.adj[v] {
		if !fn(int(a.to), int(a.id)) {
			return
		}
	}
}

// Neighbors returns a fresh slice of the neighbors of v in insertion order.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, a := range g.adj[v] {
		out[i] = int(a.to)
	}
	return out
}

// IncidentEdges returns a fresh slice of the IDs of edges incident to v.
func (g *Graph) IncidentEdges(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, a := range g.adj[v] {
		out[i] = int(a.id)
	}
	return out
}

// Edges returns a fresh slice of all edges indexed by edge ID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Clone returns a deep copy of g preserving vertex numbering and edge IDs.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for v := range g.adj {
		c.adj[v] = make([]arc, len(g.adj[v]))
		copy(c.adj[v], g.adj[v])
	}
	for e, id := range g.index {
		c.index[e] = id
	}
	return c
}

// Subgraph returns a new graph on the same vertex set containing exactly the
// edges of g whose ID is set in keep. Edge IDs are NOT preserved in the
// returned graph (they are renumbered densely); use EdgeSet-based views when
// stable IDs are required.
func (g *Graph) Subgraph(keep *EdgeSet) *Graph {
	sub := New(g.n)
	for id, e := range g.edges {
		if keep.Has(id) {
			sub.MustAddEdge(e.U, e.V)
		}
	}
	return sub
}

// ConnectedFrom reports whether every vertex is reachable from src.
func (g *Graph) ConnectedFrom(src int) bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := make([]int, 0, g.n)
	seen[src] = true
	stack = append(stack, src)
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[v] {
			if !seen[a.to] {
				seen[a.to] = true
				count++
				stack = append(stack, int(a.to))
			}
		}
	}
	return count == g.n
}

// DegreeHistogram returns a map from degree to vertex count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.n; v++ {
		h[len(g.adj[v])]++
	}
	return h
}

// SortedEdges returns all edges sorted lexicographically (useful for stable
// text output).
func (g *Graph) SortedEdges() []Edge {
	out := g.Edges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
