package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refGraph is a deliberately naive reference implementation of the old
// mutable representation: a global edge-index map plus per-vertex adjacency
// slices appended to in insertion order. The frozen CSR Graph must be
// observationally identical to it.
type refGraph struct {
	n     int
	edges []Edge
	adj   [][]Arc
	index map[Edge]int
}

func newRefGraph(n int) *refGraph {
	return &refGraph{n: n, adj: make([][]Arc, n), index: make(map[Edge]int)}
}

func (r *refGraph) add(u, v int) (int, bool) {
	if u < 0 || u >= r.n || v < 0 || v >= r.n || u == v {
		return -1, false
	}
	e := Edge{U: u, V: v}.Normalize()
	if _, dup := r.index[e]; dup {
		return -1, false
	}
	id := len(r.edges)
	r.edges = append(r.edges, e)
	r.index[e] = id
	r.adj[u] = append(r.adj[u], Arc{To: int32(v), ID: int32(id)})
	r.adj[v] = append(r.adj[v], Arc{To: int32(u), ID: int32(id)})
	return id, true
}

// checkEquivalent asserts that g is observationally identical to the
// reference: sizes, per-ID endpoints, insertion-order adjacency, degree, and
// EdgeID/HasEdge over every vertex pair.
func checkEquivalent(t *testing.T, ref *refGraph, g *Graph) {
	t.Helper()
	if g.N() != ref.n || g.M() != len(ref.edges) {
		t.Fatalf("size mismatch: got %d/%d want %d/%d", g.N(), g.M(), ref.n, len(ref.edges))
	}
	for id, e := range ref.edges {
		if g.EdgeAt(id) != e {
			t.Fatalf("EdgeAt(%d) = %v, want %v", id, g.EdgeAt(id), e)
		}
	}
	for v := 0; v < ref.n; v++ {
		if g.Degree(v) != len(ref.adj[v]) {
			t.Fatalf("Degree(%d) = %d, want %d", v, g.Degree(v), len(ref.adj[v]))
		}
		arcs := g.Arcs(v)
		for i, want := range ref.adj[v] {
			if arcs[i] != want {
				t.Fatalf("Arcs(%d)[%d] = %v, want %v (insertion order)", v, i, arcs[i], want)
			}
		}
	}
	for u := 0; u < ref.n; u++ {
		for v := 0; v < ref.n; v++ {
			wantID, want := ref.index[Edge{U: u, V: v}.Normalize()]
			if u == v {
				want = false
			}
			gotID, got := g.EdgeID(u, v)
			if got != want || (got && gotID != wantID) {
				t.Fatalf("EdgeID(%d,%d) = %d,%v want %d,%v", u, v, gotID, got, wantID, want)
			}
			if g.HasEdge(u, v) != want {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, !want, want)
			}
		}
	}
}

// buildBoth replays one pseudo-random edge sequence through the Builder and
// the reference side by side, asserting they accept/reject and number edges
// identically, and returns both.
func buildBoth(t *testing.T, n int, seq []uint32) (*refGraph, *Graph) {
	t.Helper()
	ref := newRefGraph(n)
	b := NewBuilder(n)
	for _, x := range seq {
		// Decode endpoints slightly out of range so rejection paths are
		// exercised too.
		u := int(x%uint32(n+2)) - 1
		v := int((x/uint32(n+2))%uint32(n+2)) - 1
		wantID, want := ref.add(u, v)
		gotID, err := b.AddEdge(u, v)
		if want != (err == nil) || (want && gotID != wantID) {
			t.Fatalf("AddEdge(%d,%d) = %d,%v; reference %d,%v", u, v, gotID, err, wantID, want)
		}
	}
	return ref, b.Freeze()
}

// TestFreezeEquivalenceRandom is the randomized property test for the
// Builder/Freeze split: random graphs built through the insertion API come
// out of Freeze observationally identical to the map-plus-adjacency-slices
// reference (N/M, edge IDs, insertion-order iteration, EdgeID lookups).
func TestFreezeEquivalenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		seq := make([]uint32, rng.Intn(4*n))
		for i := range seq {
			seq[i] = rng.Uint32()
		}
		ref, g := buildBoth(t, n, seq)
		checkEquivalent(t, ref, g)
		// Subgraph of a random half keeps renumbering consistent with a
		// reference rebuilt from the kept edges in ID order.
		keep := NewEdgeSet(g.M())
		for id := 0; id < g.M(); id++ {
			if rng.Intn(2) == 0 {
				keep.Add(id)
			}
		}
		subRef := newRefGraph(n)
		keep.ForEach(func(id int) {
			e := ref.edges[id]
			subRef.add(e.U, e.V)
		})
		checkEquivalent(t, subRef, g.Subgraph(keep))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBuilderFreeze feeds arbitrary byte strings as edge sequences; the
// fuzzer hunts for any divergence between the frozen CSR form and the
// reference implementation.
func FuzzBuilderFreeze(f *testing.F) {
	f.Add(uint8(4), []byte{0x01, 0x12, 0x23, 0x03})
	f.Add(uint8(9), []byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x18})
	f.Add(uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, n uint8, data []byte) {
		nn := 1 + int(n)%32
		seq := make([]uint32, len(data))
		for i, by := range data {
			seq[i] = uint32(by) * 2654435761 // spread byte values over pairs
		}
		ref, g := buildBoth(t, nn, seq)
		checkEquivalent(t, ref, g)
	})
}
