package graph

import (
	"strings"
	"testing"
)

// freshCSR builds a small graph and returns mutable copies of its CSR
// arrays for corruption tests.
func freshCSR(t *testing.T) (n int, edges []Edge, arcOff []int32, arcs, sorted []Arc) {
	t.Helper()
	b := NewBuilder(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(0, 4)
	g := b.Freeze()
	e, off, a, s := g.CSRData()
	return g.N(), append([]Edge(nil), e...), append([]int32(nil), off...),
		append([]Arc(nil), a...), append([]Arc(nil), s...)
}

func TestFromCSRDataRoundTrip(t *testing.T) {
	n, edges, arcOff, arcs, sorted := freshCSR(t)
	g, err := FromCSRData(n, edges, arcOff, arcs, sorted)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n || g.M() != len(edges) {
		t.Fatalf("size %d/%d", g.N(), g.M())
	}
	if id, ok := g.EdgeID(2, 3); !ok || id != 3 {
		t.Fatalf("EdgeID(2,3) = %d,%v", id, ok)
	}
}

func TestFromCSRDataRejectsPermutedSpan(t *testing.T) {
	n, edges, arcOff, arcs, sorted := freshCSR(t)
	// Vertex 0 has arcs to 1, 2, 4 (edge IDs 0, 1, 5) in insertion order;
	// swapping two arcs keeps every consistency/reference invariant but
	// breaks the canonical iteration order.
	span := arcs[arcOff[0]:arcOff[0+1]]
	if len(span) < 2 {
		t.Fatal("test graph needs degree ≥ 2 at vertex 0")
	}
	span[0], span[1] = span[1], span[0]
	_, err := FromCSRData(n, edges, arcOff, arcs, sorted)
	if err == nil || !strings.Contains(err.Error(), "edge-ID order") {
		t.Fatalf("permuted span accepted: %v", err)
	}
}

func TestFromCSRDataRejectsNonEndpointArc(t *testing.T) {
	n, edges, arcOff, arcs, sorted := freshCSR(t)
	// Edge 3 = {2,3}. Forge vertex 4's reference to it with To = -1,
	// which matches Edge.Other(4) = -1 — the membership check must still
	// reject it (such an arc would crash the first BFS).
	// Vertex 4 has arcs for edges 4 ({3,4}) and 5 ({0,4}).
	span := arcs[arcOff[4]:arcOff[4+1]]
	victim := -1
	for i, a := range span {
		if a.ID == 4 {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatal("expected edge 4 in vertex 4's span")
	}
	span[victim] = Arc{To: -1, ID: 3}
	_, err := FromCSRData(n, edges, arcOff, arcs, sorted)
	if err == nil {
		t.Fatal("non-endpoint arc accepted")
	}
}

func TestFromCSRDataRejectsStructuralDamage(t *testing.T) {
	cases := []struct {
		name string
		mut  func(n *int, edges *[]Edge, arcOff *[]int32, arcs, sorted *[]Arc)
	}{
		{"short-offsets", func(n *int, e *[]Edge, off *[]int32, a, s *[]Arc) { *off = (*off)[:len(*off)-1] }},
		{"offset-decrease", func(n *int, e *[]Edge, off *[]int32, a, s *[]Arc) { (*off)[1] = 99 }},
		{"unnormalized-edge", func(n *int, e *[]Edge, off *[]int32, a, s *[]Arc) { (*e)[0] = Edge{U: 1, V: 0} }},
		{"id-out-of-range", func(n *int, e *[]Edge, off *[]int32, a, s *[]Arc) { (*a)[0].ID = 99 }},
		{"sorted-unsorted", func(n *int, e *[]Edge, off *[]int32, a, s *[]Arc) {
			sp := (*s)[(*off)[0]:(*off)[1]]
			sp[0], sp[1] = sp[1], sp[0]
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, edges, arcOff, arcs, sorted := freshCSR(t)
			c.mut(&n, &edges, &arcOff, &arcs, &sorted)
			if _, err := FromCSRData(n, edges, arcOff, arcs, sorted); err == nil {
				t.Fatal("damaged CSR accepted")
			}
		})
	}
}

func TestEdgeSetWordsRoundTrip(t *testing.T) {
	s := NewEdgeSet(130)
	for _, id := range []int{0, 63, 64, 127, 129} {
		s.Add(id)
	}
	got, err := NewEdgeSetFromWords(130, append([]uint64(nil), s.Words()...))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len %d, want %d", got.Len(), s.Len())
	}
	for _, id := range []int{0, 63, 64, 127, 129} {
		if !got.Has(id) {
			t.Fatalf("missing %d", id)
		}
	}
	// Stray bits beyond the universe and wrong word counts are rejected.
	w := append([]uint64(nil), s.Words()...)
	w[len(w)-1] |= 1 << 10 // bit 138 > 130
	if _, err := NewEdgeSetFromWords(130, w); err == nil {
		t.Fatal("stray bit accepted")
	}
	if _, err := NewEdgeSetFromWords(130, s.Words()[:1]); err == nil {
		t.Fatal("short word slice accepted")
	}
}
