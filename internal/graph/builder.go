package graph

import "fmt"

// Builder accumulates the edges of a simple undirected graph under
// validation (range checks, self-loop and duplicate rejection), then Freeze
// compiles them into an immutable CSR Graph. Edge IDs are assigned in
// insertion order, so a Builder-then-Freeze sequence observes exactly the
// IDs and neighbor iteration order the edges were added in.
//
// A Builder is not safe for concurrent use. It remains usable after Freeze;
// later additions do not affect previously frozen graphs.
type Builder struct {
	n     int
	edges []Edge
	index map[Edge]int32
}

// NewBuilder returns an empty builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{
		n:     n,
		index: make(map[Edge]int32),
	}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// M returns the number of edges added so far.
func (b *Builder) M() int { return len(b.edges) }

// AddEdge inserts the undirected edge {u, v} and returns its ID.
// It returns an error if either endpoint is out of range, u == v, or the
// edge already exists.
func (b *Builder) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return -1, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at %d", u)
	}
	e := Edge{U: u, V: v}.Normalize()
	if _, ok := b.index[e]; ok {
		return -1, fmt.Errorf("graph: duplicate edge %v", e)
	}
	id := int32(len(b.edges))
	b.edges = append(b.edges, e)
	b.index[e] = id
	return int(id), nil
}

// MustAddEdge is AddEdge for construction code with statically valid input;
// it panics on error. Generators and tests use it; library code does not.
func (b *Builder) MustAddEdge(u, v int) int {
	id, err := b.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether the undirected edge {u, v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.index[Edge{U: u, V: v}.Normalize()]
	return ok
}

// EdgeID returns the ID of edge {u, v} and whether it exists.
func (b *Builder) EdgeID(u, v int) (int, bool) {
	id, ok := b.index[Edge{U: u, V: v}.Normalize()]
	return int(id), ok
}

// ConnectedFrom reports whether every vertex is reachable from src in the
// graph built so far. Used by generators that splice in a backbone when a
// random sample comes out disconnected.
func (b *Builder) ConnectedFrom(src int) bool {
	if b.n == 0 {
		return true
	}
	// Build a throwaway neighbor CSR; the builder itself keeps no adjacency.
	off := make([]int32, b.n+1)
	for _, e := range b.edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for v := 0; v < b.n; v++ {
		off[v+1] += off[v]
	}
	to := make([]int32, 2*len(b.edges))
	cur := make([]int32, b.n)
	copy(cur, off[:b.n])
	for _, e := range b.edges {
		to[cur[e.U]] = int32(e.V)
		cur[e.U]++
		to[cur[e.V]] = int32(e.U)
		cur[e.V]++
	}
	seen := make([]bool, b.n)
	stack := make([]int32, 0, b.n)
	seen[src] = true
	stack = append(stack, int32(src))
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range to[off[v]:off[v+1]] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == b.n
}

// Freeze compiles the edges added so far into an immutable CSR Graph. Edge
// IDs and per-vertex neighbor iteration order are the insertion order. The
// builder remains usable; the frozen graph is unaffected by later AddEdge
// calls.
func (b *Builder) Freeze() *Graph {
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	return freeze(b.n, edges)
}

// FreezeOrdered is Freeze plus a BFS/degree vertex renumbering computed at
// freeze time (see order.go): hot CSR spans become contiguous in memory
// while edge IDs and per-edge iteration order are preserved, and the frozen
// graph carries the old<->new maps for boundary translation. The builder's
// own labels are unaffected.
func (b *Builder) FreezeOrdered() *Graph {
	return freezeOrdered(b.n, b.edges)
}
