package graph

import (
	"fmt"
	"math/bits"
)

// This file is the export boundary between the frozen CSR representation
// and the snapshot codec (internal/snap): CSRData hands the raw arrays out
// for near-verbatim serialization, and FromCSRData adopts decoded arrays
// after an O(n + m) structural validation, so a decode is one read plus
// one linear check instead of a rebuild. No other package reaches into the
// representation; if the layout changes, these two functions and the codec
// version change together.

// CSRData returns read-only views of the frozen representation: the edge
// table (ID -> normalized endpoints), the offset table (len N+1), the
// insertion-ordered arc array and its span-sorted copy (both len 2M).
// Callers must not mutate any of the returned slices; they alias the
// graph's own storage.
func (g *Graph) CSRData() (edges []Edge, arcOff []int32, arcs, sorted []Arc) {
	return g.edges, g.arcOff, g.arcs, g.sorted
}

// FromCSRData reassembles a Graph from a decoded CSR representation,
// taking ownership of all four slices. It validates every structural
// invariant Freeze guarantees — offsets form a monotone cover of the arc
// array, every arc is consistent with its edge's endpoints, every edge is
// referenced exactly twice, sorted spans are strictly increasing (which
// also rules out duplicate edges) — and rejects anything else, so a
// corrupted or hand-built input cannot produce a Graph that later
// misbehaves.
func FromCSRData(n int, edges []Edge, arcOff []int32, arcs, sorted []Arc) (*Graph, error) {
	m := len(edges)
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if len(arcOff) != n+1 {
		return nil, fmt.Errorf("graph: offset table has %d entries, want %d", len(arcOff), n+1)
	}
	if len(arcs) != 2*m || len(sorted) != 2*m {
		return nil, fmt.Errorf("graph: arc arrays have %d/%d entries, want %d", len(arcs), len(sorted), 2*m)
	}
	if arcOff[0] != 0 {
		return nil, fmt.Errorf("graph: offset table starts at %d, want 0", arcOff[0])
	}
	for v := 0; v < n; v++ {
		if arcOff[v+1] < arcOff[v] {
			return nil, fmt.Errorf("graph: offset table decreases at vertex %d", v)
		}
	}
	if int(arcOff[n]) != 2*m {
		return nil, fmt.Errorf("graph: offset table covers %d arcs, want %d", arcOff[n], 2*m)
	}
	for id, e := range edges {
		if e.U < 0 || e.V >= n || e.U >= e.V {
			return nil, fmt.Errorf("graph: edge %d = %v is not normalized in [0,%d)", id, e, n)
		}
	}
	// refs[id] counts arc references to each edge; a valid CSR references
	// every edge exactly twice (once from each endpoint). Note the
	// explicit endpoint-membership check: Edge.Other returns -1 for a
	// non-endpoint, so an arc with To == -1 would otherwise slip through
	// the consistency comparison and crash the first traversal.
	refs := make([]int8, m)
	for v := 0; v < n; v++ {
		span := arcs[arcOff[v]:arcOff[v+1]]
		sspan := sorted[arcOff[v]:arcOff[v+1]]
		for i, a := range span {
			if a.ID < 0 || int(a.ID) >= m {
				return nil, fmt.Errorf("graph: vertex %d arc %d: edge ID %d out of range [0,%d)", v, i, a.ID, m)
			}
			e := edges[a.ID]
			if (e.U != v && e.V != v) || e.Other(v) != int(a.To) {
				return nil, fmt.Errorf("graph: vertex %d arc %d: arc (to %d, id %d) contradicts edge %v", v, i, a.To, a.ID, e)
			}
			// Freeze fills spans in edge-ID order; the canonical
			// tie-breaking machinery depends on that iteration order, so
			// a permuted span must not decode.
			if i > 0 && a.ID <= span[i-1].ID {
				return nil, fmt.Errorf("graph: vertex %d arc span not in increasing edge-ID order at %d", v, i)
			}
			if refs[a.ID] >= 2 {
				return nil, fmt.Errorf("graph: edge %d referenced more than twice", a.ID)
			}
			refs[a.ID]++
		}
		for i, a := range sspan {
			if a.ID < 0 || int(a.ID) >= m {
				return nil, fmt.Errorf("graph: vertex %d sorted arc %d: edge ID %d out of range [0,%d)", v, i, a.ID, m)
			}
			e := edges[a.ID]
			if (e.U != v && e.V != v) || e.Other(v) != int(a.To) {
				return nil, fmt.Errorf("graph: vertex %d sorted arc %d: arc (to %d, id %d) contradicts edge %v", v, i, a.To, a.ID, e)
			}
			if i > 0 && a.To <= sspan[i-1].To {
				return nil, fmt.Errorf("graph: vertex %d sorted span not strictly increasing at %d", v, i)
			}
		}
	}
	// Every edge seen exactly twice across all spans (the total count is
	// already 2m, so "no edge more than twice" implies exactly twice — but
	// the explicit check yields a better error).
	for id, c := range refs {
		if c != 2 {
			return nil, fmt.Errorf("graph: edge %d referenced %d times, want 2", id, c)
		}
	}
	return &Graph{n: n, edges: edges, arcOff: arcOff, arcs: arcs, arcTo: buildArcTo(arcs), sorted: sorted}, nil
}

// Words returns a read-only view of the bitset's backing words (64 IDs per
// word, little-endian bit order). Callers must not mutate it; it aliases
// the set's own storage. The snapshot codec writes it verbatim.
func (s *EdgeSet) Words() []uint64 { return s.words }

// NewEdgeSetFromWords adopts decoded bitset words as an EdgeSet over a
// universe of m edge IDs. The word count must match NewEdgeSet(m) exactly
// and no bit at position ≥ m may be set; the member count is recomputed
// from the words.
func NewEdgeSetFromWords(m int, words []uint64) (*EdgeSet, error) {
	if m < 0 {
		return nil, fmt.Errorf("graph: negative edge universe %d", m)
	}
	if want := (m + 63) / 64; len(words) != want {
		return nil, fmt.Errorf("graph: edge set has %d words, want %d for %d edges", len(words), want, m)
	}
	count := 0
	for _, w := range words {
		count += bits.OnesCount64(w)
	}
	if tail := m % 64; tail != 0 && len(words) > 0 {
		if words[len(words)-1]>>tail != 0 {
			return nil, fmt.Errorf("graph: edge set has bits beyond universe size %d", m)
		}
	}
	return &EdgeSet{words: words, count: count}, nil
}
