package graph

import "math/bits"

// EdgeSet is a bitset over edge IDs of a fixed graph. The zero value is an
// empty set over zero edges; use NewEdgeSet to size it for a graph.
type EdgeSet struct {
	words []uint64
	count int
}

// NewEdgeSet returns an empty set able to hold edge IDs in [0, m).
func NewEdgeSet(m int) *EdgeSet {
	return &EdgeSet{words: make([]uint64, (m+63)/64)}
}

// Add inserts id. Adding an ID already present is a no-op.
func (s *EdgeSet) Add(id int) {
	w, b := id/64, uint(id%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Remove deletes id. Removing an absent ID is a no-op.
func (s *EdgeSet) Remove(id int) {
	w, b := id/64, uint(id%64)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

// Has reports whether id is in the set.
func (s *EdgeSet) Has(id int) bool {
	w, b := id/64, uint(id%64)
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<b) != 0
}

// Len returns the number of IDs in the set.
func (s *EdgeSet) Len() int { return s.count }

// Clone returns a deep copy.
func (s *EdgeSet) Clone() *EdgeSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &EdgeSet{words: w, count: s.count}
}

// Union adds every ID of o to s.
func (s *EdgeSet) Union(o *EdgeSet) {
	for i, w := range o.words {
		added := w &^ s.words[i]
		s.words[i] |= w
		s.count += bits.OnesCount64(added)
	}
}

// IDs returns the members in increasing order.
func (s *EdgeSet) IDs() []int {
	out := make([]int, 0, s.count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every member in increasing order.
func (s *EdgeSet) ForEach(fn func(id int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// IntersectsList reports whether any of the given IDs is in the set.
func (s *EdgeSet) IntersectsList(ids []int) bool {
	for _, id := range ids {
		if s.Has(id) {
			return true
		}
	}
	return false
}
