package graph

import "fmt"

// This file implements the opt-in freeze-time vertex renumbering: vertices
// are relabeled along a BFS/degree order so that vertices traversed together
// sit in adjacent CSR spans, while edge IDs are preserved exactly. Every
// ID-keyed artifact (fault sets, weight assignments, structures) is
// therefore unchanged; only vertex labels move, and the old<->new maps are
// carried on the Graph so a serving boundary can translate. Algorithms
// iterate neighbors in edge-ID order regardless of labels, so a renumbered
// build is observationally identical to the plain one up to the relabeling
// (pinned by the repo-level equivalence tests).

// orderPerm computes the renumbering for the graph given by an edge list:
// BFS from the highest-degree vertex (ties by lowest old ID), visiting
// neighbors in edge-insertion order; remaining components are seeded the
// same way. Returned maps satisfy toNew[old] = new and toOld[new] = old.
func orderPerm(n int, edges []Edge) (toNew, toOld []int32) {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	// Throwaway neighbor CSR in edge-insertion order (same shape as
	// Builder.ConnectedFrom builds).
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]int32, 2*len(edges))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, e := range edges {
		adj[cur[e.U]] = int32(e.V)
		cur[e.U]++
		adj[cur[e.V]] = int32(e.U)
		cur[e.V]++
	}
	// Seed order: degree descending, old ID ascending. A counting sort by
	// degree keeps this O(n + m) and deterministic.
	maxDeg := int32(0)
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	bucket := make([]int32, maxDeg+2)
	for _, d := range deg {
		bucket[maxDeg-d+1]++
	}
	for i := 1; i < len(bucket); i++ {
		bucket[i] += bucket[i-1]
	}
	seeds := make([]int32, n)
	for v := 0; v < n; v++ {
		b := maxDeg - deg[v]
		seeds[bucket[b]] = int32(v)
		bucket[b]++
	}
	toNew = make([]int32, n)
	for i := range toNew {
		toNew[i] = -1
	}
	toOld = make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for _, s := range seeds {
		if toNew[s] >= 0 {
			continue
		}
		toNew[s] = int32(len(toOld))
		toOld = append(toOld, s)
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range adj[off[v]:off[v+1]] {
				if toNew[u] < 0 {
					toNew[u] = int32(len(toOld))
					toOld = append(toOld, u)
					queue = append(queue, u)
				}
			}
		}
	}
	return toNew, toOld
}

// freezeOrdered freezes the edge list under the BFS/degree permutation.
// Edge i of the result joins the renumbered endpoints of input edge i, so
// edge IDs are stable across the relabeling.
func freezeOrdered(n int, edges []Edge) *Graph {
	toNew, toOld := orderPerm(n, edges)
	mapped := make([]Edge, len(edges))
	for i, e := range edges {
		mapped[i] = Edge{U: int(toNew[e.U]), V: int(toNew[e.V])}.Normalize()
	}
	g := freeze(n, mapped)
	g.toNew, g.toOld = toNew, toOld
	return g
}

// ReorderBFS returns a copy of g frozen under the BFS/degree vertex order,
// carrying the old<->new maps. If g is already ordered it is returned
// unchanged: the renumbering is computed from original labels, so applying
// it twice cannot improve the layout.
func ReorderBFS(g *Graph) *Graph {
	if g.Ordered() {
		return g
	}
	return freezeOrdered(g.n, g.edges)
}

// Ordered reports whether g carries a freeze-time vertex renumbering.
func (g *Graph) Ordered() bool { return g.toOld != nil }

// OrderMaps returns read-only views of the renumbering maps: toNew[old] is
// the internal label of original vertex old, toOld[new] the original label
// of internal vertex new. Both are nil when g is unordered (labels are the
// identity). Callers must not mutate them.
func (g *Graph) OrderMaps() (toNew, toOld []int32) { return g.toNew, g.toOld }

// AdoptOrder attaches a decoded vertex renumbering to a freshly rebuilt
// graph, validating that toOld is a permutation of [0, N). It takes
// ownership of toOld and derives the inverse map. Like FromCSRData, this is
// the codec boundary only: the snapshot decoder is the sole caller.
func (g *Graph) AdoptOrder(toOld []int32) error {
	if len(toOld) != g.n {
		return fmt.Errorf("graph: order map has %d entries, want %d", len(toOld), g.n)
	}
	toNew := make([]int32, g.n)
	for i := range toNew {
		toNew[i] = -1
	}
	for newID, old := range toOld {
		if old < 0 || int(old) >= g.n {
			return fmt.Errorf("graph: order map entry %d = %d out of range [0,%d)", newID, old, g.n)
		}
		if toNew[old] != -1 {
			return fmt.Errorf("graph: order map maps %d twice", old)
		}
		toNew[old] = int32(newID)
	}
	g.toOld = toOld
	g.toNew = toNew
	return nil
}
