package graph

import (
	"math/rand"
	"testing"
)

func randomBuilder(t *testing.T, n, m int, seed int64) *Builder {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for b.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || b.HasEdge(u, v) {
			continue
		}
		b.MustAddEdge(u, v)
	}
	return b
}

func TestFreezeOrderedPermutation(t *testing.T) {
	b := randomBuilder(t, 60, 140, 1)
	g := b.FreezeOrdered()
	if !g.Ordered() {
		t.Fatalf("FreezeOrdered graph not Ordered")
	}
	toNew, toOld := g.OrderMaps()
	if len(toNew) != 60 || len(toOld) != 60 {
		t.Fatalf("map lengths %d/%d", len(toNew), len(toOld))
	}
	for old, nw := range toNew {
		if nw < 0 || int(nw) >= 60 {
			t.Fatalf("toNew[%d] = %d out of range", old, nw)
		}
		if int(toOld[nw]) != old {
			t.Fatalf("maps not inverse at old=%d", old)
		}
	}
}

func TestFreezeOrderedPreservesEdgeIDs(t *testing.T) {
	b := randomBuilder(t, 40, 90, 2)
	plain := b.Freeze()
	ord := b.FreezeOrdered()
	if plain.M() != ord.M() || plain.N() != ord.N() {
		t.Fatalf("size mismatch")
	}
	toNew, _ := ord.OrderMaps()
	for id := 0; id < plain.M(); id++ {
		pe, oe := plain.EdgeAt(id), ord.EdgeAt(id)
		want := Edge{U: int(toNew[pe.U]), V: int(toNew[pe.V])}.Normalize()
		if oe != want {
			t.Fatalf("edge %d = %v, want %v (plain %v)", id, oe, want, pe)
		}
	}
	// Neighbor iteration stays in edge-ID (insertion) order.
	for v := 0; v < ord.N(); v++ {
		arcs := ord.Arcs(v)
		for i := 1; i < len(arcs); i++ {
			if arcs[i].ID <= arcs[i-1].ID {
				t.Fatalf("vertex %d arcs not in edge-ID order", v)
			}
		}
	}
}

func TestFreezeOrderedSeedIsMaxDegree(t *testing.T) {
	b := NewBuilder(6)
	// Star around vertex 4 plus one extra edge: 4 has max degree.
	for _, v := range []int{0, 1, 2, 3, 5} {
		b.MustAddEdge(4, v)
	}
	b.MustAddEdge(0, 1)
	g := b.FreezeOrdered()
	toNew, _ := g.OrderMaps()
	if toNew[4] != 0 {
		t.Fatalf("max-degree vertex renumbered to %d, want 0", toNew[4])
	}
}

func TestFreezeOrderedDisconnected(t *testing.T) {
	b := NewBuilder(7)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	// 5, 6 isolated.
	g := b.FreezeOrdered()
	toNew, toOld := g.OrderMaps()
	seen := make([]bool, 7)
	for _, old := range toOld {
		if seen[old] {
			t.Fatalf("vertex %d assigned twice", old)
		}
		seen[old] = true
	}
	// Vertex 3 has the max degree (2), so its component leads.
	if toNew[3] != 0 {
		t.Fatalf("toNew[3] = %d, want 0", toNew[3])
	}
}

func TestReorderBFSIdempotent(t *testing.T) {
	b := randomBuilder(t, 30, 60, 3)
	plain := b.Freeze()
	ord := ReorderBFS(plain)
	if !ord.Ordered() || plain.Ordered() {
		t.Fatalf("ReorderBFS orderedness wrong")
	}
	if again := ReorderBFS(ord); again != ord {
		t.Fatalf("ReorderBFS on ordered graph should return it unchanged")
	}
	// Same permutation as FreezeOrdered from the same edges.
	ord2 := b.FreezeOrdered()
	tn1, _ := ord.OrderMaps()
	tn2, _ := ord2.OrderMaps()
	for v := range tn1 {
		if tn1[v] != tn2[v] {
			t.Fatalf("ReorderBFS and FreezeOrdered disagree at %d", v)
		}
	}
}

func TestAdoptOrder(t *testing.T) {
	b := randomBuilder(t, 10, 15, 4)
	g := b.Freeze()
	if err := g.AdoptOrder([]int32{0, 1}); err == nil {
		t.Fatalf("short map accepted")
	}
	bad := make([]int32, 10)
	bad[3] = 99
	if err := g.AdoptOrder(bad); err == nil {
		t.Fatalf("out-of-range map accepted")
	}
	dup := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 8}
	if err := g.AdoptOrder(dup); err == nil {
		t.Fatalf("duplicate map accepted")
	}
	ok := []int32{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	if err := g.AdoptOrder(ok); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	toNew, toOld := g.OrderMaps()
	for nw, old := range toOld {
		if int(toNew[old]) != nw {
			t.Fatalf("derived inverse wrong at %d", nw)
		}
	}
}
