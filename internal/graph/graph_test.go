package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderAddEdgeBasics(t *testing.T) {
	b := NewBuilder(4)
	if b.N() != 4 || b.M() != 0 {
		t.Fatalf("fresh builder: N=%d M=%d", b.N(), b.M())
	}
	id, err := b.AddEdge(2, 0)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if id != 0 {
		t.Fatalf("first edge ID = %d, want 0", id)
	}
	if !b.HasEdge(0, 2) || !b.HasEdge(2, 0) {
		t.Fatalf("builder HasEdge should be orientation-insensitive")
	}
	g := b.Freeze()
	if g.N() != 4 || g.M() != 1 {
		t.Fatalf("frozen: N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatalf("HasEdge should be orientation-insensitive")
	}
	if e := g.EdgeAt(0); e.U != 0 || e.V != 2 {
		t.Fatalf("EdgeAt(0) = %v, want (0,2)", e)
	}
	if got, ok := g.EdgeID(0, 2); !ok || got != 0 {
		t.Fatalf("EdgeID = %d,%v", got, ok)
	}
}

func TestBuilderAddEdgeErrors(t *testing.T) {
	b := NewBuilder(3)
	cases := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"u out of range", -1, 0},
		{"v out of range", 0, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := b.AddEdge(c.u, c.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", c.u, c.v)
			}
		})
	}
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid AddEdge: %v", err)
	}
	if _, err := b.AddEdge(1, 0); err == nil {
		t.Fatalf("duplicate edge accepted")
	}
}

func TestEdgeNormalizeAndOther(t *testing.T) {
	e := Edge{U: 5, V: 2}.Normalize()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Normalize: %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatalf("Other endpoints wrong")
	}
	if e.Other(7) != -1 {
		t.Fatalf("Other(non-endpoint) = %d, want -1", e.Other(7))
	}
}

func TestNeighborsOrderDeterministic(t *testing.T) {
	b := NewBuilder(5)
	b.MustAddEdge(0, 3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 4)
	g := b.Freeze()
	want := []int{3, 1, 4}
	got := g.Neighbors(0)
	if len(got) != len(want) {
		t.Fatalf("Neighbors len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors order = %v, want %v (insertion order)", got, want)
		}
	}
	// Arcs exposes the same span with edge IDs attached.
	arcs := g.Arcs(0)
	for i := range want {
		if int(arcs[i].To) != want[i] || int(arcs[i].ID) != i {
			t.Fatalf("Arcs(0) = %v", arcs)
		}
	}
}

func TestFreezeIndependence(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	g := b.Freeze()
	b.MustAddEdge(2, 3) // builder stays usable; frozen graph unaffected
	if g.M() != 2 || b.M() != 3 {
		t.Fatalf("freeze not independent: g.M=%d b.M=%d", g.M(), b.M())
	}
	if g.HasEdge(2, 3) {
		t.Fatalf("frozen graph sees later edge")
	}
	g2 := b.Freeze()
	if g2.M() != 3 || !g2.HasEdge(2, 3) {
		t.Fatalf("second freeze wrong: M=%d", g2.M())
	}
	// Edge IDs preserved across freezes.
	if id, _ := g2.EdgeID(1, 2); id != 1 {
		t.Fatalf("edge ID changed: %d", id)
	}
}

func TestSubgraph(t *testing.T) {
	b := NewBuilder(4)
	a := b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	c := b.MustAddEdge(2, 3)
	g := b.Freeze()
	keep := NewEdgeSet(g.M())
	keep.Add(a)
	keep.Add(c)
	sub := g.Subgraph(keep)
	if sub.M() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(2, 3) || sub.HasEdge(1, 2) {
		t.Fatalf("subgraph wrong: M=%d", sub.M())
	}
}

func TestSubgraphMapped(t *testing.T) {
	b := NewBuilder(5)
	b.MustAddEdge(0, 1) // 0
	b.MustAddEdge(1, 2) // 1
	b.MustAddEdge(2, 3) // 2
	b.MustAddEdge(3, 4) // 3
	g := b.Freeze()
	keep := NewEdgeSet(g.M())
	keep.Add(1)
	keep.Add(3)
	sub, gToSub := g.SubgraphMapped(keep)
	if sub.M() != 2 {
		t.Fatalf("sub.M = %d", sub.M())
	}
	want := []int32{-1, 0, -1, 1}
	for id, w := range want {
		if gToSub[id] != w {
			t.Fatalf("gToSub = %v, want %v", gToSub, want)
		}
	}
	// Renumbering is by increasing original ID, endpoints preserved.
	if e := sub.EdgeAt(0); e != (Edge{U: 1, V: 2}) {
		t.Fatalf("sub edge 0 = %v", e)
	}
	if e := sub.EdgeAt(1); e != (Edge{U: 3, V: 4}) {
		t.Fatalf("sub edge 1 = %v", e)
	}
}

func TestConnectedFrom(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	if b.ConnectedFrom(0) || b.Freeze().ConnectedFrom(0) {
		t.Fatalf("vertex 3 isolated but reported connected")
	}
	b.MustAddEdge(2, 3)
	if !b.ConnectedFrom(0) || !b.Freeze().ConnectedFrom(0) {
		t.Fatalf("path graph reported disconnected")
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(0, 3)
	h := b.Freeze().DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Fatalf("star histogram = %v", h)
	}
}

func TestSortedEdges(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 3)
	es := b.Freeze().SortedEdges()
	want := []Edge{{0, 1}, {0, 3}, {2, 3}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("SortedEdges = %v", es)
		}
	}
}

func TestEmptyGraphs(t *testing.T) {
	g := NewBuilder(0).Freeze()
	if g.N() != 0 || g.M() != 0 || !g.ConnectedFrom(0) {
		t.Fatalf("empty graph wrong")
	}
	g = NewBuilder(3).Freeze() // vertices, no edges
	if g.Degree(1) != 0 || len(g.Arcs(1)) != 0 || g.HasEdge(0, 1) {
		t.Fatalf("edgeless graph wrong")
	}
	if _, ok := g.EdgeID(0, 5); ok {
		t.Fatalf("out-of-range EdgeID should miss")
	}
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(200)
	if s.Len() != 0 || s.Has(5) {
		t.Fatalf("fresh set not empty")
	}
	s.Add(5)
	s.Add(130)
	s.Add(5) // duplicate
	if s.Len() != 2 || !s.Has(5) || !s.Has(130) {
		t.Fatalf("set contents wrong: len=%d", s.Len())
	}
	s.Remove(5)
	s.Remove(5) // absent
	if s.Len() != 1 || s.Has(5) {
		t.Fatalf("remove failed: len=%d", s.Len())
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != 130 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestEdgeSetUnionAndClone(t *testing.T) {
	a := NewEdgeSet(100)
	b := NewEdgeSet(100)
	a.Add(1)
	a.Add(64)
	b.Add(64)
	b.Add(99)
	c := a.Clone()
	c.Union(b)
	if c.Len() != 3 || !c.Has(1) || !c.Has(64) || !c.Has(99) {
		t.Fatalf("union wrong: %v", c.IDs())
	}
	if a.Len() != 2 {
		t.Fatalf("clone mutated original")
	}
}

func TestEdgeSetIntersectsList(t *testing.T) {
	s := NewEdgeSet(10)
	s.Add(7)
	if s.IntersectsList([]int{1, 2, 3}) {
		t.Fatalf("false positive")
	}
	if !s.IntersectsList([]int{3, 7}) {
		t.Fatalf("false negative")
	}
}

func TestEdgeSetForEachOrder(t *testing.T) {
	s := NewEdgeSet(300)
	for _, id := range []int{250, 3, 64, 65} {
		s.Add(id)
	}
	var got []int
	s.ForEach(func(id int) { got = append(got, id) })
	want := []int{3, 64, 65, 250}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v", got)
		}
	}
}

// Property: the EdgeSet agrees with a reference map implementation under a
// random operation sequence.
func TestEdgeSetQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const m = 512
		s := NewEdgeSet(m)
		ref := make(map[int]bool)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			id := int(op) % m
			if rng.Intn(2) == 0 {
				s.Add(id)
				ref[id] = true
			} else {
				s.Remove(id)
				delete(ref, id)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for id := range ref {
			if !s.Has(id) {
				return false
			}
		}
		for _, id := range s.IDs() {
			if !ref[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
