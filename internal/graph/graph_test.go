package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("fresh graph: N=%d M=%d", g.N(), g.M())
	}
	id, err := g.AddEdge(2, 0)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if id != 0 {
		t.Fatalf("first edge ID = %d, want 0", id)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatalf("HasEdge should be orientation-insensitive")
	}
	if e := g.EdgeAt(0); e.U != 0 || e.V != 2 {
		t.Fatalf("EdgeAt(0) = %v, want (0,2)", e)
	}
	if got, ok := g.EdgeID(0, 2); !ok || got != 0 {
		t.Fatalf("EdgeID = %d,%v", got, ok)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"u out of range", -1, 0},
		{"v out of range", 0, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := g.AddEdge(c.u, c.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", c.u, c.v)
			}
		})
	}
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("valid AddEdge: %v", err)
	}
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Fatalf("duplicate edge accepted")
	}
}

func TestEdgeNormalizeAndOther(t *testing.T) {
	e := Edge{U: 5, V: 2}.Normalize()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Normalize: %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatalf("Other endpoints wrong")
	}
	if e.Other(7) != -1 {
		t.Fatalf("Other(non-endpoint) = %d, want -1", e.Other(7))
	}
}

func TestNeighborsOrderDeterministic(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 4)
	want := []int{3, 1, 4}
	got := g.Neighbors(0)
	if len(got) != len(want) {
		t.Fatalf("Neighbors len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors order = %v, want %v (insertion order)", got, want)
		}
	}
}

func TestForNeighborsEarlyStop(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	calls := 0
	g.ForNeighbors(0, func(w, id int) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("early stop: %d calls, want 2", calls)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	c := g.Clone()
	c.MustAddEdge(2, 3)
	if g.M() != 2 || c.M() != 3 {
		t.Fatalf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
	if !c.HasEdge(0, 1) || !c.HasEdge(1, 2) {
		t.Fatalf("clone missing original edges")
	}
	// Edge IDs preserved.
	if id, _ := c.EdgeID(1, 2); id != 1 {
		t.Fatalf("clone edge ID changed: %d", id)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(4)
	a := g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	c := g.MustAddEdge(2, 3)
	keep := NewEdgeSet(g.M())
	keep.Add(a)
	keep.Add(c)
	sub := g.Subgraph(keep)
	if sub.M() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(2, 3) || sub.HasEdge(1, 2) {
		t.Fatalf("subgraph wrong: M=%d", sub.M())
	}
}

func TestConnectedFrom(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if g.ConnectedFrom(0) {
		t.Fatalf("vertex 3 isolated but reported connected")
	}
	g.MustAddEdge(2, 3)
	if !g.ConnectedFrom(0) {
		t.Fatalf("path graph reported disconnected")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Fatalf("star histogram = %v", h)
	}
}

func TestSortedEdges(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 3)
	es := g.SortedEdges()
	want := []Edge{{0, 1}, {0, 3}, {2, 3}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("SortedEdges = %v", es)
		}
	}
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(200)
	if s.Len() != 0 || s.Has(5) {
		t.Fatalf("fresh set not empty")
	}
	s.Add(5)
	s.Add(130)
	s.Add(5) // duplicate
	if s.Len() != 2 || !s.Has(5) || !s.Has(130) {
		t.Fatalf("set contents wrong: len=%d", s.Len())
	}
	s.Remove(5)
	s.Remove(5) // absent
	if s.Len() != 1 || s.Has(5) {
		t.Fatalf("remove failed: len=%d", s.Len())
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != 130 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestEdgeSetUnionAndClone(t *testing.T) {
	a := NewEdgeSet(100)
	b := NewEdgeSet(100)
	a.Add(1)
	a.Add(64)
	b.Add(64)
	b.Add(99)
	c := a.Clone()
	c.Union(b)
	if c.Len() != 3 || !c.Has(1) || !c.Has(64) || !c.Has(99) {
		t.Fatalf("union wrong: %v", c.IDs())
	}
	if a.Len() != 2 {
		t.Fatalf("clone mutated original")
	}
}

func TestEdgeSetIntersectsList(t *testing.T) {
	s := NewEdgeSet(10)
	s.Add(7)
	if s.IntersectsList([]int{1, 2, 3}) {
		t.Fatalf("false positive")
	}
	if !s.IntersectsList([]int{3, 7}) {
		t.Fatalf("false negative")
	}
}

func TestEdgeSetForEachOrder(t *testing.T) {
	s := NewEdgeSet(300)
	for _, id := range []int{250, 3, 64, 65} {
		s.Add(id)
	}
	var got []int
	s.ForEach(func(id int) { got = append(got, id) })
	want := []int{3, 64, 65, 250}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v", got)
		}
	}
}

// Property: the EdgeSet agrees with a reference map implementation under a
// random operation sequence.
func TestEdgeSetQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const m = 512
		s := NewEdgeSet(m)
		ref := make(map[int]bool)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			id := int(op) % m
			if rng.Intn(2) == 0 {
				s.Add(id)
				ref[id] = true
			} else {
				s.Remove(id)
				delete(ref, id)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for id := range ref {
			if !s.Has(id) {
				return false
			}
		}
		for _, id := range s.IDs() {
			if !ref[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddEdge/HasEdge/EdgeID stay mutually consistent on random simple
// graphs.
func TestGraphQuickConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		type pair struct{ u, v int }
		added := make(map[pair]int)
		for tries := 0; tries < 3*n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			p := pair{u, v}
			if u > v {
				p = pair{v, u}
			}
			id, err := g.AddEdge(u, v)
			if _, dup := added[p]; dup {
				if err == nil {
					return false // duplicate must fail
				}
				continue
			}
			if err != nil {
				return false
			}
			added[p] = id
		}
		if g.M() != len(added) {
			return false
		}
		for p, id := range added {
			got, ok := g.EdgeID(p.u, p.v)
			if !ok || got != id {
				return false
			}
			e := g.EdgeAt(id)
			if e.U != p.u || e.V != p.v {
				return false
			}
		}
		// Degree sums to 2M.
		total := 0
		for v := 0; v < n; v++ {
			total += g.Degree(v)
		}
		return total == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
