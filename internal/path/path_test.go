package path

import (
	"testing"

	"repro/internal/graph"
)

func TestLenFirstLast(t *testing.T) {
	p := Path{3, 5, 7}
	if p.Len() != 2 || p.First() != 3 || p.Last() != 7 {
		t.Fatalf("Len/First/Last wrong: %v", p)
	}
	if Path(nil).Len() != 0 {
		t.Fatalf("nil path Len != 0")
	}
	if (Path{9}).Len() != 0 {
		t.Fatalf("single-vertex path Len != 0")
	}
}

func TestLastEdge(t *testing.T) {
	p := Path{3, 5, 2}
	e, ok := p.LastEdge()
	if !ok || e != (graph.Edge{U: 2, V: 5}) {
		t.Fatalf("LastEdge = %v,%v", e, ok)
	}
	if _, ok := (Path{1}).LastEdge(); ok {
		t.Fatalf("single vertex has no last edge")
	}
}

func TestSubAndConcat(t *testing.T) {
	p := Path{0, 1, 2, 3, 4}
	sub := p.Sub(1, 3)
	if sub.String() != "1-2-3" {
		t.Fatalf("Sub = %v", sub)
	}
	q := Path{3, 9}
	joined := sub.Concat(q)
	if joined.String() != "1-2-3-9" {
		t.Fatalf("Concat = %v", joined)
	}
	if bad := sub.Concat(Path{8, 9}); bad != nil {
		t.Fatalf("mismatched Concat should be nil")
	}
	// Concat with empty operands copies.
	if got := (Path{}).Concat(p); got.String() != p.String() {
		t.Fatalf("empty.Concat = %v", got)
	}
	if got := p.Concat(Path{}); got.String() != p.String() {
		t.Fatalf("Concat(empty) = %v", got)
	}
}

func TestCloneReverse(t *testing.T) {
	p := Path{1, 2, 3}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone shares storage")
	}
	r := p.Reverse()
	if r.String() != "3-2-1" {
		t.Fatalf("Reverse = %v", r)
	}
}

func TestPosIsSimple(t *testing.T) {
	p := Path{4, 6, 8}
	pos := p.Pos()
	if pos[4] != 0 || pos[6] != 1 || pos[8] != 2 {
		t.Fatalf("Pos = %v", pos)
	}
	if !p.IsSimple() {
		t.Fatalf("simple path misreported")
	}
	if (Path{1, 2, 1}).IsSimple() {
		t.Fatalf("non-simple path misreported")
	}
}

func TestEdgesContains(t *testing.T) {
	p := Path{0, 2, 1}
	es := p.Edges()
	if len(es) != 2 || es[0] != (graph.Edge{U: 0, V: 2}) || es[1] != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("Edges = %v", es)
	}
	if !p.ContainsEdge(graph.Edge{U: 1, V: 2}) || p.ContainsEdge(graph.Edge{U: 0, V: 1}) {
		t.Fatalf("ContainsEdge wrong")
	}
}

func TestContainsAnyEdgeIDAndValidIn(t *testing.T) {
	gb := graph.NewBuilder(4)
	e01 := gb.MustAddEdge(0, 1)
	gb.MustAddEdge(1, 2)
	e23 := gb.MustAddEdge(2, 3)
	g := gb.Freeze()
	p := Path{0, 1, 2}
	if !p.ValidIn(g) {
		t.Fatalf("valid path misreported")
	}
	if (Path{0, 2}).ValidIn(g) {
		t.Fatalf("invalid path accepted")
	}
	if !p.ContainsAnyEdgeID(g, []int{e23, e01}) {
		t.Fatalf("should contain edge 0-1")
	}
	if p.ContainsAnyEdgeID(g, []int{e23}) {
		t.Fatalf("should not contain edge 2-3")
	}
}

func TestFirstDivergence(t *testing.T) {
	cases := []struct {
		name string
		p, q Path
		want int
	}{
		{"diverge mid", Path{0, 1, 2, 3}, Path{0, 1, 5, 6}, 1},
		{"diverge at source", Path{0, 1}, Path{0, 2}, 0},
		{"different origin", Path{1, 2}, Path{0, 2}, -1},
		{"p prefix of q", Path{0, 1}, Path{0, 1, 2}, 1},
		{"equal", Path{0, 1, 2}, Path{0, 1, 2}, 2},
		{"empty", nil, Path{0}, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.p.FirstDivergence(c.q); got != c.want {
				t.Fatalf("FirstDivergence(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
			}
		})
	}
}

func TestString(t *testing.T) {
	if Path(nil).String() != "<nil>" {
		t.Fatalf("nil String = %q", Path(nil).String())
	}
	if (Path{1, 2}).String() != "1-2" {
		t.Fatalf("String = %q", (Path{1, 2}).String())
	}
}
