// Package path provides simple-path values over dense-integer vertices, with
// the segment operations the paper's analysis uses constantly: subpaths,
// concatenation, last edges, position maps and divergence points.
package path

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Path is a sequence of vertices; consecutive entries are assumed adjacent in
// the underlying graph. A nil Path means "no path" (e.g. disconnected).
// A single-vertex Path has zero edges.
type Path []int

// Len returns the number of edges on the path (|P| in the paper).
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// First returns the first vertex; it panics on an empty path.
func (p Path) First() int { return p[0] }

// Last returns the last vertex; it panics on an empty path.
func (p Path) Last() int { return p[len(p)-1] }

// LastEdge returns the final edge of the path (LastE(P) in the paper) and
// false when the path has no edges.
func (p Path) LastEdge() (graph.Edge, bool) {
	if len(p) < 2 {
		return graph.Edge{}, false
	}
	return graph.Edge{U: p[len(p)-2], V: p[len(p)-1]}.Normalize(), true
}

// Sub returns the subpath between positions i and j inclusive (0-based
// indices into the vertex sequence, i ≤ j). The returned path shares backing
// storage with p.
func (p Path) Sub(i, j int) Path { return p[i : j+1] }

// Concat returns p ∘ q. The last vertex of p must equal the first vertex of
// q; it returns nil if they differ.
func (p Path) Concat(q Path) Path {
	if len(p) == 0 {
		out := make(Path, len(q))
		copy(out, q)
		return out
	}
	if len(q) == 0 {
		out := make(Path, len(p))
		copy(out, p)
		return out
	}
	if p.Last() != q.First() {
		return nil
	}
	out := make(Path, 0, len(p)+len(q)-1)
	out = append(out, p...)
	out = append(out, q[1:]...)
	return out
}

// Clone returns a copy with fresh backing storage.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Reverse returns the reversed path as a fresh value.
func (p Path) Reverse() Path {
	out := make(Path, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// Pos returns a map from vertex to its position on the path. Paths here are
// simple, so positions are unique.
func (p Path) Pos() map[int]int {
	m := make(map[int]int, len(p))
	for i, v := range p {
		m[v] = i
	}
	return m
}

// IsSimple reports whether no vertex repeats.
func (p Path) IsSimple() bool {
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Edges returns the path's edges in order (fresh slice, normalized).
func (p Path) Edges() []graph.Edge {
	if len(p) < 2 {
		return nil
	}
	out := make([]graph.Edge, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		out = append(out, graph.Edge{U: p[i], V: p[i+1]}.Normalize())
	}
	return out
}

// ContainsEdge reports whether the undirected edge e appears on the path.
func (p Path) ContainsEdge(e graph.Edge) bool {
	e = e.Normalize()
	for i := 0; i+1 < len(p); i++ {
		if (graph.Edge{U: p[i], V: p[i+1]}).Normalize() == e {
			return true
		}
	}
	return false
}

// ContainsAnyEdgeID reports whether any edge of the path has an ID in ids,
// resolving IDs via g.
func (p Path) ContainsAnyEdgeID(g *graph.Graph, ids []int) bool {
	for _, id := range ids {
		if p.ContainsEdge(g.EdgeAt(id)) {
			return true
		}
	}
	return false
}

// ValidIn reports whether every consecutive pair is an edge of g.
func (p Path) ValidIn(g *graph.Graph) bool {
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return false
		}
	}
	return true
}

// FirstDivergence returns the position (index into p) of the first
// divergence point of p from q: the last position i such that p[0..i] is a
// prefix of q as well, with p[i+1] ≠ q[i+1] or q ending. It returns -1 when
// the paths differ already at position 0 or p is empty. If p is a prefix of q
// (or equal), it returns len(p)-1.
//
// This matches the paper's notion for paths sharing their origin: the vertex
// where P departs from π.
func (p Path) FirstDivergence(q Path) int {
	if len(p) == 0 || len(q) == 0 || p[0] != q[0] {
		return -1
	}
	i := 0
	for i+1 < len(p) && i+1 < len(q) && p[i+1] == q[i+1] {
		i++
	}
	return i
}

// String renders the path as "v0-v1-...-vk".
func (p Path) String() string {
	if len(p) == 0 {
		return "<nil>"
	}
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
