package replace

import (
	"testing"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spdag"
)

// TestStep1DivergenceMinimalLinearScan validates the Step-1 binary search
// against a brute-force linear scan of every candidate divergence point:
// the chosen k must be the minimal one whose restricted graph G(u_k, u_i)
// preserves the replacement distance (monotonicity is what the binary
// search relies on — a disagreement here would expose it).
func TestStep1DivergenceMinimalLinearScan(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.GNP(18, 0.25, 31),
		gen.Grid(4, 4),
		gen.TreePlusChords(20, 6, 2),
	} {
		eng := newEngine(t, g, 0, 5)
		r := bfs.NewRunner(g)
		for v := 1; v < g.N(); v++ {
			tr := eng.BuildTarget(v, true)
			if tr == nil {
				continue
			}
			for _, rec := range tr.Records {
				if rec.Kind != KindSingle || rec.Unreachable || rec.UsedFallback {
					continue
				}
				i := rec.EIdx
				eid := tr.PiEdgeIDs[i]
				r.Run(0, []int{eid}, nil)
				d := r.Dist(v)
				// Brute force: minimal k in [0, i] with distance preserved.
				want := -1
				for k := 0; k <= i; k++ {
					var off []int
					for j := k + 1; j <= i; j++ {
						off = append(off, tr.Pi[j])
					}
					r.Run(0, []int{eid}, off)
					if r.Dist(v) == d {
						want = k
						break
					}
					r.Run(0, []int{eid}, nil) // reset masks for next probe
				}
				if want < 0 {
					t.Fatalf("v=%d e=%d: no k preserves distance (impossible: k=i must)", v, i)
				}
				if rec.BPos != want {
					t.Fatalf("v=%d e=%d: engine divergence %d, brute force %d", v, i, rec.BPos, want)
				}
			}
		}
	}
}

// TestStep1DivergenceNotLaterThanCleanPaths cross-checks against the
// shortest-path DAG: among all shortest replacement paths with a unique
// divergence point (detour shape, Claim 3.4), none diverges strictly above
// the engine's choice.
func TestStep1DivergenceNotLaterThanCleanPaths(t *testing.T) {
	g := gen.GNP(16, 0.3, 17)
	eng := newEngine(t, g, 0, 9)
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			continue
		}
		piPos := tr.Pi.Pos()
		for _, rec := range tr.Records {
			if rec.Kind != KindSingle || rec.Unreachable || rec.UsedFallback {
				continue
			}
			dag := spdag.New(g, 0, rec.FaultIDs)
			for _, p := range dag.AllPaths(v, 200) {
				b := p.FirstDivergence(tr.Pi)
				if b < 0 || b >= rec.BPos {
					continue
				}
				// p diverges above the engine's chosen point; the paper
				// says this can happen only for paths that re-touch π
				// between the divergence point and the failure.
				clean := true
				for j := b + 1; j < len(p)-1; j++ {
					if pos, on := piPos[p[j]]; on && pos <= rec.EIdx {
						clean = false
						break
					}
				}
				if clean {
					t.Fatalf("v=%d e=%d: clean path %v diverges at %d, engine chose %d",
						v, rec.EIdx, p, b, rec.BPos)
				}
			}
		}
	}
}

// TestStep3DivergenceMinimalLinearScan does the same brute-force scan for
// the Step-3 G(u_k, v) selection of new-ending (π,D) paths.
func TestStep3DivergenceMinimalLinearScan(t *testing.T) {
	g := gen.GNP(20, 0.2, 23)
	eng := newEngine(t, g, 0, 3)
	r := bfs.NewRunner(g)
	checked := 0
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			continue
		}
		l := len(tr.Pi) - 1
		for _, rec := range tr.Records {
			if rec.Kind != KindPiD || !rec.NewEnding || rec.UsedFallback || rec.Unreachable {
				continue
			}
			checked++
			r.Run(0, rec.FaultIDs, nil)
			d := r.Dist(v)
			want := -1
			for k := 0; k <= rec.EIdx; k++ {
				var off []int
				for j := k + 1; j < l; j++ {
					off = append(off, tr.Pi[j])
				}
				r.Run(0, rec.FaultIDs, off)
				if r.Dist(v) == d {
					want = k
					break
				}
			}
			if want < 0 {
				t.Fatalf("v=%d F=%v: no divergence point preserves distance", v, rec.FaultIDs)
			}
			if rec.BPos != want {
				t.Fatalf("v=%d F=%v: engine divergence %d, brute force %d",
					v, rec.FaultIDs, rec.BPos, want)
			}
		}
	}
	if checked == 0 {
		t.Skip("no new-ending (π,D) paths on this instance")
	}
}
