// Package replace implements the replacement-path engine behind Algorithm
// Cons2FTBFS (Section 3 of the paper): single-failure replacement paths with
// the earliest-π-divergence rule (Step 1, Eq. 3), (π,π) dual-failure paths
// with the detour-composition preference (Step 2), and (π,D) dual-failure
// paths processed in the decreasing fault order with the G(u_k,v) / GD(w_ℓ)
// restricted-graph selection rules (Step 3, Eq. 4).
//
// The engine is exact about correctness (every produced path is a shortest
// path of the right fault-restricted subgraph; this is what the verifier
// checks globally) and best-effort about the paper's canonical selection:
// when residual weight ties make a selection rule unrealizable the engine
// falls back to the canonical shortest path and counts the event in Stats.
package replace

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/wsp"
)

// Kind labels which step of Cons2FTBFS produced a replacement path.
type Kind int

// Replacement-path kinds, one per algorithm step.
const (
	KindSingle Kind = iota + 1 // Step 1: one fault on π(s,v)
	KindPiPi                   // Step 2: two faults on π(s,v)
	KindPiD                    // Step 3: one fault on π(s,v), one on its detour
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSingle:
		return "single"
	case KindPiPi:
		return "(pi,pi)"
	case KindPiD:
		return "(pi,D)"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Detour is the detour segment D_i of a single-failure replacement path
// P(s,v,{e_i}) = π(s,x_i) ∘ D_i ∘ π(y_i,v). The path runs from x_i to y_i
// inclusive; both endpoints lie on π(s,v) and the interior is disjoint from
// it (Claim 3.4).
type Detour struct {
	Valid   bool
	Path    path.Path
	XPos    int   // position of x_i on π(s,v)
	YPos    int   // position of y_i on π(s,v)
	EdgeIDs []int // IDs of the detour's edges, in order
}

// X returns the first detour vertex (its π-divergence point).
func (d *Detour) X() int { return d.Path.First() }

// Y returns the last detour vertex (where it rejoins π).
func (d *Detour) Y() int { return d.Path.Last() }

// Record describes one replacement path chosen for a target.
type Record struct {
	Kind Kind
	// EIdx is the index on π(s,v) of the first failing edge e_i
	// (the edge between π positions EIdx and EIdx+1).
	EIdx int
	// SecondIdx identifies the second fault: for KindPiPi the π index of
	// e_j; for KindPiD the position of t_j on the detour D_i. -1 for
	// KindSingle.
	SecondIdx int
	// FaultIDs are the edge IDs of the failing edges (1 or 2 entries).
	FaultIDs []int
	// Path is the chosen replacement path (nil when collection is off or
	// the pair left v unreachable).
	Path path.Path
	// LastEdgeID is the ID of the path's final edge, -1 when no path.
	LastEdgeID int
	// NewEnding reports whether this path introduced a new edge of v into
	// the structure at the time it was processed (Step 3), or — for Steps
	// 1 and 2 — whether its last edge was not already present.
	NewEnding bool
	// BPos is the position on π(s,v) of the path's first divergence
	// point from π (-1 when the path follows π or was not collected).
	BPos int
	// CPos is, for KindPiD paths that intersect their detour, the
	// position on D_i of the first divergence point from the detour; -1
	// otherwise.
	CPos int
	// UsedFallback reports that the canonical selection rule failed
	// (residual weight tie) and the canonical shortest path was used.
	UsedFallback bool
	// Unreachable reports that v is disconnected from s under this fault
	// set, so no replacement path exists (and none is required).
	Unreachable bool
}

// Stats aggregates engine effort and anomaly counters.
type Stats struct {
	Dijkstras   int // searches run
	Fallbacks   int // selection-rule fallbacks
	TieWarnings int // equal-weight path pairs observed (should stay 0)
}

// Engine computes replacement paths for a fixed graph, weight assignment and
// source. It is not safe for concurrent use; create one per goroutine.
type Engine struct {
	g *graph.Graph
	w *wsp.Assignment
	s int

	search *wsp.RepairSearch

	// Canonical BFS/SP tree T0 rooted at s.
	treeParent  []int32
	treeParentE []int32
	treeDist    []int32
	childEdges  [][]int32 // edges to children in T0, per vertex

	stats Stats

	// scratch
	disabledV  []int
	disabledE  []int
	onPi       []int32 // position of each vertex on the current π
	piStamp    []int   // target for which onPi entry is valid (target+1)
	curPiStamp int
}

// NewEngine builds the canonical tree T0(s) and returns an engine. The
// assignment must cover g's edges.
func NewEngine(g *graph.Graph, w *wsp.Assignment, s int) (*Engine, error) {
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("replace: source %d out of range [0,%d)", s, g.N())
	}
	if w.M() != g.M() {
		return nil, fmt.Errorf("replace: assignment covers %d edges, graph has %d", w.M(), g.M())
	}
	e := &Engine{
		g:           g,
		w:           w,
		s:           s,
		treeParent:  make([]int32, g.N()),
		treeParentE: make([]int32, g.N()),
		treeDist:    make([]int32, g.N()),
		childEdges:  make([][]int32, g.N()),
		onPi:        make([]int32, g.N()),
		piStamp:     make([]int, g.N()),
	}
	// The repair search runs the base Dijkstra at construction; it is the
	// same canonical tree a from-scratch run would produce, so it counts
	// as the engine's first search exactly as before.
	e.search = wsp.NewRepairSearch(g, w, s)
	e.stats.Dijkstras++
	for v := 0; v < g.N(); v++ {
		e.treeParent[v] = int32(e.search.ParentOf(v))
		e.treeParentE[v] = int32(e.search.ParentEdgeOf(v))
		e.treeDist[v] = e.search.HopDist(v)
	}
	for v := 0; v < g.N(); v++ {
		if p := e.treeParent[v]; p >= 0 {
			e.childEdges[p] = append(e.childEdges[p], e.treeParentE[v])
		}
	}
	return e, nil
}

// Source returns the engine's source vertex.
func (e *Engine) Source() int { return e.s }

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Stats returns a copy of the accumulated effort counters, folding in the
// underlying search's tie warnings.
func (e *Engine) Stats() Stats {
	st := e.stats
	st.TieWarnings = e.search.TieWarnings()
	return st
}

// DisableRepair makes every search run from scratch (the NoRepair build
// option); results are identical either way.
func (e *Engine) DisableRepair() { e.search.DisableRepair() }

// TreeDist returns the fault-free distance from s to v (-1 if unreachable).
func (e *Engine) TreeDist(v int) int32 { return e.treeDist[v] }

// TreeEdges returns the edge IDs of the canonical tree T0(s).
func (e *Engine) TreeEdges() []int {
	out := make([]int, 0, e.g.N())
	for v := 0; v < e.g.N(); v++ {
		if e.treeParentE[v] >= 0 {
			out = append(out, int(e.treeParentE[v]))
		}
	}
	return out
}

// TreeEdgesAt returns E(v, T0): the IDs of tree edges incident to v.
func (e *Engine) TreeEdgesAt(v int) []int {
	out := make([]int, 0, len(e.childEdges[v])+1)
	if e.treeParentE[v] >= 0 {
		out = append(out, int(e.treeParentE[v]))
	}
	for _, id := range e.childEdges[v] {
		out = append(out, int(id))
	}
	return out
}

// PiTo returns the canonical shortest path π(s,v), or nil when v is
// unreachable from s.
func (e *Engine) PiTo(v int) path.Path {
	if e.treeDist[v] < 0 {
		return nil
	}
	p := make(path.Path, e.treeDist[v]+1)
	i := len(p) - 1
	for u := v; u != -1; u = int(e.treeParent[u]) {
		p[i] = u
		i--
	}
	return p
}

// run wraps the underlying search, counting effort.
func (e *Engine) run(src int, opt wsp.Options) {
	e.search.Run(src, opt)
	e.stats.Dijkstras++
}
