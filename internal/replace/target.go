package replace

import (
	"sort"

	"repro/internal/path"
	"repro/internal/wsp"
)

// TargetResult is everything Cons2FTBFS computes for one target vertex v:
// the canonical path π(s,v), the Step-1 detours, the chosen edge set H(v),
// and (optionally) a record per replacement path for structural analysis.
type TargetResult struct {
	V  int
	Pi path.Path
	// PiEdgeIDs[i] is the ID of the edge between π positions i and i+1.
	PiEdgeIDs []int
	// Detours[i] is the detour of the Step-1 path for edge i of π.
	Detours []Detour
	// HEdges is H(v): the IDs of the edges incident to v kept by the
	// algorithm (tree edges of v plus all last edges from Steps 1–3).
	HEdges []int
	// NewEdges is H(v) minus E(v, T0): the "new" edges charged to v in
	// the size analysis.
	NewEdges []int
	// E1Count, E2Count are |E1(π)\T0| and |E2(π)\(E1∪T0)| (Obs. 3.17,
	// Lemma 3.18). NewEndingPiD counts Step-3 new-ending paths.
	E1Count, E2Count, NewEndingPiD int
	// Records holds one entry per replacement path considered, in
	// processing order, when collection is enabled.
	Records []Record
}

// BuildTarget runs Steps 1–3 of Cons2FTBFS for target v. When collect is
// true, every replacement path is retained in Records (memory-heavy; meant
// for analysis and tests). It returns nil when v is the source or v is
// unreachable from the source.
func (e *Engine) BuildTarget(v int, collect bool) *TargetResult {
	if v == e.s || e.treeDist[v] < 0 {
		return nil
	}
	tr := &TargetResult{V: v, Pi: e.PiTo(v)}
	l := tr.Pi.Len()
	tr.PiEdgeIDs = make([]int, l)
	for i := 0; i < l; i++ {
		id, ok := e.g.EdgeID(tr.Pi[i], tr.Pi[i+1])
		if !ok {
			return nil // cannot happen: π edges exist
		}
		tr.PiEdgeIDs[i] = id
	}
	e.stampPi(tr)

	// H(v) starts from E(v, T0).
	inH := make(map[int]bool)
	for _, id := range e.TreeEdgesAt(v) {
		inH[id] = true
	}

	e.step1(tr, inH, collect)
	e.step2(tr, inH, collect)
	e.step3(tr, inH, collect)

	tr.HEdges = make([]int, 0, len(inH))
	for id := range inH {
		tr.HEdges = append(tr.HEdges, id)
	}
	sort.Ints(tr.HEdges)
	tree := make(map[int]bool)
	for _, id := range e.TreeEdgesAt(v) {
		tree[id] = true
	}
	for _, id := range tr.HEdges {
		if !tree[id] {
			tr.NewEdges = append(tr.NewEdges, id)
		}
	}
	return tr
}

// BuildTargetSingle runs only Step 1 for target v, producing the
// single-failure structure of [10] (baseline in the experiments). It returns
// nil when v is the source or unreachable.
func (e *Engine) BuildTargetSingle(v int, collect bool) *TargetResult {
	if v == e.s || e.treeDist[v] < 0 {
		return nil
	}
	tr := &TargetResult{V: v, Pi: e.PiTo(v)}
	l := tr.Pi.Len()
	tr.PiEdgeIDs = make([]int, l)
	for i := 0; i < l; i++ {
		id, ok := e.g.EdgeID(tr.Pi[i], tr.Pi[i+1])
		if !ok {
			return nil
		}
		tr.PiEdgeIDs[i] = id
	}
	e.stampPi(tr)
	inH := make(map[int]bool)
	for _, id := range e.TreeEdgesAt(v) {
		inH[id] = true
	}
	e.step1(tr, inH, collect)
	tr.HEdges = make([]int, 0, len(inH))
	for id := range inH {
		tr.HEdges = append(tr.HEdges, id)
	}
	sort.Ints(tr.HEdges)
	tree := make(map[int]bool)
	for _, id := range e.TreeEdgesAt(v) {
		tree[id] = true
	}
	for _, id := range tr.HEdges {
		if !tree[id] {
			tr.NewEdges = append(tr.NewEdges, id)
		}
	}
	return tr
}

// stampPi refreshes the vertex→π-position index for this target.
func (e *Engine) stampPi(tr *TargetResult) {
	stamp := tr.V + 1
	for i, u := range tr.Pi {
		e.onPi[u] = int32(i)
		e.piStamp[u] = stamp
	}
	e.curPiStamp = stamp
}

// piPos returns the position of u on the current π, or -1.
func (e *Engine) piPos(u int) int {
	if e.piStamp[u] == e.curPiStamp {
		return int(e.onPi[u])
	}
	return -1
}

// ---------------------------------------------------------------------------
// Step 1: single-fault replacement paths with earliest π-divergence.
// ---------------------------------------------------------------------------

func (e *Engine) step1(tr *TargetResult, inH map[int]bool, collect bool) {
	l := tr.Pi.Len()
	tr.Detours = make([]Detour, l)
	for i := 0; i < l; i++ {
		rec := e.singleFault(tr, i)
		if rec.Path != nil {
			tr.Detours[i] = e.extractDetour(tr, rec.Path)
			if !inH[rec.LastEdgeID] {
				rec.NewEnding = true
				inH[rec.LastEdgeID] = true
				tr.E1Count++
			}
		}
		if collect {
			if !collectPaths {
				rec.Path = nil
			}
			tr.Records = append(tr.Records, rec)
		}
	}
}

// collectPaths controls whether Records keep full paths; always true today,
// named for readability at the call sites above.
const collectPaths = true

// singleFault computes P(s,v,{e_i}) with the earliest-divergence rule.
func (e *Engine) singleFault(tr *TargetResult, i int) Record {
	rec := Record{
		Kind:       KindSingle,
		EIdx:       i,
		SecondIdx:  -1,
		FaultIDs:   []int{tr.PiEdgeIDs[i]},
		LastEdgeID: -1,
		BPos:       -1,
		CPos:       -1,
	}
	v := tr.V
	eid := tr.PiEdgeIDs[i]
	e.run(e.s, wsp.Options{Target: v, DisabledEdges: []int{eid}})
	d := e.search.HopDist(v)
	if d < 0 {
		rec.Unreachable = true
		return rec
	}
	// Binary search the minimal k in [0, i] such that the restricted graph
	// G(u_k, u_i) \ {e_i} still realizes distance d. The predicate is
	// monotone because larger k disables fewer π vertices.
	pred := func(k int) bool {
		e.disabledV = e.disabledV[:0]
		for j := k + 1; j <= i; j++ {
			e.disabledV = append(e.disabledV, tr.Pi[j])
		}
		e.run(e.s, wsp.Options{Target: v, DisabledEdges: []int{eid}, DisabledVertices: e.disabledV})
		return e.search.HopDist(v) == d
	}
	lo, hi := 0, i // pred(i) is true: G(u_i,u_i) = G
	for lo < hi {
		mid := (lo + hi) / 2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Re-run at the chosen k to materialize the path.
	if !pred(lo) {
		// Only possible under residual ties; fall back to the canonical path.
		e.stats.Fallbacks++
		rec.UsedFallback = true
		e.run(e.s, wsp.Options{Target: v, DisabledEdges: []int{eid}})
	}
	p := e.search.PathTo(v)
	rec.Path = p
	if le, ok := p.LastEdge(); ok {
		if id, ok := e.g.EdgeID(le.U, le.V); ok {
			rec.LastEdgeID = id
		}
	}
	rec.BPos = p.FirstDivergence(tr.Pi)
	return rec
}

// extractDetour pulls the detour segment out of a Step-1 path: the maximal
// segment between the first divergence from π and the first return to π.
func (e *Engine) extractDetour(tr *TargetResult, p path.Path) Detour {
	// First divergence position on p (p and π share a prefix).
	b := p.FirstDivergence(tr.Pi)
	if b < 0 || b == p.Len() {
		return Detour{} // follows π entirely (possible only under ties)
	}
	// First return to π strictly after b.
	y := -1
	for j := b + 1; j < len(p); j++ {
		if e.piPos(p[j]) >= 0 {
			y = j
			break
		}
	}
	if y < 0 {
		return Detour{}
	}
	seg := p.Sub(b, y).Clone()
	d := Detour{
		Valid:   true,
		Path:    seg,
		XPos:    e.piPos(p[b]),
		YPos:    e.piPos(p[y]),
		EdgeIDs: make([]int, 0, seg.Len()),
	}
	for k := 0; k+1 < len(seg); k++ {
		id, _ := e.g.EdgeID(seg[k], seg[k+1])
		d.EdgeIDs = append(d.EdgeIDs, id)
	}
	return d
}

// ---------------------------------------------------------------------------
// Step 2: (π,π) pairs.
// ---------------------------------------------------------------------------

func (e *Engine) step2(tr *TargetResult, inH map[int]bool, collect bool) {
	l := tr.Pi.Len()
	for i := 0; i < l; i++ {
		for j := i + 1; j < l; j++ {
			rec := e.piPiPair(tr, i, j)
			if rec.Path != nil {
				if !inH[rec.LastEdgeID] {
					rec.NewEnding = true
					inH[rec.LastEdgeID] = true
					tr.E2Count++
				}
			}
			if collect {
				tr.Records = append(tr.Records, rec)
			}
		}
	}
}

// piPiPair computes P(s,v,{e_i,e_j}) for two π edges, preferring the
// composition of the Step-1 detours when it is a valid shortest path.
func (e *Engine) piPiPair(tr *TargetResult, i, j int) Record {
	rec := Record{
		Kind:       KindPiPi,
		EIdx:       i,
		SecondIdx:  j,
		FaultIDs:   []int{tr.PiEdgeIDs[i], tr.PiEdgeIDs[j]},
		LastEdgeID: -1,
		BPos:       -1,
		CPos:       -1,
	}
	v := tr.V
	e.run(e.s, wsp.Options{Target: v, DisabledEdges: rec.FaultIDs})
	d := e.search.HopDist(v)
	if d < 0 {
		rec.Unreachable = true
		return rec
	}
	if p := e.composeDetours(tr, i, j, d, rec.FaultIDs); p != nil {
		rec.Path = p
	} else {
		// Canonical shortest path in G \ F (search state already holds it).
		rec.Path = e.search.PathTo(v)
	}
	if le, ok := rec.Path.LastEdge(); ok {
		if id, ok := e.g.EdgeID(le.U, le.V); ok {
			rec.LastEdgeID = id
		}
	}
	rec.BPos = rec.Path.FirstDivergence(tr.Pi)
	return rec
}

// composeDetours builds the paper's preferred (π,π) candidate
// π(s,x_i) ∘ D_i[x_i,w] ∘ D_j[w,y_j] ∘ π(y_j,v), where w is the last vertex
// on D_j common to D_i, and returns it only when it is a valid simple
// shortest path avoiding both faults.
func (e *Engine) composeDetours(tr *TargetResult, i, j int, d int32, faults []int) path.Path {
	di, dj := &tr.Detours[i], &tr.Detours[j]
	if !di.Valid || !dj.Valid {
		return nil
	}
	onDi := make(map[int]int, len(di.Path))
	for pos, u := range di.Path {
		onDi[u] = pos
	}
	w, wOnDi, wOnDj := -1, -1, -1
	for pos, u := range dj.Path {
		if pi, ok := onDi[u]; ok {
			w, wOnDi, wOnDj = u, pi, pos
		}
	}
	if w < 0 {
		return nil
	}
	prefix := tr.Pi.Sub(0, di.XPos)
	mid1 := di.Path.Sub(0, wOnDi)
	mid2 := dj.Path.Sub(wOnDj, len(dj.Path)-1)
	suffix := tr.Pi.Sub(dj.YPos, len(tr.Pi)-1)
	p := prefix.Concat(mid1)
	if p == nil {
		return nil
	}
	p = p.Concat(mid2)
	if p == nil {
		return nil
	}
	p = p.Concat(suffix)
	if p == nil {
		return nil
	}
	if int32(p.Len()) != d || !p.IsSimple() {
		return nil
	}
	if p.ContainsAnyEdgeID(e.g, faults) {
		return nil
	}
	return p
}

// ---------------------------------------------------------------------------
// Step 3: (π,D) pairs in decreasing fault order.
// ---------------------------------------------------------------------------

// piDFault identifies one (e_i, t_j) pair: π edge index and detour position.
type piDFault struct {
	eIdx int // index of e_i on π
	tIdx int // index of t_j on the detour D_i (edge between detour positions tIdx, tIdx+1)
}

func (e *Engine) step3(tr *TargetResult, inH map[int]bool, collect bool) {
	// Enumerate F_v(D) and sort it in the paper's decreasing order:
	// deeper e_i first; within one e_i, deeper t_j first.
	var faults []piDFault
	for i := range tr.Detours {
		if !tr.Detours[i].Valid {
			continue
		}
		for t := range tr.Detours[i].EdgeIDs {
			faults = append(faults, piDFault{eIdx: i, tIdx: t})
		}
	}
	sort.Slice(faults, func(a, b int) bool {
		if faults[a].eIdx != faults[b].eIdx {
			return faults[a].eIdx > faults[b].eIdx
		}
		return faults[a].tIdx > faults[b].tIdx
	})

	for _, f := range faults {
		rec := e.piDPair(tr, f, inH)
		if rec.NewEnding {
			inH[rec.LastEdgeID] = true
			tr.NewEndingPiD++
		}
		if collect {
			tr.Records = append(tr.Records, rec)
		}
	}
}

// disabledNonHEdges fills e.disabledE with the edges incident to v that are
// NOT in the current structure (realizing the graph G_τ(v)).
func (e *Engine) disabledNonHEdges(v int, inH map[int]bool, extra []int) []int {
	e.disabledE = e.disabledE[:0]
	for _, a := range e.g.Arcs(v) {
		if !inH[int(a.ID)] {
			e.disabledE = append(e.disabledE, int(a.ID))
		}
	}
	e.disabledE = append(e.disabledE, extra...)
	return e.disabledE
}

// piDPair processes one (π,D) fault pair at its turn τ.
func (e *Engine) piDPair(tr *TargetResult, f piDFault, inH map[int]bool) Record {
	det := &tr.Detours[f.eIdx]
	rec := Record{
		Kind:       KindPiD,
		EIdx:       f.eIdx,
		SecondIdx:  f.tIdx,
		FaultIDs:   []int{tr.PiEdgeIDs[f.eIdx], det.EdgeIDs[f.tIdx]},
		LastEdgeID: -1,
		BPos:       -1,
		CPos:       -1,
	}
	v := tr.V
	e.run(e.s, wsp.Options{Target: v, DisabledEdges: rec.FaultIDs})
	d := e.search.HopDist(v)
	if d < 0 {
		rec.Unreachable = true
		return rec
	}
	// Satisfied by the current structure G_{τ-1}(v)?
	masks := e.disabledNonHEdges(v, inH, rec.FaultIDs)
	e.run(e.s, wsp.Options{Target: v, DisabledEdges: masks})
	if e.search.HopDist(v) == d {
		rec.Path = e.search.PathTo(v)
		if le, ok := rec.Path.LastEdge(); ok {
			if id, ok := e.g.EdgeID(le.U, le.V); ok {
				rec.LastEdgeID = id
			}
		}
		rec.BPos = rec.Path.FirstDivergence(tr.Pi)
		rec.CPos = e.detourDivergence(det, rec.Path)
		return rec
	}
	// New-ending: select the path with the highest π-divergence point.
	p := e.newEndingPiD(tr, f, d, rec.FaultIDs, &rec)
	rec.Path = p
	rec.NewEnding = true
	if le, ok := p.LastEdge(); ok {
		if id, ok := e.g.EdgeID(le.U, le.V); ok {
			rec.LastEdgeID = id
		}
	}
	rec.BPos = p.FirstDivergence(tr.Pi)
	rec.CPos = e.detourDivergence(det, p)
	return rec
}

// newEndingPiD realizes the Step-3 selection: binary-search the topmost
// divergence point u_k from π; if the selected path diverges at the detour's
// own start x_τ, further binary-search the earliest divergence point w_ℓ
// from the detour (Eq. 4) and route the path through the detour prefix.
func (e *Engine) newEndingPiD(tr *TargetResult, f piDFault, d int32, faults []int, rec *Record) path.Path {
	v := tr.V
	det := &tr.Detours[f.eIdx]
	l := len(tr.Pi) - 1 // position of v on π

	// G(u_k, v): disable π interior strictly between u_k and v.
	pred := func(k int) bool {
		e.disabledV = e.disabledV[:0]
		for j := k + 1; j < l; j++ {
			e.disabledV = append(e.disabledV, tr.Pi[j])
		}
		e.run(e.s, wsp.Options{Target: v, DisabledEdges: faults, DisabledVertices: e.disabledV})
		return e.search.HopDist(v) == d
	}
	lo, hi := 0, f.eIdx
	for lo < hi {
		mid := (lo + hi) / 2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if !pred(lo) {
		// No divergence point above e_i realizes the distance — residual
		// tie artifact. Canonical fallback keeps the structure correct.
		e.stats.Fallbacks++
		rec.UsedFallback = true
		e.run(e.s, wsp.Options{Target: v, DisabledEdges: faults})
		return e.search.PathTo(v)
	}
	p := e.search.PathTo(v) // canonical path in G(u_lo, v) \ F
	bPos := p.FirstDivergence(tr.Pi)
	if bPos < 0 || tr.Pi[bPos] != det.X() {
		return p
	}

	// b == x_τ: enforce the earliest divergence from the detour.
	// GD(w_ℓ) additionally disables detour vertices strictly after w_ℓ.
	xPos := det.XPos
	maskD := func(ell int) {
		e.disabledV = e.disabledV[:0]
		for j := xPos + 1; j < l; j++ {
			e.disabledV = append(e.disabledV, tr.Pi[j])
		}
		for j := ell + 1; j < len(det.Path); j++ {
			if det.Path[j] != v {
				e.disabledV = append(e.disabledV, det.Path[j])
			}
		}
	}
	predD := func(ell int) bool {
		maskD(ell)
		e.run(e.s, wsp.Options{Target: v, DisabledEdges: faults, DisabledVertices: e.disabledV})
		return e.search.HopDist(v) == d
	}
	lo2, hi2 := 0, f.tIdx
	for lo2 < hi2 {
		mid := (lo2 + hi2) / 2
		if predD(mid) {
			hi2 = mid
		} else {
			lo2 = mid + 1
		}
	}
	if !predD(lo2) {
		// The divergence from π at x_τ is realizable but no detour prefix
		// works (tie artifact); fall back to the G(u_k,v) path.
		e.stats.Fallbacks++
		rec.UsedFallback = true
		pred(lo)
		return e.search.PathTo(v)
	}
	// Compose π(s,x_τ) ∘ D_τ[x_τ,w_ℓ] ∘ SP(w_ℓ, v, GD(w_ℓ) \ F, W) as the
	// paper prescribes, falling back to the canonical GD(w_ℓ) path when
	// the composition is not a valid shortest path (tie artifact).
	maskD(lo2)
	e.run(det.Path[lo2], wsp.Options{Target: v, DisabledEdges: faults, DisabledVertices: e.disabledV})
	tail := e.search.PathTo(v)
	if tail != nil {
		composed := tr.Pi.Sub(0, xPos).Concat(det.Path.Sub(0, lo2))
		if composed != nil {
			composed = composed.Concat(tail)
		}
		if composed != nil && int32(composed.Len()) == d && composed.IsSimple() &&
			!composed.ContainsAnyEdgeID(e.g, faults) {
			return composed
		}
	}
	predD(lo2)
	return e.search.PathTo(v)
}

// detourDivergence returns the position on the detour of the first
// divergence point of p from the detour, when p actually follows the detour
// from its start; -1 otherwise. This is the paper's c(P) for (π,D) paths
// that intersect their detour.
func (e *Engine) detourDivergence(det *Detour, p path.Path) int {
	if !det.Valid || p == nil {
		return -1
	}
	// Locate x = det.Path[0] on p.
	x := det.Path.First()
	xOnP := -1
	for i, u := range p {
		if u == x {
			xOnP = i
			break
		}
	}
	if xOnP < 0 {
		return -1
	}
	// Walk both in lockstep from x.
	i := 0
	for i+1 < len(det.Path) && xOnP+i+1 < len(p) && p[xOnP+i+1] == det.Path[i+1] {
		i++
	}
	if i == 0 {
		// p leaves the detour immediately at x: c = x only if p actually
		// shares the first detour edge; otherwise p does not follow D.
		return -1
	}
	return i
}
