package replace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/wsp"
)

func newEngine(t *testing.T, g *graph.Graph, s int, seed int64) *Engine {
	t.Helper()
	eng, err := NewEngine(g, wsp.NewAssignment(g.M(), seed), s)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewEngineErrors(t *testing.T) {
	g := gen.PathGraph(4)
	w := wsp.NewAssignment(g.M(), 1)
	if _, err := NewEngine(g, w, -1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := NewEngine(g, w, 4); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := NewEngine(g, wsp.NewAssignment(g.M()+1, 1), 0); err == nil {
		t.Fatal("mismatched assignment accepted")
	}
}

func TestTreeBasics(t *testing.T) {
	g := gen.Grid(3, 3)
	eng := newEngine(t, g, 0, 1)
	if eng.Source() != 0 || eng.Graph() != g {
		t.Fatal("accessors wrong")
	}
	if eng.TreeDist(8) != 4 {
		t.Fatalf("TreeDist(8) = %d", eng.TreeDist(8))
	}
	if got := len(eng.TreeEdges()); got != 8 {
		t.Fatalf("tree edge count = %d, want n-1", got)
	}
	pi := eng.PiTo(8)
	if pi.Len() != 4 || pi.First() != 0 || pi.Last() != 8 || !pi.ValidIn(g) {
		t.Fatalf("PiTo(8) = %v", pi)
	}
	// E(v,T0) contains the parent edge of every non-root vertex.
	for v := 1; v < g.N(); v++ {
		ids := eng.TreeEdgesAt(v)
		if len(ids) == 0 {
			t.Fatalf("TreeEdgesAt(%d) empty", v)
		}
	}
}

func TestBuildTargetNilCases(t *testing.T) {
	gb := graph.NewBuilder(4)
	gb.MustAddEdge(0, 1)
	gb.MustAddEdge(2, 3)
	g := gb.Freeze()
	eng := newEngine(t, g, 0, 1)
	if eng.BuildTarget(0, false) != nil {
		t.Fatal("source target should be nil")
	}
	if eng.BuildTarget(2, false) != nil {
		t.Fatal("unreachable target should be nil")
	}
	if eng.BuildTargetSingle(0, false) != nil || eng.BuildTargetSingle(3, false) != nil {
		t.Fatal("single-step nil cases wrong")
	}
}

// TestSingleFaultPathsAreOptimal checks Lemma 3.1 for Step 1: every chosen
// replacement path is a shortest path of G \ {e_i} and avoids the fault.
func TestSingleFaultPathsAreOptimal(t *testing.T) {
	g := gen.GNP(24, 0.2, 5)
	eng := newEngine(t, g, 0, 9)
	r := bfs.NewRunner(g)
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			t.Fatalf("nil target %d", v)
		}
		for _, rec := range tr.Records {
			if rec.Kind != KindSingle {
				continue
			}
			r.Run(0, rec.FaultIDs, nil)
			if rec.Unreachable {
				if r.Dist(v) != bfs.Unreachable {
					t.Fatalf("v=%d e=%d: marked unreachable but dist=%d", v, rec.EIdx, r.Dist(v))
				}
				continue
			}
			if int32(rec.Path.Len()) != r.Dist(v) {
				t.Fatalf("v=%d e=%d: len=%d want %d", v, rec.EIdx, rec.Path.Len(), r.Dist(v))
			}
			if rec.Path.ContainsAnyEdgeID(g, rec.FaultIDs) {
				t.Fatalf("v=%d e=%d: path traverses its fault", v, rec.EIdx)
			}
			if !rec.Path.ValidIn(g) || !rec.Path.IsSimple() {
				t.Fatalf("v=%d e=%d: invalid path %v", v, rec.EIdx, rec.Path)
			}
		}
	}
}

// TestDetourShape checks Claim 3.4: every Step-1 path decomposes as
// π(s,x) ∘ D ∘ π(y,v) with the detour interior disjoint from π and the
// failing edge inside π(x,y).
func TestDetourShape(t *testing.T) {
	g := gen.GNP(26, 0.18, 13)
	eng := newEngine(t, g, 0, 3)
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			continue
		}
		piPos := tr.Pi.Pos()
		for i, det := range tr.Detours {
			if !det.Valid {
				continue
			}
			if det.XPos >= det.YPos {
				t.Fatalf("v=%d i=%d: XPos=%d YPos=%d", v, i, det.XPos, det.YPos)
			}
			// Fault inside π(x,y).
			if !(det.XPos <= i && i < det.YPos) {
				t.Fatalf("v=%d: fault %d outside detour span [%d,%d)", v, i, det.XPos, det.YPos)
			}
			// Interior disjoint from π.
			for j := 1; j+1 < len(det.Path); j++ {
				if _, on := piPos[det.Path[j]]; on {
					t.Fatalf("v=%d i=%d: detour interior vertex %d on π", v, i, det.Path[j])
				}
			}
			// Endpoints on π at the declared positions.
			if piPos[det.X()] != det.XPos || piPos[det.Y()] != det.YPos {
				t.Fatalf("v=%d i=%d: endpoint positions inconsistent", v, i)
			}
			// Edge IDs consistent with the path.
			if len(det.EdgeIDs) != det.Path.Len() {
				t.Fatalf("v=%d i=%d: edge id count %d != len %d", v, i, len(det.EdgeIDs), det.Path.Len())
			}
		}
	}
}

// TestDualFaultPathsAreOptimal checks that every Step-2/Step-3 path is a
// shortest path of G \ F avoiding F.
func TestDualFaultPathsAreOptimal(t *testing.T) {
	g := gen.GNP(20, 0.22, 21)
	eng := newEngine(t, g, 0, 17)
	r := bfs.NewRunner(g)
	records := 0
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			continue
		}
		for _, rec := range tr.Records {
			if rec.Kind == KindSingle {
				continue
			}
			records++
			r.Run(0, rec.FaultIDs, nil)
			if rec.Unreachable {
				if r.Dist(v) != bfs.Unreachable {
					t.Fatalf("v=%d %v: marked unreachable, dist=%d", v, rec.FaultIDs, r.Dist(v))
				}
				continue
			}
			if rec.Path == nil {
				t.Fatalf("v=%d %v: reachable but no path", v, rec.FaultIDs)
			}
			if int32(rec.Path.Len()) != r.Dist(v) {
				t.Fatalf("v=%d F=%v kind=%v: len=%d want %d", v, rec.FaultIDs, rec.Kind, rec.Path.Len(), r.Dist(v))
			}
			if rec.Path.ContainsAnyEdgeID(g, rec.FaultIDs) {
				t.Fatalf("v=%d F=%v: path traverses fault", v, rec.FaultIDs)
			}
			if !rec.Path.ValidIn(g) {
				t.Fatalf("v=%d F=%v: invalid path", v, rec.FaultIDs)
			}
		}
	}
	if records == 0 {
		t.Fatal("no dual-fault records exercised")
	}
}

// TestNewEndingDivergenceUnique checks Claim 3.5 for Step-3 new-ending
// paths: the suffix from the π-divergence point never returns to π before v.
func TestNewEndingDivergenceUnique(t *testing.T) {
	g := gen.GNP(24, 0.18, 33)
	eng := newEngine(t, g, 0, 29)
	newEnding := 0
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			continue
		}
		piPos := tr.Pi.Pos()
		for _, rec := range tr.Records {
			if rec.Kind != KindPiD || !rec.NewEnding || rec.UsedFallback || rec.Path == nil {
				continue
			}
			newEnding++
			if rec.BPos < 0 {
				t.Fatalf("v=%d: new-ending path without divergence", v)
			}
			// After position BPos on the path, no π vertex until v.
			for j := rec.BPos + 1; j+1 < len(rec.Path); j++ {
				if _, on := piPos[rec.Path[j]]; on {
					t.Fatalf("v=%d F=%v: new-ending path returns to π at %d (pos %d, b=%d): %v | pi=%v",
						v, rec.FaultIDs, rec.Path[j], j, rec.BPos, rec.Path, tr.Pi)
				}
			}
			// Its last edge must not be a tree edge of T0 incident to v.
			if rec.LastEdgeID < 0 {
				t.Fatalf("v=%d: new-ending path without last edge", v)
			}
		}
	}
	if newEnding == 0 {
		t.Skip("no new-ending paths on this instance")
	}
}

// TestStep3OrderDecreasing checks the (e,t)-processing order of Step 3.
func TestStep3OrderDecreasing(t *testing.T) {
	g := gen.GNP(22, 0.2, 41)
	eng := newEngine(t, g, 0, 43)
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			continue
		}
		lastE, lastT := 1<<30, 1<<30
		for _, rec := range tr.Records {
			if rec.Kind != KindPiD {
				continue
			}
			if rec.EIdx > lastE || (rec.EIdx == lastE && rec.SecondIdx >= lastT) {
				t.Fatalf("v=%d: order violated: (%d,%d) after (%d,%d)", v, rec.EIdx, rec.SecondIdx, lastE, lastT)
			}
			lastE, lastT = rec.EIdx, rec.SecondIdx
		}
	}
}

// TestHEdgesIncidentToTarget checks that H(v) only contains edges touching v
// plus that NewEdges excludes tree edges.
func TestHEdgesIncidentToTarget(t *testing.T) {
	g := gen.GNP(20, 0.25, 3)
	eng := newEngine(t, g, 0, 11)
	for v := 1; v < g.N(); v++ {
		tr := eng.BuildTarget(v, true)
		if tr == nil {
			continue
		}
		for _, id := range tr.HEdges {
			e := g.EdgeAt(id)
			if e.U != v && e.V != v {
				t.Fatalf("v=%d: H(v) edge %v not incident to v", v, e)
			}
		}
		tree := make(map[int]bool)
		for _, id := range eng.TreeEdgesAt(v) {
			tree[id] = true
		}
		for _, id := range tr.NewEdges {
			if tree[id] {
				t.Fatalf("v=%d: NewEdges contains tree edge %d", v, id)
			}
		}
	}
}

// Property: on random sparse graphs, replacement paths from random engines
// always realize the true fault-restricted distances (Step 1–3 combined).
func TestQuickReplacementOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(16)
		g := gen.SparseGNP(n, 3, seed)
		eng, err := NewEngine(g, wsp.NewAssignment(g.M(), seed+1), 0)
		if err != nil {
			return false
		}
		r := bfs.NewRunner(g)
		for v := 1; v < n; v++ {
			tr := eng.BuildTarget(v, true)
			if tr == nil {
				return false
			}
			for _, rec := range tr.Records {
				r.Run(0, rec.FaultIDs, nil)
				want := r.Dist(v)
				if rec.Unreachable {
					if want != bfs.Unreachable {
						return false
					}
					continue
				}
				if rec.Path == nil || int32(rec.Path.Len()) != want {
					return false
				}
				if rec.Path.ContainsAnyEdgeID(g, rec.FaultIDs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindSingle.String() != "single" || KindPiPi.String() != "(pi,pi)" || KindPiD.String() != "(pi,D)" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}
