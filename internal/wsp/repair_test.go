package wsp

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// checkRepairMatchesScratch compares every accessor of a RepairSearch
// against a from-scratch Search after identical runs. For full runs
// (target < 0) all vertices must agree bit-for-bit; for Target runs only
// the contract set (target + its path) is compared.
func checkRepairMatchesScratch(t *testing.T, rep *RepairSearch, ref *Search, target int, tag string) {
	t.Helper()
	g := rep.Graph()
	check := func(v int) {
		t.Helper()
		if rep.Reachable(v) != ref.Reachable(v) {
			t.Fatalf("%s: Reachable(%d) = %v repair vs %v scratch", tag, v, rep.Reachable(v), ref.Reachable(v))
		}
		if rep.HopDist(v) != ref.HopDist(v) {
			t.Fatalf("%s: HopDist(%d) = %d repair vs %d scratch", tag, v, rep.HopDist(v), ref.HopDist(v))
		}
		dw, dok := rep.Dist(v)
		sw, sok := ref.Dist(v)
		if dw != sw || dok != sok {
			t.Fatalf("%s: Dist(%d) = (%v,%v) repair vs (%v,%v) scratch", tag, v, dw, dok, sw, sok)
		}
		if rep.ParentOf(v) != ref.ParentOf(v) {
			t.Fatalf("%s: ParentOf(%d) = %d repair vs %d scratch", tag, v, rep.ParentOf(v), ref.ParentOf(v))
		}
		if rep.ParentEdgeOf(v) != ref.ParentEdgeOf(v) {
			t.Fatalf("%s: ParentEdgeOf(%d) = %d repair vs %d scratch", tag, v, rep.ParentEdgeOf(v), ref.ParentEdgeOf(v))
		}
		re, rok := rep.LastEdgeTo(v)
		se, sok2 := ref.LastEdgeTo(v)
		if re != se || rok != sok2 {
			t.Fatalf("%s: LastEdgeTo(%d) = (%v,%v) repair vs (%v,%v) scratch", tag, v, re, rok, se, sok2)
		}
		rp, sp := rep.PathTo(v), ref.PathTo(v)
		if len(rp) != len(sp) {
			t.Fatalf("%s: PathTo(%d) has %d vs %d vertices", tag, v, len(rp), len(sp))
		}
		for i := range rp {
			if rp[i] != sp[i] {
				t.Fatalf("%s: PathTo(%d) differs at %d: %v vs %v", tag, v, i, rp, sp)
			}
		}
	}
	if target >= 0 {
		check(target)
		for _, u := range ref.PathTo(target) {
			check(u)
		}
		return
	}
	for v := 0; v < g.N(); v++ {
		check(v)
	}
}

// TestRepairSearchEquivalence drives a RepairSearch and a from-scratch
// Search through identical fault sequences over random graphs and demands
// bit-identical answers: the repair kernel must be observationally
// indistinguishable, including parent tie-breaks, so golden structure
// fingerprints cannot move.
func TestRepairSearchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := gen.SparseGNP(220, 5, seed)
		w := NewAssignment(g.M(), seed*101)
		src := int(seed) % g.N()
		rep := NewRepairSearch(g, w, src)
		ref := NewSearch(g, w)
		// Construction state must equal a fault-free run.
		ref.Run(src, Options{Target: -1})
		checkRepairMatchesScratch(t, rep, ref, -1, "base")
		rng := rand.New(rand.NewSource(seed * 7))
		for trial := 0; trial < 60; trial++ {
			opt := Options{Target: -1}
			for k := rng.Intn(4); k > 0; k-- {
				opt.DisabledEdges = append(opt.DisabledEdges, rng.Intn(g.M()))
			}
			if rng.Intn(3) == 0 {
				v := rng.Intn(g.N())
				if v != src {
					opt.DisabledVertices = append(opt.DisabledVertices, v)
				}
			}
			if rng.Intn(4) == 0 {
				opt.Target = rng.Intn(g.N())
			}
			rep.Run(src, opt)
			ref.Run(src, opt)
			checkRepairMatchesScratch(t, rep, ref, opt.Target, "trial")
		}
	}
}

// TestRepairSearchFaultClasses pins the classification boundaries one at a
// time: non-tree faults (exact no-op), a leaf subtree, a deep subtree
// (fault on the source's own tree edge), disconnecting faults, a disabled
// source, and a foreign source (scratch delegation).
func TestRepairSearchFaultClasses(t *testing.T) {
	g := gen.TreePlusChords(150, 40, 9)
	w := NewAssignment(g.M(), 77)
	src := 0
	rep := NewRepairSearch(g, w, src)
	ref := NewSearch(g, w)

	var treeEdges, nonTree []int
	for id := 0; id < g.M(); id++ {
		e := g.EdgeAt(id)
		if rep.ParentEdgeOf(e.U) == id || rep.ParentEdgeOf(e.V) == id {
			treeEdges = append(treeEdges, id)
		} else {
			nonTree = append(nonTree, id)
		}
	}
	if len(treeEdges) == 0 || len(nonTree) == 0 {
		t.Fatalf("degenerate instance: %d tree edges, %d non-tree", len(treeEdges), len(nonTree))
	}
	cases := []Options{
		{Target: -1, DisabledEdges: nonTree[:min(3, len(nonTree))]}, // pure no-op
		{Target: -1, DisabledEdges: treeEdges[len(treeEdges)-1:]},   // leaf-ish subtree
		{Target: -1, DisabledEdges: treeEdges[:1]},                  // subtree at the root
		{Target: -1, DisabledEdges: []int{treeEdges[0], treeEdges[len(treeEdges)/2], nonTree[0]}},
		{Target: -1, DisabledVertices: []int{g.N() - 1}},
		{Target: -1, DisabledVertices: []int{src}}, // everything unreachable
	}
	for i, opt := range cases {
		rep.Run(src, opt)
		ref.Run(src, opt)
		checkRepairMatchesScratch(t, rep, ref, -1, "class")
		_ = i
	}
	// Foreign source delegates to scratch and stays correct.
	other := g.N() / 2
	opt := Options{Target: -1, DisabledEdges: treeEdges[:2]}
	rep.Run(other, opt)
	ref.Run(other, opt)
	checkRepairMatchesScratch(t, rep, ref, -1, "foreign-src")
	// And the repair path still works after the excursion.
	opt = Options{Target: -1, DisabledEdges: treeEdges[:2]}
	rep.Run(src, opt)
	ref.Run(src, opt)
	checkRepairMatchesScratch(t, rep, ref, -1, "home-src")
}

// TestRepairSearchVolumeFallback forces the volume cap and checks the
// fallback is transparent (and recoverable on the next small repair).
func TestRepairSearchVolumeFallback(t *testing.T) {
	g := gen.SparseGNP(200, 5, 3)
	w := NewAssignment(g.M(), 5)
	rep := NewRepairSearch(g, w, 0)
	ref := NewSearch(g, w)
	rep.volLimit = 1 // every non-empty detach falls back
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		opt := Options{Target: -1, DisabledEdges: []int{rng.Intn(g.M()), rng.Intn(g.M())}}
		rep.Run(0, opt)
		ref.Run(0, opt)
		checkRepairMatchesScratch(t, rep, ref, -1, "capped")
		if _, ok := rep.Changed(); ok {
			// A fault set of only non-tree edges legitimately repairs
			// in-place even with the cap (empty region); anything else
			// must have delegated.
			if len(rep.region) != 0 {
				t.Fatalf("trial %d: non-empty region survived volLimit=1", trial)
			}
		}
	}
	rep.volLimit = g.M()
	opt := Options{Target: -1, DisabledEdges: []int{0}}
	rep.Run(0, opt)
	ref.Run(0, opt)
	checkRepairMatchesScratch(t, rep, ref, -1, "recovered")
}

// TestRepairSearchDisable pins the NoRepair escape hatch: a disabled
// repair engine must behave exactly like a Search.
func TestRepairSearchDisable(t *testing.T) {
	g := gen.SparseGNP(120, 5, 2)
	w := NewAssignment(g.M(), 9)
	rep := NewRepairSearch(g, w, 0)
	rep.DisableRepair()
	ref := NewSearch(g, w)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		opt := Options{Target: -1, DisabledEdges: []int{rng.Intn(g.M())}}
		rep.Run(0, opt)
		ref.Run(0, opt)
		checkRepairMatchesScratch(t, rep, ref, -1, "disabled")
		if _, ok := rep.Changed(); ok {
			t.Fatal("disabled repair reported an incremental run")
		}
	}
}
