package wsp

import (
	"repro/internal/graph"
	"repro/internal/path"
)

// Options restricts a search to a subgraph and optionally stops it early.
type Options struct {
	// Target, when ≥ 0, lets the search stop as soon as the target is
	// settled. Distances of vertices settled before the target remain
	// valid; others are reported unreachable.
	Target int
	// DisabledVertices are excluded from the search (their incident edges
	// become unusable). Disabling the source yields an all-unreachable
	// result.
	DisabledVertices []int
	// DisabledEdges are excluded from the search.
	DisabledEdges []int
}

// Search runs Dijkstra under a fixed weight assignment with per-run
// vertex/edge masks. It is a reusable scratch object: results of a Run are
// valid until the next Run. A Search is not safe for concurrent use; create
// one per goroutine.
type Search struct {
	g *graph.Graph
	w *Assignment

	distHops []int32
	distTie  []int64
	parent   []int32
	parentE  []int32
	seen     []uint32 // epoch when dist first set
	done     []uint32 // epoch when settled
	vOff     []uint32 // epoch when vertex disabled
	eOff     []uint32 // epoch when edge disabled
	epoch    uint32

	heap heapSlice

	// TieWarnings counts relaxations that found two distinct equal-weight
	// paths to a vertex — evidence that the weight assignment failed to
	// isolate a unique shortest path. It accumulates across runs.
	TieWarnings int
}

type heapItem struct {
	hops int32
	tie  int64
	v    int32
}

type heapSlice []heapItem

func (h heapSlice) less(i, j int) bool {
	if h[i].hops != h[j].hops {
		return h[i].hops < h[j].hops
	}
	if h[i].tie != h[j].tie {
		return h[i].tie < h[j].tie
	}
	return h[i].v < h[j].v
}

func (h *heapSlice) push(it heapItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *heapSlice) pop() heapItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s.less(l, m) {
			m = l
		}
		if r < len(s) && s.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// NewSearch returns a search scratch bound to g and the assignment w.
// The assignment must cover g's edges.
func NewSearch(g *graph.Graph, w *Assignment) *Search {
	n, m := g.N(), g.M()
	return &Search{
		g:        g,
		w:        w,
		distHops: make([]int32, n),
		distTie:  make([]int64, n),
		parent:   make([]int32, n),
		parentE:  make([]int32, n),
		seen:     make([]uint32, n),
		done:     make([]uint32, n),
		vOff:     make([]uint32, n),
		eOff:     make([]uint32, m),
		heap:     make(heapSlice, 0, n),
	}
}

// Graph returns the graph the search is bound to.
func (s *Search) Graph() *graph.Graph { return s.g }

// Run executes Dijkstra from src under the given restrictions.
func (s *Search) Run(src int, opt Options) {
	s.epoch++
	if s.epoch == 0 { // wrapped; reset stamps
		for i := range s.seen {
			s.seen[i], s.done[i], s.vOff[i] = 0, 0, 0
		}
		for i := range s.eOff {
			s.eOff[i] = 0
		}
		s.epoch = 1
	}
	ep := s.epoch
	for _, v := range opt.DisabledVertices {
		s.vOff[v] = ep
	}
	for _, e := range opt.DisabledEdges {
		s.eOff[e] = ep
	}
	s.heap = s.heap[:0]
	if s.vOff[src] == ep {
		return
	}
	s.distHops[src], s.distTie[src] = 0, 0
	s.parent[src], s.parentE[src] = -1, -1
	s.seen[src] = ep
	// Hoist the hot per-vertex arrays out of s so the relaxation loop works
	// on locals instead of re-loading fields around every heap call.
	distHops, distTie := s.distHops, s.distTie
	seen, done := s.seen, s.done
	vOff, eOff := s.vOff, s.eOff
	tie := s.w.tie
	s.heap.push(heapItem{hops: 0, tie: 0, v: int32(src)})
	for len(s.heap) > 0 {
		it := s.heap.pop()
		v := int(it.v)
		if done[v] == ep {
			continue
		}
		if it.hops != distHops[v] || it.tie != distTie[v] {
			continue // stale entry
		}
		done[v] = ep
		if opt.Target >= 0 && v == opt.Target {
			return
		}
		for _, a := range s.g.Arcs(v) {
			u, eid := a.To, a.ID
			if vOff[u] == ep || eOff[eid] == ep || done[u] == ep {
				continue
			}
			nh := it.hops + 1
			nt := it.tie + tie[eid]
			if seen[u] != ep {
				seen[u] = ep
				distHops[u], distTie[u] = nh, nt
				s.parent[u], s.parentE[u] = int32(v), eid
				s.heap.push(heapItem{hops: nh, tie: nt, v: u})
				continue
			}
			if nh < distHops[u] || (nh == distHops[u] && nt < distTie[u]) {
				distHops[u], distTie[u] = nh, nt
				s.parent[u], s.parentE[u] = int32(v), eid
				s.heap.push(heapItem{hops: nh, tie: nt, v: u})
			} else if nh == distHops[u] && nt == distTie[u] && int(s.parent[u]) != v {
				s.TieWarnings++
			}
		}
	}
}

// Reachable reports whether v was settled in the last run. With a Target
// option, only vertices settled before the target report true.
func (s *Search) Reachable(v int) bool { return s.done[v] == s.epoch }

// HopDist returns the unweighted distance to v from the last run's source,
// or -1 when unreachable.
func (s *Search) HopDist(v int) int32 {
	if s.done[v] != s.epoch {
		return -1
	}
	return s.distHops[v]
}

// Dist returns the full weight to v and whether v is reachable.
func (s *Search) Dist(v int) (Weight, bool) {
	if s.done[v] != s.epoch {
		return Weight{}, false
	}
	return Weight{Hops: s.distHops[v], Tie: s.distTie[v]}, true
}

// PathTo returns the unique shortest path from the source to v under W, or
// nil when v is unreachable.
func (s *Search) PathTo(v int) path.Path {
	if s.done[v] != s.epoch {
		return nil
	}
	n := int(s.distHops[v]) + 1
	p := make(path.Path, n)
	i := n - 1
	for u := v; u != -1; u = int(s.parent[u]) {
		p[i] = u
		i--
	}
	return p
}

// ParentOf returns the predecessor of v on its shortest path (-1 for the
// source or unreachable vertices).
func (s *Search) ParentOf(v int) int {
	if s.done[v] != s.epoch {
		return -1
	}
	return int(s.parent[v])
}

// ParentEdgeOf returns the edge ID connecting v to its predecessor, or -1.
func (s *Search) ParentEdgeOf(v int) int {
	if s.done[v] != s.epoch {
		return -1
	}
	return int(s.parentE[v])
}

// LastEdgeTo returns the final edge of the shortest path to v. ok is false
// when v is unreachable or is the source itself.
func (s *Search) LastEdgeTo(v int) (graph.Edge, bool) {
	if s.done[v] != s.epoch || s.parent[v] < 0 {
		return graph.Edge{}, false
	}
	return graph.Edge{U: int(s.parent[v]), V: v}.Normalize(), true
}
