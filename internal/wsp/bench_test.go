package wsp

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

func BenchmarkSearchFull(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := gen.SparseGNP(n, 8, 1)
			s := NewSearch(g, NewAssignment(g.M(), 1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(0, Options{Target: -1})
			}
		})
	}
}

func BenchmarkSearchEarlyExit(b *testing.B) {
	g := gen.SparseGNP(1600, 8, 1)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(0, Options{Target: i % g.N()})
	}
}

func BenchmarkSearchMasked(b *testing.B) {
	g := gen.SparseGNP(400, 8, 1)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	faults := []int{1, 5}
	off := []int{7, 9, 11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(0, Options{Target: -1, DisabledEdges: faults, DisabledVertices: off})
	}
}
