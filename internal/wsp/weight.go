// Package wsp implements the unique-shortest-path machinery that the paper
// assumes as a primitive: a weight assignment W over the edges of an
// unweighted graph that breaks shortest-path ties in a consistent manner, and
// a Dijkstra search that computes the unique shortest paths under W in
// arbitrary vertex/edge-restricted subgraphs.
//
// A weight is the exact pair (hops, tie): the number of edges on the path and
// the sum of per-edge 62-bit tie-breakers. Weights compare lexicographically,
// so the first component is always the true unweighted distance — the
// perturbation only selects among equal-hop paths. By the isolation lemma the
// selected path is unique with high probability; residual ties are detectable
// (two equal-weight parents) and surface as Stats.TieWarnings in callers.
package wsp

import "math/rand"

// TieRange bounds the per-edge tie-breaker values. With ties drawn uniformly
// from [1, TieRange) and at most 2^20 edges on a path, sums stay below 2^62
// and never overflow int64.
const TieRange = int64(1) << 42

// Weight is the exact two-component path weight under the assignment W.
type Weight struct {
	Hops int32 // number of edges
	Tie  int64 // sum of per-edge tie-breakers
}

// Less reports whether w is strictly smaller than o (lexicographic).
func (w Weight) Less(o Weight) bool {
	if w.Hops != o.Hops {
		return w.Hops < o.Hops
	}
	return w.Tie < o.Tie
}

// Add returns the component-wise sum of w and o.
func (w Weight) Add(o Weight) Weight {
	return Weight{Hops: w.Hops + o.Hops, Tie: w.Tie + o.Tie}
}

// Assignment is the weight assignment W: one tie-breaker per edge ID.
// It is created once per graph and shared by every search so that all
// replacement-path computations break ties consistently (the paper's
// "weight assignment W that guarantees uniqueness").
type Assignment struct {
	tie []int64
}

// NewAssignment draws a tie-breaker for each of m edges from the given seed.
func NewAssignment(m int, seed int64) *Assignment {
	rng := rand.New(rand.NewSource(seed))
	t := make([]int64, m)
	for i := range t {
		t[i] = 1 + rng.Int63n(TieRange-1)
	}
	return &Assignment{tie: t}
}

// EdgeWeight returns the weight of a single edge.
func (a *Assignment) EdgeWeight(edgeID int) Weight {
	return Weight{Hops: 1, Tie: a.tie[edgeID]}
}

// M returns the number of edges covered by the assignment.
func (a *Assignment) M() int { return len(a.tie) }
