package wsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestWeightLessAdd(t *testing.T) {
	a := Weight{Hops: 2, Tie: 100}
	b := Weight{Hops: 3, Tie: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("hops should dominate")
	}
	c := Weight{Hops: 2, Tie: 99}
	if !c.Less(a) || a.Less(c) {
		t.Fatalf("tie should break equal hops")
	}
	sum := a.Add(c)
	if sum.Hops != 4 || sum.Tie != 199 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestAssignmentDeterministic(t *testing.T) {
	a := NewAssignment(10, 42)
	b := NewAssignment(10, 42)
	for i := 0; i < 10; i++ {
		if a.EdgeWeight(i) != b.EdgeWeight(i) {
			t.Fatalf("same seed produced different assignments")
		}
		w := a.EdgeWeight(i)
		if w.Hops != 1 || w.Tie <= 0 || w.Tie >= TieRange {
			t.Fatalf("edge weight out of range: %+v", w)
		}
	}
	c := NewAssignment(10, 43)
	same := true
	for i := 0; i < 10; i++ {
		if a.EdgeWeight(i) != c.EdgeWeight(i) {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical assignments")
	}
}

func TestSearchPathOnPathGraph(t *testing.T) {
	g := gen.PathGraph(5)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	s.Run(0, Options{Target: -1})
	for v := 0; v < 5; v++ {
		if s.HopDist(v) != int32(v) {
			t.Fatalf("dist(%d) = %d", v, s.HopDist(v))
		}
	}
	p := s.PathTo(4)
	if p.String() != "0-1-2-3-4" {
		t.Fatalf("PathTo(4) = %v", p)
	}
	e, ok := s.LastEdgeTo(4)
	if !ok || e != (graph.Edge{U: 3, V: 4}) {
		t.Fatalf("LastEdgeTo = %v", e)
	}
	if _, ok := s.LastEdgeTo(0); ok {
		t.Fatalf("source should have no last edge")
	}
}

func TestSearchDisabledEdge(t *testing.T) {
	g := gen.Cycle(6) // 0-1-2-3-4-5-0
	e01, _ := g.EdgeID(0, 1)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	s.Run(0, Options{Target: -1, DisabledEdges: []int{e01}})
	if s.HopDist(1) != 5 {
		t.Fatalf("dist(1) with 0-1 cut = %d, want 5", s.HopDist(1))
	}
}

func TestSearchDisabledVertex(t *testing.T) {
	g := gen.PathGraph(5)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	s.Run(0, Options{Target: -1, DisabledVertices: []int{2}})
	if s.Reachable(3) || s.Reachable(4) {
		t.Fatalf("vertices past the cut should be unreachable")
	}
	if s.HopDist(3) != -1 {
		t.Fatalf("HopDist of unreachable = %d", s.HopDist(3))
	}
	if s.PathTo(4) != nil {
		t.Fatalf("PathTo of unreachable should be nil")
	}
}

func TestSearchDisabledSource(t *testing.T) {
	g := gen.PathGraph(3)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	s.Run(0, Options{Target: -1, DisabledVertices: []int{0}})
	for v := 0; v < 3; v++ {
		if s.Reachable(v) {
			t.Fatalf("disabled source: %d reachable", v)
		}
	}
}

func TestSearchTargetEarlyExit(t *testing.T) {
	g := gen.PathGraph(10)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	s.Run(0, Options{Target: 3})
	if s.HopDist(3) != 3 {
		t.Fatalf("target dist = %d", s.HopDist(3))
	}
	if s.Reachable(9) {
		t.Fatalf("early exit should not settle beyond target")
	}
}

func TestSearchMaskResetBetweenRuns(t *testing.T) {
	g := gen.Cycle(4)
	e01, _ := g.EdgeID(0, 1)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	s.Run(0, Options{Target: -1, DisabledEdges: []int{e01}})
	if s.HopDist(1) != 3 {
		t.Fatalf("masked run dist = %d", s.HopDist(1))
	}
	s.Run(0, Options{Target: -1})
	if s.HopDist(1) != 1 {
		t.Fatalf("mask leaked into next run: dist = %d", s.HopDist(1))
	}
}

// Property: hop distances agree with plain BFS on random graphs, with and
// without random fault sets.
func TestSearchQuickAgainstBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := gen.SparseGNP(n, 4, seed)
		s := NewSearch(g, NewAssignment(g.M(), seed+7))
		r := bfs.NewRunner(g)
		for trial := 0; trial < 5; trial++ {
			var faults []int
			for k := rng.Intn(3); k > 0; k-- {
				faults = append(faults, rng.Intn(g.M()))
			}
			src := rng.Intn(n)
			s.Run(src, Options{Target: -1, DisabledEdges: faults})
			r.Run(src, faults, nil)
			for v := 0; v < n; v++ {
				if s.HopDist(v) != r.Dist(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the canonical path is valid, simple, has the reported length,
// and its subpaths are themselves canonical (subpath optimality of unique
// shortest paths).
func TestSearchQuickCanonicalSubpaths(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		g := gen.SparseGNP(n, 5, seed)
		w := NewAssignment(g.M(), seed+13)
		s := NewSearch(g, w)
		src := rng.Intn(n)
		s.Run(src, Options{Target: -1})
		// Record full paths for every target.
		paths := make(map[int]string)
		for v := 0; v < n; v++ {
			p := s.PathTo(v)
			if p == nil {
				return false // connected graph
			}
			if !p.ValidIn(g) || !p.IsSimple() || int32(p.Len()) != s.HopDist(v) {
				return false
			}
			paths[v] = p.String()
		}
		// Subpath optimality: the canonical path to an intermediate vertex u
		// on the canonical path to v equals that path's prefix.
		for v := 0; v < n; v++ {
			p := s.PathTo(v)
			for i := range p {
				prefix := p.Sub(0, i)
				if paths[p[i]] != prefix.String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: re-running the same search gives identical trees (determinism),
// and tie warnings stay zero on small random graphs.
func TestSearchQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		n := 30
		g := gen.SparseGNP(n, 6, seed)
		w := NewAssignment(g.M(), seed)
		s1 := NewSearch(g, w)
		s2 := NewSearch(g, w)
		s1.Run(0, Options{Target: -1})
		s2.Run(0, Options{Target: -1})
		for v := 0; v < n; v++ {
			if s1.ParentOf(v) != s2.ParentOf(v) || s1.ParentEdgeOf(v) != s2.ParentEdgeOf(v) {
				return false
			}
		}
		return s1.TieWarnings == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchEpochWraparound(t *testing.T) {
	g := gen.PathGraph(4)
	s := NewSearch(g, NewAssignment(g.M(), 1))
	s.epoch = ^uint32(0) - 1 // two runs from wrapping
	s.Run(0, Options{Target: -1})
	s.Run(0, Options{Target: -1, DisabledVertices: []int{1}})
	if s.Reachable(3) {
		t.Fatalf("mask ignored near epoch wrap")
	}
	s.Run(0, Options{Target: -1}) // wraps to 0 then resets to 1
	if !s.Reachable(3) || s.HopDist(3) != 3 {
		t.Fatalf("post-wrap run wrong: dist=%d", s.HopDist(3))
	}
}
