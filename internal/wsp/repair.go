package wsp

import (
	"repro/internal/graph"
	"repro/internal/path"
)

// RepairSearch answers the same queries as Search for one fixed source by
// incrementally repairing the canonical base tree instead of re-running
// Dijkstra from scratch. The observation (arXiv:1505.00692 §2, shared with
// the Gupta–Khan multi-source construction) is that under the isolation
// weight assignment the canonical tree is the union of the unique
// weight-minimal shortest paths, so a fault set can only change the answer
// for vertices in the subtrees hanging below faulted tree edges (plus the
// subtrees of disabled vertices). Everything outside that detached region R
// keeps its exact base (hops, tie, parent, parentE); vertices inside R are
// re-settled by a Dijkstra restricted to R, seeded from the surviving
// boundary arcs. Because the optimum is unique per vertex, the repaired
// values are bit-identical to a from-scratch run — the repair changes the
// settle schedule, never the result.
//
// Contract: after a Run with a Target, accessors are valid for the target,
// every vertex on the target's path, and every vertex outside R (exactly
// the set the replace/multifail consumers query). After a Run without a
// Target, accessors are valid for all vertices. A RepairSearch is not safe
// for concurrent use; create one per goroutine.
type RepairSearch struct {
	g   *graph.Graph
	src int32

	// scratch executes the base run at construction and absorbs every
	// query repair cannot serve: a different source, a detached region
	// past volLimit, or repair disabled. When full is true the last Run
	// lives in scratch and every accessor delegates to it.
	scratch *Search
	full    bool
	disable bool

	// Frozen base tree (never mutated after construction). bHops is -1
	// for vertices unreachable from src in the fault-free graph.
	bHops    []int32
	bTie     []int64
	bParent  []int32
	bParentE []int32
	// Children of the base tree in CSR form: kids[kidOff[v]:kidOff[v+1]].
	kidOff []int32
	kids   []int32

	// Live view: base values patched by the current repair. Only vertices
	// in region are ever patched; undo restores them from the b-arrays at
	// the start of the next Run.
	hops    []int32
	tie     []int64
	parent  []int32
	parentE []int32

	// Per-run stamps (epoch ep): inR marks the detached region, seen/done
	// mirror Search's tentative/settled stamps, vOff/eOff the masks.
	ep     uint32
	inR    []uint32
	seen   []uint32
	done   []uint32
	vOff   []uint32
	eOff   []uint32
	region []int32 // R as a list; doubles as the undo list
	heap   heapSlice

	// volLimit caps the arc volume (sum of degrees) of R: past it a
	// from-scratch run is cheaper than repairing, so Run falls back.
	volLimit int

	// ties counts residual equal-weight relaxations observed by repairs,
	// mirroring Search.TieWarnings (which covers the base and fallback
	// runs executed by scratch).
	ties int
}

// NewRepairSearch builds the base canonical tree from src (one full
// Dijkstra) and returns a repair engine bound to it. Accessors are
// immediately valid and reflect the fault-free base run.
func NewRepairSearch(g *graph.Graph, w *Assignment, src int) *RepairSearch {
	n, m := g.N(), g.M()
	r := &RepairSearch{
		g:        g,
		src:      int32(src),
		scratch:  NewSearch(g, w),
		bHops:    make([]int32, n),
		bTie:     make([]int64, n),
		bParent:  make([]int32, n),
		bParentE: make([]int32, n),
		kidOff:   make([]int32, n+1),
		hops:     make([]int32, n),
		tie:      make([]int64, n),
		parent:   make([]int32, n),
		parentE:  make([]int32, n),
		inR:      make([]uint32, n),
		seen:     make([]uint32, n),
		done:     make([]uint32, n),
		vOff:     make([]uint32, n),
		eOff:     make([]uint32, m),
		volLimit: m,
	}
	if r.volLimit < 256 {
		r.volLimit = 256
	}
	r.scratch.Run(src, Options{Target: -1})
	for v := 0; v < n; v++ {
		if r.scratch.Reachable(v) {
			wt, _ := r.scratch.Dist(v)
			r.bHops[v], r.bTie[v] = wt.Hops, wt.Tie
			r.bParent[v] = int32(r.scratch.ParentOf(v))
			r.bParentE[v] = int32(r.scratch.ParentEdgeOf(v))
		} else {
			r.bHops[v], r.bParent[v], r.bParentE[v] = -1, -1, -1
		}
	}
	copy(r.hops, r.bHops)
	copy(r.tie, r.bTie)
	copy(r.parent, r.bParent)
	copy(r.parentE, r.bParentE)
	for v := 0; v < n; v++ {
		if p := r.bParent[v]; p >= 0 {
			r.kidOff[p+1]++
		}
	}
	for i := 0; i < n; i++ {
		r.kidOff[i+1] += r.kidOff[i]
	}
	r.kids = make([]int32, r.kidOff[n])
	fill := make([]int32, n)
	copy(fill, r.kidOff[:n])
	for v := 0; v < n; v++ {
		if p := r.bParent[v]; p >= 0 {
			r.kids[fill[p]] = int32(v)
			fill[p]++
		}
	}
	return r
}

// Graph returns the graph the search is bound to.
func (r *RepairSearch) Graph() *graph.Graph { return r.g }

// DisableRepair makes every subsequent Run delegate to the from-scratch
// Search (the NoRepair build option; results are identical either way).
func (r *RepairSearch) DisableRepair() { r.disable = true }

// TieWarnings returns the residual equal-weight-path count accumulated
// across the base run, all repairs, and all fallback runs — the same
// evidence Search.TieWarnings carries that the assignment failed to
// isolate a unique shortest path.
func (r *RepairSearch) TieWarnings() int { return r.ties + r.scratch.TieWarnings }

// Changed returns the detached region of the last Run — the only vertices
// whose (hops, tie, parent, parentE) may differ from the base tree — and
// ok=true when the run was served incrementally. ok=false means the run
// fell back to scratch and every vertex may differ. Only meaningful after
// a Run without a Target; the slice is valid until the next Run.
func (r *RepairSearch) Changed() ([]int32, bool) {
	if r.full {
		return nil, false
	}
	return r.region, true
}

// undo restores the live arrays to the base tree for every vertex patched
// (or merely detached) by the previous repair.
func (r *RepairSearch) undo() {
	for _, v := range r.region {
		r.hops[v] = r.bHops[v]
		r.tie[v] = r.bTie[v]
		r.parent[v] = r.bParent[v]
		r.parentE[v] = r.bParentE[v]
	}
	r.region = r.region[:0]
}

// Run executes the query from src under the given restrictions, repairing
// the base tree when possible and falling back to a from-scratch Dijkstra
// otherwise. Results are valid until the next Run (see the type comment
// for which accessors are valid after a Target run).
func (r *RepairSearch) Run(src int, opt Options) {
	r.undo()
	if r.disable || int32(src) != r.src {
		r.full = true
		r.scratch.Run(src, opt)
		return
	}
	r.full = false
	r.ep++
	if r.ep == 0 { // wrapped; reset stamps
		for i := range r.inR {
			r.inR[i], r.seen[i], r.done[i], r.vOff[i] = 0, 0, 0, 0
		}
		for i := range r.eOff {
			r.eOff[i] = 0
		}
		r.ep = 1
	}
	ep := r.ep
	for _, e := range opt.DisabledEdges {
		r.eOff[e] = ep
	}
	// Detach the subtree of every disabled vertex (including the vertex
	// itself: it is masked and never re-settled) and of the child endpoint
	// of every faulted tree edge. Faulted non-tree edges detach nothing —
	// the canonical tree is the union of the unique canonical paths, so
	// removing a non-tree edge is an exact no-op.
	for _, v := range opt.DisabledVertices {
		r.vOff[v] = ep
		if r.inR[v] != ep {
			r.inR[v] = ep
			r.region = append(r.region, int32(v))
		}
	}
	for _, id := range opt.DisabledEdges {
		e := r.g.EdgeAt(id)
		c := -1
		if int(r.bParentE[e.V]) == id {
			c = e.V
		} else if int(r.bParentE[e.U]) == id {
			c = e.U
		}
		if c >= 0 && r.inR[c] != ep {
			r.inR[c] = ep
			r.region = append(r.region, int32(c))
		}
	}
	if !r.detach() {
		r.full = true
		r.scratch.Run(src, opt)
		return
	}
	if len(r.region) == 0 {
		return // exact no-op: every fault missed the tree
	}
	if opt.Target >= 0 && r.inR[opt.Target] != ep {
		// The target and its whole base path lie outside R: the base view
		// already answers everything the caller may ask.
		return
	}
	r.repair(opt.Target)
}

// detach expands region to the full set of base-tree descendants of its
// roots, accumulating arc volume; it reports false when the volume passes
// volLimit (a from-scratch run is cheaper than repairing that much).
//
//ftbfs:hotpath
func (r *RepairSearch) detach() bool {
	ep := r.ep
	vol := 0
	for i := 0; i < len(r.region); i++ {
		v := r.region[i]
		vol += r.g.Degree(int(v))
		if vol > r.volLimit {
			return false
		}
		for _, c := range r.kids[r.kidOff[v]:r.kidOff[v+1]] {
			if r.inR[c] != ep {
				r.inR[c] = ep
				r.region = append(r.region, c)
			}
		}
	}
	return true
}

// repair re-settles the detached region: every vertex x in R is seeded
// with the best crossing arc from the (exact, surviving) outside, then a
// Dijkstra restricted to R finishes the job. By the last-crossing argument
// the canonical path of every x in R decomposes into an exact outside
// prefix, one crossing arc, and a suffix inside R, so the restricted
// search reproduces the unique optimum — and therefore the exact parent
// and parent edge — for every vertex it settles. R vertices left
// unsettled are exactly the ones unreachable under the fault set.
//
//ftbfs:hotpath
func (r *RepairSearch) repair(target int) {
	ep := r.ep
	hops, tie := r.hops, r.tie
	seen, done := r.seen, r.done
	inR, vOff, eOff := r.inR, r.vOff, r.eOff
	bHops, bTie := r.bHops, r.bTie
	wTie := r.scratch.w.tie
	r.heap = r.heap[:0]
	for _, x := range r.region {
		if vOff[x] == ep {
			continue
		}
		for _, a := range r.g.Arcs(int(x)) {
			u, eid := a.To, a.ID
			if inR[u] == ep || eOff[eid] == ep || bHops[u] < 0 {
				continue
			}
			nh := bHops[u] + 1
			nt := bTie[u] + wTie[eid]
			if seen[x] != ep {
				seen[x] = ep
				hops[x], tie[x] = nh, nt
				r.parent[x], r.parentE[x] = u, eid
				r.heap.push(heapItem{hops: nh, tie: nt, v: x})
				continue
			}
			if nh < hops[x] || (nh == hops[x] && nt < tie[x]) {
				hops[x], tie[x] = nh, nt
				r.parent[x], r.parentE[x] = u, eid
				r.heap.push(heapItem{hops: nh, tie: nt, v: x})
			} else if nh == hops[x] && nt == tie[x] && r.parent[x] != u {
				r.ties++
			}
		}
	}
	for len(r.heap) > 0 {
		it := r.heap.pop()
		v := int(it.v)
		if done[v] == ep {
			continue
		}
		if it.hops != hops[v] || it.tie != tie[v] {
			continue // stale entry
		}
		done[v] = ep
		if target >= 0 && v == target {
			return
		}
		for _, a := range r.g.Arcs(v) {
			u, eid := a.To, a.ID
			if inR[u] != ep || vOff[u] == ep || eOff[eid] == ep || done[u] == ep {
				continue
			}
			nh := it.hops + 1
			nt := it.tie + wTie[eid]
			if seen[u] != ep {
				seen[u] = ep
				hops[u], tie[u] = nh, nt
				r.parent[u], r.parentE[u] = it.v, eid
				r.heap.push(heapItem{hops: nh, tie: nt, v: u})
				continue
			}
			if nh < hops[u] || (nh == hops[u] && nt < tie[u]) {
				hops[u], tie[u] = nh, nt
				r.parent[u], r.parentE[u] = it.v, eid
				r.heap.push(heapItem{hops: nh, tie: nt, v: u})
			} else if nh == hops[u] && nt == tie[u] && r.parent[u] != it.v {
				r.ties++
			}
		}
	}
}

// gated reports whether v is in the detached region but was not settled by
// the repair — i.e. v is unreachable under the last fault set.
func (r *RepairSearch) gated(v int) bool {
	return r.inR[v] == r.ep && r.done[v] != r.ep
}

// Reachable reports whether v is reachable under the last Run's
// restrictions (for Target runs, within the contract set).
func (r *RepairSearch) Reachable(v int) bool {
	if r.full {
		return r.scratch.Reachable(v)
	}
	return !r.gated(v) && r.hops[v] >= 0
}

// HopDist returns the unweighted distance to v, or -1 when unreachable.
func (r *RepairSearch) HopDist(v int) int32 {
	if r.full {
		return r.scratch.HopDist(v)
	}
	if r.gated(v) {
		return -1
	}
	return r.hops[v]
}

// Dist returns the full weight to v and whether v is reachable.
func (r *RepairSearch) Dist(v int) (Weight, bool) {
	if r.full {
		return r.scratch.Dist(v)
	}
	if r.gated(v) || r.hops[v] < 0 {
		return Weight{}, false
	}
	return Weight{Hops: r.hops[v], Tie: r.tie[v]}, true
}

// PathTo returns the unique shortest path from the source to v under W, or
// nil when v is unreachable.
func (r *RepairSearch) PathTo(v int) path.Path {
	if r.full {
		return r.scratch.PathTo(v)
	}
	if r.gated(v) || r.hops[v] < 0 {
		return nil
	}
	n := int(r.hops[v]) + 1
	p := make(path.Path, n)
	i := n - 1
	for u := v; u != -1; u = int(r.parent[u]) {
		p[i] = u
		i--
	}
	return p
}

// ParentOf returns the predecessor of v on its shortest path (-1 for the
// source or unreachable vertices).
func (r *RepairSearch) ParentOf(v int) int {
	if r.full {
		return r.scratch.ParentOf(v)
	}
	if r.gated(v) {
		return -1
	}
	return int(r.parent[v])
}

// ParentEdgeOf returns the edge ID connecting v to its predecessor, or -1.
func (r *RepairSearch) ParentEdgeOf(v int) int {
	if r.full {
		return r.scratch.ParentEdgeOf(v)
	}
	if r.gated(v) {
		return -1
	}
	return int(r.parentE[v])
}

// LastEdgeTo returns the final edge of the shortest path to v. ok is false
// when v is unreachable or is the source itself.
func (r *RepairSearch) LastEdgeTo(v int) (graph.Edge, bool) {
	if r.full {
		return r.scratch.LastEdgeTo(v)
	}
	if r.gated(v) || r.hops[v] < 0 || r.parent[v] < 0 {
		return graph.Edge{}, false
	}
	return graph.Edge{U: int(r.parent[v]), V: v}.Normalize(), true
}
