// Package multifail realizes the paper's "Beyond two faults" program
// (Section 2's closing discussion): the natural generalized f-FT-BFS
// structure containing, for every target, the last edges of all
// replacement paths avoiding up to f edge faults — with the fault sets
// enumerated along the *relevant-fault tree* rather than over all C(m,f)
// subsets.
//
// The relevant-fault tree for a target v: level 1 holds the faults on
// π(s,v); below a fault set F, the children extend F by one edge of the
// chosen replacement path P(s,v,F) (the paper's D^1, D^2, ... detour
// hierarchy is exactly the new part of those paths). A peeling argument —
// the same deepest-missing-edge induction as Lemma 3.2 — shows collecting
// one last edge per relevant fault set suffices: for an arbitrary F with
// |F| ≤ f, repeatedly pick a failed edge lying on the current chosen path;
// either the path avoids the rest of F (done) or the extended fault set is
// itself relevant.
//
// The structure generalizes core.BuildDual (f = 2, without the
// divergence-point selection rules, which only matter for the size
// analysis) and is exponentially cheaper than core.BuildExhaustive for
// f ≥ 2 on sparse graphs: O(Σ_v depth(v)^f) searches instead of O(m^f).
package multifail

//ftbfs:builders

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/wsp"
)

// MaxSearches bounds the total number of shortest-path computations one
// Build call may spend; the relevant tree grows as depth^f.
const MaxSearches = 4_000_000

// Build constructs an f-failure FT-BFS structure (any f ≥ 0) for source s
// by relevant-fault-tree enumeration. Options carry the tie-breaking seed
// and Parallelism: targets are independent, so their relevant trees are
// expanded by that many goroutines with private search engines over the
// shared weight assignment (the search budget stays global), and the
// resulting structure is identical to the sequential build. Options.Ctx
// cancels the enumeration cooperatively (Build then returns ctx.Err() and
// no structure) and Options.Progress receives live counters — one work
// unit per completed target, one Dijkstra per relevant fault set.
func Build(g *graph.Graph, s int, f int, opts *core.Options) (*core.Structure, error) {
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("multifail: source %d out of range [0,%d)", s, g.N())
	}
	if f < 0 {
		return nil, fmt.Errorf("multifail: negative fault budget %d", f)
	}
	var seed int64 = 1
	if opts != nil {
		seed = opts.Seed + 1
	}
	ctx := opts.Context()
	prog := opts.ProgressSink()
	w := wsp.NewAssignment(g.M(), seed)
	st := &core.Structure{
		G:       g,
		Sources: []int{s},
		Faults:  f,
		Edges:   graph.NewEdgeSet(g.M()),
	}
	// Work units are targets; the per-target relevant-tree size is not
	// known up front, so Dijkstras is the finer-grained live counter.
	opts.AnnounceTotal(int64(max(0, g.N()-1)))
	// No more workers than targets; an idle worker would still allocate
	// a search engine. Targets are claimed in contiguous ranges from a
	// shared work-stealing dispenser — per-target relevant-tree sizes
	// vary by orders of magnitude, so static stripes straggle.
	workers := min(opts.Workers(), max(1, g.N()-1))
	disp := sched.NewDispenser(g.N(), workers)
	var searches atomic.Int64 // global budget shared by every worker
	type chunk struct {
		edges *graph.EdgeSet
		ties  int
		err   error
	}
	out := make([]chunk, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			t0 := time.Now()
			// The repair search reuses the base tree across the fault
			// sets of every target; runs are bit-identical to
			// from-scratch searches, and its base-run tie count is
			// baselined away so the parallel sum matches sequential.
			search := wsp.NewRepairSearch(g, w, s)
			if opts != nil && opts.NoRepair {
				search.DisableRepair()
			}
			baseTies := search.TieWarnings()
			prog.AddPhaseNS(core.PhaseBase, time.Since(t0).Nanoseconds())
			b := &builder{
				g:        g,
				s:        s,
				f:        f,
				search:   search,
				edges:    graph.NewEdgeSet(g.M()),
				searches: &searches,
				poll:     cancel.New(ctx, cancel.PollEvery),
				prog:     prog,
			}
			tEv := time.Now()
		claims:
			for {
				lo, hi, ok := disp.Next()
				if !ok {
					break
				}
				for v := lo; v < hi; v++ {
					if v == s {
						continue
					}
					b.seen = make(map[string]bool)
					if err := b.expand(v, nil); err != nil {
						out[wi].err = err
						break claims
					}
					prog.AddUnits(1)
				}
			}
			prog.AddPhaseNS(core.PhaseEvents, time.Since(tEv).Nanoseconds())
			out[wi].edges = b.edges
			out[wi].ties = search.TieWarnings() - baseTies
		}(wi)
	}
	wg.Wait()
	// Cancellation wins over whatever else the workers hit: the build is
	// cancelled, not failed, and no partial structure is published.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tU := time.Now()
	for wi := range out {
		if out[wi].err != nil {
			return nil, out[wi].err
		}
		st.Edges.Union(out[wi].edges)
		st.Stats.TieWarnings += out[wi].ties
	}
	st.Stats.Dijkstras = int(searches.Load())
	prog.AddPhaseNS(core.PhaseUnion, time.Since(tU).Nanoseconds())
	return st, nil
}

type builder struct {
	g        *graph.Graph
	s, f     int
	search   *wsp.RepairSearch
	edges    *graph.EdgeSet  // this worker's last-edge accumulator
	searches *atomic.Int64   // Build-wide search counter against MaxSearches
	seen     map[string]bool // canonical fault-set keys already expanded (per target)
	poll     *cancel.Poller  // amortized cancellation check, one per worker
	prog     *core.Progress  // live counters (nil-safe)
}

// key canonicalizes a fault set (order-independent).
func key(faults []int) string {
	s := append([]int(nil), faults...)
	sort.Ints(s)
	buf := make([]byte, 0, 4*len(s))
	for _, id := range s {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}

// expand computes the canonical replacement path for (v, faults), records
// its last edge, and recurses on the path's edges while budget remains.
func (b *builder) expand(v int, faults []int) error {
	k := key(faults)
	if b.seen[k] {
		return nil
	}
	b.seen[k] = true
	if err := b.poll.Poll(); err != nil {
		return err
	}
	if b.searches.Add(1) > MaxSearches {
		return fmt.Errorf("multifail: search budget %d exhausted (f=%d too deep for this graph)",
			MaxSearches, b.f)
	}
	b.search.Run(b.s, wsp.Options{Target: v, DisabledEdges: faults})
	b.prog.AddDijkstras(1)
	if !b.search.Reachable(v) {
		return nil // disconnected under F: no requirement
	}
	p := b.search.PathTo(v)
	if id := b.search.ParentEdgeOf(v); id >= 0 && !b.edges.Has(id) {
		b.edges.Add(id)
		b.prog.AddEdges(1)
	}
	if len(faults) >= b.f {
		return nil
	}
	// Children: extend the fault set by each edge of the chosen path.
	ids := make([]int, 0, p.Len())
	for i := 0; i+1 < len(p); i++ {
		id, ok := b.g.EdgeID(p[i], p[i+1])
		if !ok {
			return fmt.Errorf("multifail: path edge (%d,%d) missing", p[i], p[i+1])
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		child := append(append(make([]int, 0, len(faults)+1), faults...), id)
		if err := b.expand(v, child); err != nil {
			return err
		}
	}
	return nil
}
