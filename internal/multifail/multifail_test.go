package multifail

import (
	"context"
	"errors"
	"time"

	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/verify"
)

func TestBuildErrors(t *testing.T) {
	g := gen.PathGraph(4)
	if _, err := Build(g, -1, 2, nil); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Build(g, 0, -1, nil); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestBuildVerifiesAllF(t *testing.T) {
	g := gen.GNP(14, 0.25, 6)
	for f := 0; f <= 3; f++ {
		st, err := Build(g, 0, f, &core.Options{Seed: 3})
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		rep := verify.Structure(g, st, []int{0}, f, nil)
		if !rep.OK {
			t.Fatalf("f=%d: %v", f, rep.Violations)
		}
		if st.Faults != f {
			t.Fatalf("faults field = %d", st.Faults)
		}
	}
}

// TestBuildAcrossFamiliesF3 runs f=3 builds on small graphs where the
// exhaustive f=3 verification is feasible.
func TestBuildAcrossFamiliesF3(t *testing.T) {
	t.Run("cycle9", func(t *testing.T) {
		g := gen.Cycle(9)
		st, err := Build(g, 0, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.NumEdges() != g.M() {
			t.Fatalf("cycle f=3 must keep all edges, got %d", st.NumEdges())
		}
		rep := verify.Structure(g, st, []int{0}, 3, nil)
		if !rep.OK {
			t.Fatalf("verify: %v", rep.Violations)
		}
	})
	t.Run("grid3x4", func(t *testing.T) {
		g := gen.Grid(3, 4)
		st, err := Build(g, 0, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep := verify.Structure(g, st, []int{0}, 3, nil)
		if !rep.OK {
			t.Fatalf("verify: %v", rep.Violations)
		}
	})
	t.Run("chords", func(t *testing.T) {
		g := gen.TreePlusChords(14, 4, 7)
		st, err := Build(g, 0, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep := verify.Structure(g, st, []int{0}, 3, nil)
		if !rep.OK {
			t.Fatalf("verify: %v", rep.Violations)
		}
	})
}

// TestMatchesExhaustiveDistances: the relevant-tree structure and the full
// m^f closure both verify; the relevant tree must not be larger (it keeps a
// subset of canonical last edges).
func TestSubsetOfExhaustive(t *testing.T) {
	g := gen.GNP(12, 0.3, 9)
	for f := 1; f <= 2; f++ {
		rel, err := Build(g, 0, f, &core.Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		exh, err := core.BuildExhaustive(g, 0, f, &core.Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		rel.Edges.ForEach(func(id int) {
			if !exh.Edges.Has(id) {
				t.Fatalf("f=%d: relevant-tree edge %d not in exhaustive closure", f, id)
			}
		})
		if rel.Stats.Dijkstras >= exh.Stats.Dijkstras && f == 2 {
			t.Fatalf("f=2: relevant tree used %d searches, exhaustive %d — no savings",
				rel.Stats.Dijkstras, exh.Stats.Dijkstras)
		}
	}
}

func TestComparableToConsDual(t *testing.T) {
	g := gen.SparseGNP(30, 4, 11)
	rel, err := Build(g, 0, 2, &core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := core.BuildDual(g, 0, &core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Structure(g, rel, []int{0}, 2, nil)
	if !rep.OK {
		t.Fatalf("verify: %v", rep.Violations)
	}
	// Both correct dual structures; sizes should be in the same ballpark
	// (the Cons2FTBFS selection rules only shave constants).
	lo, hi := dual.NumEdges()/2, dual.NumEdges()*2
	if rel.NumEdges() < lo || rel.NumEdges() > hi {
		t.Fatalf("relevant-tree size %d far from Cons2FTBFS %d", rel.NumEdges(), dual.NumEdges())
	}
}

// Property: the builder stays correct across random sparse graphs at f=2
// (verified exhaustively) and f=3 (verified by sampling).
func TestQuickRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		g := gen.SparseGNP(n, 3, seed)
		st, err := Build(g, 0, 2, &core.Options{Seed: seed})
		if err != nil {
			return false
		}
		if !verify.Structure(g, st, []int{0}, 2, nil).OK {
			return false
		}
		st3, err := Build(g, 0, 3, &core.Options{Seed: seed})
		if err != nil {
			return false
		}
		return verify.Sampled(g, st3.DisabledEdges(), []int{0}, 3, 150, seed, nil).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := gen.PathGraph(6)
	// Split the path: remove nothing, but build from an end; f=2 on a path
	// keeps the whole path (only structure possible).
	st, err := Build(g, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != g.M() {
		t.Fatalf("path structure = %d edges", st.NumEdges())
	}
}

// TestParallelBuildMatches checks Options.Parallelism: per-target
// relevant trees are independent, so any worker count must produce the
// sequential structure, search count and tie warnings exactly.
func TestParallelBuildMatches(t *testing.T) {
	g := gen.GNP(16, 0.25, 12)
	for f := 0; f <= 3; f++ {
		seq, err := Build(g, 0, f, &core.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 32} {
			par, err := Build(g, 0, f, &core.Options{Seed: 3, Parallelism: workers})
			if err != nil {
				t.Fatalf("f=%d workers=%d: %v", f, workers, err)
			}
			if seq.NumEdges() != par.NumEdges() {
				t.Fatalf("f=%d workers=%d: %d vs %d edges", f, workers, seq.NumEdges(), par.NumEdges())
			}
			ids, idp := seq.Edges.IDs(), par.Edges.IDs()
			for i := range ids {
				if ids[i] != idp[i] {
					t.Fatalf("f=%d workers=%d: edge sets differ", f, workers)
				}
			}
			if seq.Stats.Dijkstras != par.Stats.Dijkstras || seq.Stats.TieWarnings != par.Stats.TieWarnings {
				t.Fatalf("f=%d workers=%d: stats %+v vs %+v", f, workers, par.Stats, seq.Stats)
			}
		}
	}
}

// TestBuildCancelled: a cancelled context stops the relevant-fault-tree
// enumeration — bare ctx.Err(), no partial structure — sequentially and
// in parallel; progress counters report work done before the stop.
func TestBuildCancelled(t *testing.T) {
	g := gen.SparseGNP(60, 4, 3)
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	for _, workers := range []int{0, 4} {
		st, err := Build(g, 0, 2, &core.Options{Seed: 1, Ctx: pre, Parallelism: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if st != nil {
			t.Fatalf("workers=%d: partial structure escaped", workers)
		}
	}

	prog := &core.Progress{}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for prog.Snapshot().Dijkstras < 20 {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	st, err := Build(g, 0, 3, &core.Options{Seed: 1, Ctx: ctx, Progress: prog, Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build: err = %v, want context.Canceled", err)
	}
	if st != nil {
		t.Fatal("mid-build: partial structure escaped")
	}
	if ps := prog.Snapshot(); ps.Dijkstras < 20 {
		t.Fatalf("progress lost work: %+v", ps)
	}
}
