package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/path"
	"repro/internal/replace"
)

func mkDetour(xPos, yPos int, verts ...int) *replace.Detour {
	ids := make([]int, len(verts)-1)
	for i := range ids {
		ids[i] = -1 - i // synthetic IDs; pair classification ignores them
	}
	return &replace.Detour{Valid: true, Path: path.Path(verts), XPos: xPos, YPos: yPos, EdgeIDs: ids}
}

func TestClassifyDetourPairConfigs(t *testing.T) {
	cases := []struct {
		name string
		a, b *replace.Detour
		want DetourConfig
	}{
		{"non-nested", mkDetour(0, 2, 100, 101, 102), mkDetour(3, 5, 103, 104, 105), ConfigNonNested},
		{"nested", mkDetour(0, 6, 100, 101, 102), mkDetour(2, 4, 103, 104, 105), ConfigNested},
		{"interleaved", mkDetour(0, 4, 100, 101, 102), mkDetour(2, 6, 103, 104, 105), ConfigInterleaved},
		{"x-interleaved", mkDetour(0, 4, 100, 101, 102), mkDetour(0, 6, 100, 104, 105), ConfigXInterleaved},
		{"y-interleaved", mkDetour(0, 6, 100, 101, 102), mkDetour(2, 6, 103, 104, 102), ConfigYInterleaved},
		{"xy-interleaved", mkDetour(0, 3, 100, 101, 102), mkDetour(3, 6, 102, 104, 105), ConfigXYInterleaved},
		{"same-span", mkDetour(0, 4, 100, 101, 102), mkDetour(0, 4, 100, 104, 102), ConfigSameSpan},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := ClassifyDetourPair(c.a, c.b)
			if got.Config != c.want {
				t.Fatalf("config = %v, want %v", got.Config, c.want)
			}
			// Order-insensitivity.
			rev := ClassifyDetourPair(c.b, c.a)
			if rev.Config != c.want {
				t.Fatalf("reversed config = %v, want %v", rev.Config, c.want)
			}
		})
	}
}

func TestClassifyDetourPairDependence(t *testing.T) {
	// Share vertex 104, both traverse 104→105 in the same direction.
	a := mkDetour(0, 4, 100, 104, 105, 102)
	b := mkDetour(2, 6, 103, 104, 105, 106)
	rep := ClassifyDetourPair(a, b)
	if !rep.Dependent || !rep.SameDirection {
		t.Fatalf("fw pair: %+v", rep)
	}
	// Reverse the shared segment on b: opposite directions.
	bRev := mkDetour(2, 6, 103, 105, 104, 106)
	rep = ClassifyDetourPair(a, bRev)
	if !rep.Dependent || rep.SameDirection {
		t.Fatalf("rev pair: %+v", rep)
	}
	// Disjoint detours.
	c := mkDetour(2, 6, 200, 201, 202)
	rep = ClassifyDetourPair(a, c)
	if rep.Dependent {
		t.Fatalf("disjoint pair marked dependent")
	}
}

func TestConfigAndClassStrings(t *testing.T) {
	for _, c := range []DetourConfig{ConfigNonNested, ConfigNested, ConfigInterleaved,
		ConfigXInterleaved, ConfigYInterleaved, ConfigXYInterleaved, ConfigSameSpan, DetourConfig(42)} {
		if c.String() == "" {
			t.Fatal("empty config string")
		}
	}
	for _, c := range []PathClass{ClassPiPi, ClassNoDetour, ClassIndependent,
		ClassPiInterfering, ClassDInterfering, PathClass(42)} {
		if c.String() == "" {
			t.Fatal("empty class string")
		}
	}
}

// collectTargets builds the dual structure with path collection on a graph
// suite and returns the per-target artifacts.
func collectTargets(t *testing.T, g *graph.Graph) []*replace.TargetResult {
	t.Helper()
	st, err := core.BuildDual(g, 0, &core.Options{Seed: 11, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	return st.Targets
}

func analysisGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp28":   gen.GNP(28, 0.15, 7),
		"gnp22":   gen.GNP(22, 0.25, 19),
		"grid5x5": gen.Grid(5, 5),
		"layered": gen.Layered(5, 5, 0.35, 3),
		"chords":  gen.TreePlusChords(26, 8, 4),
	}
}

// TestDisjointnessClaimsHold asserts Claims 3.8/3.9 across families: nested
// and non-nested detour pairs are vertex-disjoint under the canonical
// selection.
func TestDisjointnessClaimsHold(t *testing.T) {
	for name, g := range analysisGraphs() {
		t.Run(name, func(t *testing.T) {
			pairs := 0
			for _, tr := range collectTargets(t, g) {
				if tr == nil {
					continue
				}
				bad, hist := CheckDisjointnessClaims(tr)
				if len(bad) > 0 {
					t.Fatalf("claims 3.8/3.9 violated: %+v", bad[0])
				}
				for _, n := range hist {
					pairs += n
				}
			}
			if pairs == 0 {
				t.Skip("no detour pairs on this instance")
			}
		})
	}
}

// TestClassificationPartitions checks the class partition covers every
// new-ending path exactly once and that class-B paths really avoid their
// detours.
func TestClassificationPartitions(t *testing.T) {
	for name, g := range analysisGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, tr := range collectTargets(t, g) {
				if tr == nil {
					continue
				}
				tc := ClassifyTarget(g, tr)
				newEnding := 0
				for i := range tr.Records {
					rec := &tr.Records[i]
					if rec.NewEnding && rec.Path != nil &&
						(rec.Kind == replace.KindPiPi || rec.Kind == replace.KindPiD) {
						if rec.Kind == replace.KindPiD && DetourOf(tr, rec) == nil {
							continue
						}
						newEnding++
					}
				}
				if len(tc.Paths) != newEnding {
					t.Fatalf("v=%d: classified %d paths, %d new-ending", tr.V, len(tc.Paths), newEnding)
				}
				total := 0
				for _, n := range tc.Counts {
					total += n
				}
				if total != newEnding {
					t.Fatalf("v=%d: counts sum %d != %d", tr.V, total, newEnding)
				}
				for _, cp := range tc.Paths {
					rec := &tr.Records[cp.RecordIdx]
					if cp.Class == ClassNoDetour {
						det := DetourOf(tr, rec)
						for _, id := range det.EdgeIDs {
							if rec.Path.ContainsEdge(g.EdgeAt(id)) {
								t.Fatalf("v=%d: class-B path intersects its detour", tr.V)
							}
						}
					}
					if cp.Class == ClassIndependent && len(cp.Interferes) > 0 {
						t.Fatalf("v=%d: independent path has interferences", tr.V)
					}
				}
			}
		})
	}
}

// TestDistinctDDivergence asserts Lemma 3.16 across families.
func TestDistinctDDivergence(t *testing.T) {
	for name, g := range analysisGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, tr := range collectTargets(t, g) {
				if tr == nil {
					continue
				}
				if bad := CheckDistinctDDivergence(tr); len(bad) > 0 {
					t.Fatalf("lemma 3.16 violated: %+v", bad[0])
				}
			}
		})
	}
}

// TestKernelClaims asserts Lemma 3.14 (second faults live in the kernel),
// Claim 3.29 (regions ≤ 2·N_D) and Claim 3.28 (first common vertices in W1)
// across families.
func TestKernelClaims(t *testing.T) {
	checked := 0
	for name, g := range analysisGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, tr := range collectTargets(t, g) {
				if tr == nil {
					continue
				}
				rep := CheckKernel(tr)
				checked += rep.Lemma314Checked
				if len(rep.Lemma314Violations) > 0 {
					ri := rep.Lemma314Violations[0]
					t.Fatalf("v=%d: lemma 3.14 violated at record %d (%+v)", tr.V, ri, tr.Records[ri])
				}
				if rep.MaxRegionRatio > 1.0 {
					t.Fatalf("v=%d: region ratio %.2f > 1 (claim 3.29)", tr.V, rep.MaxRegionRatio)
				}
				if rep.FirstCommonOutsideW > 0 {
					t.Fatalf("v=%d: claim 3.28 violated %d times", tr.V, rep.FirstCommonOutsideW)
				}
			}
		})
	}
}

func TestBuildKernelBasics(t *testing.T) {
	// Two detours sharing a tail vertex: second is truncated at the shared
	// vertex, first is its breaker.
	d1 := mkDetour(2, 6, 100, 101, 102, 103)
	d2 := mkDetour(0, 6, 104, 105, 102, 103)
	k := BuildKernel([]*replace.Detour{d1, d2})
	// (x,y)-order: d1 (x=2) before d2 (x=0).
	if k.Detours[0] != d1 || k.Detours[1] != d2 {
		t.Fatalf("kernel order wrong")
	}
	if k.Truncated[0] || !k.Truncated[1] {
		t.Fatalf("truncation wrong: %v", k.Truncated)
	}
	if k.WIdx[1] != 2 { // d2 hits vertex 102 at position 2
		t.Fatalf("WIdx[1] = %d", k.WIdx[1])
	}
	if k.Breaker[1] != 0 {
		t.Fatalf("breaker = %d", k.Breaker[1])
	}
	if !k.HasVertex(105) || k.HasVertex(999) {
		t.Fatalf("vertex membership wrong")
	}
	// Regions: d1 contributes one fragment split at 102 (a W1 vertex):
	// [100..102], [102,103]; d2 contributes [104..102]. Total 3 ≤ 2·2.
	if r := k.Regions(); r != 3 {
		t.Fatalf("regions = %d, want 3", r)
	}
	if k.NumVertices() != 6 {
		t.Fatalf("kernel vertices = %d", k.NumVertices())
	}
}

func TestBuildKernelSkipsInvalid(t *testing.T) {
	k := BuildKernel([]*replace.Detour{nil, {Valid: false}})
	if len(k.Detours) != 0 || k.Regions() != 0 {
		t.Fatalf("invalid detours not skipped")
	}
}
