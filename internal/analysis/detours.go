// Package analysis implements the paper's structural theory as executable
// checks and classifiers: pairwise detour configurations (Definition 3.7,
// Figures 3–4), the interference relation and the five-class partition of
// new-ending paths (Section 3.3.2, Figure 7), and the kernel subgraph with
// its truncated detours, breakers and regions (Section 3.2.2, Figure 5).
//
// The experiment harness uses it to regenerate the paper's structural
// claims empirically; the test suite asserts the claims that are theorems
// under the canonical path selection (Claims 3.8, 3.9, 3.29, Lemma 3.14,
// Lemma 3.16).
package analysis

import (
	"fmt"

	"repro/internal/replace"
)

// DetourConfig is the pairwise configuration of two detours per
// Definition 3.7, ordered so the first detour has the smaller x.
type DetourConfig int

// Configurations of Definition 3.7 plus two boundary cases the paper folds
// into neighbors (identical spans arise when two π edges share one detour
// span).
const (
	ConfigNonNested     DetourConfig = iota + 1 // y1 < x2
	ConfigNested                                // x1 < x2 ≤ y2 < y1
	ConfigInterleaved                           // x1 < x2 < y1 < y2
	ConfigXInterleaved                          // x1 = x2 < y1 < y2
	ConfigYInterleaved                          // x1 < x2 < y1 = y2
	ConfigXYInterleaved                         // x1 < y1 = x2 < y2
	ConfigSameSpan                              // x1 = x2, y1 = y2
)

// String implements fmt.Stringer.
func (c DetourConfig) String() string {
	switch c {
	case ConfigNonNested:
		return "non-nested"
	case ConfigNested:
		return "nested"
	case ConfigInterleaved:
		return "interleaved"
	case ConfigXInterleaved:
		return "x-interleaved"
	case ConfigYInterleaved:
		return "y-interleaved"
	case ConfigXYInterleaved:
		return "(x,y)-interleaved"
	case ConfigSameSpan:
		return "same-span"
	default:
		return fmt.Sprintf("DetourConfig(%d)", int(c))
	}
}

// PairReport describes the relationship of an ordered detour pair.
type PairReport struct {
	Config DetourConfig
	// Dependent reports whether the detours share a vertex.
	Dependent bool
	// SameDirection reports, for dependent pairs, whether the common
	// segment is traversed in the same direction by both detours
	// (fw-interleaved vs rev-interleaved, Figure 4). False for
	// independent pairs.
	SameDirection bool
	// Swapped reports that the inputs were reordered so the first has
	// the smaller (x, y).
	Swapped bool
}

// ClassifyDetourPair orders the two detours by (x, then y) position and
// classifies them per Definition 3.7.
func ClassifyDetourPair(a, b *replace.Detour) PairReport {
	rep := PairReport{}
	if b.XPos < a.XPos || (b.XPos == a.XPos && b.YPos < a.YPos) {
		a, b = b, a
		rep.Swapped = true
	}
	x1, y1, x2, y2 := a.XPos, a.YPos, b.XPos, b.YPos
	switch {
	case x1 == x2 && y1 == y2:
		rep.Config = ConfigSameSpan
	case x1 == x2:
		rep.Config = ConfigXInterleaved
	case y1 == y2:
		rep.Config = ConfigYInterleaved
	case y1 < x2:
		rep.Config = ConfigNonNested
	case y1 == x2:
		rep.Config = ConfigXYInterleaved
	case y2 < y1:
		rep.Config = ConfigNested
	default:
		rep.Config = ConfigInterleaved
	}
	onA := make(map[int]int, len(a.Path))
	for i, v := range a.Path {
		onA[v] = i
	}
	firstShared, lastShared := -1, -1 // positions on b
	firstOnA, lastOnA := -1, -1
	for i, v := range b.Path {
		if pa, ok := onA[v]; ok {
			if firstShared < 0 {
				firstShared, firstOnA = i, pa
			}
			lastShared, lastOnA = i, pa
		}
	}
	if firstShared < 0 {
		return rep
	}
	rep.Dependent = true
	// Same direction iff positions on A increase along B's traversal.
	rep.SameDirection = lastOnA >= firstOnA
	if firstShared == lastShared {
		// Single shared vertex: direction by convention follows the
		// first-common-vertex equality used in the paper
		// (First(D1,D2) = First(D2,D1) for one shared point).
		rep.SameDirection = true
	}
	return rep
}

// DetourOf returns the detour protecting a record's first fault, or nil.
func DetourOf(tr *replace.TargetResult, rec *replace.Record) *replace.Detour {
	if rec.EIdx < 0 || rec.EIdx >= len(tr.Detours) {
		return nil
	}
	d := &tr.Detours[rec.EIdx]
	if !d.Valid {
		return nil
	}
	return d
}

// DisjointnessViolation records a failed instance of Claim 3.8 / 3.9.
type DisjointnessViolation struct {
	V      int
	I, J   int // π edge indices of the two detours
	Config DetourConfig
}

// CheckDisjointnessClaims verifies Claims 3.8 and 3.9 on a target: nested
// and non-nested detour pairs must be vertex-disjoint. It returns the pairs
// violating the claims (empty on conforming targets) and the histogram of
// configurations observed.
func CheckDisjointnessClaims(tr *replace.TargetResult) ([]DisjointnessViolation, map[DetourConfig]int) {
	hist := make(map[DetourConfig]int)
	var bad []DisjointnessViolation
	for i := range tr.Detours {
		if !tr.Detours[i].Valid {
			continue
		}
		for j := i + 1; j < len(tr.Detours); j++ {
			if !tr.Detours[j].Valid {
				continue
			}
			rep := ClassifyDetourPair(&tr.Detours[i], &tr.Detours[j])
			hist[rep.Config]++
			if (rep.Config == ConfigNonNested || rep.Config == ConfigNested) && rep.Dependent {
				bad = append(bad, DisjointnessViolation{V: tr.V, I: i, J: j, Config: rep.Config})
			}
		}
	}
	return bad, hist
}
