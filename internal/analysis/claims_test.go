package analysis

import (
	"testing"
)

// TestSingleSuffixDisjointHolds asserts Observation 1.4 across families.
func TestSingleSuffixDisjointHolds(t *testing.T) {
	for name, g := range analysisGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, tr := range collectTargets(t, g) {
				if tr == nil {
					continue
				}
				if v := CheckSingleSuffixDisjoint(tr); v > 0 {
					t.Fatalf("v=%d: %d suffix overlaps (Obs 1.4)", tr.V, v)
				}
			}
		})
	}
}

// TestExcludedSegmentsHold asserts Claim 3.12 across families.
func TestExcludedSegmentsHold(t *testing.T) {
	pairsSeen := 0
	for name, g := range analysisGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, tr := range collectTargets(t, g) {
				if tr == nil {
					continue
				}
				bad := CheckExcludedSegments(tr)
				if len(bad) > 0 {
					b := bad[0]
					t.Fatalf("v=%d: claim 3.12 violated: record %d detour %d vs %d",
						b.V, b.RecordIdx, b.DetourI, b.OtherJ)
				}
				pairsSeen++
			}
		})
	}
	if pairsSeen == 0 {
		t.Skip("no targets exercised")
	}
}

// TestIndependentMonotonicHolds asserts the Lemma 3.46 length ordering
// across families.
func TestIndependentMonotonicHolds(t *testing.T) {
	for name, g := range analysisGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, tr := range collectTargets(t, g) {
				if tr == nil {
					continue
				}
				bad := CheckIndependentMonotonic(g, tr)
				if len(bad) > 0 {
					b := bad[0]
					t.Fatalf("v=%d: lemma 3.46 violated: rec %d len %d vs rec %d len %d",
						b.V, b.RecA, b.LenA, b.RecB, b.LenB)
				}
			}
		})
	}
}
