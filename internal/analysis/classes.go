package analysis

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/replace"
)

// PathClass is the five-way partition of new-ending replacement paths
// (Section 3.3.2, Figure 7).
type PathClass int

// The classes A–E of Figure 7.
const (
	ClassPiPi          PathClass = iota + 1 // A: both faults on π(s,v)
	ClassNoDetour                           // B: (π,D) path disjoint from its detour's edges
	ClassIndependent                        // C: interferes with no other new-ending path
	ClassPiInterfering                      // D: π-interferes with every path it interferes with
	ClassDInterfering                       // E: D-interferes with some path (and not π with it)
)

// String implements fmt.Stringer.
func (c PathClass) String() string {
	switch c {
	case ClassPiPi:
		return "A:(pi,pi)"
	case ClassNoDetour:
		return "B:no-detour"
	case ClassIndependent:
		return "C:independent"
	case ClassPiInterfering:
		return "D:pi-interfering"
	case ClassDInterfering:
		return "E:D-interfering"
	default:
		return fmt.Sprintf("PathClass(%d)", int(c))
	}
}

// ClassifiedPath is one new-ending path with its class assignment.
type ClassifiedPath struct {
	RecordIdx int // index into tr.Records
	Class     PathClass
	// Interferes lists (for classes C/D/E) the record indices of
	// new-ending paths this path interferes with (I(P)).
	Interferes []int
}

// TargetClasses is the classification result for one target vertex.
type TargetClasses struct {
	V      int
	Paths  []ClassifiedPath
	Counts map[PathClass]int
}

// ClassifyTarget partitions the new-ending paths of a collected target into
// the five classes of Figure 7. tr must come from a build with path
// collection enabled.
func ClassifyTarget(g *graph.Graph, tr *replace.TargetResult) *TargetClasses {
	out := &TargetClasses{V: tr.V, Counts: make(map[PathClass]int)}

	// Gather new-ending records: (π,π) → class A immediately; (π,D) take
	// part in the interference analysis.
	type piD struct {
		recIdx int
		rec    *replace.Record
		det    *replace.Detour
		// pathEdges: edge IDs of the path; detEdges: edge IDs of D(P).
		pathEdges map[int]bool
		detEdges  map[int]bool
		// f2 is the second fault's edge ID; f2PosOnOwnD its position.
		f2 int
	}
	var piDs []piD
	for i := range tr.Records {
		rec := &tr.Records[i]
		if !rec.NewEnding || rec.Path == nil {
			continue
		}
		switch rec.Kind {
		case replace.KindPiPi:
			out.Paths = append(out.Paths, ClassifiedPath{RecordIdx: i, Class: ClassPiPi})
			out.Counts[ClassPiPi]++
		case replace.KindPiD:
			det := DetourOf(tr, rec)
			if det == nil {
				continue
			}
			p := piD{recIdx: i, rec: rec, det: det, f2: det.EdgeIDs[rec.SecondIdx]}
			p.pathEdges = edgeIDSet(g, rec.Path)
			p.detEdges = make(map[int]bool, len(det.EdgeIDs))
			for _, id := range det.EdgeIDs {
				p.detEdges[id] = true
			}
			piDs = append(piDs, p)
		}
	}

	// Interference: P_i interferes with P_j iff F2(P_j) ∈ P_i \ D(P_i).
	interferes := func(pi, pj *piD) bool {
		return pi.pathEdges[pj.f2] && !pi.detEdges[pj.f2]
	}
	// π-interference: additionally F1(P_i) ∈ π(y(D(P_j)), v), i.e. the
	// first fault's π edge index lies at or below y(D(P_j)).
	piInterferes := func(pi, pj *piD) bool {
		return pi.rec.EIdx >= pj.det.YPos
	}

	for i := range piDs {
		p := &piDs[i]
		// Class B: path disjoint from its detour's edges.
		intersectsOwn := false
		for id := range p.detEdges {
			if p.pathEdges[id] {
				intersectsOwn = true
				break
			}
		}
		cp := ClassifiedPath{RecordIdx: p.recIdx}
		for j := range piDs {
			if i == j {
				continue
			}
			if interferes(p, &piDs[j]) {
				cp.Interferes = append(cp.Interferes, piDs[j].recIdx)
			}
		}
		switch {
		case !intersectsOwn:
			cp.Class = ClassNoDetour
		case len(cp.Interferes) == 0:
			cp.Class = ClassIndependent
		default:
			cp.Class = ClassPiInterfering
			for j := range piDs {
				if i == j {
					continue
				}
				if interferes(p, &piDs[j]) && !piInterferes(p, &piDs[j]) {
					cp.Class = ClassDInterfering
					break
				}
			}
		}
		out.Paths = append(out.Paths, cp)
		out.Counts[cp.Class]++
	}
	return out
}

func edgeIDSet(g *graph.Graph, p interface{ Edges() []graph.Edge }) map[int]bool {
	es := p.Edges()
	out := make(map[int]bool, len(es))
	for _, e := range es {
		if id, ok := g.EdgeID(e.U, e.V); ok {
			out[id] = true
		}
	}
	return out
}

// DivergenceViolation is a failed instance of Lemma 3.16 (distinct
// D-divergence points).
type DivergenceViolation struct {
	V          int
	RecA, RecB int
	C          int // shared divergence vertex
}

// CheckDistinctDDivergence verifies Lemma 3.16: among new-ending (π,D)
// paths that intersect their detours, the D-divergence points are pairwise
// distinct.
func CheckDistinctDDivergence(tr *replace.TargetResult) []DivergenceViolation {
	seen := make(map[int]int) // divergence vertex -> record index
	var bad []DivergenceViolation
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.Kind != replace.KindPiD || !rec.NewEnding || rec.CPos < 0 || rec.UsedFallback {
			continue
		}
		det := DetourOf(tr, rec)
		if det == nil {
			continue
		}
		c := det.Path[rec.CPos]
		if prev, dup := seen[c]; dup {
			bad = append(bad, DivergenceViolation{V: tr.V, RecA: prev, RecB: i, C: c})
		} else {
			seen[c] = i
		}
	}
	return bad
}
