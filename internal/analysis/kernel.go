package analysis

import (
	"sort"

	"repro/internal/replace"
)

// Kernel is the kernel subgraph K(D) of a detour collection (Section
// 3.2.2): detours are added in (x,y)-order, each contributing only its
// prefix up to the first vertex already present.
type Kernel struct {
	// Detours holds the collection in (x,y)-order: decreasing x position,
	// then decreasing y position.
	Detours []*replace.Detour
	// WIdx[i] is the position on Detours[i].Path of its truncation point
	// w_i (the full length for non-truncated detours).
	WIdx []int
	// Truncated[i] reports w_i ≠ y_i.
	Truncated []bool
	// Breaker[i] is the index of a previously added detour whose kept
	// prefix contains w_i (-1 for non-truncated detours).
	Breaker []int

	vertices map[int]bool
	edges    map[int]bool
	special  map[int]bool // X1 ∪ W1: detour starts and truncation points
}

// BuildKernel constructs K(D) for the given detours (invalid detours are
// skipped; input order is irrelevant).
func BuildKernel(dets []*replace.Detour) *Kernel {
	k := &Kernel{
		vertices: make(map[int]bool),
		edges:    make(map[int]bool),
		special:  make(map[int]bool),
	}
	for _, d := range dets {
		if d != nil && d.Valid {
			k.Detours = append(k.Detours, d)
		}
	}
	// (x,y)-order: decreasing x, then decreasing y (Section 3.2.1).
	sort.SliceStable(k.Detours, func(a, b int) bool {
		da, db := k.Detours[a], k.Detours[b]
		if da.XPos != db.XPos {
			return da.XPos > db.XPos
		}
		return da.YPos > db.YPos
	})
	k.WIdx = make([]int, len(k.Detours))
	k.Truncated = make([]bool, len(k.Detours))
	k.Breaker = make([]int, len(k.Detours))
	// owner[v] = index of the detour whose kept prefix first included v.
	owner := make(map[int]int)
	for i, d := range k.Detours {
		w := len(d.Path) - 1
		for pos := 0; pos < len(d.Path); pos++ {
			if k.vertices[d.Path[pos]] {
				w = pos
				break
			}
		}
		k.WIdx[i] = w
		k.Truncated[i] = w != len(d.Path)-1
		k.Breaker[i] = -1
		if k.Truncated[i] {
			if j, ok := owner[d.Path[w]]; ok {
				k.Breaker[i] = j
			}
		}
		for pos := 0; pos <= w; pos++ {
			v := d.Path[pos]
			if !k.vertices[v] {
				k.vertices[v] = true
				owner[v] = i
			}
		}
		for pos := 0; pos < w; pos++ {
			k.edges[d.EdgeIDs[pos]] = true
		}
		k.special[d.Path[0]] = true // x_i
		k.special[d.Path[w]] = true // w_i
	}
	return k
}

// HasVertex reports whether v was added to the kernel.
func (k *Kernel) HasVertex(v int) bool { return k.vertices[v] }

// HasEdge reports whether the edge ID was added to the kernel.
func (k *Kernel) HasEdge(id int) bool { return k.edges[id] }

// NumVertices returns the kernel's vertex count.
func (k *Kernel) NumVertices() int { return len(k.vertices) }

// ContainsDetourPrefix reports whether the detour's prefix up to path
// position upto (inclusive) is entirely inside the kernel, edges included.
func (k *Kernel) ContainsDetourPrefix(d *replace.Detour, upto int) bool {
	if upto >= len(d.Path) {
		return false
	}
	for pos := 0; pos < upto; pos++ {
		if !k.edges[d.EdgeIDs[pos]] {
			return false
		}
	}
	return k.vertices[d.Path[upto]]
}

// Regions decomposes the kernel into its maximal detour fragments between
// special vertices (X1 ∪ W1) and returns their count (Claim 3.29 bounds it
// by 2·|D| for y-interleaved collections).
func (k *Kernel) Regions() int {
	regions := 0
	for i, d := range k.Detours {
		w := k.WIdx[i]
		if w == 0 {
			continue // degenerate fragment: single vertex, no edges
		}
		regions++
		for pos := 1; pos < w; pos++ {
			if k.special[d.Path[pos]] {
				regions++
			}
		}
	}
	return regions
}

// KernelReport aggregates the kernel-level claims for one target.
type KernelReport struct {
	V int
	// Lemma314Checked counts new-ending (π,D) paths tested; violations
	// lists record indices whose detour prefix up to the second fault is
	// not inside K(D) (Lemma 3.14 says none).
	Lemma314Checked    int
	Lemma314Violations []int
	// YGroups is the number of distinct detour end positions; for each
	// group Claim 3.29 bounds regions by 2·group size. MaxRegionRatio is
	// the max over groups of regions/(2·size).
	YGroups        int
	MaxRegionRatio float64
	// FirstCommonOutsideW counts detour pairs in a y-group whose first
	// common vertex is not a W1 endpoint (Claim 3.28 says zero).
	FirstCommonOutsideW int
}

// CheckKernel runs the kernel-level claims (Lemma 3.14, Claims 3.28–3.29)
// on a collected target.
func CheckKernel(tr *replace.TargetResult) KernelReport {
	rep := KernelReport{V: tr.V}

	// Collection D: detours of the new-ending (π,D) paths.
	detIdx := make(map[int]bool)
	var recs []int
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.Kind == replace.KindPiD && rec.NewEnding && rec.Path != nil && !rec.UsedFallback {
			if d := DetourOf(tr, rec); d != nil {
				detIdx[rec.EIdx] = true
				recs = append(recs, i)
			}
		}
	}
	var dets []*replace.Detour
	for i := range tr.Detours {
		if detIdx[i] {
			dets = append(dets, &tr.Detours[i])
		}
	}
	k := BuildKernel(dets)
	for _, ri := range recs {
		rec := &tr.Records[ri]
		d := DetourOf(tr, rec)
		rep.Lemma314Checked++
		if !k.ContainsDetourPrefix(d, rec.SecondIdx+1) {
			rep.Lemma314Violations = append(rep.Lemma314Violations, ri)
		}
	}

	// y-groups over ALL valid detours of the target.
	groups := make(map[int][]*replace.Detour)
	for i := range tr.Detours {
		if tr.Detours[i].Valid {
			groups[tr.Detours[i].YPos] = append(groups[tr.Detours[i].YPos], &tr.Detours[i])
		}
	}
	rep.YGroups = len(groups)
	for _, g := range groups {
		gk := BuildKernel(g)
		if n := len(gk.Detours); n > 0 {
			ratio := float64(gk.Regions()) / float64(2*n)
			if ratio > rep.MaxRegionRatio {
				rep.MaxRegionRatio = ratio
			}
		}
		// Claim 3.28: first common vertex of every pair lies in W1.
		w1 := make(map[int]bool)
		for i, d := range gk.Detours {
			w1[d.Path[gk.WIdx[i]]] = true
		}
		for i := 0; i < len(gk.Detours); i++ {
			onI := make(map[int]bool, len(gk.Detours[i].Path))
			for _, v := range gk.Detours[i].Path {
				onI[v] = true
			}
			for j := i + 1; j < len(gk.Detours); j++ {
				first := -1
				for _, v := range gk.Detours[j].Path {
					if onI[v] {
						first = v
						break
					}
				}
				if first >= 0 && !w1[first] {
					rep.FirstCommonOutsideW++
				}
			}
		}
	}
	return rep
}
