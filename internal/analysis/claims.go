package analysis

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/replace"
)

// CheckSingleSuffixDisjoint verifies Observation 1.4 / Obs 3.17: the
// suffixes (from the π-divergence point, excluding v) of new-ending
// single-failure replacement paths are pairwise vertex-disjoint. It returns
// the number of overlapping pairs (0 under canonical selection).
func CheckSingleSuffixDisjoint(tr *replace.TargetResult) int {
	seen := make(map[int]bool)
	violations := 0
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.Kind != replace.KindSingle || !rec.NewEnding || rec.Path == nil || rec.BPos < 0 {
			continue
		}
		overlap := false
		for j := rec.BPos; j+1 < len(rec.Path); j++ { // exclude the endpoint v
			if seen[rec.Path[j]] && j > rec.BPos {
				overlap = true
			}
		}
		if overlap {
			violations++
		}
		for j := rec.BPos + 1; j+1 < len(rec.Path); j++ {
			seen[rec.Path[j]] = true
		}
	}
	return violations
}

// ExcludedSegmentViolation is a failed instance of Claim 3.12: a new-ending
// path whose second fault lies on the excluded suffix of its detour.
type ExcludedSegmentViolation struct {
	V         int
	RecordIdx int
	DetourI   int // π-edge index of D(P) (= D1)
	OtherJ    int // π-edge index of the detour inducing the exclusion (= D2)
}

// CheckExcludedSegments verifies Claim 3.12: for dependent detours D1, D2
// with x1 ≤ x2 ≤ y1 < y2, no new-ending path P with D(P) = D1 has its
// second fault on D1[w, y1], where w is the last vertex on D2 common to D1.
func CheckExcludedSegments(tr *replace.TargetResult) []ExcludedSegmentViolation {
	var out []ExcludedSegmentViolation
	// Group new-ending (π,D) records by detour index.
	byDet := make(map[int][]int)
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.Kind == replace.KindPiD && rec.NewEnding && !rec.UsedFallback && rec.Path != nil {
			byDet[rec.EIdx] = append(byDet[rec.EIdx], i)
		}
	}
	for i := range tr.Detours {
		d1 := &tr.Detours[i]
		if !d1.Valid || len(byDet[i]) == 0 {
			continue
		}
		pos1 := make(map[int]int, len(d1.Path))
		for p, v := range d1.Path {
			pos1[v] = p
		}
		for j := range tr.Detours {
			if i == j {
				continue
			}
			d2 := &tr.Detours[j]
			if !d2.Valid {
				continue
			}
			// Require x1 ≤ x2 ≤ y1 < y2 (interleaved, x-interleaved or
			// (x,y)-interleaved with D1 on top).
			if !(d1.XPos <= d2.XPos && d2.XPos <= d1.YPos && d1.YPos < d2.YPos) {
				continue
			}
			// w = last vertex on D2 that is common to D1.
			w := -1
			for _, v := range d2.Path {
				if _, ok := pos1[v]; ok {
					w = v
				}
			}
			if w < 0 {
				continue // independent pair: no exclusion induced
			}
			wPos := pos1[w]
			for _, ri := range byDet[i] {
				rec := &tr.Records[ri]
				// Second fault edge occupies positions [SecondIdx, SecondIdx+1] on D1.
				if rec.SecondIdx >= wPos {
					out = append(out, ExcludedSegmentViolation{
						V: tr.V, RecordIdx: ri, DetourI: i, OtherJ: j,
					})
				}
			}
		}
	}
	return out
}

// MonotonicityViolation is a failed instance of Lemma 3.46 (via Lemma
// 3.44): independent new-ending paths with strictly higher π-divergence
// points must be strictly longer.
type MonotonicityViolation struct {
	V          int
	RecA, RecB int
	LenA, LenB int
}

// CheckIndependentMonotonic verifies the b-ordering part of Lemma 3.46 on
// the class-C (independent) new-ending paths of a classified target: if
// b(P_i) is strictly above b(P_j) on π, then |P_i| > |P_j|.
func CheckIndependentMonotonic(g *graph.Graph, tr *replace.TargetResult) []MonotonicityViolation {
	tc := ClassifyTarget(g, tr)
	type entry struct {
		recIdx, bPos, length int
	}
	var es []entry
	for _, cp := range tc.Paths {
		if cp.Class != ClassIndependent {
			continue
		}
		rec := &tr.Records[cp.RecordIdx]
		if rec.BPos < 0 || rec.UsedFallback {
			continue
		}
		es = append(es, entry{recIdx: cp.RecordIdx, bPos: rec.BPos, length: rec.Path.Len()})
	}
	sort.Slice(es, func(a, b int) bool { return es[a].bPos < es[b].bPos })
	var out []MonotonicityViolation
	for a := 0; a < len(es); a++ {
		for b := a + 1; b < len(es); b++ {
			if es[a].bPos < es[b].bPos && es[a].length <= es[b].length {
				out = append(out, MonotonicityViolation{
					V: tr.V, RecA: es[a].recIdx, RecB: es[b].recIdx,
					LenA: es[a].length, LenB: es[b].length,
				})
			}
		}
	}
	return out
}
