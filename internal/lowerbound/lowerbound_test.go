package lowerbound

import (
	"context"
	"errors"

	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/verify"
)

func TestBuildTowerRejectsBadArgs(t *testing.T) {
	if _, _, err := BuildTower(0, 3); err == nil {
		t.Fatal("f=0 accepted")
	}
	if _, _, err := BuildTower(1, 1); err == nil {
		t.Fatal("d=1 accepted")
	}
}

func TestTowerSizeMatchesConstruction(t *testing.T) {
	for _, tc := range []struct{ f, d int }{{1, 2}, {1, 3}, {1, 5}, {2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}} {
		g, tower, err := BuildTower(tc.f, tc.d)
		if err != nil {
			t.Fatalf("f=%d d=%d: %v", tc.f, tc.d, err)
		}
		if g.N() != TowerSize(tc.f, tc.d) {
			t.Errorf("f=%d d=%d: N=%d, TowerSize=%d", tc.f, tc.d, g.N(), TowerSize(tc.f, tc.d))
		}
		if len(tower.Leaves) != NumLeaves(tc.f, tc.d) {
			t.Errorf("f=%d d=%d: leaves=%d, want %d", tc.f, tc.d, len(tower.Leaves), NumLeaves(tc.f, tc.d))
		}
		// Towers are trees: unique paths (Lemma 4.3(1)).
		if g.M() != g.N()-1 {
			t.Errorf("f=%d d=%d: tower not a tree: n=%d m=%d", tc.f, tc.d, g.N(), g.M())
		}
		if !g.ConnectedFrom(tower.Root) {
			t.Errorf("f=%d d=%d: tower disconnected", tc.f, tc.d)
		}
	}
}

// TestLemma43 checks all four properties of Lemma 4.3 on several towers.
func TestLemma43(t *testing.T) {
	for _, tc := range []struct{ f, d int }{{1, 4}, {2, 3}, {3, 2}} {
		g, tower, err := BuildTower(tc.f, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		r := bfs.NewRunner(g)
		r.Run(tower.Root, nil, nil)
		// (4) depths strictly decrease left to right, and match BFS.
		for i, lf := range tower.Leaves {
			if int32(lf.Depth) != r.Dist(lf.V) {
				t.Fatalf("f=%d d=%d leaf %d: recorded depth %d, BFS %d", tc.f, tc.d, i, lf.Depth, r.Dist(lf.V))
			}
			if i > 0 && tower.Leaves[i-1].Depth <= lf.Depth {
				t.Fatalf("f=%d d=%d: depths not strictly decreasing at leaf %d", tc.f, tc.d, i)
			}
		}
		for j, lf := range tower.Leaves {
			if len(lf.Label) > tc.f {
				t.Fatalf("leaf %d label too large: %d > f=%d", j, len(lf.Label), tc.f)
			}
			faults := make([]int, 0, len(lf.Label))
			for _, e := range lf.Label {
				id, ok := g.EdgeID(e.U, e.V)
				if !ok {
					t.Fatalf("label edge %v missing from tower", e)
				}
				faults = append(faults, id)
			}
			r.Run(tower.Root, faults, nil)
			// (2) the labelled leaf keeps its exact distance.
			if r.Dist(lf.V) != int32(lf.Depth) {
				t.Fatalf("f=%d d=%d leaf %d: dist under own label = %d, want %d",
					tc.f, tc.d, j, r.Dist(lf.V), lf.Depth)
			}
			// (3) every leaf to the right is disconnected; every leaf to
			// the left keeps its distance.
			for i, other := range tower.Leaves {
				switch {
				case i > j:
					if r.Dist(other.V) != bfs.Unreachable {
						t.Fatalf("f=%d d=%d: leaf %d survives label of leaf %d", tc.f, tc.d, i, j)
					}
				case i < j:
					if r.Dist(other.V) != int32(other.Depth) {
						t.Fatalf("f=%d d=%d: left leaf %d distance changed under label of %d", tc.f, tc.d, i, j)
					}
				}
			}
		}
	}
}

func TestNewInstanceSizing(t *testing.T) {
	for _, tc := range []struct{ f, n int }{{1, 60}, {1, 200}, {2, 120}, {2, 400}, {3, 700}} {
		inst, err := NewInstance(tc.f, tc.n)
		if err != nil {
			t.Fatalf("f=%d n=%d: %v", tc.f, tc.n, err)
		}
		if inst.G.N() > tc.n {
			t.Fatalf("f=%d n=%d: built %d vertices", tc.f, tc.n, inst.G.N())
		}
		if len(inst.X) < 1 {
			t.Fatalf("f=%d n=%d: empty X", tc.f, tc.n)
		}
		wantB := len(inst.Tower.Leaves) * len(inst.X)
		if len(inst.Bipartite) != wantB {
			t.Fatalf("bipartite count %d, want %d", len(inst.Bipartite), wantB)
		}
		if !inst.G.ConnectedFrom(inst.Source) {
			t.Fatalf("instance disconnected")
		}
	}
}

func TestNewInstanceTooSmall(t *testing.T) {
	if _, err := NewInstance(2, 20); err == nil {
		t.Fatal("tiny n accepted")
	}
	if _, err := NewInstance(0, 100); err == nil {
		t.Fatal("f=0 accepted")
	}
	if _, err := NewInstanceD(2, 2, 45); err == nil {
		t.Fatal("no room for X accepted")
	}
}

// TestBipartiteEdgesNecessary is the heart of Theorem 4.1: for every leaf
// and every x, under the leaf's necessity fault set the unique shortest
// s–x route runs through that leaf, so removing the bipartite edge
// lengthens the distance.
func TestBipartiteEdgesNecessary(t *testing.T) {
	for _, tc := range []struct{ f, n int }{{1, 80}, {2, 130}} {
		inst, err := NewInstance(tc.f, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		g := inst.G
		r := bfs.NewRunner(g)
		for l, lf := range inst.Tower.Leaves {
			faults := inst.FaultSetFor(l)
			if len(faults) > tc.f {
				t.Fatalf("f=%d leaf %d: fault set size %d exceeds f", tc.f, l, len(faults))
			}
			r.Run(inst.Source, faults, nil)
			for xi, x := range inst.X {
				want := int32(lf.Depth + 1)
				if got := r.Dist(x); got != want {
					t.Fatalf("f=%d leaf %d x%d: dist under faults = %d, want %d", tc.f, l, xi, got, want)
				}
				// Removing the bipartite edge must strictly lengthen it.
				eid := inst.BipartiteEdge(l, xi)
				r.Run(inst.Source, append([]int{eid}, faults...), nil)
				if got := r.Dist(x); got != bfs.Unreachable && got <= want {
					t.Fatalf("f=%d leaf %d x%d: edge not necessary (dist %d)", tc.f, l, xi, got)
				}
				r.Run(inst.Source, faults, nil) // restore for next x
			}
		}
	}
}

// TestDualStructureOnInstanceContainsBipartite builds the Theorem-1.1
// structure on G*_2 and checks it retains every bipartite edge and verifies.
func TestDualStructureOnInstanceContainsBipartite(t *testing.T) {
	inst, err := NewInstance(2, 110)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.BuildDual(inst.G, inst.Source, &core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range inst.Bipartite {
		if !st.Edges.Has(id) {
			e := inst.G.EdgeAt(id)
			t.Fatalf("dual structure dropped necessary bipartite edge %v", e)
		}
	}
	rep := verify.Structure(inst.G, st, []int{inst.Source}, 2, nil)
	if !rep.OK {
		t.Fatalf("structure on G*_2 fails verification: %v", rep.Violations)
	}
}

func TestMultiInstance(t *testing.T) {
	mi, err := NewMultiInstance(1, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(mi.Sources) != 3 {
		t.Fatalf("sources = %v", mi.Sources)
	}
	if mi.G.N() > 300 {
		t.Fatalf("oversized: %d", mi.G.N())
	}
	r := bfs.NewRunner(mi.G)
	// Necessity per tower: sample every leaf of each tower with X[0].
	for ti := range mi.Towers {
		tw := &mi.Towers[ti]
		for l, lf := range tw.Leaves {
			faults := mi.FaultSetFor(ti, l)
			if len(faults) > mi.F {
				t.Fatalf("tower %d leaf %d: |F|=%d > f", ti, l, len(faults))
			}
			r.Run(tw.Root, faults, nil)
			want := int32(lf.Depth + 1)
			if got := r.Dist(mi.X[0]); got != want {
				t.Fatalf("tower %d leaf %d: dist = %d, want %d", ti, l, got, want)
			}
			eid, ok := mi.G.EdgeID(lf.V, mi.X[0])
			if !ok {
				t.Fatalf("missing bipartite edge")
			}
			r.Run(tw.Root, append([]int{eid}, faults...), nil)
			if got := r.Dist(mi.X[0]); got != bfs.Unreachable && got <= want {
				t.Fatalf("tower %d leaf %d: edge not necessary", ti, l)
			}
		}
	}
}

func TestMultiInstanceErrors(t *testing.T) {
	if _, err := NewMultiInstance(1, 0, 100); err == nil {
		t.Fatal("σ=0 accepted")
	}
	if _, err := NewMultiInstance(2, 5, 60); err == nil {
		t.Fatal("tiny n accepted")
	}
}

// TestInstanceCancelled: the quadratic bipartite enumeration honors its
// context (lbgen's SIGINT/-timeout path); a live context changes nothing.
func TestInstanceCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewInstanceCtx(ctx, 2, 300); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewInstanceCtx: err = %v, want context.Canceled", err)
	}
	if _, err := NewMultiInstanceCtx(ctx, 1, 2, 400); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewMultiInstanceCtx: err = %v, want context.Canceled", err)
	}
	plain, err := NewInstance(2, 300)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := NewInstanceCtx(context.Background(), 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if plain.G.M() != ctxed.G.M() || len(plain.Bipartite) != len(ctxed.Bipartite) {
		t.Fatalf("ctx-threaded instance differs: m %d vs %d", plain.G.M(), ctxed.G.M())
	}
}
