package lowerbound

import (
	"context"
	"fmt"

	"repro/internal/cancel"
	"repro/internal/graph"
)

// Instance is the adversarial single-source graph G*_f of Theorem 4.1
// (σ = 1): a tower G_f(d), a hub v* adjacent to the tower's bottom vertex
// and to every x ∈ X, and a complete bipartite graph between X and the
// tower's leaves. Every bipartite edge is necessary in any f-failure FT-BFS
// structure rooted at Source.
type Instance struct {
	G      *graph.Graph
	F      int
	Source int
	Tower  Tower
	VStar  int
	X      []int
	// Bipartite holds the IDs of the X×Leaves edges, grouped leaf-major:
	// Bipartite[l*len(X)+x] is the edge between leaf l and X[x].
	Bipartite []int
}

// NewInstance builds G*_f with roughly n vertices (never more). It chooses
// the largest tower degree d such that the tower occupies at most half the
// vertex budget, mirroring the paper's d = Θ((n/2c)^{1/(f+1)}).
func NewInstance(f, n int) (*Instance, error) {
	return NewInstanceCtx(context.Background(), f, n)
}

// NewInstanceCtx is NewInstance with cooperative cancellation: the
// Θ(leaves · |X|) bipartite enumeration — the only part that grows beyond
// linear — polls ctx at an amortized cadence and returns ctx.Err() once
// cancelled (lbgen's SIGINT/-timeout path).
func NewInstanceCtx(ctx context.Context, f, n int) (*Instance, error) {
	if f < 1 {
		return nil, fmt.Errorf("lowerbound: f must be ≥ 1, got %d", f)
	}
	d := 2
	for TowerSize(f, d+1) <= n/2 {
		d++
	}
	if TowerSize(f, d) > n/2 {
		return nil, fmt.Errorf("lowerbound: n=%d too small for f=%d (need ≥ %d)", n, f, 2*TowerSize(f, 2)+2)
	}
	return newInstanceD(ctx, f, d, n)
}

// NewInstanceD builds G*_f with an explicit tower degree d; the remaining
// vertex budget becomes X.
func NewInstanceD(f, d, n int) (*Instance, error) {
	return newInstanceD(context.Background(), f, d, n)
}

func newInstanceD(ctx context.Context, f, d, n int) (*Instance, error) {
	if f < 1 || d < 2 {
		return nil, fmt.Errorf("lowerbound: need f ≥ 1, d ≥ 2; got f=%d d=%d", f, d)
	}
	ts := TowerSize(f, d)
	chi := n - ts - 1
	if chi < 1 {
		return nil, fmt.Errorf("lowerbound: n=%d leaves no room for X (tower %d vertices)", n, ts)
	}
	b := &builder{}
	t := buildTower(b, f, d)
	vstar := b.vertex()
	b.edge(t.Last, vstar)
	xs := make([]int, chi)
	for i := range xs {
		xs[i] = b.vertex()
		b.edge(vstar, xs[i])
	}
	poll := cancel.New(ctx, 1024) // bipartite units are cheap appends
	for _, lf := range t.Leaves {
		for _, x := range xs {
			if err := poll.Poll(); err != nil {
				return nil, err
			}
			b.edge(lf.V, x)
		}
	}
	g, err := b.graph()
	if err != nil {
		return nil, err
	}
	inst := &Instance{G: g, F: f, Source: t.Root, Tower: t, VStar: vstar, X: xs}
	inst.Bipartite = make([]int, 0, len(t.Leaves)*len(xs))
	for _, lf := range t.Leaves {
		for _, x := range xs {
			if err := poll.Poll(); err != nil {
				return nil, err
			}
			id, ok := g.EdgeID(lf.V, x)
			if !ok {
				return nil, fmt.Errorf("lowerbound: missing bipartite edge (%d,%d)", lf.V, x)
			}
			inst.Bipartite = append(inst.Bipartite, id)
		}
	}
	return inst, nil
}

// VStarEdgeID returns the ID of the (tower bottom, v*) edge.
func (in *Instance) VStarEdgeID() int {
	id, _ := in.G.EdgeID(in.Tower.Last, in.VStar)
	return id
}

// FaultSetFor returns the fault set (edge IDs, |F| ≤ f) under which every
// bipartite edge of the given leaf is necessary: the leaf's Lemma-4.3 label,
// plus the v*-edge when the label does not already cut the top-level path.
func (in *Instance) FaultSetFor(leafIdx int) []int {
	lf := in.Tower.Leaves[leafIdx]
	out := make([]int, 0, len(lf.Label)+1)
	for _, e := range lf.Label {
		id, ok := in.G.EdgeID(e.U, e.V)
		if ok {
			out = append(out, id)
		}
	}
	if !lf.TopCut {
		out = append(out, in.VStarEdgeID())
	}
	return out
}

// BipartiteEdge returns the edge ID between leaf leafIdx and X[xIdx].
func (in *Instance) BipartiteEdge(leafIdx, xIdx int) int {
	return in.Bipartite[leafIdx*len(in.X)+xIdx]
}

// MultiInstance is the σ-source construction of Theorem 4.1: σ towers
// sharing one hub v* and one X block, with X completely joined to every
// tower's leaves.
type MultiInstance struct {
	G       *graph.Graph
	F       int
	Sources []int
	Towers  []Tower
	VStar   int
	X       []int
	// BipartiteCount is the total number of X×leaf edges.
	BipartiteCount int
}

// NewMultiInstance builds the σ-source instance with roughly n vertices,
// sizing each tower to Θ((n/2σ)^{1/(f+1)}).
func NewMultiInstance(f, sigma, n int) (*MultiInstance, error) {
	return NewMultiInstanceCtx(context.Background(), f, sigma, n)
}

// NewMultiInstanceCtx is NewMultiInstance with cooperative cancellation of
// the bipartite enumeration (see NewInstanceCtx).
func NewMultiInstanceCtx(ctx context.Context, f, sigma, n int) (*MultiInstance, error) {
	if f < 1 || sigma < 1 {
		return nil, fmt.Errorf("lowerbound: need f ≥ 1, σ ≥ 1; got f=%d σ=%d", f, sigma)
	}
	d := 2
	for sigma*TowerSize(f, d+1) <= n/2 {
		d++
	}
	if sigma*TowerSize(f, d) > n/2 {
		return nil, fmt.Errorf("lowerbound: n=%d too small for f=%d σ=%d", n, f, sigma)
	}
	chi := n - sigma*TowerSize(f, d) - 1
	b := &builder{}
	towers := make([]Tower, sigma)
	for i := range towers {
		towers[i] = buildTower(b, f, d)
	}
	vstar := b.vertex()
	for i := range towers {
		b.edge(towers[i].Last, vstar)
	}
	xs := make([]int, chi)
	for i := range xs {
		xs[i] = b.vertex()
		b.edge(vstar, xs[i])
	}
	count := 0
	poll := cancel.New(ctx, 1024) // bipartite units are cheap appends
	for i := range towers {
		for _, lf := range towers[i].Leaves {
			for _, x := range xs {
				if err := poll.Poll(); err != nil {
					return nil, err
				}
				b.edge(lf.V, x)
				count++
			}
		}
	}
	g, err := b.graph()
	if err != nil {
		return nil, err
	}
	mi := &MultiInstance{G: g, F: f, Towers: towers, VStar: vstar, X: xs, BipartiteCount: count}
	for i := range towers {
		mi.Sources = append(mi.Sources, towers[i].Root)
	}
	return mi, nil
}

// FaultSetFor returns the necessity fault set for the given tower and leaf,
// relative to that tower's source.
func (mi *MultiInstance) FaultSetFor(tower, leafIdx int) []int {
	t := &mi.Towers[tower]
	lf := t.Leaves[leafIdx]
	out := make([]int, 0, len(lf.Label)+1)
	for _, e := range lf.Label {
		if id, ok := mi.G.EdgeID(e.U, e.V); ok {
			out = append(out, id)
		}
	}
	if !lf.TopCut {
		if id, ok := mi.G.EdgeID(t.Last, mi.VStar); ok {
			out = append(out, id)
		}
	}
	return out
}
