// Package lowerbound implements the Section-4 lower-bound constructions:
// the recursive tower G_f(d) with its leaf labels (Lemma 4.3), the
// adversarial single-source instance G*_f (Figures 10–12) whose every
// bipartite edge is necessary in any f-failure FT-BFS structure, and the
// multi-source variant of Theorem 4.1.
//
// One deliberate deviation from the paper's text, recorded in DESIGN.md §5:
// the connector paths Q^f_i have length (d-i)·height(G_{f-1}(d)) + 1 rather
// than (d-i)·depth(G_{f-1}(d)), so the i = d connector is a real edge and
// root-to-leaf path lengths remain strictly monotone decreasing from left to
// right — the property Lemma 4.3(4) needs. The asymptotics are unchanged.
package lowerbound

//ftbfs:builders

import (
	"fmt"

	"repro/internal/graph"
)

// Leaf describes one terminal of a tower.
type Leaf struct {
	// V is the leaf vertex.
	V int
	// Label is the fault set of Lemma 4.3 as vertex pairs: failing
	// exactly these edges preserves the root-to-this-leaf path while
	// destroying every root-to-leaf path strictly to the right.
	Label []graph.Edge
	// TopCut reports whether Label contains an edge of the tower's
	// top-level path; when it does not, reaching the top path's last
	// vertex from the root stays possible under Label, so necessity
	// fault sets must additionally cut the v*-edge.
	TopCut bool
	// Depth is the root-to-leaf distance.
	Depth int
}

// Tower is the recursive graph G_f(d) of Section 4, embedded in a graph.
type Tower struct {
	F, D int
	// Root is the source-side end u^f_1 of the top-level path.
	Root int
	// Last is the bottom end u^f_d of the top-level path (v* attaches
	// here in the adversarial instance).
	Last int
	// Leaves lists the terminals left to right; root-to-leaf distances
	// strictly decrease along this order (Lemma 4.3(4)).
	Leaves []Leaf
	// Height is the maximum root-to-leaf distance.
	Height int
}

// builder accumulates vertices and edges before materializing a Graph.
type builder struct {
	n     int
	edges [][2]int
}

func (b *builder) vertex() int {
	v := b.n
	b.n++
	return v
}

func (b *builder) edge(u, v int) { b.edges = append(b.edges, [2]int{u, v}) }

// pathFrom attaches a fresh path of `length` edges starting at u and returns
// the far endpoint. length must be ≥ 1.
func (b *builder) pathFrom(u, length int) int {
	cur := u
	for i := 0; i < length; i++ {
		nxt := b.vertex()
		b.edge(cur, nxt)
		cur = nxt
	}
	return cur
}

func (b *builder) graph() (*graph.Graph, error) {
	gb := graph.NewBuilder(b.n)
	for _, e := range b.edges {
		if _, err := gb.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("lowerbound: %w", err)
		}
	}
	return gb.Freeze(), nil
}

// q1Len is the length of the level-1 pendant path Q^1_i (1-based i).
func q1Len(d, i int) int { return 6 + 2*(d-i) }

// towerHeight returns the maximum root-to-leaf distance of G_f(d).
func towerHeight(f, d int) int {
	if f == 1 {
		return q1Len(d, 1) // deepest leaf hangs off the root
	}
	return d*towerHeight(f-1, d) + 1
}

// TowerSize returns the number of vertices of G_f(d) without building it.
// A pendant/connector path of length L contributes L fresh vertices.
func TowerSize(f, d int) int {
	if f == 1 {
		s := d
		for i := 1; i <= d; i++ {
			s += q1Len(d, i)
		}
		return s
	}
	h := towerHeight(f-1, d)
	s := d
	for i := 1; i <= d; i++ {
		s += (d-i)*h + 1
	}
	return s + d*TowerSize(f-1, d)
}

// NumLeaves returns d^f, the leaf count of G_f(d).
func NumLeaves(f, d int) int {
	out := 1
	for i := 0; i < f; i++ {
		out *= d
	}
	return out
}

// buildTower appends G_f(d) to b and returns its description.
// Requires f ≥ 1 and d ≥ 2.
func buildTower(b *builder, f, d int) Tower {
	t := Tower{F: f, D: d}
	top := make([]int, d)
	for i := range top {
		top[i] = b.vertex()
	}
	for i := 0; i+1 < d; i++ {
		b.edge(top[i], top[i+1])
	}
	t.Root, t.Last = top[0], top[d-1]

	if f == 1 {
		for i := 0; i < d; i++ {
			z := b.pathFrom(top[i], q1Len(d, i+1))
			leaf := Leaf{V: z, Depth: i + q1Len(d, i+1)}
			if i+1 < d {
				leaf.Label = []graph.Edge{{U: top[i], V: top[i+1]}}
				leaf.TopCut = true
			}
			t.Leaves = append(t.Leaves, leaf)
		}
		t.Height = t.Leaves[0].Depth
		return t
	}

	h := towerHeight(f-1, d)
	for i := 0; i < d; i++ {
		qLen := (d-1-i)*h + 1
		attach := b.pathFrom(top[i], qLen)
		sub := buildTower(b, f-1, d)
		b.edge(attach, sub.Root)
		prefix := i + qLen + 1 // edges from t.Root to sub.Root
		for _, lf := range sub.Leaves {
			nl := Leaf{V: lf.V, Depth: prefix + lf.Depth}
			if i+1 < d {
				nl.Label = append([]graph.Edge{{U: top[i], V: top[i+1]}}, lf.Label...)
				nl.TopCut = true
			} else {
				nl.Label = lf.Label
				nl.TopCut = false
			}
			t.Leaves = append(t.Leaves, nl)
		}
	}
	t.Height = t.Leaves[0].Depth
	return t
}

// BuildTower materializes G_f(d) as a standalone graph (root is the source
// for Lemma 4.3 experiments).
//
//lint:ignore ctxpoll tower construction is pure in-memory assembly with no search loops; it finishes in milliseconds at the paper's parameter range
func BuildTower(f, d int) (*graph.Graph, Tower, error) {
	if f < 1 || d < 2 {
		return nil, Tower{}, fmt.Errorf("lowerbound: need f ≥ 1, d ≥ 2; got f=%d d=%d", f, d)
	}
	b := &builder{}
	t := buildTower(b, f, d)
	g, err := b.graph()
	if err != nil {
		return nil, Tower{}, err
	}
	return g, t, nil
}
