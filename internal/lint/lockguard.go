package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard enforces the `// guarded by <mu>` field annotation: a field so
// annotated may only be accessed in functions that visibly hold the named
// mutex. The check is flow-insensitive and intra-function: a function
// "holds" the mutex if its body contains a Lock/RLock-family call on it
// (anywhere — lock ordering and early unlocks are out of scope, see
// DESIGN.md), or if the function is annotated `//ftbfs:holds <mu>`
// documenting that its callers lock. Locals freshly built from a composite
// literal or new() are exempt: an object that has never been shared needs
// no lock. Writes in functions that only ever take the read lock are
// reported separately — an RLock can never justify a mutation.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `guarded by mu` are only accessed with the named mutex visibly held",
	Run:  runLockGuard,
}

type guardedField struct {
	spec       guardSpec
	structName string
}

func runLockGuard(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, fd := range funcDecls(pass.Files) {
		checkLockGuardFunc(pass, fd, guarded)
	}
	return nil
}

// collectGuardedFields maps field objects to their guard annotation and
// validates the annotation grammar (the named mutex must exist).
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	out := make(map[*types.Var]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				spec, ok := parseGuard(field)
				if !ok {
					continue
				}
				if !validateGuard(pass, ts, st, field, spec) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[v] = guardedField{spec: spec, structName: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
	return out
}

// validateGuard checks that the annotation names a mutex that exists: a
// sibling field, or a field of the named package-local type.
func validateGuard(pass *Pass, ts *ast.TypeSpec, st *ast.StructType, field *ast.Field, spec guardSpec) bool {
	if spec.typeName == "" {
		for _, sib := range st.Fields.List {
			for _, name := range sib.Names {
				if name.Name == spec.mutex && isMutexType(pass.Info.TypeOf(sib.Type)) {
					return true
				}
			}
		}
		pass.Reportf(field.Pos(), "field %s is `guarded by %s` but %s has no sync.Mutex/RWMutex field %q",
			fieldName(field), spec.mutex, ts.Name.Name, spec.mutex)
		return false
	}
	obj := pass.Pkg.Scope().Lookup(spec.typeName)
	tn, ok := obj.(*types.TypeName)
	if ok {
		if s, ok := tn.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < s.NumFields(); i++ {
				if s.Field(i).Name() == spec.mutex && isMutexType(s.Field(i).Type()) {
					return true
				}
			}
		}
	}
	pass.Reportf(field.Pos(), "field %s is `guarded by %s.%s` but no such mutex exists in this package",
		fieldName(field), spec.typeName, spec.mutex)
	return false
}

func fieldName(f *ast.Field) string {
	if len(f.Names) > 0 {
		return f.Names[0].Name
	}
	return "(embedded)"
}

func isMutexType(t types.Type) bool {
	return typeFromPath(t, "sync", "Mutex") || typeFromPath(t, "sync", "RWMutex")
}

// lockSet records which mutexes a function body visibly manipulates.
type lockSet struct {
	// sibling holds canonical "<base>.<mu>" strings from lock calls, so an
	// access through the same base expression matches.
	sibling map[string]lockKind
	// byType holds "<TypeName>.<mu>" for lock calls on any value of a
	// package-local named type, matching Type.mu guard annotations.
	byType map[string]lockKind
}

type lockKind struct{ read, write bool }

// scanLocks walks a function body for <expr>.<mu>.Lock()-family calls.
func scanLocks(pass *Pass, body *ast.BlockStmt) lockSet {
	ls := lockSet{sibling: map[string]lockKind{}, byType: map[string]lockKind{}}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var write bool
		switch sel.Sel.Name {
		case "Lock", "Unlock", "TryLock":
			write = true
		case "RLock", "RUnlock", "TryRLock":
		default:
			return true
		}
		mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || !isMutexType(pass.Info.TypeOf(mu)) {
			return true
		}
		merge := func(m map[string]lockKind, key string) {
			k := m[key]
			k.read = k.read || !write
			k.write = k.write || write
			m[key] = k
		}
		merge(ls.sibling, exprPath(mu.X)+"."+mu.Sel.Name)
		if n := namedOf(pass.Info.TypeOf(mu.X)); n != nil && n.Obj().Pkg() == pass.Pkg {
			merge(ls.byType, n.Obj().Name()+"."+mu.Sel.Name)
		}
		return true
	})
	return ls
}

// exprPath canonicalizes a selector/index chain to a comparable string:
// s.graphs[k] -> "s.graphs[]". Unrenderable roots become "?".
func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprPath(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprPath(x.X) + "[]"
	case *ast.StarExpr:
		return exprPath(x.X)
	default:
		return "?"
	}
}

// holdsAnnotations parses every //ftbfs:holds directive of the function
// (one mutex per directive line; both `mu` and `Type.mu` forms).
func holdsAnnotations(fd *ast.FuncDecl) []guardSpec {
	if fd.Doc == nil {
		return nil
	}
	var out []guardSpec
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//ftbfs:holds ")
		if !ok {
			continue
		}
		for _, tok := range strings.Fields(rest) {
			if t, m, ok := strings.Cut(tok, "."); ok {
				out = append(out, guardSpec{typeName: t, mutex: m})
			} else {
				out = append(out, guardSpec{mutex: tok})
			}
		}
	}
	return out
}

func checkLockGuardFunc(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]guardedField) {
	locks := scanLocks(pass, fd.Body)
	holds := holdsAnnotations(fd)
	fresh := freshLocals(pass, fd.Body)
	writes := writeTargets(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		fv, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		gf, ok := guarded[fv]
		if !ok {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			if obj, ok := pass.Info.Uses[root].(*types.Var); ok && fresh[obj] {
				return true
			}
		}
		isWrite := writes[sel]
		muName := gf.spec.String()
		var kind lockKind
		var held bool
		if gf.spec.typeName == "" {
			kind, held = locks.sibling[exprPath(sel.X)+"."+gf.spec.mutex]
			// A method of the guarded struct may also lock through a
			// different alias of the same type; fall back to the type key.
			if !held {
				k2, h2 := locks.byType[gf.structName+"."+gf.spec.mutex]
				kind, held = k2, h2
			}
		} else {
			kind, held = locks.byType[gf.spec.typeName+"."+gf.spec.mutex]
		}
		for _, h := range holds {
			// A bare `guarded by mu` on a field of T is satisfied by either
			// `//ftbfs:holds mu` or the explicit `//ftbfs:holds T.mu`.
			if h == gf.spec ||
				(gf.spec.typeName == "" && h.mutex == gf.spec.mutex &&
					(h.typeName == "" || h.typeName == gf.structName)) {
				return true
			}
		}
		if !held {
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is guarded by %s, but %s neither locks it nor is annotated //ftbfs:holds %s",
				gf.structName, fv.Name(), muName, funcTitle(fd), muName)
			return true
		}
		if isWrite && !kind.write {
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is written while %s only ever takes the read lock on %s",
				gf.structName, fv.Name(), funcTitle(fd), muName)
		}
		return true
	})
}

func (s guardSpec) String() string {
	if s.typeName != "" {
		return s.typeName + "." + s.mutex
	}
	return s.mutex
}

func funcTitle(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		return fmt.Sprintf("method (%s).%s", exprPath(t), fd.Name.Name)
	}
	return "function " + fd.Name.Name
}

// freshLocals returns local variables initialized from a composite
// literal, &composite literal, or new(): values that cannot be shared with
// another goroutine before this function publishes them.
func freshLocals(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	record := func(name *ast.Ident, rhs ast.Expr) {
		v, ok := pass.Info.Defs[name].(*types.Var)
		if !ok {
			return
		}
		switch x := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			out[v] = true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					out[v] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" && pass.Info.Uses[id] == types.Universe.Lookup("new") {
				out[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, name := range st.Names {
					record(name, st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// writeTargets marks the selector expressions that a body mutates:
// assignment left-hand sides (including through an index, which mutates
// the indexed map/slice), ++/--, and delete() arguments.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				out[x] = true
				return
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) > 0 {
				mark(st.Args[0])
			}
		}
		return true
	})
	return out
}
