package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestSeededWholeProgramViolations is the seeded-bug harness for the
// whole-program analyzers: each case plants exactly one violation into a
// clean fixture (an inverted lock pair, a dropped cancel, a reordered
// snapshot field, a deleted facade export) and asserts the suite reports
// it — the right analyzer, the exact planted line, and nothing else.
func TestSeededWholeProgramViolations(t *testing.T) {
	cases := []struct {
		name       string // also the analyzer expected to fire
		fixture    string // testdata/src-relative package dir to mutate
		pkg        string // import path of the mutated package
		cfg        *lint.Config
		old, new   string
		wantMsg    string
		lineOffset int  // expected finding line relative to the mutation
		pkgClause  bool // finding anchors at the package clause instead
	}{
		{
			name:    "lockorder",
			fixture: "wpseed",
			pkg:     "wpseed",
			// Invert sweep: R.mu before S.mu, against the package order
			// established by drain. The cycle is reported at its
			// lexically-first own edge — the planted s.mu.Lock, one line
			// below the start of the mutation.
			old:        "\ts.mu.Lock()\n\tr.mu.Lock()\n\tr.mu.Unlock()\n\ts.mu.Unlock()\n",
			new:        "\tr.mu.Lock()\n\ts.mu.Lock()\n\ts.mu.Unlock()\n\tr.mu.Unlock()\n",
			wantMsg:    "lock-order cycle (potential deadlock): wpseed.R.mu -> wpseed.S.mu -> wpseed.R.mu",
			lineOffset: 1,
		},
		{
			name:    "leakcheck",
			fixture: "wpseed",
			pkg:     "wpseed",
			// Drop the error-path cancel: the return leaks the context.
			old:     "\t\tcancel()\n\t\treturn err\n",
			new:     "\t\treturn err\n",
			wantMsg: "context.CancelFunc cancel (from context.WithTimeout) is not called on this return path",
		},
		{
			name:    "snapschema",
			fixture: "snapschematest/internal/snap",
			pkg:     "snapschematest/internal/snap",
			cfg:     &lint.Config{LockDir: "testdata/src/snapschematest"},
			// Reorder Meta's fields: same data, different wire layout.
			old:     "\tName string `json:\"name\"`\n\tSeed int64  `json:\"seed,omitempty\"`\n",
			new:     "\tSeed int64  `json:\"seed,omitempty\"`\n\tName string `json:\"name\"`\n",
			wantMsg: "snapshot schema drift in struct internal/snap.Meta",
		},
		{
			name:    "apisurface",
			fixture: "apisurfacetest",
			pkg:     "apisurfacetest",
			cfg:     &lint.Config{ModulePath: "apisurfacetest", LockDir: "testdata/src/apisurfacetest"},
			// Delete an exported constructor; the removal is anchored at
			// the package clause (the declaration no longer exists).
			old:       "func New() *Counter { return &Counter{} }\n",
			new:       "",
			wantMsg:   "exported func New has been removed but is still recorded in apisurface.lock",
			pkgClause: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clean := readFixture(t, tc.fixture)
			if n := strings.Count(clean, tc.old); n != 1 {
				t.Fatalf("mutation anchor occurs %d times in %s, need exactly 1:\n%q", n, tc.fixture, tc.old)
			}

			if diags := analyzeWPSeed(t, tc.fixture, tc.pkg, clean, tc.cfg); len(diags) != 0 {
				t.Fatalf("unmutated %s must be clean, got:\n%s", tc.fixture, formatDiags(diags))
			}

			mutated := strings.Replace(clean, tc.old, tc.new, 1)
			diags := analyzeWPSeed(t, tc.fixture, tc.pkg, mutated, tc.cfg)
			if len(diags) != 1 {
				t.Fatalf("seeded %s violation: want exactly 1 finding, got %d:\n%s",
					tc.name, len(diags), formatDiags(diags))
			}
			d := diags[0]
			if d.Analyzer != tc.name {
				t.Errorf("seeded %s violation reported by %q: %s", tc.name, d.Analyzer, d)
			}
			if !strings.Contains(d.Message, tc.wantMsg) {
				t.Errorf("finding %q does not mention %q", d.Message, tc.wantMsg)
			}
			wantLine := 0
			if tc.pkgClause {
				wantLine = lineOf(mutated, "package ")
			} else {
				wantLine = mutationLine(mutated, tc.new) + tc.lineOffset
			}
			if d.Pos.Line != wantLine {
				t.Errorf("finding at line %d, planted violation at line %d: %s", d.Pos.Line, wantLine, d)
			}
		})
	}
}

// readFixture loads the (single) Go file of a fixture package directory.
func readFixture(t *testing.T, fixture string) string {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(fixture))
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var src []byte
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			if src != nil {
				t.Fatalf("fixture %s has more than one Go file", fixture)
			}
			src, err = os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if src == nil {
		t.Fatalf("fixture %s has no Go file", fixture)
	}
	return string(src)
}

// analyzeWPSeed writes src as the fixture package into a temp source root
// shadowing testdata/src (sibling fixture packages and lock dirs still
// resolve from the committed tree) and runs the full suite with the
// case's whole-program config.
func analyzeWPSeed(t *testing.T, fixture, pkg, src string, cfg *lint.Config) []lint.Diagnostic {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, filepath.FromSlash(fixture))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seed.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := lint.NewLoader("", "", root, "testdata/src")
	var runCfg *lint.Config
	if cfg != nil {
		c := *cfg
		runCfg = &c
	}
	diags, err := l.AnalyzeWP(pkg, lint.Suite(), runCfg)
	if err != nil {
		t.Fatalf("analyzing mutated %s: %v", fixture, err)
	}
	return diags
}

// lineOf is the 1-based line of the first occurrence of needle.
func lineOf(src, needle string) int {
	off := strings.Index(src, needle)
	if off < 0 {
		return -1
	}
	return 1 + strings.Count(src[:off], "\n")
}
