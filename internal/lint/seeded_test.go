package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestSeededViolations plants one violation per analyzer into the clean
// seedbed fixture and asserts the suite reports exactly that violation:
// the right analyzer, the right line, and nothing else. This is the
// end-to-end proof that each analyzer catches the regression class it was
// built for, not just the shapes its own fixture happens to pin.
func TestSeededViolations(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "seedbed", "seedbed.go"))
	if err != nil {
		t.Fatalf("reading seedbed fixture: %v", err)
	}
	clean := string(src)

	cases := []struct {
		name       string // also the analyzer expected to fire
		old, new   string // exact one-occurrence source mutation
		wantMsg    string // substring of the single expected finding
		lineOffset int    // expected finding line relative to the mutation
	}{
		{
			name:    "lockguard",
			old:     "\ts.mu.Lock()\n\ts.n++\n\ts.mu.Unlock()\n",
			new:     "\ts.n++\n",
			wantMsg: "guarded by mu",
		},
		{
			name:    "atomicfield",
			old:     "\tatomic.AddInt64(&s.ticks, 1)\n",
			new:     "\ts.ticks++\n",
			wantMsg: "//ftbfs:atomic",
		},
		{
			name: "ctxpoll",
			old:  "\t\tif err := poll.Poll(); err != nil {\n\t\t\treturn 0, err\n\t\t}\n",
			new:  "\t\t_ = poll\n",
			// The finding anchors on the `for` statement, one line above
			// the no-longer-polling loop body.
			wantMsg:    "neither polls",
			lineOffset: -1,
		},
		{
			name:    "frozenalias",
			old:     "\t\tacc += arcs[i].To\n",
			new:     "\t\tarcs[i] = graph.Arc{}\n",
			wantMsg: "element write",
		},
		{
			name:    "hotalloc",
			old:     "\treturn acc\n}",
			new:     "\treturn acc + []int32{1}[0]\n}",
			wantMsg: "slice literal",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n := strings.Count(clean, tc.old); n != 1 {
				t.Fatalf("mutation anchor occurs %d times in seedbed, need exactly 1:\n%q", n, tc.old)
			}
			mutated := strings.Replace(clean, tc.old, tc.new, 1)
			diags := analyzeSeed(t, mutated)
			if len(diags) != 1 {
				t.Fatalf("seeded %s violation: want exactly 1 finding, got %d:\n%s",
					tc.name, len(diags), formatDiags(diags))
			}
			d := diags[0]
			if d.Analyzer != tc.name {
				t.Errorf("seeded %s violation reported by %q: %s", tc.name, d.Analyzer, d)
			}
			if !strings.Contains(d.Message, tc.wantMsg) {
				t.Errorf("finding %q does not mention %q", d.Message, tc.wantMsg)
			}
			if wantLine := mutationLine(mutated, tc.new) + tc.lineOffset; d.Pos.Line != wantLine {
				t.Errorf("finding at line %d, mutation at line %d: %s", d.Pos.Line, wantLine, d)
			}
		})
	}

	t.Run("clean", func(t *testing.T) {
		if diags := analyzeSeed(t, clean); len(diags) != 0 {
			t.Fatalf("unmutated seedbed must be clean, got:\n%s", formatDiags(diags))
		}
	})
}

// analyzeSeed writes src as its own seedbed package in a temp source root
// and runs the full suite over it; the stub repro packages still resolve
// from testdata/src.
func analyzeSeed(t *testing.T, src string) []lint.Diagnostic {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "seedbed")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seedbed.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := lint.NewLoader("", "", filepath.Dir(dir), "testdata/src")
	diags, err := l.Analyze("seedbed", lint.Suite())
	if err != nil {
		t.Fatalf("analyzing mutated seedbed: %v", err)
	}
	return diags
}

// mutationLine returns the 1-based line of the first line of the replaced
// text inside the mutated source.
func mutationLine(mutated, inserted string) int {
	off := strings.Index(mutated, inserted)
	if off < 0 {
		return -1
	}
	// Skip the leading newline-less prefix: the anchor starts after the
	// last newline before off.
	return 1 + strings.Count(mutated[:off], "\n")
}

func formatDiags(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  ")
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}
