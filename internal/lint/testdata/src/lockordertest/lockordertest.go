// Package lockordertest pins the lockorder analyzer: cycle detection over
// direct acquisitions, //ftbfs:holds seeding, call-summary propagation,
// self-acquisition, and the shapes that must stay silent (consistent
// order, release-before-acquire, TryLock, branches, function literals).
//
//ftbfs:lockorder
package lockordertest

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// lockAB and lockBA inverted: classic two-lock deadlock. The cycle is
// reported once, at the sorted-first own edge (A.mu -> B.mu), which is
// the inner acquisition below.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle \(potential deadlock\): lockordertest\.A\.mu -> lockordertest\.B\.mu -> lockordertest\.A\.mu`
	defer b.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

// Self-acquisition: C.mu taken on a path that already holds it (the
// annotation is the documented contract for C.reenter's callers).
type C struct{ mu sync.Mutex }

//ftbfs:holds mu
func (c *C) reenter() {
	c.mu.Lock() // want `lock lockordertest\.C\.mu acquired while already held`
	c.mu.Unlock()
}

// Holds-seeded cycle: F.mu -> G.mu comes from the annotation, the inverse
// from gThenF. Reported at the sorted-first own edge, inside fLocked.
type F struct{ mu sync.Mutex }

type G struct{ mu sync.Mutex }

//ftbfs:holds mu
func (f *F) fLocked(g *G) {
	g.mu.Lock() // want `lock-order cycle \(potential deadlock\): lockordertest\.F\.mu -> lockordertest\.G\.mu -> lockordertest\.F\.mu`
	defer g.mu.Unlock()
}

func gThenF(f *F, g *G) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

// Cycle through a call summary: dThenCallE acquires D.mu then calls
// lockE (which acquires E.mu), eThenD inverts. The via-call edge closes
// the cycle, anchored on the call site.
type D struct{ mu sync.Mutex }

type E struct{ mu sync.Mutex }

func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

func dThenCallE(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockE(e) // want `lock-order cycle \(potential deadlock\): lockordertest\.D\.mu -> lockordertest\.E\.mu -> lockordertest\.D\.mu`
}

func eThenD(d *D, e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

// ---- shapes that must stay silent ----

type P struct{ mu sync.Mutex }

type Q struct{ mu sync.Mutex }

// Consistent order everywhere: no cycle, no finding.
func pThenQ(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
}

func pThenQAgain(p *P, q *Q) {
	p.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}

// Release before the second acquire: never held together, so the
// inverted textual order is fine.
func qAfterP(p *P, q *Q) {
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// TryLock cannot block: no edge even while P.mu is held (but a cycle
// through it would still need the inverse, which does not exist).
func tryUnderP(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if q.mu.TryLock() {
		q.mu.Unlock()
	}
}

// A lock taken inside one branch is not held after the join.
func branchScoped(p *P, q *Q) {
	cond := len("x") == 1
	if cond {
		q.mu.Lock()
		q.mu.Unlock()
	}
	p.mu.Lock()
	p.mu.Unlock()
}

// Function literals run on their own schedule: the held set does not
// leak into them, and their acquisitions do not order against ours.
func literalIsolated(p *P, q *Q) {
	q.mu.Lock()
	defer q.mu.Unlock()
	fn := func() {
		p.mu.Lock()
		p.mu.Unlock()
	}
	_ = fn
}

// Function-local mutexes have no cross-function identity: ignored.
func localMutex(p *P) {
	var mu sync.Mutex
	mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	mu.Unlock()
}
