// Package wpseed is the clean baseline for the whole-program seeded-bug
// tests: consistent lock order, disciplined cancel handling, tracked
// goroutines. Each seeded test plants exactly one violation here and
// asserts the analyzer reports it at the planted line.
//
//ftbfs:lockorder
//ftbfs:builders
package wpseed

import (
	"context"
	"sync"
	"time"
)

type R struct{ mu sync.Mutex }

type S struct{ mu sync.Mutex }

// The package's lock order: S.mu before R.mu, everywhere.
func drain(r *R, s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
}

func sweep(r *R, s *S) {
	s.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	s.mu.Unlock()
}

func use(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// run cancels on every path.
func run(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	if err := use(ctx); err != nil {
		cancel()
		return err
	}
	cancel()
	return nil
}

// launch tracks its goroutine with the WaitGroup.
func launch(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}
