// Package leakchecktest pins the leakcheck analyzer: CancelFunc path
// coverage, ticker/timer stop discipline, goroutine tracking, and the
// escape/coverage shapes that must stay silent.
//
//ftbfs:builders
package leakchecktest

import (
	"context"
	"sync"
	"time"
)

func use(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// Discarding the CancelFunc is reported at the definition.
func discarded() {
	ctx, _ := context.WithCancel(context.Background()) // want `the CancelFunc returned by context\.WithCancel is discarded`
	_ = use(ctx)
}

// The error path returns without cancelling: reported at that return.
func missedPath(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	if err := use(ctx); err != nil {
		return err // want `context\.CancelFunc cancel \(from context\.WithTimeout\) is not called on this return path`
	}
	cancel()
	return nil
}

// `_ = cancel` placates the compiler but releases nothing: the
// fall-through exit is uncovered.
func placated() {
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel
	_ = use(ctx)
} // want `context\.CancelFunc cancel \(from context\.WithCancel\) is not called on the fall-through exit`

// Deferring at the definition covers every exit.
func deferred(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := use(ctx); err != nil {
		return err
	}
	return nil
}

// Explicit calls on each path also cover.
func explicit() error {
	ctx, cancel := context.WithCancel(context.Background())
	if err := use(ctx); err != nil {
		cancel()
		return err
	}
	cancel()
	return nil
}

// The CLI flag pattern: conditional timeout, defer in the same block as
// the (re)definition. The defer dominates every later exit.
func cliPattern(d time.Duration) error {
	ctx := context.Background()
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return use(ctx)
}

// Handing the CancelFunc to longer-lived code transfers the duty.
func escapes(reg func(context.CancelFunc)) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	reg(cancel)
	return ctx
}

// A cancel captured by a closure runs on the closure's schedule: trusted.
func captured() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	cleanup := func() { cancel() }
	return ctx, cleanup
}

// ---- tickers and timers ----

// Created, drained, never stopped: reported at the definition.
func unstopped(d time.Duration) {
	t := time.NewTicker(d) // want `time\.Ticker t is never stopped on any path`
	<-t.C
}

func discardedTicker(d time.Duration) {
	_ = time.NewTicker(d) // want `time\.Ticker discarded at creation`
}

func stopped(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
}

// Resetting does not release; Stop elsewhere in the unit does.
func resetThenStop(d time.Duration) {
	tm := time.NewTimer(d)
	<-tm.C
	tm.Reset(d)
	tm.Stop()
}

// Returning the ticker transfers the duty.
func handedOff(d time.Duration) *time.Ticker {
	t := time.NewTicker(d)
	return t
}

// ---- goroutine tracking (//ftbfs:builders scope) ----

func fire() {}

// Nothing observes this goroutine's lifetime.
func untracked() {
	go fire() // want `goroutine is not visibly tracked`
}

// WaitGroup Add before launch: tracked.
func waited(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		fire()
	}()
}

// A done channel closed inside the body: tracked.
func signalled() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fire()
	}()
	return done
}

// A result send inside the body: tracked.
func sends() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 1
	}()
	return out
}
