// Package apisurfacedrift drifts from the recorded surface three ways
// against a lock byte-identical to apisurfacetest's: Sum's signature
// changed, New removed (reported at the package clause), Extra added.
package apisurfacedrift // want `exported func New has been removed but is still recorded in apisurface\.lock`

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

func (c *Counter) Value() int { return c.n }

func Sum(xs []int64) int64 { // want `exported surface drift: "func Sum\(xs \[\]int64\) int64"`
	var total int64
	for _, x := range xs {
		total += x
	}
	return total
}

func Extra() {} // want `exported func Extra is not recorded in apisurface\.lock`

const Limit = 64

var Debug bool

func internalOnly() {}

var _ = internalOnly
