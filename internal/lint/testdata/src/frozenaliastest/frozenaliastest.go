// Package frozenaliastest is the frozenalias analyzer fixture.
package frozenaliastest

import "repro/internal/graph"

func readOK(g *graph.Graph) int32 {
	off, arcs := g.ArcData()
	var acc int32
	for i := range arcs {
		acc += arcs[i].To + off[0]
	}
	return acc
}

func passOK(g *graph.Graph) []graph.Arc {
	_, arcs := g.ArcData()
	consume(arcs)
	return arcs[:1]
}

func consume(arcs []graph.Arc) { _ = arcs }

// copyOK writes into a private copy, not the alias.
func copyOK(g *graph.Graph) {
	_, arcs := g.ArcData()
	own := make([]graph.Arc, len(arcs))
	copy(own, arcs)
	if len(own) > 0 {
		own[0] = graph.Arc{}
	}
}

func badElem(g *graph.Graph) {
	_, arcs := g.ArcData()
	arcs[0] = graph.Arc{} // want `element write`
}

func badIncDec(g *graph.Graph) {
	off, _ := g.ArcData()
	off[0]++ // want `element write`
}

func badAppend(g *graph.Graph) []graph.Arc {
	_, arcs := g.ArcData()
	return append(arcs, graph.Arc{}) // want `append`
}

func badCopy(g *graph.Graph, src []int32) {
	off, _ := g.ArcData()
	copy(off, src) // want `copy into`
}

func badReslice(g *graph.Graph) {
	_, arcs := g.ArcData()
	arcs[1:][0] = graph.Arc{} // want `element write`
}

func badWords(s *graph.EdgeSet) {
	words := s.Words()
	words[0] |= 1 // want `element write`
}

func badSorted(g *graph.Graph) {
	_, _, _, sorted := g.CSRData()
	sorted[0] = graph.Arc{} // want `element write`
}

func badVarDecl(s *graph.EdgeSet) {
	var words = s.Words()
	words[0] = 7 // want `element write`
}
