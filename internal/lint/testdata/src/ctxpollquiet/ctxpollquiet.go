// Package ctxpollquiet repeats the bad shapes from ctxpolltest WITHOUT
// the builders package marker: the ctxpoll analyzer must stay silent on
// packages that never opted in.
package ctxpollquiet

import (
	"repro/internal/bfs"
	"repro/internal/graph"
)

func BuildBad(g *graph.Graph) int32 {
	d := bfs.Distances(g, 0, nil)
	if len(d) == 0 {
		return 0
	}
	return d[0]
}

func helperLoop(g *graph.Graph, srcs []int) int32 {
	r := bfs.NewRunner(g)
	var acc int32
	for _, src := range srcs {
		r.Run(src, nil, nil)
		acc += r.Dist(0)
	}
	return acc
}

var _ = helperLoop
