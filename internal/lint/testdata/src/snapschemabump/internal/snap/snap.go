// Package snap is the snapschema version-bump fixture: the same drift as
// snapschemadrift (Meta.Seed narrowed to int32), but Version is bumped —
// the declared wire-format change, so the analyzer stays silent and the
// next -update-locks refreshes the lock.
package snap

import "snapschemabump/internal/core"

const (
	Magic   = "MINISNAP"
	Version = 2
)

var (
	idMeta = [4]byte{'M', 'E', 'T', 'A'}
	idBlob = [4]byte{'B', 'L', 'O', 'B'}
)

var _ = [2]interface{}{idMeta, idBlob}

type Meta struct {
	Name string `json:"name"`
	Seed int32  `json:"seed,omitempty"`
}

type Snapshot struct {
	Meta  Meta
	State *core.State
	Rows  []Row
}

type Row struct {
	Key  ID
	Vals []float64
}

type ID int
