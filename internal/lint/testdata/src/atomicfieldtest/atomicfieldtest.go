// Package atomicfieldtest is the atomicfield analyzer fixture.
package atomicfieldtest

import "sync/atomic"

type stats struct {
	//ftbfs:atomic
	hits int64
	name string
}

func inc(s *stats) { atomic.AddInt64(&s.hits, 1) }

func load(s *stats) int64 { return atomic.LoadInt64(&s.hits) }

func swap(s *stats, v int64) int64 { return atomic.SwapInt64(&s.hits, v) }

func name(s *stats) string { return s.name }

func badInc(s *stats) { s.hits++ } // want `ftbfs:atomic`

func badRead(s *stats) int64 { return s.hits } // want `ftbfs:atomic`

func badWrite(s *stats) { s.hits = 0 } // want `ftbfs:atomic`

func badAlias(s *stats) *int64 { return &s.hits } // want `ftbfs:atomic`

type redundant struct {
	//ftbfs:atomic
	n atomic.Int64 // want `redundant`
}

// progress mirrors core.Progress: a struct of sync/atomic values that
// must never be copied.
type progress struct {
	done  atomic.Int64
	total atomic.Int64
}

type wrapper struct {
	p progress // nested: wrapper bears atomics too
}

func badDeref(p *progress) progress { return *p } // want `tearing`

func badAssign(p *progress) {
	v := *p // want `tearing`
	_ = v
}

func badCopyVar(w *wrapper) {
	v := w.p // want `tearing`
	_ = v
}

func takeByValue(p progress) int64 { return p.done.Load() }

func badArg(p *progress) int64 {
	return takeByValue(*p) // want `tearing`
}

func goodPointerUse(p *progress) int64 {
	p.done.Add(1)
	return p.done.Load()
}

func goodFresh() *progress {
	return &progress{}
}
