// Package snap is the snapschema fixture: a miniature of the real
// snapshot package — magic/version consts, a [4]byte section table, and
// structs reachable from Meta/Snapshot across a sibling package.
package snap

import "snapschematest/internal/core"

const (
	Magic   = "MINISNAP"
	Version = 1
)

var (
	idMeta = [4]byte{'M', 'E', 'T', 'A'}
	idBlob = [4]byte{'B', 'L', 'O', 'B'}
)

var _ = [2]interface{}{idMeta, idBlob}

type Meta struct {
	Name string `json:"name"`
	Seed int64  `json:"seed,omitempty"`
}

type Snapshot struct {
	Meta  Meta
	State *core.State
	Rows  []Row
}

type Row struct {
	Key  ID
	Vals []float64
}

type ID int
