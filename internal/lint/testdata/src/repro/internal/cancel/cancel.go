// Package cancel is a fixture stub of repro/internal/cancel: the
// analyzers match it by path suffix and type/function names, so the stub
// only needs the Poller surface.
package cancel

import "context"

// PollEvery mirrors the real package's default cadence.
const PollEvery = 32

// Poller is the amortized cancellation poller stub.
type Poller struct {
	ctx  context.Context
	done <-chan struct{}
}

// New returns a Poller over ctx.
func New(ctx context.Context, every int) *Poller {
	return &Poller{ctx: ctx, done: ctx.Done()}
}

// Poll reports ctx.Err() at the amortized cadence.
func (c *Poller) Poll() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// Check reports ctx.Err() immediately.
func (c *Poller) Check() error {
	if c.done == nil {
		return nil
	}
	return c.ctx.Err()
}
