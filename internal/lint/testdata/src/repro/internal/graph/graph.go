// Package graph is a fixture stub of repro/internal/graph exposing the
// frozen-CSR accessors the frozenalias analyzer keys on.
package graph

// Arc is one directed half-edge of the CSR.
type Arc struct {
	To int32
	ID int32
}

// Edge is one undirected edge.
type Edge struct {
	U, V int
}

// Graph is the frozen CSR stub.
type Graph struct {
	arcOff []int32
	arcs   []Arc
	edges  []Edge
	sorted []Arc
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.arcOff) - 1 }

// ArcData returns the raw CSR arrays (read-only aliases).
func (g *Graph) ArcData() (off []int32, arcs []Arc) { return g.arcOff, g.arcs }

// CSRData returns read-only views of the frozen representation.
func (g *Graph) CSRData() (edges []Edge, arcOff []int32, arcs, sorted []Arc) {
	return g.edges, g.arcOff, g.arcs, g.sorted
}

// EdgeSet is the kept-edge bitset stub.
type EdgeSet struct {
	words []uint64
}

// Words returns a read-only view of the bitset's backing words.
func (s *EdgeSet) Words() []uint64 { return s.words }
