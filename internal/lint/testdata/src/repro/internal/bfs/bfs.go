// Package bfs is a fixture stub of repro/internal/bfs: its calls count as
// search primitives for the ctxpoll analyzer.
package bfs

import "repro/internal/graph"

// Runner is the reusable BFS scratch stub.
type Runner struct {
	g *graph.Graph
}

// NewRunner returns a runner bound to g.
func NewRunner(g *graph.Graph) *Runner { return &Runner{g: g} }

// Run executes one BFS.
func (r *Runner) Run(src int, disabledEdges []int, disabledVertices []int) {}

// Dist returns a distance.
func (r *Runner) Dist(v int) int32 { return 0 }

// Distances is the one-shot BFS stub.
func Distances(g *graph.Graph, src int, disabledEdges []int) []int32 { return nil }
