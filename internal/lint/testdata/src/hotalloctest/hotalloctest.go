// Package hotalloctest is the hotalloc analyzer fixture.
package hotalloctest

import (
	"fmt"

	"repro/internal/graph"
)

func sink(v interface{}) { _ = v }

// hotBad piles up every rejected construct.
//
//ftbfs:hotpath
func hotBad(n int, s string) int {
	buf := make([]int32, n)       // want `make allocates`
	xs := []int{1, 2}             // want `slice literal`
	m := map[string]int{}         // want `map literal`
	p := &graph.Arc{To: 1}        // want `&composite literal`
	f := func() int { return n }  // want `closure`
	msg := fmt.Sprintf("n=%d", n) // want `fmt call`
	t := s + msg                  // want `string concatenation`
	b := []byte(s)                // want `conversion copies`
	sink(n)                       // want `boxes`
	return len(buf) + xs[0] + len(m) + int(p.To) + f() + len(t) + len(b)
}

// hotGood exercises the deliberate caveats: append, taking the address
// of a scalar local, struct value literals, constant concatenation and
// pointer-shaped interface arguments are all allowed.
//
//ftbfs:hotpath
func hotGood(scratch []int32, x int32) []int32 {
	scratch = append(scratch, x)
	v := int64(x)
	p := &v
	a := graph.Arc{To: x}
	const prefix = "g" + "o"
	if *p > 0 && prefix == "go" {
		scratch = append(scratch, a.To)
	}
	sink(p)
	return scratch
}

// cold is unannotated: the same constructs pass unremarked.
func cold(n int) []int {
	return append([]int{}, make([]int, n)...)
}

// hotSuppressed shows the escape hatch: a finding excused with a reason.
//
//ftbfs:hotpath
func hotSuppressed(n int) map[int]int {
	//lint:ignore hotalloc the scratch map is allocated once per run and reused across queries
	m := make(map[int]int, n)
	return m
}

var _ = cold
