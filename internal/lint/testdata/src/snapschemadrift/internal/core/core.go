// Package core holds fixture state reachable from the snapshot roots in
// a different package, pinning cross-package fingerprinting and the
// module-relative type naming.
package core

type State struct {
	N     int
	Flags map[string]bool
}
