// Package snap is the snapschema drift fixture: identical to the clean
// fixture except Meta.Seed narrowed to int32 — a wire-format change with
// no version bump, which must be reported on the drifted field.
package snap

import "snapschemadrift/internal/core"

const (
	Magic   = "MINISNAP"
	Version = 1
)

var (
	idMeta = [4]byte{'M', 'E', 'T', 'A'}
	idBlob = [4]byte{'B', 'L', 'O', 'B'}
)

var _ = [2]interface{}{idMeta, idBlob}

type Meta struct {
	Name string `json:"name"`
	Seed int32  `json:"seed,omitempty"` // want `snapshot schema drift in struct internal/snap\.Meta`
}

type Snapshot struct {
	Meta  Meta
	State *core.State
	Rows  []Row
}

type Row struct {
	Key  ID
	Vals []float64
}

type ID int
