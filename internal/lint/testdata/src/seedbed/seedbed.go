// Package seedbed is deliberately clean under every ftbfslint analyzer;
// the seeded-bug test mutates one anchor line at a time and asserts the
// matching analyzer reports exactly that mutation and nothing else.
package seedbed

//ftbfs:builders

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/bfs"
	"repro/internal/cancel"
	"repro/internal/graph"
)

type state struct {
	mu sync.Mutex
	n  int // guarded by mu
	//ftbfs:atomic
	ticks int64
}

func bump(s *state) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	atomic.AddInt64(&s.ticks, 1)
}

func ticks(s *state) int64 { return atomic.LoadInt64(&s.ticks) }

// BuildSweep runs one BFS per source, polling between searches.
func BuildSweep(ctx context.Context, g *graph.Graph, srcs []int) (int32, error) {
	poll := cancel.New(ctx, cancel.PollEvery)
	var acc int32
	_, arcs := g.ArcData()
	for _, src := range srcs {
		if err := poll.Poll(); err != nil {
			return 0, err
		}
		d := bfs.Distances(g, src, nil)
		if len(d) > 0 {
			acc += d[0]
		}
	}
	for i := range arcs {
		acc += arcs[i].To
	}
	return acc, nil
}

// hotSum is the seedbed hot path.
//
//ftbfs:hotpath
func hotSum(xs []int32) int32 {
	var acc int32
	for _, x := range xs {
		acc += x
	}
	return acc
}

var (
	_ = bump
	_ = ticks
	_ = hotSum
)
