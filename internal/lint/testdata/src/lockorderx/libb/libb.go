// Package libb closes a lock-order cycle that no single package can see:
// liba orders M1.mu before M2.Mu, and BadOrder here acquires M1.mu (via
// liba.Lock1) while holding M2.Mu. Only the merged cross-package edge
// graph contains the cycle, so a finding in this package proves the
// facts side channel works.
//
//ftbfs:lockorder
package libb

import "lockorderx/liba"

// BadOrder inverts liba's order through a call summary.
func BadOrder() {
	liba.Two.Mu.Lock()
	defer liba.Two.Mu.Unlock()
	liba.Lock1() // want `lock-order cycle \(potential deadlock\): lockorderx/liba\.M2\.Mu -> lockorderx/liba\.M1\.mu -> lockorderx/liba\.M2\.Mu`
}

// GoodOrder follows liba's order: silent.
func GoodOrder() {
	liba.Both()
}
