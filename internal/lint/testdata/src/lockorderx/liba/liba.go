// Package liba is the downstream half of the cross-package lock-order
// fixture: its facts (the M1 -> M2 edge from Both, Lock1's acquisition
// summary) travel to libb through the dependency facts channel.
//
//ftbfs:lockorder
package liba

import "sync"

type M1 struct{ mu sync.Mutex }

type M2 struct{ Mu sync.Mutex }

var (
	One M1
	Two M2
)

// Both establishes the package's lock order: M1.mu before M2.Mu.
func Both() {
	One.mu.Lock()
	defer One.mu.Unlock()
	Two.Mu.Lock()
	defer Two.Mu.Unlock()
}

// Lock1 acquires M1.mu; callers holding other locks inherit this through
// the exported facts summary.
func Lock1() {
	One.mu.Lock()
	One.mu.Unlock()
}
