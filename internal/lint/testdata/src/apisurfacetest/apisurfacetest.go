// Package apisurfacetest is the apisurface fixture facade: a small
// exported surface whose lock file pins funcs, methods, types, consts
// and vars.
package apisurfacetest

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

func (c *Counter) Value() int { return c.n }

func New() *Counter { return &Counter{} }

func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

const Limit = 64

var Debug bool

func internalOnly() {}

var _ = internalOnly
