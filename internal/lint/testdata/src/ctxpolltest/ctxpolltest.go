// Package ctxpolltest is the ctxpoll analyzer fixture: it opts in with
// the builders marker below, so exported Build*/Search* functions and
// search-calling loops are checked.
package ctxpolltest

//ftbfs:builders

import (
	"context"

	"repro/internal/bfs"
	"repro/internal/cancel"
	"repro/internal/graph"
)

// Options mirrors core.Options: a pointer to it carries cancellation.
type Options struct {
	Ctx context.Context
	Src int
}

// BuildGood constructs a poller and polls inside its search loop.
func BuildGood(ctx context.Context, g *graph.Graph, srcs []int) (int32, error) {
	poll := cancel.New(ctx, cancel.PollEvery)
	var acc int32
	for _, src := range srcs {
		if err := poll.Poll(); err != nil {
			return 0, err
		}
		d := bfs.Distances(g, src, nil)
		if len(d) > 0 {
			acc += d[0]
		}
	}
	return acc, nil
}

// BuildDelegating forwards a context-carrying value; the callee is
// responsible for polling and is checked on its own.
func BuildDelegating(opts *Options, g *graph.Graph) int32 {
	return buildInner(opts, g)
}

func buildInner(opts *Options, g *graph.Graph) int32 {
	poll := cancel.New(opts.Ctx, cancel.PollEvery)
	var acc int32
	for i := 0; i < g.N(); i++ {
		if err := poll.Poll(); err != nil {
			return acc
		}
		d := bfs.Distances(g, i, nil)
		if len(d) > 0 {
			acc += d[0]
		}
	}
	return acc
}

func BuildBad(g *graph.Graph) int32 { // want `ships uncancellable`
	d := bfs.Distances(g, 0, nil)
	if len(d) == 0 {
		return 0
	}
	return d[0]
}

func SearchBad(g *graph.Graph, u, v int) int32 { // want `ships uncancellable`
	r := bfs.NewRunner(g)
	r.Run(u, nil, nil)
	return r.Dist(v)
}

// BuildLoopMiss wires a poller up top but forgets to poll inside the
// loop that actually runs the searches.
func BuildLoopMiss(ctx context.Context, g *graph.Graph, srcs []int) int32 {
	poll := cancel.New(ctx, cancel.PollEvery)
	_ = poll
	var acc int32
	for _, src := range srcs { // want `neither polls`
		d := bfs.Distances(g, src, nil)
		if len(d) > 0 {
			acc += d[0]
		}
	}
	return acc
}

// helperLoop is unexported, so rule 1 does not apply — but its search
// loop is still checked.
func helperLoop(g *graph.Graph, srcs []int) int32 {
	r := bfs.NewRunner(g)
	var acc int32
	for _, src := range srcs { // want `neither polls`
		r.Run(src, nil, nil)
		acc += r.Dist(0)
	}
	return acc
}

var _ = helperLoop
