// Package lockguardtest is the lockguard analyzer fixture.
package lockguardtest

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

func (c *counter) goodWrite() {
	c.mu.Lock()
	c.n++
	c.m["k"] = c.n
	c.mu.Unlock()
}

func (c *counter) goodRead() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) badWrite() {
	c.n++ // want `guarded by mu`
}

func badParamRead(c *counter) int {
	return c.n // want `guarded by mu`
}

func (c *counter) badWriteUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n = 4 // want `read lock`
}

// lockedHelper is called with the lock held.
//
//ftbfs:holds mu
func (c *counter) lockedHelper() int { return c.n }

func newCounter() *counter {
	c := &counter{m: map[string]int{}}
	c.n = 1 // fresh local: not yet shared
	return c
}

// aliasLock locks through one name and touches through another; the
// type-keyed fallback accepts it (flow-insensitivity caveat).
func aliasLock(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n
}

type registry struct {
	mu sync.Mutex
}

type entry struct {
	status string // guarded by registry.mu
}

func update(r *registry, e *entry) {
	r.mu.Lock()
	e.status = "x"
	r.mu.Unlock()
}

func badUpdate(e *entry) {
	e.status = "x" // want `guarded by registry.mu`
}

// publish is documented to run with the registry lock held.
//
//ftbfs:holds registry.mu
func publish(e *entry) {
	e.status = "published"
}

type broken struct {
	x int // guarded by nosuch; want `no sync.Mutex/RWMutex field "nosuch"`
}

//lint:ignore lockguard this ignore matches nothing and must be reported // want `matched no finding`
func unrelated() {}
