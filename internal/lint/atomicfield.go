package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces two atomicity invariants:
//
//  1. A plain integer field annotated `//ftbfs:atomic` may only be touched
//     as `&x.f` passed directly to a sync/atomic function — never read or
//     written directly, and never aliased through a non-atomic pointer.
//  2. A struct that (transitively) contains a sync/atomic value type —
//     core.Progress is the canonical case — must not be copied by value:
//     dereference copies, value assignments, value arguments and value
//     ranges all tear the counters out of their atomic boxes. Composite
//     literals are allowed (a value that is still being built has no
//     concurrent readers), as is the zero value.
//
// Rule 2 needs no annotation: it keys on the field types, which survive
// export data, so it also protects types defined in other packages.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "//ftbfs:atomic fields only move through sync/atomic; atomic-bearing structs are never copied",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	marked := collectAtomicFields(pass)
	for _, fd := range funcDecls(pass.Files) {
		checkAtomicFunc(pass, fd, marked)
	}
	return nil
}

// collectAtomicFields maps //ftbfs:atomic-annotated field objects to their
// struct's name.
func collectAtomicFields(pass *Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasDirective(field.Doc, "atomic") && !hasDirective(field.Comment, "atomic") {
					continue
				}
				if isAtomicValueType(pass.Info.TypeOf(field.Type)) {
					pass.Reportf(field.Pos(),
						"field %s is already a sync/atomic type; drop the redundant //ftbfs:atomic", fieldName(field))
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[v] = ts.Name.Name
					}
				}
			}
			return true
		})
	}
	return out
}

// isAtomicValueType reports whether t is one of sync/atomic's value types
// (Int32, Int64, Uint64, Bool, Value, Pointer[T], ...).
func isAtomicValueType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// bearsAtomic reports whether t is a struct type that transitively
// contains a sync/atomic value type (through embedded/nested structs and
// arrays, not through pointers — a pointer shares, it does not copy).
func bearsAtomic(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		if isAtomicValueType(t) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

func checkAtomicFunc(pass *Pass, fd *ast.FuncDecl, marked map[*types.Var]string) {
	// allowed collects the &x.f operands that appear directly as arguments
	// of sync/atomic calls; any marked-field selector not in this set is a
	// violation.
	allowed := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgFuncCall(pass.Info, call, "sync/atomic") {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					allowed[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			selection := pass.Info.Selections[x]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			fv, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			structName, markedField := marked[fv]
			if markedField && !allowed[x] {
				pass.Reportf(x.Sel.Pos(),
					"%s.%s is //ftbfs:atomic: access it only as &%s passed to a sync/atomic function",
					structName, fv.Name(), exprPath(x))
			}
		case *ast.StarExpr:
			// *p of a pointer to an atomic-bearing struct copies it unless
			// the deref is just a selector/call base.
			if t := pass.Info.TypeOf(x.X); t != nil {
				if p, ok := types.Unalias(t).(*types.Pointer); ok && bearsAtomic(p.Elem()) && !isSelectorBase(fd.Body, x) {
					pass.Reportf(x.Pos(), "*%s copies %s, tearing its atomic fields; keep the pointer",
						exprPath(x.X), typeShort(p.Elem()))
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				// `_ = v` keeps nothing: no copy escapes the statement.
				if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				checkAtomicCopyExpr(pass, rhs)
			}
		case *ast.CallExpr:
			checkAtomicValueArgs(pass, x)
		}
		return true
	})
}

// checkAtomicCopyExpr flags an assignment RHS whose value is an
// atomic-bearing struct copied out of an existing variable (composite
// literals and calls construct fresh values and are fine; the *p case is
// reported by the StarExpr arm).
func checkAtomicCopyExpr(pass *Pass, rhs ast.Expr) {
	e := ast.Unparen(rhs)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return
	}
	if t := pass.Info.TypeOf(e); t != nil && bearsAtomic(t) {
		pass.Reportf(rhs.Pos(), "assignment copies %s by value, tearing its atomic fields; use a pointer",
			typeShort(t))
	}
}

// checkAtomicValueArgs flags atomic-bearing structs passed by value.
func checkAtomicValueArgs(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		e := ast.Unparen(arg)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue
		}
		if t := pass.Info.TypeOf(e); t != nil && bearsAtomic(t) {
			pass.Reportf(arg.Pos(), "call passes %s by value, tearing its atomic fields; pass a pointer",
				typeShort(t))
		}
	}
}

// isSelectorBase reports whether star is the immediate base of a selector
// ((*p).f — a read through the pointer, not a copy). The parser usually
// folds that into an implicit deref, so this is a rare edge.
func isSelectorBase(body *ast.BlockStmt, star *ast.StarExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == star {
			found = true
		}
		return !found
	})
	return found
}

// typeShort renders a type without its full import path.
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
