// Package lint is ftbfslint: a repo-specific static-analysis suite that
// machine-checks the engineering invariants this module's hot paths are
// built on — invariants that previously held only by reviewer discipline.
// It is organized like golang.org/x/tools/go/analysis (an Analyzer with a
// Run func over a Pass), but implemented on the standard library alone so
// the module stays dependency-free; cmd/ftbfslint drives the suite either
// standalone or as a `go vet -vettool` backend.
//
// The analyzers key on a small normalized annotation grammar:
//
//	// guarded by mu            (struct field) field may only be touched with
//	//                          the sibling mutex `mu` held
//	// guarded by Server.mu     (struct field) guarded by the mutex field `mu`
//	//                          of the package-local type Server
//	//ftbfs:holds mu            (func) callers are documented to hold `mu`;
//	//                          the function body is checked as if locked
//	//ftbfs:atomic              (struct field) plain integer field that must
//	//                          only be touched through sync/atomic
//	//ftbfs:hotpath             (func) must not contain per-call allocation
//	//                          constructs
//	//ftbfs:builders            (package comment, any file) marks a builder
//	//                          package whose exported Build*/Search* entry
//	//                          points must be cancellable
//
// Findings are suppressed staticcheck-style with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory and an ignore that matches no finding is itself reported, so
// suppressions cannot silently outlive the code they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant checker. The shape mirrors
// x/tools/go/analysis so the checks could be ported to the real framework
// if the module ever takes on the dependency.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:ignore
	Doc  string // one-paragraph description of the enforced invariant
	Run  func(*Pass) error
}

// A Config carries the whole-program context shared by one RunAnalyzers
// call: the lock-order facts of the package's dependencies (read from the
// vetx side channel under `go vet`, or computed in-process by the
// Loader), the location of the committed lock files, and the regenerate
// switch. The zero value is valid: the intraprocedural analyzers ignore
// it entirely, and the whole-program ones degrade to single-package
// scope.
type Config struct {
	// ModulePath is the import path of the module root package. The
	// apisurface analyzer anchors on it; "" disables that analyzer.
	ModulePath string
	// LockDir is the directory holding snapschema.lock/apisurface.lock.
	// "" disables the lock-file analyzers.
	LockDir string
	// UpdateLocks rewrites the lock files from the observed state instead
	// of diffing against them.
	UpdateLocks bool
	// Deps holds the lock-order facts of (transitive) dependencies.
	Deps []*PackageFacts

	// Facts receives the lock-order facts computed for this package
	// (set by the lockorder analyzer; pass-through of Deps when the
	// package is out of lock scope).
	Facts *PackageFacts
	// Timings, when non-nil, receives per-analyzer wall time.
	Timings map[string]time.Duration
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Cfg      *Config

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Suite returns the ftbfslint analyzers in stable order: the five
// intraprocedural checkers first, then the whole-program tier.
func Suite() []*Analyzer {
	return []*Analyzer{
		LockGuard,
		AtomicField,
		CtxPoll,
		FrozenAlias,
		HotAlloc,
		LockOrder,
		LeakCheck,
		SnapSchema,
		APISurface,
	}
}

// RunAnalyzers runs the analyzers over one type-checked package and
// returns the surviving diagnostics: findings suppressed by a well-formed
// //lint:ignore are dropped, malformed or unused ignore directives are
// reported as findings of the pseudo-analyzer "ignore", and the result is
// sorted by position. cfg may be nil (single-package scope, no lock
// files).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Cfg:      cfg,
			diags:    &diags,
		}
		start := time.Now()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		if cfg.Timings != nil {
			cfg.Timings[a.Name] += time.Since(start)
		}
	}
	diags = applyIgnores(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ---- //lint:ignore suppression ----

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

type ignoreDirective struct {
	pos       token.Position
	analyzers []string
	reason    string
	used      bool
}

// applyIgnores drops diagnostics covered by a //lint:ignore on the same
// line or the line directly above, and appends "ignore" diagnostics for
// directives that are malformed (no reason) or matched nothing.
func applyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// file -> line -> directives scoped to that line.
	scope := make(map[string]map[int][]*ignoreDirective)
	var all []*ignoreDirective
	var kept []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{
					pos:       pos,
					analyzers: strings.Split(m[1], ","),
					reason:    strings.TrimSpace(m[2]),
				}
				if d.reason == "" {
					kept = append(kept, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "//lint:ignore needs a reason: //lint:ignore <analyzer> <why this is safe>",
					})
					continue
				}
				all = append(all, d)
				lines := scope[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreDirective)
					scope[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment) and
				// the next line (comment above the statement).
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	for _, d := range diags {
		suppressed := false
		for _, dir := range scope[d.Pos.Filename][d.Pos.Line] {
			for _, name := range dir.analyzers {
				if name == d.Analyzer {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range all {
		if !dir.used {
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "ignore",
				Message: fmt.Sprintf("//lint:ignore %s matched no finding on this or the next line; delete it",
					strings.Join(dir.analyzers, ",")),
			})
		}
	}
	return kept
}

// ---- shared annotation scanning ----

// guardedRe is the normalized guarded-field grammar: "guarded by mu" or
// "guarded by Type.mu" anywhere in the field's doc or trailing comment.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)(?:\.([A-Za-z_][A-Za-z0-9_]*))?`)

// guardSpec names the mutex a field is guarded by: either a sibling field
// (typeName == "") or a mutex field of another package-local type.
type guardSpec struct {
	typeName string // "" for a sibling mutex
	mutex    string
}

// fieldComments joins a field's doc and line comments.
func fieldComments(f *ast.Field) string {
	var b strings.Builder
	if f.Doc != nil {
		b.WriteString(f.Doc.Text())
	}
	if f.Comment != nil {
		b.WriteString(" ")
		b.WriteString(f.Comment.Text())
	}
	return b.String()
}

// parseGuard extracts a guard annotation from a field's comments.
func parseGuard(f *ast.Field) (guardSpec, bool) {
	m := guardedRe.FindStringSubmatch(fieldComments(f))
	if m == nil {
		return guardSpec{}, false
	}
	if m[2] != "" {
		return guardSpec{typeName: m[1], mutex: m[2]}, true
	}
	return guardSpec{mutex: m[1]}, true
}

// hasDirective reports whether a comment group contains the given
// //ftbfs: directive (exact word match on the directive name).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	_, ok := directiveArg(doc, name)
	return ok
}

// directiveArg returns the argument text of an //ftbfs:<name> directive in
// the comment group ("" when the directive is bare).
func directiveArg(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//ftbfs:" + name
	for _, c := range doc.List {
		if c.Text == prefix {
			return "", true
		}
		if rest, ok := strings.CutPrefix(c.Text, prefix+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// packageHasDirective reports whether any comment in the package carries
// the bare //ftbfs:<name> directive.
func packageHasDirective(files []*ast.File, name string) bool {
	want := "//ftbfs:" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == want {
					return true
				}
			}
		}
	}
	return false
}

// ---- shared type helpers ----

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through one pointer and
// aliases), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = deref(types.Unalias(t))
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n
	}
	return nil
}

// isPkgPathSuffix reports whether pkg is non-nil and its import path is
// path or ends in "/"+path. Matching by suffix lets test fixtures stand in
// stub packages under any root while still matching the real module.
func isPkgPathSuffix(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// typeFromPath reports whether t's named type is declared in a package
// matching path (by isPkgPathSuffix) with the given type name.
func typeFromPath(t types.Type, path, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return n.Obj().Name() == name && isPkgPathSuffix(n.Obj().Pkg(), path)
}

// calleeObj resolves the called function/method object of a call, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFuncCall reports whether call invokes a package-level function of a
// package whose import path matches pkgPath (suffix match) with one of the
// given names (any name when names is empty).
func isPkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !isPkgPathSuffix(fn.Pkg(), pkgPath) {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// nonTestFiles drops _test.go files: the whole-program analyzers check
// long-lived production invariants (lock lifetimes, goroutine tracking,
// wire schemas), and test processes are bounded by definition.
func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// funcDecls yields every function declaration in the pass's files.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// rootIdent walks to the base identifier of a selector/index/paren chain:
// rootIdent(s.graphs[k].builds) == s. Returns nil for non-ident roots
// (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
