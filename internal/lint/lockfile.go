package lint

import (
	"os"
	"strings"
)

// Lock files are committed fingerprints of state that must not drift
// silently: the snapshot wire schema and the exported facade surface.
// They live in the directory Config.LockDir names (in this repo,
// internal/lint/testdata) and are regenerated with
// `ftbfslint -update-locks`. Generation is deterministic, so two
// consecutive regenerations are byte-identical — which is what lets CI
// diff them and reviewers see schema changes as ordinary file diffs.
const (
	SnapSchemaLockFile = "snapschema.lock"
	APISurfaceLockFile = "apisurface.lock"
)

// readLockLines loads a lock file's content lines, dropping '#' comment
// lines and blanks. The second result reports whether the file exists.
func readLockLines(path string) ([]string, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if trimmed := strings.TrimSpace(line); trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, true, nil
}

// writeLock writes header comments plus content lines, one per line,
// trailing newline, 0o644 — the canonical byte-stable form.
func writeLock(path string, header, lines []string) error {
	var b strings.Builder
	for _, h := range header {
		b.WriteString("# ")
		b.WriteString(h)
		b.WriteString("\n")
	}
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
