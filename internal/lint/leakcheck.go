package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LeakCheck enforces release discipline on the three leak-prone resources
// this codebase actually allocates:
//
//   - context.WithCancel/WithTimeout/WithDeadline: the returned
//     CancelFunc must be called on every return path (a call or defer
//     that structurally dominates the exit), escape into longer-lived
//     state (stored, passed, returned, captured by a closure), and never
//     be discarded into _.
//   - time.NewTicker/NewTimer: a visible .Stop() somewhere, or an escape.
//   - go statements in //ftbfs:builders packages and internal/server:
//     each launch must be preceded by a sync.WaitGroup Add in the same
//     function, or the goroutine body must visibly signal completion
//     (defer wg.Done(), close(done), or a channel send) — otherwise
//     shutdown cannot wait for it.
//
// Flow sensitivity is structural, not CFG-exact: a cancel call covers an
// exit when it appears earlier in the same block as the definition or in
// a block enclosing the exit. Returns a branch cannot reach (sibling
// switch cases before the definition ran) are excluded by the same
// structural containment. Test files are skipped: test-process resources
// die with the test binary.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "CancelFuncs called on all return paths, tickers/timers stopped, builder goroutines visibly tracked",
	Run:  runLeakCheck,
}

func runLeakCheck(pass *Pass) error {
	files := nonTestFiles(pass.Fset, pass.Files)
	goScope := packageHasDirective(pass.Files, "builders") || isPkgPathSuffix(pass.Pkg, "internal/server")
	for _, f := range files {
		lc := &leakCheck{pass: pass, parents: buildParents(f)}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lc.checkUnit(fn.Body, funcTitle(fn), goScope)
				}
			case *ast.FuncLit:
				lc.checkUnit(fn.Body, "function literal", goScope)
			}
			return true
		})
	}
	return nil
}

type leakCheck struct {
	pass    *Pass
	parents map[ast.Node]ast.Node
}

// buildParents records each node's syntactic parent for upward walks.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// cancelDef is one tracked `ctx, cancel := context.WithX(...)` site.
type cancelDef struct {
	stmt  ast.Stmt // the defining statement
	ident *ast.Ident
	obj   types.Object
	from  string // WithCancel, WithTimeout, WithDeadline
}

type tickerDef struct {
	stmt  ast.Stmt
	ident *ast.Ident
	obj   types.Object
	kind  string // Ticker, Timer
}

// checkUnit analyzes one function body (declaration or literal). Nested
// literals are their own units; their contents are skipped here and
// visited by the caller's Inspect.
func (lc *leakCheck) checkUnit(body *ast.BlockStmt, name string, goScope bool) {
	var cancels []cancelDef
	var tickers []tickerDef
	var gos []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			if goScope {
				gos = append(gos, st)
			}
			return false
		case *ast.AssignStmt:
			lc.collectAssign(st, st.Lhs, st.Rhs, &cancels, &tickers)
		case *ast.ValueSpec:
			if len(st.Names) > 0 && len(st.Values) > 0 {
				lhs := make([]ast.Expr, len(st.Names))
				for i, id := range st.Names {
					lhs[i] = id
				}
				if ds, ok := lc.enclosingStmt(st).(ast.Stmt); ok {
					lc.collectSpec(ds, lhs, st.Values, &cancels, &tickers)
				}
			}
		}
		return true
	})
	for _, d := range cancels {
		lc.checkCancel(body, d, name)
	}
	for _, d := range tickers {
		lc.checkTicker(body, d)
	}
	for _, g := range gos {
		lc.checkGoStmt(body, g)
	}
}

func (lc *leakCheck) collectAssign(st *ast.AssignStmt, lhs, rhs []ast.Expr, cancels *[]cancelDef, tickers *[]tickerDef) {
	lc.collectSpec(st, lhs, rhs, cancels, tickers)
}

func (lc *leakCheck) collectSpec(def ast.Stmt, lhs, rhs []ast.Expr, cancels *[]cancelDef, tickers *[]tickerDef) {
	if len(rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	info := lc.pass.Info
	switch {
	case isPkgFuncCall(info, call, "context", "WithCancel", "WithTimeout", "WithDeadline") && len(lhs) == 2:
		fn := calleeObj(info, call).(*types.Func)
		id, ok := ast.Unparen(lhs[1]).(*ast.Ident)
		if !ok {
			return // stored straight into a field/element: escapes
		}
		if id.Name == "_" {
			lc.pass.Reportf(call.Pos(),
				"the CancelFunc returned by context.%s is discarded; the context (and its timer/goroutine) can never be released", fn.Name())
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			*cancels = append(*cancels, cancelDef{stmt: def, ident: id, obj: obj, from: fn.Name()})
		}
	case isPkgFuncCall(info, call, "time", "NewTicker", "NewTimer") && len(lhs) == 1:
		fn := calleeObj(info, call).(*types.Func)
		kind := strings.TrimPrefix(fn.Name(), "New")
		id, ok := ast.Unparen(lhs[0]).(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			lc.pass.Reportf(call.Pos(), "time.%s discarded at creation; it can never be stopped", kind)
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			*tickers = append(*tickers, tickerDef{stmt: def, ident: id, obj: obj, kind: kind})
		}
	}
}

// ---- cancel-func path coverage ----

type cancelCall struct {
	stmt    ast.Stmt // the ExprStmt or DeferStmt
	isDefer bool
}

func (lc *leakCheck) checkCancel(unit *ast.BlockStmt, d cancelDef, unitName string) {
	var calls []cancelCall
	escaped := false
	ast.Inspect(unit, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == d.ident {
			return true
		}
		if lc.pass.Info.Uses[id] != d.obj {
			return true
		}
		p := lc.parents[id]
		if call, ok := p.(*ast.CallExpr); ok && call.Fun == id {
			if lc.enclosingFuncBody(id) != unit {
				// cancel() captured inside a nested closure: its run time
				// is not path-analyzable here; trust the capture.
				escaped = true
				return true
			}
			switch s := lc.parents[call].(type) {
			case *ast.ExprStmt:
				calls = append(calls, cancelCall{stmt: s})
			case *ast.DeferStmt:
				calls = append(calls, cancelCall{stmt: s, isDefer: true})
			default:
				escaped = true // part of a larger expression
			}
			return true
		}
		// `_ = cancel` only placates the compiler; the func still never
		// runs. Everything else (argument, store, return, send, capture)
		// hands the release duty to longer-lived code.
		if as, ok := p.(*ast.AssignStmt); ok && allBlank(as.Lhs) {
			return true
		}
		escaped = true
		return false
	})
	if escaped {
		return
	}
	for _, exit := range lc.exits(unit, d.stmt) {
		if lc.covered(calls, d.stmt, exit) {
			continue
		}
		what := "this return path"
		if _, ok := exit.node.(*ast.ReturnStmt); !ok {
			what = "the fall-through exit"
		}
		lc.pass.Reportf(exit.pos,
			"context.CancelFunc %s (from context.%s) is not called on %s: the context leaks; call it on every path or defer it at the definition",
			d.ident.Name, d.from, what)
	}
}

type exitPoint struct {
	pos  token.Pos
	node ast.Node // *ast.ReturnStmt, or the unit body for fall-through
}

// exits lists the unit's return statements that execution can reach
// after def ran, plus a virtual exit at the closing brace when the last
// statement does not terminate.
func (lc *leakCheck) exits(unit *ast.BlockStmt, def ast.Stmt) []exitPoint {
	var out []exitPoint
	ast.Inspect(unit, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != unit {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > def.End() && lc.defReachable(def, ret) {
			out = append(out, exitPoint{pos: ret.Pos(), node: ret})
		}
		return true
	})
	if canFallThrough(unit) {
		out = append(out, exitPoint{pos: unit.Rbrace, node: unit})
	}
	return out
}

// defReachable reports whether a path that executed def can go on to
// reach n: n sits after def inside def's own statement-list, or after
// one of def's enclosing statements in that statement's list. A return
// in a sibling branch (a switch case def's case never ran) fails both.
func (lc *leakCheck) defReachable(def ast.Stmt, n ast.Node) bool {
	nContainers := lc.containersOf(n)
	for a := ast.Node(def); a != nil; a = lc.parents[a] {
		if _, ok := a.(ast.Stmt); !ok {
			continue
		}
		if c := lc.containerOf(a); c != nil && nContainers[c] && n.Pos() > a.End() {
			return true
		}
	}
	return false
}

// covered reports whether some cancel call dominates the exit: it ends
// before the exit begins and sits either in the definition's own
// statement list (so any path past it executed the call) or in a
// statement list enclosing the exit.
func (lc *leakCheck) covered(calls []cancelCall, def ast.Stmt, exit exitPoint) bool {
	defContainer := lc.containerOf(def)
	exitContainers := lc.containersOf(exit.node)
	if exit.node == nil {
		exitContainers = nil
	}
	for _, c := range calls {
		if c.stmt.End() >= exit.pos {
			continue
		}
		cc := lc.containerOf(c.stmt)
		if cc == defContainer || exitContainers[cc] {
			return true
		}
	}
	return false
}

// containerOf is the nearest enclosing statement list holder.
func (lc *leakCheck) containerOf(n ast.Node) ast.Node {
	for p := lc.parents[n]; p != nil; p = lc.parents[p] {
		switch p.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return p
		}
	}
	return nil
}

// containersOf is the set of statement-list holders enclosing n
// (including, for a block node, n itself).
func (lc *leakCheck) containersOf(n ast.Node) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	for p := n; p != nil; p = lc.parents[p] {
		switch p.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			out[p] = true
		}
	}
	return out
}

// enclosingFuncBody finds the function body the node executes in.
func (lc *leakCheck) enclosingFuncBody(n ast.Node) *ast.BlockStmt {
	for p := lc.parents[n]; p != nil; p = lc.parents[p] {
		switch f := p.(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// enclosingStmt walks up to the nearest enclosing statement node.
func (lc *leakCheck) enclosingStmt(n ast.Node) ast.Node {
	for p := lc.parents[n]; p != nil; p = lc.parents[p] {
		if _, ok := p.(ast.Stmt); ok {
			return p
		}
	}
	return nil
}

// canFallThrough reports whether execution can reach the closing brace:
// false when the final statement visibly terminates (return, panic,
// os.Exit/log.Fatal family, bare select, or an unconditional for).
func canFallThrough(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ForStmt:
		return last.Cond != nil || hasBreak(last.Body)
	case *ast.SelectStmt:
		return len(last.Body.List) > 0
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			return !isTerminatingCall(call)
		}
	}
	return true
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // a break in there does not exit the outer loop
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln" || name == "Goexit"
	}
	return false
}

// ---- ticker / timer ----

func (lc *leakCheck) checkTicker(unit *ast.BlockStmt, d tickerDef) {
	stopped, escaped := false, false
	ast.Inspect(unit, func(n ast.Node) bool {
		if stopped || escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == d.ident || lc.pass.Info.Uses[id] != d.obj {
			return true
		}
		if sel, ok := lc.parents[id].(*ast.SelectorExpr); ok && sel.X == id {
			switch sel.Sel.Name {
			case "Stop":
				stopped = true
			case "C", "Reset":
				// reading the channel / rescheduling: neither releases
			default:
				escaped = true
			}
			return true
		}
		escaped = true
		return false
	})
	if !stopped && !escaped {
		lc.pass.Reportf(d.ident.Pos(),
			"time.%s %s is never stopped on any path; defer %s.Stop() after creating it",
			d.kind, d.ident.Name, d.ident.Name)
	}
}

// ---- goroutine tracking ----

func (lc *leakCheck) checkGoStmt(unit *ast.BlockStmt, g *ast.GoStmt) {
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok && signalsCompletion(fl.Body) {
		return
	}
	if lc.waitGroupAddBefore(unit, g.Pos()) {
		return
	}
	lc.pass.Reportf(g.Pos(),
		"goroutine is not visibly tracked: call Add on a sync.WaitGroup before `go`, or signal completion inside (defer Done, close a done channel, or send on one)")
}

// signalsCompletion looks for an observable end-of-life signal in a
// goroutine body: defer <wg>.Done(), close(ch), or a channel send.
func signalsCompletion(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.DeferStmt:
			if sel, ok := st.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
		}
		return !found
	})
	return found
}

// waitGroupAddBefore reports a sync.WaitGroup Add call in this unit that
// completes before pos.
func (lc *leakCheck) waitGroupAddBefore(unit *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(unit, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.End() >= pos {
			return true
		}
		fn, ok := calleeObj(lc.pass.Info, call).(*types.Func)
		if ok && fn.Name() == "Add" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
		}
		return !found
	})
	return found
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
