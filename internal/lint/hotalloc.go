package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc rejects unconditionally-allocating constructs in functions
// annotated `//ftbfs:hotpath` — the vet-time complement of
// TestQueryPathAllocationFree. Flagged: map/slice composite literals,
// &composite literals, make/new, any call into package fmt, string
// concatenation of non-constant operands, string<->[]byte/[]rune
// conversions, closures (func literals capture their environment), and
// interface boxing of non-pointer concrete values at call sites.
//
// Deliberately NOT flagged (flow-insensitivity caveats, see DESIGN.md):
// append (amortized, the hot paths reuse grown scratch), taking the
// address of a scalar local (stack-allocated unless it escapes — escape
// analysis is out of scope), plain struct literals assigned by value, and
// allocations on error paths the annotation author keeps out of hotpath
// functions by construction.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//ftbfs:hotpath functions contain no unconditionally-allocating constructs",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		if !hasDirective(fd.Doc, "hotpath") {
			continue
		}
		checkHotFunc(pass, fd)
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates on every call of this //ftbfs:hotpath function")
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates on every call of this //ftbfs:hotpath function")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal allocates on every call of this //ftbfs:hotpath function")
				}
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure in a //ftbfs:hotpath function: func literals allocate their captured environment")
			return false // its body is the closure's problem, not this function's
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pass.Info.TypeOf(x)) && !isConstExpr(pass, x) {
				pass.Reportf(x.Pos(), "string concatenation allocates on every call of this //ftbfs:hotpath function")
			}
		case *ast.CallExpr:
			checkHotCall(pass, x)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch pass.Info.Uses[id] {
		case types.Universe.Lookup("make"):
			pass.Reportf(call.Pos(), "make allocates on every call of this //ftbfs:hotpath function")
			return
		case types.Universe.Lookup("new"):
			pass.Reportf(call.Pos(), "new allocates on every call of this //ftbfs:hotpath function")
			return
		}
	}
	if len(call.Args) == 1 {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			to, from := tv.Type, pass.Info.TypeOf(call.Args[0])
			if isStringByteConv(to, from) {
				pass.Reportf(call.Pos(), "string<->byte conversion copies its operand on every call of this //ftbfs:hotpath function")
			}
			return
		}
	}
	if isPkgFuncCall(pass.Info, call, "fmt") {
		pass.Reportf(call.Pos(), "fmt call allocates on every call of this //ftbfs:hotpath function")
		return
	}
	checkBoxing(pass, call)
}

// checkBoxing flags concrete non-pointer values passed where the callee
// takes an interface: the conversion heap-allocates the boxed copy.
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isConstExpr(pass, arg) {
			continue
		}
		switch types.Unalias(at).(type) {
		case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // pointer-shaped: stored in the interface without boxing
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s into an interface parameter boxes it on every call of this //ftbfs:hotpath function",
			typeShort(at))
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// isStringByteConv matches the allocating conversions string([]byte),
// string([]rune), []byte(string), []rune(string).
func isStringByteConv(to, from types.Type) bool {
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStringType(to) && isBytes(from)) || (isBytes(to) && isStringType(from))
}
