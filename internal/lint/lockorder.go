package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder is the whole-program deadlock predictor: it extracts a
// lock-acquisition order graph from every Lock/RLock in scope, propagates
// held-lock sets through //ftbfs:holds annotations and direct calls
// (cross-package via the facts side channel), and reports any cycle in
// the order graph with both acquisition paths printed.
//
// Scope: packages whose import path ends in internal/server,
// internal/oracle or internal/snap, plus any package carrying a bare
// //ftbfs:lockorder comment (how fixtures opt in). Out-of-scope packages
// still forward their dependencies' edges, so constraints survive import
// chains that pass through neutral packages.
//
// The model is deliberately syntactic where it can afford to be:
//   - A lock is long-lived state — a mutex field canonicalized by its
//     owning named type (pkg.Type.mu) or a package-level mutex var
//     (pkg.mu). Function-local mutexes are ignored.
//   - Held sets track straight-line statement order. Acquisitions inside
//     branches are visible to later statements of the same branch only:
//     conditional locking does not leak MAY-held locks past the join.
//   - Function literals, go statements and deferred calls run outside the
//     caller's acquisition order and are walked with an empty held set.
//   - TryLock cannot block, so it adds no edge, but a successful TryLock
//     is held for everything after it.
//   - Calls through interfaces resolve to no concrete body, so edges
//     behind them are not seen (MemStore.Put behind ServerStore); keep
//     store/oracle callouts outside critical sections.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no cycles in the cross-package mutex acquisition order graph (potential deadlocks)",
	Run:  runLockOrder,
}

// lockScopeSuffixes are the package path suffixes in lock scope: the
// packages owning the long-lived mutexes of the serving plane.
var lockScopeSuffixes = []string{"internal/server", "internal/oracle", "internal/snap"}

// LockScopePath reports whether an import path is in the lock-order
// extraction scope by suffix. cmd/ftbfslint uses this to decide whether a
// VetxOnly (facts-only) invocation must parse and type-check the package
// or may forward a passthrough record; the //ftbfs:lockorder directive
// opt-in needs syntax and is handled after parsing.
func LockScopePath(path string) bool {
	for _, s := range lockScopeSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// lockOrderInScope reports whether a package gets the full lock-order
// extraction (vs. a facts passthrough).
func lockOrderInScope(files []*ast.File, pkg *types.Package) bool {
	for _, s := range lockScopeSuffixes {
		if isPkgPathSuffix(pkg, s) {
			return true
		}
	}
	return packageHasDirective(files, "lockorder")
}

func runLockOrder(pass *Pass) error {
	la := newLockAnalysis(pass.Fset, pass.Files, pass.Pkg, pass.Info, pass.Cfg.Deps)
	pass.Cfg.Facts = la.facts
	la.report(pass)
	return nil
}

// ComputeLockFacts runs the lock-order extraction alone — no reporting —
// and returns the package's facts for the vetx side channel. This is the
// entry point for VetxOnly invocations under `go vet` and for the
// Loader's recursive dependency pass.
func ComputeLockFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps []*PackageFacts) *PackageFacts {
	return newLockAnalysis(fset, files, pkg, info, deps).facts
}

const (
	opAcquire = iota
	opTryAcquire
	opRelease
)

// lockOp is one classified mutex call site.
type lockOp struct {
	id     string // canonical lock ID
	kind   int
	expr   string // printable receiver path, e.g. "s.mu"
	method string // Lock, RLock, ...
}

// heldLock is one entry of the walk's held set.
type heldLock struct {
	id  string
	pos token.Pos
	how string // "s.mu.Lock() at server.go:751" or "//ftbfs:holds"
}

// ownEdge is a lock-order edge discovered in this package, with the
// acquisition site kept as a token.Pos so cycle findings anchor exactly
// there.
type ownEdge struct {
	LockEdge
	pos token.Pos
}

type lockAnalysis struct {
	fset  *token.FileSet
	files []*ast.File // non-test files only
	pkg   *types.Package
	info  *types.Info
	deps  []*PackageFacts

	inScope    bool
	depIdx     map[string]map[string][]string // pkg path -> funcKey -> acquires
	summary    map[string]map[string]bool     // funcKey -> transitive acquires
	localCalls map[string]map[string]bool     // funcKey -> same-package callees
	edgeSeen   map[[2]string]bool
	ownEdges   []ownEdge
	facts      *PackageFacts
}

func newLockAnalysis(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps []*PackageFacts) *lockAnalysis {
	la := &lockAnalysis{
		fset:       fset,
		files:      nonTestFiles(fset, files),
		pkg:        pkg,
		info:       info,
		deps:       deps,
		depIdx:     depAcquires(deps),
		summary:    make(map[string]map[string]bool),
		localCalls: make(map[string]map[string]bool),
		edgeSeen:   make(map[[2]string]bool),
	}
	la.inScope = lockOrderInScope(files, pkg)
	if !la.inScope {
		la.facts = PassthroughFacts(pkg.Path(), deps)
		return la
	}
	la.summarize()
	la.walkAll()
	la.facts = la.buildFacts()
	return la
}

// ---- summaries (which locks may a function acquire, transitively) ----

func (la *lockAnalysis) summarize() {
	for _, fd := range funcDecls(la.files) {
		key := la.declKey(fd)
		if key == "" {
			continue
		}
		acq, calls := la.directScan(fd.Body)
		la.summary[key] = acq
		la.localCalls[key] = calls
	}
	for changed := true; changed; {
		changed = false
		for key, callees := range la.localCalls {
			for callee := range callees {
				for a := range la.summary[callee] {
					if !la.summary[key][a] {
						la.summary[key][a] = true
						changed = true
					}
				}
			}
		}
	}
}

// directScan collects the locks a body acquires directly (including in
// deferred calls, which run on the same goroutine) plus its same-package
// callees; cross-package callees resolve immediately through dep facts.
// Function literals and go statements run outside the caller's
// synchronous execution and are excluded.
func (la *lockAnalysis) directScan(body ast.Node) (map[string]bool, map[string]bool) {
	acq := make(map[string]bool)
	calls := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := la.lockOpOf(call); ok {
			if op.kind != opRelease {
				acq[op.id] = true
			}
			return true
		}
		fn, ok := calleeObj(la.info, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg() == la.pkg {
			calls[funcKeyOf(fn)] = true
		} else {
			for _, a := range la.depIdx[fn.Pkg().Path()][funcKeyOf(fn)] {
				acq[a] = true
			}
		}
		return true
	})
	return acq, calls
}

// ---- held-set walk (edge discovery) ----

func (la *lockAnalysis) walkAll() {
	for _, fd := range funcDecls(la.files) {
		held := la.holdsInitial(fd)
		la.walkStmts(fd.Body.List, &held, funcTitle(fd))
	}
	// Every function literal is its own goroutine-agnostic unit: walked
	// with an empty held set (what the enclosing frame holds when — or
	// whether — the literal runs is not knowable syntactically).
	for _, f := range la.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				held := []heldLock{}
				la.walkStmts(fl.Body.List, &held, "function literal")
			}
			return true
		})
	}
}

// holdsInitial seeds the held set from //ftbfs:holds annotations: a bare
// `mu` resolves against the receiver type (pkg.Recv.mu) or, without a
// receiver, to a package-level mutex var (pkg.mu).
func (la *lockAnalysis) holdsInitial(fd *ast.FuncDecl) []heldLock {
	var held []heldLock
	recvType := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if n := namedOf(la.info.TypeOf(fd.Recv.List[0].Type)); n != nil {
			recvType = n.Obj().Name()
		}
	}
	for _, spec := range holdsAnnotations(fd) {
		tn := spec.typeName
		if tn == "" {
			tn = recvType
		}
		id := la.pkg.Path() + "." + spec.mutex
		if tn != "" {
			id = la.pkg.Path() + "." + tn + "." + spec.mutex
		}
		held = append(held, heldLock{id: id, pos: fd.Name.Pos(), how: "//ftbfs:holds"})
	}
	return held
}

// walkStmts threads one held set through a statement list in order.
func (la *lockAnalysis) walkStmts(list []ast.Stmt, held *[]heldLock, fname string) {
	for _, s := range list {
		la.walkStmt(s, held, fname)
	}
}

func (la *lockAnalysis) walkStmt(s ast.Stmt, held *[]heldLock, fname string) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		la.walkStmts(st.List, held, fname)
	case *ast.LabeledStmt:
		la.walkStmt(st.Stmt, held, fname)
	case *ast.IfStmt:
		la.walkStmt(st.Init, held, fname)
		la.scanExpr(st.Cond, held, fname)
		la.walkBranch(st.Body, held, fname)
		if st.Else != nil {
			branch := append([]heldLock(nil), *held...)
			la.walkStmt(st.Else, &branch, fname)
		}
	case *ast.ForStmt:
		la.walkStmt(st.Init, held, fname)
		la.scanExpr(st.Cond, held, fname)
		branch := append([]heldLock(nil), *held...)
		la.walkStmts(st.Body.List, &branch, fname)
		la.walkStmt(st.Post, &branch, fname)
	case *ast.RangeStmt:
		la.scanExpr(st.X, held, fname)
		la.walkBranch(st.Body, held, fname)
	case *ast.SwitchStmt:
		la.walkStmt(st.Init, held, fname)
		la.scanExpr(st.Tag, held, fname)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := append([]heldLock(nil), *held...)
				for _, e := range cc.List {
					la.scanExpr(e, &branch, fname)
				}
				la.walkStmts(cc.Body, &branch, fname)
			}
		}
	case *ast.TypeSwitchStmt:
		la.walkStmt(st.Init, held, fname)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := append([]heldLock(nil), *held...)
				la.walkStmts(cc.Body, &branch, fname)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := append([]heldLock(nil), *held...)
				la.walkStmt(cc.Comm, &branch, fname)
				la.walkStmts(cc.Body, &branch, fname)
			}
		}
	case *ast.GoStmt, *ast.DeferStmt:
		// Different goroutine / unknown held set at run time; their
		// function-literal bodies are walked separately.
	default:
		la.scanNode(s, held, fname)
	}
}

// walkBranch walks a conditional body over a copy of the held set, so
// MAY-held locks do not survive past the join.
func (la *lockAnalysis) walkBranch(body *ast.BlockStmt, held *[]heldLock, fname string) {
	branch := append([]heldLock(nil), *held...)
	la.walkStmts(body.List, &branch, fname)
}

func (la *lockAnalysis) scanExpr(e ast.Expr, held *[]heldLock, fname string) {
	if e != nil {
		la.scanNode(e, held, fname)
	}
}

// scanNode processes every call in a leaf statement or expression in
// source order, skipping function literals and deferred/concurrent
// subtrees.
func (la *lockAnalysis) scanNode(n ast.Node, held *[]heldLock, fname string) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			la.handleCall(call, held, fname)
		}
		return true
	})
}

func (la *lockAnalysis) handleCall(call *ast.CallExpr, held *[]heldLock, fname string) {
	if op, ok := la.lockOpOf(call); ok {
		switch op.kind {
		case opAcquire:
			for _, h := range *held {
				la.addEdge(h, op.id, call.Pos(), fmt.Sprintf("%s.%s()", op.expr, op.method), fname)
			}
			fallthrough
		case opTryAcquire:
			*held = append(*held, heldLock{
				id:  op.id,
				pos: call.Pos(),
				how: fmt.Sprintf("%s.%s() at %s", op.expr, op.method, la.shortPos(call.Pos())),
			})
		case opRelease:
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].id == op.id {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}
	if len(*held) == 0 {
		return
	}
	fn, ok := calleeObj(la.info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	var acquires []string
	var callee string
	if fn.Pkg() == la.pkg {
		key := funcKeyOf(fn)
		acquires = sortedKeys(la.summary[key])
		callee = key
	} else {
		acquires = la.depIdx[fn.Pkg().Path()][funcKeyOf(fn)]
		callee = fn.Pkg().Name() + "." + funcKeyOf(fn)
	}
	for _, a := range acquires {
		for _, h := range *held {
			la.addEdge(h, a, call.Pos(), fmt.Sprintf("via call to %s", callee), fname)
		}
	}
}

func (la *lockAnalysis) addEdge(from heldLock, to string, pos token.Pos, how, fname string) {
	k := [2]string{from.id, to}
	if la.edgeSeen[k] {
		return
	}
	la.edgeSeen[k] = true
	la.ownEdges = append(la.ownEdges, ownEdge{
		LockEdge: LockEdge{
			From: from.id,
			To:   to,
			Pos:  la.fset.Position(pos).String(),
			Desc: fmt.Sprintf("%s acquires %s (%s) while holding %s (%s)", fname, to, how, from.id, from.how),
		},
		pos: pos,
	})
}

// ---- lock identity ----

// lockOpOf classifies call as a mutex acquire/try/release. The method
// must resolve to sync's Mutex/RWMutex methods (which also catches calls
// promoted through embedding), and the operand must canonicalize to a
// long-lived lock ID.
func (la *lockAnalysis) lockOpOf(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opAcquire
	case "TryLock", "TryRLock":
		kind = opTryAcquire
	case "Unlock", "RUnlock":
		kind = opRelease
	default:
		return lockOp{}, false
	}
	fn, ok := calleeObj(la.info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	id := la.lockIDOf(sel)
	if id == "" {
		return lockOp{}, false
	}
	return lockOp{id: id, kind: kind, expr: exprPath(sel.X), method: sel.Sel.Name}, true
}

// lockIDOf canonicalizes the mutex operand of a Lock-family selector:
//
//	s.mu.Lock()           -> pkg.Server.mu   (owner's named type)
//	oracle.regMu.Lock()   -> pkg.regMu       (package-level var)
//	c.Lock()              -> pkg.Cache.Mutex (promoted embedded mutex)
//	reg.mu.Lock()         -> pkg.reg.mu      (anonymous-struct pkg var)
//
// Function-local mutexes return "": their lifetime is one call frame, so
// they cannot participate in a cross-function ordering cycle.
func (la *lockAnalysis) lockIDOf(sel *ast.SelectorExpr) string {
	x := ast.Unparen(sel.X)
	t := la.info.TypeOf(x)
	if isMutexType(t) || isMutexType(deref(types.Unalias(t))) {
		switch m := x.(type) {
		case *ast.SelectorExpr:
			if n := namedOf(la.info.TypeOf(m.X)); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + m.Sel.Name
			}
			// pkgname.Mu (qualified package-level var)
			if obj, ok := la.info.Uses[m.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			// mutex field of an anonymous struct rooted at a package var
			if root := rootIdent(m.X); root != nil {
				if obj, ok := la.info.Uses[root].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
					return obj.Pkg().Path() + "." + exprPath(m)
				}
			}
		case *ast.Ident:
			if obj, ok := la.info.Uses[m].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
		}
		return ""
	}
	// Promoted method: x is a value whose named type embeds the mutex.
	if n := namedOf(t); n != nil && n.Obj().Pkg() != nil {
		if st, ok := n.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Embedded() && isMutexType(f.Type()) {
					return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + f.Name()
				}
			}
		}
	}
	return ""
}

// funcKeyOf names a function for summaries and facts: "Name", or
// "Type.Name" for methods.
func funcKeyOf(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// declKey is funcKeyOf for a declaration site.
func (la *lockAnalysis) declKey(fd *ast.FuncDecl) string {
	fn, ok := la.info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return funcKeyOf(fn)
}

func (la *lockAnalysis) shortPos(pos token.Pos) string {
	p := la.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---- facts + cycle reporting ----

func (la *lockAnalysis) buildFacts() *PackageFacts {
	own := make([]LockEdge, len(la.ownEdges))
	for i, e := range la.ownEdges {
		own[i] = e.LockEdge
	}
	f := &PackageFacts{Path: la.pkg.Path(), Edges: mergeEdges(own, la.deps)}
	for _, key := range sortedMapKeys(la.summary) {
		acq := sortedKeys(la.summary[key])
		if len(acq) == 0 {
			continue
		}
		f.Funcs = append(f.Funcs, FuncLocks{Func: key, Acquires: acq})
	}
	return f
}

// report finds cycles in the union graph that include at least one edge
// discovered in this package (so a cycle is reported exactly once, where
// it closes) and prints every edge of the cycle: both acquisition paths,
// with positions.
func (la *lockAnalysis) report(pass *Pass) {
	if !la.inScope || len(la.ownEdges) == 0 {
		return
	}
	adj := make(map[string][]LockEdge)
	for _, e := range la.facts.Edges {
		adj[e.From] = append(adj[e.From], e)
	}
	edges := append([]ownEdge(nil), la.ownEdges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	reported := make(map[string]bool)
	for _, oe := range edges {
		if oe.From == oe.To {
			pass.Reportf(oe.pos, "lock %s acquired while already held: %s", oe.To, oe.Desc)
			continue
		}
		back := shortestLockPath(adj, oe.To, oe.From)
		if back == nil {
			continue
		}
		cycle := append([]LockEdge{oe.LockEdge}, back...)
		nodes := make([]string, 0, len(cycle))
		for _, e := range cycle {
			nodes = append(nodes, e.From)
		}
		key := cycleKey(nodes)
		if reported[key] {
			continue
		}
		reported[key] = true
		var b strings.Builder
		fmt.Fprintf(&b, "lock-order cycle (potential deadlock): %s -> %s", strings.Join(nodes, " -> "), nodes[0])
		for _, e := range cycle {
			fmt.Fprintf(&b, "; %s -> %s at %s (%s)", e.From, e.To, e.Pos, e.Desc)
		}
		pass.Reportf(oe.pos, "%s", b.String())
	}
}

// shortestLockPath BFSes from -> to over the edge adjacency, returning
// the edge sequence or nil.
func shortestLockPath(adj map[string][]LockEdge, from, to string) []LockEdge {
	type state struct {
		node string
		path []LockEdge
	}
	visited := map[string]bool{from: true}
	queue := []state{{node: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.node] {
			if e.To == to {
				return append(append([]LockEdge(nil), cur.path...), e)
			}
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			queue = append(queue, state{node: e.To, path: append(append([]LockEdge(nil), cur.path...), e)})
		}
	}
	return nil
}

func cycleKey(nodes []string) string {
	s := append([]string(nil), nodes...)
	sort.Strings(s)
	return strings.Join(s, "|")
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedMapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
