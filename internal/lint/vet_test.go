package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// buildLintTool compiles cmd/ftbfslint into a temp dir and returns the
// binary path and the module root.
func buildLintTool(t *testing.T) (string, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "ftbfslint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/ftbfslint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ftbfslint: %v\n%s", err, out)
	}
	return tool, root
}

// TestVetToolCleanTree builds cmd/ftbfslint and dogfoods it over the whole
// module through the real `go vet -vettool` protocol: the tree must be
// clean (every genuine finding fixed, every accepted one suppressed with a
// reason). This is also the end-to-end proof of the unit-checker protocol
// implementation — version handshake, -flags probe, config parsing, export
// data import, lock-order facts plumbing — since an error in any of those
// fails the vet run itself.
func TestVetToolCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and type-checks the whole module")
	}
	tool, root := buildLintTool(t)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool=ftbfslint ./... failed: %v\n%s", err, out.String())
	}
	if s := out.String(); len(s) > 0 {
		t.Fatalf("expected a clean tree, vet printed:\n%s", s)
	}
}

// TestUpdateLocksByteStable runs `ftbfslint -update-locks` twice over the
// real tree and requires both runs to reproduce the committed lock files
// byte for byte: regeneration is deterministic, and the committed locks
// are current.
func TestUpdateLocksByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and type-checks the facade and snap packages")
	}
	tool, root := buildLintTool(t)
	lockDir := filepath.Join(root, "internal", "lint", "testdata")
	locks := []string{lint.SnapSchemaLockFile, lint.APISurfaceLockFile}

	committed := make(map[string][]byte)
	for _, name := range locks {
		data, err := os.ReadFile(filepath.Join(lockDir, name))
		if err != nil {
			t.Fatalf("reading committed lock: %v", err)
		}
		committed[name] = data
	}
	// The run rewrites the committed files in place; put them back however
	// the test ends so a failure does not leave the tree dirty.
	defer func() {
		for _, name := range locks {
			os.WriteFile(filepath.Join(lockDir, name), committed[name], 0o644)
		}
	}()

	for run := 1; run <= 2; run++ {
		cmd := exec.Command(tool, "-update-locks")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("ftbfslint -update-locks (run %d): %v\n%s", run, err, out)
		}
		for _, name := range locks {
			got, err := os.ReadFile(filepath.Join(lockDir, name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, committed[name]) {
				t.Errorf("run %d: regenerated %s differs from the committed file; commit the regenerated version (or bump snap.Version first)", run, name)
			}
		}
	}
}

// TestFixtureLocksRoundTrip regenerates the fixture lock files in-process
// into a temp dir and requires byte equality with the committed fixtures:
// the same determinism contract, without a toolchain subprocess.
func TestFixtureLocksRoundTrip(t *testing.T) {
	cases := []struct {
		pkg, lockDir, lockFile string
		cfg                    lint.Config
		analyzer               *lint.Analyzer
	}{
		{
			pkg: "snapschematest/internal/snap", lockDir: "testdata/src/snapschematest",
			lockFile: lint.SnapSchemaLockFile, analyzer: lint.SnapSchema,
		},
		{
			pkg: "apisurfacetest", lockDir: "testdata/src/apisurfacetest",
			lockFile: lint.APISurfaceLockFile, analyzer: lint.APISurface,
			cfg: lint.Config{ModulePath: "apisurfacetest"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			committed, err := os.ReadFile(filepath.Join(tc.lockDir, tc.lockFile))
			if err != nil {
				t.Fatal(err)
			}
			tmp := t.TempDir()
			for run := 1; run <= 2; run++ {
				cfg := tc.cfg
				cfg.LockDir = tmp
				cfg.UpdateLocks = true
				if _, err := fixtureLoader().AnalyzeWP(tc.pkg, []*lint.Analyzer{tc.analyzer}, &cfg); err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(tmp, tc.lockFile))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, committed) {
					t.Errorf("run %d: regenerated %s differs from committed fixture lock", run, tc.lockFile)
				}
			}
		})
	}
}

// TestJSONFindings plants one finding in a scratch module and checks the
// machine interfaces end to end: NDJSON on stdout, the problem-matcher
// line format on stderr, and a failing exit status.
func TestJSONFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet on a scratch module")
	}
	tool, _ := buildLintTool(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package scratch

import "context"

func Leak() context.Context {
	ctx, _ := context.WithCancel(context.Background())
	return ctx
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(tool, "-json", "./...")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("expected a failing exit status for a module with findings\nstderr:\n%s", stderr.String())
	}

	var finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	line := strings.TrimSpace(stdout.String())
	if line == "" || strings.ContainsRune(line, '\n') {
		t.Fatalf("want exactly one NDJSON line on stdout, got:\n%q", stdout.String())
	}
	if err := json.Unmarshal([]byte(line), &finding); err != nil {
		t.Fatalf("parsing NDJSON %q: %v", line, err)
	}
	if finding.Analyzer != "leakcheck" || finding.Line != 6 || !strings.HasSuffix(finding.File, "scratch.go") || finding.Col == 0 {
		t.Errorf("unexpected finding: %+v", finding)
	}

	// Without -json, the stderr rendering is what the CI problem matcher
	// (.github/ftbfslint-matcher.json) parses: file:line:col: [analyzer].
	human := exec.Command(tool, "./...")
	human.Dir = dir
	var humanErr bytes.Buffer
	human.Stderr = &humanErr
	if err := human.Run(); err == nil {
		t.Fatal("expected a failing exit status for a module with findings")
	}
	if !strings.Contains(humanErr.String(), "scratch.go:6:12: [leakcheck]") {
		t.Errorf("stderr not in problem-matcher format:\n%s", humanErr.String())
	}
}
