package lint_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVetToolCleanTree builds cmd/ftbfslint and dogfoods it over the whole
// module through the real `go vet -vettool` protocol: the tree must be
// clean (every genuine finding fixed, every accepted one suppressed with a
// reason). This is also the end-to-end proof of the unit-checker protocol
// implementation — version handshake, -flags probe, config parsing, export
// data import — since an error in any of those fails the vet run itself.
func TestVetToolCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "ftbfslint")

	build := exec.Command("go", "build", "-o", tool, "./cmd/ftbfslint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ftbfslint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool=ftbfslint ./... failed: %v\n%s", err, out.String())
	}
	if s := out.String(); len(s) > 0 {
		t.Fatalf("expected a clean tree, vet printed:\n%s", s)
	}
}
