package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// PackageFacts is the whole-program side channel between per-package
// ftbfslint runs. Under `go vet -vettool` each package run writes its
// facts to the vetx output file and reads its dependencies' facts from
// theirs (the same mechanism x/tools analysis facts ride); the in-process
// Loader computes them directly. The payload is the lock-order state:
// which locks each function may acquire (transitively), and every
// lock-order edge observed so far. Edges are unioned downward through the
// import graph, so any package that can see two packages' locks also sees
// every ordering constraint between them.
type PackageFacts struct {
	// Path is the canonical import path the facts were computed for.
	Path string `json:"path"`
	// Funcs maps package functions to the locks they may acquire.
	Funcs []FuncLocks `json:"funcs,omitempty"`
	// Edges is the accumulated lock-order graph: own edges plus every
	// dependency edge, deduplicated.
	Edges []LockEdge `json:"edges,omitempty"`
}

// FuncLocks is the lock summary of one function: the set of canonical
// lock IDs the function (or anything it calls) may acquire while running
// on the caller's goroutine.
type FuncLocks struct {
	// Func is "Name" for package functions, "Type.Name" for methods.
	Func     string   `json:"func"`
	Acquires []string `json:"acquires"`
}

// LockEdge records that To was acquired while From was held. Pos is the
// acquisition site ("file:line:col"), Desc the human acquisition path
// (who held what, and through which call the second lock was taken).
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos"`
	Desc string `json:"desc"`
}

// EncodeFacts serializes facts for a vetx file. nil encodes to an empty
// payload (a package with nothing to say).
func EncodeFacts(f *PackageFacts) []byte {
	if f == nil {
		return nil
	}
	data, err := json.Marshal(f)
	if err != nil {
		// Marshal of these plain structs cannot fail; keep the signature
		// write-friendly.
		panic(fmt.Sprintf("lint: encoding facts: %v", err))
	}
	return data
}

// DecodeFacts parses a vetx payload. Empty or unparseable data (a vetx
// file written by a different tool version) decodes to nil: facts are an
// accuracy upgrade, never a correctness requirement.
func DecodeFacts(data []byte) *PackageFacts {
	if len(data) == 0 {
		return nil
	}
	var f PackageFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil
	}
	return &f
}

// PassthroughFacts builds the facts of a package outside lock scope: no
// functions of its own, dependency edges forwarded so ordering
// constraints survive import chains that pass through neutral packages.
func PassthroughFacts(path string, deps []*PackageFacts) *PackageFacts {
	return &PackageFacts{Path: path, Edges: mergeEdges(nil, deps)}
}

// mergeEdges unions own edges with every dependency's edges,
// deduplicating by (From, To) — the first witness wins — and sorting for
// deterministic output.
func mergeEdges(own []LockEdge, deps []*PackageFacts) []LockEdge {
	seen := make(map[[2]string]bool)
	var out []LockEdge
	add := func(e LockEdge) {
		k := [2]string{e.From, e.To}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, e)
	}
	for _, e := range own {
		add(e)
	}
	for _, d := range deps {
		if d == nil {
			continue
		}
		for _, e := range d.Edges {
			add(e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// depAcquires indexes dependency facts as pkgPath -> funcKey -> acquired
// lock IDs.
func depAcquires(deps []*PackageFacts) map[string]map[string][]string {
	idx := make(map[string]map[string][]string)
	for _, d := range deps {
		if d == nil {
			continue
		}
		m := idx[d.Path]
		if m == nil {
			m = make(map[string][]string)
			idx[d.Path] = m
		}
		for _, fl := range d.Funcs {
			m[fl.Func] = fl.Acquires
		}
	}
	return idx
}
