package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll keeps builder packages cancellable. A package opts in with a
// bare `//ftbfs:builders` comment; in such packages:
//
//  1. Every exported function named Build* or Search* must visibly wire up
//     cancellation: construct a cancel.Poller, poll one, or forward a
//     context-carrying value (context.Context, *cancel.Poller, or a
//     pointer to a struct with a context.Context field, like
//     *core.Options) to another function. A builder that does none of
//     these ships uncancellable.
//  2. Every loop that invokes a search primitive (anything in the bfs,
//     wsp, replace or spdag packages) must poll inside the loop body or
//     forward a context-carrying value into it — the loops whose bounds
//     grow with graph size or fault-set count are exactly the loops that
//     call the search engines.
//
// The check is flow-insensitive: forwarding a context counts as polling
// because the callee is checked on its own. What it cannot see is a
// forwarded context that the callee ignores — that callee is flagged when
// its own package is analyzed, if it opted in.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "exported builders in //ftbfs:builders packages construct and poll a cancel.Poller in every search loop",
	Run:  runCtxPoll,
}

// searchPkgs are the expensive-primitive homes: a loop calling into any of
// these is assumed to scale with graph size or fault-set count.
var searchPkgs = []string{"internal/bfs", "internal/wsp", "internal/replace", "internal/spdag"}

func runCtxPoll(pass *Pass) error {
	if !packageHasDirective(pass.Files, "builders") {
		return nil
	}
	// Test files run builders synchronously to completion; demanding
	// cancellation plumbing there would force every benchmark and table
	// test to thread a context it never cancels.
	files := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	for _, fd := range funcDecls(files) {
		exported := fd.Name.IsExported() &&
			(strings.HasPrefix(fd.Name.Name, "Build") || strings.HasPrefix(fd.Name.Name, "Search"))
		if exported && !bodyWiresCancellation(pass, fd.Body) {
			pass.Reportf(fd.Name.Pos(),
				"exported builder %s neither constructs/polls a cancel.Poller nor forwards a context: it ships uncancellable",
				fd.Name.Name)
			// The per-loop check would repeat the same story for every
			// loop of an unwired builder; one finding is enough.
			continue
		}
		checkSearchLoops(pass, fd)
	}
	return nil
}

// bodyWiresCancellation reports whether the body constructs a Poller,
// polls one, or makes any call that forwards a context-carrying value.
func bodyWiresCancellation(pass *Pass, body ast.Node) bool {
	wired := false
	ast.Inspect(body, func(n ast.Node) bool {
		if wired {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCancelConstruct(pass, call) || isPollCall(pass, call) || forwardsContext(pass, call) {
			wired = true
			return false
		}
		return true
	})
	return wired
}

// isCancelConstruct matches cancel.New(...) from the internal/cancel
// package.
func isCancelConstruct(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFuncCall(pass.Info, call, "internal/cancel", "New")
}

// isPollCall matches Poll/Check method calls on a *cancel.Poller.
func isPollCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Poll" && sel.Sel.Name != "Check") {
		return false
	}
	return typeFromPath(pass.Info.TypeOf(sel.X), "internal/cancel", "Poller")
}

// forwardsContext reports whether any argument (or the method receiver)
// carries cancellation into the callee: a context.Context, a
// *cancel.Poller, or a pointer to a struct with a context.Context field.
func forwardsContext(pass *Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if selection := pass.Info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
			if carriesContext(pass.Info.TypeOf(sel.X)) {
				return true
			}
		}
	}
	for _, arg := range call.Args {
		if carriesContext(pass.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// carriesContext classifies context-carrying types.
func carriesContext(t types.Type) bool {
	if t == nil {
		return false
	}
	if typeFromPath(t, "context", "Context") || typeFromPath(t, "internal/cancel", "Poller") {
		return true
	}
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := p.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if typeFromPath(ft, "context", "Context") || typeFromPath(ft, "internal/cancel", "Poller") {
			return true
		}
	}
	return false
}

// checkSearchLoops flags every for/range statement that calls a search
// primitive somewhere in its body without also polling or forwarding a
// context in that same body.
func checkSearchLoops(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !callsSearchPrimitive(pass, body) {
			return true
		}
		if bodyWiresCancellation(pass, body) {
			return true
		}
		pass.Reportf(n.Pos(),
			"loop calls a search primitive (%s) but neither polls a cancel.Poller nor forwards a context inside the loop",
			searchCalleeName(pass, body))
		// Nested loops inside an already-flagged loop share the fix;
		// descending would only repeat the finding.
		return false
	})
}

func callsSearchPrimitive(pass *Pass, body ast.Node) bool {
	return searchCalleeName(pass, body) != ""
}

// searchCalleeName returns "pkg.Func" of the first search-primitive call
// in body, or "".
func searchCalleeName(pass *Pass, body ast.Node) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.Info, call)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			return true
		}
		for _, p := range searchPkgs {
			if isPkgPathSuffix(fn.Pkg(), p) {
				name = fn.Pkg().Name() + "." + fn.Name()
				return false
			}
		}
		return true
	})
	return name
}
