package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader type-checks packages from source for in-process analysis (tests,
// the seeded-bug harness). Import resolution order:
//
//  1. GOPATH-style SrcDirs roots (<root>/<importpath>/*.go) — the
//     analysistest convention, so fixtures can stub repro/internal/...
//  2. the module mapping (ModulePath -> ModuleDir)
//  3. the standard library, type-checked from GOROOT source via
//     go/importer's source importer (works offline, no export data
//     needed)
//
// Production linting does not go through the Loader: cmd/ftbfslint runs
// under `go vet -vettool`, which supplies compiler export data per
// package (see unit.go). The Loader exists so analyzer tests need neither
// a go toolchain subprocess nor network.
type Loader struct {
	Fset       *token.FileSet
	SrcDirs    []string
	ModulePath string
	ModuleDir  string

	mu      sync.Mutex
	pkgs    map[string]*LoadedPackage
	loading map[string]bool
	std     types.ImporterFrom
}

// LoadedPackage is one type-checked package with its syntax retained.
type LoadedPackage struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader returns a loader over the given fixture roots (searched in
// order before the module mapping).
func NewLoader(modulePath, moduleDir string, srcDirs ...string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		SrcDirs:    srcDirs,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		pkgs:       make(map[string]*LoadedPackage),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Load type-checks the package with the given import path (resolving its
// directory through SrcDirs then the module mapping) and returns it with
// syntax and full type info.
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom. It is called re-entrantly by
// go/types during l.load, which already holds l.mu.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.resolveDir(path); ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// resolveDir maps an import path to a source directory.
func (l *Loader) resolveDir(path string) (string, bool) {
	for _, root := range l.SrcDirs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func (l *Loader) load(path string) (*LoadedPackage, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.resolveDir(path)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve %q to a source directory", path)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &LoadedPackage{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the package's non-test files in name order (stable
// positions for tests).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Analyze loads the package and runs the given analyzers over it.
func (l *Loader) Analyze(path string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return l.AnalyzeWP(path, analyzers, nil)
}

// AnalyzeWP is Analyze with a Config: it additionally computes lock-order
// facts for every source-resolvable dependency of the target (transitively,
// so facts propagate through neutral import hops the way vet's vetx chain
// does in production) and hands them to the whole-program analyzers.
func (l *Loader) AnalyzeWP(path string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	if cfg == nil {
		cfg = &Config{}
	}
	if cfg.Deps == nil {
		memo := make(map[string]*PackageFacts)
		for _, imp := range p.Types.Imports() {
			if f := l.lockFacts(imp.Path(), memo); f != nil {
				cfg.Deps = append(cfg.Deps, f)
			}
		}
	}
	return RunAnalyzers(l.Fset, p.Files, p.Types, p.Info, analyzers, cfg)
}

// lockFacts computes (memoized) lock-order facts for a dependency, or a
// passthrough record when the package is outside the lock scope. Std
// packages that don't resolve through SrcDirs/module mapping yield nil.
func (l *Loader) lockFacts(path string, memo map[string]*PackageFacts) *PackageFacts {
	if f, ok := memo[path]; ok {
		return f
	}
	memo[path] = nil // break cycles
	if _, ok := l.resolveDir(path); !ok {
		return nil
	}
	p, err := l.Load(path)
	if err != nil {
		return nil
	}
	var deps []*PackageFacts
	for _, imp := range p.Types.Imports() {
		if f := l.lockFacts(imp.Path(), memo); f != nil {
			deps = append(deps, f)
		}
	}
	var facts *PackageFacts
	if lockOrderInScope(p.Files, p.Types) {
		facts = ComputeLockFacts(l.Fset, p.Files, p.Types, p.Info, deps)
	} else {
		facts = PassthroughFacts(path, deps)
	}
	memo[path] = facts
	return facts
}
