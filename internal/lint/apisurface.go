package lint

import (
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// APISurface freezes the module's exported facade. Every exported object
// in the root package (the ftbfs.go facade) is rendered with its full
// type signature and diffed against the committed apisurface.lock, so a
// signature change, a removal, or a new export shows up as a lint
// finding and — after `ftbfslint -update-locks` — as an ordinary
// reviewable diff of the lock file.
//
// The analyzer anchors on the package whose import path equals
// Config.ModulePath and needs Config.LockDir; elsewhere it is inert.
var APISurface = &Analyzer{
	Name: "apisurface",
	Doc:  "exported surface of the module facade matches apisurface.lock",
	Run:  runAPISurface,
}

func runAPISurface(pass *Pass) error {
	cfg := pass.Cfg
	if cfg.ModulePath == "" || cfg.LockDir == "" || pass.Pkg.Path() != cfg.ModulePath {
		return nil
	}
	surface := apiSurfaceLines(pass)
	lockPath := filepath.Join(cfg.LockDir, APISurfaceLockFile)
	if cfg.UpdateLocks {
		return writeLock(lockPath, apiLockHeader, lineTexts(surface))
	}
	locked, exists, err := readLockLines(lockPath)
	if err != nil {
		return err
	}
	pkgPos := packageClausePos(pass)
	if !exists {
		pass.Reportf(pkgPos, "apisurface.lock missing from %s; run `ftbfslint -update-locks` to record the exported surface", cfg.LockDir)
		return nil
	}
	reportSurfaceDrift(pass, surface, locked, pkgPos)
	return nil
}

var apiLockHeader = []string{
	"ftbfslint apisurface lock file.",
	"Exported surface of the module facade, one declaration per line.",
	"Regenerate with `ftbfslint -update-locks` after an intentional API",
	"change so the diff shows up in review (see DESIGN.md §7).",
}

const surfaceAdvice = "; run `ftbfslint -update-locks` if the API change is intentional"

// reportSurfaceDrift diffs by declaration name so findings anchor on the
// drifted object — or, for removals, on the package clause.
func reportSurfaceDrift(pass *Pass, surface []fpLine, locked []string, pkgPos token.Pos) {
	got := make(map[string]fpLine)
	for _, l := range surface {
		got[surfaceKey(l.text)] = l
	}
	want := make(map[string]string)
	for _, l := range locked {
		want[surfaceKey(l)] = l
	}
	names := make(map[string]bool)
	for n := range got {
		names[n] = true
	}
	for n := range want {
		names[n] = true
	}
	for _, name := range sortedMapKeys(names) {
		g, inGot := got[name]
		w, inWant := want[name]
		switch {
		case !inWant:
			pass.Reportf(g.pos, "exported %s is not recorded in apisurface.lock%s", name, surfaceAdvice)
		case !inGot:
			pass.Reportf(pkgPos, "exported %s has been removed but is still recorded in apisurface.lock%s", name, surfaceAdvice)
		case g.text != w:
			pass.Reportf(g.pos, "exported surface drift: %q (locked: %q)%s", g.text, w, surfaceAdvice)
		}
	}
}

// surfaceKey extracts a stable declaration key from a surface line:
// "func Name(...)" → "func Name", "func (*Server) Close() error" →
// "func (Server).Close", "type Meta struct{...}" → "type Meta". The
// receiver stays in the key (modulo pointerness) so methods of
// different types with the same name diff independently.
func surfaceKey(line string) string {
	kind, rest, ok := strings.Cut(line, " ")
	if !ok {
		return line
	}
	recv := ""
	if kind == "func" && strings.HasPrefix(rest, "(") {
		if i := strings.Index(rest, ") "); i >= 0 {
			recv = "(" + strings.TrimPrefix(strings.Trim(rest[:i+1], "()"), "*") + ")."
			rest = rest[i+2:]
		}
	}
	name := rest
	if i := strings.IndexAny(name, " ([="); i >= 0 {
		name = name[:i]
	}
	return kind + " " + recv + name
}

// apiSurfaceLines renders every exported package-scope object, sorted.
// Objects declared in _test.go files are excluded: go vet analyzes the
// test variant of the package, and test helpers are not API.
func apiSurfaceLines(pass *Pass) []fpLine {
	qual := func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return strings.TrimPrefix(p.Path(), pass.Cfg.ModulePath+"/")
	}
	scope := pass.Pkg.Scope()
	var out []fpLine
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		if f := pass.Fset.Position(obj.Pos()).Filename; strings.HasSuffix(f, "_test.go") {
			continue
		}
		out = append(out, fpLine{types.ObjectString(obj, qual), obj.Pos()})
		// Exported methods of exported named types are surface too.
		if tn, ok := obj.(*types.TypeName); ok {
			if n := namedOf(tn.Type()); n != nil {
				for i := 0; i < n.NumMethods(); i++ {
					m := n.Method(i)
					if m.Exported() {
						out = append(out, fpLine{types.ObjectString(m, qual), m.Pos()})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].text < out[j].text })
	return out
}
