package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SnapSchema freezes the snapshot wire contract. It computes a structural
// fingerprint of everything that feeds the encoder — the Magic/Version
// constants, the [4]byte section-ID table, and every struct reachable
// from snap.Meta and snap.Snapshot through module-internal types (field
// names, order, types, tags) — and diffs it against the committed
// snapschema.lock. Any drift is a finding unless the fingerprint's
// format version differs from the locked one: bumping snap.Version is
// the declared way to change the wire format, and regenerating the lock
// with `ftbfslint -update-locks` is the declared way to bless a change
// that provably leaves the encoding alone (a comment-only tag edit, a
// rename that no section serializes).
//
// The analyzer anchors on packages whose import path ends in
// internal/snap and needs Config.LockDir; elsewhere it is inert.
var SnapSchema = &Analyzer{
	Name: "snapschema",
	Doc:  "snapshot wire schema (structs reachable from snap.Meta/Snapshot + section table) matches snapschema.lock",
	Run:  runSnapSchema,
}

// fpLine is one fingerprint line with the source position a drift
// finding should anchor on.
type fpLine struct {
	text string
	pos  token.Pos
}

func runSnapSchema(pass *Pass) error {
	if !isPkgPathSuffix(pass.Pkg, "internal/snap") || pass.Cfg.LockDir == "" {
		return nil
	}
	fp := snapFingerprint(pass)
	lockPath := filepath.Join(pass.Cfg.LockDir, SnapSchemaLockFile)
	if pass.Cfg.UpdateLocks {
		return writeLock(lockPath, snapLockHeader, lineTexts(fp))
	}
	locked, exists, err := readLockLines(lockPath)
	if err != nil {
		return err
	}
	pkgPos := packageClausePos(pass)
	if !exists {
		pass.Reportf(pkgPos, "snapschema.lock missing from %s; run `ftbfslint -update-locks` to record the wire schema", pass.Cfg.LockDir)
		return nil
	}
	// A differing Version constant IS the wire-format bump: every other
	// drift is then expected and the lock is refreshed by regeneration.
	if lv, cv := lockedConst(locked, "Version"), lockedConst(lineTexts(fp), "Version"); lv != "" && cv != "" && lv != cv {
		return nil
	}
	reportSchemaDrift(pass, fp, locked, pkgPos)
	return nil
}

var snapLockHeader = []string{
	"ftbfslint snapschema lock file.",
	"Structural fingerprint of the snapshot wire contract: Magic/Version,",
	"the section-ID table, and every struct reachable from Meta/Snapshot.",
	"Regenerate with `ftbfslint -update-locks` — and bump snap.Version",
	"first if the change alters the encoding (see DESIGN.md §7).",
}

// reportSchemaDrift diffs block-wise so each finding anchors on the
// drifted declaration, not just "the files differ".
func reportSchemaDrift(pass *Pass, fp []fpLine, locked []string, pkgPos token.Pos) {
	got := parseFpBlocks(fp)
	want := parseLockBlocks(locked)
	names := make(map[string]bool)
	for n := range got {
		names[n] = true
	}
	for n := range want {
		names[n] = true
	}
	for _, name := range sortedMapKeys(names) {
		g, inGot := got[name]
		w, inWant := want[name]
		switch {
		case !inWant:
			pass.Reportf(g.pos, "%s is newly part of the snapshot wire schema and not in snapschema.lock%s", name, schemaAdvice)
		case !inGot:
			pass.Reportf(pkgPos, "%s is in snapschema.lock but no longer reachable from the snapshot roots%s", name, schemaAdvice)
		default:
			for i := 0; i < len(g.lines) || i < len(w); i++ {
				switch {
				case i >= len(g.lines):
					pass.Reportf(g.pos, "%s lost %q recorded in snapschema.lock%s", name, strings.TrimSpace(w[i]), schemaAdvice)
				case i >= len(w):
					pass.Reportf(g.lines[i].pos, "%s gained %q not recorded in snapschema.lock%s", name, strings.TrimSpace(g.lines[i].text), schemaAdvice)
				case g.lines[i].text != w[i]:
					pass.Reportf(g.lines[i].pos, "snapshot schema drift in %s: %q (locked: %q)%s",
						name, strings.TrimSpace(g.lines[i].text), strings.TrimSpace(w[i]), schemaAdvice)
				default:
					continue
				}
				break // one finding per block pins the first drift
			}
		}
	}
}

const schemaAdvice = "; bump snap.Version for a wire-format change, or run `ftbfslint -update-locks` if the encoding is provably unchanged"

// fpBlock groups fingerprint lines under their header ("" for the
// consts/sections preamble, otherwise the struct/type line itself).
type fpBlock struct {
	pos   token.Pos
	lines []fpLine
}

func isBlockHeader(text string) bool {
	return strings.HasPrefix(text, "struct ") || strings.HasPrefix(text, "type ")
}

func parseFpBlocks(fp []fpLine) map[string]*fpBlock {
	blocks := map[string]*fpBlock{"(schema header)": {}}
	cur := blocks["(schema header)"]
	for _, l := range fp {
		if isBlockHeader(l.text) {
			cur = &fpBlock{pos: l.pos}
			blocks[l.text] = cur
			continue
		}
		if cur.pos == token.NoPos {
			cur.pos = l.pos
		}
		cur.lines = append(cur.lines, l)
	}
	return blocks
}

func parseLockBlocks(lines []string) map[string][]string {
	blocks := map[string][]string{"(schema header)": nil}
	cur := "(schema header)"
	for _, l := range lines {
		if isBlockHeader(l) {
			cur = l
			blocks[cur] = nil
			continue
		}
		blocks[cur] = append(blocks[cur], l)
	}
	return blocks
}

// lockedConst extracts the value of "const <name> <value>" from content
// lines ("" when absent).
func lockedConst(lines []string, name string) string {
	prefix := "const " + name + " "
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, prefix); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func lineTexts(fp []fpLine) []string {
	out := make([]string, len(fp))
	for i, l := range fp {
		out[i] = l.text
	}
	return out
}

func packageClausePos(pass *Pass) token.Pos {
	files := nonTestFiles(pass.Fset, pass.Files)
	if len(files) == 0 {
		files = pass.Files
	}
	return files[0].Name.Pos()
}

// ---- fingerprint computation ----

// snapFingerprint renders the wire schema as deterministic text. Package
// paths are recorded relative to the module prefix (the pkg path with
// the trailing internal/snap cut off), so the same schema fingerprints
// identically under the real module path and under a fixture root.
func snapFingerprint(pass *Pass) []fpLine {
	var out []fpLine
	scope := pass.Pkg.Scope()
	modPrefix := strings.TrimSuffix(pass.Pkg.Path(), "internal/snap")
	inModule := func(p *types.Package) bool {
		return p == pass.Pkg || (modPrefix != "" && strings.HasPrefix(p.Path(), modPrefix))
	}
	rel := func(p *types.Package) string {
		if modPrefix != "" {
			return strings.TrimPrefix(p.Path(), modPrefix)
		}
		return p.Path()
	}

	for _, name := range []string{"Magic", "Version"} {
		if c, ok := scope.Lookup(name).(*types.Const); ok {
			out = append(out, fpLine{fmt.Sprintf("const %s %s", name, c.Val().String()), c.Pos()})
		}
	}
	out = append(out, sectionTable(pass)...)

	// Worklist over named types reachable from the roots.
	seen := make(map[string]bool)
	var queue []*types.Named
	push := func(n *types.Named) {
		if n.Obj().Pkg() == nil || !inModule(n.Obj().Pkg()) {
			return
		}
		name := rel(n.Obj().Pkg()) + "." + n.Obj().Name()
		if seen[name] {
			return
		}
		seen[name] = true
		queue = append(queue, n)
	}
	for _, root := range []string{"Meta", "Snapshot"} {
		if tn, ok := scope.Lookup(root).(*types.TypeName); ok {
			if n := namedOf(tn.Type()); n != nil {
				push(n)
			}
		}
	}
	type block struct {
		header fpLine
		lines  []fpLine
	}
	var blocks []block
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		obj := n.Obj()
		name := rel(obj.Pkg()) + "." + obj.Name()
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			blocks = append(blocks, block{header: fpLine{
				fmt.Sprintf("type %s %s", name, types.TypeString(n.Underlying(), rel)), obj.Pos()}})
			walkFieldType(n.Underlying(), push)
			continue
		}
		b := block{header: fpLine{"struct " + name, obj.Pos()}}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			text := fmt.Sprintf(" field %s %s", f.Name(), types.TypeString(f.Type(), rel))
			if tag := st.Tag(i); tag != "" {
				text += " tag:" + strconv.Quote(tag)
			}
			b.lines = append(b.lines, fpLine{text, f.Pos()})
			walkFieldType(f.Type(), push)
		}
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].header.text < blocks[j].header.text })
	for _, b := range blocks {
		out = append(out, b.header)
		out = append(out, b.lines...)
	}
	return out
}

// walkFieldType feeds every named type inside t to push, through
// pointers, containers and anonymous structs.
func walkFieldType(t types.Type, push func(*types.Named)) {
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		walkFieldType(tt.Elem(), push)
	case *types.Slice:
		walkFieldType(tt.Elem(), push)
	case *types.Array:
		walkFieldType(tt.Elem(), push)
	case *types.Chan:
		walkFieldType(tt.Elem(), push)
	case *types.Map:
		walkFieldType(tt.Key(), push)
		walkFieldType(tt.Elem(), push)
	case *types.Named:
		push(tt)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			walkFieldType(tt.Field(i).Type(), push)
		}
	}
}

// sectionTable fingerprints every package-level [4]byte var — the
// on-wire section IDs — sorted by name.
func sectionTable(pass *Pass) []fpLine {
	var secs []fpLine
	for _, f := range nonTestFiles(pass.Fset, pass.Files) {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, sp := range gd.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					if i >= len(vs.Values) || !isByte4Array(pass.Info.TypeOf(vs.Values[i])) {
						continue
					}
					secs = append(secs, fpLine{
						fmt.Sprintf("section %s %s", nm.Name, strconv.Quote(byte4Value(pass, vs.Values[i]))),
						nm.Pos(),
					})
				}
			}
		}
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i].text < secs[j].text })
	return secs
}

func isByte4Array(t types.Type) bool {
	arr, ok := types.Unalias(t).(*types.Array)
	if !ok || arr.Len() != 4 {
		return false
	}
	b, ok := types.Unalias(arr.Elem()).(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// byte4Value renders a [4]byte composite literal's constant elements.
func byte4Value(pass *Pass, v ast.Expr) string {
	lit, ok := ast.Unparen(v).(*ast.CompositeLit)
	if !ok {
		return "????"
	}
	b := make([]byte, 0, 4)
	for _, e := range lit.Elts {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Value == nil {
			return "????"
		}
		n, ok := constant.Int64Val(tv.Value)
		if !ok {
			return "????"
		}
		b = append(b, byte(n))
	}
	return string(b)
}
