package lint_test

import (
	"sync"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The loader is shared: the source importer type-checks the standard
// library from GOROOT, and paying that once per `go test` run instead of
// once per analyzer keeps the suite fast.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
)

func fixtureLoader() *lint.Loader {
	loaderOnce.Do(func() {
		loader = lint.NewLoader("", "", "testdata/src")
	})
	return loader
}

func TestLockGuard(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.LockGuard, "lockguardtest")
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.AtomicField, "atomicfieldtest")
}

func TestCtxPoll(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.CtxPoll, "ctxpolltest")
}

func TestCtxPollWithoutMarker(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.CtxPoll, "ctxpollquiet")
}

func TestFrozenAlias(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.FrozenAlias, "frozenaliastest")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.HotAlloc, "hotalloctest")
}

// TestSuiteOnSeedbed double-checks that the seeded-bug baseline package is
// clean under the full suite (the seeded test depends on it).
func TestSuiteOnSeedbed(t *testing.T) {
	diags, err := fixtureLoader().Analyze("seedbed", lint.Suite())
	if err != nil {
		t.Fatalf("analyzing seedbed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("seedbed must be clean, got: %s", d)
	}
}
