package lint_test

import (
	"sync"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The loader is shared: the source importer type-checks the standard
// library from GOROOT, and paying that once per `go test` run instead of
// once per analyzer keeps the suite fast.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
)

func fixtureLoader() *lint.Loader {
	loaderOnce.Do(func() {
		loader = lint.NewLoader("", "", "testdata/src")
	})
	return loader
}

func TestLockGuard(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.LockGuard, "lockguardtest")
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.AtomicField, "atomicfieldtest")
}

func TestCtxPoll(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.CtxPoll, "ctxpolltest")
}

func TestCtxPollWithoutMarker(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.CtxPoll, "ctxpollquiet")
}

func TestFrozenAlias(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.FrozenAlias, "frozenaliastest")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.HotAlloc, "hotalloctest")
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.LockOrder, "lockordertest")
}

// TestLockOrderCrossPackage pins the facts side channel: the cycle spans
// liba and libb and is only visible in the merged edge graph.
func TestLockOrderCrossPackage(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.LockOrder, "lockorderx/libb")
}

// TestLockOrderHalfCycleSilent: liba alone holds only one direction of
// the cycle and must not report.
func TestLockOrderHalfCycleSilent(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.LockOrder, "lockorderx/liba")
}

func TestLeakCheck(t *testing.T) {
	linttest.Run(t, fixtureLoader(), lint.LeakCheck, "leakchecktest")
}

func TestSnapSchema(t *testing.T) {
	linttest.RunConfig(t, fixtureLoader(), lint.SnapSchema, "snapschematest/internal/snap",
		&lint.Config{LockDir: "testdata/src/snapschematest"})
}

func TestSnapSchemaDrift(t *testing.T) {
	linttest.RunConfig(t, fixtureLoader(), lint.SnapSchema, "snapschemadrift/internal/snap",
		&lint.Config{LockDir: "testdata/src/snapschemadrift"})
}

// TestSnapSchemaVersionBump: the same drift as snapschemadrift, but with
// Version bumped — the declared wire-format change, so no finding.
func TestSnapSchemaVersionBump(t *testing.T) {
	linttest.RunConfig(t, fixtureLoader(), lint.SnapSchema, "snapschemabump/internal/snap",
		&lint.Config{LockDir: "testdata/src/snapschemabump"})
}

func TestAPISurface(t *testing.T) {
	linttest.RunConfig(t, fixtureLoader(), lint.APISurface, "apisurfacetest",
		&lint.Config{ModulePath: "apisurfacetest", LockDir: "testdata/src/apisurfacetest"})
}

func TestAPISurfaceDrift(t *testing.T) {
	linttest.RunConfig(t, fixtureLoader(), lint.APISurface, "apisurfacedrift",
		&lint.Config{ModulePath: "apisurfacedrift", LockDir: "testdata/src/apisurfacedrift"})
}

// TestSuiteOnSeedbed double-checks that the seeded-bug baseline package is
// clean under the full suite (the seeded test depends on it).
func TestSuiteOnSeedbed(t *testing.T) {
	diags, err := fixtureLoader().Analyze("seedbed", lint.Suite())
	if err != nil {
		t.Fatalf("analyzing seedbed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("seedbed must be clean, got: %s", d)
	}
}
