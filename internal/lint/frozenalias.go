package lint

import (
	"go/ast"
	"go/types"
)

// FrozenAlias protects the frozen CSR's shared arrays. Graph.ArcData,
// Graph.CSRData and EdgeSet.Words hand out read-only aliases of the
// representation that every concurrent reader shares; a write through such
// an alias corrupts distances under live queries. Outside the graph
// package itself, any local bound (flow-insensitively, anywhere in the
// function) to a result of those methods must not be the target of an
// element assignment, ++/--, append, or the destination of copy. Reading,
// slicing and passing the alias on are fine — encoders do exactly that;
// a callee that writes is caught when its own package is analyzed.
var FrozenAlias = &Analyzer{
	Name: "frozenalias",
	Doc:  "aliases returned by Graph.ArcData/CSRData and EdgeSet.Words are never written outside internal/graph",
	Run:  runFrozenAlias,
}

// frozenMethods maps receiver type name to the methods returning frozen
// aliases (all on package path suffix internal/graph).
var frozenMethods = map[string]map[string]bool{
	"Graph":   {"ArcData": true, "CSRData": true},
	"EdgeSet": {"Words": true},
}

func runFrozenAlias(pass *Pass) error {
	if isPkgPathSuffix(pass.Pkg, "internal/graph") {
		return nil // the representation's owner may mutate it
	}
	for _, fd := range funcDecls(pass.Files) {
		checkFrozenFunc(pass, fd)
	}
	return nil
}

// isFrozenCall reports whether call is g.ArcData()/g.CSRData()/s.Words()
// and returns a label for diagnostics.
func isFrozenCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := namedOf(selection.Recv())
	if recv == nil || !isPkgPathSuffix(recv.Obj().Pkg(), "internal/graph") {
		return "", false
	}
	methods, ok := frozenMethods[recv.Obj().Name()]
	if !ok || !methods[sel.Sel.Name] {
		return "", false
	}
	return recv.Obj().Name() + "." + sel.Sel.Name, true
}

func checkFrozenFunc(pass *Pass, fd *ast.FuncDecl) {
	// Pass 1: locals bound to frozen-alias results, including through
	// multi-value assignment (off, arcs := g.ArcData()).
	aliased := make(map[*types.Var]string)
	bind := func(lhs ast.Expr, label string) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v, ok := pass.Info.Defs[id].(*types.Var); ok {
				aliased[v] = label
			} else if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				aliased[v] = label
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 {
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
					if label, ok := isFrozenCall(pass, call); ok {
						for _, lhs := range st.Lhs {
							bind(lhs, label)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(st.Values) == 1 {
				if call, ok := ast.Unparen(st.Values[0]).(*ast.CallExpr); ok {
					if label, ok := isFrozenCall(pass, call); ok {
						for _, name := range st.Names {
							bind(name, label)
						}
					}
				}
			}
		}
		return true
	})
	if len(aliased) == 0 {
		return
	}

	lookup := func(e ast.Expr) (string, bool) {
		// The alias itself or a reslice of it: arcs, arcs[i:j].
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				if v, ok := pass.Info.Uses[x].(*types.Var); ok {
					label, ok := aliased[v]
					return label, ok
				}
				return "", false
			case *ast.SliceExpr:
				e = x.X
			default:
				return "", false
			}
		}
	}

	// Pass 2: writes through the aliases.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if label, ok := lookup(ix.X); ok {
						pass.Reportf(lhs.Pos(),
							"element write through a frozen %s alias: concurrent readers share this array", label)
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(st.X).(*ast.IndexExpr); ok {
				if label, ok := lookup(ix.X); ok {
					pass.Reportf(st.Pos(),
						"element write through a frozen %s alias: concurrent readers share this array", label)
				}
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(st.Fun).(*ast.Ident)
			if !ok || len(st.Args) == 0 {
				return true
			}
			switch {
			case id.Name == "append" && pass.Info.Uses[id] == types.Universe.Lookup("append"):
				if label, ok := lookup(st.Args[0]); ok {
					pass.Reportf(st.Pos(),
						"append to a frozen %s alias can write in place when capacity allows; copy first", label)
				}
			case id.Name == "copy" && pass.Info.Uses[id] == types.Universe.Lookup("copy"):
				if label, ok := lookup(st.Args[0]); ok {
					pass.Reportf(st.Pos(),
						"copy into a frozen %s alias overwrites the shared array; allocate a destination", label)
				}
			}
		}
		return true
	})
}
