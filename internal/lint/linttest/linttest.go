// Package linttest is a miniature analysistest: it runs one analyzer over
// a fixture package and diffs the findings against `// want "regex"`
// comments placed on the offending lines. Both analysistest literal forms
// are accepted (backquoted and double-quoted); several wants on one line
// each need a matching finding and vice versa, so fixtures pin both
// positives (flagged) and negatives (silence everywhere else).
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRe = regexp.MustCompile("want ((?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")(?:[ \t]+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))*)")
var wantLitRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run analyzes pkgPath through the loader and reports fixture mismatches
// on t. Findings are matched as "[analyzer] message" so fixtures may pin
// the analyzer name too.
func Run(t *testing.T, l *lint.Loader, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	RunConfig(t, l, a, pkgPath, nil)
}

// RunConfig is Run with an explicit whole-program Config (lock dirs,
// dependency facts — facts are computed from the loader when cfg leaves
// Deps nil).
func RunConfig(t *testing.T, l *lint.Loader, a *lint.Analyzer, pkgPath string, cfg *lint.Config) {
	t.Helper()
	p, err := l.Load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := l.AnalyzeWP(pkgPath, []*lint.Analyzer{a}, cfg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				for _, lit := range wantLitRe.FindAllString(m[1], -1) {
					pat, err := unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		text := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func unquote(lit string) (string, error) {
	if strings.HasPrefix(lit, "`") {
		return strings.Trim(lit, "`"), nil
	}
	return strconv.Unquote(lit)
}
