package spdag

import (
	"testing"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/path"
)

func TestCountPathsGrid(t *testing.T) {
	// In an a×b grid the number of shortest corner-to-corner paths is the
	// binomial coefficient C(a+b-2, a-1).
	g := gen.Grid(3, 4) // C(5,2) = 10
	d := New(g, 0, nil)
	if got := d.CountPaths(11); got != 10 {
		t.Fatalf("grid path count = %d, want 10", got)
	}
	if d.Dist(11) != 5 {
		t.Fatalf("dist = %d", d.Dist(11))
	}
}

func TestCountPathsUnderFaults(t *testing.T) {
	g := gen.Cycle(6)
	d := New(g, 0, nil)
	// Opposite vertex: two shortest routes around the cycle.
	if got := d.CountPaths(3); got != 2 {
		t.Fatalf("cycle count = %d, want 2", got)
	}
	e01, _ := g.EdgeID(0, 1)
	d = New(g, 0, []int{e01})
	if got := d.CountPaths(3); got != 1 {
		t.Fatalf("faulted cycle count = %d, want 1", got)
	}
	if got := d.CountPaths(1); got != 1 { // the long way round
		t.Fatalf("count to 1 = %d", got)
	}
	if d.Dist(1) != 5 {
		t.Fatalf("dist to 1 = %d", d.Dist(1))
	}
}

func TestCountPathsUnreachable(t *testing.T) {
	gb := graph.NewBuilder(3)
	gb.MustAddEdge(0, 1)
	g := gb.Freeze()
	d := New(g, 0, nil)
	if d.CountPaths(2) != 0 {
		t.Fatalf("unreachable should count 0")
	}
	if d.Dist(2) != bfs.Unreachable {
		t.Fatalf("unreachable dist wrong")
	}
}

func TestAllPathsMatchCount(t *testing.T) {
	g := gen.Grid(3, 3)
	d := New(g, 0, nil)
	for v := 1; v < g.N(); v++ {
		ps := d.AllPaths(v, 0)
		if int64(len(ps)) != d.CountPaths(v) {
			t.Fatalf("v=%d: enumerated %d, counted %d", v, len(ps), d.CountPaths(v))
		}
		seen := map[string]bool{}
		for _, p := range ps {
			if int32(p.Len()) != d.Dist(v) || !p.ValidIn(g) || !p.IsSimple() {
				t.Fatalf("invalid enumerated path %v", p)
			}
			if p.First() != 0 || p.Last() != v {
				t.Fatalf("endpoints wrong: %v", p)
			}
			if seen[p.String()] {
				t.Fatalf("duplicate path %v", p)
			}
			seen[p.String()] = true
		}
	}
}

func TestAllPathsCap(t *testing.T) {
	g := gen.Grid(4, 4)
	d := New(g, 0, nil)
	ps := d.AllPaths(15, 3)
	if len(ps) != 3 {
		t.Fatalf("cap ignored: %d", len(ps))
	}
	if d.AllPaths(15, 0) == nil {
		t.Fatal("uncapped enumeration empty")
	}
}

func TestEarliestDivergence(t *testing.T) {
	// Diamond with a pendant: ref path 0-1-3; alternative 0-2-3 diverges
	// at position 0.
	gb := graph.NewBuilder(5)
	gb.MustAddEdge(0, 1)
	gb.MustAddEdge(0, 2)
	gb.MustAddEdge(1, 3)
	gb.MustAddEdge(2, 3)
	gb.MustAddEdge(3, 4)
	g := gb.Freeze()
	d := New(g, 0, nil)
	ref := path.Path{0, 1, 3, 4}
	div, ok := d.EarliestDivergence(3, ref)
	if !ok || div != 0 {
		t.Fatalf("divergence = %d,%v want 0", div, ok)
	}
	// To vertex 4 every path converges again; earliest divergence still 0.
	div, ok = d.EarliestDivergence(4, ref)
	if !ok || div != 0 {
		t.Fatalf("divergence to 4 = %d,%v", div, ok)
	}
	// Unreachable target.
	g2 := graph.NewBuilder(2).Freeze()
	d2 := New(g2, 0, nil)
	if _, ok := d2.EarliestDivergence(1, path.Path{0}); ok {
		t.Fatal("unreachable should report !ok")
	}
}
