// Package spdag builds the shortest-path DAG of a (possibly fault-
// restricted) graph from a source: the directed acyclic graph of all edges
// that lie on some shortest path. It can count shortest paths and
// enumerate all of them up to a cap.
//
// The test suite uses it as an independent ground truth for the paper's
// selection rules: "the replacement path with the earliest divergence
// point" is checked against a full enumeration of every shortest path.
package spdag

import (
	"math"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/path"
)

// DAG is the shortest-path DAG from a fixed source under a fault set.
type DAG struct {
	g    *graph.Graph
	src  int
	dist []int32
	// preds[v] lists the DAG predecessors of v (neighbors u with
	// dist(u) + 1 = dist(v), fault edges excluded).
	preds [][]int32
}

// New builds the DAG of g from src with the given edges removed.
func New(g *graph.Graph, src int, disabledEdges []int) *DAG {
	off := make(map[int]bool, len(disabledEdges))
	for _, id := range disabledEdges {
		off[id] = true
	}
	r := bfs.NewRunner(g)
	r.Run(src, disabledEdges, nil)
	d := &DAG{
		g:     g,
		src:   src,
		dist:  make([]int32, g.N()),
		preds: make([][]int32, g.N()),
	}
	copy(d.dist, r.Dists())
	for v := 0; v < g.N(); v++ {
		if d.dist[v] <= 0 {
			continue
		}
		for _, a := range g.Arcs(v) {
			if !off[int(a.ID)] && d.dist[a.To] == d.dist[v]-1 {
				d.preds[v] = append(d.preds[v], a.To)
			}
		}
	}
	return d
}

// Dist returns the distance from the source (bfs.Unreachable if cut off).
func (d *DAG) Dist(v int) int32 { return d.dist[v] }

// CountPaths returns the number of distinct shortest source→v paths,
// saturating at math.MaxInt64 (counts grow exponentially on dense DAGs).
func (d *DAG) CountPaths(v int) int64 {
	memo := make([]int64, d.g.N())
	for i := range memo {
		memo[i] = -1
	}
	var count func(int) int64
	count = func(u int) int64 {
		if u == d.src {
			return 1
		}
		if d.dist[u] == bfs.Unreachable {
			return 0
		}
		if memo[u] >= 0 {
			return memo[u]
		}
		var total int64
		for _, p := range d.preds[u] {
			c := count(int(p))
			if total > math.MaxInt64-c {
				total = math.MaxInt64
				break
			}
			total += c
		}
		memo[u] = total
		return total
	}
	return count(v)
}

// AllPaths enumerates every shortest source→v path, stopping after max
// paths (0 means no cap; beware exponential counts). Paths are returned
// source-first.
func (d *DAG) AllPaths(v int, max int) []path.Path {
	if d.dist[v] == bfs.Unreachable {
		return nil
	}
	var out []path.Path
	buf := make([]int, 0, d.dist[v]+1)
	var walk func(u int) bool
	walk = func(u int) bool {
		buf = append(buf, u)
		defer func() { buf = buf[:len(buf)-1] }()
		if u == d.src {
			p := make(path.Path, len(buf))
			for i, w := range buf {
				p[len(buf)-1-i] = w
			}
			out = append(out, p)
			return max == 0 || len(out) < max
		}
		for _, pr := range d.preds[u] {
			if !walk(int(pr)) {
				return false
			}
		}
		return true
	}
	walk(v)
	return out
}

// EarliestDivergence returns, among all shortest source→v paths, the
// maximal position k such that SOME shortest path shares the prefix
// ref[0..k] and then leaves ref... more precisely: the minimal first-
// divergence position from the reference path achievable by any shortest
// path, together with whether any shortest path exists. The reference must
// start at the source.
//
// This is the quantity the paper's Step-1/Step-3 selection minimizes; the
// engine's choices are tested against it.
func (d *DAG) EarliestDivergence(v int, ref path.Path) (int, bool) {
	paths := d.AllPaths(v, 0)
	if len(paths) == 0 {
		return -1, false
	}
	best := 1 << 30
	for _, p := range paths {
		div := p.FirstDivergence(ref)
		if div < 0 {
			continue
		}
		// A path identical to a ref prefix up to its end diverges at its
		// final position only if ref continues; treat "p follows ref
		// fully" (p == ref) as divergence at len(p)-1.
		if div < best {
			best = div
		}
	}
	if best == 1<<30 {
		return -1, false
	}
	return best, true
}
