package snap

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fuzzSeeds returns valid encodings to seed the corpus: small structures
// of each fault model, so mutation explores the real format rather than
// bouncing off the magic check.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	add := func(st *core.Structure, err error, meta Meta) {
		f.Helper()
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, &Snapshot{Structure: st, Meta: meta}); err != nil {
			f.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	st, err := core.BuildDual(gen.PathGraph(5), 0, nil)
	add(st, err, Meta{Graph: "p", Build: "b1", Mode: "dual"})
	st, err = core.BuildDual(gen.GNP(12, 0.3, 3), 0, nil)
	add(st, err, Meta{})
	st, err = core.BuildExhaustive(gen.Cycle(6), 0, 1, nil)
	add(st, err, Meta{Seed: -1, ElapsedMS: 0.25})
	st, err = core.BuildVertexExhaustive(gen.Grid(3, 3), 0, 1, nil)
	add(st, err, Meta{Graph: "vertex"})
	st, err = core.BuildDual(graph.ReorderBFS(gen.GNP(10, 0.4, 8)), 0, nil)
	add(st, err, Meta{Graph: "ordered"}) // version-2 seed: exercises VPRM
	return out
}

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic,
// and whenever it accepts an input, re-encoding the decoded snapshot and
// decoding again must reproduce an observationally identical snapshot
// (encode→decode is the identity on everything a snapshot can represent).
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(bytes.NewReader(data))
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v is not a *FormatError", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, snap); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if again.Structure.G.N() != snap.Structure.G.N() ||
			again.Structure.G.M() != snap.Structure.G.M() ||
			again.Structure.Edges.Len() != snap.Structure.Edges.Len() ||
			again.Structure.Faults != snap.Structure.Faults {
			t.Fatalf("round-trip drift: %d/%d/%d/%d vs %d/%d/%d/%d",
				again.Structure.G.N(), again.Structure.G.M(), again.Structure.Edges.Len(), again.Structure.Faults,
				snap.Structure.G.N(), snap.Structure.G.M(), snap.Structure.Edges.Len(), snap.Structure.Faults)
		}
	})
}
