package snap

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// orderedSnapshot builds a dual structure over a FreezeOrdered graph.
func orderedSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	g := graph.ReorderBFS(gen.SparseGNP(48, 5, 6))
	if !g.Ordered() {
		t.Fatal("ReorderBFS graph not ordered")
	}
	st, err := core.BuildDual(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Snapshot{Structure: st, Meta: Meta{Graph: "ordered", Mode: "dual"}}
}

// TestOrderedRoundTrip pins the version-2 layout: an ordered graph encodes
// as version 2 with a VPRM section, decodes with its maps intact, and
// re-encodes byte-identically.
func TestOrderedRoundTrip(t *testing.T) {
	want := orderedSnapshot(t)
	data := mustEncode(t, want)

	info, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || len(info.Sections) != 4 || info.Sections[3].ID != "VPRM" {
		t.Fatalf("ordered snapshot layout: version %d sections %+v", info.Version, info.Sections)
	}

	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, want, got)
	if !got.Structure.G.Ordered() {
		t.Fatal("decoded graph lost its vertex order")
	}
	wantNew, wantOld := want.Structure.G.OrderMaps()
	gotNew, gotOld := got.Structure.G.OrderMaps()
	for v := range wantOld {
		if gotOld[v] != wantOld[v] || gotNew[v] != wantNew[v] {
			t.Fatalf("order maps differ at %d: %d/%d vs %d/%d", v, gotOld[v], gotNew[v], wantOld[v], wantNew[v])
		}
	}

	var buf2 bytes.Buffer
	if err := Encode(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf2.Bytes()) {
		t.Fatalf("ordered re-encoding is not byte-identical (%d vs %d bytes)", len(data), buf2.Len())
	}
}

// TestPlainSnapshotStaysVersion1 is the compatibility half of the contract:
// unordered graphs must keep producing version-1 files (the golden fixture
// test pins the exact bytes; this pins the header decision).
func TestPlainSnapshotStaysVersion1(t *testing.T) {
	st, err := core.BuildDual(gen.SparseGNP(30, 4, 2), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := mustEncode(t, &Snapshot{Structure: st})
	info, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || len(info.Sections) != 3 {
		t.Fatalf("plain snapshot wrote version %d with %d sections", info.Version, len(info.Sections))
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Structure.G.Ordered() {
		t.Fatal("plain snapshot decoded as ordered")
	}
}

// TestOrderedTruncationAndCorruption runs the hostile-input sweeps over a
// version-2 file: every prefix and every byte flip (which includes the
// whole VPRM section) must fail with a *FormatError.
func TestOrderedTruncationAndCorruption(t *testing.T) {
	data := mustEncode(t, orderedSnapshot(t))
	for cut := 0; cut < len(data); cut++ {
		_, err := Decode(bytes.NewReader(data[:cut]))
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncation at %d of %d: got %v, want *FormatError", cut, len(data), err)
		}
	}
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		_, err := Decode(bytes.NewReader(mut))
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("flip at %d: got %v, want *FormatError", pos, err)
		}
	}
}

// TestOrderedSnapshotBadPerm corrupts VPRM semantically (valid CRC, invalid
// permutation) by re-framing the section with a duplicated entry.
func TestOrderedSnapshotBadPerm(t *testing.T) {
	snap := orderedSnapshot(t)
	// Break the invariant in memory, then encode: the encoder writes it
	// verbatim, so the decoder's AdoptOrder validation must reject it.
	_, toOld := snap.Structure.G.OrderMaps()
	saved := toOld[1]
	toOld[1] = toOld[0]
	data := mustEncode(t, snap)
	toOld[1] = saved
	_, err := Decode(bytes.NewReader(data))
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("duplicate permutation entry: got %v, want *FormatError", err)
	}
}
