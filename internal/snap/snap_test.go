package snap

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/oracle"
)

// buildSnapshots returns a varied set of snapshots: different builders,
// fault models, source counts and graph families.
func buildSnapshots(t *testing.T) map[string]*Snapshot {
	t.Helper()
	out := make(map[string]*Snapshot)
	add := func(name string, st *core.Structure, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = &Snapshot{
			Structure: st,
			Meta:      Meta{Graph: "g-" + name, Build: "b1", Mode: "dual", Seed: 7, ElapsedMS: 12.5},
		}
	}
	st, err := core.BuildDual(gen.SparseGNP(60, 5, 3), 0, nil)
	add("dual-sparse", st, err)
	st, err = core.BuildSingle(gen.TreePlusChords(40, 6, 2), 0, nil)
	add("single-chords", st, err)
	st, err = core.BuildExhaustive(gen.Grid(4, 4), 0, 2, nil)
	add("exhaustive-grid", st, err)
	st, err = core.BuildVertexExhaustive(gen.GNP(24, 0.25, 5), 0, 2, nil)
	add("vertex-gnp", st, err)
	st, err = core.BuildMultiSource(gen.Layered(4, 6, 0.3, 9), []int{0, 3}, nil, core.BuildDual)
	add("multi-layered", st, err)
	return out
}

// checkEqual asserts observational equality of two snapshots: graph CSR
// arrays, structure fields, stats, and metadata.
func checkEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if got.Meta != want.Meta {
		t.Fatalf("meta = %+v, want %+v", got.Meta, want.Meta)
	}
	ws, gs := want.Structure, got.Structure
	if gs.Faults != ws.Faults || gs.VertexFaults != ws.VertexFaults {
		t.Fatalf("fault model = (%d,%v), want (%d,%v)", gs.Faults, gs.VertexFaults, ws.Faults, ws.VertexFaults)
	}
	if len(gs.Sources) != len(ws.Sources) {
		t.Fatalf("sources = %v, want %v", gs.Sources, ws.Sources)
	}
	for i := range ws.Sources {
		if gs.Sources[i] != ws.Sources[i] {
			t.Fatalf("sources = %v, want %v", gs.Sources, ws.Sources)
		}
	}
	if gs.Stats != ws.Stats {
		t.Fatalf("stats = %+v, want %+v", gs.Stats, ws.Stats)
	}
	wantEdges, wantOff, wantArcs, wantSorted := ws.G.CSRData()
	gotEdges, gotOff, gotArcs, gotSorted := gs.G.CSRData()
	if gs.G.N() != ws.G.N() || len(gotEdges) != len(wantEdges) {
		t.Fatalf("graph size %d/%d, want %d/%d", gs.G.N(), len(gotEdges), ws.G.N(), len(wantEdges))
	}
	for i := range wantEdges {
		if gotEdges[i] != wantEdges[i] {
			t.Fatalf("edge %d = %v, want %v", i, gotEdges[i], wantEdges[i])
		}
	}
	for i := range wantOff {
		if gotOff[i] != wantOff[i] {
			t.Fatalf("arcOff[%d] = %d, want %d", i, gotOff[i], wantOff[i])
		}
	}
	for i := range wantArcs {
		if gotArcs[i] != wantArcs[i] || gotSorted[i] != wantSorted[i] {
			t.Fatalf("arc %d = %v/%v, want %v/%v", i, gotArcs[i], gotSorted[i], wantArcs[i], wantSorted[i])
		}
	}
	if gs.Edges.Len() != ws.Edges.Len() {
		t.Fatalf("kept edges = %d, want %d", gs.Edges.Len(), ws.Edges.Len())
	}
	wantIDs, gotIDs := ws.Edges.IDs(), gs.Edges.IDs()
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("kept edge %d = %d, want %d", i, gotIDs[i], wantIDs[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for name, snap := range buildSnapshots(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Encode(&buf, snap); err != nil {
				t.Fatal(err)
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			checkEqual(t, snap, got)

			// Determinism: encoding the decoded snapshot reproduces the
			// bytes exactly.
			var buf2 bytes.Buffer
			if err := Encode(&buf2, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatalf("re-encoding is not byte-identical (%d vs %d bytes)", buf.Len(), buf2.Len())
			}
		})
	}
}

// TestRoundTripOracleAnswers proves the decoded structure answers queries
// bit-identically to the original, through a freshly rehydrated oracle set.
func TestRoundTripOracleAnswers(t *testing.T) {
	st, err := core.BuildDual(gen.SparseGNP(50, 5, 11), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &Snapshot{Structure: st}); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	setA, err := oracle.NewSetSharded(st, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	setB, err := oracle.NewSetSharded(dec.Structure, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	oa, ob := setA.Handle(), setB.Handle()
	m := st.G.M()
	for f1 := 0; f1 < m; f1 += 7 {
		for f2 := f1 + 3; f2 < m; f2 += 31 {
			faults := []int{f1, f2}
			da, err := oa.Dists(0, faults)
			if err != nil {
				t.Fatal(err)
			}
			db, err := ob.Dists(0, faults)
			if err != nil {
				t.Fatal(err)
			}
			for v := range da {
				if da[v] != db[v] {
					t.Fatalf("faults %v: dist[%d] = %d via snapshot, %d direct", faults, v, db[v], da[v])
				}
			}
		}
	}
}

func mustEncode(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncationRejected decodes every proper prefix of a valid snapshot:
// all must fail with a *FormatError, none may panic or succeed.
func TestTruncationRejected(t *testing.T) {
	st, err := core.BuildDual(gen.GNP(16, 0.3, 4), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := mustEncode(t, &Snapshot{Structure: st, Meta: Meta{Graph: "t"}})
	for cut := 0; cut < len(data); cut++ {
		_, err := Decode(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(data))
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncation at %d: error %v is not a *FormatError", cut, err)
		}
		if fe.Offset < 0 || fe.Offset > int64(len(data)) {
			t.Fatalf("truncation at %d: error offset %d out of file range", cut, fe.Offset)
		}
	}
}

// TestCorruptionRejected flips one byte at a time through the whole file:
// every flip must either fail a checksum/validation or (header fields
// only) fail structurally — and the error must carry a plausible offset.
func TestCorruptionRejected(t *testing.T) {
	st, err := core.BuildDual(gen.GNP(14, 0.3, 9), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := mustEncode(t, &Snapshot{Structure: st, Meta: Meta{Graph: "c", Mode: "dual"}})
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		_, err := Decode(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at %d decoded successfully", pos)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("flip at %d: error %v is not a *FormatError", pos, err)
		}
	}
}

func TestDecodeRejectsWrongMagicAndVersion(t *testing.T) {
	st, err := core.BuildDual(gen.PathGraph(6), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := mustEncode(t, &Snapshot{Structure: st})

	bad := append([]byte(nil), data...)
	copy(bad, "NOTASNAP")
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong magic accepted")
	}

	bad = append([]byte(nil), data...)
	bad[8] = 99 // version
	_, err = Decode(bytes.NewReader(bad))
	var fe *FormatError
	if !errors.As(err, &fe) || fe.Offset != 8 {
		t.Fatalf("wrong version: got %v, want FormatError at offset 8", err)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	st, err := core.BuildDual(gen.GNP(20, 0.25, 2), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := &Snapshot{Structure: st, Meta: Meta{Graph: "file", Build: "b9", Seed: 3}}
	path := filepath.Join(t.TempDir(), "s.ftbfs")
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, want, got)
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the snapshot", len(entries))
	}
}

func TestEncodeRejectsEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if err := Encode(&buf, &Snapshot{}); err == nil {
		t.Fatal("snapshot without structure accepted")
	}
}
