// Package snap is the persistence layer: a versioned, length-prefixed
// binary snapshot format for built FT-BFS artifacts — the frozen CSR
// graph, the structure's edge set, its provenance (sources, fault model,
// BuildStats) and a free-form JSON metadata record — so a structure that
// took minutes of builder time can be reloaded in milliseconds.
//
// File layout (all integers little-endian):
//
//	offset 0   magic   "FTBFSNAP" (8 bytes)
//	offset 8   version uint32 (1 or 2)
//	offset 12  section count uint32
//	offset 16  section table: count × { id [4]byte, payloadLen uint64 }
//	then, per section in table order:
//	           payload (payloadLen bytes), crc32 uint32 (Castagnoli,
//	           over the payload bytes)
//
// Version 1 has exactly three sections, in this order:
//
//	META  JSON metadata (Meta): graph/build names, builder mode, seed,
//	      build timing. Free-form and forward-tolerant (unknown JSON
//	      fields are ignored).
//	GRPH  the frozen CSR graph, near-verbatim: n, m, the edge table,
//	      the offset table, the insertion-ordered arc array and its
//	      span-sorted copy. Decoding is one read plus the O(n+m)
//	      structural validation of graph.FromCSRData — no rebuild.
//	STRC  the structure: fault budget, fault model, sources, BuildStats,
//	      and the kept-edge bitset words verbatim.
//
// Version 2 appends exactly one more section:
//
//	VPRM  the freeze-time vertex renumbering of an ordered graph
//	      (graph.Builder.FreezeOrdered): the internal->original label
//	      map, validated as a permutation on decode, so a warm-started
//	      graph keeps its cache-friendly layout AND its boundary
//	      translation. The encoder writes version 2 only for ordered
//	      graphs; plain graphs still produce byte-identical version-1
//	      files (pinned by the golden snapshot test).
//
// Compatibility policy: the decoder rejects unknown magic, versions, and
// section IDs outright (a snapshot is an artifact, not a negotiation).
// Any layout change bumps the version; decode paths for old versions are
// kept so existing snapshot files remain loadable. Integrity is per
// section: a flipped bit fails that section's CRC with the file offset in
// the error, and truncation anywhere yields a *FormatError rather than a
// partial snapshot.
package snap

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/graph"
)

// Magic identifies a snapshot file (the first 8 bytes).
const Magic = "FTBFSNAP"

// Version is the highest format version written and understood. Encode
// picks the lowest version that can represent the snapshot: 1 for plain
// graphs, 2 when the graph carries a freeze-time vertex order.
const Version = 2

// maxSectionBytes bounds a single section's declared payload length, so a
// corrupted or hostile length field cannot claim more than the format
// could ever need. 1 GiB supports graphs of ~25M edges. META is a small
// JSON record and gets a much tighter bound of its own.
const (
	maxSectionBytes = 1 << 30
	maxMetaBytes    = 1 << 20
)

// Section IDs in file order; idVPerm exists only in version 2.
var (
	idMeta   = [4]byte{'M', 'E', 'T', 'A'}
	idGraph  = [4]byte{'G', 'R', 'P', 'H'}
	idStruct = [4]byte{'S', 'T', 'R', 'C'}
	idVPerm  = [4]byte{'V', 'P', 'R', 'M'}
)

// castagnoli is the CRC-32C table used for every section checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the snapshot's free-form metadata record (the META section,
// stored as JSON). Every field is optional; the codec round-trips it
// without interpreting it. The server uses it to restore build-registry
// entries on warm start.
type Meta struct {
	// Graph and Build name the registry entry the snapshot came from.
	Graph string `json:"graph,omitempty"`
	Build string `json:"build,omitempty"`
	// Mode is the builder that produced the structure (dual, single,
	// multi, …); empty for snapshots packed from raw edge lists.
	Mode string `json:"mode,omitempty"`
	// Seed is the tie-breaking seed the structure was built with.
	Seed int64 `json:"seed,omitempty"`
	// ElapsedMS is the original build time in milliseconds — what a warm
	// start saves.
	ElapsedMS float64 `json:"elapsedMs,omitempty"`
	// CreatedUnixMS is the snapshot creation time (Unix milliseconds).
	CreatedUnixMS int64 `json:"createdUnixMs,omitempty"`
}

// Snapshot pairs a decoded structure (including its graph) with the
// snapshot metadata.
type Snapshot struct {
	Structure *core.Structure
	Meta      Meta
}

// FormatError describes a malformed or corrupted snapshot. Offset is the
// absolute byte position in the input at which decoding failed; Err, when
// non-nil, is the underlying read error (so callers can errors.As through
// to transport errors like http.MaxBytesError).
type FormatError struct {
	Offset int64
	Msg    string
	Err    error
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("snap: offset %d: %s", e.Offset, e.Msg)
}

// Unwrap exposes the underlying read error, if any.
func (e *FormatError) Unwrap() error { return e.Err }

func formatErrf(offset int64, format string, args ...any) error {
	return &FormatError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// formatReadErr is formatErrf for failed reads, retaining the underlying
// error for unwrapping.
func formatReadErr(offset int64, err error, format string, args ...any) error {
	return &FormatError{Offset: offset, Msg: fmt.Sprintf(format, args...) + ": " + err.Error(), Err: err}
}

// ---- encoding ----

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// encodeGraph serializes the frozen CSR representation near-verbatim:
// the decode side hands the arrays straight to graph.FromCSRData.
func encodeGraph(g *graph.Graph) []byte {
	edges, arcOff, arcs, sorted := g.CSRData()
	b := make([]byte, 0, 8+8*len(edges)+4*len(arcOff)+8*len(arcs)+8*len(sorted))
	b = appendU32(b, uint32(g.N()))
	b = appendU32(b, uint32(len(edges)))
	for _, e := range edges {
		b = appendU32(b, uint32(e.U))
		b = appendU32(b, uint32(e.V))
	}
	for _, o := range arcOff {
		b = appendU32(b, uint32(o))
	}
	for _, a := range arcs {
		b = appendU32(b, uint32(a.To))
		b = appendU32(b, uint32(a.ID))
	}
	for _, a := range sorted {
		b = appendU32(b, uint32(a.To))
		b = appendU32(b, uint32(a.ID))
	}
	return b
}

// encodeStructure serializes everything of a Structure except the graph
// (GRPH section) and Targets (a debugging artifact, deliberately not
// persisted).
func encodeStructure(st *core.Structure) []byte {
	words := st.Edges.Words()
	b := make([]byte, 0, 24+4*len(st.Sources)+7*8+8*len(words))
	b = appendU32(b, uint32(st.Faults))
	if st.VertexFaults {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, uint32(len(st.Sources)))
	for _, s := range st.Sources {
		b = appendU32(b, uint32(s))
	}
	stats := [7]int{
		st.Stats.Dijkstras, st.Stats.Fallbacks, st.Stats.TieWarnings,
		st.Stats.MaxNewEdges, st.Stats.MaxE1, st.Stats.MaxE2,
		st.Stats.NewEndingPiD,
	}
	for _, v := range stats {
		b = appendU64(b, uint64(int64(v)))
	}
	b = appendU32(b, uint32(st.Edges.Len())) // redundant; validated on decode
	for _, w := range words {
		b = appendU64(b, w)
	}
	return b
}

// encodeOrder serializes the freeze-time vertex renumbering of an ordered
// graph: vertex count, then the internal->original map. The inverse is
// derived on decode.
func encodeOrder(g *graph.Graph) []byte {
	_, toOld := g.OrderMaps()
	b := make([]byte, 0, 4+4*len(toOld))
	b = appendU32(b, uint32(len(toOld)))
	for _, old := range toOld {
		b = appendU32(b, uint32(old))
	}
	return b
}

// Encode writes st and meta as a snapshot, choosing the lowest format
// version that represents it (see the package comment). The encoding is
// deterministic: identical snapshots produce identical bytes.
func Encode(w io.Writer, s *Snapshot) error {
	if s == nil || s.Structure == nil || s.Structure.G == nil || s.Structure.Edges == nil {
		return fmt.Errorf("snap: snapshot has no structure")
	}
	meta, err := json.Marshal(s.Meta)
	if err != nil {
		return fmt.Errorf("snap: meta: %w", err)
	}
	version := uint32(1)
	sections := []struct {
		id      [4]byte
		payload []byte
	}{
		{idMeta, meta},
		{idGraph, encodeGraph(s.Structure.G)},
		{idStruct, encodeStructure(s.Structure)},
	}
	if s.Structure.G.Ordered() {
		version = 2
		sections = append(sections, struct {
			id      [4]byte
			payload []byte
		}{idVPerm, encodeOrder(s.Structure.G)})
	}
	head := make([]byte, 0, 16+12*len(sections))
	head = append(head, Magic...)
	head = appendU32(head, version)
	head = appendU32(head, uint32(len(sections)))
	for _, sec := range sections {
		head = append(head, sec.id[:]...)
		head = appendU64(head, uint64(len(sec.payload)))
	}
	if _, err := w.Write(head); err != nil {
		return fmt.Errorf("snap: write header: %w", err)
	}
	var crcBuf [4]byte
	for _, sec := range sections {
		if _, err := w.Write(sec.payload); err != nil {
			return fmt.Errorf("snap: write %s section: %w", sec.id[:], err)
		}
		binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(sec.payload, castagnoli))
		if _, err := w.Write(crcBuf[:]); err != nil {
			return fmt.Errorf("snap: write %s checksum: %w", sec.id[:], err)
		}
	}
	return nil
}

// ---- decoding ----

// sectionReader parses one section payload with absolute-offset errors.
type sectionReader struct {
	buf  []byte
	pos  int
	base int64 // absolute file offset of buf[0]
}

func (r *sectionReader) errf(format string, args ...any) error {
	return formatErrf(r.base+int64(r.pos), format, args...)
}

func (r *sectionReader) u32() (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, r.errf("section truncated reading uint32")
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *sectionReader) u64() (uint64, error) {
	if r.pos+8 > len(r.buf) {
		return 0, r.errf("section truncated reading uint64")
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *sectionReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, r.errf("section truncated reading byte")
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

// remaining returns the unread byte count.
func (r *sectionReader) remaining() int { return len(r.buf) - r.pos }

// count validates a decoded element count against the bytes actually
// available for it, so corrupt counts fail cleanly before any allocation
// larger than the input itself.
func (r *sectionReader) count(v uint32, elemBytes int, what string) (int, error) {
	n := int(v)
	if n < 0 || n > (1<<31-1)/max(elemBytes, 1) {
		return 0, r.errf("%s count %d out of range", what, v)
	}
	if n*elemBytes > r.remaining() {
		return 0, r.errf("%s count %d needs %d bytes, %d remain", what, v, n*elemBytes, r.remaining())
	}
	return n, nil
}

func decodeGraph(r *sectionReader) (*graph.Graph, error) {
	nRaw, err := r.u32()
	if err != nil {
		return nil, err
	}
	mRaw, err := r.u32()
	if err != nil {
		return nil, err
	}
	// A graph needs 8m (edges) + 4(n+1) (offsets) + 16m+16m (arcs and
	// sorted, 2m entries of 8 bytes each); validate both counts against
	// the payload before allocating.
	n, err := r.count(nRaw, 4, "vertex")
	if err != nil {
		return nil, err
	}
	m, err := r.count(mRaw, 8, "edge")
	if err != nil {
		return nil, err
	}
	want := 8*m + 4*(n+1) + 32*m
	if r.remaining() != want {
		return nil, r.errf("graph payload has %d bytes, want %d for n=%d m=%d", r.remaining(), want, n, m)
	}
	edges := make([]graph.Edge, m)
	for i := range edges {
		u, _ := r.u32()
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		edges[i] = graph.Edge{U: int(int32(u)), V: int(int32(v))}
	}
	arcOff := make([]int32, n+1)
	for i := range arcOff {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		arcOff[i] = int32(v)
	}
	readArcs := func() ([]graph.Arc, error) {
		arcs := make([]graph.Arc, 2*m)
		for i := range arcs {
			to, _ := r.u32()
			id, err := r.u32()
			if err != nil {
				return nil, err
			}
			arcs[i] = graph.Arc{To: int32(to), ID: int32(id)}
		}
		return arcs, nil
	}
	arcs, err := readArcs()
	if err != nil {
		return nil, err
	}
	sorted, err := readArcs()
	if err != nil {
		return nil, err
	}
	g, err := graph.FromCSRData(n, edges, arcOff, arcs, sorted)
	if err != nil {
		return nil, formatErrf(r.base, "invalid CSR data: %v", err)
	}
	return g, nil
}

func decodeStructure(r *sectionReader, g *graph.Graph) (*core.Structure, error) {
	faults, err := r.u32()
	if err != nil {
		return nil, err
	}
	if faults > 1<<20 {
		return nil, r.errf("fault budget %d out of range", faults)
	}
	vf, err := r.byte()
	if err != nil {
		return nil, err
	}
	if vf > 1 {
		return nil, r.errf("vertex-fault flag is %d, want 0 or 1", vf)
	}
	nsRaw, err := r.u32()
	if err != nil {
		return nil, err
	}
	ns, err := r.count(nsRaw, 4, "source")
	if err != nil {
		return nil, err
	}
	sources := make([]int, ns)
	for i := range sources {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(v) >= g.N() {
			return nil, r.errf("source %d out of range [0,%d)", v, g.N())
		}
		sources[i] = int(v)
	}
	var stats [7]int
	for i := range stats {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		stats[i] = int(int64(v))
	}
	kept, err := r.u32()
	if err != nil {
		return nil, err
	}
	nwords := (g.M() + 63) / 64
	if r.remaining() != 8*nwords {
		return nil, r.errf("edge set has %d bytes, want %d for %d graph edges", r.remaining(), 8*nwords, g.M())
	}
	words := make([]uint64, nwords)
	for i := range words {
		words[i], _ = r.u64()
	}
	set, err := graph.NewEdgeSetFromWords(g.M(), words)
	if err != nil {
		return nil, formatErrf(r.base, "invalid edge set: %v", err)
	}
	if set.Len() != int(kept) {
		return nil, r.errf("edge set holds %d edges, header says %d", set.Len(), kept)
	}
	return &core.Structure{
		G:            g,
		Sources:      sources,
		Faults:       int(faults),
		VertexFaults: vf == 1,
		Edges:        set,
		Stats: core.BuildStats{
			Dijkstras: stats[0], Fallbacks: stats[1], TieWarnings: stats[2],
			MaxNewEdges: stats[3], MaxE1: stats[4], MaxE2: stats[5],
			NewEndingPiD: stats[6],
		},
	}, nil
}

// decodeOrder parses the VPRM section and attaches the renumbering to g.
func decodeOrder(r *sectionReader, g *graph.Graph) error {
	nRaw, err := r.u32()
	if err != nil {
		return err
	}
	n, err := r.count(nRaw, 4, "order entry")
	if err != nil {
		return err
	}
	if n != g.N() {
		return r.errf("order map has %d entries, graph has %d vertices", n, g.N())
	}
	if r.remaining() != 4*n {
		return r.errf("order payload has %d bytes, want %d", r.remaining(), 4*n)
	}
	toOld := make([]int32, n)
	for i := range toOld {
		v, _ := r.u32()
		toOld[i] = int32(v)
	}
	if err := g.AdoptOrder(toOld); err != nil {
		return formatErrf(r.base, "invalid vertex order: %v", err)
	}
	return nil
}

// Decode reads one snapshot. Every byte of the input is length-checked and
// checksum-verified before interpretation; malformed input yields a
// *FormatError carrying the offending file offset, never a partial
// snapshot or a panic.
func Decode(r io.Reader) (*Snapshot, error) {
	head := make([]byte, 16)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, formatReadErr(0, err, "truncated header")
	}
	if string(head[:8]) != Magic {
		return nil, formatErrf(0, "bad magic %q, want %q", head[:8], Magic)
	}
	version := binary.LittleEndian.Uint32(head[8:])
	var wantIDs [][4]byte
	switch version {
	case 1:
		wantIDs = [][4]byte{idMeta, idGraph, idStruct}
	case 2:
		wantIDs = [][4]byte{idMeta, idGraph, idStruct, idVPerm}
	default:
		return nil, formatErrf(8, "unsupported format version %d (supported: 1..%d)", version, Version)
	}
	nsec := binary.LittleEndian.Uint32(head[12:])
	if int(nsec) != len(wantIDs) {
		return nil, formatErrf(12, "version %d has %d sections, got %d", version, len(wantIDs), nsec)
	}
	table := make([]byte, 12*len(wantIDs))
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, formatReadErr(16, err, "truncated section table")
	}
	lengths := make([]int, len(wantIDs))
	for i, want := range wantIDs {
		entry := table[12*i:]
		tableOff := int64(16 + 12*i)
		if [4]byte(entry[:4]) != want {
			return nil, formatErrf(tableOff, "section %d is %q, want %q", i, entry[:4], want[:])
		}
		l := binary.LittleEndian.Uint64(entry[4:])
		limit := uint64(maxSectionBytes)
		if want == idMeta {
			limit = maxMetaBytes
		}
		if l > limit {
			return nil, formatErrf(tableOff+4, "section %q length %d exceeds limit %d", want[:], l, limit)
		}
		lengths[i] = int(l)
	}
	offset := int64(16 + 12*len(wantIDs))
	payloads := make([][]byte, len(wantIDs))
	bases := make([]int64, len(wantIDs))
	var crcBuf [4]byte
	for i, want := range wantIDs {
		bases[i] = offset
		// Read through a growing buffer rather than pre-allocating the
		// DECLARED length: a hostile 50-byte input claiming a 1 GiB
		// section must not cost a 1 GiB allocation before the read fails.
		var buf bytes.Buffer
		if n, err := io.CopyN(&buf, r, int64(lengths[i])); err != nil {
			return nil, formatReadErr(offset+n, err, "truncated %q section (%d bytes expected, %d present)", want[:], lengths[i], n)
		}
		payloads[i] = buf.Bytes()
		offset += int64(lengths[i])
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return nil, formatReadErr(offset, err, "truncated %q checksum", want[:])
		}
		if got, stored := crc32.Checksum(payloads[i], castagnoli), binary.LittleEndian.Uint32(crcBuf[:]); got != stored {
			return nil, formatErrf(offset, "%q section checksum mismatch: computed %08x, stored %08x", want[:], got, stored)
		}
		offset += 4
	}
	var meta Meta
	if err := json.Unmarshal(payloads[0], &meta); err != nil {
		return nil, formatErrf(bases[0], "bad META JSON: %v", err)
	}
	g, err := decodeGraph(&sectionReader{buf: payloads[1], base: bases[1]})
	if err != nil {
		return nil, err
	}
	if version >= 2 {
		if err := decodeOrder(&sectionReader{buf: payloads[3], base: bases[3]}, g); err != nil {
			return nil, err
		}
	}
	st, err := decodeStructure(&sectionReader{buf: payloads[2], base: bases[2]}, g)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Structure: st, Meta: meta}, nil
}

// ---- inspection ----

// SectionInfo describes one section of an encoded snapshot file.
type SectionInfo struct {
	ID     string // 4-byte section identifier
	Bytes  int64  // payload length
	CRC    uint32 // stored CRC-32C
	Intact bool   // stored CRC matches the payload bytes
}

// FileInfo is the layout of an encoded snapshot: what Inspect reports
// without interpreting any payload.
type FileInfo struct {
	Version  uint32
	Sections []SectionInfo
}

// Inspect reads a snapshot's header, section table, and per-section
// checksums without decoding the payloads — the cheap integrity and
// layout view behind `ftbfssnap info`. Unlike Decode it tolerates
// checksum mismatches (reporting them per section), but not structural
// damage to the header or truncation.
func Inspect(r io.Reader) (*FileInfo, error) {
	head := make([]byte, 16)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, formatErrf(0, "truncated header: %v", err)
	}
	if string(head[:8]) != Magic {
		return nil, formatErrf(0, "bad magic %q, want %q", head[:8], Magic)
	}
	info := &FileInfo{Version: binary.LittleEndian.Uint32(head[8:])}
	nsec := binary.LittleEndian.Uint32(head[12:])
	if nsec > 64 {
		return nil, formatErrf(12, "implausible section count %d", nsec)
	}
	table := make([]byte, 12*nsec)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, formatErrf(16, "truncated section table: %v", err)
	}
	offset := int64(16 + len(table))
	var crcBuf [4]byte
	for i := 0; i < int(nsec); i++ {
		entry := table[12*i:]
		length := binary.LittleEndian.Uint64(entry[4:])
		if length > maxSectionBytes {
			return nil, formatErrf(int64(16+12*i+4), "section length %d exceeds limit %d", length, maxSectionBytes)
		}
		h := crc32.New(castagnoli)
		if _, err := io.CopyN(h, r, int64(length)); err != nil {
			return nil, formatErrf(offset, "truncated section %q: %v", entry[:4], err)
		}
		offset += int64(length)
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return nil, formatErrf(offset, "truncated checksum of section %q: %v", entry[:4], err)
		}
		offset += 4
		stored := binary.LittleEndian.Uint32(crcBuf[:])
		info.Sections = append(info.Sections, SectionInfo{
			ID:     string(entry[:4]),
			Bytes:  int64(length),
			CRC:    stored,
			Intact: stored == h.Sum32(),
		})
	}
	return info, nil
}

// ---- file helpers ----

// AtomicWriteFile runs write against a temporary file in path's
// directory, fsyncs it, and renames it over path — the crash-safe write
// protocol shared by WriteFile and the server's disk snapshot store: a
// reader can only ever observe the old file or the complete new one.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "." // keep CreateTemp out of os.TempDir for bare names
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("snap: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("snap: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	return nil
}

// WriteFile encodes the snapshot to path via AtomicWriteFile, so a crash
// mid-write can never leave a half-written snapshot under the final name.
func WriteFile(path string, s *Snapshot) error {
	return AtomicWriteFile(path, func(w io.Writer) error { return Encode(w, s) })
}

// ReadFile decodes the snapshot at path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
