// Golden-fingerprint equivalence tests: the exact structures and oracle
// answers produced for fixed seeds are pinned as SHA-256 hashes. The hashes
// were recorded on the pre-CSR (map + slice-of-slices) graph representation;
// any representation change that alters canonical trees, edge-ID assignment,
// neighbor iteration order, or query answers will break them.
package ftbfs_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	ftbfs "repro"
)

// fingerprintStructure hashes everything observable about a built structure:
// graph size, kept edge IDs (in ID order) and their endpoints.
func fingerprintStructure(st *ftbfs.Structure) string {
	h := sha256.New()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(x)))
		h.Write(buf[:])
	}
	put(st.G.N())
	put(st.G.M())
	put(st.NumEdges())
	st.Edges.ForEach(func(id int) {
		e := st.G.EdgeAt(id)
		put(id)
		put(e.U)
		put(e.V)
	})
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// fingerprintOracle hashes the distance tables for a deterministic sample of
// fault sets (plus the routes' lengths, which must realize the distances).
func fingerprintOracle(t *testing.T, st *ftbfs.Structure, trials int) string {
	t.Helper()
	set, err := ftbfs.NewOracleSet(st)
	if err != nil {
		t.Fatal(err)
	}
	o := set.Handle()
	rng := rand.New(rand.NewSource(99))
	h := sha256.New()
	var buf [8]byte
	put := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	src := st.Sources[0]
	m := st.G.M()
	for trial := 0; trial < trials; trial++ {
		var faults []int
		for k := rng.Intn(st.Faults + 1); k > 0; k-- {
			faults = append(faults, rng.Intn(m))
		}
		ds, err := o.Dists(src, faults)
		if err != nil {
			t.Fatalf("Dists(%v): %v", faults, err)
		}
		for _, d := range ds {
			put(int64(d))
		}
		v := rng.Intn(st.G.N())
		p, err := o.Route(src, v, faults)
		if err != nil {
			t.Fatalf("Route(%v): %v", faults, err)
		}
		put(int64(len(p)))
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func TestGoldenStructureFingerprints(t *testing.T) {
	cases := []struct {
		name       string
		build      func(opts *ftbfs.Options) (*ftbfs.Structure, error)
		structure  string
		oracle     string
		oracleRuns int
	}{
		{
			name: "dual/sparse-gnp-80",
			build: func(opts *ftbfs.Options) (*ftbfs.Structure, error) {
				return ftbfs.BuildDualFTBFS(ftbfs.SparseGNP(80, 6, 2015), 0, opts)
			},
			structure:  "b6397b093386326806032c0b",
			oracle:     "717b6992aa8b4b3ccf7935a9",
			oracleRuns: 60,
		},
		{
			name: "dual/gnp-40",
			build: func(opts *ftbfs.Options) (*ftbfs.Structure, error) {
				return ftbfs.BuildDualFTBFS(ftbfs.GNP(40, 0.3, 7), 0, opts)
			},
			structure:  "29f3c7b0ed9c587e78cb23ed",
			oracle:     "8614186653edb8c6d88a8bd7",
			oracleRuns: 60,
		},
		{
			name: "single/tree-chords-60",
			build: func(opts *ftbfs.Options) (*ftbfs.Structure, error) {
				return ftbfs.BuildSingleFTBFS(ftbfs.TreePlusChords(60, 8, 3), 0, opts)
			},
			structure:  "1e4567168e874c38d750bf8c",
			oracle:     "25138d806cba2eb8516dad59",
			oracleRuns: 40,
		},
		{
			name: "exhaustive-f2/grid-5x5",
			build: func(opts *ftbfs.Options) (*ftbfs.Structure, error) {
				return ftbfs.BuildExhaustiveFTBFS(ftbfs.Grid(5, 5), 0, 2, opts)
			},
			structure:  "083149d1eb1b810711bacd1b",
			oracle:     "6c9b7f902c70c5472a425749",
			oracleRuns: 40,
		},
		{
			name: "multisource-dual/layered",
			build: func(opts *ftbfs.Options) (*ftbfs.Structure, error) {
				return ftbfs.BuildMultiSourceDualFTBFS(ftbfs.Layered(5, 8, 0.3, 11), []int{0, 4}, opts)
			},
			structure:  "cd00e439ac8f174472efb8ba",
			oracle:     "da103ef963bc35d07b87bf96",
			oracleRuns: 40,
		},
	}
	// Every golden hash must come out of BOTH build pipelines: the default
	// (incremental fault-repair kernel) and the from-scratch fallback
	// (Options.NoRepair) — the repair kernel's bit-identity contract.
	variants := []struct {
		name string
		opts *ftbfs.Options
	}{
		{"repair", nil},
		{"norepair", &ftbfs.Options{NoRepair: true}},
	}
	for _, c := range cases {
		for _, vt := range variants {
			t.Run(c.name+"/"+vt.name, func(t *testing.T) {
				st, err := c.build(vt.opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := fingerprintStructure(st); got != c.structure {
					t.Errorf("structure fingerprint = %s, want %s", got, c.structure)
				}
				if got := fingerprintOracle(t, st, c.oracleRuns); got != c.oracle {
					t.Errorf("oracle fingerprint = %s, want %s", got, c.oracle)
				}
			})
		}
	}
}
