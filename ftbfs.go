// Package ftbfs is a Go implementation of "Dual Failure Resilient BFS
// Structure" (Merav Parter, PODC 2015): sparse subgraphs H ⊆ G that
// preserve all BFS distances from a source under up to two edge failures,
// together with the paper's single-failure baseline, its Ω(n^{5/3})
// lower-bound constructions, and the O(log n)-approximation for the
// minimum-size problem.
//
// Quick start:
//
//	g := ftbfs.GNP(100, 0.1, 42)
//	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
//	// st.NumEdges() ≤ O(n^{5/3}); dist(s,v,H\F) = dist(s,v,G\F) ∀|F| ≤ 2
//	rep := ftbfs.Verify(g, st, []int{0}, 2)
//
// For concurrent query serving, share one NewOracleSet across goroutines
// (or run the whole thing as a network service: cmd/ftbfsd).
//
// The package is a facade over the internal implementation; see DESIGN.md
// for the module map and EXPERIMENTS.md for the reproduction results.
package ftbfs

import (
	"context"
	"io"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/multifail"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/snap"
	"repro/internal/verify"
)

// Graph is an immutable undirected simple graph with stable edge IDs in
// compressed-sparse-row form. Build one with NewBuilder + Builder.Freeze, a
// generator, or edge-list parsing.
type Graph = graph.Graph

// Builder accumulates edges under validation (range, self-loop, duplicate
// checks) and compiles them into an immutable Graph with Freeze.
type Builder = graph.Builder

// Edge is an undirected edge (normalized endpoints U < V).
type Edge = graph.Edge

// EdgeSet is a set of edge IDs of a fixed graph.
type EdgeSet = graph.EdgeSet

// Structure is a fault-tolerant BFS structure: the kept edge set plus
// provenance and construction statistics.
type Structure = core.Structure

// Options configures the builders (tie-breaking seed, path collection,
// parallelism, cancellation context and live progress sink).
type Options = core.Options

// Progress receives a running build's live monotonic counters (work
// units, Dijkstras, kept edges); hand one to Options.Progress and
// Snapshot it from any goroutine while the build runs.
type Progress = core.Progress

// ProgressSnapshot is one observation of a build's Progress counters.
type ProgressSnapshot = core.ProgressSnapshot

// Report is a verification outcome with counterexamples, if any.
type Report = verify.Report

// VerifyOptions tunes verification (pruning, violation cap).
type VerifyOptions = verify.Options

// LowerBoundInstance is the adversarial graph G*_f of Theorem 1.2.
type LowerBoundInstance = lowerbound.Instance

// LowerBoundMultiInstance is the σ-source adversarial graph of Theorem 4.1.
type LowerBoundMultiInstance = lowerbound.MultiInstance

// NewBuilder returns an empty builder for a graph on n vertices. Add edges
// with AddEdge/MustAddEdge, then Freeze into an immutable Graph.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// ReorderBFS re-freezes g with its vertices renumbered into BFS order
// (cache-friendly adjacency for the query plane), keeping edge IDs and
// recording the wire↔internal maps on the result (Graph.OrderMaps).
// Ordered graphs are returned unchanged. Structures built over the
// reordered graph are observationally identical up to the relabeling.
func ReorderBFS(g *Graph) *Graph { return graph.ReorderBFS(g) }

// BuildDualFTBFS constructs the dual-failure (f = 2) FT-BFS structure of
// Theorem 1.1 via Algorithm Cons2FTBFS: O(n^{5/3}) edges, exact distances
// under every fault set of at most two edges.
func BuildDualFTBFS(g *Graph, source int, opts *Options) (*Structure, error) {
	return core.BuildDual(g, source, opts)
}

// BuildSingleFTBFS constructs the single-failure FT-BFS structure of
// Parter–Peleg (ESA'13), the paper's baseline: O(n^{3/2}) edges.
func BuildSingleFTBFS(g *Graph, source int, opts *Options) (*Structure, error) {
	return core.BuildSingle(g, source, opts)
}

// BuildExhaustiveFTBFS constructs an f-failure FT-BFS (0 ≤ f ≤ 3) as the
// union of canonical shortest-path trees over all fault sets — simple and
// correct for any f, at Θ(m^f) construction cost (Observation 1.6 bound).
func BuildExhaustiveFTBFS(g *Graph, source, f int, opts *Options) (*Structure, error) {
	return core.BuildExhaustive(g, source, f, opts)
}

// BuildFullPathsFTBFS is the no-sparsification ablation of Theorem 1.1:
// same replacement paths as BuildDualFTBFS but keeping every path edge.
func BuildFullPathsFTBFS(g *Graph, source int, opts *Options) (*Structure, error) {
	return core.BuildFullPaths(g, source, opts)
}

// BuildVertexFTBFS constructs a structure resilient to up to f VERTEX
// failures (f ≤ 2; the fault model of Parter–Peleg [10], which the paper
// discusses alongside edge faults). Verify with VerifyVertex.
func BuildVertexFTBFS(g *Graph, source, f int, opts *Options) (*Structure, error) {
	return core.BuildVertexExhaustive(g, source, f, opts)
}

// VerifyVertex exhaustively checks the vertex-failure model (f ≤ 2).
func VerifyVertex(g *Graph, st *Structure, sources []int, f int) Report {
	return verify.VertexFTBFS(g, st.DisabledEdges(), sources, f, nil)
}

// BuildRecursiveFTBFS constructs an f-failure FT-BFS structure for ANY
// f ≥ 0 by relevant-fault-tree enumeration — the natural generalization the
// paper's "Beyond two faults" discussion calls for. Exponentially cheaper
// than BuildExhaustiveFTBFS on sparse graphs (depth^f instead of m^f
// searches), without the Cons2FTBFS size-analysis selection rules.
func BuildRecursiveFTBFS(g *Graph, source, f int, opts *Options) (*Structure, error) {
	return multifail.Build(g, source, f, opts)
}

// BuildApproxFTMBFS runs the Section-5 O(log n)-approximation for Minimum
// FT-MBFS: an f-failure structure (f ≤ 2) for a whole source set, within a
// logarithmic factor of the optimum size.
func BuildApproxFTMBFS(g *Graph, sources []int, f int, opts *Options) (*Structure, error) {
	return approx.Build(g, sources, f, opts)
}

// BuildMultiSourceDualFTBFS unions per-source dual structures into an
// FT-MBFS structure for the source set.
func BuildMultiSourceDualFTBFS(g *Graph, sources []int, opts *Options) (*Structure, error) {
	return core.BuildMultiSource(g, sources, opts, core.BuildDual)
}

// Verify exhaustively checks that st is an f-failure FT-MBFS structure of g
// for the given sources (f ≤ 2). The zero-value options prune fault sets
// disjoint from the structure once fault-free distances hold.
func Verify(g *Graph, st *Structure, sources []int, f int) Report {
	return verify.Structure(g, st, sources, f, nil)
}

// VerifyWithOptions is Verify with explicit options.
func VerifyWithOptions(g *Graph, st *Structure, sources []int, f int, opts *VerifyOptions) Report {
	return verify.Structure(g, st, sources, f, opts)
}

// VerifySampled draws random fault sets of size ≤ f (any f) and compares
// distances; for instances too large for the exhaustive pass.
func VerifySampled(g *Graph, st *Structure, sources []int, f, trials int, seed int64) Report {
	return verify.Sampled(g, st.DisabledEdges(), sources, f, trials, seed, nil)
}

// Oracle answers fault-tolerant distance and routing queries on a built
// structure (one memoized BFS over H per distinct failure event). An
// Oracle is a cheap per-goroutine handle; concurrent clients share an
// OracleSet.
type Oracle = oracle.Oracle

// OracleSet is the shared immutable query state over one structure —
// materialized subgraph, edge-ID translation and a bounded LRU of
// per-failure-event distance tables, sharded by key hash across
// independently-locked shards — safe for concurrent use through
// per-goroutine handles (Handle) or the built-in pool (Acquire/Release).
type OracleSet = oracle.OracleSet

// OracleCacheStats is a snapshot of an OracleSet's memo counters.
type OracleCacheStats = oracle.CacheStats

// OracleDistView is a read-only view of one failure event's distance
// table in its stored representation — a full table, or a delta against
// the source's pinned fault-free base (see Oracle.DistsView).
type OracleDistView = oracle.DistView

// NewOracle wraps a structure for single-goroutine querying.
func NewOracle(st *Structure) (*Oracle, error) { return oracle.New(st) }

// NewOracleSet builds the shared concurrent query state for a structure.
func NewOracleSet(st *Structure) (*OracleSet, error) { return oracle.NewSet(st) }

// NewOracleSetCapacity is NewOracleSet with an explicit bound on cached
// failure events (≤ 0 disables memoization). The memo is split across
// ~GOMAXPROCS independently-locked shards.
func NewOracleSetCapacity(st *Structure, cacheEntries int) (*OracleSet, error) {
	return oracle.NewSetCapacity(st, cacheEntries)
}

// NewOracleSetSharded is NewOracleSetCapacity with an explicit memo shard
// count (rounded down to a power of two; 1 restores a single global LRU
// with strict global recency order).
func NewOracleSetSharded(st *Structure, cacheEntries, shards int) (*OracleSet, error) {
	return oracle.NewSetSharded(st, cacheEntries, shards)
}

// NewOracleSetBytes is NewOracleSet with a byte budget instead of an
// entry cap: failure events are byte-accounted (delta-compressed events
// are charged only for what the fault changed), so a budget typically
// holds 10–100× more events than full tables would. ≤ 0 disables
// memoization.
func NewOracleSetBytes(st *Structure, cacheBytes int64) (*OracleSet, error) {
	return oracle.NewSetBytes(st, cacheBytes)
}

// NewOracleSetBudget is the general memo constructor: an entry cap, a
// byte budget, or both, over an explicit shard count (≤ 0 for automatic).
func NewOracleSetBudget(st *Structure, cacheEntries int, cacheBytes int64, shards int) (*OracleSet, error) {
	return oracle.NewSetBudget(st, cacheEntries, cacheBytes, shards)
}

// Snapshot is a persistable build artifact: a structure (with its graph)
// plus free-form metadata, serialized by EncodeSnapshot into the
// versioned, checksummed binary format of DESIGN.md's persistence layer.
type Snapshot = snap.Snapshot

// SnapshotMeta is a snapshot's metadata record (provenance and timing).
type SnapshotMeta = snap.Meta

// EncodeSnapshot writes a snapshot in the versioned binary format. The
// encoding is deterministic: identical snapshots produce identical bytes.
func EncodeSnapshot(w io.Writer, s *Snapshot) error { return snap.Encode(w, s) }

// DecodeSnapshot reads a snapshot, validating lengths and per-section
// checksums; malformed input fails with the offending byte offset rather
// than producing a partial snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) { return snap.Decode(r) }

// WriteSnapshotFile encodes to a file via temp-file + atomic rename.
func WriteSnapshotFile(path string, s *Snapshot) error { return snap.WriteFile(path, s) }

// ReadSnapshotFile decodes the snapshot at path.
func ReadSnapshotFile(path string) (*Snapshot, error) { return snap.ReadFile(path) }

// Server is the ftbfsd registry: named graphs, asynchronous structure
// builds and pooled fault-tolerant query serving over HTTP JSON (see
// cmd/ftbfsd and DESIGN.md for the API).
type Server = server.Server

// ServerConfig tunes a Server; the zero value is ready to use.
type ServerConfig = server.Config

// ServerGenSpec describes a synthetic graph for Server.RegisterGraph.
type ServerGenSpec = server.GenSpec

// ServerBuildEvent is one terminal build outcome (ready, failed or
// cancelled), delivered to ServerConfig.BuildLog.
type ServerBuildEvent = server.BuildEvent

// NewServer returns an empty ftbfsd registry (nil config for defaults);
// serve its Handler with net/http.
func NewServer(cfg *ServerConfig) *Server { return server.New(cfg) }

// ServerStore persists build snapshots for a Server: completed builds are
// written to it in the background and Server.WarmStart rehydrates from it.
type ServerStore = server.Store

// NewServerDiskStore opens (creating if needed) an atomic-rename disk
// snapshot store rooted at dir — what `ftbfsd -snapshot-dir` uses.
func NewServerDiskStore(dir string) (ServerStore, error) { return server.NewDiskStore(dir) }

// NewServerMemStore returns an in-memory snapshot store (tests,
// replication relays).
func NewServerMemStore() ServerStore { return server.NewMemStore() }

// LowerBound builds the adversarial instance G*_f of Theorem 1.2 with
// roughly n vertices: every bipartite edge (Ω(n^{2-1/(f+1)}) of them) is
// necessary in any f-failure FT-BFS structure rooted at its Source.
func LowerBound(f, n int) (*LowerBoundInstance, error) {
	return lowerbound.NewInstance(f, n)
}

// LowerBoundCtx is LowerBound with cooperative cancellation of the
// quadratic bipartite enumeration.
func LowerBoundCtx(ctx context.Context, f, n int) (*LowerBoundInstance, error) {
	return lowerbound.NewInstanceCtx(ctx, f, n)
}

// LowerBoundMulti builds the σ-source variant of Theorem 4.1.
func LowerBoundMulti(f, sigma, n int) (*LowerBoundMultiInstance, error) {
	return lowerbound.NewMultiInstance(f, sigma, n)
}

// LowerBoundMultiCtx is LowerBoundMulti with cooperative cancellation.
func LowerBoundMultiCtx(ctx context.Context, f, sigma, n int) (*LowerBoundMultiInstance, error) {
	return lowerbound.NewMultiInstanceCtx(ctx, f, sigma, n)
}

// Graph generators (all deterministic under their seeds, all connected).
var (
	// GNP is Erdős–Rényi G(n, p) with a connecting backbone.
	GNP = gen.GNP
	// SparseGNP is G(n, c/n) at a target average degree.
	SparseGNP = gen.SparseGNP
	// Grid is the rows×cols grid graph.
	Grid = gen.Grid
	// PathGraph is the n-vertex path.
	PathGraph = gen.PathGraph
	// Cycle is the n-cycle.
	Cycle = gen.Cycle
	// Complete is K_n.
	Complete = gen.Complete
	// CompleteBipartite is K_{a,b}.
	CompleteBipartite = gen.CompleteBipartite
	// Hypercube is the dim-dimensional hypercube.
	Hypercube = gen.Hypercube
	// Layered is a width×layers layered random graph.
	Layered = gen.Layered
	// TreePlusChords is a random tree plus chord edges.
	TreePlusChords = gen.TreePlusChords
	// RandomRegular is a near-d-regular random graph.
	RandomRegular = gen.RandomRegular
)
