// Benchmarks regenerating every experiment table of the reproduction
// (E1–E13, one per theorem/observation/constructive figure — see DESIGN.md
// §4 and EXPERIMENTS.md), plus operation microbenchmarks for the builders
// and the verifier. Each experiment benchmark prints its table once, so
// `go test -bench . -benchtime 1x` reproduces the full result set.
package ftbfs_test

import (
	"fmt"
	"sync"
	"testing"

	ftbfs "repro"
	"repro/internal/exp"
	"repro/internal/verify"
)

var printOnce sync.Map

// runExperiment executes one experiment per b.N iteration and prints the
// table the first time that experiment runs in this process.
func runExperiment(b *testing.B, id string, fn func(exp.Config) (*exp.Table, error)) {
	b.Helper()
	cfg := exp.Config{Sizes: []int{40, 60, 90}, Seeds: 1}
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		tbl, err := fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = tbl
	}
	if _, done := printOnce.LoadOrStore(id, true); !done && last != nil {
		fmt.Printf("\n%s\n", last.String())
	}
}

func BenchmarkE1DualSize(b *testing.B)     { runExperiment(b, "E1", exp.E1DualSize) }
func BenchmarkE2LowerBound(b *testing.B)   { runExperiment(b, "E2", exp.E2LowerBound) }
func BenchmarkE3Approx(b *testing.B)       { runExperiment(b, "E3", exp.E3Approx) }
func BenchmarkE4FTDiameter(b *testing.B)   { runExperiment(b, "E4", exp.E4FTDiameter) }
func BenchmarkE5PerVertex(b *testing.B)    { runExperiment(b, "E5", exp.E5PerVertex) }
func BenchmarkE6SingleVsDual(b *testing.B) { runExperiment(b, "E6", exp.E6SingleVsDual) }
func BenchmarkE7Classes(b *testing.B)      { runExperiment(b, "E7", exp.E7Classes) }
func BenchmarkE8Detours(b *testing.B)      { runExperiment(b, "E8", exp.E8Detours) }
func BenchmarkE9Verify(b *testing.B)       { runExperiment(b, "E9", exp.E9Verify) }
func BenchmarkE10Kernel(b *testing.B)      { runExperiment(b, "E10", exp.E10Kernel) }
func BenchmarkE11Ablation(b *testing.B)    { runExperiment(b, "E11", exp.E11Ablation) }
func BenchmarkE12Beyond(b *testing.B)      { runExperiment(b, "E12", exp.E12Beyond) }
func BenchmarkE13Selection(b *testing.B)   { runExperiment(b, "E13", exp.E13Selection) }

// --- operation microbenchmarks -------------------------------------------

func benchBuild(b *testing.B, n int, build func(*ftbfs.Graph) (*ftbfs.Structure, error)) {
	b.Helper()
	g := ftbfs.SparseGNP(n, 6, 2015)
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		st, err := build(g)
		if err != nil {
			b.Fatal(err)
		}
		edges = st.NumEdges()
	}
	b.ReportMetric(float64(edges), "edges")
	b.ReportMetric(float64(g.M()), "graph-edges")
}

func BenchmarkBuildDual(b *testing.B) {
	for _, n := range []int{40, 80, 160} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchBuild(b, n, func(g *ftbfs.Graph) (*ftbfs.Structure, error) {
				return ftbfs.BuildDualFTBFS(g, 0, nil)
			})
		})
	}
}

func BenchmarkBuildSingle(b *testing.B) {
	for _, n := range []int{40, 80, 160} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchBuild(b, n, func(g *ftbfs.Graph) (*ftbfs.Structure, error) {
				return ftbfs.BuildSingleFTBFS(g, 0, nil)
			})
		})
	}
}

func BenchmarkBuildExhaustiveF2(b *testing.B) {
	benchBuild(b, 30, func(g *ftbfs.Graph) (*ftbfs.Structure, error) {
		return ftbfs.BuildExhaustiveFTBFS(g, 0, 2, nil)
	})
}

// BenchmarkBuildExhaustiveF2Parallel exercises the fan-out path of the
// exhaustive builder (identical output, private engine per worker).
func BenchmarkBuildExhaustiveF2Parallel(b *testing.B) {
	benchBuild(b, 30, func(g *ftbfs.Graph) (*ftbfs.Structure, error) {
		return ftbfs.BuildExhaustiveFTBFS(g, 0, 2, &ftbfs.Options{Parallelism: 4})
	})
}

func BenchmarkBuildApproxF1(b *testing.B) {
	benchBuild(b, 40, func(g *ftbfs.Graph) (*ftbfs.Structure, error) {
		return ftbfs.BuildApproxFTMBFS(g, []int{0}, 1, nil)
	})
}

func BenchmarkVerifyDual(b *testing.B) {
	g := ftbfs.SparseGNP(60, 6, 2015)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ftbfs.Verify(g, st, []int{0}, 2)
		if !rep.OK {
			b.Fatal("verification failed")
		}
	}
}

func BenchmarkVerifyDualNoPrune(b *testing.B) {
	g := ftbfs.SparseGNP(60, 6, 2015)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	opts := &verify.Options{NoPrune: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ftbfs.VerifyWithOptions(g, st, []int{0}, 2, opts)
		if !rep.OK {
			b.Fatal("verification failed")
		}
	}
}

func BenchmarkLowerBoundBuild(b *testing.B) {
	for _, f := range []int{1, 2} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			var forced int
			for i := 0; i < b.N; i++ {
				inst, err := ftbfs.LowerBound(f, 400)
				if err != nil {
					b.Fatal(err)
				}
				forced = len(inst.Bipartite)
			}
			b.ReportMetric(float64(forced), "forced-edges")
		})
	}
}
