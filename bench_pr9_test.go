// Acceptance benchmarks for the incremental fault-repair build kernel:
// the reference points the EXPERIMENTS.md before/after tables are measured
// on (run identically against the pre-kernel tree for the "before" side).
package ftbfs_test

import (
	"testing"

	ftbfs "repro"
)

func BenchmarkPR9BuildDual1500(b *testing.B) {
	g := ftbfs.SparseGNP(1500, 6, 2015)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftbfs.BuildDualFTBFS(g, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPR9BuildExhaustiveF2(b *testing.B) {
	g := ftbfs.SparseGNP(30, 6, 2015)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftbfs.BuildExhaustiveFTBFS(g, 0, 2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPR9BuildRecursiveF3(b *testing.B) {
	g := ftbfs.SparseGNP(120, 5, 2015)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftbfs.BuildRecursiveFTBFS(g, 0, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}
