// Golden snapshot-compat test: a version-1 snapshot file is checked into
// testdata/ and decoded against the PR 3 golden structure fingerprints on
// every run. Silent format drift — an encoder or decoder change that
// still round-trips in-process but breaks files written by earlier
// commits — fails here, because the fixture bytes never change.
//
// If the format version is ever bumped, regenerate the fixture (build
// dual/sparse-gnp-80, WriteSnapshotFile) in the SAME commit and keep the
// old file decodable under its version.
package ftbfs_test

import (
	"bytes"
	"os"
	"testing"

	ftbfs "repro"
)

const goldenSnapshotPath = "testdata/golden-v1-dual-sparse-gnp-80.ftbfs"

// Fingerprints recorded in PR 3 (equivalence_test.go, case
// "dual/sparse-gnp-80") — the decoded snapshot must reproduce the exact
// structure and the exact oracle answer tables.
const (
	goldenStructureFP = "b6397b093386326806032c0b"
	goldenOracleFP    = "717b6992aa8b4b3ccf7935a9"
)

func TestGoldenSnapshotDecodes(t *testing.T) {
	sn, err := ftbfs.ReadSnapshotFile(goldenSnapshotPath)
	if err != nil {
		t.Fatalf("golden snapshot does not decode (format drift?): %v", err)
	}
	if sn.Meta.Graph != "golden" || sn.Meta.Build != "b1" || sn.Meta.Mode != "dual" {
		t.Fatalf("golden metadata drifted: %+v", sn.Meta)
	}
	st := sn.Structure
	if got := fingerprintStructure(st); got != goldenStructureFP {
		t.Errorf("decoded structure fingerprint = %s, want %s", got, goldenStructureFP)
	}
	if got := fingerprintOracle(t, st, 60); got != goldenOracleFP {
		t.Errorf("decoded oracle fingerprint = %s, want %s", got, goldenOracleFP)
	}
}

// TestGoldenSnapshotEncodeStable pins the ENCODER to the checked-in
// bytes: rebuilding the same structure and encoding it must reproduce the
// fixture exactly. An encoder change that alters the wire format without
// a version bump fails here.
func TestGoldenSnapshotEncodeStable(t *testing.T) {
	want, err := os.ReadFile(goldenSnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ftbfs.BuildDualFTBFS(ftbfs.SparseGNP(80, 6, 2015), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = ftbfs.EncodeSnapshot(&buf, &ftbfs.Snapshot{
		Structure: st,
		Meta:      ftbfs.SnapshotMeta{Graph: "golden", Build: "b1", Mode: "dual"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoding dual/sparse-gnp-80 produced %d bytes differing from the %d-byte fixture; "+
			"format changes require a version bump and a regenerated fixture", buf.Len(), len(want))
	}
}
