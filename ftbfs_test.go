package ftbfs_test

import (
	"testing"

	ftbfs "repro"
)

func TestFacadeQuickstart(t *testing.T) {
	g := ftbfs.GNP(24, 0.2, 42)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() == 0 || st.NumEdges() > g.M() {
		t.Fatalf("bad size %d", st.NumEdges())
	}
	rep := ftbfs.Verify(g, st, []int{0}, 2)
	if !rep.OK {
		t.Fatalf("verify: %v", rep.Violations)
	}
}

func TestFacadeBuilders(t *testing.T) {
	g := ftbfs.SparseGNP(20, 4, 7)
	builders := map[string]func() (*ftbfs.Structure, int, error){
		"single": func() (*ftbfs.Structure, int, error) {
			st, err := ftbfs.BuildSingleFTBFS(g, 0, nil)
			return st, 1, err
		},
		"dual": func() (*ftbfs.Structure, int, error) {
			st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
			return st, 2, err
		},
		"exhaustive-f2": func() (*ftbfs.Structure, int, error) {
			st, err := ftbfs.BuildExhaustiveFTBFS(g, 0, 2, nil)
			return st, 2, err
		},
		"full-paths": func() (*ftbfs.Structure, int, error) {
			st, err := ftbfs.BuildFullPathsFTBFS(g, 0, nil)
			return st, 2, err
		},
		"approx-f1": func() (*ftbfs.Structure, int, error) {
			st, err := ftbfs.BuildApproxFTMBFS(g, []int{0}, 1, nil)
			return st, 1, err
		},
		"multi-dual": func() (*ftbfs.Structure, int, error) {
			st, err := ftbfs.BuildMultiSourceDualFTBFS(g, []int{0, 5}, nil)
			return st, 2, err
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			st, f, err := build()
			if err != nil {
				t.Fatal(err)
			}
			rep := ftbfs.Verify(g, st, st.Sources, f)
			if !rep.OK {
				t.Fatalf("verify: %v", rep.Violations)
			}
		})
	}
}

func TestFacadeGraphBuilding(t *testing.T) {
	b := ftbfs.NewBuilder(4)
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	g := b.Freeze()
	if g.N() != 4 || g.M() != 1 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("frozen graph lost the edge")
	}
}

func TestFacadeLowerBound(t *testing.T) {
	inst, err := ftbfs.LowerBound(2, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Bipartite) == 0 {
		t.Fatal("no bipartite edges")
	}
	mi, err := ftbfs.LowerBoundMulti(1, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(mi.Sources) != 2 {
		t.Fatalf("sources: %v", mi.Sources)
	}
}

func TestFacadeSampledVerify(t *testing.T) {
	g := ftbfs.Grid(5, 5)
	st, err := ftbfs.BuildDualFTBFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := ftbfs.VerifySampled(g, st, []int{0}, 2, 100, 1)
	if !rep.OK {
		t.Fatalf("sampled verify: %v", rep.Violations)
	}
	repO := ftbfs.VerifyWithOptions(g, st, []int{0}, 2, &ftbfs.VerifyOptions{NoPrune: true})
	if !repO.OK {
		t.Fatalf("noprune verify: %v", repO.Violations)
	}
}

func TestFacadeGenerators(t *testing.T) {
	gens := map[string]*ftbfs.Graph{
		"gnp":    ftbfs.GNP(10, 0.3, 1),
		"sparse": ftbfs.SparseGNP(10, 3, 1),
		"grid":   ftbfs.Grid(3, 4),
		"path":   ftbfs.PathGraph(5),
		"cycle":  ftbfs.Cycle(5),
		"kn":     ftbfs.Complete(5),
		"kab":    ftbfs.CompleteBipartite(3, 4),
		"hcube":  ftbfs.Hypercube(3),
		"layer":  ftbfs.Layered(3, 3, 0.5, 1),
		"tree":   ftbfs.TreePlusChords(10, 2, 1),
		"reg":    ftbfs.RandomRegular(10, 3, 1),
	}
	for name, g := range gens {
		if g.N() == 0 || !g.ConnectedFrom(0) {
			t.Fatalf("%s: invalid generated graph", name)
		}
	}
}
