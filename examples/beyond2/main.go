// Command beyond2 explores the paper's closing question — what lies beyond
// two faults — with the library's recursive relevant-fault-tree builder:
// it constructs f = 0..3 structures on one network, verifies each, shows
// the size ladder approaching the conjectured Θ(n^{2-1/(f+1)}), and then
// serves fault-tolerant routing queries for a triple failure through the
// Oracle API.
package main

import (
	"fmt"
	"math"
	"os"

	ftbfs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beyond2:", err)
		os.Exit(1)
	}
}

func run() error {
	g := ftbfs.SparseGNP(48, 5, 77)
	const source = 0
	fmt.Printf("graph: n=%d m=%d, source %d\n\n", g.N(), g.M(), source)

	fmt.Printf("%3s %10s %14s %10s %s\n", "f", "edges", "n^(2-1/(f+1))", "searches", "check")
	var structures []*ftbfs.Structure
	for f := 0; f <= 3; f++ {
		st, err := ftbfs.BuildRecursiveFTBFS(g, source, f, nil)
		if err != nil {
			return err
		}
		structures = append(structures, st)
		status := "sampled ok"
		if f <= 2 {
			rep := ftbfs.Verify(g, st, []int{source}, f)
			if !rep.OK {
				return fmt.Errorf("f=%d failed verification: %v", f, rep.Violations[0])
			}
			status = "exhaustive ok"
		} else {
			rep := ftbfs.VerifySampled(g, st, []int{source}, f, 500, 1)
			if !rep.OK {
				return fmt.Errorf("f=%d failed sampled verification: %v", f, rep.Violations[0])
			}
		}
		envelope := math.Pow(float64(g.N()), 2-1/float64(f+1))
		fmt.Printf("%3d %10d %14.0f %10d %s\n", f, st.NumEdges(), envelope, st.Stats.Dijkstras, status)
	}

	// Route through a triple failure on the f=3 structure.
	st3 := structures[3]
	o, err := ftbfs.NewOracle(st3)
	if err != nil {
		return err
	}
	faults := []int{0, 7, 19}
	fmt.Printf("\ntriple failure %v %v %v:\n", g.EdgeAt(0), g.EdgeAt(7), g.EdgeAt(19))
	for _, v := range []int{11, 23, 47} {
		d, err := o.Dist(source, v, faults)
		if err != nil {
			return err
		}
		p, err := o.Route(source, v, faults)
		if err != nil {
			return err
		}
		fmt.Printf("  → %2d: dist %d via %v\n", v, d, p)
	}
	fmt.Println("\nEvery route above runs inside the f=3 structure and is provably as")
	fmt.Println("short as any route in the full surviving network.")
	return nil
}
